package ratiorules_test

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"ratiorules"
)

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// grocery builds a correlated customers × products matrix:
// milk ≈ 2 × bread, butter ≈ 0.5 × bread.
func grocery(n int, seed int64) *ratiorules.Matrix {
	rng := rand.New(rand.NewSource(seed))
	x := ratiorules.NewMatrix(n, 3)
	for i := 0; i < n; i++ {
		bread := 1 + rng.Float64()*9
		row := []float64{
			bread,
			2*bread + 0.1*rng.NormFloat64(),
			0.5*bread + 0.05*rng.NormFloat64(),
		}
		for j, v := range row {
			x.Set(i, j, v)
		}
	}
	return x
}

func mustMine(t *testing.T, x *ratiorules.Matrix, opts ...ratiorules.Option) *ratiorules.Rules {
	t.Helper()
	miner, err := ratiorules.NewMiner(opts...)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := miner.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

func TestEndToEndMineAndFill(t *testing.T) {
	x := grocery(500, 1)
	rules := mustMine(t, x, ratiorules.WithAttrNames([]string{"bread", "milk", "butter"}))
	if rules.K() < 1 {
		t.Fatalf("K = %d", rules.K())
	}
	// A new customer spent $4 on bread; forecast milk and butter.
	got, err := rules.FillRecord([]float64{4, ratiorules.Hole, ratiorules.Hole})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[1]-8) > 0.4 || math.Abs(got[2]-2) > 0.2 {
		t.Errorf("filled = %v, want ≈ [4 8 2]", got)
	}
}

func TestEndToEndGuessingError(t *testing.T) {
	train := grocery(500, 2)
	test := grocery(60, 3)
	rules := mustMine(t, train)
	geRR, err := ratiorules.GE1(rules, test)
	if err != nil {
		t.Fatal(err)
	}
	geCA, err := ratiorules.GE1(ratiorules.NewColAvgs(rules.Means()), test)
	if err != nil {
		t.Fatal(err)
	}
	if geRR >= geCA/3 {
		t.Errorf("GE1(RR) = %v vs col-avgs %v: want a large win on correlated data", geRR, geCA)
	}
	curve, err := ratiorules.GECurve(rules, test, 2, ratiorules.GEhConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Fatalf("curve = %v", curve)
	}
}

func TestEndToEndSaveLoad(t *testing.T) {
	rules := mustMine(t, grocery(200, 4))
	var buf strings.Builder
	if err := rules.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ratiorules.LoadRules(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.K() != rules.K() || back.M() != rules.M() {
		t.Error("round trip lost shape")
	}
}

func TestEndToEndStreaming(t *testing.T) {
	x := grocery(300, 5)
	miner, err := ratiorules.NewMiner()
	if err != nil {
		t.Fatal(err)
	}
	rules, err := miner.Mine(ratiorules.NewMatrixSource(x))
	if err != nil {
		t.Fatal(err)
	}
	if rules.TrainedRows() != 300 {
		t.Errorf("TrainedRows = %d, want 300", rules.TrainedRows())
	}
}

func TestSentinelErrorsExported(t *testing.T) {
	rules := mustMine(t, grocery(100, 6))
	if _, err := rules.FillRow([]float64{1}, nil); !errors.Is(err, ratiorules.ErrWidth) {
		t.Errorf("err = %v, want ratiorules.ErrWidth", err)
	}
	if _, err := rules.FillRow([]float64{1, 2, 3}, []int{9}); !errors.Is(err, ratiorules.ErrBadHole) {
		t.Errorf("err = %v, want ratiorules.ErrBadHole", err)
	}
}

func TestIsHole(t *testing.T) {
	if !ratiorules.IsHole(ratiorules.Hole) || ratiorules.IsHole(1) {
		t.Error("IsHole broken")
	}
}

func TestMatrixFromRows(t *testing.T) {
	m, err := ratiorules.MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 1) != 4 {
		t.Errorf("At(1,1) = %v", m.At(1, 1))
	}
	if _, err := ratiorules.MatrixFromRows([][]float64{{1}, {2, 3}}); err == nil {
		t.Error("ragged rows must fail")
	}
}

func TestWhatIfThroughFacade(t *testing.T) {
	rules := mustMine(t, grocery(400, 7))
	base := rules.Means()
	out, err := rules.WhatIf(ratiorules.Scenario{Given: map[int]float64{0: 2 * base[0]}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[1]-2*base[1]) > 0.1*base[1] {
		t.Errorf("doubling bread should double milk: got %v, want ≈ %v", out[1], 2*base[1])
	}
}

func TestOutliersThroughFacade(t *testing.T) {
	x := grocery(200, 8)
	// Corrupt one cell hard.
	x.Set(50, 1, x.At(50, 1)*10)
	rules := mustMine(t, x)
	outliers, err := rules.CellOutliers(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A corrupted cell breaks reconstruction of every cell in its row, so
	// the whole of row 50 floats to the top; the corrupted column must be
	// among the leaders.
	if len(outliers) == 0 || outliers[0].Row != 50 {
		t.Fatalf("top outlier = %+v, want row 50", outliers)
	}
	foundCol := false
	for _, o := range outliers[:minInt(3, len(outliers))] {
		if o.Row == 50 && o.Col == 1 {
			foundCol = true
		}
	}
	if !foundCol {
		t.Errorf("corrupted cell (50,1) not among the top outliers: %+v", outliers)
	}
	rows, err := rules.RowOutliers(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || rows[0].Row != 50 {
		t.Errorf("top row outlier = %+v, want row 50", rows)
	}
}
