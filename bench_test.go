// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablation benches for the design choices called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports paper-relevant metrics through b.ReportMetric so
// the bench output doubles as the experimental record (see EXPERIMENTS.md).
package ratiorules_test

import (
	"testing"

	"ratiorules"
	"ratiorules/internal/core"
	"ratiorules/internal/dataset"
	"ratiorules/internal/experiments"
	"ratiorules/internal/quest"
	"ratiorules/internal/stats"
)

// BenchmarkTable2MineNBA regenerates Table 2: mining the first three Ratio
// Rules of the nba dataset.
func BenchmarkTable2MineNBA(b *testing.B) {
	ds := dataset.NBA()
	miner, err := ratiorules.NewMiner(ratiorules.WithFixedK(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rules *ratiorules.Rules
	for i := 0; i < b.N; i++ {
		rules, err = miner.MineMatrix(ds.X)
		if err != nil {
			b.Fatal(err)
		}
	}
	rr1 := rules.Rule(0)
	b.ReportMetric(rr1[0]/rr1[7], "RR1-minutes:points")
}

// BenchmarkFig7GuessingError regenerates Fig. 7: GE1 of Ratio Rules
// relative to col-avgs on each dataset (90/10 split).
func BenchmarkFig7GuessingError(b *testing.B) {
	for _, name := range []string{"nba", "baseball", "abalone"} {
		name := name
		b.Run(name, func(b *testing.B) {
			var res *experiments.Fig7Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = experiments.RunFig7()
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, row := range res.Rows {
				if row.Dataset == name {
					b.ReportMetric(row.RelPercent, "RR-%of-colavgs")
					b.ReportMetric(row.GE1RR, "GE1-RR")
					b.ReportMetric(row.GE1ColAvgs, "GE1-colavgs")
				}
			}
		})
	}
}

// BenchmarkFig6HoleStability regenerates Fig. 6: GEh for h = 1..5.
func BenchmarkFig6HoleStability(b *testing.B) {
	for _, name := range []string{"nba", "baseball"} {
		name := name
		b.Run(name, func(b *testing.B) {
			var res *experiments.Fig6Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = experiments.RunFig6(name)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.RR[0], "GEh1-RR")
			b.ReportMetric(res.RR[4], "GEh5-RR")
			b.ReportMetric(res.ColAvgs[0], "GEh1-colavgs")
			b.ReportMetric(res.ColAvgs[4], "GEh5-colavgs")
		})
	}
}

// BenchmarkFig8ScaleUp regenerates Fig. 8: single-pass mining time as N
// grows (M = 100, Quest-style data). The per-size sub-benchmarks give the
// curve; the reported metric is rows mined per second.
func BenchmarkFig8ScaleUp(b *testing.B) {
	for _, n := range []int{10000, 25000, 50000, 100000} {
		n := n
		b.Run(sizeName(n), func(b *testing.B) {
			miner, err := ratiorules.NewMiner()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := quest.DefaultConfig(n)
				src, err := quest.NewSource(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := miner.Mine(src); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1000 && n%1000 == 0:
		return "N=" + itoa(n/1000) + "k"
	default:
		return "N=" + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkFig11Projection regenerates the Fig. 11 scatter data: nba
// projected onto its first two rules.
func BenchmarkFig11Projection(b *testing.B) {
	ds := dataset.NBA()
	miner, err := ratiorules.NewMiner(ratiorules.WithFixedK(3))
	if err != nil {
		b.Fatal(err)
	}
	rules, err := miner.MineMatrix(ds.X)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rules.Project(ds.X, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Projection regenerates the Fig. 9 scatter data for baseball
// and abalone.
func BenchmarkFig9Projection(b *testing.B) {
	for _, name := range []string{"baseball", "abalone"} {
		name := name
		b.Run(name, func(b *testing.B) {
			ds, err := experiments.DatasetByName(name)
			if err != nil {
				b.Fatal(err)
			}
			miner, err := ratiorules.NewMiner(ratiorules.WithFixedK(2))
			if err != nil {
				b.Fatal(err)
			}
			rules, err := miner.MineMatrix(ds.X)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rules.Project(ds.X, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12Comparison regenerates the Fig. 12 / Sec. 6.3 comparison
// of Ratio Rules against quantitative association rules.
func BenchmarkFig12Comparison(b *testing.B) {
	var res *experiments.Fig12Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunFig12()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ExtrapolationRRPred, "butter-at-8.50")
	b.ReportMetric(float64(res.QuantRuleCount), "quant-rules")
	b.ReportMetric(100*res.CoverageQuant, "quant-coverage-%")
}

// --- Ablation benches (DESIGN.md Sec. 5) ---

// BenchmarkAblationEigenSolvers compares the default tred2/tql2 pipeline
// against the cyclic Jacobi alternative on the mining workload.
func BenchmarkAblationEigenSolvers(b *testing.B) {
	ds := dataset.Baseball()
	for _, tc := range []struct {
		name string
		opts []ratiorules.Option
	}{
		{"tred2-tql2", nil},
		{"jacobi", []ratiorules.Option{ratiorules.WithJacobiSolver()}},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			miner, err := ratiorules.NewMiner(tc.opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := miner.MineMatrix(ds.X); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCovariance compares the paper's one-pass covariance
// accumulation against the two-pass centered variant.
func BenchmarkAblationCovariance(b *testing.B) {
	ds := dataset.Abalone()
	b.Run("one-pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			acc := stats.NewCovAccumulator(ds.Cols())
			for r := 0; r < ds.Rows(); r++ {
				if err := acc.Push(ds.X.RawRow(r)); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := acc.Scatter(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("two-pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stats.ScatterTwoPass(ds.X)
		}
	})
}

// BenchmarkAblationFillSolvers compares the paper's pseudo-inverse
// hole-filling against QR least squares on the over-specified case.
func BenchmarkAblationFillSolvers(b *testing.B) {
	ds := dataset.Baseball()
	miner, err := ratiorules.NewMiner(ratiorules.WithFixedK(3))
	if err != nil {
		b.Fatal(err)
	}
	rules, err := miner.MineMatrix(ds.X)
	if err != nil {
		b.Fatal(err)
	}
	row := ds.X.Row(100)
	holes := []int{2, 9}
	for _, tc := range []struct {
		name   string
		solver core.FillSolver
	}{
		{"pseudo-inverse", ratiorules.SolvePseudoInverse},
		{"qr", ratiorules.SolveQR},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rules.FillRowWith(row, holes, tc.solver); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSparseMining compares dense vs sparse accumulation on
// Quest basket data (each row touches ~15 of 100 products).
func BenchmarkAblationSparseMining(b *testing.B) {
	const rows = 20000
	b.Run("dense", func(b *testing.B) {
		miner, err := ratiorules.NewMiner(ratiorules.WithMaxK(5))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			src, err := quest.NewSource(quest.DefaultConfig(rows))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := miner.Mine(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sparse", func(b *testing.B) {
		miner, err := ratiorules.NewMiner(ratiorules.WithMaxK(5))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			src, err := quest.NewSparseSource(quest.DefaultConfig(rows))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := miner.MineSparse(src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSubspaceMiner compares the full eigensolve against
// subspace iteration on the mining workload (M = 100 Quest data, k = 3).
func BenchmarkAblationSubspaceMiner(b *testing.B) {
	for _, tc := range []struct {
		name string
		opts []ratiorules.Option
	}{
		{"full-solve", []ratiorules.Option{ratiorules.WithFixedK(3)}},
		{"subspace", []ratiorules.Option{ratiorules.WithFixedK(3), ratiorules.WithSubspaceSolver()}},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			miner, err := ratiorules.NewMiner(tc.opts...)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				src, err := quest.NewSource(quest.DefaultConfig(5000))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := miner.Mine(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMineThroughput measures core mining throughput per dataset.
func BenchmarkMineThroughput(b *testing.B) {
	for _, ds := range experiments.Datasets() {
		ds := ds
		b.Run(ds.Name, func(b *testing.B) {
			miner, err := ratiorules.NewMiner()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := miner.MineMatrix(ds.X); err != nil {
					b.Fatal(err)
				}
			}
			cells := float64(ds.Rows()*ds.Cols()) * float64(b.N)
			b.ReportMetric(cells/b.Elapsed().Seconds()/1e6, "Mcells/s")
		})
	}
}

// BenchmarkGE1 measures the guessing-error evaluation itself (every cell
// of the test split hidden and reconstructed) per dataset.
func BenchmarkGE1(b *testing.B) {
	for _, ds := range experiments.Datasets() {
		ds := ds
		b.Run(ds.Name, func(b *testing.B) {
			train, test, err := ds.Split(0.9, 1998)
			if err != nil {
				b.Fatal(err)
			}
			miner, err := ratiorules.NewMiner()
			if err != nil {
				b.Fatal(err)
			}
			rules, err := miner.MineMatrix(train.X)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ratiorules.GE1(rules, test.X); err != nil {
					b.Fatal(err)
				}
			}
			cells := float64(test.Rows()*test.Cols()) * float64(b.N)
			b.ReportMetric(cells/b.Elapsed().Seconds(), "cells/s")
		})
	}
}

// BenchmarkGEh measures multi-hole evaluation at h = 3.
func BenchmarkGEh(b *testing.B) {
	ds := dataset.NBA()
	train, test, err := ds.Split(0.9, 1998)
	if err != nil {
		b.Fatal(err)
	}
	miner, err := ratiorules.NewMiner()
	if err != nil {
		b.Fatal(err)
	}
	rules, err := miner.MineMatrix(train.X)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ratiorules.GEh(rules, test.X, ratiorules.GEhConfig{Holes: 3, SetsPerRow: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFillRow measures single-record reconstruction latency.
func BenchmarkFillRow(b *testing.B) {
	ds := dataset.NBA()
	miner, err := ratiorules.NewMiner(ratiorules.WithFixedK(3))
	if err != nil {
		b.Fatal(err)
	}
	rules, err := miner.MineMatrix(ds.X)
	if err != nil {
		b.Fatal(err)
	}
	row := ds.X.Row(7)
	for _, tc := range []struct {
		name  string
		holes []int
	}{
		{"1-hole", []int{7}},
		{"3-holes", []int{1, 7, 10}},
		{"under-specified", []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rules.FillRow(row, tc.holes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
