// What-if scenarios and forecasting: the paper's decision-support
// examples — "We expect the demand for Cheerios to double; how much milk
// should we stock up on?" — answered with Ratio Rules mined from a
// synthetic grocery history.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ratiorules"
)

const (
	cheerios = iota
	milk
	bananas
	coffee
)

var attrs = []string{"cheerios", "milk", "bananas", "coffee"}

func main() {
	// History: cereal buyers buy milk (and often bananas); coffee is an
	// independent habit.
	rng := rand.New(rand.NewSource(11))
	x := ratiorules.NewMatrix(2000, len(attrs))
	for i := 0; i < 2000; i++ {
		cereal := rng.Float64() * 6
		caffeine := rng.Float64() * 8
		x.Set(i, cheerios, cereal*(1+0.05*rng.NormFloat64()))
		x.Set(i, milk, 1.8*cereal*(1+0.08*rng.NormFloat64()))
		x.Set(i, bananas, 0.6*cereal*(1+0.15*rng.NormFloat64()))
		x.Set(i, coffee, caffeine*(1+0.05*rng.NormFloat64()))
	}

	rules, err := ratiorules.Mine(x, ratiorules.AttrNames(attrs...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rules)

	means := rules.Means()
	fmt.Printf("typical weekly demand: cheerios $%.2f, milk $%.2f, bananas $%.2f, coffee $%.2f\n\n",
		means[cheerios], means[milk], means[bananas], means[coffee])

	// What if cheerios demand doubles?
	scenario := ratiorules.Scenario{Given: map[int]float64{cheerios: 2 * means[cheerios]}}
	forecastRow, err := rules.WhatIf(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scenario: cheerios demand doubles")
	for j, v := range forecastRow {
		change := 100 * (v/means[j] - 1)
		fmt.Printf("  %-10s $%7.2f  (%+5.1f%%)\n", attrs[j], v, change)
	}

	// Forecasting a single product for a known partial basket.
	basket := map[int]float64{cheerios: 3.0, coffee: 5.0}
	est, err := rules.Forecast(basket, milk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncustomer with cheerios=$3.00 and coffee=$5.00 -> forecast milk = $%.2f (expect ≈ $5.40)\n", est)
}
