// NBA outliers: reproduce the paper's Sec. 6.1-6.2 discussion — project
// the nba dataset onto its first two Ratio Rules, spot the players who
// deviate from the typical stat-line pattern, and interpret the rules.
package main

import (
	"fmt"
	"log"

	"ratiorules"
	"ratiorules/internal/dataset"
)

func main() {
	ds := dataset.NBA()

	rules, err := ratiorules.Mine(ds.X,
		ratiorules.FixedK(3),
		ratiorules.AttrNames(ds.Attrs...),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rules)

	// Interpretation, following the paper's Fig. 10 methodology: look at
	// the strongest coefficients of each rule.
	rr1 := rules.Rule(0)
	fmt.Printf("RR1 ('court action'): minutes:points = %.2f:%.2f ≈ 1 point per %0.1f minutes\n\n",
		rr1[0], rr1[7], rr1[0]/rr1[7])

	// Row outliers: players far from the RR hyperplane (unusual stat mix).
	rows, err := rules.RowOutliers(ds.X, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("players with the most unusual stat lines (>= 3 sigma):")
	for i, o := range rows {
		if i >= 6 {
			break
		}
		fmt.Printf("  %-12s distance %.0f (%.1f sigma)\n", ds.Label(o.Row), o.Distance, o.Score)
	}

	// Cell outliers: individual statistics that break the pattern.
	cells, err := rules.CellOutliers(ds.X, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmost surprising individual statistics (>= 4 sigma):")
	for i, o := range cells {
		if i >= 6 {
			break
		}
		fmt.Printf("  %-12s %-20s actual %8.0f vs expected %8.0f (%.1f sigma)\n",
			ds.Label(o.Row), ds.Attrs[o.Col], o.Actual, o.Predicted, o.Score)
	}

	// 2-d projection coordinates for the famous extremes (Fig. 11).
	proj, err := rules.Project(ds.X, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nRR-space coordinates of the planted extremes (cf. Fig. 11):")
	for i := 455; i < 459; i++ {
		fmt.Printf("  %-8s RR1 = %8.0f, RR2 = %8.0f\n", ds.Label(i), proj.At(i, 0), proj.At(i, 1))
	}
}
