// Basket forecast at scale: stream a Quest-style market-basket matrix
// through the single-pass miner (no full matrix ever in memory), then use
// the mined Ratio Rules to complete partial baskets — the paper's
// large-database setting (Sec. 4.2) end to end.
package main

import (
	"fmt"
	"log"
	"time"

	"ratiorules"
	"ratiorules/internal/quest"
)

func main() {
	// 200,000 customers × 100 products, streamed.
	cfg := quest.DefaultConfig(200000)
	src, err := quest.NewSource(cfg)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	rules, err := ratiorules.MineStream(src, ratiorules.MaxK(12))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d rules from %d rows x %d cols in %s (single pass)\n",
		rules.K(), rules.TrainedRows(), rules.M(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("energy covered: %.1f%%\n\n", 100*rules.EnergyCovered())

	// Take a fresh customer from the same distribution, hide half the
	// basket, and reconstruct it.
	probe, err := quest.NewSource(quest.Config{
		Rows: 1, Cols: cfg.Cols, Patterns: cfg.Patterns,
		PatternLen: cfg.PatternLen, PatternsPerRow: cfg.PatternsPerRow,
		MeanAmount: cfg.MeanAmount, Seed: 4242,
	})
	if err != nil {
		log.Fatal(err)
	}
	row, err := probe.Next()
	if err != nil {
		log.Fatal(err)
	}
	truth := append([]float64(nil), row...)
	var holes []int
	for j := 0; j < len(row); j += 2 {
		holes = append(holes, j)
	}
	filled, err := rules.FillRow(truth, holes)
	if err != nil {
		log.Fatal(err)
	}
	var rrSSE, caSSE float64
	means := rules.Means()
	for _, j := range holes {
		d := filled[j] - truth[j]
		rrSSE += d * d
		d = means[j] - truth[j]
		caSSE += d * d
	}
	fmt.Printf("reconstructed %d hidden basket cells\n", len(holes))
	fmt.Printf("sum of squared errors: Ratio Rules %.1f vs col-avgs %.1f\n", rrSSE, caSSE)

	// Show a few of the biggest reconstructed amounts.
	fmt.Println("\nlargest reconstructed purchases:")
	shown := 0
	for _, j := range holes {
		if truth[j] > 10 && shown < 5 {
			fmt.Printf("  product%-3d actual $%7.2f  estimated $%7.2f\n", j, truth[j], filled[j])
			shown++
		}
	}
}
