// Latent semantic indexing with Ratio Rules: the paper notes its method
// applies to any N×M matrix, naming "documents and terms (typical in IR)"
// and citing LSI. This example builds a small synthetic corpus over two
// topics, mines Ratio Rules on the document×term count matrix, and shows
// that the rules recover the topics: documents project into a 2-d concept
// space where same-topic documents cluster, and a query with missing
// vocabulary still retrieves the right documents.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"strings"

	"ratiorules"
)

var vocabulary = []string{
	// cooking topic
	"recipe", "butter", "oven", "flour", "sauce",
	// astronomy topic
	"galaxy", "telescope", "orbit", "nebula", "comet",
}

// topicWeights gives each topic's expected term frequencies.
var topicWeights = [][]float64{
	{5, 4, 3, 4, 3, 0.1, 0, 0.1, 0, 0}, // cooking
	{0.1, 0, 0, 0.1, 0, 5, 4, 3, 3, 2}, // astronomy
}

// synthDoc draws a document's term counts from its topic profile.
func synthDoc(rng *rand.Rand, topic int, length float64) []float64 {
	row := make([]float64, len(vocabulary))
	for j, w := range topicWeights[topic] {
		row[j] = math.Max(0, length*w*(1+0.3*rng.NormFloat64()))
	}
	return row
}

func main() {
	rng := rand.New(rand.NewSource(1998))
	const docs = 400
	x := ratiorules.NewMatrix(docs, len(vocabulary))
	topics := make([]int, docs)
	for i := 0; i < docs; i++ {
		topic := i % 2
		topics[i] = topic
		row := synthDoc(rng, topic, 0.5+rng.Float64())
		for j, v := range row {
			x.Set(i, j, v)
		}
	}

	rules, err := ratiorules.Mine(x,
		ratiorules.FixedK(2), // one concept axis per topic
		ratiorules.AttrNames(vocabulary...),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d concept rules from %d docs x %d terms\n\n", rules.K(), docs, len(vocabulary))
	for _, reading := range rules.Interpret(0.2) {
		fmt.Println(" ", reading)
	}

	// Project all documents into concept space and measure topic purity:
	// nearest-centroid assignment in RR space should match the true topic.
	dims := 2
	if rules.K() < 2 {
		dims = 1
	}
	proj, err := rules.Project(x, dims)
	if err != nil {
		log.Fatal(err)
	}
	centroids := make([][]float64, 2)
	counts := make([]int, 2)
	for i := 0; i < docs; i++ {
		t := topics[i]
		if centroids[t] == nil {
			centroids[t] = make([]float64, dims)
		}
		for d := 0; d < dims; d++ {
			centroids[t][d] += proj.At(i, d)
		}
		counts[t]++
	}
	for t := range centroids {
		for d := range centroids[t] {
			centroids[t][d] /= float64(counts[t])
		}
	}
	correct := 0
	for i := 0; i < docs; i++ {
		best, bestD := -1, math.Inf(1)
		for t := range centroids {
			var d2 float64
			for d := 0; d < dims; d++ {
				diff := proj.At(i, d) - centroids[t][d]
				d2 += diff * diff
			}
			if d2 < bestD {
				best, bestD = t, d2
			}
		}
		if best == topics[i] {
			correct++
		}
	}
	fmt.Printf("\nconcept-space topic purity: %d/%d documents (%.0f%%)\n",
		correct, docs, 100*float64(correct)/float64(docs))

	// Retrieval with missing vocabulary: the query mentions only "oven"
	// and "flour"; Ratio Rules complete the rest of its term profile, and
	// cosine similarity in concept space ranks cooking documents first.
	query := make([]float64, len(vocabulary))
	var queryHoles []int
	for j, term := range vocabulary {
		switch term {
		case "oven":
			query[j] = 3
		case "flour":
			query[j] = 4
		default:
			query[j] = ratiorules.Hole
			queryHoles = append(queryHoles, j)
		}
	}
	completed, err := rules.FillRow(query, queryHoles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nquery {oven, flour} completed to a full term profile:")
	type tw struct {
		term string
		w    float64
	}
	var profile []tw
	for j, term := range vocabulary {
		profile = append(profile, tw{term, completed[j]})
	}
	sort.Slice(profile, func(a, b int) bool { return profile[a].w > profile[b].w })
	var parts []string
	for _, p := range profile[:5] {
		parts = append(parts, fmt.Sprintf("%s %.1f", p.term, p.w))
	}
	fmt.Println("  top terms:", strings.Join(parts, ", "))

	qc, err := rules.ProjectRow(completed, dims)
	if err != nil {
		log.Fatal(err)
	}
	type hit struct {
		doc int
		sim float64
	}
	var hits []hit
	for i := 0; i < docs; i++ {
		sim := cosine(qc, projRow(proj, i, dims))
		hits = append(hits, hit{i, sim})
	}
	sort.Slice(hits, func(a, b int) bool { return hits[a].sim > hits[b].sim })
	cooking := 0
	for _, h := range hits[:10] {
		if topics[h.doc] == 0 {
			cooking++
		}
	}
	fmt.Printf("top-10 retrieved documents: %d/10 cooking (query was about baking)\n", cooking)
}

func projRow(m *ratiorules.Matrix, i, dims int) []float64 {
	out := make([]float64, dims)
	for d := 0; d < dims; d++ {
		out[d] = m.At(i, d)
	}
	return out
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
