// Data cleaning: the paper's warehouse-consolidation scenario, in two
// acts built from the Ratio Rules primitives:
//
//	A. Lost data — 5% of cells are missing; mine rules on the intact rows
//	   and reconstruct the holes (Sec. 4.4), comparing against col-avgs.
//	B. Corrupted data — 1% of cells suffer a decimal-point slip (×10);
//	   detect them as reconstruction outliers (Sec. 3, "outlier
//	   detection"), iterating mine→flag→re-fill until no new suspects
//	   appear, then repair the flagged cells and report precision/recall
//	   and repair accuracy. Detection over-flags somewhat (the threshold
//	   tightens as corruption is removed); that is harmless here because a
//	   falsely flagged cell is simply re-estimated, and the estimate is
//	   accurate.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"ratiorules"
	"ratiorules/internal/dataset"
)

func main() {
	partALostData()
	partBCorruption()
}

// partALostData repairs randomly missing cells.
func partALostData() {
	ds := dataset.Abalone()
	n, m := ds.Rows(), ds.Cols()
	rng := rand.New(rand.NewSource(7))

	damaged := ds.X.Clone()
	lost := 0
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if rng.Float64() < 0.05 {
				damaged.Set(i, j, ratiorules.Hole)
				lost++
			}
		}
	}
	fmt.Printf("== part A: lost data ==\n%d of %d cells lost\n", lost, n*m)

	rules, err := mineOnCompleteRows(damaged, ds.Attrs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined k=%d rules on the intact rows (%.1f%% energy)\n",
		rules.K(), 100*rules.EnergyCovered())

	var rrSq, caSq float64
	repaired := 0
	colAvgs := ratiorules.NewColAvgs(rules.Means())
	for i := 0; i < n; i++ {
		row := make([]float64, m)
		var holes []int
		for j := 0; j < m; j++ {
			row[j] = damaged.At(i, j)
			if ratiorules.IsHole(row[j]) {
				holes = append(holes, j)
			}
		}
		if len(holes) == 0 {
			continue
		}
		fixed, err := rules.FillRow(row, holes)
		if err != nil {
			log.Fatal(err)
		}
		naive, err := colAvgs.FillRow(row, holes)
		if err != nil {
			log.Fatal(err)
		}
		for _, j := range holes {
			truth := ds.X.At(i, j)
			rrSq += (fixed[j] - truth) * (fixed[j] - truth)
			caSq += (naive[j] - truth) * (naive[j] - truth)
			repaired++
		}
	}
	rr := math.Sqrt(rrSq / float64(repaired))
	ca := math.Sqrt(caSq / float64(repaired))
	fmt.Printf("repaired %d cells: RMS error %.4f (Ratio Rules) vs %.4f (col-avgs) — %.1fx better\n\n",
		repaired, rr, ca, ca/rr)
}

// partBCorruption detects and repairs decimal-point slips.
func partBCorruption() {
	ds := dataset.Abalone()
	n, m := ds.Rows(), ds.Cols()
	rng := rand.New(rand.NewSource(8))

	working := ds.X.Clone()
	corrupt := map[[2]int]bool{}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if rng.Float64() < 0.01 {
				working.Set(i, j, working.At(i, j)*10)
				corrupt[[2]int{i, j}] = true
			}
		}
	}
	fmt.Printf("== part B: corrupted data ==\n%d cells corrupted by a decimal-point slip\n", len(corrupt))

	// Iterate: mine on rows with no flagged cell, scan a best-estimate
	// copy (flagged cells re-filled from their row), flag new outliers.
	flagged := map[[2]int]bool{}
	var rules *ratiorules.Rules
	for round := 1; round <= 8; round++ {
		scan := working.Clone()
		for c := range flagged {
			scan.Set(c[0], c[1], ratiorules.Hole)
		}
		var err error
		rules, err = mineOnCompleteRows(scan, ds.Attrs)
		if err != nil {
			log.Fatal(err)
		}
		if err := refillHoles(rules, scan); err != nil {
			log.Fatal(err)
		}
		outliers, err := rules.CellOutliers(scan, 6)
		if err != nil {
			log.Fatal(err)
		}
		newFlags := 0
		for _, o := range outliers {
			c := [2]int{o.Row, o.Col}
			if !flagged[c] {
				flagged[c] = true
				newFlags++
			}
		}
		fmt.Printf("round %d: flagged %d new cells\n", round, newFlags)
		if newFlags == 0 {
			break
		}
	}

	// Detection quality.
	truePos := 0
	for c := range flagged {
		if corrupt[c] {
			truePos++
		}
	}
	precision := float64(truePos) / float64(len(flagged))
	recall := float64(truePos) / float64(len(corrupt))
	fmt.Printf("detection: %d flagged, precision %.0f%%, recall %.0f%%\n",
		len(flagged), 100*precision, 100*recall)

	// Repair the flagged cells and compare to the pristine values.
	var before, after float64
	for c := range flagged {
		i := c[0]
		row := make([]float64, m)
		var holes []int
		for j := 0; j < m; j++ {
			row[j] = working.At(i, j)
			if flagged[[2]int{i, j}] {
				holes = append(holes, j)
			}
		}
		fixed, err := rules.FillRow(row, holes)
		if err != nil {
			log.Fatal(err)
		}
		truth := ds.X.At(c[0], c[1])
		before += (working.At(c[0], c[1]) - truth) * (working.At(c[0], c[1]) - truth)
		after += (fixed[c[1]] - truth) * (fixed[c[1]] - truth)
	}
	nf := float64(len(flagged))
	fmt.Printf("repair RMS on flagged cells: %.4f before vs %.4f after cleaning (%.0fx better)\n",
		math.Sqrt(before/nf), math.Sqrt(after/nf), math.Sqrt(before/after))
}

// mineOnCompleteRows mines rules from the rows of x that contain no holes.
func mineOnCompleteRows(x *ratiorules.Matrix, attrs []string) (*ratiorules.Rules, error) {
	n, m := x.Dims()
	var intact []int
	for i := 0; i < n; i++ {
		ok := true
		for j := 0; j < m; j++ {
			if ratiorules.IsHole(x.At(i, j)) {
				ok = false
				break
			}
		}
		if ok {
			intact = append(intact, i)
		}
	}
	return ratiorules.Mine(x.SelectRows(intact), ratiorules.AttrNames(attrs...))
}

// refillHoles replaces the holes of every row of x in place with their
// Ratio-Rules reconstruction, producing a best-estimate complete matrix.
func refillHoles(rules *ratiorules.Rules, x *ratiorules.Matrix) error {
	_, err := ratiorules.Clean(rules, x)
	return err
}
