// Patients and medical measurements: the paper names "patients and
// medical test measurements (blood pressure, body weight, etc.)" as a
// target domain. This example mines Ratio Rules over a synthetic patient
// panel, fills in a missing lab value with an uncertainty band, screens
// for suspicious entries (unit mix-ups), and answers a clinical what-if.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"ratiorules"
)

const (
	weightKg = iota
	heightCm
	sysBP
	diaBP
	cholesterol
	glucose
)

var attrs = []string{
	"weight (kg)", "height (cm)", "systolic BP", "diastolic BP",
	"cholesterol (mg/dL)", "glucose (mg/dL)",
}

// synthPatient draws one patient from a two-factor physiology model: a
// body-size factor and a metabolic-health factor.
func synthPatient(rng *rand.Rand) []float64 {
	size := rng.NormFloat64()      // body size
	metabolic := rng.NormFloat64() // metabolic load (higher is worse)
	n := func(sd float64) float64 { return sd * rng.NormFloat64() }
	height := 170 + 9*size + n(2)
	weight := 72 + 11*size + 6*metabolic + n(3)
	sys := 121 + 3*size + 11*metabolic + n(4)
	dia := 0.62*sys + n(3)
	chol := 195 + 26*metabolic + n(10)
	glu := 97 + 15*metabolic + n(6)
	return []float64{
		math.Max(35, weight), math.Max(120, height), math.Max(80, sys),
		math.Max(45, dia), math.Max(90, chol), math.Max(55, glu),
	}
}

func main() {
	rng := rand.New(rand.NewSource(1907))
	const patients = 3000
	x := ratiorules.NewMatrix(patients, len(attrs))
	for i := 0; i < patients; i++ {
		for j, v := range synthPatient(rng) {
			x.Set(i, j, v)
		}
	}

	rules, err := ratiorules.Mine(x, ratiorules.AttrNames(attrs...), ratiorules.MaxK(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined k=%d rules from %d patient records\n\n", rules.K(), patients)
	for _, reading := range rules.Interpret(0.25) {
		fmt.Println(" ", reading)
	}

	// A chart arrives without the cholesterol panel: estimate it with an
	// uncertainty band.
	chart := []float64{88, 178, 142, 88, ratiorules.Hole, 118}
	banded, err := rules.FillRecordWithBands(chart)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nincomplete chart (88kg, 178cm, BP 142/88, glucose 118):\n")
	fmt.Printf("  estimated cholesterol = %.0f ± %.0f mg/dL\n",
		banded.Filled[cholesterol], banded.Std[cholesterol])

	// Screening: a records clerk entered one weight in pounds.
	screen := x.Clone()
	screen.Set(1234, weightKg, screen.At(1234, weightKg)*2.20462)
	outliers, err := rules.CellOutliers(screen, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscreening flagged %d suspicious entries at 5 sigma; top hit:\n", len(outliers))
	if len(outliers) > 0 {
		o := outliers[0]
		fmt.Printf("  patient %d, %s: recorded %.1f, expected ≈ %.1f (a kg/lb mix-up?)\n",
			o.Row, attrs[o.Col], o.Actual, o.Predicted)
	}

	// What-if: a weight-loss program brings the cohort's average weight
	// down 10% — what does the typical blood pressure look like?
	base := rules.Means()
	scenario, err := rules.WhatIf(ratiorules.Scenario{
		Given: map[int]float64{weightKg: 0.9 * base[weightKg], heightCm: base[heightCm]},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhat-if: average weight drops 10%% (height unchanged):\n")
	fmt.Printf("  systolic BP %.0f -> %.0f, cholesterol %.0f -> %.0f\n",
		base[sysBP], scenario[sysBP], base[cholesterol], scenario[cholesterol])
}
