// Streaming with concept drift: an extension of the paper's single-pass
// algorithm to continuous operation. A StreamMiner watches an unbounded
// stream of transactions whose underlying ratio shifts mid-stream (a price
// change doubles how much customers spend on butter relative to bread).
// With exponential decay the mined rule tracks the shift; the undecayed
// miner keeps averaging over both regimes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ratiorules"
)

func main() {
	const (
		attrBread  = 0
		attrButter = 1
	)
	attrs := []string{"bread", "butter"}
	mkRow := func(rng *rand.Rand, butterPerBread float64) []float64 {
		bread := 1 + rng.Float64()*9
		return []float64{bread, butterPerBread * bread * (1 + 0.03*rng.NormFloat64())}
	}

	tracking, err := ratiorules.NewStreamMiner(2, 0.005, ratiorules.WithAttrNames(attrs))
	if err != nil {
		log.Fatal(err)
	}
	averaging, err := ratiorules.NewStreamMiner(2, 0, ratiorules.WithAttrNames(attrs))
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(2024))
	slope := func(r *ratiorules.Rules) float64 {
		rr1 := r.Rule(0)
		return rr1[attrButter] / rr1[attrBread]
	}

	fmt.Println("streaming 10,000 transactions; butter:bread ratio jumps 0.5 -> 1.0 at t=5,000")
	fmt.Printf("%8s %18s %18s\n", "t", "decayed miner", "plain miner")
	for tick := 1; tick <= 10000; tick++ {
		ratio := 0.5
		if tick > 5000 {
			ratio = 1.0
		}
		row := mkRow(rng, ratio)
		if err := tracking.Push(row); err != nil {
			log.Fatal(err)
		}
		if err := averaging.Push(row); err != nil {
			log.Fatal(err)
		}
		if tick%2000 == 0 || tick == 5500 {
			rt, err := tracking.Rules()
			if err != nil {
				log.Fatal(err)
			}
			ra, err := averaging.Rules()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8d %18.3f %18.3f\n", tick, slope(rt), slope(ra))
		}
	}

	rt, err := tracking.Rules()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal decayed rule: %s\n", rt.Interpret(0)[0])
	fmt.Println("the decayed miner locked onto the new 1.0 ratio within ~500 rows;")
	fmt.Println("the plain miner blends both regimes and is still catching up thousands of rows later")
}
