// Quickstart: mine Ratio Rules from a small customers × products matrix
// and use them to forecast a new customer's spending — the paper's
// flagship example ("if somebody bought $10 of milk and $3 of bread, our
// rules can guess the amount spent on butter").
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ratiorules"
)

func main() {
	attrs := []string{"bread", "milk", "butter"}

	// A synthetic purchase history: customers spend on bread, milk and
	// butter in roughly 1 : 2 : 0.5 proportion, with individual variation.
	rng := rand.New(rand.NewSource(42))
	x := ratiorules.NewMatrix(1000, 3)
	for i := 0; i < 1000; i++ {
		bread := 1 + rng.Float64()*9 // $1-$10 of bread
		x.Set(i, 0, bread)
		x.Set(i, 1, 2*bread*(1+0.05*rng.NormFloat64()))
		x.Set(i, 2, 0.5*bread*(1+0.08*rng.NormFloat64()))
	}

	// Mine with the paper's defaults: single pass, 85% energy cutoff.
	rules, err := ratiorules.Mine(x, ratiorules.AttrNames(attrs...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rules)

	// The first rule is the dominant spending ratio.
	rr1 := rules.Rule(0)
	fmt.Printf("RR1 says bread : milk : butter ≈ %.2f : %.2f : %.2f\n\n", rr1[0], rr1[1], rr1[2])

	// A new customer bought $3 of bread and $10 of milk. How much butter?
	record := []float64{3, 10, ratiorules.Hole}
	filled, err := rules.FillRecord(record)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("customer bought bread=$%.2f milk=$%.2f -> estimated butter=$%.2f\n",
		filled[0], filled[1], filled[2])

	// How good are these rules? Hide each cell of a held-out sample and
	// measure the RMS reconstruction error (the paper's guessing error).
	test := ratiorules.NewMatrix(100, 3)
	for i := 0; i < 100; i++ {
		bread := 1 + rng.Float64()*9
		test.Set(i, 0, bread)
		test.Set(i, 1, 2*bread*(1+0.05*rng.NormFloat64()))
		test.Set(i, 2, 0.5*bread*(1+0.08*rng.NormFloat64()))
	}
	geRR, err := ratiorules.GE1(rules, test)
	if err != nil {
		log.Fatal(err)
	}
	geCA, err := ratiorules.GE1(ratiorules.NewColAvgs(rules.Means()), test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nguessing error GE1: Ratio Rules %.3f vs col-avgs %.3f (%.1fx better)\n",
		geRR, geCA, geCA/geRR)
}
