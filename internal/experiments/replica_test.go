package experiments

import "testing"

// TestRunReplica runs the replication experiment small and checks the
// properties the benchmark exists to demonstrate: both catch-up paths
// complete and are timed (the trimmed-log leader forcing exactly one
// snapshot bootstrap), and steady-state propagation latency is
// measured per write.
func TestRunReplica(t *testing.T) {
	res, err := RunReplica(200, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.CatchupEventsPerS <= 0 || res.BootstrapModelsPerS <= 0 {
		t.Fatalf("catch-up not measured: %+v", res)
	}
	if res.ModelBytes <= 0 {
		t.Fatalf("model size not measured: %+v", res)
	}
	if res.PropagateP50Ms <= 0 || res.PropagateMaxMs < res.PropagateP50Ms {
		t.Fatalf("propagation latency not measured: %+v", res)
	}
	if s := res.String(); s == "" {
		t.Fatal("empty render")
	}
}
