package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"ratiorules/internal/assoc"
	"ratiorules/internal/core"
	"ratiorules/internal/matrix"
)

// Sec63Result completes the three-paradigm comparison of Sec. 6.3 with
// the Boolean side: Boolean association rules binarize the amounts matrix
// ("treating non-zero amounts as plain 1s"), which the paper criticizes
// for losing valuable information. The experiment quantifies that loss on
// a basket dataset where the paradigms must each estimate a hidden dollar
// amount:
//
//   - Boolean rules can at best predict *presence* and fall back to the
//     conditional average amount among buyers;
//   - Ratio Rules use the actual amounts and track each customer's scale.
type Sec63Result struct {
	// TopBoolRule renders the strongest mined Boolean rule, paper-style.
	TopBoolRule string
	// BoolRuleCount is the number of Boolean rules at the chosen
	// support/confidence.
	BoolRuleCount int
	// RMSE of predicting the hidden butter amount for test customers.
	RMSEBoolean, RMSERatio float64
	// PresenceAccuracy is what Boolean rules are actually good at:
	// predicting whether butter was bought at all.
	PresenceAccuracy float64
}

// sec63Data builds baskets over {bread, milk, butter}: a fraction of
// customers are "bakers" who buy all three with amounts proportional to a
// personal budget; the rest buy random small amounts of bread or milk
// only. Item order: bread, milk, butter.
func sec63Data(n int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	x := matrix.NewDense(n, 3)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.6 {
			// Baker: bread:milk:butter = 1:2:0.5 scaled by budget.
			budget := 2 + rng.Float64()*8
			x.SetRow(i, []float64{
				budget * (1 + 0.05*rng.NormFloat64()),
				2 * budget * (1 + 0.05*rng.NormFloat64()),
				0.5 * budget * (1 + 0.05*rng.NormFloat64()),
			})
			continue
		}
		// Casual: a little bread or milk, no butter.
		if rng.Float64() < 0.5 {
			x.SetRow(i, []float64{0.5 + rng.Float64(), 0, 0})
		} else {
			x.SetRow(i, []float64{0, 0.5 + rng.Float64(), 0})
		}
	}
	return x
}

// RunSec63 mines Boolean rules and Ratio Rules on the same baskets and
// compares them on amount estimation and presence prediction.
func RunSec63() (*Sec63Result, error) {
	train := sec63Data(800, 63)
	test := sec63Data(300, 64)

	// Boolean side: binarize, Apriori, rules.
	trainRows := make([][]float64, train.Rows())
	for i := range trainRows {
		trainRows[i] = train.RawRow(i)
	}
	tx := assoc.Binarize(trainRows)
	frequent, err := assoc.Apriori(tx, assoc.AprioriConfig{MinSupport: 0.2})
	if err != nil {
		return nil, fmt.Errorf("experiments: Apriori: %w", err)
	}
	boolRules, err := assoc.Rules(frequent, len(tx), 0.7)
	if err != nil {
		return nil, fmt.Errorf("experiments: Boolean rules: %w", err)
	}
	out := &Sec63Result{BoolRuleCount: len(boolRules)}
	names := []string{"bread", "milk", "butter"}
	for _, r := range boolRules {
		// Find the paper's flagship form: {bread, milk} => butter.
		if r.Consequent == 2 && len(r.Antecedent) == 2 {
			out.TopBoolRule = fmt.Sprintf("{%s, %s} => %s (%.0f%%)",
				names[r.Antecedent[0]], names[r.Antecedent[1]], names[r.Consequent],
				100*r.Confidence)
			break
		}
	}

	// Conditional butter average among training buyers (the best a
	// presence-only paradigm can offer as an amount estimate).
	var condSum float64
	condN := 0
	for i := 0; i < train.Rows(); i++ {
		if v := train.At(i, 2); v > 0 {
			condSum += v
			condN++
		}
	}
	condAvg := 0.0
	if condN > 0 {
		condAvg = condSum / float64(condN)
	}

	// Ratio Rules side.
	miner, err := core.NewMiner(core.WithAttrNames(names))
	if err != nil {
		return nil, err
	}
	rules, err := miner.MineMatrix(train)
	if err != nil {
		return nil, fmt.Errorf("experiments: mining baskets: %w", err)
	}

	var (
		boolSSE, rrSSE float64
		presenceHits   int
	)
	for i := 0; i < test.Rows(); i++ {
		row := test.RawRow(i)
		truth := row[2]
		buysBreadAndMilk := row[0] > 0 && row[1] > 0

		// Boolean prediction: rule fires on presence of bread+milk.
		var boolPred float64
		if buysBreadAndMilk {
			boolPred = condAvg
		}
		boolSSE += (boolPred - truth) * (boolPred - truth)
		predictedBuys := buysBreadAndMilk
		actuallyBuys := truth > 0
		if predictedBuys == actuallyBuys {
			presenceHits++
		}

		// Ratio Rules prediction of the amount.
		rv, err := rules.FillRow([]float64{row[0], row[1], core.Hole}, []int{2})
		if err != nil {
			return nil, fmt.Errorf("experiments: RR fill: %w", err)
		}
		rrPred := rv[2]
		if rrPred < 0 {
			rrPred = 0
		}
		rrSSE += (rrPred - truth) * (rrPred - truth)
	}
	n := float64(test.Rows())
	out.RMSEBoolean = sqrt(boolSSE / n)
	out.RMSERatio = sqrt(rrSSE / n)
	out.PresenceAccuracy = float64(presenceHits) / n
	return out, nil
}

// String renders the comparison.
func (r *Sec63Result) String() string {
	var b strings.Builder
	b.WriteString("Sec 6.3: Boolean association rules vs Ratio Rules on dollar amounts\n\n")
	fmt.Fprintf(&b, "Boolean rules mined: %d; flagship: %s\n", r.BoolRuleCount, r.TopBoolRule)
	fmt.Fprintf(&b, "presence prediction accuracy (Boolean's home turf): %.0f%%\n\n", 100*r.PresenceAccuracy)
	fmt.Fprintf(&b, "hidden-amount RMSE: Boolean (conditional average) %.3f vs Ratio Rules %.3f\n",
		r.RMSEBoolean, r.RMSERatio)
	fmt.Fprintf(&b, "(binarizing to 1s loses the amount scale; Ratio Rules keep it)\n")
	return b.String()
}
