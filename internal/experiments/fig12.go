package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"ratiorules/internal/assoc"
	"ratiorules/internal/core"
	"ratiorules/internal/matrix"
)

// Fig12Result reproduces the qualitative comparison of Fig. 12 / Sec. 6.3:
// on a fictitious bread/butter sales dataset, quantitative association
// rules tile the data cloud with bounding rectangles while a single Ratio
// Rule fits the best line. The concrete claims checked:
//
//   - inside the training range both methods predict, RR more tightly;
//   - for the extrapolation query (bread = $8.50, beyond every training
//     purchase) no quantitative rule fires, while RR predicts ≈ $6.10.
type Fig12Result struct {
	// RR1 is the mined ratio rule (paper: bread:butter = .81:.58).
	RR1 []float64
	// QuantRuleCount is how many quantitative rules were needed to cover
	// the cloud that the single Ratio Rule describes.
	QuantRuleCount int
	// Coverage is the fraction of in-range test queries where each method
	// produced a prediction.
	CoverageQuant, CoverageRR float64
	// RMSEQuant and RMSERR compare accuracy on the queries quant rules
	// answered.
	RMSEQuant, RMSERR float64
	// Extrapolation: the bread = $8.50 query of the paper.
	ExtrapolationQuery   float64
	ExtrapolationRRPred  float64 // paper: ≈ 6.10
	ExtrapolationQuFired bool    // paper: false
}

// fig12Data builds the fictitious sales cloud of Fig. 12: bread spend up
// to ≈ $7 with butter ≈ (0.58/0.81) × bread plus scatter.
func fig12Data(n int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	x := matrix.NewDense(n, 2)
	slope := 0.58 / 0.81
	for i := 0; i < n; i++ {
		bread := 0.4 + rng.Float64()*6.6
		butter := slope*bread + 0.25*rng.NormFloat64()
		if butter < 0 {
			butter = 0
		}
		x.SetRow(i, []float64{bread, butter})
	}
	return x
}

// RunFig12 mines both rule types on the same training cloud and compares
// predictions on held-out queries plus the extrapolation query.
func RunFig12() (*Fig12Result, error) {
	train := fig12Data(600, 612)
	test := fig12Data(200, 613)

	miner, err := core.NewMiner(core.WithFixedK(1), core.WithAttrNames([]string{"bread", "butter"}))
	if err != nil {
		return nil, fmt.Errorf("experiments: configuring miner: %w", err)
	}
	rules, err := miner.MineMatrix(train)
	if err != nil {
		return nil, fmt.Errorf("experiments: mining fig12 data: %w", err)
	}
	quant, err := assoc.MineQuantitative(train, assoc.QuantConfig{
		Bins: 6, MinSupport: 0.03, MinConfidence: 0.4,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: mining quantitative rules: %w", err)
	}

	out := &Fig12Result{RR1: rules.Rule(0), QuantRuleCount: len(quant.Rules)}

	var (
		quFired, rrFired int
		quSSE, rrSSE     float64
		quCount          int
	)
	for i := 0; i < test.Rows(); i++ {
		row := test.RawRow(i)
		truth := row[1]
		qv, fired, err := quant.Predict([]float64{row[0], 0}, 1)
		if err != nil {
			return nil, fmt.Errorf("experiments: quantitative predict: %w", err)
		}
		rv, err := rules.FillRow([]float64{row[0], core.Hole}, []int{1})
		if err != nil {
			return nil, fmt.Errorf("experiments: RR predict: %w", err)
		}
		rrFired++
		if fired {
			quFired++
			quCount++
			quSSE += (qv - truth) * (qv - truth)
			rrSSE += (rv[1] - truth) * (rv[1] - truth)
		}
	}
	n := float64(test.Rows())
	out.CoverageQuant = float64(quFired) / n
	out.CoverageRR = float64(rrFired) / n
	if quCount > 0 {
		out.RMSEQuant = sqrt(quSSE / float64(quCount))
		out.RMSERR = sqrt(rrSSE / float64(quCount))
	}

	// The paper's extrapolation: bread = $8.50, outside the training range.
	out.ExtrapolationQuery = 8.5
	_, fired, err := quant.Predict([]float64{8.5, 0}, 1)
	if err != nil {
		return nil, fmt.Errorf("experiments: quantitative extrapolation: %w", err)
	}
	out.ExtrapolationQuFired = fired
	rv, err := rules.FillRow([]float64{8.5, core.Hole}, []int{1})
	if err != nil {
		return nil, fmt.Errorf("experiments: RR extrapolation: %w", err)
	}
	out.ExtrapolationRRPred = rv[1]
	return out, nil
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 60; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}

// String renders the comparison.
func (r *Fig12Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 12 / Sec 6.3: Ratio Rules vs quantitative association rules\n\n")
	fmt.Fprintf(&b, "RR1 (bread:butter) = %.2f:%.2f   (paper: 0.81:0.58)\n", r.RR1[0], r.RR1[1])
	fmt.Fprintf(&b, "quantitative rules mined: %d (vs a single Ratio Rule)\n\n", r.QuantRuleCount)
	fmt.Fprintf(&b, "prediction coverage on in-range queries: quant %.0f%%, RR %.0f%%\n",
		100*r.CoverageQuant, 100*r.CoverageRR)
	fmt.Fprintf(&b, "RMSE where quant rules fired: quant %.3f, RR %.3f\n\n", r.RMSEQuant, r.RMSERR)
	fmt.Fprintf(&b, "extrapolation, bread = $%.2f (outside training range):\n", r.ExtrapolationQuery)
	fmt.Fprintf(&b, "  quantitative rule fired: %v (paper: no rule can fire)\n", r.ExtrapolationQuFired)
	fmt.Fprintf(&b, "  Ratio Rules predict butter = $%.2f (paper: $6.10)\n", r.ExtrapolationRRPred)
	return b.String()
}
