package experiments

import (
	"fmt"
	"strings"

	"ratiorules/internal/core"
	"ratiorules/internal/dataset"
	"ratiorules/internal/regress"
	"ratiorules/internal/textplot"
)

// Fig7Row is one dataset's entry in the Fig. 7 bar chart: GE₁ for Ratio
// Rules and for col-avgs, plus the relative error the paper plots
// (RR as a percentage of col-avgs; col-avgs itself is 100% by definition).
type Fig7Row struct {
	Dataset    string
	K          int     // rules retained by the Eq. 1 cutoff
	GE1RR      float64 // Ratio Rules guessing error
	GE1ColAvgs float64 // competitor guessing error
	GE1Regress float64 // multiple linear regression (extension, not in the paper's chart)
	RelPercent float64 // 100 · GE1RR / GE1ColAvgs
}

// Fig7Result reproduces Fig. 7 ("Relative guessing error over 3
// datasets"): the paper reports RR winning on every dataset, with as
// little as one fifth the error of col-avgs.
type Fig7Result struct {
	Rows []Fig7Row
}

// RunFig7 evaluates GE₁ on the 10% test split of each dataset.
func RunFig7() (*Fig7Result, error) {
	out := &Fig7Result{}
	for _, ds := range Datasets() {
		row, err := fig7Row(ds)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, *row)
	}
	return out, nil
}

func fig7Row(ds *dataset.Dataset) (*Fig7Row, error) {
	m, err := trainOn(ds)
	if err != nil {
		return nil, err
	}
	geRR, err := core.GE1(m.rules, m.test.X)
	if err != nil {
		return nil, fmt.Errorf("experiments: GE1(RR) on %s: %w", ds.Name, err)
	}
	geCA, err := core.GE1(m.colAvgs, m.test.X)
	if err != nil {
		return nil, fmt.Errorf("experiments: GE1(col-avgs) on %s: %w", ds.Name, err)
	}
	reg, err := regress.Fit(m.train.X)
	if err != nil {
		return nil, fmt.Errorf("experiments: fitting regression on %s: %w", ds.Name, err)
	}
	geReg, err := core.GE1(reg, m.test.X)
	if err != nil {
		return nil, fmt.Errorf("experiments: GE1(regression) on %s: %w", ds.Name, err)
	}
	rel := 0.0
	if geCA > 0 {
		rel = 100 * geRR / geCA
	}
	return &Fig7Row{
		Dataset:    ds.Name,
		K:          m.rules.K(),
		GE1RR:      geRR,
		GE1ColAvgs: geCA,
		GE1Regress: geReg,
		RelPercent: rel,
	}, nil
}

// String renders the figure as a table plus the paper-style relative bar
// chart.
func (r *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 7: single-hole guessing error GE1, 90/10 train/test split\n\n")
	fmt.Fprintf(&b, "%-10s %4s %14s %14s %14s %12s\n",
		"dataset", "k", "GE1(RR)", "GE1(col-avgs)", "GE1(regress)", "RR % of CA")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %4d %14.4f %14.4f %14.4f %11.1f%%\n",
			row.Dataset, row.K, row.GE1RR, row.GE1ColAvgs, row.GE1Regress, row.RelPercent)
	}
	b.WriteByte('\n')
	names := []string{"col-avgs (reference)"}
	values := []float64{100}
	for _, row := range r.Rows {
		names = append(names, "RR on "+row.Dataset)
		values = append(values, row.RelPercent)
	}
	b.WriteString(textplot.Histogram("relative guessing error (% of col-avgs)", names, values, 40))
	return b.String()
}
