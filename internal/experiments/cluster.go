package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"strings"
	"time"

	"ratiorules/internal/cluster"
	"ratiorules/internal/core"
	"ratiorules/internal/matrix"
	"ratiorules/internal/obs"
	"ratiorules/internal/online"
)

// ClusterResult measures the sharded ingest/mining cluster against a
// single node on identical data: pushed-rows/s through the coordinator
// fan-out vs. through one local stream, and the guessing error of the
// shard-merged model vs. the single-node model — which must agree to
// float precision, because Merge sums the exact same sufficient
// statistics a single accumulator would hold (the shard-then-merge
// exactness of the paper's single-pass design, Korn et al. §5).
//
// It also reports the GE-gate fast path's before/after: the serial
// cell-at-a-time GE₁ vs. the plan-cached row-parallel GE1With the
// republish gate now uses, on the same gate-sized holdout.
type ClusterResult struct {
	Rows    int `json:"rows"`
	Width   int `json:"width"`
	Workers int `json:"workers"`
	Chunk   int `json:"chunk_rows"`

	SingleSeconds  float64 `json:"single_seconds"`
	SingleRowsPerS float64 `json:"single_rows_per_second"`

	ClusterSeconds  float64 `json:"cluster_seconds"`
	ClusterRowsPerS float64 `json:"cluster_rows_per_second"`
	Speedup         float64 `json:"speedup"`

	SingleGE1  float64 `json:"single_ge1"`
	ClusterGE1 float64 `json:"cluster_ge1"`
	GE1RelDiff float64 `json:"ge1_rel_diff"` // |cluster-single| / max(single, eps)

	GateSerialSeconds float64 `json:"gate_serial_seconds"`
	GateFastSeconds   float64 `json:"gate_fast_seconds"`
	GateSpeedup       float64 `json:"gate_speedup"`
}

// clusterData builds rank-2 latent rows with mild multiplicative noise
// plus a disjoint holdout matrix for GE comparison.
func clusterData(rows, width, holdout int) (flat [][]float64, test *matrix.Dense, err error) {
	rng := rand.New(rand.NewSource(SplitSeed))
	p1 := make([]float64, width)
	p2 := make([]float64, width)
	for j := range p1 {
		p1[j] = 1 + rng.Float64()*4
		p2[j] = 0.5 + rng.Float64()*2
	}
	gen := func(n int) [][]float64 {
		out := make([][]float64, n)
		for i := range out {
			a := 1 + rng.Float64()*9
			b := rng.Float64() * 3
			row := make([]float64, width)
			for j := range row {
				row[j] = (p1[j]*a + p2[j]*b) * (1 + 0.05*rng.NormFloat64())
			}
			out[i] = row
		}
		return out
	}
	flat = gen(rows)
	test, err = matrix.FromRows(gen(holdout))
	return flat, test, err
}

// newBenchManager builds an isolated manager whose reservoir sampling
// is seeded identically across the single-node and cluster runs, so
// both publish through the same gate decision on the same holdout.
func newBenchManager() (*memStore, *online.Manager, error) {
	store := &memStore{}
	mgr, err := online.NewManager(store, online.Config{
		RepublishRows: 1 << 30, // triggers driven explicitly
		Metrics:       obs.Default(),
		Seed:          SplitSeed,
	})
	return store, mgr, err
}

// RunCluster benchmarks a coordinator fronting workers (default 4)
// in-process worker nodes against one local stream pushing the same
// rows (default 200000) of width (default 32).
func RunCluster(rows, width, workers int) (*ClusterResult, error) {
	if rows <= 0 {
		rows = 200000
	}
	if width <= 0 {
		width = 32
	}
	if workers <= 0 {
		workers = 4
	}
	out := &ClusterResult{Rows: rows, Width: width, Workers: workers,
		Chunk: cluster.DefaultChunkRows}
	data, test, err := clusterData(rows, width, 256)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	// Single node: one live stream, timed over raw Push.
	store1, mgr1, err := newBenchManager()
	if err != nil {
		return nil, err
	}
	defer mgr1.Close()
	stream, err := mgr1.Stream("bench", 0, false)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	for _, row := range data {
		if _, err := stream.Push(ctx, row); err != nil {
			return nil, fmt.Errorf("experiments: single-node push: %w", err)
		}
	}
	out.SingleSeconds = time.Since(t0).Seconds()
	if _, err := mgr1.Republish(ctx, "bench"); err != nil {
		return nil, fmt.Errorf("experiments: single-node republish: %w", err)
	}
	single, _, ok := store1.GetWithVersion("bench")
	if !ok {
		return nil, fmt.Errorf("experiments: single-node model was not published")
	}

	// Cluster: in-process worker nodes (the ISSUE's benchmark shape),
	// coordinator fan-out session, timed over Push + Close (Close waits
	// for every ack). In-process transport measures the sharded
	// pipeline itself — chunking, hashing, reservoir, batched fold,
	// merge — rather than loopback socket throughput.
	nodes := make([]*cluster.Worker, workers)
	for i := range nodes {
		nodes[i] = cluster.NewWorker(cluster.WithWorkerObs(obs.Default()))
	}
	store2, mgr2, err := newBenchManager()
	if err != nil {
		return nil, err
	}
	defer mgr2.Close()
	coord, err := cluster.New(cluster.Config{
		LocalWorkers:  nodes,
		Manager:       mgr2,
		PullEvery:     time.Hour, // merges driven explicitly below
		HealthEvery:   time.Hour,
		RepublishRows: 1 << 30,
	})
	if err != nil {
		return nil, err
	}
	coord.Start()
	defer coord.Close(ctx)
	sess, err := coord.Ingest(ctx, "bench", 0, false)
	if err != nil {
		return nil, err
	}
	drainErr := make(chan error, 1)
	go func() {
		for ev := range sess.Acks() {
			if ev.Err != nil {
				drainErr <- ev.Err
				for range sess.Acks() {
				}
				return
			}
		}
		drainErr <- nil
	}()
	t1 := time.Now()
	for _, row := range data {
		if err := sess.Push(row); err != nil {
			return nil, fmt.Errorf("experiments: cluster push: %w", err)
		}
	}
	if err := sess.Close(); err != nil {
		return nil, fmt.Errorf("experiments: cluster session: %w", err)
	}
	out.ClusterSeconds = time.Since(t1).Seconds()
	if err := <-drainErr; err != nil {
		return nil, fmt.Errorf("experiments: cluster ack: %w", err)
	}
	if err := coord.MergeNow(ctx, "bench"); err != nil {
		return nil, fmt.Errorf("experiments: cluster merge: %w", err)
	}
	merged, _, ok := store2.GetWithVersion("bench")
	if !ok {
		return nil, fmt.Errorf("experiments: merged model was not published")
	}

	if out.SingleSeconds > 0 {
		out.SingleRowsPerS = float64(rows) / out.SingleSeconds
	}
	if out.ClusterSeconds > 0 {
		out.ClusterRowsPerS = float64(rows) / out.ClusterSeconds
	}
	if out.SingleRowsPerS > 0 {
		out.Speedup = out.ClusterRowsPerS / out.SingleRowsPerS
	}

	// Exactness: the merged model must guess exactly like the
	// single-node one on a holdout neither trained on.
	if out.SingleGE1, err = core.GE1With(single, test, core.GEOptions{}); err != nil {
		return nil, err
	}
	if out.ClusterGE1, err = core.GE1With(merged, test, core.GEOptions{}); err != nil {
		return nil, err
	}
	denom := math.Max(math.Abs(out.SingleGE1), 1e-300)
	out.GE1RelDiff = math.Abs(out.ClusterGE1-out.SingleGE1) / denom

	// GE-gate before/after on a gate-sized holdout: the serial
	// cell-at-a-time GE1 every republish used to pay vs. the plan-cached
	// GE1With the gate runs now. Repeat until ~100ms of serial work so
	// the ratio is stable.
	reps := 1
	for {
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := core.GE1(merged, test); err != nil {
				return nil, err
			}
		}
		out.GateSerialSeconds = time.Since(start).Seconds() / float64(reps)
		if out.GateSerialSeconds*float64(reps) >= 0.1 || reps >= 256 {
			break
		}
		reps *= 4
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := core.GE1With(merged, test, core.GEOptions{}); err != nil {
			return nil, err
		}
	}
	out.GateFastSeconds = time.Since(start).Seconds() / float64(reps)
	if out.GateFastSeconds > 0 {
		out.GateSpeedup = out.GateSerialSeconds / out.GateFastSeconds
	}
	return out, nil
}

// String renders the cluster-vs-single comparison.
func (r *ClusterResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharded cluster: %d rows x %d cols over %d workers (chunk %d)\n\n",
		r.Rows, r.Width, r.Workers, r.Chunk)
	fmt.Fprintf(&b, "%-36s %14.0f rows/s (%.2fs)\n", "single node push",
		r.SingleRowsPerS, r.SingleSeconds)
	fmt.Fprintf(&b, "%-36s %14.0f rows/s (%.2fs)\n", "cluster fan-out push",
		r.ClusterRowsPerS, r.ClusterSeconds)
	fmt.Fprintf(&b, "%-36s %14.2fx\n", "speedup", r.Speedup)
	fmt.Fprintf(&b, "\n%-36s %14.6g\n", "single-node GE1", r.SingleGE1)
	fmt.Fprintf(&b, "%-36s %14.6g\n", "shard-merged GE1", r.ClusterGE1)
	fmt.Fprintf(&b, "%-36s %14.3g (exact shard merge)\n", "relative difference", r.GE1RelDiff)
	fmt.Fprintf(&b, "\n%-36s %14s\n", "GE gate serial (before)",
		time.Duration(float64(time.Second)*r.GateSerialSeconds).Round(time.Microsecond))
	fmt.Fprintf(&b, "%-36s %14s\n", "GE gate plan-cached (after)",
		time.Duration(float64(time.Second)*r.GateFastSeconds).Round(time.Microsecond))
	fmt.Fprintf(&b, "%-36s %14.2fx\n", "gate speedup", r.GateSpeedup)
	return b.String()
}
