package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"ratiorules/internal/core"
	"ratiorules/internal/obs"
	"ratiorules/internal/online"
)

// OnlineResult measures the live-ingest subsystem off the HTTP path:
// raw Push throughput into a StreamMiner-backed stream, the latency of
// a republish (snapshot, re-mine, GE gate, publish), and how much of
// that latency the GE gate itself costs.
type OnlineResult struct {
	Rows          int
	Width         int
	ReservoirSize int

	PushTime      time.Duration // all rows, excluding republishes
	RowsPerSecond float64

	Republishes    int
	Promotions     int
	Rejections     int
	RepublishTotal time.Duration
	RepublishMean  time.Duration

	// GEGate figures come from the rr_online_ge_gate_seconds histogram;
	// OverheadFrac is gate time as a fraction of total republish time.
	GEGateTotal  time.Duration
	GEGateMean   time.Duration
	OverheadFrac float64
}

// memStore is the minimal online.ModelStore: a version counter and the
// last published model, enough to exercise the promotion path.
type memStore struct {
	mu      sync.Mutex
	rules   *core.Rules
	version int
}

func (s *memStore) Put(_ context.Context, _ string, r *core.Rules) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules, s.version = r, s.version+1
	return s.version, nil
}

func (s *memStore) GetWithVersion(string) (*core.Rules, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rules, s.version, s.rules != nil
}

// onlineGateSeconds snapshots the online republish/gate histograms.
func onlineGateSeconds() (gateSum, gateCount, repSum float64) {
	for _, s := range obs.Default().Gather() {
		switch s.Name {
		case "rr_online_ge_gate_seconds_sum":
			gateSum = s.Value
		case "rr_online_ge_gate_seconds_count":
			gateCount = s.Value
		case "rr_online_republish_seconds_sum":
			repSum = s.Value
		}
	}
	return gateSum, gateCount, repSum
}

// RunOnline streams rows <= 0 ? 100000 : rows synthetic ratio rows of
// width <= 0 ? 32 : width through one live stream, republishing every
// rows/16 rows the way the row-count trigger would. Rows follow a fixed
// latent profile with mild multiplicative noise; successive candidates
// hover around the same tiny GE, so the run exercises both gate
// outcomes and the measured costs are the steady-state ones.
func RunOnline(rows, width int) (*OnlineResult, error) {
	if rows <= 0 {
		rows = 100000
	}
	if width <= 0 {
		width = 32
	}
	republishes := 16
	chunk := rows / republishes
	if chunk < 1 {
		chunk = 1
	}

	store := &memStore{}
	mgr, err := online.NewManager(store, online.Config{
		// Row-count triggering is driven manually below so the push
		// loop times only pushes.
		RepublishRows: rows + 1,
		Metrics:       obs.Default(),
		Seed:          SplitSeed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: online manager: %w", err)
	}
	defer mgr.Close()
	stream, err := mgr.Stream("bench", 0, false)
	if err != nil {
		return nil, fmt.Errorf("experiments: online stream: %w", err)
	}

	// A rank-1 latent profile: row = profile * scale * (1 + noise).
	rng := rand.New(rand.NewSource(SplitSeed))
	profile := make([]float64, width)
	for j := range profile {
		profile[j] = 1 + rng.Float64()*4
	}
	data := make([][]float64, rows)
	for i := range data {
		scale := 1 + rng.Float64()*9
		row := make([]float64, width)
		for j := range row {
			row[j] = profile[j] * scale * (1 + 0.05*rng.NormFloat64())
		}
		data[i] = row
	}

	out := &OnlineResult{Rows: rows, Width: width,
		ReservoirSize: online.DefaultReservoirSize}
	ctx := context.Background()
	gateSum0, gateCount0, repSum0 := onlineGateSeconds()

	var pushTime time.Duration
	for start := 0; start < rows; start += chunk {
		end := start + chunk
		if end > rows {
			end = rows
		}
		t0 := time.Now()
		for _, row := range data[start:end] {
			if _, err := stream.Push(ctx, row); err != nil {
				return nil, fmt.Errorf("experiments: online push: %w", err)
			}
		}
		pushTime += time.Since(t0)
		res, err := mgr.Republish(ctx, "bench")
		if err != nil {
			return nil, fmt.Errorf("experiments: online republish: %w", err)
		}
		out.Republishes++
		if res.Promoted {
			out.Promotions++
		} else {
			out.Rejections++
		}
	}

	gateSum1, gateCount1, repSum1 := onlineGateSeconds()
	out.PushTime = pushTime
	if pushTime > 0 {
		out.RowsPerSecond = float64(rows) / pushTime.Seconds()
	}
	out.RepublishTotal = time.Duration((repSum1 - repSum0) * float64(time.Second))
	if out.Republishes > 0 {
		out.RepublishMean = out.RepublishTotal / time.Duration(out.Republishes)
	}
	out.GEGateTotal = time.Duration((gateSum1 - gateSum0) * float64(time.Second))
	if n := gateCount1 - gateCount0; n > 0 {
		out.GEGateMean = time.Duration((gateSum1 - gateSum0) / n * float64(time.Second))
	}
	if rep := repSum1 - repSum0; rep > 0 {
		out.OverheadFrac = (gateSum1 - gateSum0) / rep
	}
	return out, nil
}

// String renders the ingest/republish/gate timings.
func (r *OnlineResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Online ingest: %d rows x %d cols, reservoir %d\n\n",
		r.Rows, r.Width, r.ReservoirSize)
	fmt.Fprintf(&b, "%-34s %12s\n", "push time (all rows)", r.PushTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-34s %12.0f\n", "push throughput (rows/s)", r.RowsPerSecond)
	fmt.Fprintf(&b, "%-34s %12d (%d promoted, %d rejected)\n", "republishes",
		r.Republishes, r.Promotions, r.Rejections)
	fmt.Fprintf(&b, "%-34s %12s\n", "republish latency (mean)", r.RepublishMean.Round(time.Microsecond))
	fmt.Fprintf(&b, "%-34s %12s\n", "GE gate latency (mean)", r.GEGateMean.Round(time.Microsecond))
	fmt.Fprintf(&b, "\nGE gate is %.1f%% of republish time\n", 100*r.OverheadFrac)
	return b.String()
}
