package experiments

import (
	"fmt"
	"strings"
	"time"

	"ratiorules/internal/core"
	"ratiorules/internal/quest"
	"ratiorules/internal/textplot"
)

// Fig8Point is one measurement of the scale-up experiment.
type Fig8Point struct {
	Rows    int
	Elapsed time.Duration
	K       int // rules retained, to confirm the pipeline ran end to end
}

// Fig8Result reproduces Fig. 8 ("Scale-up: time to compute RR versus db
// size N in records") on Quest-style synthetic data with M = 100 columns.
// The paper's claim is linearity in N with a negligible O(M³) y-intercept.
type Fig8Result struct {
	Cols   int
	Points []Fig8Point
	// FitSecondsPerMRows is the least-squares slope in seconds per million
	// rows, and FitInterceptMS the y-intercept in milliseconds (≈ the
	// eigensolve cost).
	FitSecondsPerMRows float64
	FitInterceptMS     float64
	// MaxResidualFrac is the largest relative deviation of a measurement
	// from the linear fit — small values confirm the paper's straight line.
	MaxResidualFrac float64
}

// DefaultFig8Sizes mirrors the paper's sweep of N up to 100,000 rows.
var DefaultFig8Sizes = []int{10000, 25000, 50000, 75000, 100000}

// RunFig8 streams Quest data of each size through the single-pass miner
// and measures wall-clock time (generation + covariance accumulation +
// eigensolve), exactly the work the paper timed.
func RunFig8(sizes []int) (*Fig8Result, error) {
	if len(sizes) == 0 {
		sizes = DefaultFig8Sizes
	}
	cfg := quest.DefaultConfig(0)
	out := &Fig8Result{Cols: cfg.Cols}
	miner, err := core.NewMiner()
	if err != nil {
		return nil, fmt.Errorf("experiments: configuring miner: %w", err)
	}
	for _, n := range sizes {
		if n < 2 {
			return nil, fmt.Errorf("experiments: scale-up size %d too small", n)
		}
		c := cfg
		c.Rows = n
		src, err := quest.NewSource(c)
		if err != nil {
			return nil, fmt.Errorf("experiments: quest source for N=%d: %w", n, err)
		}
		start := time.Now()
		rules, err := miner.Mine(src)
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("experiments: mining N=%d: %w", n, err)
		}
		out.Points = append(out.Points, Fig8Point{Rows: n, Elapsed: elapsed, K: rules.K()})
	}
	out.fit()
	return out, nil
}

// fit computes the least-squares line time = a + b·N and the worst
// relative residual.
func (r *Fig8Result) fit() {
	n := float64(len(r.Points))
	if n < 2 {
		return
	}
	var sx, sy, sxx, sxy float64
	for _, p := range r.Points {
		x := float64(p.Rows)
		y := p.Elapsed.Seconds()
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	r.FitSecondsPerMRows = b * 1e6
	r.FitInterceptMS = a * 1e3
	for _, p := range r.Points {
		pred := a + b*float64(p.Rows)
		if pred <= 0 {
			continue
		}
		frac := abs(p.Elapsed.Seconds()-pred) / pred
		if frac > r.MaxResidualFrac {
			r.MaxResidualFrac = frac
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// String renders the measurements and the linear fit.
func (r *Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: scale-up, time to compute Ratio Rules vs N (M=%d)\n\n", r.Cols)
	fmt.Fprintf(&b, "%10s %14s %6s\n", "rows N", "time", "k")
	xs := make([]float64, len(r.Points))
	ys := make([]float64, len(r.Points))
	for i, p := range r.Points {
		fmt.Fprintf(&b, "%10d %14s %6d\n", p.Rows, p.Elapsed.Round(time.Millisecond), p.K)
		xs[i] = float64(p.Rows)
		ys[i] = p.Elapsed.Seconds()
	}
	fmt.Fprintf(&b, "\nlinear fit: %.3f s per million rows, intercept %.1f ms (eigensolve), max residual %.1f%%\n\n",
		r.FitSecondsPerMRows, r.FitInterceptMS, 100*r.MaxResidualFrac)
	b.WriteString(textplot.Lines("time vs N", "rows", "seconds",
		[]textplot.Series{{Name: "measured", X: xs, Y: ys, Marker: '+'}}, 50, 12))
	return b.String()
}
