package experiments

import "testing"

// TestRunClusterExact runs the cluster experiment small and checks the
// property the benchmark exists to demonstrate: the shard-merged model
// guesses exactly like the single-node one (Merge sums the same
// sufficient statistics), and the GE-gate fast path agrees with the
// serial gate it replaced.
func TestRunClusterExact(t *testing.T) {
	res, err := RunCluster(6000, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.GE1RelDiff > 1e-9 {
		t.Fatalf("shard merge not exact: single GE1 %.17g, cluster GE1 %.17g (rel %.3g)",
			res.SingleGE1, res.ClusterGE1, res.GE1RelDiff)
	}
	if res.SingleRowsPerS <= 0 || res.ClusterRowsPerS <= 0 {
		t.Fatalf("throughput not measured: %+v", res)
	}
	if res.GateSpeedup <= 0 {
		t.Fatalf("gate timing not measured: %+v", res)
	}
	if s := res.String(); s == "" {
		t.Fatal("empty render")
	}
}
