package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"ratiorules/internal/textplot"
)

func TestScatterWriteDat(t *testing.T) {
	res := &ScatterResult{Points: []textplot.Point{{X: 1, Y: 2}, {X: -3.5, Y: 0}}}
	var buf strings.Builder
	if err := res.WriteDat(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || lines[0] != "1 2" || lines[1] != "-3.5 0" {
		t.Errorf("dat = %q", buf.String())
	}
}

func TestFig8WriteDat(t *testing.T) {
	res := &Fig8Result{Points: []Fig8Point{{Rows: 1000, Elapsed: 250 * time.Millisecond}}}
	var buf strings.Builder
	if err := res.WriteDat(&buf); err != nil {
		t.Fatal(err)
	}
	fields := strings.Fields(strings.TrimSpace(buf.String()))
	if len(fields) != 2 || fields[0] != "1000" {
		t.Fatalf("dat = %q", buf.String())
	}
	if v, err := strconv.ParseFloat(fields[1], 64); err != nil || v != 0.25 {
		t.Errorf("seconds = %q", fields[1])
	}
}

func TestFig6WriteDat(t *testing.T) {
	res := &Fig6Result{
		Holes:   []int{1, 2},
		RR:      []float64{10, 11},
		ColAvgs: []float64{20, 21},
		Regress: []float64{5, 30},
	}
	var buf strings.Builder
	if err := res.WriteDat(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || lines[1] != "2 11 21 30" {
		t.Errorf("dat = %q", buf.String())
	}
}
