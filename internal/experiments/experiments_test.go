package experiments

import (
	"strings"
	"testing"
)

func TestDatasetByName(t *testing.T) {
	for _, name := range []string{"nba", "baseball", "abalone"} {
		ds, err := DatasetByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Name != name {
			t.Errorf("Name = %q, want %q", ds.Name, name)
		}
	}
	if _, err := DatasetByName("bogus"); err == nil {
		t.Error("unknown dataset must fail")
	}
}

func TestDatasetsOrder(t *testing.T) {
	all := Datasets()
	if len(all) != 3 {
		t.Fatalf("got %d datasets, want 3", len(all))
	}
	want := []string{"nba", "baseball", "abalone"}
	for i, ds := range all {
		if ds.Name != want[i] {
			t.Errorf("dataset %d = %q, want %q", i, ds.Name, want[i])
		}
	}
}

func TestFig7RRWinsEverywhere(t *testing.T) {
	// The paper's headline: "the proposed method was the clear winner for
	// all datasets we tried and gave as low as one-fifth the guessing
	// error of col-avgs".
	res, err := RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	bestRel := 101.0
	for _, row := range res.Rows {
		if row.GE1RR >= row.GE1ColAvgs {
			t.Errorf("%s: GE1(RR)=%v not below GE1(col-avgs)=%v", row.Dataset, row.GE1RR, row.GE1ColAvgs)
		}
		if row.RelPercent <= 0 || row.RelPercent >= 100 {
			t.Errorf("%s: relative error %v%% outside (0, 100)", row.Dataset, row.RelPercent)
		}
		if row.K < 1 {
			t.Errorf("%s: cutoff retained %d rules", row.Dataset, row.K)
		}
		if row.RelPercent < bestRel {
			bestRel = row.RelPercent
		}
	}
	// "up to 5 times less" — at least one dataset at or below ~35%.
	if bestRel > 35 {
		t.Errorf("best relative error %v%%, want a dataset at <= 35%% (paper: down to 20%%)", bestRel)
	}
	s := res.String()
	for _, want := range []string{"nba", "baseball", "abalone", "col-avgs"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
}

func TestFig6ShapeClaims(t *testing.T) {
	for _, name := range []string{"nba", "baseball"} {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := RunFig6(name)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.RR) != MaxHoles || len(res.ColAvgs) != MaxHoles {
				t.Fatalf("curve lengths %d/%d, want %d", len(res.RR), len(res.ColAvgs), MaxHoles)
			}
			for i := range res.RR {
				// RR below col-avgs at every h.
				if res.RR[i] >= res.ColAvgs[i] {
					t.Errorf("h=%d: RR %v >= col-avgs %v", i+1, res.RR[i], res.ColAvgs[i])
				}
			}
			// col-avgs flat: max/min within a sampling wobble.
			lo, hi := res.ColAvgs[0], res.ColAvgs[0]
			for _, v := range res.ColAvgs {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if (hi-lo)/hi > 0.15 {
				t.Errorf("col-avgs curve not ≈ flat: %v", res.ColAvgs)
			}
			// RR stable: h=5 within 3× of h=1 (paper: "relatively stable").
			if res.RR[MaxHoles-1] > 3*res.RR[0] {
				t.Errorf("RR curve unstable: %v", res.RR)
			}
			if !strings.Contains(res.String(), "Figure 6") {
				t.Error("rendering broken")
			}
		})
	}
}

func TestFig6UnknownDataset(t *testing.T) {
	if _, err := RunFig6("nope"); err == nil {
		t.Error("unknown dataset must fail")
	}
}

func TestFig8LinearScaleUp(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-up sweep is slow")
	}
	// Scaled-down sweep to keep the test fast; linearity is what matters.
	res, err := RunFig8([]int{2000, 4000, 8000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("got %d points", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Elapsed <= 0 {
			t.Errorf("N=%d: non-positive time %v", p.Rows, p.Elapsed)
		}
		if p.K < 1 {
			t.Errorf("N=%d: no rules mined", p.Rows)
		}
	}
	// Close to a straight line (generous bound for CI noise).
	if res.MaxResidualFrac > 0.5 {
		t.Errorf("max residual %v, want a near-linear scale-up", res.MaxResidualFrac)
	}
	if !strings.Contains(res.String(), "Figure 8") {
		t.Error("rendering broken")
	}
}

func TestFig8Validation(t *testing.T) {
	if _, err := RunFig8([]int{1}); err == nil {
		t.Error("N=1 must fail")
	}
}

func TestTable2Interpretations(t *testing.T) {
	res, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rules.K() != 3 {
		t.Fatalf("K = %d, want 3", res.Rules.K())
	}
	// RR1 "court action": minutes:points around 2:1 (band 1.5-3.5).
	if res.MinutesPointsRatio < 1.5 || res.MinutesPointsRatio > 3.5 {
		t.Errorf("minutes:points = %v:1, want ≈ 2:1", res.MinutesPointsRatio)
	}
	if !res.RR2Opposed {
		t.Error("RR2 must oppose rebounds and points (field position)")
	}
	if !res.RR3Opposed {
		t.Error("RR3 must oppose rebounds and assists+steals (height)")
	}
	s := res.String()
	for _, want := range []string{"Table 2", "court action", "minutes played", "RR3"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
}

func TestScatterNBAOutliers(t *testing.T) {
	// Fig. 11(a): the RR1/RR2 view separates Jordan and Rodman from the
	// cloud; Jordan leads RR1 ("most active in almost every category").
	res, err := RunScatter("nba", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 459 {
		t.Fatalf("points = %d, want 459", len(res.Points))
	}
	if len(res.Named) != 4 {
		t.Fatalf("named points = %d, want 4", len(res.Named))
	}
	var jordan *struct{ x, y float64 }
	maxX := res.Points[0].X
	for _, p := range res.Points {
		if p.X > maxX {
			maxX = p.X
		}
		if p.Label == "Jordan" {
			jordan = &struct{ x, y float64 }{p.X, p.Y}
		}
	}
	if jordan == nil {
		t.Fatal("Jordan not labeled")
	}
	if jordan.x < 0.97*maxX {
		t.Errorf("Jordan RR1 = %v, want the maximum (%v)", jordan.x, maxX)
	}
	if !strings.Contains(res.String(), "Jordan") {
		t.Error("rendering must list the labeled outliers")
	}
}

func TestScatterRodmanJordanSeparatedOnRR2(t *testing.T) {
	res, err := RunScatter("nba", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var jordanY, rodmanY float64
	for _, p := range res.Named {
		switch p.Label {
		case "Jordan":
			jordanY = p.Y
		case "Rodman":
			rodmanY = p.Y
		}
	}
	// Fig. 11(a): Jordan and Rodman sit at opposite RR2 extremes.
	if jordanY*rodmanY >= 0 {
		t.Errorf("Jordan RR2 %v and Rodman RR2 %v must have opposite signs", jordanY, rodmanY)
	}
}

func TestScatterOtherDatasets(t *testing.T) {
	for _, name := range []string{"baseball", "abalone"} {
		res, err := RunScatter(name, 1, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Points) == 0 {
			t.Errorf("%s: no points", name)
		}
		if len(res.Named) != 0 {
			t.Errorf("%s: unexpected labeled points", name)
		}
	}
}

func TestScatterValidation(t *testing.T) {
	if _, err := RunScatter("nba", 1, 1); err == nil {
		t.Error("equal axes must fail")
	}
	if _, err := RunScatter("nba", 0, 2); err == nil {
		t.Error("rule index 0 must fail")
	}
	if _, err := RunScatter("nope", 1, 2); err == nil {
		t.Error("unknown dataset must fail")
	}
}

func TestFig12Claims(t *testing.T) {
	res, err := RunFig12()
	if err != nil {
		t.Fatal(err)
	}
	// RR1 close to the paper's 0.81:0.58.
	if res.RR1[0] < 0.7 || res.RR1[0] > 0.9 || res.RR1[1] < 0.45 || res.RR1[1] > 0.7 {
		t.Errorf("RR1 = %v, want ≈ (0.81, 0.58)", res.RR1)
	}
	// A single rule vs many rectangles.
	if res.QuantRuleCount < 2 {
		t.Errorf("quantitative rules = %d, want several rectangles", res.QuantRuleCount)
	}
	// RR covers everything; quant rules less.
	if res.CoverageRR != 1 {
		t.Errorf("RR coverage = %v, want 1", res.CoverageRR)
	}
	if res.CoverageQuant > res.CoverageRR {
		t.Errorf("quant coverage %v exceeds RR %v", res.CoverageQuant, res.CoverageRR)
	}
	// The extrapolation punchline.
	if res.ExtrapolationQuFired {
		t.Error("quantitative rules fired at bread=$8.50; the paper expects none to fire")
	}
	want := 8.5 * 0.58 / 0.81
	if res.ExtrapolationRRPred < want-0.5 || res.ExtrapolationRRPred > want+0.5 {
		t.Errorf("RR extrapolation = %v, want ≈ %v (paper: 6.10)", res.ExtrapolationRRPred, want)
	}
	// RR at least as accurate where quant fires.
	if res.RMSERR > res.RMSEQuant {
		t.Errorf("RMSE RR %v worse than quant %v on quant-covered queries", res.RMSERR, res.RMSEQuant)
	}
	if !strings.Contains(res.String(), "8.50") {
		t.Error("rendering broken")
	}
}

func TestCutoffSweep(t *testing.T) {
	res, err := RunCutoff("abalone")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 8 { // k = 0..7
		t.Fatalf("points = %d, want 8", len(res.Points))
	}
	if res.Points[0].K != 0 || res.Points[0].Energy != 0 {
		t.Errorf("k=0 point = %+v", res.Points[0])
	}
	// Energy monotone nondecreasing in k, ending at 100%.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Energy < res.Points[i-1].Energy-1e-12 {
			t.Error("energy not monotone in k")
		}
	}
	last := res.Points[len(res.Points)-1]
	if last.Energy < 0.999 {
		t.Errorf("full-k energy = %v, want ≈ 1", last.Energy)
	}
	// The chosen k must beat k=0 (col-avgs).
	chosen := res.Points[res.ChosenK]
	if chosen.GE1 >= res.Points[0].GE1 {
		t.Errorf("chosen k=%d GE1 %v not below col-avgs %v", res.ChosenK, chosen.GE1, res.Points[0].GE1)
	}
	if !strings.Contains(res.String(), "Eq. 1 cutoff") {
		t.Error("rendering broken")
	}
}

func TestCutoffUnknownDataset(t *testing.T) {
	if _, err := RunCutoff("nope"); err == nil {
		t.Error("unknown dataset must fail")
	}
}

func TestSec63BooleanComparison(t *testing.T) {
	res, err := RunSec63()
	if err != nil {
		t.Fatal(err)
	}
	if res.TopBoolRule == "" {
		t.Error("the flagship {bread, milk} => butter rule was not mined")
	}
	if res.BoolRuleCount < 1 {
		t.Errorf("BoolRuleCount = %d", res.BoolRuleCount)
	}
	// Boolean rules are fine at presence...
	if res.PresenceAccuracy < 0.9 {
		t.Errorf("presence accuracy = %v, want >= 0.9", res.PresenceAccuracy)
	}
	// ...but lose badly on amounts: RR at least 3x more accurate.
	if res.RMSERatio >= res.RMSEBoolean/3 {
		t.Errorf("RMSE: RR %v vs Boolean %v, want RR at least 3x better",
			res.RMSERatio, res.RMSEBoolean)
	}
	if !strings.Contains(res.String(), "butter") {
		t.Error("rendering broken")
	}
}

func TestRobustAblation(t *testing.T) {
	res, err := RunRobust(0)
	if err != nil {
		t.Fatal(err)
	}
	// Plain mining on corrupted data must degrade noticeably...
	if res.GE1Plain < 1.5*res.GE1Clean {
		t.Errorf("plain GE1 %v vs clean %v: corruption should hurt", res.GE1Plain, res.GE1Clean)
	}
	// ...and robust mining must recover most of the gap.
	if res.GE1Robust > 1.3*res.GE1Clean {
		t.Errorf("robust GE1 %v vs clean %v: trimming should recover", res.GE1Robust, res.GE1Clean)
	}
	if res.TrimmedRows == 0 {
		t.Error("robust mining trimmed nothing on corrupted data")
	}
	if !strings.Contains(res.String(), "robust mining") {
		t.Error("rendering broken")
	}
}

func TestRobustAblationValidation(t *testing.T) {
	if _, err := RunRobust(2); err == nil {
		t.Error("fraction >= 1 must fail")
	}
}

func TestLearnCurve(t *testing.T) {
	res, err := RunLearnCurve("abalone")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 4 {
		t.Fatalf("only %d points", len(res.Points))
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if first.TrainRows >= last.TrainRows {
		t.Error("training sizes not increasing")
	}
	// RR beats col-avgs even with the smallest training set, and the error
	// does not grow with more data.
	for _, p := range res.Points {
		if p.GE1RR >= p.GE1ColAvgs {
			t.Errorf("rows=%d: RR %v >= col-avgs %v", p.TrainRows, p.GE1RR, p.GE1ColAvgs)
		}
	}
	if last.GE1RR > 1.2*first.GE1RR {
		t.Errorf("GE1 grew with training size: first %v, last %v", first.GE1RR, last.GE1RR)
	}
	if !strings.Contains(res.String(), "Learning curve") {
		t.Error("rendering broken")
	}
}

func TestLearnCurveUnknownDataset(t *testing.T) {
	if _, err := RunLearnCurve("nope"); err == nil {
		t.Error("unknown dataset must fail")
	}
}

func TestBandsCalibration(t *testing.T) {
	res, err := RunBands("abalone")
	if err != nil {
		t.Fatal(err)
	}
	// Single-hole fills keep most of the row known, so the projection
	// residual should be roughly calibrated: 2-sigma coverage in the
	// broad 80-100% range, band scale within 2x of the true error.
	if res.Coverage2 < 0.8 {
		t.Errorf("2-sigma coverage = %v, want >= 0.8", res.Coverage2)
	}
	if res.Coverage1 < 0.4 {
		t.Errorf("1-sigma coverage = %v, want >= 0.4", res.Coverage1)
	}
	if res.MeanBandToError < 0.5 || res.MeanBandToError > 2 {
		t.Errorf("band/error ratio = %v, want within [0.5, 2]", res.MeanBandToError)
	}
	if !strings.Contains(res.String(), "calibration") {
		t.Error("rendering broken")
	}
}

func TestBandsUnknownDataset(t *testing.T) {
	if _, err := RunBands("nope"); err == nil {
		t.Error("unknown dataset must fail")
	}
}
