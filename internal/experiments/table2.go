package experiments

import (
	"fmt"
	"math"
	"strings"

	"ratiorules/internal/core"
	"ratiorules/internal/dataset"
	"ratiorules/internal/textplot"
)

// Table2Result reproduces Table 2 ("Relative values of the RRs from
// `nba`"): the first three Ratio Rules of the nba dataset, together with
// the structural checks behind the paper's interpretation (Sec. 6.2):
//
//   - RR1 "court action": minutes:points ≈ 2:1, everything non-negative;
//   - RR2 "field position": rebounds against points (negative correlation);
//   - RR3 "height": rebounds against assists/steals.
type Table2Result struct {
	Rules *core.Rules
	// MinutesPointsRatio is RR1's minutes-played : points ratio (paper ≈ 2).
	MinutesPointsRatio float64
	// RR2Opposed reports whether total rebounds and points carry opposite
	// signs in RR2.
	RR2Opposed bool
	// RR2ReboundsPointsRatio is |rebounds|:|points| within RR2 (paper ≈ 2.45).
	RR2ReboundsPointsRatio float64
	// RR3Opposed reports whether rebounds oppose assists+steals in RR3.
	RR3Opposed bool
}

// Attribute indices in dataset.NBAAttrs.
const (
	nbaMinutes = 0
	nbaPoints  = 7
	nbaTotReb  = 9
	nbaAssists = 10
	nbaSteals  = 11
)

// RunTable2 mines k = 3 rules from the full nba dataset (the paper presents
// the mined rules, not a split) and derives the interpretation metrics.
func RunTable2() (*Table2Result, error) {
	ds := dataset.NBA()
	miner, err := core.NewMiner(core.WithFixedK(3), core.WithAttrNames(ds.Attrs))
	if err != nil {
		return nil, fmt.Errorf("experiments: configuring miner: %w", err)
	}
	rules, err := miner.MineMatrix(ds.X)
	if err != nil {
		return nil, fmt.Errorf("experiments: mining nba: %w", err)
	}
	out := &Table2Result{Rules: rules}
	rr1, rr2, rr3 := rules.Rule(0), rules.Rule(1), rules.Rule(2)
	if rr1[nbaPoints] != 0 {
		out.MinutesPointsRatio = rr1[nbaMinutes] / rr1[nbaPoints]
	}
	out.RR2Opposed = rr2[nbaTotReb]*rr2[nbaPoints] < 0
	if rr2[nbaPoints] != 0 {
		out.RR2ReboundsPointsRatio = math.Abs(rr2[nbaTotReb] / rr2[nbaPoints])
	}
	out.RR3Opposed = rr3[nbaTotReb]*(rr3[nbaAssists]+rr3[nbaSteals]) < 0
	return out, nil
}

// String renders the rule table plus per-rule histograms (the display step
// of the paper's Fig. 10 methodology) and the interpretation summary.
func (r *Table2Result) String() string {
	var b strings.Builder
	b.WriteString("Table 2: relative values of the RRs from 'nba'\n\n")
	b.WriteString(r.Rules.String())
	b.WriteByte('\n')
	names := r.Rules.AttrNames()
	for i := 0; i < r.Rules.K(); i++ {
		b.WriteString(textplot.Histogram(fmt.Sprintf("RR%d coefficients", i+1), names, r.Rules.Rule(i), 30))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "interpretation checks (paper, Sec. 6.2):\n")
	fmt.Fprintf(&b, "  RR1 'court action': minutes:points = %.2f:1 (paper ≈ 2:1)\n", r.MinutesPointsRatio)
	fmt.Fprintf(&b, "  RR2 'field position': rebounds vs points opposed = %v, ratio %.2f:1 (paper ≈ 2.45:1)\n",
		r.RR2Opposed, r.RR2ReboundsPointsRatio)
	fmt.Fprintf(&b, "  RR3 'height': rebounds vs assists+steals opposed = %v\n", r.RR3Opposed)
	return b.String()
}
