package experiments

import (
	"fmt"
	"strings"

	"ratiorules/internal/core"
	"ratiorules/internal/regress"
	"ratiorules/internal/textplot"
)

// MaxHoles is the largest simultaneous hole count of Fig. 6.
const MaxHoles = 5

// Fig6Result reproduces Fig. 6 ("Guessing error vs. number of holes") for
// one dataset: GEh for h = 1..5 under Ratio Rules, col-avgs and (as an
// extension) multiple linear regression. The paper's claims: RR stays well
// below col-avgs, col-avgs is exactly flat, and RR is stable in h.
type Fig6Result struct {
	Dataset string
	Holes   []int
	RR      []float64
	ColAvgs []float64
	Regress []float64
}

// RunFig6 evaluates GEh curves on the dataset's 10% test split.
func RunFig6(name string) (*Fig6Result, error) {
	ds, err := DatasetByName(name)
	if err != nil {
		return nil, err
	}
	m, err := trainOn(ds)
	if err != nil {
		return nil, err
	}
	cfg := core.GEhConfig{SetsPerRow: 20, Seed: SplitSeed}
	rr, err := core.GECurve(m.rules, m.test.X, MaxHoles, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: GEh(RR) on %s: %w", name, err)
	}
	ca, err := core.GECurve(m.colAvgs, m.test.X, MaxHoles, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: GEh(col-avgs) on %s: %w", name, err)
	}
	reg, err := regress.Fit(m.train.X)
	if err != nil {
		return nil, fmt.Errorf("experiments: fitting regression on %s: %w", name, err)
	}
	rg, err := core.GECurve(reg, m.test.X, MaxHoles, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: GEh(regression) on %s: %w", name, err)
	}
	holes := make([]int, MaxHoles)
	for i := range holes {
		holes[i] = i + 1
	}
	return &Fig6Result{Dataset: name, Holes: holes, RR: rr, ColAvgs: ca, Regress: rg}, nil
}

// String renders the curves as a table and an ASCII plot.
func (r *Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: guessing error vs. number of holes (%s)\n\n", r.Dataset)
	fmt.Fprintf(&b, "%6s %14s %14s %14s\n", "holes", "GEh(RR)", "GEh(col-avgs)", "GEh(regress)")
	for i, h := range r.Holes {
		fmt.Fprintf(&b, "%6d %14.4f %14.4f %14.4f\n", h, r.RR[i], r.ColAvgs[i], r.Regress[i])
	}
	b.WriteByte('\n')
	xs := make([]float64, len(r.Holes))
	for i, h := range r.Holes {
		xs[i] = float64(h)
	}
	b.WriteString(textplot.Lines(
		fmt.Sprintf("GEh vs h ('%s')", r.Dataset), "number of holes", "guessing error",
		[]textplot.Series{
			{Name: "col-avgs", X: xs, Y: r.ColAvgs, Marker: 'c'},
			{Name: "Ratio Rules", X: xs, Y: r.RR, Marker: 'r'},
		}, 50, 14))
	return b.String()
}
