package experiments

import (
	"fmt"
	"strings"

	"ratiorules/internal/core"
	"ratiorules/internal/textplot"
)

// LearnPoint is one training-size measurement.
type LearnPoint struct {
	TrainRows  int
	GE1RR      float64
	GE1ColAvgs float64
}

// LearnCurveResult measures how much training data Ratio Rules need: GE₁
// on a fixed clean test split as the training set grows. Because the model
// is just M² covariance sums plus column means, it should saturate after a
// few hundred rows — an operational answer to "how big must the training
// matrix be", which the paper leaves implicit.
type LearnCurveResult struct {
	Dataset string
	Points  []LearnPoint
}

// learnFractions are the training-set fractions swept (of the 90% split).
var learnFractions = []float64{0.02, 0.05, 0.1, 0.25, 0.5, 1.0}

// RunLearnCurve sweeps training size on the named dataset.
func RunLearnCurve(name string) (*LearnCurveResult, error) {
	ds, err := DatasetByName(name)
	if err != nil {
		return nil, err
	}
	train, test, err := ds.Split(TrainFrac, SplitSeed)
	if err != nil {
		return nil, err
	}
	out := &LearnCurveResult{Dataset: name}
	for _, frac := range learnFractions {
		rows := int(frac * float64(train.Rows()))
		if rows < ds.Cols()+1 {
			continue // too few rows for a meaningful covariance
		}
		idx := make([]int, rows)
		for i := range idx {
			idx[i] = i
		}
		sub := train.X.SelectRows(idx)
		miner, err := core.NewMiner(core.WithAttrNames(ds.Attrs))
		if err != nil {
			return nil, err
		}
		rules, err := miner.MineMatrix(sub)
		if err != nil {
			return nil, fmt.Errorf("experiments: mining %d rows of %s: %w", rows, name, err)
		}
		geRR, err := core.GE1(rules, test.X)
		if err != nil {
			return nil, fmt.Errorf("experiments: GE1 at %d rows: %w", rows, err)
		}
		geCA, err := core.GE1(core.NewColAvgs(rules.Means()), test.X)
		if err != nil {
			return nil, fmt.Errorf("experiments: col-avgs GE1 at %d rows: %w", rows, err)
		}
		out.Points = append(out.Points, LearnPoint{TrainRows: rows, GE1RR: geRR, GE1ColAvgs: geCA})
	}
	if len(out.Points) == 0 {
		return nil, fmt.Errorf("experiments: dataset %s too small for the sweep", name)
	}
	return out, nil
}

// String renders the sweep.
func (r *LearnCurveResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Learning curve ('%s'): GE1 vs training rows (fixed test split)\n\n", r.Dataset)
	fmt.Fprintf(&b, "%10s %14s %14s\n", "rows", "GE1(RR)", "GE1(col-avgs)")
	xs := make([]float64, len(r.Points))
	ys := make([]float64, len(r.Points))
	for i, p := range r.Points {
		fmt.Fprintf(&b, "%10d %14.4f %14.4f\n", p.TrainRows, p.GE1RR, p.GE1ColAvgs)
		xs[i] = float64(p.TrainRows)
		ys[i] = p.GE1RR
	}
	b.WriteByte('\n')
	b.WriteString(textplot.Lines("GE1(RR) vs training rows", "rows", "GE1",
		[]textplot.Series{{Name: "RR", X: xs, Y: ys, Marker: '*'}}, 50, 10))
	return b.String()
}
