package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"ratiorules/internal/core"
	"ratiorules/internal/matrix"
	"ratiorules/internal/obs"
	"ratiorules/internal/quest"
)

// BatchResult measures the batch inference engine against the one-shot
// per-row path on Quest basket data: the same fills run three ways —
// a sequential FillRow loop (each row re-factorizes its hole pattern),
// the batch engine pinned to one worker (isolates the plan-cache win),
// and the batch engine at full width (adds the parallel win).
type BatchResult struct {
	Rows     int
	Cols     int
	Patterns int
	Workers  int
	K        int

	Sequential time.Duration // per-row FillRow loop, no plan cache
	CachedSeq  time.Duration // BatchFillSlice, Workers = 1
	Parallel   time.Duration // BatchFillSlice, Workers = Workers

	// CacheSpeedup is Sequential/CachedSeq — the factorization reuse
	// alone, no concurrency. TotalSpeedup is Sequential/Parallel.
	CacheSpeedup float64
	TotalSpeedup float64

	// Plan-cache counter deltas across the two batch runs, from the obs
	// registry (rr_fill_cache_{hits,misses}_total).
	CacheHits   float64
	CacheMisses float64

	// MaxRelDiff is the worst relative disagreement between the batch
	// and sequential fills — reuse must not change the numbers.
	MaxRelDiff float64
}

// fillCacheCounters snapshots the plan-cache counters.
func fillCacheCounters() (hits, misses float64) {
	for _, s := range obs.Default().Gather() {
		switch s.Name {
		case "rr_fill_cache_hits_total":
			hits = s.Value
		case "rr_fill_cache_misses_total":
			misses = s.Value
		}
	}
	return hits, misses
}

// RunBatch mines a model over Quest data, then fills every row with a
// hole set drawn from a small cycle of patterns — the pattern-skewed
// workload the hole-pattern plan cache is built for. rows <= 0 selects
// 10,000, patterns <= 0 selects 8, workers <= 0 one per CPU.
func RunBatch(rows, patterns, workers int) (*BatchResult, error) {
	if rows <= 0 {
		rows = 10000
	}
	if patterns <= 0 {
		patterns = 8
	}
	if workers <= 0 {
		workers = core.DefaultBatchWorkers()
	}
	cfg := quest.DefaultConfig(rows)
	src, err := quest.NewSource(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: quest source: %w", err)
	}
	data := make([][]float64, 0, rows)
	for {
		row, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: generating rows: %w", err)
		}
		data = append(data, append([]float64(nil), row...))
	}
	x, err := matrix.FromRows(data)
	if err != nil {
		return nil, fmt.Errorf("experiments: assembling matrix: %w", err)
	}
	miner, err := core.NewMiner()
	if err != nil {
		return nil, fmt.Errorf("experiments: configuring miner: %w", err)
	}
	rules, err := miner.MineMatrix(x)
	if err != nil {
		return nil, fmt.Errorf("experiments: mining: %w", err)
	}

	out := &BatchResult{
		Rows: len(data), Cols: cfg.Cols, Patterns: patterns, Workers: workers,
		K: rules.K(),
	}

	// A cycle of three-hole patterns spread over the columns.
	pats := make([][]int, patterns)
	for p := range pats {
		base := (p * 7) % cfg.Cols
		pats[p] = []int{base, (base + 13) % cfg.Cols, (base + 29) % cfg.Cols}
	}
	holes := make([][]int, len(data))
	for i := range holes {
		holes[i] = pats[i%patterns]
	}

	// Baseline: the pre-batch API, one factorization per row.
	baseline := make([][]float64, len(data))
	start := time.Now()
	for i, row := range data {
		baseline[i], err = rules.FillRow(row, holes[i])
		if err != nil {
			return nil, fmt.Errorf("experiments: sequential fill row %d: %w", i, err)
		}
	}
	out.Sequential = time.Since(start)

	hits0, misses0 := fillCacheCounters()

	// Cache only: one worker, so any win is factorization reuse.
	start = time.Now()
	cached := rules.BatchFillSlice(data, holes, core.BatchOptions{Workers: 1})
	out.CachedSeq = time.Since(start)

	// Cache + concurrency at the requested width.
	start = time.Now()
	parallel := rules.BatchFillSlice(data, holes, core.BatchOptions{Workers: workers})
	out.Parallel = time.Since(start)

	hits1, misses1 := fillCacheCounters()
	out.CacheHits = hits1 - hits0
	out.CacheMisses = misses1 - misses0

	for i := range data {
		if cached[i].Err != nil {
			return nil, fmt.Errorf("experiments: batch fill row %d: %w", i, cached[i].Err)
		}
		if parallel[i].Err != nil {
			return nil, fmt.Errorf("experiments: parallel fill row %d: %w", i, parallel[i].Err)
		}
		for j, want := range baseline[i] {
			for _, got := range []float64{cached[i].Filled[j], parallel[i].Filled[j]} {
				diff := abs(got-want) / (1 + abs(want))
				if diff > out.MaxRelDiff {
					out.MaxRelDiff = diff
				}
			}
		}
	}
	if out.CachedSeq > 0 {
		out.CacheSpeedup = out.Sequential.Seconds() / out.CachedSeq.Seconds()
	}
	if out.Parallel > 0 {
		out.TotalSpeedup = out.Sequential.Seconds() / out.Parallel.Seconds()
	}
	return out, nil
}

// String renders the three timings, the speedups and the cache
// counters.
func (r *BatchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Batch inference: %d rows x %d cols, %d hole patterns, k=%d\n\n",
		r.Rows, r.Cols, r.Patterns, r.K)
	fmt.Fprintf(&b, "%-34s %12s\n", "path", "time")
	fmt.Fprintf(&b, "%-34s %12s\n", "per-row FillRow (no cache)", r.Sequential.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-34s %12s\n", "batch, 1 worker (cache only)", r.CachedSeq.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-34s %12s\n", fmt.Sprintf("batch, %d workers", r.Workers), r.Parallel.Round(time.Millisecond))
	fmt.Fprintf(&b, "\ncache speedup %.2fx, total speedup %.2fx\n", r.CacheSpeedup, r.TotalSpeedup)
	fmt.Fprintf(&b, "plan cache: %.0f hits, %.0f misses over %d fills (%d patterns -> one factorization each)\n",
		r.CacheHits, r.CacheMisses, 2*r.Rows, r.Patterns)
	fmt.Fprintf(&b, "max relative deviation from sequential fills: %.2g\n", r.MaxRelDiff)
	return b.String()
}
