package experiments

import (
	"fmt"
	"strings"

	"ratiorules/internal/core"
	"ratiorules/internal/textplot"
)

// ScatterResult reproduces the RR-space scatter plots: Fig. 11 (nba, two
// orthogonal 2-d views) and Fig. 9 (baseball and abalone). Points carry
// labels for the planted extreme players so the views can be annotated the
// way the paper calls out Jordan, Rodman, Bogues and Malone.
type ScatterResult struct {
	Dataset string
	// XRule and YRule are the 1-based rule indices of the axes.
	XRule, YRule int
	Points       []textplot.Point
	// Named lists the labeled points (the planted outliers) in order.
	Named []textplot.Point
}

// RunScatter projects the full dataset onto rules xRule and yRule
// (1-based, per the paper's RR1/RR2/RR3 naming).
func RunScatter(name string, xRule, yRule int) (*ScatterResult, error) {
	ds, err := DatasetByName(name)
	if err != nil {
		return nil, err
	}
	need := xRule
	if yRule > need {
		need = yRule
	}
	if xRule < 1 || yRule < 1 || xRule == yRule {
		return nil, fmt.Errorf("experiments: scatter axes RR%d/RR%d invalid", xRule, yRule)
	}
	miner, err := core.NewMiner(core.WithFixedK(need), core.WithAttrNames(ds.Attrs))
	if err != nil {
		return nil, fmt.Errorf("experiments: configuring miner: %w", err)
	}
	rules, err := miner.MineMatrix(ds.X)
	if err != nil {
		return nil, fmt.Errorf("experiments: mining %s: %w", name, err)
	}
	proj, err := rules.Project(ds.X, need)
	if err != nil {
		return nil, fmt.Errorf("experiments: projecting %s: %w", name, err)
	}
	out := &ScatterResult{Dataset: name, XRule: xRule, YRule: yRule}
	for i := 0; i < proj.Rows(); i++ {
		p := textplot.Point{X: proj.At(i, xRule-1), Y: proj.At(i, yRule-1)}
		if label := ds.Label(i); isFamous(label) {
			p.Label = label
			out.Named = append(out.Named, p)
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// isFamous reports whether the label is one of the planted extremes.
func isFamous(label string) bool {
	switch label {
	case "Jordan", "Rodman", "Bogues", "Malone":
		return true
	}
	return false
}

// String renders the scatter plot.
func (r *ScatterResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scatter plot of '%s' in RR space (x=RR%d, y=RR%d)\n\n", r.Dataset, r.XRule, r.YRule)
	b.WriteString(textplot.Scatter(
		fmt.Sprintf("'%s': %d points", r.Dataset, len(r.Points)),
		fmt.Sprintf("RR%d", r.XRule), fmt.Sprintf("RR%d", r.YRule),
		r.Points, 70, 22))
	return b.String()
}
