package experiments

import (
	"fmt"
	"strings"

	"ratiorules/internal/core"
	"ratiorules/internal/textplot"
)

// CutoffPoint is one k in the cutoff ablation sweep.
type CutoffPoint struct {
	K      int
	Energy float64 // fraction of variance covered by the first K rules
	GE1    float64
}

// CutoffResult is the ablation behind Eq. 1's 85% heuristic: sweep the
// number of retained rules k from 0 (col-avgs) to M and measure GE₁ on the
// test split. The paper asserts k=0 is the straightforward competitor and
// the energy heuristic picks a good operating point; the sweep shows where
// the error curve actually flattens.
type CutoffResult struct {
	Dataset string
	// ChosenK is what the default 85% cutoff picks.
	ChosenK int
	Points  []CutoffPoint
}

// RunCutoff sweeps k on the named dataset.
func RunCutoff(name string) (*CutoffResult, error) {
	ds, err := DatasetByName(name)
	if err != nil {
		return nil, err
	}
	train, test, err := ds.Split(TrainFrac, SplitSeed)
	if err != nil {
		return nil, fmt.Errorf("experiments: splitting %s: %w", name, err)
	}
	defMiner, err := core.NewMiner(core.WithAttrNames(ds.Attrs))
	if err != nil {
		return nil, err
	}
	defRules, err := defMiner.MineMatrix(train.X)
	if err != nil {
		return nil, fmt.Errorf("experiments: mining %s: %w", name, err)
	}
	out := &CutoffResult{Dataset: name, ChosenK: defRules.K()}
	m := ds.Cols()
	for k := 0; k <= m; k++ {
		miner, err := core.NewMiner(core.WithFixedK(k), core.WithAttrNames(ds.Attrs))
		if err != nil {
			return nil, err
		}
		rules, err := miner.MineMatrix(train.X)
		if err != nil {
			return nil, fmt.Errorf("experiments: mining %s with k=%d: %w", name, k, err)
		}
		ge, err := core.GE1(rules, test.X)
		if err != nil {
			return nil, fmt.Errorf("experiments: GE1 with k=%d: %w", k, err)
		}
		out.Points = append(out.Points, CutoffPoint{K: k, Energy: rules.EnergyCovered(), GE1: ge})
	}
	return out, nil
}

// String renders the sweep.
func (r *CutoffResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cutoff ablation ('%s'): GE1 vs number of rules k (Eq. 1 picks k=%d)\n\n",
		r.Dataset, r.ChosenK)
	fmt.Fprintf(&b, "%4s %10s %14s\n", "k", "energy", "GE1")
	xs := make([]float64, len(r.Points))
	ys := make([]float64, len(r.Points))
	for i, p := range r.Points {
		marker := " "
		if p.K == r.ChosenK {
			marker = " <- Eq. 1 cutoff"
		}
		fmt.Fprintf(&b, "%4d %9.1f%% %14.4f%s\n", p.K, 100*p.Energy, p.GE1, marker)
		xs[i] = float64(p.K)
		ys[i] = p.GE1
	}
	b.WriteByte('\n')
	b.WriteString(textplot.Lines("GE1 vs k", "k", "GE1",
		[]textplot.Series{{Name: "GE1", X: xs, Y: ys, Marker: '*'}}, 50, 12))
	return b.String()
}
