package experiments

import (
	"fmt"
	"math"
	"strings"

	"ratiorules/internal/core"
)

// BandsResult calibrates the uncertainty-band extension empirically: hide
// each test cell, reconstruct it, and check how often the true value falls
// inside the ±1σ and ±2σ bands (Rules.ResidualStd). For a well-calibrated
// Gaussian residual those coverages are ≈68% and ≈95%; single-hole fills
// keep most of the row known, so the projection-residual band is close to
// the true predictive spread.
type BandsResult struct {
	Dataset string
	// Coverage1 and Coverage2 are the fractions of hidden cells whose true
	// value fell within ±1σ and ±2σ of the reconstruction.
	Coverage1, Coverage2 float64
	// MeanBandToError is the ratio of the mean band to the RMS error — a
	// scale check (≈1 when the band is sized correctly).
	MeanBandToError float64
	Cells           int
}

// RunBands evaluates band calibration on the dataset's test split.
func RunBands(name string) (*BandsResult, error) {
	ds, err := DatasetByName(name)
	if err != nil {
		return nil, err
	}
	m, err := trainOn(ds)
	if err != nil {
		return nil, err
	}
	test := m.test.X
	n, cols := test.Dims()
	var (
		in1, in2, cells int
		sumBand, sumSq  float64
	)
	rec := make([]float64, cols)
	for i := 0; i < n; i++ {
		row := test.RawRow(i)
		for j := 0; j < cols; j++ {
			copy(rec, row)
			rec[j] = core.Hole
			out, err := m.rules.FillRecordWithBands(rec)
			if err != nil {
				return nil, fmt.Errorf("experiments: banded fill at (%d,%d): %w", i, j, err)
			}
			diff := math.Abs(out.Filled[j] - row[j])
			band := out.Std[j]
			if band <= 0 {
				continue
			}
			cells++
			sumBand += band
			sumSq += diff * diff
			if diff <= band {
				in1++
			}
			if diff <= 2*band {
				in2++
			}
		}
	}
	if cells == 0 {
		return nil, fmt.Errorf("experiments: no banded cells on %s", name)
	}
	out := &BandsResult{
		Dataset:   name,
		Coverage1: float64(in1) / float64(cells),
		Coverage2: float64(in2) / float64(cells),
		Cells:     cells,
	}
	if rms := math.Sqrt(sumSq / float64(cells)); rms > 0 {
		out.MeanBandToError = (sumBand / float64(cells)) / rms
	}
	return out, nil
}

// String renders the calibration summary.
func (r *BandsResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Uncertainty-band calibration ('%s', %d hidden cells)\n\n", r.Dataset, r.Cells)
	fmt.Fprintf(&b, "±1σ coverage: %.0f%%   (Gaussian ideal ≈ 68%%)\n", 100*r.Coverage1)
	fmt.Fprintf(&b, "±2σ coverage: %.0f%%   (Gaussian ideal ≈ 95%%)\n", 100*r.Coverage2)
	fmt.Fprintf(&b, "mean band / RMS error: %.2f (≈ 1 when sized correctly)\n", r.MeanBandToError)
	return b.String()
}
