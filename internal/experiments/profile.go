package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"ratiorules/internal/obs/profile"
	"ratiorules/internal/online"
)

// ProfileResult quantifies what the always-on profiling ring costs the
// hot path: raw live-ingest Push throughput with the capture loop
// parked versus running at a duty cycle far above the production
// default, so the measured overhead is a conservative ceiling.
type ProfileResult struct {
	Rows  int
	Width int

	// The ring cadence the profiled passes ran under.
	Interval    time.Duration
	CPUDuration time.Duration

	BaselineRowsPerSecond float64
	ProfiledRowsPerSecond float64
	// OverheadFrac is the throughput lost with the ring on:
	// (baseline - profiled) / baseline. Negative means noise.
	OverheadFrac float64

	// Captures retained by the ring over the profiled passes, and their
	// summed pprof blob size.
	Captures     int
	CaptureBytes int64
}

// The bench cadence is deliberately aggressive: a 5ms CPU window every
// 250ms is a 2% profiling duty cycle, ~25x the rrserve defaults (50ms
// every minute, 0.08%) — whatever overhead shows up here bounds
// production from above.
const (
	profileBenchInterval = 250 * time.Millisecond
	profileBenchCPU      = 5 * time.Millisecond
)

// RunProfileOverhead pushes rows <= 0 ? 200000 : rows synthetic ratio
// rows of width <= 0 ? 32 : width through a live stream twice over in
// alternating passes — ring parked, ring running — and compares Push
// throughput. Passes interleave (off/on/off/on) so clock drift and
// cache warmth cancel rather than biasing one side; a warmup pass
// fills the reservoir first so every timed pass sees steady state.
func RunProfileOverhead(rows, width int) (*ProfileResult, error) {
	if rows <= 0 {
		rows = 400000
	}
	if width <= 0 {
		width = 32
	}

	store := &memStore{}
	mgr, err := online.NewManager(store, online.Config{
		// No republishing: the passes time pushes and nothing else.
		RepublishRows: 1 << 30,
		Seed:          SplitSeed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: profile manager: %w", err)
	}
	defer mgr.Close()
	stream, err := mgr.Stream("bench", 0, false)
	if err != nil {
		return nil, fmt.Errorf("experiments: profile stream: %w", err)
	}

	rng := rand.New(rand.NewSource(SplitSeed))
	latent := make([]float64, width)
	for j := range latent {
		latent[j] = 1 + rng.Float64()*4
	}
	data := make([][]float64, rows)
	for i := range data {
		scale := 1 + rng.Float64()*9
		row := make([]float64, width)
		for j := range row {
			row[j] = latent[j] * scale * (1 + 0.05*rng.NormFloat64())
		}
		data[i] = row
	}

	ctx := context.Background()
	push := func() (time.Duration, error) {
		t0 := time.Now()
		for _, row := range data {
			if _, err := stream.Push(ctx, row); err != nil {
				return 0, fmt.Errorf("experiments: profile push: %w", err)
			}
		}
		return time.Since(t0), nil
	}

	// Warmup: fill the reservoir so timed passes all run steady-state.
	if _, err := push(); err != nil {
		return nil, err
	}

	ring := profile.New(profile.Config{
		Interval:    profileBenchInterval,
		CPUDuration: profileBenchCPU,
	})
	ringCtx, stopRing := context.WithCancel(ctx)
	defer stopRing()
	ringRunning := false
	var base, profiled time.Duration
	const pairs = 3
	for i := 0; i < pairs; i++ {
		d, err := push()
		if err != nil {
			return nil, err
		}
		base += d
		if !ringRunning {
			go ring.Run(ringCtx)
			ringRunning = true
		}
		if d, err = push(); err != nil {
			return nil, err
		}
		profiled += d
	}
	stopRing()

	out := &ProfileResult{
		Rows:         rows,
		Width:        width,
		Interval:     profileBenchInterval,
		CPUDuration:  profileBenchCPU,
		Captures:     ring.Len(),
		CaptureBytes: ring.TotalBytes(),
	}
	total := float64(rows * pairs)
	if base > 0 {
		out.BaselineRowsPerSecond = total / base.Seconds()
	}
	if profiled > 0 {
		out.ProfiledRowsPerSecond = total / profiled.Seconds()
	}
	if out.BaselineRowsPerSecond > 0 {
		out.OverheadFrac = (out.BaselineRowsPerSecond - out.ProfiledRowsPerSecond) /
			out.BaselineRowsPerSecond
	}
	return out, nil
}

// String renders the ring-off/ring-on comparison.
func (r *ProfileResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Continuous profiling overhead (%d rows x %d cols per pass)\n", r.Rows, r.Width)
	fmt.Fprintf(&b, "  ring cadence            %v interval, %v cpu window (duty %.1f%%)\n",
		r.Interval, r.CPUDuration, 100*r.CPUDuration.Seconds()/r.Interval.Seconds())
	fmt.Fprintf(&b, "  ingest, ring parked     %.0f rows/s\n", r.BaselineRowsPerSecond)
	fmt.Fprintf(&b, "  ingest, ring running    %.0f rows/s\n", r.ProfiledRowsPerSecond)
	fmt.Fprintf(&b, "  throughput overhead     %.2f%%\n", 100*r.OverheadFrac)
	fmt.Fprintf(&b, "  captures retained       %d (%d bytes of pprof blobs)\n", r.Captures, r.CaptureBytes)
	return b.String()
}
