package experiments

// The admission experiment quantifies the traffic-protection layer
// over the real HTTP wire: (1) the per-request overhead the admission
// middleware adds when it is off entirely and when it is on with an
// unlimited anonymous tenant, (2) how much goodput an in-quota tenant
// keeps while rate-starved tenants drive the server at several times
// its capacity, and (3) how fast a 429 shed turns around — rejections
// must cost microseconds, not a handler's worth of work, or overload
// protection amplifies the overload.

import (
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ratiorules/internal/admission"
	"ratiorules/internal/obs"
	"ratiorules/internal/server"
)

// AdmissionResult carries the traffic-protection figures.
type AdmissionResult struct {
	Requests     int `json:"requests"`      // sequential probe requests per phase
	FloodWorkers int `json:"flood_workers"` // concurrent flooding goroutines

	// Middleware cost: sequential request throughput with no admission
	// configured vs admission on with an unlimited anonymous tenant.
	OffRPS      float64 `json:"off_requests_per_second"`
	OnRPS       float64 `json:"on_requests_per_second"`
	OverheadPct float64 `json:"overhead_pct"`

	// Isolation: the in-quota tenant is paced at a target rate well
	// inside server capacity, then the flood tenants offer roughly 4x
	// that rate on top — all of it over their quotas, so nearly all of
	// it sheds. Goodput is the 200-rate the paced tenant achieves.
	TargetRPS    float64 `json:"target_rps"`
	IsolatedRPS  float64 `json:"isolated_goodput_rps"`
	OverloadRPS  float64 `json:"overload_goodput_rps"`
	IsolationPct float64 `json:"isolation_pct"`
	// OverloadFactor is total offered load (flood attempts + in-quota
	// requests) over the in-quota tenant's own request count during the
	// overload window.
	OverloadFactor float64 `json:"overload_factor"`

	// Shed turnaround: latency of the flood's 429 responses.
	Shed429s  int     `json:"shed_429s"`
	ShedP50Ms float64 `json:"shed_p50_ms"`
	ShedP99Ms float64 `json:"shed_p99_ms"`
	ShedMaxMs float64 `json:"shed_max_ms"`
}

// admissionTenants starves the flood tenants (tiny buckets, no wait)
// and leaves the probe tenant unlimited at high priority.
const admissionTenants = `{
  "tenants": [
    {"id": "prio", "token": "tok-prio", "priority": 2,
     "limits": {"requests_per_second": -1, "max_in_flight": -1}},
    {"id": "f1", "token": "tok-f1", "priority": 0,
     "limits": {"requests_per_second": 50, "request_burst": 50, "max_wait_ms": 1}},
    {"id": "f2", "token": "tok-f2", "priority": 0,
     "limits": {"requests_per_second": 50, "request_burst": 50, "max_wait_ms": 1}},
    {"id": "f3", "token": "tok-f3", "priority": 0,
     "limits": {"requests_per_second": 50, "request_burst": 50, "max_wait_ms": 1}}
  ]
}`

// startAdmissionServer serves handler on a loopback listener.
func startAdmissionServer(handler http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}

// probeLoop issues n sequential GET /v1/rules requests — paced at
// interval when nonzero — and returns the achieved 200s/second.
// Non-200s are tolerated only when strict is false.
func probeLoop(client *http.Client, url, token string, n int, interval time.Duration) (float64, error) {
	ok := 0
	start := time.Now()
	for i := 0; i < n; i++ {
		if interval > 0 {
			if next := start.Add(time.Duration(i) * interval); time.Now().Before(next) {
				time.Sleep(time.Until(next))
			}
		}
		req, err := http.NewRequest("GET", url+"/v1/rules", nil)
		if err != nil {
			return 0, err
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			ok++
		}
	}
	elapsed := time.Since(start).Seconds()
	if ok < n {
		return 0, fmt.Errorf("experiments: probe tenant got %d of %d 200s", ok, n)
	}
	if elapsed <= 0 {
		return 0, nil
	}
	return float64(ok) / elapsed, nil
}

// RunAdmission benchmarks admission control with requests sequential
// probes per phase (default 2000) and floodWorkers concurrent
// flooding goroutines (default 12, spread over 3 starved tenants).
func RunAdmission(requests, floodWorkers int) (*AdmissionResult, error) {
	if requests <= 0 {
		requests = 2000
	}
	if floodWorkers <= 0 {
		floodWorkers = 12
	}
	out := &AdmissionResult{Requests: requests, FloodWorkers: floodWorkers}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns: 64, MaxIdleConnsPerHost: 64,
	}}

	// Middleware-cost A/B: one server with no admission configured, one
	// with admission on and no tenants file (every request maps to the
	// unlimited anonymous tenant, so the cost measured is pure
	// bookkeeping — auth lookup, bucket math, metrics). Both servers run
	// simultaneously and the probe loops interleave, so process warm-up
	// (scheduler threads, heap sizing) cannot bias either side.
	offURL, stopOff, err := startAdmissionServer(server.Handler(server.NewRegistry(),
		server.WithLogger(quiet), server.WithObs(obs.NewRegistry())))
	if err != nil {
		return nil, err
	}
	defer stopOff()
	ctrl, err := admission.New(admission.Config{Logger: quiet, Metrics: obs.NewRegistry()})
	if err != nil {
		return nil, err
	}
	onURL, stopOn, err := startAdmissionServer(server.Handler(server.NewRegistry(),
		server.WithLogger(quiet), server.WithObs(obs.NewRegistry()),
		server.WithAdmission(ctrl)))
	if err != nil {
		return nil, err
	}
	defer stopOn()
	for _, u := range []string{offURL, onURL} { // connection + runtime warm-up
		if _, err := probeLoop(client, u, "", requests/4, 0); err != nil {
			return nil, err
		}
	}
	for i := 0; i < 3; i++ {
		off, err := probeLoop(client, offURL, "", requests, 0)
		if err != nil {
			return nil, err
		}
		on, err := probeLoop(client, onURL, "", requests, 0)
		if err != nil {
			return nil, err
		}
		if off > out.OffRPS {
			out.OffRPS = off
		}
		if on > out.OnRPS {
			out.OnRPS = on
		}
	}
	if out.OffRPS > 0 {
		out.OverheadPct = (out.OffRPS - out.OnRPS) / out.OffRPS * 100
	}

	// Phase 3: isolation and shed turnaround under flood.
	dir, err := os.MkdirTemp("", "rr-admission")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	tenantsPath := filepath.Join(dir, "tenants.json")
	if err := os.WriteFile(tenantsPath, []byte(admissionTenants), 0o644); err != nil {
		return nil, err
	}
	ctrl, err = admission.New(admission.Config{
		TenantsFile: tenantsPath, Logger: quiet, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		return nil, err
	}
	url, stop, err := startAdmissionServer(server.Handler(server.NewRegistry(),
		server.WithLogger(quiet), server.WithObs(obs.NewRegistry()),
		server.WithAdmission(ctrl)))
	if err != nil {
		return nil, err
	}
	defer stop()

	// Pace the probe tenant at a rate the server can comfortably serve
	// (a tenth of its unpaced sequential throughput, so per-request
	// latency inflation under flood stays inside the pacing interval)
	// — the isolation figure should measure admission, not CPU
	// scheduling between a spinning flood and the probe sharing one
	// machine.
	unpaced, err := probeLoop(client, url, "tok-prio", requests/4, 0)
	if err != nil {
		return nil, err
	}
	targetRPS := unpaced / 10
	if targetRPS < 100 {
		targetRPS = 100
	}
	out.TargetRPS = targetRPS
	interval := time.Duration(float64(time.Second) / targetRPS)

	// Isolated goodput: the paced probe tenant alone.
	if out.IsolatedRPS, err = probeLoop(client, url, "tok-prio", requests, interval); err != nil {
		return nil, err
	}

	// Overload: the flood tenants offer ~4x the probe's rate on top of
	// it, all beyond their starved quotas. Each worker is paced to its
	// share and keeps its own shed-latency slice; only 429s count as
	// sheds (the few in-bucket 200s are the flood's paid-for quota).
	var stopFlood atomic.Bool
	var floodAttempts atomic.Int64
	shedLat := make([][]float64, floodWorkers)
	var wg sync.WaitGroup
	floodTokens := []string{"tok-f1", "tok-f2", "tok-f3"}
	floodInterval := time.Duration(float64(time.Second) * float64(floodWorkers) / (4 * targetRPS))
	for i := 0; i < floodWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			token := floodTokens[i%len(floodTokens)]
			c := &http.Client{Transport: &http.Transport{
				MaxIdleConns: 4, MaxIdleConnsPerHost: 4,
			}}
			start := time.Now()
			for n := 0; !stopFlood.Load(); n++ {
				if next := start.Add(time.Duration(n) * floodInterval); time.Now().Before(next) {
					time.Sleep(time.Until(next))
				}
				req, err := http.NewRequest("GET", url+"/v1/rules", nil)
				if err != nil {
					return
				}
				req.Header.Set("Authorization", "Bearer "+token)
				reqStart := time.Now()
				resp, err := c.Do(req)
				if err != nil {
					continue
				}
				elapsed := time.Since(reqStart).Seconds() * 1e3
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				floodAttempts.Add(1)
				if resp.StatusCode == http.StatusTooManyRequests {
					shedLat[i] = append(shedLat[i], elapsed)
				}
			}
		}(i)
	}
	// Let the flood drain the starved buckets before measuring.
	time.Sleep(100 * time.Millisecond)
	floodAttempts.Store(0)
	for i := range shedLat {
		shedLat[i] = nil
	}
	measureStart := time.Now()
	out.OverloadRPS, err = probeLoop(client, url, "tok-prio", requests, interval)
	measured := time.Since(measureStart).Seconds()
	stopFlood.Store(true)
	wg.Wait()
	if err != nil {
		return nil, err
	}
	if out.IsolatedRPS > 0 {
		out.IsolationPct = out.OverloadRPS / out.IsolatedRPS * 100
	}
	if measured > 0 && targetRPS > 0 {
		offered := (float64(floodAttempts.Load()) + float64(requests)) / measured
		out.OverloadFactor = offered / targetRPS
	}

	var lat []float64
	for _, l := range shedLat {
		lat = append(lat, l...)
	}
	out.Shed429s = len(lat)
	if len(lat) > 0 {
		sort.Float64s(lat)
		out.ShedP50Ms = lat[len(lat)/2]
		out.ShedP99Ms = lat[len(lat)*99/100]
		out.ShedMaxMs = lat[len(lat)-1]
	}
	return out, nil
}

// String renders the admission figures.
func (r *AdmissionResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "admission control: %d probe requests/phase, %d flood workers\n\n",
		r.Requests, r.FloodWorkers)
	fmt.Fprintf(&b, "%-36s %14.0f req/s\n", "admission off", r.OffRPS)
	fmt.Fprintf(&b, "%-36s %14.0f req/s (%.2f%% overhead)\n", "admission on (unlimited anon)",
		r.OnRPS, r.OverheadPct)
	fmt.Fprintf(&b, "\nisolation at %.0f req/s target, %.1fx offered load:\n",
		r.TargetRPS, r.OverloadFactor)
	fmt.Fprintf(&b, "%-36s %14.0f req/s\n", "in-quota tenant alone", r.IsolatedRPS)
	fmt.Fprintf(&b, "%-36s %14.0f req/s (%.1f%% kept)\n", "in-quota tenant under flood",
		r.OverloadRPS, r.IsolationPct)
	fmt.Fprintf(&b, "\nshed turnaround over %d 429s:\n", r.Shed429s)
	fmt.Fprintf(&b, "%-36s %14.3f ms\n", "429 p50", r.ShedP50Ms)
	fmt.Fprintf(&b, "%-36s %14.3f ms\n", "429 p99", r.ShedP99Ms)
	fmt.Fprintf(&b, "%-36s %14.3f ms\n", "429 max", r.ShedMaxMs)
	return b.String()
}
