// Package experiments reproduces every table and figure of the evaluation
// and discussion sections of Korn et al. (VLDB 1998):
//
//   - Fig. 6: guessing error vs. number of holes (1-5), RR vs col-avgs;
//   - Fig. 7: relative single-hole guessing error over the three datasets;
//   - Fig. 8: scale-up — time to compute Ratio Rules vs. N;
//   - Fig. 9/11: 2-d scatter plots of the datasets in RR space;
//   - Table 2: the first three Ratio Rules of the `nba` dataset;
//   - Fig. 12 / Sec. 6.3: Ratio Rules vs. quantitative association rules
//     (prediction coverage and extrapolation).
//
// Every runner is deterministic (fixed seeds), returns a typed result and
// knows how to render itself for the terminal, so the same code backs the
// rrbench CLI, the bench suite and EXPERIMENTS.md.
package experiments

import (
	"fmt"

	"ratiorules/internal/core"
	"ratiorules/internal/dataset"
)

// TrainFrac is the paper's training split ("a reasonable choice is to use
// 90% of the original data matrix for training and the remaining 10% for
// testing").
const TrainFrac = 0.9

// SplitSeed fixes the train/test shuffle across all experiments.
const SplitSeed = 1998

// Datasets returns the three evaluation datasets in the paper's order.
func Datasets() []*dataset.Dataset {
	return []*dataset.Dataset{dataset.NBA(), dataset.Baseball(), dataset.Abalone()}
}

// DatasetByName resolves one of "nba", "baseball", "abalone".
func DatasetByName(name string) (*dataset.Dataset, error) {
	switch name {
	case "nba":
		return dataset.NBA(), nil
	case "baseball":
		return dataset.Baseball(), nil
	case "abalone":
		return dataset.Abalone(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q (want nba, baseball or abalone)", name)
	}
}

// trainedModel bundles the artifacts shared by several experiments: the
// split, the mined rules and the col-avgs competitor.
type trainedModel struct {
	train, test *dataset.Dataset
	rules       *core.Rules
	colAvgs     *core.ColAvgs
}

// trainOn mines rules on the 90% split of ds with the paper's defaults.
func trainOn(ds *dataset.Dataset, opts ...core.Option) (*trainedModel, error) {
	train, test, err := ds.Split(TrainFrac, SplitSeed)
	if err != nil {
		return nil, fmt.Errorf("experiments: splitting %s: %w", ds.Name, err)
	}
	allOpts := append([]core.Option{core.WithAttrNames(ds.Attrs)}, opts...)
	miner, err := core.NewMiner(allOpts...)
	if err != nil {
		return nil, fmt.Errorf("experiments: configuring miner: %w", err)
	}
	rules, err := miner.MineMatrix(train.X)
	if err != nil {
		return nil, fmt.Errorf("experiments: mining %s: %w", ds.Name, err)
	}
	return &trainedModel{
		train:   train,
		test:    test,
		rules:   rules,
		colAvgs: core.NewColAvgs(rules.Means()),
	}, nil
}
