package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// The paper's figures are gnuplot renderings of whitespace-separated data
// files — the plot keys name them directly ("nba.d2", "baseball.d2",
// "abalone.d2", "scaleup.dat"). These writers regenerate those artifact
// files so the figures can be re-plotted with any tool.

// WriteDat writes the scatter points as "x y" lines — the paper's .d2
// format (2-d RR-space coordinates, one point per row).
func (r *ScatterResult) WriteDat(w io.Writer) error {
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%g %g\n", p.X, p.Y); err != nil {
			return fmt.Errorf("experiments: writing scatter dat: %w", err)
		}
	}
	return nil
}

// WriteDat writes the scale-up measurements as "N seconds" lines — the
// paper's scaleup.dat.
func (r *Fig8Result) WriteDat(w io.Writer) error {
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%d %g\n", p.Rows, p.Elapsed.Seconds()); err != nil {
			return fmt.Errorf("experiments: writing scaleup dat: %w", err)
		}
	}
	return nil
}

// WriteDat writes the guessing-error curves as "h RR col-avgs regression"
// lines, one per hole count.
func (r *Fig6Result) WriteDat(w io.Writer) error {
	for i, h := range r.Holes {
		if _, err := fmt.Fprintf(w, "%d %g %g %g\n", h, r.RR[i], r.ColAvgs[i], r.Regress[i]); err != nil {
			return fmt.Errorf("experiments: writing GEh dat: %w", err)
		}
	}
	return nil
}

// WriteAllDat regenerates every data file of the paper's figures into dir
// (created if needed), returning the file names written:
//
//	nba.d2, nba2.d2           Fig. 11 (RR1/RR2 and RR2/RR3 views)
//	baseball.d2, abalone.d2   Fig. 9
//	ge_nba.dat, ge_baseball.dat  Fig. 6 curves
//	scaleup.dat               Fig. 8 (quick sizes unless full is true)
func WriteAllDat(dir string, fullScaleup bool) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: creating %s: %w", dir, err)
	}
	var written []string
	save := func(name string, write func(io.Writer) error) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		written = append(written, name)
		return nil
	}

	// Fig. 11: the paper's nba.d2 (RR1/RR2) and nba2.d2 (RR2/RR3).
	for _, view := range []struct {
		file string
		x, y int
	}{{"nba.d2", 1, 2}, {"nba2.d2", 2, 3}} {
		res, err := RunScatter("nba", view.x, view.y)
		if err != nil {
			return written, err
		}
		if err := save(view.file, res.WriteDat); err != nil {
			return written, err
		}
	}
	// Fig. 9.
	for _, name := range []string{"baseball", "abalone"} {
		res, err := RunScatter(name, 1, 2)
		if err != nil {
			return written, err
		}
		if err := save(name+".d2", res.WriteDat); err != nil {
			return written, err
		}
	}
	// Fig. 6 curves.
	for _, name := range []string{"nba", "baseball"} {
		res, err := RunFig6(name)
		if err != nil {
			return written, err
		}
		if err := save("ge_"+name+".dat", res.WriteDat); err != nil {
			return written, err
		}
	}
	// Fig. 8.
	sizes := []int{5000, 10000, 20000}
	if fullScaleup {
		sizes = nil // default full sweep
	}
	res, err := RunFig8(sizes)
	if err != nil {
		return written, err
	}
	if err := save("scaleup.dat", res.WriteDat); err != nil {
		return written, err
	}
	return written, nil
}
