package experiments

import (
	"strings"
	"testing"
)

// TestRunDrift: the scenario must detect the shift, auto-rollback, and
// come back with a better-scoring model than the drifted one.
func TestRunDrift(t *testing.T) {
	res, err := RunDrift(10000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 10000 || res.Width != 8 {
		t.Fatalf("result shape = %d x %d", res.Rows, res.Width)
	}
	if res.BaselineEvals < 16 {
		t.Fatalf("baseline evals = %d, want >= 16", res.BaselineEvals)
	}
	if !res.Detected {
		t.Fatal("drift never detected")
	}
	if res.DetectionRule != "ge_regression" {
		t.Errorf("detecting rule = %q", res.DetectionRule)
	}
	if res.DetectionLatency <= 0 || res.DetectionRows <= 0 {
		t.Errorf("detection cost = %v / %d rows", res.DetectionLatency, res.DetectionRows)
	}
	if res.DriftGE <= res.CleanGE*2 {
		t.Errorf("drift GE %v did not clear 2x clean GE %v", res.DriftGE, res.CleanGE)
	}
	if !res.RolledBack {
		t.Fatal("auto-rollback never landed")
	}
	if res.RollbackLatency < res.DetectionLatency {
		t.Errorf("rollback latency %v before detection %v", res.RollbackLatency, res.DetectionLatency)
	}
	if res.PostRollbackGE >= res.DriftGE {
		t.Errorf("post-rollback GE %v did not improve on drifted %v", res.PostRollbackGE, res.DriftGE)
	}
	out := res.String()
	for _, want := range []string{"Drift detection", "detection latency", "auto-rollback latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}
