package experiments

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"ratiorules/internal/core"
	"ratiorules/internal/matrix"
	"ratiorules/internal/replica"
	"ratiorules/internal/store"
)

// ReplicaResult measures WAL-shipped follower replication over the real
// HTTP wire: how fast a cold follower catches up to a leader holding
// Events committed models — once riding the in-memory event log, once
// forced through a full snapshot bootstrap — and the steady-state
// propagation latency of a single leader write becoming visible on the
// replica (the read-staleness a follower-served GET can observe).
type ReplicaResult struct {
	Events     int `json:"events"`
	Width      int `json:"width"`
	ModelBytes int `json:"model_bytes"` // canonical JSON size of one replicated model

	// Cold follower, leader log covers every event: catch-up rides
	// event frames.
	CatchupSeconds    float64 `json:"catchup_seconds"`
	CatchupEventsPerS float64 `json:"catchup_events_per_second"`
	CatchupMBPerS     float64 `json:"catchup_mb_per_second"`

	// Cold follower, leader log trimmed: catch-up is one snapshot frame
	// carrying all models.
	BootstrapSeconds    float64 `json:"bootstrap_seconds"`
	BootstrapModelsPerS float64 `json:"bootstrap_models_per_second"`

	// Steady state: per-write leader-commit → follower-applied latency.
	SteadyEvents     int     `json:"steady_events"`
	PropagateP50Ms   float64 `json:"propagate_p50_ms"`
	PropagateP95Ms   float64 `json:"propagate_p95_ms"`
	PropagateMaxMs   float64 `json:"propagate_max_ms"`
	SteadyMaxLagRecs uint64  `json:"steady_max_lag_records"`
}

// startReplicaLeader serves st's replication stream on a loopback
// listener, returning the base URL and a stop func.
func startReplicaLeader(st *store.Store, quiet *slog.Logger) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("GET /v1/replicate", &replica.Handler{
		Store:     st,
		Logger:    quiet,
		Heartbeat: 200 * time.Millisecond,
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	stop := func() { srv.Close() }
	return "http://" + ln.Addr().String(), stop, nil
}

// tailUntil runs a cold follower against leaderURL until its store
// reaches seq, returning the elapsed catch-up time and the follower for
// status inspection.
func tailUntil(leaderURL string, fstore *store.Store, seq uint64, quiet *slog.Logger) (time.Duration, *replica.Follower, error) {
	f, err := replica.New(replica.Options{
		Leader:     leaderURL,
		Store:      fstore,
		Logger:     quiet,
		MinBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		return 0, nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); _ = f.Run(ctx) }()
	start := time.Now()
	for fstore.Seq() < seq {
		if ctx.Err() != nil {
			cancel()
			<-done
			return 0, nil, fmt.Errorf("experiments: follower stuck at seq %d of %d", fstore.Seq(), seq)
		}
		time.Sleep(200 * time.Microsecond)
	}
	elapsed := time.Since(start)
	cancel()
	<-done
	return elapsed, f, nil
}

// RunReplica benchmarks follower replication with events committed
// models (default 2000) of width columns (default 32).
func RunReplica(events, width int) (*ReplicaResult, error) {
	if events <= 0 {
		events = 2000
	}
	if width <= 0 {
		width = 32
	}
	out := &ReplicaResult{Events: events, Width: width}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	// One mined model, committed under many names: every replication
	// event ships the same canonical Rules JSON, so the measured rate is
	// the pipeline's (framing, HTTP, validate, journal), not the miner's.
	rows, _, err := clusterData(256, width, 1)
	if err != nil {
		return nil, err
	}
	x, err := matrix.FromRows(rows)
	if err != nil {
		return nil, err
	}
	miner, err := core.NewMiner(core.WithMaxK(4))
	if err != nil {
		return nil, err
	}
	rules, err := miner.MineMatrix(x)
	if err != nil {
		return nil, err
	}

	// Leader A: the event log covers everything ever committed.
	leader := store.OpenMemory(store.WithLogger(quiet),
		store.WithReplicationLog(events+64))
	for i := 0; i < events; i++ {
		if _, err := leader.Put(fmt.Sprintf("m%05d", i), rules); err != nil {
			return nil, err
		}
	}
	if raw, _, ok := leader.GetRaw("m00000"); ok {
		out.ModelBytes = len(raw)
	}
	url, stop, err := startReplicaLeader(leader, quiet)
	if err != nil {
		return nil, err
	}
	defer stop()

	// Cold catch-up over event frames.
	elapsed, _, err := tailUntil(url, store.OpenMemory(store.WithLogger(quiet)),
		uint64(events), quiet)
	if err != nil {
		return nil, err
	}
	out.CatchupSeconds = elapsed.Seconds()
	if out.CatchupSeconds > 0 {
		out.CatchupEventsPerS = float64(events) / out.CatchupSeconds
		out.CatchupMBPerS = float64(events*out.ModelBytes) / out.CatchupSeconds / 1e6
	}

	// Leader B: same committed state, log bound 1 — a cold follower is
	// always behind the retained log and must bootstrap from the
	// snapshot frame.
	leaderB := store.OpenMemory(store.WithLogger(quiet), store.WithReplicationLog(1))
	for i := 0; i < events; i++ {
		if _, err := leaderB.Put(fmt.Sprintf("m%05d", i), rules); err != nil {
			return nil, err
		}
	}
	urlB, stopB, err := startReplicaLeader(leaderB, quiet)
	if err != nil {
		return nil, err
	}
	defer stopB()
	elapsed, fB, err := tailUntil(urlB, store.OpenMemory(store.WithLogger(quiet)),
		uint64(events), quiet)
	if err != nil {
		return nil, err
	}
	if got := fB.Status().SnapshotBootstraps; got != 1 {
		return nil, fmt.Errorf("experiments: expected exactly 1 snapshot bootstrap, got %d", got)
	}
	out.BootstrapSeconds = elapsed.Seconds()
	if out.BootstrapSeconds > 0 {
		out.BootstrapModelsPerS = float64(events) / out.BootstrapSeconds
	}

	// Steady state against leader A: a caught-up live follower, one
	// write at a time, commit→applied latency per write.
	steady := 200
	out.SteadyEvents = steady
	fstore := store.OpenMemory(store.WithLogger(quiet))
	f, err := replica.New(replica.Options{
		Leader: url, Store: fstore, Logger: quiet,
		MinBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = f.Run(ctx) }()
	defer func() { cancel(); <-done }()
	for fstore.Seq() < uint64(events) {
		time.Sleep(200 * time.Microsecond)
	}
	lat := make([]float64, 0, steady)
	deadline := time.Now().Add(2 * time.Minute)
	for i := 0; i < steady; i++ {
		start := time.Now()
		if _, err := leader.Put("steady", rules); err != nil {
			return nil, err
		}
		want := leader.Seq()
		for fstore.Seq() < want {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("experiments: steady-state follower stuck at seq %d of %d",
					fstore.Seq(), want)
			}
			time.Sleep(50 * time.Microsecond)
		}
		lat = append(lat, time.Since(start).Seconds()*1e3)
		if lag := f.Status().LagRecords; lag > out.SteadyMaxLagRecs {
			out.SteadyMaxLagRecs = lag
		}
	}
	sort.Float64s(lat)
	out.PropagateP50Ms = lat[len(lat)/2]
	out.PropagateP95Ms = lat[len(lat)*95/100]
	out.PropagateMaxMs = lat[len(lat)-1]
	return out, nil
}

// String renders the replication figures.
func (r *ReplicaResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "WAL-shipped replication: %d committed models x %d cols (%d bytes each)\n\n",
		r.Events, r.Width, r.ModelBytes)
	fmt.Fprintf(&b, "%-36s %14.0f events/s (%.2fs, %.1f MB/s)\n", "cold catch-up (event log)",
		r.CatchupEventsPerS, r.CatchupSeconds, r.CatchupMBPerS)
	fmt.Fprintf(&b, "%-36s %14.0f models/s (%.2fs)\n", "cold catch-up (snapshot bootstrap)",
		r.BootstrapModelsPerS, r.BootstrapSeconds)
	fmt.Fprintf(&b, "\nsteady state over %d single writes:\n", r.SteadyEvents)
	fmt.Fprintf(&b, "%-36s %14.2f ms\n", "commit->applied p50", r.PropagateP50Ms)
	fmt.Fprintf(&b, "%-36s %14.2f ms\n", "commit->applied p95", r.PropagateP95Ms)
	fmt.Fprintf(&b, "%-36s %14.2f ms\n", "commit->applied max", r.PropagateMaxMs)
	fmt.Fprintf(&b, "%-36s %14d records\n", "max observed lag", r.SteadyMaxLagRecs)
	return b.String()
}
