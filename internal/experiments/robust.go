package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"ratiorules/internal/core"
	"ratiorules/internal/matrix"
)

// RobustResult is the robust-mining ablation (DESIGN.md §5, beyond the
// paper): corrupt a fraction of training rows of the abalone dataset with
// gross errors, mine plainly and robustly, and compare the guessing error
// on a clean test split. It quantifies how fragile the vanilla
// eigen-decomposition is to corruption and how much the trimming recovers.
type RobustResult struct {
	CorruptFrac float64
	// GE1 on the clean test split under three training regimes.
	GE1Clean, GE1Plain, GE1Robust float64
	// TrimmedRows is how many rows robust mining discarded.
	TrimmedRows int
}

// RunRobust runs the ablation with the given corrupted-row fraction
// (0 selects 3%).
func RunRobust(corruptFrac float64) (*RobustResult, error) {
	if corruptFrac <= 0 {
		corruptFrac = 0.03
	}
	if corruptFrac >= 1 {
		return nil, fmt.Errorf("experiments: corrupt fraction %v must be below 1", corruptFrac)
	}
	ds, err := DatasetByName("abalone")
	if err != nil {
		return nil, err
	}
	train, test, err := ds.Split(TrainFrac, SplitSeed)
	if err != nil {
		return nil, err
	}

	// Corrupt training rows: decimal-slip a random cell of each victim.
	rng := rand.New(rand.NewSource(777))
	dirty := train.X.Clone()
	n, m := dirty.Dims()
	corrupted := 0
	for i := 0; i < n; i++ {
		if rng.Float64() < corruptFrac {
			j := rng.Intn(m)
			dirty.Set(i, j, dirty.At(i, j)*100)
			corrupted++
		}
	}

	miner, err := core.NewMiner(core.WithAttrNames(ds.Attrs))
	if err != nil {
		return nil, err
	}
	ge := func(x *matrix.Dense) (float64, *core.Rules, error) {
		rules, err := miner.MineMatrix(x)
		if err != nil {
			return 0, nil, err
		}
		v, err := core.GE1(rules, test.X)
		return v, rules, err
	}

	out := &RobustResult{CorruptFrac: corruptFrac}
	if out.GE1Clean, _, err = ge(train.X); err != nil {
		return nil, fmt.Errorf("experiments: clean baseline: %w", err)
	}
	if out.GE1Plain, _, err = ge(dirty); err != nil {
		return nil, fmt.Errorf("experiments: plain on dirty: %w", err)
	}
	res, err := miner.MineRobust(dirty, core.RobustConfig{})
	if err != nil {
		return nil, fmt.Errorf("experiments: robust mining: %w", err)
	}
	out.TrimmedRows = len(res.TrimmedRows)
	if out.GE1Robust, err = core.GE1(res.Rules, test.X); err != nil {
		return nil, fmt.Errorf("experiments: robust GE1: %w", err)
	}
	return out, nil
}

// String renders the ablation.
func (r *RobustResult) String() string {
	var b strings.Builder
	b.WriteString("Robust-mining ablation ('abalone', clean 10% test split)\n\n")
	fmt.Fprintf(&b, "training corruption: %.0f%% of rows get a ×100 decimal slip\n\n", 100*r.CorruptFrac)
	fmt.Fprintf(&b, "%-28s %12s\n", "training regime", "GE1")
	fmt.Fprintf(&b, "%-28s %12.4f\n", "clean (upper bound)", r.GE1Clean)
	fmt.Fprintf(&b, "%-28s %12.4f\n", "corrupted, plain mining", r.GE1Plain)
	fmt.Fprintf(&b, "%-28s %12.4f   (trimmed %d rows)\n", "corrupted, robust mining", r.GE1Robust, r.TrimmedRows)
	return b.String()
}
