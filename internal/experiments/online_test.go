package experiments

import (
	"strings"
	"testing"
)

// TestRunOnline runs a small online sweep and checks the result is
// internally consistent: every row pushed, every chunk republished,
// every republish either promoted or rejected, and the gate cost is a
// fraction of the republish cost.
func TestRunOnline(t *testing.T) {
	res, err := RunOnline(2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 2000 || res.Width != 8 {
		t.Fatalf("result shape = %d x %d", res.Rows, res.Width)
	}
	if res.RowsPerSecond <= 0 {
		t.Errorf("push throughput = %v", res.RowsPerSecond)
	}
	if res.Republishes != 16 {
		t.Errorf("republishes = %d, want 16", res.Republishes)
	}
	if res.Promotions+res.Rejections != res.Republishes {
		t.Errorf("promotions %d + rejections %d != republishes %d",
			res.Promotions, res.Rejections, res.Republishes)
	}
	if res.Promotions < 1 {
		t.Error("no republish ever promoted")
	}
	if res.RepublishMean <= 0 || res.GEGateMean <= 0 {
		t.Errorf("degenerate latencies: republish %v, gate %v", res.RepublishMean, res.GEGateMean)
	}
	if res.OverheadFrac <= 0 || res.OverheadFrac > 1 {
		t.Errorf("gate overhead fraction = %v, want (0, 1]", res.OverheadFrac)
	}
	out := res.String()
	for _, want := range []string{"push throughput", "republish latency", "GE gate"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered result missing %q:\n%s", want, out)
		}
	}
}
