package experiments

// The drift experiment measures the model-quality monitor end to end:
// how many GE evaluations (and rows) a sustained distribution shift
// costs before the regression alert fires, and how quickly -auto-
// rollback restores a clean retained version. The promotion gate is
// deliberately disarmed (huge GESlack) so the shift genuinely takes
// over the served model — detection is the alert engine's job here,
// exactly the failure mode the monitor exists for.

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"ratiorules/internal/core"
	"ratiorules/internal/obs"
	"ratiorules/internal/obs/alert"
	"ratiorules/internal/online"
)

// DriftResult captures one detect-and-recover cycle.
type DriftResult struct {
	Rows          int `json:"rows"`
	Width         int `json:"width"`
	ReservoirSize int `json:"reservoir_size"`

	// Baseline phase: clean rows before the shift.
	BaselineEvals int     `json:"baseline_evals"`
	CleanGE       float64 `json:"clean_ge"`

	// Detection: cost from the first drifted republish to the first
	// firing alert.
	Detected         bool          `json:"detected"`
	DetectionRule    string        `json:"detection_rule,omitempty"`
	DetectionEvals   int           `json:"detection_evals"`
	DetectionRows    int           `json:"detection_rows"`
	DetectionLatency time.Duration `json:"detection_latency_ns"`
	DriftGE          float64       `json:"drift_ge"`

	// Recovery: the auto-rollback that followed the firing alert.
	RolledBack      bool          `json:"rolled_back"`
	RollbackLatency time.Duration `json:"rollback_latency_ns"`
	PostRollbackGE  float64       `json:"post_rollback_ge"`
}

// versionedMemStore is a ModelStore that retains every published
// version, so the monitor's auto-rollback has history to restore from.
type versionedMemStore struct {
	mu      sync.Mutex
	history []*core.Rules
}

func (s *versionedMemStore) Put(_ context.Context, _ string, r *core.Rules) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.history = append(s.history, r)
	return len(s.history), nil
}

func (s *versionedMemStore) GetWithVersion(string) (*core.Rules, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.history) == 0 {
		return nil, 0, false
	}
	return s.history[len(s.history)-1], len(s.history), true
}

func (s *versionedMemStore) GetVersion(_ string, version int) (*core.Rules, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if version < 1 || version > len(s.history) {
		return nil, false
	}
	return s.history[version-1], true
}

func (s *versionedMemStore) Rollback(_ context.Context, _ string, version int) (*core.Rules, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if version < 1 || version > len(s.history) {
		return nil, 0, fmt.Errorf("experiments: no version %d", version)
	}
	r := s.history[version-1]
	s.history = append(s.history, r)
	return r, len(s.history), nil
}

// RunDrift streams rows <= 0 ? 20000 : rows clean rank-1 rows of width
// <= 0 ? 16 : width through a live stream (republish + GE eval every
// rows/20 chunk), then switches the source to an independent profile
// and keeps streaming until the regression alert fires and the
// auto-rollback lands, measuring the latency of each.
func RunDrift(rows, width int) (*DriftResult, error) {
	if rows <= 0 {
		rows = 20000
	}
	if width <= 0 {
		width = 16
	}
	chunk := rows / 20
	if chunk < 1 {
		chunk = 1
	}

	// A single regression rule, no For/Cooldown: the experiment wants
	// the raw detection latency, not the deployment damping. Ratio 2
	// keeps the noisy baseline (each republish refits the model, so GE
	// jitters ~2x) from firing — and from burning the rollback flap
	// gate — before the shift arrives; the real spike is >10x.
	rules := []alert.Rule{{
		Name: "ge_regression", Kind: alert.KindRegression,
		Ratio: 2, Baseline: 12, Recent: 4,
	}}
	eng, err := alert.NewEngine(alert.Config{Rules: rules, Metrics: obs.Default()})
	if err != nil {
		return nil, fmt.Errorf("experiments: drift alerts: %w", err)
	}

	store := &versionedMemStore{}
	mgr, err := online.NewManager(store, online.Config{
		RepublishRows: rows + 1, // driven manually below
		GESlack:       1e12,     // disarm the gate: the alert must catch the shift
		Alerts:        eng,
		AutoRollback:  true,
		// The deployment flap gate would hide the real rollback latency
		// behind a possible noise-triggered baseline rollback.
		RollbackCooldown: time.Millisecond,
		Metrics:          obs.Default(),
		Seed:             SplitSeed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: drift manager: %w", err)
	}
	defer mgr.Close()
	stream, err := mgr.Stream("drift", 0.9, true)
	if err != nil {
		return nil, fmt.Errorf("experiments: drift stream: %w", err)
	}

	rng := rand.New(rand.NewSource(SplitSeed))
	clean := make([]float64, width)
	shifted := make([]float64, width)
	for j := range clean {
		clean[j] = 1 + rng.Float64()*4
		// An independent profile: the drifted rows obey different
		// ratios, so the clean model scores badly on them and vice
		// versa.
		shifted[j] = 5 - clean[j] + rng.Float64()
	}
	makeRow := func(profile []float64) []float64 {
		scale := 1 + rng.Float64()*9
		row := make([]float64, width)
		for j := range row {
			row[j] = profile[j] * scale * (1 + 0.05*rng.NormFloat64())
		}
		return row
	}

	ctx := context.Background()
	out := &DriftResult{Rows: rows, Width: width,
		ReservoirSize: online.DefaultReservoirSize}

	pushChunk := func(profile []float64) error {
		for i := 0; i < chunk; i++ {
			if _, err := stream.Push(ctx, makeRow(profile)); err != nil {
				return fmt.Errorf("experiments: drift push: %w", err)
			}
		}
		if _, err := mgr.Republish(ctx, "drift"); err != nil {
			return fmt.Errorf("experiments: drift republish: %w", err)
		}
		return nil
	}

	// Baseline: clean chunks until the GE ring holds a full regression
	// window (12 baseline + 4 recent samples).
	for out.BaselineEvals < 16 {
		if err := pushChunk(clean); err != nil {
			return nil, err
		}
		smp, err := mgr.EvalGE(ctx, "drift")
		if err != nil {
			return nil, fmt.Errorf("experiments: drift eval: %w", err)
		}
		out.BaselineEvals++
		out.CleanGE = smp.ServedGE
	}
	if _, firing := mgr.Alerts(); firing > 0 {
		return nil, fmt.Errorf("experiments: alert fired on clean baseline")
	}
	rollbacks0 := 0
	if h, ok := mgr.Health("drift"); ok {
		rollbacks0 = h.AutoRollbacks
	}

	// Shift: drifted chunks until an alert fires (cap: the whole row
	// budget again).
	onset := time.Now()
	maxChunks := rows / chunk
	for i := 0; i < maxChunks && !out.Detected; i++ {
		if err := pushChunk(shifted); err != nil {
			return nil, err
		}
		smp, err := mgr.EvalGE(ctx, "drift")
		if err != nil {
			return nil, fmt.Errorf("experiments: drift eval: %w", err)
		}
		out.DetectionEvals++
		out.DetectionRows += chunk
		if smp.ServedGE > out.DriftGE {
			out.DriftGE = smp.ServedGE
		}
		states, firing := mgr.Alerts()
		if firing > 0 {
			out.Detected = true
			out.DetectionLatency = time.Since(onset)
			for _, st := range states {
				if st.State == alert.StateFiring {
					out.DetectionRule = st.Rule
					break
				}
			}
			// The alert (and the rollback it triggers) lands inside the
			// republish, so the eval above may already be scoring the
			// restored model — the spike that crossed the threshold is
			// in the monitor's GE history.
			if h, ok := mgr.Health("drift"); ok {
				for _, s := range h.History {
					if s.ServedGE > out.DriftGE {
						out.DriftGE = s.ServedGE
					}
				}
			}
		}
	}
	if !out.Detected {
		return out, nil
	}

	// The firing transition triggers the rollback synchronously inside
	// the alert run; poll Health for the bookkeeping to surface.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if h, ok := mgr.Health("drift"); ok && h.AutoRollbacks > rollbacks0 {
			out.RolledBack = true
			out.RollbackLatency = time.Since(onset)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if out.RolledBack {
		if smp, err := mgr.EvalGE(ctx, "drift"); err == nil {
			out.PostRollbackGE = smp.ServedGE
		}
	}
	return out, nil
}

// String renders the detection/recovery figures.
func (r *DriftResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Drift detection: %d rows x %d cols, reservoir %d, gate disarmed\n\n",
		r.Rows, r.Width, r.ReservoirSize)
	fmt.Fprintf(&b, "%-34s %12.6g\n", "clean GE (baseline)", r.CleanGE)
	if !r.Detected {
		fmt.Fprintf(&b, "%-34s %12s\n", "alert", "never fired")
		return b.String()
	}
	fmt.Fprintf(&b, "%-34s %12.6g\n", "drifted GE (at detection)", r.DriftGE)
	fmt.Fprintf(&b, "%-34s %12s\n", "detecting rule", r.DetectionRule)
	fmt.Fprintf(&b, "%-34s %12d evals (%d rows)\n", "detection cost", r.DetectionEvals, r.DetectionRows)
	fmt.Fprintf(&b, "%-34s %12s\n", "detection latency", r.DetectionLatency.Round(time.Microsecond))
	if r.RolledBack {
		fmt.Fprintf(&b, "%-34s %12s\n", "auto-rollback latency", r.RollbackLatency.Round(time.Microsecond))
		fmt.Fprintf(&b, "%-34s %12.6g\n", "GE after rollback", r.PostRollbackGE)
	} else {
		fmt.Fprintf(&b, "%-34s %12s\n", "auto-rollback", "did not land")
	}
	return b.String()
}
