package eigen

import (
	"math"
	"testing"

	"ratiorules/internal/matrix"
)

// wilkinson builds the Wilkinson W21+ matrix, a classic stress test with
// pairs of pathologically close (but unequal) eigenvalues.
func wilkinson(n int) *matrix.Dense {
	a := matrix.NewDense(n, n)
	half := (n - 1) / 2
	for i := 0; i < n; i++ {
		d := i - half
		if d < 0 {
			d = -d
		}
		a.Set(i, i, float64(d))
		if i+1 < n {
			a.Set(i, i+1, 1)
			a.Set(i+1, i, 1)
		}
	}
	return a
}

func TestWilkinsonCloseEigenvalues(t *testing.T) {
	// W21+: the two largest eigenvalues agree to ~1e-15 yet differ; both
	// solvers must converge and deliver an orthonormal basis anyway.
	a := wilkinson(21)
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			sys, err := s.fn(a)
			if err != nil {
				t.Fatal(err)
			}
			// Known: the top eigenvalue of W21+ is ≈ 10.746194.
			if math.Abs(sys.Values[0]-10.746194) > 1e-5 {
				t.Errorf("top eigenvalue = %v, want ≈ 10.746194", sys.Values[0])
			}
			if math.Abs(sys.Values[0]-sys.Values[1]) > 1e-10 {
				t.Errorf("top pair gap = %v, want pathologically small",
					sys.Values[0]-sys.Values[1])
			}
			assertDecomposition(t, a, sys, 1e-8)
		})
	}
}

// hilbert builds the notoriously ill-conditioned Hilbert matrix.
func hilbert(n int) *matrix.Dense {
	a := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, 1/float64(i+j+1))
		}
	}
	return a
}

func TestHilbertIllConditioned(t *testing.T) {
	// Hilbert 12×12: condition number ~1e16. All solvers must return a
	// valid decomposition with non-negative eigenvalues (it is PSD) to
	// within round-off.
	a := hilbert(12)
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			sys, err := s.fn(a)
			if err != nil {
				t.Fatal(err)
			}
			// Known top eigenvalue of H12 ≈ 1.7953720595620.
			if math.Abs(sys.Values[0]-1.7953720595620) > 1e-9 {
				t.Errorf("top eigenvalue = %v, want ≈ 1.79537", sys.Values[0])
			}
			for _, l := range sys.Values {
				if l < -1e-12 {
					t.Errorf("negative eigenvalue %v from a PSD matrix", l)
				}
			}
			assertDecomposition(t, a, sys, 1e-9)
		})
	}
	// Leading-pair extraction agrees on the dominant pair.
	tk, err := TopK(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	lz, err := Lanczos(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tk.Values[0]-1.7953720595620) > 1e-8 {
		t.Errorf("TopK top = %v", tk.Values[0])
	}
	if math.Abs(lz.Values[0]-1.7953720595620) > 1e-8 {
		t.Errorf("Lanczos top = %v", lz.Values[0])
	}
}

func TestGradedSpectrum(t *testing.T) {
	// Diagonal spanning 16 orders of magnitude with a small coupling —
	// checks the absolute-floor fix in tql2's convergence test.
	n := 16
	a := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, math.Pow(10, float64(-i)))
		if i+1 < n {
			c := 1e-3 * math.Pow(10, float64(-i))
			a.Set(i, i+1, c)
			a.Set(i+1, i, c)
		}
	}
	sys, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sys.Values[0]-1) > 1e-5 {
		t.Errorf("top eigenvalue = %v, want ≈ 1", sys.Values[0])
	}
	for i := 1; i < n; i++ {
		if sys.Values[i] > sys.Values[i-1] {
			t.Fatalf("values not descending on graded spectrum")
		}
	}
	assertOrthonormal(t, sys.Vectors, 1e-9)
}

func TestLargeConstantMatrix(t *testing.T) {
	// all-ones: rank 1 with eigenvalue n; massive degeneracy at 0.
	n := 30
	a := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, 1)
		}
	}
	sys, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sys.Values[0]-float64(n)) > 1e-9*float64(n) {
		t.Errorf("top eigenvalue = %v, want %d", sys.Values[0], n)
	}
	for _, l := range sys.Values[1:] {
		if math.Abs(l) > 1e-9*float64(n) {
			t.Errorf("null eigenvalue = %v", l)
		}
	}
	assertOrthonormal(t, sys.Vectors, 1e-8)
}
