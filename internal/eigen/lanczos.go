package eigen

import (
	"fmt"
	"math"
	"math/rand"

	"ratiorules/internal/matrix"
)

// Lanczos computes the k largest eigenpairs of the symmetric PSD matrix a
// with the Lanczos method plus full reorthogonalization — the algorithm
// family the paper's footnote 1 cites (Berry, Dumais & O'Brien, "Using
// Linear Algebra for Intelligent Information Retrieval") for covariance
// matrices too large for a full solve.
//
// The Krylov basis is expanded one matrix-vector product per step; the
// projected tridiagonal problem is solved with the in-package tql2 and
// iteration stops when the k leading Ritz pairs' residuals fall below tol
// relative to the spectral scale, or when the Krylov space exhausts the
// matrix dimension. Full reorthogonalization keeps the basis numerically
// orthogonal, which is affordable at the subspace sizes Ratio Rules needs
// (k rarely above a few dozen).
func Lanczos(a *matrix.Dense, k int) (*System, error) {
	n, c := a.Dims()
	if n != c {
		return nil, fmt.Errorf("eigen: Lanczos of %d×%d matrix: %w", n, c, ErrNotSymmetric)
	}
	if err := checkSymmetric(a); err != nil {
		return nil, err
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("eigen: Lanczos k=%d outside [1, %d]", k, n)
	}

	const tol = 1e-10
	maxDim := n
	// Krylov basis vectors, alphas (diagonal) and betas (sub-diagonal).
	basis := make([][]float64, 0, maxDim)
	var alphas, betas []float64

	rng := rand.New(rand.NewSource(271828))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	matrix.Normalize(v)
	basis = append(basis, append([]float64(nil), v...))

	for step := 0; len(basis) <= maxDim; step++ {
		q := basis[len(basis)-1]
		w, err := matrix.MulVec(a, q)
		if err != nil {
			return nil, err
		}
		alpha := matrix.Dot(q, w)
		alphas = append(alphas, alpha)
		// w ← w − α·q − β·q_prev, then full reorthogonalization.
		for i := range w {
			w[i] -= alpha * q[i]
		}
		if len(basis) > 1 {
			prev := basis[len(basis)-2]
			beta := betas[len(betas)-1]
			for i := range w {
				w[i] -= beta * prev[i]
			}
		}
		for _, b := range basis {
			d := matrix.Dot(w, b)
			if d != 0 {
				for i := range w {
					w[i] -= d * b[i]
				}
			}
		}
		beta := matrix.Norm2(w)

		// Solve the projected tridiagonal problem and test convergence of
		// the k leading Ritz pairs (residual = |beta · last-row component|).
		dim := len(alphas)
		if dim >= k {
			ritzVals, ritzVecs, err := solveTridiagonal(alphas, betas)
			if err != nil {
				return nil, err
			}
			scale := 1 + math.Abs(ritzVals[0])
			converged := true
			for j := 0; j < k; j++ {
				resid := math.Abs(beta * ritzVecs.At(dim-1, j))
				if resid > tol*scale {
					converged = false
					break
				}
			}
			if converged || dim == maxDim || beta <= tol*scale {
				return assembleRitz(a, basis, ritzVals, ritzVecs, k)
			}
		}
		if beta == 0 {
			// Invariant subspace found before convergence: restart
			// direction from fresh noise, orthogonal to the basis.
			for i := range w {
				w[i] = rng.NormFloat64()
			}
			for _, b := range basis {
				d := matrix.Dot(w, b)
				for i := range w {
					w[i] -= d * b[i]
				}
			}
			if matrix.Normalize(w) == 0 {
				// The basis already spans everything.
				ritzVals, ritzVecs, err := solveTridiagonal(alphas, betas)
				if err != nil {
					return nil, err
				}
				return assembleRitz(a, basis, ritzVals, ritzVecs, k)
			}
			beta = 0 // logical break in the tridiagonal structure
		} else {
			for i := range w {
				w[i] /= beta
			}
		}
		betas = append(betas, beta)
		basis = append(basis, append([]float64(nil), w...))
	}
	return nil, fmt.Errorf("eigen: Lanczos did not converge within %d steps: %w", maxDim, ErrNoConvergence)
}

// solveTridiagonal diagonalizes the symmetric tridiagonal matrix with
// diagonal alphas and sub-diagonal betas, returning eigenvalues descending
// and the eigenvector matrix (columns matching).
func solveTridiagonal(alphas, betas []float64) ([]float64, *matrix.Dense, error) {
	dim := len(alphas)
	d := append([]float64(nil), alphas...)
	e := make([]float64, dim)
	// tql2 reads e[1..dim-1] as sub-diagonals (it shifts internally).
	for i := 1; i < dim; i++ {
		e[i] = betas[i-1]
	}
	z := matrix.Identity(dim)
	if err := tql2(z, d, e); err != nil {
		return nil, nil, err
	}
	sys := sortedSystem(d, z)
	return sys.Values, sys.Vectors, nil
}

// assembleRitz maps the leading k Ritz pairs back to the original space.
func assembleRitz(a *matrix.Dense, basis [][]float64, vals []float64, vecs *matrix.Dense, k int) (*System, error) {
	n, _ := a.Dims()
	dim := len(basis)
	values := make([]float64, k)
	vectors := matrix.NewDense(n, k)
	col := make([]float64, n)
	for j := 0; j < k; j++ {
		values[j] = vals[j]
		for i := range col {
			col[i] = 0
		}
		for p := 0; p < dim; p++ {
			w := vecs.At(p, j)
			if w == 0 {
				continue
			}
			bp := basis[p]
			for i := range col {
				col[i] += w * bp[i]
			}
		}
		matrix.Normalize(col)
		canonicalizeSign(col)
		for i := 0; i < n; i++ {
			vectors.Set(i, j, col[i])
		}
	}
	return &System{Values: values, Vectors: vectors}, nil
}
