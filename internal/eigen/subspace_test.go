package eigen

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ratiorules/internal/matrix"
)

// randomPSD builds a random symmetric positive semi-definite matrix with a
// decaying spectrum, like a covariance matrix. The per-column decay is
// tempered for large n so the spectrum spans a realistic dynamic range
// instead of underflowing.
func randomPSD(rng *rand.Rand, n int) *matrix.Dense {
	decay := math.Pow(1e-6, 1/float64(n)) // spectrum spans ~12 orders of magnitude
	g := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		row := g.RawRow(i)
		for j := range row {
			row[j] = rng.NormFloat64() * math.Pow(decay, float64(j))
		}
	}
	return matrix.MustMul(g.T(), g)
}

func TestTopKMatchesFullSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(15)
		a := randomPSD(rng, n)
		full, err := SymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(3)
		top, err := TopK(a, k)
		if err != nil {
			t.Fatal(err)
		}
		scale := 1 + full.Values[0]
		for j := 0; j < k; j++ {
			if math.Abs(top.Values[j]-full.Values[j]) > 1e-8*scale {
				t.Fatalf("n=%d k=%d: eigenvalue %d = %v, full solve %v",
					n, k, j, top.Values[j], full.Values[j])
			}
			// Eigenvectors agree up to sign (both canonicalized).
			got, want := top.Vectors.Col(j), full.Vectors.Col(j)
			// Skip the vector check when eigenvalue j is nearly degenerate
			// with a neighbor — any basis of the eigenspace is correct.
			degenerate := (j+1 < n && math.Abs(full.Values[j]-full.Values[j+1]) < 1e-6*scale) ||
				(j > 0 && math.Abs(full.Values[j]-full.Values[j-1]) < 1e-6*scale)
			if !degenerate && !matrix.EqualApproxVec(got, want, 1e-6) {
				t.Fatalf("n=%d k=%d: eigenvector %d differs:\n%v\n%v", n, k, j, got, want)
			}
		}
	}
}

func TestTopKValidation(t *testing.T) {
	a := randomPSD(rand.New(rand.NewSource(41)), 4)
	if _, err := TopK(a, 0); err == nil {
		t.Error("k=0 must fail")
	}
	if _, err := TopK(a, 5); err == nil {
		t.Error("k>n must fail")
	}
	if _, err := TopK(matrix.NewDense(2, 3), 1); !errors.Is(err, ErrNotSymmetric) {
		t.Errorf("rectangular: err = %v, want ErrNotSymmetric", err)
	}
	bad := matrix.MustFromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := TopK(bad, 1); !errors.Is(err, ErrNotSymmetric) {
		t.Errorf("asymmetric: err = %v, want ErrNotSymmetric", err)
	}
}

func TestTopKFullRank(t *testing.T) {
	// k = n must still work (block clamped to n).
	a := randomPSD(rand.New(rand.NewSource(42)), 6)
	full, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	top, err := TopK(a, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(top.Values, full.Values, 1e-8*(1+full.Values[0])) {
		t.Errorf("full-k values:\n%v\nwant\n%v", top.Values, full.Values)
	}
}

func TestTopKRankDeficient(t *testing.T) {
	// Rank-2 PSD matrix: requesting k=2 recovers both live directions.
	v1 := []float64{1, 2, 3, 4, 5}
	v2 := []float64{5, -1, 0, 1, -5}
	a := matrix.NewDense(5, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			a.Set(i, j, 3*v1[i]*v1[j]+v2[i]*v2[j])
		}
	}
	top, err := TopK(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	full, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(top.Values, full.Values[:3], 1e-7*(1+full.Values[0])) {
		t.Errorf("values = %v, want %v", top.Values, full.Values[:3])
	}
	if math.Abs(top.Values[2]) > 1e-7*(1+full.Values[0]) {
		t.Errorf("third eigenvalue = %v, want ≈ 0 for rank-2 input", top.Values[2])
	}
}

// Property: residual |A·v − λ·v| is tiny for every returned pair.
func TestTopKResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		a := randomPSD(rng, n)
		k := 1 + rng.Intn(n)
		sys, err := TopK(a, k)
		if err != nil {
			return false
		}
		scale := 1 + sys.Values[0]
		for j := 0; j < k; j++ {
			v := sys.Vectors.Col(j)
			av, err := matrix.MulVec(a, v)
			if err != nil {
				return false
			}
			for i := range av {
				av[i] -= sys.Values[j] * v[i]
			}
			if matrix.Norm2(av) > 1e-7*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOrthonormalizeColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	q := matrix.NewDense(6, 3)
	for i := 0; i < 6; i++ {
		for j := 0; j < 3; j++ {
			q.Set(i, j, rng.NormFloat64())
		}
	}
	// Make column 2 a copy of column 0 (degenerate).
	for i := 0; i < 6; i++ {
		q.Set(i, 2, q.At(i, 0))
	}
	orthonormalizeColumns(q)
	gram := matrix.MustMul(q.T(), q)
	if !matrix.EqualApprox(gram, matrix.Identity(3), 1e-10) {
		t.Errorf("columns not orthonormal after degenerate input:\n%v", gram)
	}
}

func BenchmarkTopK3of200(b *testing.B) {
	a := randomPSD(rand.New(rand.NewSource(1)), 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TopK(a, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullSolve200(b *testing.B) {
	a := randomPSD(rand.New(rand.NewSource(1)), 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SymEig(a); err != nil {
			b.Fatal(err)
		}
	}
}
