package eigen

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ratiorules/internal/matrix"
)

func TestLanczosMatchesFullSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(20)
		a := randomPSD(rng, n)
		full, err := SymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(3)
		lz, err := Lanczos(a, k)
		if err != nil {
			t.Fatal(err)
		}
		scale := 1 + full.Values[0]
		for j := 0; j < k; j++ {
			if math.Abs(lz.Values[j]-full.Values[j]) > 1e-7*scale {
				t.Fatalf("n=%d k=%d: eigenvalue %d = %v, full %v",
					n, k, j, lz.Values[j], full.Values[j])
			}
		}
	}
}

func TestLanczosAgreesWithTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	a := randomPSD(rng, 30)
	lz, err := Lanczos(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := TopK(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(lz.Values, tk.Values, 1e-6*(1+tk.Values[0])) {
		t.Errorf("Lanczos %v vs TopK %v", lz.Values, tk.Values)
	}
}

func TestLanczosValidation(t *testing.T) {
	a := randomPSD(rand.New(rand.NewSource(122)), 5)
	if _, err := Lanczos(a, 0); err == nil {
		t.Error("k=0 must fail")
	}
	if _, err := Lanczos(a, 6); err == nil {
		t.Error("k>n must fail")
	}
	if _, err := Lanczos(matrix.NewDense(2, 3), 1); !errors.Is(err, ErrNotSymmetric) {
		t.Errorf("rectangular: err = %v, want ErrNotSymmetric", err)
	}
}

func TestLanczosRankDeficient(t *testing.T) {
	// Rank-1 matrix: Lanczos hits an invariant subspace after one step and
	// must still deliver k pairs.
	v := []float64{1, 2, 3, 4, 5, 6}
	a := matrix.NewDense(6, 6)
	for i := range v {
		for j := range v {
			a.Set(i, j, v[i]*v[j])
		}
	}
	lz, err := Lanczos(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lz.Values[0]-91) > 1e-7*92 {
		t.Errorf("top eigenvalue = %v, want 91", lz.Values[0])
	}
	for _, l := range lz.Values[1:] {
		if math.Abs(l) > 1e-7*92 {
			t.Errorf("null eigenvalue = %v, want ≈ 0", l)
		}
	}
}

func TestLanczosIdentity(t *testing.T) {
	// Fully degenerate spectrum.
	lz, err := Lanczos(matrix.Identity(8), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lz.Values {
		if math.Abs(l-1) > 1e-9 {
			t.Errorf("identity eigenvalue = %v, want 1", l)
		}
	}
	assertOrthonormal(t, lz.Vectors, 1e-8)
}

// Property: residuals |A·v − λ·v| vanish relative to the spectral scale.
func TestLanczosResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(16)
		a := randomPSD(rng, n)
		k := 1 + rng.Intn(3)
		sys, err := Lanczos(a, k)
		if err != nil {
			return false
		}
		scale := 1 + sys.Values[0]
		for j := 0; j < k; j++ {
			v := sys.Vectors.Col(j)
			av, err := matrix.MulVec(a, v)
			if err != nil {
				return false
			}
			for i := range av {
				av[i] -= sys.Values[j] * v[i]
			}
			if matrix.Norm2(av) > 1e-6*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLanczos3of200(b *testing.B) {
	a := randomPSD(rand.New(rand.NewSource(1)), 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Lanczos(a, 3); err != nil {
			b.Fatal(err)
		}
	}
}
