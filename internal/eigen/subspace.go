package eigen

import (
	"fmt"
	"math"
	"math/rand"

	"ratiorules/internal/matrix"
)

// TopK computes the k largest-eigenvalue pairs of the symmetric
// positive-semi-definite matrix a by block power (subspace) iteration with
// Rayleigh–Ritz extraction.
//
// The paper's footnote 1 observes that when the number of columns is far
// above a thousand, full eigensolution of the covariance matrix is
// wasteful and Lanczos-type methods ("the methods from [6]") should be
// used to extract just the leading eigenvectors. Subspace iteration is the
// simplest member of that family: each sweep costs O(k·M²) against the
// O(M³) of the full tred2/tql2 solve, which pays off when k ≪ M.
//
// The matrix must be symmetric PSD (covariance/scatter matrices are).
// Results match SymEig's leading pairs to the requested tolerance.
func TopK(a *matrix.Dense, k int) (*System, error) {
	n, c := a.Dims()
	if n != c {
		return nil, fmt.Errorf("eigen: TopK of %d×%d matrix: %w", n, c, ErrNotSymmetric)
	}
	if err := checkSymmetric(a); err != nil {
		return nil, err
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("eigen: TopK k=%d outside [1, %d]", k, n)
	}
	if n == 0 {
		return &System{Vectors: matrix.NewDense(0, 0)}, nil
	}

	// Guard block: iterate k+g vectors so the k-th pair converges even
	// when eigenvalues k and k+1 are close.
	block := k + 2
	if block > n {
		block = n
	}

	// Deterministic random start, orthonormalized.
	rng := rand.New(rand.NewSource(31337))
	q := matrix.NewDense(n, block)
	for i := 0; i < n; i++ {
		for j := 0; j < block; j++ {
			q.Set(i, j, rng.NormFloat64())
		}
	}
	orthonormalizeColumns(q)

	const (
		maxSweeps = 500
		tol       = 1e-12
	)
	prev := make([]float64, block)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		z := matrix.MustMul(a, q)
		// Rayleigh–Ritz: project onto the subspace and solve the small
		// block×block eigenproblem exactly.
		small := matrix.MustMul(q.T(), z)
		// Symmetrize round-off before the small solve.
		for i := 0; i < block; i++ {
			for j := i + 1; j < block; j++ {
				v := 0.5 * (small.At(i, j) + small.At(j, i))
				small.Set(i, j, v)
				small.Set(j, i, v)
			}
		}
		sys, err := SymEig(small)
		if err != nil {
			return nil, fmt.Errorf("eigen: TopK Rayleigh-Ritz solve: %w", err)
		}
		// Rotate the block onto the Ritz vectors and power once.
		q = matrix.MustMul(z, sys.Vectors)
		orthonormalizeColumns(q)

		// Convergence on the leading k Ritz values, each relative to its
		// own magnitude (a floor tied to λ₁ keeps near-null pairs from
		// demanding impossible absolute accuracy).
		floor := 1e-10 * (1 + math.Abs(sys.Values[0]))
		done := true
		for j := 0; j < k; j++ {
			if math.Abs(sys.Values[j]-prev[j]) > tol*math.Abs(sys.Values[j])+floor*tol {
				done = false
			}
		}
		copy(prev, sys.Values)
		if done && sweep > 0 {
			break
		}
	}

	// Final Rayleigh-Ritz pass for consistent eigenpairs.
	z := matrix.MustMul(a, q)
	small := matrix.MustMul(q.T(), z)
	for i := 0; i < block; i++ {
		for j := i + 1; j < block; j++ {
			v := 0.5 * (small.At(i, j) + small.At(j, i))
			small.Set(i, j, v)
			small.Set(j, i, v)
		}
	}
	sys, err := SymEig(small)
	if err != nil {
		return nil, fmt.Errorf("eigen: TopK final Rayleigh-Ritz solve: %w", err)
	}
	ritz := matrix.MustMul(q, sys.Vectors)

	values := make([]float64, k)
	vectors := matrix.NewDense(n, k)
	for j := 0; j < k; j++ {
		values[j] = sys.Values[j]
		col := ritz.Col(j)
		matrix.Normalize(col)
		canonicalizeSign(col)
		for i := 0; i < n; i++ {
			vectors.Set(i, j, col[i])
		}
	}
	return &System{Values: values, Vectors: vectors}, nil
}

// orthonormalizeColumns applies modified Gram-Schmidt in place. Columns
// that collapse to zero are replaced by fresh deterministic noise and
// re-orthogonalized, so the block never degenerates.
func orthonormalizeColumns(q *matrix.Dense) {
	n, k := q.Dims()
	rng := rand.New(rand.NewSource(7331))
	for j := 0; j < k; j++ {
		col := q.Col(j)
		for attempt := 0; ; attempt++ {
			for p := 0; p < j; p++ {
				prev := q.Col(p)
				d := matrix.Dot(col, prev)
				for i := range col {
					col[i] -= d * prev[i]
				}
			}
			if matrix.Normalize(col) > 1e-12 || attempt >= 3 {
				break
			}
			for i := range col {
				col[i] = rng.NormFloat64()
			}
		}
		for i := 0; i < n; i++ {
			q.Set(i, j, col[i])
		}
	}
}
