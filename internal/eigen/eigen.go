// Package eigen computes eigenvalues and eigenvectors of real symmetric
// matrices, the "off-the-shelf eigensystem package" step of the Ratio Rules
// pipeline (Fig. 2(b) of Korn et al., VLDB 1998).
//
// Two independent solvers are provided:
//
//   - SymEig: Householder tridiagonalization followed by the implicit-shift
//     QL iteration (the EISPACK tred2/tql2 pair). This is the default,
//     O(M³) with a small constant, and robust for the covariance matrices
//     the miner produces.
//   - Jacobi: classical cyclic Jacobi rotations. Slower but simple and very
//     accurate; retained as a cross-check in tests and an ablation baseline.
//
// Both return eigenvalues sorted in descending order together with the
// matching orthonormal eigenvectors, which is the order the Ratio Rules
// cutoff (Eq. 1 of the paper) consumes them in.
package eigen

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ratiorules/internal/matrix"
)

// ErrNotSymmetric is returned when the input matrix is not square and
// symmetric within SymmetryTol.
var ErrNotSymmetric = errors.New("eigen: matrix is not symmetric")

// ErrNoConvergence is returned when an iterative solver exceeds its
// iteration budget without reducing off-diagonal mass to round-off.
var ErrNoConvergence = errors.New("eigen: iteration did not converge")

// SymmetryTol is the absolute tolerance used to validate input symmetry,
// relative to the largest matrix entry.
const SymmetryTol = 1e-8

// System is an eigendecomposition of a symmetric matrix A = V·diag(λ)·Vᵗ.
type System struct {
	// Values holds the eigenvalues in descending order.
	Values []float64
	// Vectors holds the corresponding eigenvectors as columns: column j of
	// Vectors is the unit eigenvector for Values[j].
	Vectors *matrix.Dense
}

// SymEig decomposes the symmetric matrix a using Householder reduction and
// implicit-shift QL iteration. The input is not modified.
func SymEig(a *matrix.Dense) (*System, error) {
	if err := checkSymmetric(a); err != nil {
		return nil, err
	}
	n, _ := a.Dims()
	if n == 0 {
		return &System{Values: nil, Vectors: matrix.NewDense(0, 0)}, nil
	}
	// Work on a copy: tred2 runs in place.
	z := a.Clone()
	d := make([]float64, n) // diagonal of the tridiagonal form
	e := make([]float64, n) // sub-diagonal
	tred2(z, d, e)
	if err := tql2(z, d, e); err != nil {
		return nil, err
	}
	return sortedSystem(d, z), nil
}

// Jacobi decomposes the symmetric matrix a using cyclic Jacobi rotations.
// The input is not modified. It is O(M³) per sweep with typically 6-10
// sweeps; prefer SymEig for large matrices.
func Jacobi(a *matrix.Dense) (*System, error) {
	if err := checkSymmetric(a); err != nil {
		return nil, err
	}
	n, _ := a.Dims()
	if n == 0 {
		return &System{Values: nil, Vectors: matrix.NewDense(0, 0)}, nil
	}
	w := a.Clone()
	v := matrix.Identity(n)
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagonalNorm(w)
		if off <= 1e-14*(1+w.MaxAbs()) {
			d := make([]float64, n)
			for i := 0; i < n; i++ {
				d[i] = w.At(i, i)
			}
			return sortedSystem(d, v), nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				jacobiRotate(w, v, p, q)
			}
		}
	}
	return nil, fmt.Errorf("eigen: Jacobi exceeded %d sweeps: %w", 64, ErrNoConvergence)
}

// checkSymmetric validates that a is square and symmetric.
func checkSymmetric(a *matrix.Dense) error {
	r, c := a.Dims()
	if r != c {
		return fmt.Errorf("eigen: %d×%d matrix is not square: %w", r, c, ErrNotSymmetric)
	}
	tol := SymmetryTol * (1 + a.MaxAbs())
	if !a.IsSymmetric(tol) {
		return ErrNotSymmetric
	}
	return nil
}

// offDiagonalNorm returns the Frobenius norm of the strictly upper triangle.
func offDiagonalNorm(a *matrix.Dense) float64 {
	n, _ := a.Dims()
	var s float64
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			v := a.At(i, j)
			s += v * v
		}
	}
	return math.Sqrt(2 * s)
}

// jacobiRotate zeroes w[p][q] with a Givens rotation, accumulating into v.
func jacobiRotate(w, v *matrix.Dense, p, q int) {
	apq := w.At(p, q)
	if apq == 0 {
		return
	}
	app, aqq := w.At(p, p), w.At(q, q)
	theta := (aqq - app) / (2 * apq)
	// Numerically stable tangent of the rotation angle.
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(1+theta*theta))
	} else {
		t = -1 / (-theta + math.Sqrt(1+theta*theta))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c
	tau := s / (1 + c)

	n, _ := w.Dims()
	w.Set(p, p, app-t*apq)
	w.Set(q, q, aqq+t*apq)
	w.Set(p, q, 0)
	w.Set(q, p, 0)
	for i := 0; i < n; i++ {
		if i != p && i != q {
			aip, aiq := w.At(i, p), w.At(i, q)
			w.Set(i, p, aip-s*(aiq+tau*aip))
			w.Set(p, i, w.At(i, p))
			w.Set(i, q, aiq+s*(aip-tau*aiq))
			w.Set(q, i, w.At(i, q))
		}
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, vip-s*(viq+tau*vip))
		v.Set(i, q, viq+s*(vip-tau*viq))
	}
}

// sortedSystem bundles eigenvalues d and eigenvector columns of z into a
// System sorted by descending eigenvalue, normalizing vector signs so the
// component of largest magnitude is positive (a stable, presentation-
// friendly convention for Ratio Rules).
func sortedSystem(d []float64, z *matrix.Dense) *System {
	n := len(d)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return d[idx[a]] > d[idx[b]] })

	values := make([]float64, n)
	vectors := matrix.NewDense(n, n)
	for out, in := range idx {
		values[out] = d[in]
		col := z.Col(in)
		canonicalizeSign(col)
		for i := 0; i < n; i++ {
			vectors.Set(i, out, col[i])
		}
	}
	return &System{Values: values, Vectors: vectors}
}

// canonicalizeSign flips v so that its largest-magnitude component is
// positive.
func canonicalizeSign(v []float64) {
	var (
		mx  float64
		arg int
	)
	for i, x := range v {
		if a := math.Abs(x); a > mx {
			mx, arg = a, i
		}
	}
	if mx > 0 && v[arg] < 0 {
		for i := range v {
			v[i] = -v[i]
		}
	}
}

// tred2 reduces the symmetric matrix stored in z to tridiagonal form by
// Householder similarity transformations, accumulating the transformation
// in z. On return d holds the diagonal and e the sub-diagonal (e[0] = 0).
// Translated from the EISPACK routine of the same name (0-indexed).
func tred2(z *matrix.Dense, d, e []float64) {
	n := len(d)
	for i := 0; i < n; i++ {
		d[i] = z.At(n-1, i)
	}
	for i := n - 1; i > 0; i-- {
		l := i - 1
		var h, scale float64
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(d[k])
			}
			if scale == 0 {
				e[i] = d[l]
				for j := 0; j <= l; j++ {
					d[j] = z.At(l, j)
					z.Set(i, j, 0)
					z.Set(j, i, 0)
				}
			} else {
				for k := 0; k <= l; k++ {
					d[k] /= scale
					h += d[k] * d[k]
				}
				f := d[l]
				g := math.Sqrt(h)
				if f > 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				d[l] = f - g
				for j := 0; j <= l; j++ {
					e[j] = 0
				}
				for j := 0; j <= l; j++ {
					f = d[j]
					z.Set(j, i, f)
					g = e[j] + z.At(j, j)*f
					for k := j + 1; k <= l; k++ {
						g += z.At(k, j) * d[k]
						e[k] += z.At(k, j) * f
					}
					e[j] = g
				}
				f = 0
				for j := 0; j <= l; j++ {
					e[j] /= h
					f += e[j] * d[j]
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					e[j] -= hh * d[j]
				}
				for j := 0; j <= l; j++ {
					f = d[j]
					g = e[j]
					for k := j; k <= l; k++ {
						z.Set(k, j, z.At(k, j)-(f*e[k]+g*d[k]))
					}
					d[j] = z.At(l, j)
					z.Set(i, j, 0)
				}
			}
		} else {
			e[i] = d[l]
			d[l] = z.At(l, l)
			z.Set(i, l, 0)
			z.Set(l, i, 0)
		}
		d[i] = h
	}
	// Accumulate transformations.
	for i := 0; i < n-1; i++ {
		z.Set(n-1, i, z.At(i, i))
		z.Set(i, i, 1)
		l := i + 1
		if d[l] != 0 {
			for k := 0; k < l; k++ {
				d[k] = z.At(k, l) / d[l]
			}
			for j := 0; j < l; j++ {
				var g float64
				for k := 0; k < l; k++ {
					g += z.At(k, l) * z.At(k, j)
				}
				for k := 0; k < l; k++ {
					z.Set(k, j, z.At(k, j)-g*d[k])
				}
			}
		}
		for k := 0; k < l; k++ {
			z.Set(k, l, 0)
		}
	}
	for i := 0; i < n; i++ {
		d[i] = z.At(n-1, i)
		z.Set(n-1, i, 0)
	}
	z.Set(n-1, n-1, 1)
	e[0] = 0
}

// tql2 finds the eigenvalues and eigenvectors of the symmetric tridiagonal
// matrix described by d (diagonal) and e (sub-diagonal, e[0] ignored) using
// the QL method with implicit shifts, updating the transformation
// accumulated in z. Translated from the EISPACK routine of the same name.
func tql2(z *matrix.Dense, d, e []float64) error {
	n := len(d)
	if n == 1 {
		return nil
	}
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0

	const maxIter = 50
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			// Find a small sub-diagonal element to split the matrix.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				// The absolute floor handles spectra whose tail underflows
				// toward zero (dd ≈ 0 with a denormal e[m]), where a purely
				// relative test can never be met.
				if math.Abs(e[m]) <= machEps*dd+1e-300 {
					break
				}
			}
			if m == l {
				break
			}
			if iter >= maxIter {
				return fmt.Errorf("eigen: tql2 exceeded %d iterations at index %d: %w",
					maxIter, l, ErrNoConvergence)
			}
			// Form the implicit Wilkinson shift.
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				// Accumulate the rotation into the eigenvector matrix.
				for k := 0; k < n; k++ {
					f = z.At(k, i+1)
					z.Set(k, i+1, s*z.At(k, i)+c*f)
					z.Set(k, i, c*z.At(k, i)-s*f)
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

const machEps = 2.220446049250313e-16
