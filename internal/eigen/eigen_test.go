package eigen

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ratiorules/internal/matrix"
)

// solvers lets every test run against both implementations.
var solvers = []struct {
	name string
	fn   func(*matrix.Dense) (*System, error)
}{
	{"SymEig", SymEig},
	{"Jacobi", Jacobi},
}

func TestDiagonalMatrix(t *testing.T) {
	a := matrix.Diagonal([]float64{3, 1, 2})
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			sys, err := s.fn(a)
			if err != nil {
				t.Fatal(err)
			}
			want := []float64{3, 2, 1}
			if !matrix.EqualApproxVec(sys.Values, want, 1e-12) {
				t.Errorf("Values = %v, want %v", sys.Values, want)
			}
			assertDecomposition(t, a, sys, 1e-10)
		})
	}
}

func TestKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1 with eigenvectors
	// (1,1)/√2 and (1,-1)/√2.
	a := matrix.MustFromRows([][]float64{{2, 1}, {1, 2}})
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			sys, err := s.fn(a)
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.EqualApproxVec(sys.Values, []float64{3, 1}, 1e-12) {
				t.Fatalf("Values = %v, want [3 1]", sys.Values)
			}
			v0 := sys.Vectors.Col(0)
			inv := 1 / math.Sqrt2
			if !matrix.EqualApproxVec(v0, []float64{inv, inv}, 1e-10) {
				t.Errorf("first eigenvector = %v, want [%v %v]", v0, inv, inv)
			}
		})
	}
}

func TestPaperFigure1Direction(t *testing.T) {
	// The paper's Fig. 1 states that eigensystem analysis identifies
	// (0.866, 0.5) as the best axis for the bread/butter toy data. Build a
	// covariance matrix whose top eigenvector is exactly that direction and
	// confirm both solvers recover it.
	d := []float64{0.866, 0.5}
	a := matrix.NewDense(2, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			a.Set(i, j, 10*d[i]*d[j]+0.1*float64(boolToInt(i == j)))
		}
	}
	unit := append([]float64(nil), d...)
	matrix.Normalize(unit)
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			sys, err := s.fn(a)
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.EqualApproxVec(sys.Vectors.Col(0), unit, 1e-9) {
				t.Errorf("top eigenvector = %v, want %v", sys.Vectors.Col(0), unit)
			}
		})
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestEmptyAndSingleton(t *testing.T) {
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			sys, err := s.fn(matrix.NewDense(0, 0))
			if err != nil {
				t.Fatalf("0×0: %v", err)
			}
			if len(sys.Values) != 0 {
				t.Errorf("0×0 Values = %v", sys.Values)
			}
			sys, err = s.fn(matrix.MustFromRows([][]float64{{7}}))
			if err != nil {
				t.Fatalf("1×1: %v", err)
			}
			if !matrix.EqualApproxVec(sys.Values, []float64{7}, 0) {
				t.Errorf("1×1 Values = %v, want [7]", sys.Values)
			}
			if got := sys.Vectors.At(0, 0); math.Abs(math.Abs(got)-1) > 1e-12 {
				t.Errorf("1×1 vector = %v, want ±1", got)
			}
		})
	}
}

func TestNotSymmetricRejected(t *testing.T) {
	bad := matrix.MustFromRows([][]float64{{1, 2}, {3, 4}})
	rect := matrix.NewDense(2, 3)
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			if _, err := s.fn(bad); !errors.Is(err, ErrNotSymmetric) {
				t.Errorf("asymmetric: err = %v, want ErrNotSymmetric", err)
			}
			if _, err := s.fn(rect); !errors.Is(err, ErrNotSymmetric) {
				t.Errorf("rectangular: err = %v, want ErrNotSymmetric", err)
			}
		})
	}
}

func TestInputNotModified(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSymmetric(rng, 6)
	orig := a.Clone()
	for _, s := range solvers {
		if _, err := s.fn(a); err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if !matrix.EqualApprox(a, orig, 0) {
			t.Fatalf("%s modified its input", s.name)
		}
	}
}

func TestRepeatedEigenvalues(t *testing.T) {
	// Identity: all eigenvalues 1; eigenvectors must still be orthonormal.
	a := matrix.Identity(5)
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			sys, err := s.fn(a)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range sys.Values {
				if math.Abs(v-1) > 1e-12 {
					t.Errorf("eigenvalue %v, want 1", v)
				}
			}
			assertOrthonormal(t, sys.Vectors, 1e-10)
		})
	}
}

func TestRankDeficient(t *testing.T) {
	// Rank-1 matrix v·vᵗ: one eigenvalue |v|², rest zero.
	v := []float64{1, 2, 3, 4}
	a := matrix.NewDense(4, 4)
	for i := range v {
		for j := range v {
			a.Set(i, j, v[i]*v[j])
		}
	}
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			sys, err := s.fn(a)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(sys.Values[0]-30) > 1e-9 {
				t.Errorf("top eigenvalue = %v, want 30", sys.Values[0])
			}
			for _, lam := range sys.Values[1:] {
				if math.Abs(lam) > 1e-9 {
					t.Errorf("trailing eigenvalue = %v, want 0", lam)
				}
			}
			assertDecomposition(t, a, sys, 1e-8)
		})
	}
}

func TestSolversAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10)
		a := randomSymmetric(rng, n)
		s1, err := SymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := Jacobi(a)
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.EqualApproxVec(s1.Values, s2.Values, 1e-8*(1+a.MaxAbs())) {
			t.Fatalf("n=%d eigenvalues disagree:\nSymEig: %v\nJacobi: %v", n, s1.Values, s2.Values)
		}
	}
}

func TestValuesDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSymmetric(rng, 12)
	for _, s := range solvers {
		sys, err := s.fn(a)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(sys.Values); i++ {
			if sys.Values[i] > sys.Values[i-1]+1e-12 {
				t.Fatalf("%s: values not descending: %v", s.name, sys.Values)
			}
		}
	}
}

// Property: A·v = λ·v, orthonormal V, trace preserved, for random symmetric
// matrices of random size.
func TestDecompositionProperty(t *testing.T) {
	for _, s := range solvers {
		s := s
		t.Run(s.name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				n := 1 + rng.Intn(14)
				a := randomSymmetric(rng, n)
				sys, err := s.fn(a)
				if err != nil {
					return false
				}
				tol := 1e-8 * (1 + a.MaxAbs())
				// Reconstruction A == V·diag(λ)·Vᵗ.
				recon := matrix.MustMul(matrix.MustMul(sys.Vectors, matrix.Diagonal(sys.Values)), sys.Vectors.T())
				if !matrix.EqualApprox(a, recon, tol) {
					return false
				}
				// Orthonormality.
				gram := matrix.MustMul(sys.Vectors.T(), sys.Vectors)
				if !matrix.EqualApprox(gram, matrix.Identity(n), 1e-9) {
					return false
				}
				// Trace preservation.
				var trA, trL float64
				for i := 0; i < n; i++ {
					trA += a.At(i, i)
					trL += sys.Values[i]
				}
				return math.Abs(trA-trL) <= tol*float64(n)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestSignCanonicalization(t *testing.T) {
	// Largest-magnitude component of every eigenvector must be positive.
	rng := rand.New(rand.NewSource(11))
	a := randomSymmetric(rng, 8)
	for _, s := range solvers {
		sys, err := s.fn(a)
		if err != nil {
			t.Fatal(err)
		}
		n := len(sys.Values)
		for j := 0; j < n; j++ {
			col := sys.Vectors.Col(j)
			var mx float64
			var arg int
			for i, x := range col {
				if math.Abs(x) > mx {
					mx, arg = math.Abs(x), i
				}
			}
			if col[arg] < 0 {
				t.Errorf("%s: eigenvector %d not sign-canonicalized: %v", s.name, j, col)
			}
		}
	}
}

func TestLargeMatrixConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 100×100 eigensolve in -short mode")
	}
	rng := rand.New(rand.NewSource(99))
	a := randomSymmetric(rng, 100)
	sys, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	assertDecomposition(t, a, sys, 1e-7)
}

func assertDecomposition(t *testing.T, a *matrix.Dense, sys *System, tol float64) {
	t.Helper()
	n, _ := a.Dims()
	recon := matrix.MustMul(matrix.MustMul(sys.Vectors, matrix.Diagonal(sys.Values)), sys.Vectors.T())
	if !matrix.EqualApprox(a, recon, tol*(1+a.MaxAbs())) {
		t.Errorf("V·diag(λ)·Vᵗ does not reconstruct A (n=%d)", n)
	}
	assertOrthonormal(t, sys.Vectors, tol)
}

func assertOrthonormal(t *testing.T, v *matrix.Dense, tol float64) {
	t.Helper()
	_, cols := v.Dims()
	gram := matrix.MustMul(v.T(), v)
	if !matrix.EqualApprox(gram, matrix.Identity(cols), tol) {
		t.Error("eigenvector matrix columns are not orthonormal")
	}
}

func randomSymmetric(rng *rand.Rand, n int) *matrix.Dense {
	a := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

func BenchmarkSymEig50(b *testing.B)  { benchSolver(b, SymEig, 50) }
func BenchmarkSymEig100(b *testing.B) { benchSolver(b, SymEig, 100) }
func BenchmarkJacobi50(b *testing.B)  { benchSolver(b, Jacobi, 50) }

func benchSolver(b *testing.B, fn func(*matrix.Dense) (*System, error), n int) {
	rng := rand.New(rand.NewSource(1))
	a := randomSymmetric(rng, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(a); err != nil {
			b.Fatal(err)
		}
	}
}
