package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ratiorules/internal/matrix"
)

// TestStreamMinerMergeEqualsSingleStream shards one row stream across
// three accumulators, merges them, and requires the merged rules to
// match a single miner that saw every row — the contract that makes
// sharded parallel ingest sound.
func TestStreamMinerMergeEqualsSingleStream(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	x := randomCorrelated(rng, 300, 6)

	single, err := NewStreamMiner(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*StreamMiner, 3)
	for i := range shards {
		if shards[i], err = NewStreamMiner(6, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < x.Rows(); i++ {
		row := x.RawRow(i)
		if err := single.Push(row); err != nil {
			t.Fatal(err)
		}
		if err := shards[i%len(shards)].Push(row); err != nil {
			t.Fatal(err)
		}
	}
	merged := shards[0]
	for _, sh := range shards[1:] {
		if err := merged.Merge(sh); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Count() != single.Count() {
		t.Fatalf("merged Count = %d, want %d", merged.Count(), single.Count())
	}

	want, err := single.Rules()
	if err != nil {
		t.Fatal(err)
	}
	got, err := merged.Rules()
	if err != nil {
		t.Fatal(err)
	}
	assertRulesClose(t, got, want, 1e-12)
}

// TestStreamMinerMergeDecayed checks the decayed path: two shards that
// each saw the same rows merge into exactly the sum of their decayed
// statistics (weights add, sums add).
func TestStreamMinerMergeDecayed(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	a, _ := NewStreamMiner(3, 0.1)
	b, _ := NewStreamMiner(3, 0.1)
	for i := 0; i < 50; i++ {
		row := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		if err := a.Push(row); err != nil {
			t.Fatal(err)
		}
		if err := b.Push(row); err != nil {
			t.Fatal(err)
		}
	}
	wantWeight := a.weight * 2
	wantSum0 := a.sums[0] * 2
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.weight-wantWeight) > 1e-12*wantWeight {
		t.Errorf("merged weight = %v, want %v", a.weight, wantWeight)
	}
	if math.Abs(a.sums[0]-wantSum0) > 1e-12*math.Abs(wantSum0) {
		t.Errorf("merged sums[0] = %v, want %v", a.sums[0], wantSum0)
	}
	if a.Count() != 100 {
		t.Errorf("merged Count = %d, want 100", a.Count())
	}
}

func TestStreamMinerMergeRejectsMismatches(t *testing.T) {
	a, _ := NewStreamMiner(3, 0)
	narrow, _ := NewStreamMiner(2, 0)
	if err := a.Merge(narrow); !errors.Is(err, ErrWidth) {
		t.Errorf("width mismatch: err = %v, want ErrWidth", err)
	}
	decayed, _ := NewStreamMiner(3, 0.5)
	if err := a.Merge(decayed); err == nil {
		t.Error("decay mismatch must fail")
	}
	// Failed merges must not disturb the receiver.
	if a.Count() != 0 || a.weight != 0 {
		t.Errorf("failed merge mutated receiver: count %d, weight %v", a.Count(), a.weight)
	}
}

// TestStreamMinerBatchEquivalence is the property test pinning the doc
// comment's claim: with decay 0 the stream miner's rules are equal to
// batch Mine on the same rows within 1e-12, across random shapes. The
// two paths accumulate the same sums in the same order, so in practice
// they agree bit-for-bit; 1e-12 leaves headroom for refactors that
// reorder the arithmetic.
func TestStreamMinerBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(200)
		m := 2 + rng.Intn(12)
		x := randomCorrelated(rng, n, m)
		sm, err := NewStreamMiner(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := sm.Push(x.RawRow(i)); err != nil {
				t.Fatal(err)
			}
		}
		streamed, err := sm.Rules()
		if err != nil {
			t.Fatalf("trial %d (n=%d m=%d): stream rules: %v", trial, n, m, err)
		}
		miner, _ := NewMiner()
		batch, err := miner.MineMatrix(x)
		if err != nil {
			t.Fatalf("trial %d (n=%d m=%d): batch mine: %v", trial, n, m, err)
		}
		assertRulesClose(t, streamed, batch, 1e-12)
		if t.Failed() {
			t.Fatalf("trial %d (n=%d m=%d): stream/batch divergence", trial, n, m)
		}
	}
}

// assertRulesClose compares every externally observable component of two
// rule sets within tol (relative to the larger magnitude per entry).
func assertRulesClose(t *testing.T, got, want *Rules, tol float64) {
	t.Helper()
	if got.K() != want.K() || got.M() != want.M() || got.TrainedRows() != want.TrainedRows() {
		t.Errorf("shape: got k=%d m=%d n=%d, want k=%d m=%d n=%d",
			got.K(), got.M(), got.TrainedRows(), want.K(), want.M(), want.TrainedRows())
		return
	}
	close := func(a, b float64) bool {
		return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
	}
	for j, m := range want.Means() {
		if !close(got.Means()[j], m) {
			t.Errorf("means[%d] = %v, want %v", j, got.Means()[j], m)
		}
	}
	for i, l := range want.Eigenvalues() {
		if !close(got.Eigenvalues()[i], l) {
			t.Errorf("eigenvalue[%d] = %v, want %v", i, got.Eigenvalues()[i], l)
		}
	}
	gv, wv := got.Vectors(), want.Vectors()
	if !matrix.EqualApprox(gv, wv, tol*(1+math.Abs(want.TotalVariance()))) {
		t.Error("rule vectors differ")
	}
}
