package core

import (
	"fmt"
	"sort"
)

// Scenario is a partial record for what-if analysis: the caller pins some
// attributes to hypothetical values and the rules forecast the rest
// (Sec. 3: "We expect the demand for Cheerios to double; how much milk
// should we stock up on?").
type Scenario struct {
	// Given maps attribute index to its hypothesized value.
	Given map[int]float64
}

// WhatIf forecasts the full record implied by a scenario. Attributes not
// present in Given are treated as holes and reconstructed with FillRow;
// with fewer givens than rules the under-specified case applies and only
// the strongest rules drive the forecast — pinning one attribute moves the
// prediction along RR1, which is the paper's Cheerios-doubling intuition.
func (r *Rules) WhatIf(s Scenario) ([]float64, error) {
	out, err := r.whatIf(s)
	whatIfOps.count(err)
	return out, err
}

// whatIf is the uncounted body of WhatIf, shared with Forecast so each
// public operation books exactly one rr_ops_total sample.
func (r *Rules) whatIf(s Scenario) ([]float64, error) {
	row, holes, err := r.scenarioRow(s)
	if err != nil {
		return nil, err
	}
	return r.fill(row, holes, SolvePseudoInverse)
}

// scenarioRow validates a what-if scenario and expands it into the
// (row, holes) form the fill paths consume; shared by the one-shot and
// batch engines.
func (r *Rules) scenarioRow(s Scenario) ([]float64, []int, error) {
	m := r.M()
	if len(s.Given) == 0 {
		return nil, nil, fmt.Errorf("core: what-if scenario with no given attributes: %w", ErrBadHole)
	}
	row := make([]float64, m)
	holes := make([]int, 0, m)
	for j := 0; j < m; j++ {
		v, ok := s.Given[j]
		if !ok {
			holes = append(holes, j)
			continue
		}
		row[j] = v
	}
	if len(holes) == m {
		// All given keys were out of range.
		keys := make([]int, 0, len(s.Given))
		for k := range s.Given {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		return nil, nil, fmt.Errorf("core: what-if given attributes %v out of range [0,%d): %w",
			keys, m, ErrBadHole)
	}
	for j := range s.Given {
		if j < 0 || j >= m {
			return nil, nil, fmt.Errorf("core: what-if given attribute %d out of range [0,%d): %w",
				j, m, ErrBadHole)
		}
	}
	return row, holes, nil
}

// Forecast answers the paper's forecasting question ("if a customer spends
// $1 on bread and $2.50 on ham, how much on mayonnaise?"): given the known
// attribute values, it returns the predicted value of the target attribute.
func (r *Rules) Forecast(known map[int]float64, target int) (float64, error) {
	v, err := r.forecast(known, target)
	forecastOps.count(err)
	return v, err
}

func (r *Rules) forecast(known map[int]float64, target int) (float64, error) {
	if target < 0 || target >= r.M() {
		return 0, fmt.Errorf("core: forecast target %d out of range [0,%d): %w",
			target, r.M(), ErrBadHole)
	}
	if _, ok := known[target]; ok {
		return 0, fmt.Errorf("core: forecast target %d is already given: %w", target, ErrBadHole)
	}
	full, err := r.whatIf(Scenario{Given: known})
	if err != nil {
		return 0, err
	}
	return full[target], nil
}
