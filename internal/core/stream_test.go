package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ratiorules/internal/matrix"
	"ratiorules/internal/stats"
)

func TestStreamMinerEqualsBatchWithoutDecay(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	x := randomCorrelated(rng, 250, 5)
	sm, err := NewStreamMiner(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < x.Rows(); i++ {
		if err := sm.Push(x.RawRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	streamed, err := sm.Rules()
	if err != nil {
		t.Fatal(err)
	}
	miner, _ := NewMiner()
	batch, err := miner.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.K() != batch.K() {
		t.Fatalf("K = %d, want %d", streamed.K(), batch.K())
	}
	if !matrix.EqualApproxVec(streamed.Means(), batch.Means(), 1e-9) {
		t.Error("means differ")
	}
	if !matrix.EqualApproxVec(streamed.Eigenvalues(), batch.Eigenvalues(),
		1e-6*(1+batch.Eigenvalues()[0])) {
		t.Error("eigenvalues differ")
	}
	if sm.Count() != 250 {
		t.Errorf("Count = %d, want 250", sm.Count())
	}
}

func TestStreamMinerRulesRepeatedly(t *testing.T) {
	// Rules() must be callable mid-stream without disturbing the sums.
	rng := rand.New(rand.NewSource(81))
	x := randomCorrelated(rng, 100, 4)
	sm, err := NewStreamMiner(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := sm.Push(x.RawRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	mid, err := sm.Rules()
	if err != nil {
		t.Fatal(err)
	}
	for i := 50; i < 100; i++ {
		if err := sm.Push(x.RawRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	final, err := sm.Rules()
	if err != nil {
		t.Fatal(err)
	}
	if mid.TrainedRows() != 50 || final.TrainedRows() != 100 {
		t.Errorf("TrainedRows = %d/%d, want 50/100", mid.TrainedRows(), final.TrainedRows())
	}
	// Final must equal a fresh batch mine of all 100 rows.
	miner, _ := NewMiner()
	batch, err := miner.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(final.Means(), batch.Means(), 1e-9) {
		t.Error("mid-stream Rules() disturbed the sums")
	}
}

func TestStreamMinerDecayTracksDrift(t *testing.T) {
	// First 2000 rows follow ratio y = x; the next 2000 follow y = 3x.
	// With decay, the mined ratio must track the new regime; without, it
	// lands in between.
	mkRow := func(rng *rand.Rand, slope float64) []float64 {
		v := 1 + rng.Float64()*9
		return []float64{v, slope * v}
	}
	run := func(lambda float64) float64 {
		rng := rand.New(rand.NewSource(82))
		sm, err := NewStreamMiner(2, lambda)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			if err := sm.Push(mkRow(rng, 1)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 2000; i++ {
			if err := sm.Push(mkRow(rng, 3)); err != nil {
				t.Fatal(err)
			}
		}
		rules, err := sm.Rules()
		if err != nil {
			t.Fatal(err)
		}
		rr1 := rules.Rule(0)
		return rr1[1] / rr1[0] // mined slope
	}
	decayed := run(0.01)
	flat := run(0)
	if math.Abs(decayed-3) > 0.15 {
		t.Errorf("decayed slope = %v, want ≈ 3 (tracking the new regime)", decayed)
	}
	// Without decay the axis is steered by the between-regime direction
	// (the two half-streams form separate clusters), landing well away
	// from the current regime's slope.
	if math.Abs(flat-3) < 0.5 {
		t.Errorf("undecayed slope = %v, should NOT track the new regime", flat)
	}
}

func TestStreamMinerValidation(t *testing.T) {
	if _, err := NewStreamMiner(0, 0); !errors.Is(err, ErrWidth) {
		t.Errorf("zero width: err = %v, want ErrWidth", err)
	}
	if _, err := NewStreamMiner(2, -0.1); err == nil {
		t.Error("negative decay must fail")
	}
	if _, err := NewStreamMiner(2, 1); err == nil {
		t.Error("decay = 1 must fail")
	}
	if _, err := NewStreamMiner(2, 0, WithEnergy(-1)); err == nil {
		t.Error("bad option must fail")
	}
	if _, err := NewStreamMiner(2, 0, WithAttrNames([]string{"a"})); !errors.Is(err, ErrWidth) {
		t.Errorf("attr mismatch: err = %v, want ErrWidth", err)
	}
	sm, err := NewStreamMiner(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.Push([]float64{1}); !errors.Is(err, ErrWidth) {
		t.Errorf("short row: err = %v, want ErrWidth", err)
	}
	if err := sm.Push([]float64{1, math.NaN()}); !errors.Is(err, stats.ErrBadValue) {
		t.Errorf("NaN row: err = %v, want ErrBadValue", err)
	}
	if _, err := sm.Rules(); err == nil {
		t.Error("Rules with <2 rows must fail")
	}
}

func TestMinerRejectsNaNRows(t *testing.T) {
	miner, _ := NewMiner()
	x := matrix.MustFromRows([][]float64{{1, 2}, {math.Inf(1), 4}})
	if _, err := miner.MineMatrix(x); !errors.Is(err, stats.ErrBadValue) {
		t.Errorf("err = %v, want ErrBadValue", err)
	}
}
