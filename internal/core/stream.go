package core

import (
	"context"
	"fmt"
	"math"

	"ratiorules/internal/matrix"
	"ratiorules/internal/stats"
)

// StreamMiner maintains the single-pass covariance sums incrementally so
// rules can be (re-)derived at any point of an unbounded stream — an
// extension of the paper's one-pass algorithm to continuous operation.
// Push is O(M²); Rules costs one O(M³) eigensolve on the current sums and
// can be called as often as needed.
//
// An optional exponential decay geometrically down-weights old rows so
// the rules track drifting ratios; with decay 0 (the default) the stream
// miner is exactly equivalent to batch mining of all pushed rows: the
// accumulated sums are the same quantities Mine computes in its single
// pass, so Rules agrees with Mine on the same rows to floating-point
// round-off (within 1e-12 — pinned by TestStreamMinerBatchEquivalence).
//
// StreamMiner is not safe for concurrent use; wrap it in a mutex if
// multiple goroutines push (internal/online does exactly that).
type StreamMiner struct {
	miner *Miner
	width int
	decay float64

	// Decayed sufficient statistics. With decay λ, after pushing rows
	// x₁..xₙ the weight of xᵢ is (1−λ)^(n−i):
	//   weight  = Σ wᵢ
	//   sums[j] = Σ wᵢ·xᵢⱼ
	//   cross   = Σ wᵢ·xᵢ·xᵢᵗ (upper triangle)
	weight float64
	count  int
	sums   []float64
	cross  *matrix.Dense
}

// NewStreamMiner returns a stream miner for rows of the given width,
// configured by the same options as NewMiner, with exponential decay
// lambda in [0, 1): each new row multiplies all previous weights by
// (1−lambda).
func NewStreamMiner(width int, lambda float64, opts ...Option) (*StreamMiner, error) {
	if width <= 0 {
		return nil, fmt.Errorf("core: stream miner width %d: %w", width, ErrWidth)
	}
	if lambda < 0 || lambda >= 1 {
		return nil, fmt.Errorf("core: decay %v outside [0, 1)", lambda)
	}
	m, err := NewMiner(opts...)
	if err != nil {
		return nil, err
	}
	if m.attrs != nil && len(m.attrs) != width {
		return nil, fmt.Errorf("core: %d attribute names for width %d: %w", len(m.attrs), width, ErrWidth)
	}
	return &StreamMiner{
		miner: m,
		width: width,
		decay: lambda,
		sums:  make([]float64, width),
		cross: matrix.NewDense(width, width),
	}, nil
}

// Push folds one row into the decayed sums.
func (s *StreamMiner) Push(row []float64) error {
	if len(row) != s.width {
		return fmt.Errorf("core: stream row width %d, want %d: %w", len(row), s.width, ErrWidth)
	}
	for j, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: stream row column %d has value %v: %w", j, v, stats.ErrBadValue)
		}
	}
	if s.decay > 0 {
		keep := 1 - s.decay
		s.weight *= keep
		for j := range s.sums {
			s.sums[j] *= keep
		}
		for j := 0; j < s.width; j++ {
			r := s.cross.RawRow(j)
			for l := j; l < s.width; l++ {
				r[l] *= keep
			}
		}
	}
	s.weight++
	s.count++
	for j, v := range row {
		s.sums[j] += v
		if v == 0 {
			continue
		}
		r := s.cross.RawRow(j)
		for l := j; l < s.width; l++ {
			r[l] += v * row[l]
		}
	}
	return nil
}

// Count reports how many rows have been pushed (undecayed).
func (s *StreamMiner) Count() int { return s.count }

// Width reports the row width M the miner accumulates.
func (s *StreamMiner) Width() int { return s.width }

// Decay reports the exponential decay lambda the miner was built with.
func (s *StreamMiner) Decay() float64 { return s.decay }

// Merge folds another accumulator's decayed sums into s, enabling
// sharded parallel ingest: split a stream across shards, Push into each
// concurrently, then Merge the shards into one. Both miners must have
// the same width and decay (ErrWidth / an error otherwise); other is
// left untouched. With decay 0 the merged miner is exactly equivalent
// to a single miner that saw every row of both shards, in any order.
// With decay > 0 each shard's rows keep the weights their own shard
// assigned them, so Merge sums two independently decayed histories —
// the right semantics for shards fed round-robin at similar rates.
func (s *StreamMiner) Merge(other *StreamMiner) error {
	if other.width != s.width {
		return fmt.Errorf("core: merging %d-wide stream into %d-wide: %w",
			other.width, s.width, ErrWidth)
	}
	if other.decay != s.decay {
		return fmt.Errorf("core: merging stream with decay %v into decay %v", other.decay, s.decay)
	}
	s.weight += other.weight
	s.count += other.count
	for j, v := range other.sums {
		s.sums[j] += v
	}
	for j := 0; j < s.width; j++ {
		dst, src := s.cross.RawRow(j), other.cross.RawRow(j)
		for l := j; l < s.width; l++ {
			dst[l] += src[l]
		}
	}
	return nil
}

// Rules derives the Ratio Rules from the current (decayed) sums. At least
// two rows must have been pushed.
func (s *StreamMiner) Rules() (*Rules, error) {
	if s.count < 2 {
		return nil, fmt.Errorf("core: stream mining needs at least 2 rows, got %d", s.count)
	}
	means := make([]float64, s.width)
	for j, v := range s.sums {
		means[j] = v / s.weight
	}
	scatter := matrix.NewDense(s.width, s.width)
	for j := 0; j < s.width; j++ {
		for l := j; l < s.width; l++ {
			v := s.cross.At(j, l) - s.weight*means[j]*means[l]
			scatter.Set(j, l, v)
			scatter.Set(l, j, v)
		}
	}
	return s.miner.rulesFromScatter(context.Background(), scatter, means, s.count)
}
