package core

import (
	"context"
	"fmt"
	"math"

	"ratiorules/internal/matrix"
	"ratiorules/internal/stats"
)

// StreamMiner maintains the single-pass covariance sums incrementally so
// rules can be (re-)derived at any point of an unbounded stream — an
// extension of the paper's one-pass algorithm to continuous operation.
// Push is O(M²); Rules costs one O(M³) eigensolve on the current sums and
// can be called as often as needed.
//
// An optional exponential decay geometrically down-weights old rows so
// the rules track drifting ratios; with decay 0 (the default) the stream
// miner is exactly equivalent to batch mining of all pushed rows.
//
// StreamMiner is not safe for concurrent use; wrap it in a mutex if
// multiple goroutines push.
type StreamMiner struct {
	miner *Miner
	width int
	decay float64

	// Decayed sufficient statistics. With decay λ, after pushing rows
	// x₁..xₙ the weight of xᵢ is (1−λ)^(n−i):
	//   weight  = Σ wᵢ
	//   sums[j] = Σ wᵢ·xᵢⱼ
	//   cross   = Σ wᵢ·xᵢ·xᵢᵗ (upper triangle)
	weight float64
	count  int
	sums   []float64
	cross  *matrix.Dense
}

// NewStreamMiner returns a stream miner for rows of the given width,
// configured by the same options as NewMiner, with exponential decay
// lambda in [0, 1): each new row multiplies all previous weights by
// (1−lambda).
func NewStreamMiner(width int, lambda float64, opts ...Option) (*StreamMiner, error) {
	if width <= 0 {
		return nil, fmt.Errorf("core: stream miner width %d: %w", width, ErrWidth)
	}
	if lambda < 0 || lambda >= 1 {
		return nil, fmt.Errorf("core: decay %v outside [0, 1)", lambda)
	}
	m, err := NewMiner(opts...)
	if err != nil {
		return nil, err
	}
	if m.attrs != nil && len(m.attrs) != width {
		return nil, fmt.Errorf("core: %d attribute names for width %d: %w", len(m.attrs), width, ErrWidth)
	}
	return &StreamMiner{
		miner: m,
		width: width,
		decay: lambda,
		sums:  make([]float64, width),
		cross: matrix.NewDense(width, width),
	}, nil
}

// Push folds one row into the decayed sums.
func (s *StreamMiner) Push(row []float64) error {
	if len(row) != s.width {
		return fmt.Errorf("core: stream row width %d, want %d: %w", len(row), s.width, ErrWidth)
	}
	for j, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: stream row column %d has value %v: %w", j, v, stats.ErrBadValue)
		}
	}
	if s.decay > 0 {
		keep := 1 - s.decay
		s.weight *= keep
		for j := range s.sums {
			s.sums[j] *= keep
		}
		for j := 0; j < s.width; j++ {
			r := s.cross.RawRow(j)
			for l := j; l < s.width; l++ {
				r[l] *= keep
			}
		}
	}
	s.weight++
	s.count++
	for j, v := range row {
		s.sums[j] += v
		if v == 0 {
			continue
		}
		r := s.cross.RawRow(j)
		for l := j; l < s.width; l++ {
			r[l] += v * row[l]
		}
	}
	return nil
}

// Count reports how many rows have been pushed (undecayed).
func (s *StreamMiner) Count() int { return s.count }

// Rules derives the Ratio Rules from the current (decayed) sums. At least
// two rows must have been pushed.
func (s *StreamMiner) Rules() (*Rules, error) {
	if s.count < 2 {
		return nil, fmt.Errorf("core: stream mining needs at least 2 rows, got %d", s.count)
	}
	means := make([]float64, s.width)
	for j, v := range s.sums {
		means[j] = v / s.weight
	}
	scatter := matrix.NewDense(s.width, s.width)
	for j := 0; j < s.width; j++ {
		for l := j; l < s.width; l++ {
			v := s.cross.At(j, l) - s.weight*means[j]*means[l]
			scatter.Set(j, l, v)
			scatter.Set(l, j, v)
		}
	}
	return s.miner.rulesFromScatter(context.Background(), scatter, means, s.count)
}
