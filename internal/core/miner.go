package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"

	"ratiorules/internal/eigen"
	"ratiorules/internal/matrix"
	"ratiorules/internal/obs"
	"ratiorules/internal/obs/trace"
	"ratiorules/internal/stats"
)

// DefaultEnergy is the paper's Eq. 1 cutoff: retain eigenvectors until
// their eigenvalues cover 85% of the total variance (Jolliffe's textbook
// heuristic).
const DefaultEnergy = 0.85

// RowSource yields the rows of a data matrix one at a time, enabling the
// single-pass mining algorithm to stream datasets far larger than memory.
// Next returns io.EOF after the last row; the returned slice may be reused
// by the source between calls.
type RowSource interface {
	// Width reports the number of attributes M in every row.
	Width() int
	// Next returns the next row or io.EOF when exhausted.
	Next() ([]float64, error)
}

// matrixSource adapts an in-memory matrix to RowSource.
type matrixSource struct {
	m *matrix.Dense
	i int
}

// NewMatrixSource returns a RowSource that iterates the rows of m.
func NewMatrixSource(m *matrix.Dense) RowSource { return &matrixSource{m: m} }

func (s *matrixSource) Width() int { return s.m.Cols() }

func (s *matrixSource) Next() ([]float64, error) {
	if s.i >= s.m.Rows() {
		return nil, io.EOF
	}
	row := s.m.RawRow(s.i)
	s.i++
	return row, nil
}

// Miner configures Ratio Rules mining. The zero value is not usable;
// construct with NewMiner and functional options.
type Miner struct {
	energy    float64 // Eq. 1 threshold in (0, 1]
	fixedK    int     // if > 0, retain exactly this many rules
	maxK      int     // if > 0, cap k after the energy cutoff
	subspace  bool    // extract only the needed leading pairs
	attrs     []string
	eigSolver func(*matrix.Dense) (*eigen.System, error)
	// topK extracts leading pairs when subspace mode is on.
	topK func(*matrix.Dense, int) (*eigen.System, error)
}

// Option customizes a Miner.
type Option func(*Miner) error

// WithEnergy sets the Eq. 1 variance-coverage threshold (default 0.85).
func WithEnergy(fraction float64) Option {
	return func(m *Miner) error {
		if fraction <= 0 || fraction > 1 {
			return fmt.Errorf("core: energy threshold %v outside (0, 1]", fraction)
		}
		m.energy = fraction
		return nil
	}
}

// WithFixedK retains exactly k rules, bypassing the energy cutoff.
// k = 0 is allowed and yields the col-avgs estimator (the paper notes
// col-avgs "is identical to the proposed method with k = 0").
func WithFixedK(k int) Option {
	return func(m *Miner) error {
		if k < 0 {
			return fmt.Errorf("core: fixed k %d is negative", k)
		}
		m.fixedK = k
		m.maxK = 0
		return nil
	}
}

// WithMaxK caps the number of rules retained after the energy cutoff.
func WithMaxK(k int) Option {
	return func(m *Miner) error {
		if k < 1 {
			return fmt.Errorf("core: max k %d must be at least 1", k)
		}
		m.maxK = k
		return nil
	}
}

// WithAttrNames attaches attribute names to the mined rules.
func WithAttrNames(names []string) Option {
	return func(m *Miner) error {
		m.attrs = append([]string(nil), names...)
		return nil
	}
}

// WithJacobiSolver switches the eigensolver to cyclic Jacobi (ablation and
// cross-checking; SymEig is the default).
func WithJacobiSolver() Option {
	return func(m *Miner) error {
		m.eigSolver = eigen.Jacobi
		return nil
	}
}

// WithSubspaceSolver extracts only the leading eigenpairs by block power
// iteration instead of the full O(M³) solve — the strategy the paper's
// footnote 1 recommends when M is large. It requires a bound on the number
// of rules: combine with WithFixedK or WithMaxK. The Eq. 1 energy cutoff
// still applies, using the scatter matrix's trace as the total variance.
func WithSubspaceSolver() Option {
	return func(m *Miner) error {
		m.subspace = true
		m.topK = eigen.TopK
		return nil
	}
}

// WithLanczosSolver extracts the leading eigenpairs with the Lanczos
// method (full reorthogonalization) — the algorithm family the paper's
// footnote 1 cites, and the fastest option when k ≪ M. It requires a
// bound on the number of rules: combine with WithFixedK or WithMaxK.
func WithLanczosSolver() Option {
	return func(m *Miner) error {
		m.subspace = true
		m.topK = eigen.Lanczos
		return nil
	}
}

// NewMiner returns a Miner with the paper's defaults (85% energy cutoff,
// tred2/tql2 eigensolver).
func NewMiner(opts ...Option) (*Miner, error) {
	m := &Miner{energy: DefaultEnergy, fixedK: -1, eigSolver: eigen.SymEig}
	for _, o := range opts {
		if err := o(m); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Mine streams the rows of src once, accumulating column averages and the
// covariance matrix exactly as the paper's Fig. 2(a), then solves the
// eigensystem (Fig. 2(b)) and retains rules per the configured cutoff.
func (m *Miner) Mine(src RowSource) (*Rules, error) {
	return m.MineContext(context.Background(), src)
}

// MineContext is Mine with trace spans over the Fig. 2 phases —
// "mine.scan", "mine.covariance" and "mine.eigensolve" — parented to
// the span carried by ctx (no-ops without one). The phases also feed
// the rr_miner_phase_seconds histograms as before; spans add the
// per-run view.
func (m *Miner) MineContext(ctx context.Context, src RowSource) (*Rules, error) {
	width := src.Width()
	if width <= 0 {
		return nil, fmt.Errorf("core: source width %d: %w", width, ErrWidth)
	}
	if m.attrs != nil && len(m.attrs) != width {
		return nil, fmt.Errorf("core: %d attribute names for width %d: %w", len(m.attrs), width, ErrWidth)
	}
	acc := stats.NewCovAccumulator(width)
	scanTimer := obs.NewTimer(scanPhase)
	_, scanSpan := trace.Start(ctx, "mine.scan")
	for {
		row, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			scanSpan.End()
			recordMine(0, width, 0, err)
			return nil, fmt.Errorf("core: reading training rows: %w", err)
		}
		if err := acc.Push(row); err != nil {
			scanSpan.End()
			recordMine(0, width, 0, err)
			return nil, fmt.Errorf("core: accumulating row %d: %w", acc.Count(), err)
		}
	}
	scanSpan.SetAttr("rows", acc.Count())
	scanSpan.End()
	scanElapsed := scanTimer.ObserveDuration()
	if acc.Count() < 2 {
		err := fmt.Errorf("core: mining needs at least 2 rows, got %d", acc.Count())
		recordMine(0, width, 0, err)
		return nil, err
	}
	covTimer := obs.NewTimer(covariancePhase)
	_, covSpan := trace.Start(ctx, "mine.covariance")
	scatter, err := acc.Scatter()
	if err != nil {
		covSpan.End()
		recordMine(0, width, 0, err)
		return nil, fmt.Errorf("core: building covariance: %w", err)
	}
	means, err := acc.Means()
	covSpan.End()
	covTimer.ObserveDuration()
	if err != nil {
		recordMine(0, width, 0, err)
		return nil, fmt.Errorf("core: computing column averages: %w", err)
	}
	rules, err := m.rulesFromScatter(ctx, scatter, means, acc.Count())
	recordMine(acc.Count(), width, scanElapsed, err)
	return rules, err
}

// MineMatrix is a convenience wrapper for in-memory matrices.
func (m *Miner) MineMatrix(x *matrix.Dense) (*Rules, error) {
	return m.Mine(NewMatrixSource(x))
}

// MineMatrixContext is MineContext for in-memory matrices.
func (m *Miner) MineMatrixContext(ctx context.Context, x *matrix.Dense) (*Rules, error) {
	return m.MineContext(ctx, NewMatrixSource(x))
}

// rulesFromScatter solves the eigensystem of the scatter matrix and applies
// the retention cutoff.
func (m *Miner) rulesFromScatter(ctx context.Context, scatter *matrix.Dense, means []float64, n int) (*Rules, error) {
	var (
		sys   *eigen.System
		total float64
		err   error
	)
	eigTimer := obs.NewTimer(eigensolvePhase)
	_, eigSpan := trace.Start(ctx, "mine.eigensolve")
	if m.subspace {
		sys, total, err = m.leadingPairs(scatter)
	} else {
		sys, err = m.eigSolver(scatter)
		if err == nil {
			// Clamp round-off negatives: a scatter matrix is PSD.
			for i, l := range sys.Values {
				if l < 0 {
					sys.Values[i] = 0
				}
				total += sys.Values[i]
			}
		}
	}
	eigSpan.End()
	eigTimer.ObserveDuration()
	if err != nil {
		return nil, fmt.Errorf("core: eigensystem of %d×%d covariance: %w",
			scatter.Rows(), scatter.Cols(), err)
	}
	k := m.chooseK(sys.Values, total)
	minerRulesRetained.Set(float64(k))
	cols := make([]int, k)
	for i := range cols {
		cols[i] = i
	}
	// Per-attribute residual variance: training variance minus the part
	// captured by the retained rules. This prices the uncertainty of a
	// reconstructed cell (see Rules.ResidualStd / FillRecordWithBands).
	dim, _ := scatter.Dims()
	residStd := make([]float64, dim)
	denom := float64(n - 1)
	for j := 0; j < dim; j++ {
		captured := 0.0
		for i := 0; i < k; i++ {
			v := sys.Vectors.At(j, i)
			captured += sys.Values[i] * v * v
		}
		if resid := scatter.At(j, j) - captured; resid > 0 && denom > 0 {
			residStd[j] = math.Sqrt(resid / denom)
		}
	}
	return &Rules{
		attrs:         m.attrs,
		means:         means,
		v:             sys.Vectors.SelectCols(cols),
		eigenvalues:   append([]float64(nil), sys.Values[:k]...),
		totalVariance: total,
		trainedRows:   n,
		residStd:      residStd,
	}, nil
}

// leadingPairs extracts just the eigenpairs the cutoff can possibly
// retain, via subspace iteration, with the trace supplying the total
// variance for Eq. 1.
func (m *Miner) leadingPairs(scatter *matrix.Dense) (*eigen.System, float64, error) {
	dim, _ := scatter.Dims()
	var total float64
	for i := 0; i < dim; i++ {
		if v := scatter.At(i, i); v > 0 {
			total += v
		}
	}
	if m.fixedK == 0 {
		// col-avgs degenerate case: no pairs needed.
		return &eigen.System{Vectors: matrix.NewDense(dim, 0)}, total, nil
	}
	bound := m.fixedK
	if bound < 0 {
		bound = m.maxK
	}
	if bound <= 0 {
		return nil, 0, fmt.Errorf("core: subspace solver needs WithFixedK or WithMaxK")
	}
	if bound > dim {
		bound = dim
	}
	sys, err := m.topK(scatter, bound)
	if err != nil {
		return nil, 0, err
	}
	for i, l := range sys.Values {
		if l < 0 {
			sys.Values[i] = 0
		}
	}
	return sys, total, nil
}

// chooseK implements Eq. 1: the smallest k whose eigenvalues cover the
// energy threshold, clamped by fixedK/maxK when configured.
func (m *Miner) chooseK(values []float64, total float64) int {
	if m.fixedK >= 0 {
		if m.fixedK > len(values) {
			return len(values)
		}
		return m.fixedK
	}
	if total <= 0 {
		return 0
	}
	var sum float64
	k := len(values)
	for i, l := range values {
		sum += l
		if sum/total >= m.energy {
			k = i + 1
			break
		}
	}
	if m.maxK > 0 && k > m.maxK {
		k = m.maxK
	}
	return k
}
