package core

import (
	"context"
	"errors"
	"fmt"
	"io"

	"ratiorules/internal/stats"
)

// WeightedRow is a data row with an integer multiplicity, the natural
// shape of a sales table that stores identical baskets with a count.
type WeightedRow struct {
	Row    []float64
	Weight int
}

// WeightedRowSource streams weighted rows for single-pass mining of
// count-compressed tables. NextWeighted returns io.EOF when exhausted; the
// returned row slice may be reused between calls.
type WeightedRowSource interface {
	Width() int
	NextWeighted() (WeightedRow, error)
}

// MineWeighted mines rules from count-compressed rows: each row enters the
// covariance sums with its multiplicity, so the result is identical to
// mining the expanded table at a fraction of the cost.
func (m *Miner) MineWeighted(src WeightedRowSource) (*Rules, error) {
	width := src.Width()
	if width <= 0 {
		return nil, fmt.Errorf("core: weighted source width %d: %w", width, ErrWidth)
	}
	if m.attrs != nil && len(m.attrs) != width {
		return nil, fmt.Errorf("core: %d attribute names for width %d: %w", len(m.attrs), width, ErrWidth)
	}
	acc := stats.NewCovAccumulator(width)
	for {
		wr, err := src.NextWeighted()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("core: reading weighted rows: %w", err)
		}
		if err := acc.PushWeighted(wr.Row, wr.Weight); err != nil {
			return nil, fmt.Errorf("core: accumulating weighted row %d: %w", acc.Count(), err)
		}
	}
	if acc.Count() < 2 {
		return nil, fmt.Errorf("core: mining needs at least 2 rows (weighted), got %d", acc.Count())
	}
	scatter, err := acc.Scatter()
	if err != nil {
		return nil, fmt.Errorf("core: building covariance: %w", err)
	}
	means, err := acc.Means()
	if err != nil {
		return nil, fmt.Errorf("core: computing column averages: %w", err)
	}
	return m.rulesFromScatter(context.Background(), scatter, means, acc.Count())
}

// WeightedSliceSource adapts an in-memory weighted table to
// WeightedRowSource.
type WeightedSliceSource struct {
	Rows []WeightedRow
	i    int
}

// Width implements WeightedRowSource; it reports the first row's width
// (0 for an empty source).
func (s *WeightedSliceSource) Width() int {
	if len(s.Rows) == 0 {
		return 0
	}
	return len(s.Rows[0].Row)
}

// NextWeighted implements WeightedRowSource.
func (s *WeightedSliceSource) NextWeighted() (WeightedRow, error) {
	if s.i >= len(s.Rows) {
		return WeightedRow{}, io.EOF
	}
	r := s.Rows[s.i]
	s.i++
	return r, nil
}
