package core

import (
	"errors"
	"io"
	"math/rand"
	"testing"

	"ratiorules/internal/matrix"
	"ratiorules/internal/quest"
	"ratiorules/internal/stats"
)

// sliceSparseSource adapts a dense matrix to the sparse source contract.
type sliceSparseSource struct {
	m *matrix.Dense
	i int
}

func (s *sliceSparseSource) Width() int { return s.m.Cols() }
func (s *sliceSparseSource) NextSparse() (matrix.SparseVec, error) {
	if s.i >= s.m.Rows() {
		return matrix.SparseVec{}, io.EOF
	}
	row := s.m.RawRow(s.i)
	s.i++
	return matrix.SparsifyRow(row, 0), nil
}

func TestMineSparseEqualsDense(t *testing.T) {
	// Sparse basket-like data: mostly zero with correlated nonzeros.
	rng := rand.New(rand.NewSource(101))
	x := matrix.NewDense(300, 12)
	for i := 0; i < 300; i++ {
		row := x.RawRow(i)
		if rng.Float64() < 0.5 { // bundle A: products 0, 3, 7
			v := 1 + rng.Float64()*5
			row[0], row[3], row[7] = v, 2*v, 0.5*v
		}
		if rng.Float64() < 0.3 { // bundle B: products 2, 9
			v := 1 + rng.Float64()*3
			row[2], row[9] = v, 1.5*v
		}
	}
	miner, err := NewMiner()
	if err != nil {
		t.Fatal(err)
	}
	dense, err := miner.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := miner.MineSparse(&sliceSparseSource{m: x})
	if err != nil {
		t.Fatal(err)
	}
	if sparse.K() != dense.K() || sparse.TrainedRows() != dense.TrainedRows() {
		t.Fatalf("K/rows = %d/%d, want %d/%d",
			sparse.K(), sparse.TrainedRows(), dense.K(), dense.TrainedRows())
	}
	if !matrix.EqualApproxVec(sparse.Means(), dense.Means(), 1e-12) {
		t.Error("means differ")
	}
	if !matrix.EqualApproxVec(sparse.Eigenvalues(), dense.Eigenvalues(),
		1e-8*(1+dense.Eigenvalues()[0])) {
		t.Errorf("eigenvalues differ:\ndense %v\nsparse %v", dense.Eigenvalues(), sparse.Eigenvalues())
	}
	for i := 0; i < dense.K(); i++ {
		if !matrix.EqualApproxVec(sparse.Rule(i), dense.Rule(i), 1e-8) {
			t.Errorf("rule %d differs", i)
		}
	}
}

func TestMineSparseQuestAgreesWithDense(t *testing.T) {
	cfg := quest.DefaultConfig(500)
	denseSrc, err := quest.NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sparseSrc, err := quest.NewSparseSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	miner, err := NewMiner(WithMaxK(5))
	if err != nil {
		t.Fatal(err)
	}
	dense, err := miner.Mine(denseSrc)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := miner.MineSparse(sparseSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(sparse.Means(), dense.Means(), 1e-9) {
		t.Error("quest means differ between dense and sparse paths")
	}
	if !matrix.EqualApproxVec(sparse.Eigenvalues(), dense.Eigenvalues(),
		1e-7*(1+dense.Eigenvalues()[0])) {
		t.Error("quest eigenvalues differ between dense and sparse paths")
	}
}

func TestMineSparseValidation(t *testing.T) {
	miner, _ := NewMiner()
	if _, err := miner.MineSparse(&sliceSparseSource{m: matrix.NewDense(0, 0)}); !errors.Is(err, ErrWidth) {
		t.Errorf("zero width: err = %v, want ErrWidth", err)
	}
	if _, err := miner.MineSparse(&sliceSparseSource{m: matrix.NewDense(1, 3)}); err == nil {
		t.Error("single row must fail")
	}
	named, _ := NewMiner(WithAttrNames([]string{"a"}))
	if _, err := named.MineSparse(&sliceSparseSource{m: matrix.NewDense(5, 3)}); !errors.Is(err, ErrWidth) {
		t.Errorf("attr mismatch: err = %v, want ErrWidth", err)
	}
}

func TestPushSparseValidation(t *testing.T) {
	acc := stats.NewCovAccumulator(3)
	if err := acc.PushSparse(matrix.SparseVec{Len: 2}); !errors.Is(err, stats.ErrWidth) {
		t.Errorf("width: err = %v, want ErrWidth", err)
	}
	bad := matrix.SparseVec{Len: 3, Idx: []int{1}, Val: []float64{nan()}}
	if err := acc.PushSparse(bad); !errors.Is(err, stats.ErrBadValue) {
		t.Errorf("NaN: err = %v, want ErrBadValue", err)
	}
}

func nan() float64 { return Hole }
