package core

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"ratiorules/internal/stats"
)

// PushBatch must be indistinguishable from Pushing each row in order —
// the cluster's worker fold is only exact if this holds.
func TestPushBatchEqualsSequentialPush(t *testing.T) {
	for _, width := range []int{1, 2, 3, 5, 7, 32} {
		for _, decay := range []float64{0, 0.3} {
			rng := rand.New(rand.NewSource(int64(width)*100 + int64(decay*10)))
			const rows = 257 // not a multiple of any kernel block size
			flat := make([]float64, rows*width)
			for i := range flat {
				flat[i] = rng.NormFloat64()
				if rng.Intn(9) == 0 {
					flat[i] = 0 // exercise the v==0 skip in the scalar oracle
				}
			}

			batched, err := NewStreamMiner(width, decay)
			if err != nil {
				t.Fatal(err)
			}
			if err := batched.PushBatch(flat); err != nil {
				t.Fatalf("width=%d decay=%g: PushBatch: %v", width, decay, err)
			}
			serial, err := NewStreamMiner(width, decay)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < rows; r++ {
				if err := serial.Push(flat[r*width : (r+1)*width]); err != nil {
					t.Fatalf("width=%d decay=%g: Push row %d: %v", width, decay, r, err)
				}
			}

			if batched.Count() != serial.Count() {
				t.Fatalf("width=%d decay=%g: count %d != %d", width, decay, batched.Count(), serial.Count())
			}
			if math.Abs(batched.weight-serial.weight) > 1e-9 {
				t.Fatalf("width=%d decay=%g: weight %v != %v", width, decay, batched.weight, serial.weight)
			}
			for j := 0; j < width; j++ {
				if d := relDiff(batched.sums[j], serial.sums[j]); d > 1e-12 {
					t.Fatalf("width=%d decay=%g: sums[%d] %v vs %v (rel %g)",
						width, decay, j, batched.sums[j], serial.sums[j], d)
				}
				for l := j; l < width; l++ {
					b, s := batched.cross.At(j, l), serial.cross.At(j, l)
					if d := relDiff(b, s); d > 1e-12 {
						t.Fatalf("width=%d decay=%g: cross[%d][%d] %v vs %v (rel %g)",
							width, decay, j, l, b, s, d)
					}
				}
			}
		}
	}
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if scale := math.Max(math.Abs(a), math.Abs(b)); scale > 1 {
		return d / scale
	}
	return d
}

// Differential test pinning the assembly kernel to the portable oracle
// across awkward widths and row counts (covers every tail path).
func TestCrossAccumMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range []int{1, 2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 31, 32, 33} {
		for _, n := range []int{1, 2, 3, 17} {
			flat := make([]float64, n*m)
			for i := range flat {
				flat[i] = rng.NormFloat64()
			}
			got := make([]float64, m*m)
			want := make([]float64, m*m)
			crossAccum(got, flat, n, m)
			crossAccumGo(want, flat, n, m)
			for i := range got {
				if d := relDiff(got[i], want[i]); d > 1e-12 {
					t.Fatalf("m=%d n=%d: cell %d: %v vs %v (rel %g)", m, n, i, got[i], want[i], d)
				}
			}
		}
	}
}

// The vectorized finite scan must agree with the portable one on every
// position and length, for each kind of bad value.
func TestAllFiniteMatchesOracle(t *testing.T) {
	bads := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 12, 16, 17, 33} {
		flat := make([]float64, n)
		for i := range flat {
			flat[i] = float64(i) - 1.5
		}
		if !allFinite(flat) || !allFiniteGo(flat) {
			t.Fatalf("n=%d: clean slice reported non-finite", n)
		}
		for pos := 0; pos < n; pos++ {
			for _, bad := range bads {
				saved := flat[pos]
				flat[pos] = bad
				if allFinite(flat) {
					t.Fatalf("n=%d pos=%d bad=%v: asm scan missed it", n, pos, bad)
				}
				if allFiniteGo(flat) {
					t.Fatalf("n=%d pos=%d bad=%v: Go scan missed it", n, pos, bad)
				}
				flat[pos] = saved
			}
		}
	}
	if !allFinite(nil) {
		t.Fatal("empty slice must be all-finite")
	}
}

// A bad value anywhere in the batch rejects the whole batch with the
// offending row/column named, and folds nothing.
func TestPushBatchAllOrNothing(t *testing.T) {
	sm, err := NewStreamMiner(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = sm.PushBatch([]float64{1, 2, 3, 4, math.Inf(-1), 6})
	if !errors.Is(err, stats.ErrBadValue) {
		t.Fatalf("want ErrBadValue, got %v", err)
	}
	if !strings.Contains(err.Error(), "row 1 column 1") {
		t.Fatalf("error should name row 1 column 1: %v", err)
	}
	if sm.Count() != 0 {
		t.Fatalf("nothing should be folded after a rejected batch, count=%d", sm.Count())
	}

	if err := sm.PushBatch([]float64{1, 2, 3, 4}); !errors.Is(err, ErrWidth) {
		t.Fatalf("ragged batch: want ErrWidth, got %v", err)
	}
	if err := sm.PushBatch(nil); err != nil {
		t.Fatalf("empty batch must be a no-op, got %v", err)
	}
}

// RowAllFinite is the coordinator's pre-validation entry point.
func TestRowAllFinite(t *testing.T) {
	if !RowAllFinite([]float64{1, -2, 0, 3.5}) {
		t.Fatal("finite row rejected")
	}
	if RowAllFinite([]float64{1, math.NaN()}) {
		t.Fatal("NaN row accepted")
	}
	if RowAllFinite([]float64{math.Inf(1)}) {
		t.Fatal("Inf row accepted")
	}
}
