package core

import (
	"testing"

	"ratiorules/internal/matrix"
	"ratiorules/internal/obs"
)

// snapshotDelta runs f and returns how much each obs.Default() sample
// moved.
func snapshotDelta(t *testing.T, f func()) map[string]float64 {
	t.Helper()
	before := obs.Default().Snapshot()
	f()
	after := obs.Default().Snapshot()
	delta := make(map[string]float64, len(after))
	for k, v := range after {
		delta[k] = v - before[k]
	}
	return delta
}

func testMatrix(t *testing.T) *matrix.Dense {
	t.Helper()
	x, err := matrix.FromRows([][]float64{
		{1, 2, 3}, {2, 4.1, 6.2}, {3, 5.9, 8.9}, {4, 8.2, 12.1}, {5, 9.8, 15.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestMineRecordsPhasesAndThroughput(t *testing.T) {
	x := testMatrix(t)
	miner, err := NewMiner()
	if err != nil {
		t.Fatal(err)
	}
	delta := snapshotDelta(t, func() {
		if _, err := miner.MineMatrix(x); err != nil {
			t.Fatal(err)
		}
	})
	for _, key := range []string{
		`rr_miner_phase_seconds_count{phase="scan"}`,
		`rr_miner_phase_seconds_count{phase="covariance"}`,
		`rr_miner_phase_seconds_count{phase="eigensolve"}`,
		`rr_miner_mines_total{result="ok"}`,
	} {
		if delta[key] != 1 {
			t.Errorf("%s moved by %v, want 1", key, delta[key])
		}
	}
	if delta["rr_miner_rows_total"] != 5 || delta["rr_miner_cells_total"] != 15 {
		t.Errorf("rows/cells delta = %v / %v, want 5 / 15",
			delta["rr_miner_rows_total"], delta["rr_miner_cells_total"])
	}
	// Throughput gauges are set, not added; read them directly.
	snap := obs.Default().Snapshot()
	if snap["rr_miner_rows_per_second"] <= 0 || snap["rr_miner_cells_per_second"] <= 0 {
		t.Errorf("throughput gauges not set: rows/s=%v cells/s=%v",
			snap["rr_miner_rows_per_second"], snap["rr_miner_cells_per_second"])
	}
}

func TestMineShardedRecordsShardAndMergeTimings(t *testing.T) {
	x := testMatrix(t)
	miner, err := NewMiner()
	if err != nil {
		t.Fatal(err)
	}
	delta := snapshotDelta(t, func() {
		shards := []RowSource{NewMatrixSource(x), NewMatrixSource(x), NewMatrixSource(x)}
		if _, err := miner.MineSharded(shards); err != nil {
			t.Fatal(err)
		}
	})
	if got := delta["rr_miner_shard_seconds_count"]; got != 3 {
		t.Errorf("shard timings = %v, want 3", got)
	}
	if got := delta[`rr_miner_phase_seconds_count{phase="merge"}`]; got != 1 {
		t.Errorf("merge phase count = %v, want 1", got)
	}
	if got := delta["rr_miner_rows_total"]; got != 15 {
		t.Errorf("rows delta = %v, want 15", got)
	}
}

func TestMineErrorCountsAsFailure(t *testing.T) {
	miner, err := NewMiner()
	if err != nil {
		t.Fatal(err)
	}
	one, err := matrix.FromRows([][]float64{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	delta := snapshotDelta(t, func() {
		if _, err := miner.MineMatrix(one); err == nil {
			t.Fatal("mining one row succeeded")
		}
	})
	if got := delta[`rr_miner_mines_total{result="error"}`]; got != 1 {
		t.Errorf("error mines delta = %v, want 1", got)
	}
	if got := delta[`rr_miner_mines_total{result="ok"}`]; got != 0 {
		t.Errorf("ok mines delta = %v, want 0", got)
	}
}

func TestOpCountersAndGEGauge(t *testing.T) {
	x := testMatrix(t)
	miner, err := NewMiner()
	if err != nil {
		t.Fatal(err)
	}
	rules, err := miner.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	delta := snapshotDelta(t, func() {
		if _, err := rules.FillRow([]float64{2.5, 0, 0}, []int{1, 2}); err != nil {
			t.Fatal(err)
		}
		if _, err := rules.Forecast(map[int]float64{0: 2.5}, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := rules.WhatIf(Scenario{Given: map[int]float64{0: 2.5}}); err != nil {
			t.Fatal(err)
		}
		if _, err := rules.CellOutliers(x, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := rules.FillRow([]float64{1}, []int{0}); err == nil { // wrong width
			t.Fatal("bad fill succeeded")
		}
	})
	for key, want := range map[string]float64{
		`rr_ops_total{op="fill",result="ok"}`:        1,
		`rr_ops_total{op="fill",result="error"}`:     1,
		`rr_ops_total{op="forecast",result="ok"}`:    1,
		`rr_ops_total{op="whatif",result="ok"}`:      1,
		`rr_ops_total{op="outliers",result="ok"}`:    1,
		`rr_ops_total{op="forecast",result="error"}`: 0,
	} {
		if delta[key] != want {
			t.Errorf("%s moved by %v, want %v", key, delta[key], want)
		}
	}

	if _, err := GE1(rules, x); err != nil {
		t.Fatal(err)
	}
	snap := obs.Default().Snapshot()
	if _, ok := snap[`rr_guessing_error{def="ge1",holes="1"}`]; !ok {
		t.Errorf("GE1 gauge missing from snapshot")
	}
	if _, err := GEh(rules, x, GEhConfig{Holes: 2}); err != nil {
		t.Fatal(err)
	}
	snap = obs.Default().Snapshot()
	if _, ok := snap[`rr_guessing_error{def="geh",holes="2"}`]; !ok {
		t.Errorf("GEh gauge missing from snapshot")
	}
}
