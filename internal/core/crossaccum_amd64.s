//go:build amd64

#include "textflag.h"

// AVX2/FMA kernels behind the batched covariance fold (stream_batch.go).
// Only reached when crossaccum_amd64.go's CPUID probe confirms AVX2+FMA
// and OS YMM state saving; everything else goes through the portable Go
// loops.

// func crossAccumAVX(cross *float64, flat *float64, n, m int)
//
// For each of the n rows (flat, row-major, width m), rank-1 update the
// upper triangle of the m×m cross matrix: cross[j][l] += row[j]*row[l]
// for l >= j. Inner l-loop runs 8 doubles per iteration (two fused
// multiply-adds), then 4, then scalar tail.
TEXT ·crossAccumAVX(SB), NOSPLIT, $0-32
	MOVQ cross+0(FP), DI
	MOVQ flat+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ m+24(FP), DX
	TESTQ CX, CX
	JLE   done
rowloop:
	XORQ R8, R8            // j
jloop:
	CMPQ R8, DX
	JGE  jdone
	VBROADCASTSD (SI)(R8*8), Y0   // row[j] in all lanes
	MOVQ R8, R9
	IMULQ DX, R9
	LEAQ (DI)(R9*8), R10   // &cross[j*m]
	MOVQ R8, R11           // l = j
lloop8:
	MOVQ DX, R12
	SUBQ R11, R12
	CMPQ R12, $8
	JL   lloop4
	VMOVUPD (SI)(R11*8), Y1
	VMOVUPD 32(SI)(R11*8), Y3
	VMOVUPD (R10)(R11*8), Y2
	VMOVUPD 32(R10)(R11*8), Y4
	VFMADD231PD Y0, Y1, Y2
	VFMADD231PD Y0, Y3, Y4
	VMOVUPD Y2, (R10)(R11*8)
	VMOVUPD Y4, 32(R10)(R11*8)
	ADDQ $8, R11
	JMP  lloop8
lloop4:
	CMPQ R12, $4
	JL   lloop1
	VMOVUPD (SI)(R11*8), Y1
	VMOVUPD (R10)(R11*8), Y2
	VFMADD231PD Y0, Y1, Y2
	VMOVUPD Y2, (R10)(R11*8)
	ADDQ $4, R11
lloop1:
	CMPQ R11, DX
	JGE  ldone
	VMOVSD (SI)(R11*8), X1
	VMOVSD (R10)(R11*8), X2
	VFMADD231SD X0, X1, X2
	VMOVSD X2, (R10)(R11*8)
	INCQ R11
	JMP  lloop1
ldone:
	INCQ R8
	JMP  jloop
jdone:
	LEAQ (SI)(DX*8), SI    // next row
	DECQ CX
	JNZ  rowloop
done:
	VZEROUPPER
	RET

// func allFiniteAVX(flat *float64, n int) bool
//
// v*0 != 0 exactly for NaN and ±Inf (0·Inf and 0·NaN are NaN; finite v
// gives ±0, which compares equal to +0). NEQ_UQ (imm 4) is true for
// unordered, so NaN lanes light up the movmsk.
TEXT ·allFiniteAVX(SB), NOSPLIT, $0-17
	MOVQ flat+0(FP), SI
	MOVQ n+8(FP), CX
	VXORPD Y0, Y0, Y0
	XORQ AX, AX            // index
scan8:
	MOVQ CX, DX
	SUBQ AX, DX
	CMPQ DX, $8
	JL   scan4
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VMULPD Y0, Y1, Y1
	VMULPD Y0, Y2, Y2
	VCMPPD $4, Y0, Y1, Y3
	VCMPPD $4, Y0, Y2, Y4
	VORPD Y4, Y3, Y3
	VMOVMSKPD Y3, BX
	TESTQ BX, BX
	JNZ  bad
	ADDQ $8, AX
	JMP  scan8
scan4:
	CMPQ DX, $4
	JL   scan1
	VMOVUPD (SI)(AX*8), Y1
	VMULPD Y0, Y1, Y1
	VCMPPD $4, Y0, Y1, Y3
	VMOVMSKPD Y3, BX
	TESTQ BX, BX
	JNZ  bad
	ADDQ $4, AX
scan1:
	CMPQ AX, CX
	JGE  ok
	VMOVSD (SI)(AX*8), X1
	VMULSD X0, X1, X1
	VUCOMISD X0, X1
	JP   bad               // unordered => NaN => non-finite
	INCQ AX
	JMP  scan1
ok:
	VZEROUPPER
	MOVB $1, ret+16(FP)
	RET
bad:
	VZEROUPPER
	MOVB $0, ret+16(FP)
	RET

// func cpuidRaw(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidRaw(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL subleaf+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() uint64
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	SHLQ $32, DX
	ORQ  DX, AX
	MOVQ AX, ret+0(FP)
	RET
