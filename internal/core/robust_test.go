package core

import (
	"math"
	"math/rand"
	"testing"

	"ratiorules/internal/matrix"
)

// corruptedLine builds y = 2x data with a handful of wildly wrong rows.
func corruptedLine(rng *rand.Rand, n, bad int) ([][2]float64, [][]float64) {
	rows := make([][]float64, n)
	var planted [][2]float64
	for i := 0; i < n; i++ {
		v := 1 + rng.Float64()*9
		rows[i] = []float64{v, 2 * v}
	}
	for b := 0; b < bad; b++ {
		i := 10 + b*7
		rows[i] = []float64{5, -40 - float64(b)*10} // nowhere near the line
		planted = append(planted, [2]float64{float64(i), 0})
	}
	return planted, rows
}

func TestMineRobustRecoversSlope(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	planted, raw := corruptedLine(rng, 200, 6)
	x := mustMatrix(t, raw)

	miner, err := NewMiner(WithFixedK(1))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := miner.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	res, err := miner.MineRobust(x, RobustConfig{})
	if err != nil {
		t.Fatal(err)
	}
	slope := func(r *Rules) float64 {
		rr := r.Rule(0)
		return rr[1] / rr[0]
	}
	if math.Abs(slope(res.Rules)-2) > 0.02 {
		t.Errorf("robust slope = %v, want ≈ 2", slope(res.Rules))
	}
	// Plain mining must be visibly worse for the comparison to matter.
	if math.Abs(slope(plain)-2) < math.Abs(slope(res.Rules)-2) {
		t.Errorf("plain mining (slope %v) beat robust (%v)?", slope(plain), slope(res.Rules))
	}
	// All planted rows trimmed.
	trimmedSet := map[int]bool{}
	for _, i := range res.TrimmedRows {
		trimmedSet[i] = true
	}
	for _, p := range planted {
		if !trimmedSet[int(p[0])] {
			t.Errorf("planted bad row %d not trimmed (trimmed: %v)", int(p[0]), res.TrimmedRows)
		}
	}
	if res.Rounds < 1 {
		t.Errorf("Rounds = %d", res.Rounds)
	}
}

func TestMineRobustCleanDataTrimsLittle(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	x := planeData(rng, 300, 4, 2)
	for i := 0; i < 300; i++ {
		row := x.RawRow(i)
		for j := range row {
			row[j] += rng.NormFloat64() * 0.1
		}
	}
	miner, err := NewMiner()
	if err != nil {
		t.Fatal(err)
	}
	res, err := miner.MineRobust(x, RobustConfig{TrimSigma: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TrimmedRows) > 30 {
		t.Errorf("trimmed %d of 300 clean rows", len(res.TrimmedRows))
	}
}

func TestMineRobustKeepFracGuard(t *testing.T) {
	// A pathological threshold that would flag half the data: the keep
	// guard must stop trimming instead of eating the dataset.
	rng := rand.New(rand.NewSource(93))
	x := planeData(rng, 100, 3, 1)
	for i := 0; i < 100; i++ {
		row := x.RawRow(i)
		for j := range row {
			row[j] += rng.NormFloat64() * 2
		}
	}
	miner, err := NewMiner()
	if err != nil {
		t.Fatal(err)
	}
	res, err := miner.MineRobust(x, RobustConfig{TrimSigma: 0.3, Rounds: 10, MinKeepFrac: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if kept := 100 - len(res.TrimmedRows); kept < 80 {
		t.Errorf("kept %d rows, guard demands >= 80", kept)
	}
}

func TestMineRobustPropagatesMineError(t *testing.T) {
	miner, err := NewMiner()
	if err != nil {
		t.Fatal(err)
	}
	x := mustMatrix(t, [][]float64{{1, 2}})
	if _, err := miner.MineRobust(x, RobustConfig{}); err == nil {
		t.Error("single-row input must fail")
	}
}

func mustMatrix(t *testing.T, rows [][]float64) *matrix.Dense {
	t.Helper()
	m, err := matrix.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
