package core

import (
	"container/list"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"ratiorules/internal/linsolve"
	"ratiorules/internal/matrix"
	"ratiorules/internal/obs/trace"
	"ratiorules/internal/svd"
)

// DefaultFillCacheCap is the per-rule-set bound on cached hole-pattern
// solver plans. A plan costs O(M·k) floats (the explicit V′ factor), so
// 256 plans of a k=12, M=100 model stay around 2.5 MB while easily
// covering every single-hole pattern of wide models plus the handful of
// multi-hole patterns real batches carry.
const DefaultFillCacheCap = 256

// fillPlan is the row-independent part of a hole-filling solve: the
// Sec. 4.4 case analysis and the V′ factorization for one (hole pattern,
// solver) pair. The factorization depends only on the hole index set and
// the rules — never on the row values — so a batch with few distinct
// patterns pays the O(M·k²) factorization once per pattern and every row
// reuses it with an O(M·k) apply.
type fillPlan struct {
	// holes is the sorted hole pattern the plan was built for.
	holes []int
	// isHole flags the hole positions over the M attributes.
	isHole []bool
	// known is M minus the number of holes.
	known int
	// kEff is the effective rule count after Case-3 rule dropping.
	kEff int
	// degenerate marks the k == 0 / known == 0 collapse to column means.
	degenerate bool
	// solve maps the centered known values b′ to the concept-space
	// solution xconcept. It is safe for concurrent use.
	solve func(b []float64) ([]float64, error)
}

// buildPlan runs the case analysis of Sec. 4.4 once for a hole pattern,
// factoring V′ so the per-row work reduces to a gather and a
// substitution/mat-vec. holes must be validated and sorted.
func (r *Rules) buildPlan(holes []int, solver FillSolver) (*fillPlan, error) {
	m := r.M()
	p := &fillPlan{
		holes:  holes,
		isHole: make([]bool, m),
		known:  m - len(holes),
	}
	for _, j := range holes {
		p.isHole[j] = true
	}
	k := r.K()
	// Degenerate cases: no rules retained, or nothing known. Both collapse
	// to xconcept = 0, i.e. the column averages.
	if k == 0 || p.known == 0 {
		p.degenerate = true
		return p, nil
	}
	// Under-specified (Case 3): ignore the (k+h)−M weakest rules so that
	// the system becomes exactly specified.
	p.kEff = k
	if p.known < k {
		p.kEff = p.known
	}

	// V′ = E_H·V: rows of V at the known attributes, first kEff columns.
	vPrime := matrix.NewDense(p.known, p.kEff)
	ki := 0
	for j := 0; j < m; j++ {
		if p.isHole[j] {
			continue
		}
		for c := 0; c < p.kEff; c++ {
			vPrime.Set(ki, c, r.v.At(j, c))
		}
		ki++
	}

	switch {
	case p.known == p.kEff:
		// Exactly-specified (Case 1, and Case 3 after rule dropping):
		// LU factor; fall back to the pseudo-inverse when the selected
		// rows of V happen to be singular.
		lu, err := linsolve.FactorLU(vPrime)
		if err == nil {
			p.solve = lu.Solve
			return p, nil
		}
		if !errors.Is(err, linsolve.ErrSingular) {
			return nil, fmt.Errorf("core: exactly-specified solve: %w", err)
		}
	case solver == SolveQR:
		qr, err := linsolve.FactorQR(vPrime)
		if err != nil {
			return nil, fmt.Errorf("core: QR least-squares solve: %w", err)
		}
		if qr.FullRank() {
			p.solve = qr.Solve
			return p, nil
		}
		// Rank-deficient: fall through to the pseudo-inverse, matching
		// the one-shot solveConcept path.
	}
	// Over-specified (Case 2) and all singular fallbacks: minimum-norm
	// least squares through the explicit Moore–Penrose pseudo-inverse
	// (Eqs. 7–9), applied per row as a kEff×known mat-vec.
	pinv, err := svd.PseudoInverse(vPrime)
	if err != nil {
		return nil, fmt.Errorf("core: pseudo-inverse solve: %w", err)
	}
	p.solve = func(b []float64) ([]float64, error) { return matrix.MulVec(pinv, b) }
	return p, nil
}

// applyPlan is the per-row half of a planned fill: gather the centered
// known cells, solve for xconcept with the cached factorization, and
// expand the holes (step 5 of Fig. 3: known cells keep their values).
func (r *Rules) applyPlan(p *fillPlan, row []float64) ([]float64, error) {
	m := r.M()
	out := make([]float64, m)
	copy(out, row)
	if len(p.holes) == 0 {
		return out, nil
	}
	if p.degenerate {
		for _, j := range p.holes {
			out[j] = r.means[j]
		}
		return out, nil
	}
	bPrime := make([]float64, p.known)
	ki := 0
	for j := 0; j < m; j++ {
		if p.isHole[j] {
			continue
		}
		bPrime[ki] = row[j] - r.means[j]
		ki++
	}
	xConcept, err := p.solve(bPrime)
	if err != nil {
		return nil, err
	}
	for _, j := range p.holes {
		var s float64
		for c := 0; c < p.kEff; c++ {
			s += r.v.At(j, c) * xConcept[c]
		}
		out[j] = s + r.means[j]
	}
	return out, nil
}

// patternKey canonically encodes a sorted hole pattern plus the solver
// choice as a cache key.
func patternKey(sortedHoles []int, solver FillSolver) string {
	b := make([]byte, 0, 1+3*len(sortedHoles))
	b = append(b, byte(solver))
	for _, j := range sortedHoles {
		b = binary.AppendUvarint(b, uint64(j))
	}
	return string(b)
}

// planCache is a small mutex-guarded LRU of fillPlans, embedded in each
// Rules value. Because the cache lives on the (immutable) rule set, the
// "rules version" component of the key is implicit: a re-mined or
// rolled-back model is a fresh *Rules with an empty cache, so plans can
// never be applied across rule versions.
type planCache struct {
	mu      sync.Mutex
	cap     int // 0 = DefaultFillCacheCap
	entries map[string]*list.Element
	order   list.List // front = most recently used
}

// cacheEntry is the LRU list payload.
type cacheEntry struct {
	key  string
	plan *fillPlan
}

// get returns the cached plan for key, promoting it to most recent.
func (c *planCache) get(key string) (*fillPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).plan, true
}

// put inserts a plan, evicting the least recently used beyond capacity.
func (c *planCache) put(key string, p *fillPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[string]*list.Element)
	}
	if el, ok := c.entries[key]; ok {
		// A concurrent miss built the same plan; keep the winner fresh.
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, plan: p})
	capacity := c.cap
	if capacity <= 0 {
		capacity = DefaultFillCacheCap
	}
	for len(c.entries) > capacity {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		fillCacheEvictions.Inc()
	}
}

// len reports the resident plan count (test hook).
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// fillCached is fill with the hole-pattern plan cache: the batch engine's
// hot path. Semantics match fill exactly; only the factorization reuse
// differs.
func (r *Rules) fillCached(row []float64, holes []int, solver FillSolver) ([]float64, error) {
	return r.fillCachedCtx(context.Background(), row, holes, solver)
}

// fillCachedCtx is fillCached with trace spans: "fill.cache" covers the
// pattern lookup (attr result=hit|miss), a "fill.factorize" child prices
// the V′ factorization on a miss, and "fill.solve" covers the per-row
// gather + substitution. With no active trace in ctx the spans are
// no-ops.
func (r *Rules) fillCachedCtx(ctx context.Context, row []float64, holes []int, solver FillSolver) ([]float64, error) {
	m := r.M()
	if len(row) != m {
		return nil, fmt.Errorf("core: record width %d, want %d: %w", len(row), m, ErrWidth)
	}
	if err := validateHoles(holes, m); err != nil {
		return nil, err
	}
	sorted := SortedHoles(holes)
	key := patternKey(sorted, solver)
	cctx, csp := trace.Start(ctx, "fill.cache")
	plan, ok := r.plans.get(key)
	if ok {
		fillCacheHits.Inc()
		csp.SetAttr("result", "hit")
	} else {
		fillCacheMisses.Inc()
		csp.SetAttr("result", "miss")
		_, fsp := trace.Start(cctx, "fill.factorize")
		var err error
		plan, err = r.buildPlan(sorted, solver)
		fsp.End()
		if err != nil {
			csp.End()
			return nil, err
		}
		r.plans.put(key, plan)
	}
	csp.End()
	_, ssp := trace.Start(ctx, "fill.solve")
	out, err := r.applyPlan(plan, row)
	ssp.End()
	return out, err
}
