// Package core implements Ratio Rules, the primary contribution of Korn,
// Labrinidis, Kotidis and Faloutsos, "Ratio Rules: A New Paradigm for Fast,
// Quantifiable Data Mining" (VLDB 1998).
//
// A Ratio Rule is an eigenvector of the covariance matrix of an N×M data
// matrix (customers × products): the direction captures the ratios in which
// attribute values co-occur ("customers typically spend 1:2:5 on
// bread:milk:butter"). The package provides:
//
//   - single-pass mining of the top-k rules with the 85%-variance cutoff
//     (Fig. 2 and Eq. 1 of the paper);
//   - reconstruction of hidden/missing values from partial records,
//     distinguishing the exactly-, over- and under-specified cases
//     (Sec. 4.4, Fig. 3);
//   - the "guessing error" quality measure GE₁/GEh (Sec. 4.3, Eqs. 3-4);
//   - outlier detection, what-if scenarios and low-dimensional projection
//     for visualization (Sec. 3 and 6).
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"ratiorules/internal/matrix"
)

// Sentinel errors returned by the package.
var (
	// ErrNoRules indicates an operation that needs at least one retained
	// rule was invoked on an empty rule set.
	ErrNoRules = errors.New("core: rule set has no rules")
	// ErrBadHole indicates a hole index that is negative, out of range or
	// duplicated.
	ErrBadHole = errors.New("core: invalid hole index")
	// ErrWidth indicates a record whose width differs from the rules'.
	ErrWidth = errors.New("core: record width mismatch")
)

// Rules is a mined set of Ratio Rules: the k strongest eigenvectors of the
// training data's covariance matrix, together with the column means needed
// to center new records and the eigenvalue spectrum that justified the
// cutoff.
//
// Rules is immutable after mining; all methods are safe for concurrent use.
type Rules struct {
	// attrs names the M attributes (may be nil when unnamed).
	attrs []string
	// means holds the M column averages of the training matrix.
	means []float64
	// v is the M×k matrix whose columns are the retained eigenvectors,
	// strongest first (the paper's RR matrix V).
	v *matrix.Dense
	// eigenvalues holds the k retained eigenvalues, descending.
	eigenvalues []float64
	// totalVariance is the sum of all M eigenvalues, for energy accounting.
	totalVariance float64
	// trainedRows is the number of training records the rules were mined
	// from.
	trainedRows int
	// residStd[j] is the per-attribute residual standard deviation: the
	// square root of attribute j's training variance NOT captured by the
	// retained rules. It quantifies how far real records sit from the
	// RR-hyperplane along attribute j, and hence the uncertainty of a
	// reconstructed cell. Nil for rule sets loaded from pre-band formats.
	residStd []float64
	// plans caches hole-pattern solver factorizations for the batch
	// inference engine (see fillcache.go). Living on the rule set makes
	// the cache version-safe: a re-mined or rolled-back model is a fresh
	// *Rules with an empty cache. The zero value is ready to use, so the
	// rule constructors need no extra wiring.
	plans planCache
}

// K reports the number of retained rules.
func (r *Rules) K() int {
	if r.v == nil {
		return 0
	}
	_, k := r.v.Dims()
	return k
}

// M reports the number of attributes.
func (r *Rules) M() int { return len(r.means) }

// TrainedRows reports how many records were used to mine the rules.
func (r *Rules) TrainedRows() int { return r.trainedRows }

// Means returns a copy of the training column averages.
func (r *Rules) Means() []float64 {
	out := make([]float64, len(r.means))
	copy(out, r.means)
	return out
}

// Eigenvalues returns a copy of the retained eigenvalues, descending.
func (r *Rules) Eigenvalues() []float64 {
	out := make([]float64, len(r.eigenvalues))
	copy(out, r.eigenvalues)
	return out
}

// TotalVariance returns the sum of all M eigenvalues of the training
// scatter matrix, retained and discarded alike.
func (r *Rules) TotalVariance() float64 { return r.totalVariance }

// EnergyCovered returns the fraction of total variance captured by the
// retained rules (the left side of Eq. 1).
func (r *Rules) EnergyCovered() float64 {
	if r.totalVariance <= 0 {
		return 0
	}
	var s float64
	for _, l := range r.eigenvalues {
		s += l
	}
	return s / r.totalVariance
}

// ResidualStd returns the training residual standard deviation of
// attribute j — the typical distance of real records from the
// RR-hyperplane along that attribute, and therefore the 1-sigma
// uncertainty of a reconstructed cell. It returns 0 when the information
// was not recorded (legacy serialized rules).
func (r *Rules) ResidualStd(j int) float64 {
	if j < 0 || j >= r.M() {
		panic(fmt.Sprintf("core: attribute index %d out of range [0,%d)", j, r.M()))
	}
	if r.residStd == nil {
		return 0
	}
	return r.residStd[j]
}

// Rule returns a copy of the i-th strongest rule as a unit M-vector.
func (r *Rules) Rule(i int) []float64 {
	if i < 0 || i >= r.K() {
		panic(fmt.Sprintf("core: rule index %d out of range [0,%d)", i, r.K()))
	}
	return r.v.Col(i)
}

// Vectors returns a copy of the M×k rule matrix V.
func (r *Rules) Vectors() *matrix.Dense { return r.v.Clone() }

// AttrNames returns the attribute names, or nil when unnamed.
func (r *Rules) AttrNames() []string {
	if r.attrs == nil {
		return nil
	}
	out := make([]string, len(r.attrs))
	copy(out, r.attrs)
	return out
}

// AttrName returns the name of attribute j, falling back to "attrJ".
func (r *Rules) AttrName(j int) string {
	if j >= 0 && j < len(r.attrs) && r.attrs[j] != "" {
		return r.attrs[j]
	}
	return fmt.Sprintf("attr%d", j)
}

// Ratio returns the ratio coefficients of attributes a and b under rule i,
// i.e. the pair (V[a][i], V[b][i]). The paper reads these as "spendings on
// a:b are close to ratio V[a][i]:V[b][i]".
func (r *Rules) Ratio(i, a, b int) (float64, float64) {
	if a < 0 || a >= r.M() || b < 0 || b >= r.M() {
		panic(fmt.Sprintf("core: attribute index out of range: %d, %d (M=%d)", a, b, r.M()))
	}
	return r.v.At(a, i), r.v.At(b, i)
}

// String renders the rule set as a table in the style of the paper's
// Table 2: one row per attribute, one column per rule, suppressing
// coefficients below 0.05 in magnitude for readability.
func (r *Rules) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ratio Rules: k=%d of M=%d attributes, %.1f%% energy, %d training rows\n",
		r.K(), r.M(), 100*r.EnergyCovered(), r.trainedRows)
	fmt.Fprintf(&b, "%-22s", "attribute")
	for i := 0; i < r.K(); i++ {
		fmt.Fprintf(&b, "%10s", fmt.Sprintf("RR%d", i+1))
	}
	b.WriteByte('\n')
	for j := 0; j < r.M(); j++ {
		fmt.Fprintf(&b, "%-22s", r.AttrName(j))
		for i := 0; i < r.K(); i++ {
			v := r.v.At(j, i)
			if math.Abs(v) < 0.05 {
				fmt.Fprintf(&b, "%10s", "-")
			} else {
				fmt.Fprintf(&b, "%10.3f", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// rulesJSON is the serialized wire form of Rules.
type rulesJSON struct {
	Attrs         []string    `json:"attrs,omitempty"`
	Means         []float64   `json:"means"`
	Eigenvalues   []float64   `json:"eigenvalues"`
	TotalVariance float64     `json:"total_variance"`
	TrainedRows   int         `json:"trained_rows"`
	Vectors       [][]float64 `json:"vectors"` // row-major M×k
	ResidualStd   []float64   `json:"residual_std,omitempty"`
}

// Save writes the rule set as JSON to w, so mined rules can be stored and
// applied later without re-reading the training data.
func (r *Rules) Save(w io.Writer) error {
	m, k := r.M(), r.K()
	rows := make([][]float64, m)
	for j := 0; j < m; j++ {
		rows[j] = make([]float64, k)
		for i := 0; i < k; i++ {
			rows[j][i] = r.v.At(j, i)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rulesJSON{
		Attrs:         r.attrs,
		Means:         r.means,
		Eigenvalues:   r.eigenvalues,
		TotalVariance: r.totalVariance,
		TrainedRows:   r.trainedRows,
		Vectors:       rows,
		ResidualStd:   r.residStd,
	}); err != nil {
		return fmt.Errorf("core: saving rules: %w", err)
	}
	return nil
}

// Load reads a rule set previously written by Save.
func Load(rd io.Reader) (*Rules, error) {
	var j rulesJSON
	if err := json.NewDecoder(rd).Decode(&j); err != nil {
		return nil, fmt.Errorf("core: loading rules: %w", err)
	}
	v, err := matrix.FromRows(j.Vectors)
	if err != nil {
		return nil, fmt.Errorf("core: loading rules: %w", err)
	}
	rows, k := v.Dims()
	if rows != len(j.Means) {
		return nil, fmt.Errorf("core: loading rules: %d vector rows for %d means: %w",
			rows, len(j.Means), ErrWidth)
	}
	if k != len(j.Eigenvalues) {
		return nil, fmt.Errorf("core: loading rules: %d vector columns for %d eigenvalues: %w",
			k, len(j.Eigenvalues), ErrWidth)
	}
	if j.Attrs != nil && len(j.Attrs) != len(j.Means) {
		return nil, fmt.Errorf("core: loading rules: %d attribute names for %d means: %w",
			len(j.Attrs), len(j.Means), ErrWidth)
	}
	if j.ResidualStd != nil && len(j.ResidualStd) != len(j.Means) {
		return nil, fmt.Errorf("core: loading rules: %d residual stds for %d means: %w",
			len(j.ResidualStd), len(j.Means), ErrWidth)
	}
	return &Rules{
		attrs:         j.Attrs,
		means:         j.Means,
		v:             v,
		eigenvalues:   j.Eigenvalues,
		totalVariance: j.TotalVariance,
		trainedRows:   j.TrainedRows,
		residStd:      j.ResidualStd,
	}, nil
}
