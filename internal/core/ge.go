package core

import (
	"fmt"
	"math"
	"math/rand"

	"ratiorules/internal/matrix"
)

// GE1 computes the single-hole guessing error of Def. 1 (Eq. 3): for every
// cell of the test matrix, pretend it is hidden, reconstruct it from the
// rest of its row with est, and return the root-mean-square of the
// reconstruction errors over all N·M cells.
func GE1(est Estimator, test *matrix.Dense) (float64, error) {
	n, m := test.Dims()
	if m != est.Width() {
		return 0, fmt.Errorf("core: GE1 on %d-wide matrix with %d-wide estimator: %w",
			m, est.Width(), ErrWidth)
	}
	if n == 0 || m == 0 {
		return 0, nil
	}
	var sum float64
	hole := make([]int, 1)
	for i := 0; i < n; i++ {
		row := test.RawRow(i)
		for j := 0; j < m; j++ {
			hole[0] = j
			filled, err := est.FillRow(row, hole)
			if err != nil {
				return 0, fmt.Errorf("core: GE1 at cell (%d,%d): %w", i, j, err)
			}
			d := filled[j] - row[j]
			sum += d * d
		}
	}
	ge := math.Sqrt(sum / float64(n*m))
	recordGE("ge1", 1, ge)
	return ge, nil
}

// GEhConfig controls the h-hole guessing error computation.
type GEhConfig struct {
	// Holes is the number h of simultaneous holes (1 <= h <= M).
	Holes int
	// SetsPerRow bounds |Hh|, the number of hole combinations evaluated per
	// row. When the total number of combinations C(M, h) is at most
	// SetsPerRow, all of them are used; otherwise SetsPerRow random subsets
	// are drawn. Zero selects the default of 20.
	SetsPerRow int
	// Seed makes the random subset choice reproducible. Ignored when all
	// combinations fit.
	Seed int64
}

// defaultSetsPerRow bounds the per-row hole-combination sample so GEh stays
// tractable for wide matrices (C(17,3) alone is 680).
const defaultSetsPerRow = 20

// GEh computes the h-hole guessing error of Def. 2 (Eq. 4): hide h cells of
// a test row at a time, reconstruct them together, and take the
// root-mean-square over all hidden cells of all evaluated hole sets of all
// rows.
func GEh(est Estimator, test *matrix.Dense, cfg GEhConfig) (float64, error) {
	n, m := test.Dims()
	if m != est.Width() {
		return 0, fmt.Errorf("core: GEh on %d-wide matrix with %d-wide estimator: %w",
			m, est.Width(), ErrWidth)
	}
	h := cfg.Holes
	if h < 1 || h > m {
		return 0, fmt.Errorf("core: GEh with h=%d outside [1,%d]: %w", h, m, ErrBadHole)
	}
	if n == 0 {
		return 0, nil
	}
	setsPerRow := cfg.SetsPerRow
	if setsPerRow <= 0 {
		setsPerRow = defaultSetsPerRow
	}
	// When every combination fits the budget, evaluate all of them for all
	// rows. Otherwise draw a fresh sample per row: per-row sampling keeps
	// every column equally represented across the test set, which is what
	// makes GEh of col-avgs provably flat in h (the paper's observation).
	exhaustive := enumerateHoleSets(m, h, setsPerRow)
	rng := rand.New(rand.NewSource(cfg.Seed))

	var (
		sum   float64
		cells int
	)
	for i := 0; i < n; i++ {
		row := test.RawRow(i)
		holeSets := exhaustive
		if holeSets == nil {
			holeSets = sampleHoleSets(rng, m, h, setsPerRow)
		}
		for _, holes := range holeSets {
			filled, err := est.FillRow(row, holes)
			if err != nil {
				return 0, fmt.Errorf("core: GEh at row %d holes %v: %w", i, holes, err)
			}
			for _, j := range holes {
				d := filled[j] - row[j]
				sum += d * d
				cells++
			}
		}
	}
	if cells == 0 {
		return 0, nil
	}
	ge := math.Sqrt(sum / float64(cells))
	recordGE("geh", h, ge)
	return ge, nil
}

// enumerateHoleSets returns every C(m,h) combination when that count fits
// the budget, or nil when sampling is needed instead.
func enumerateHoleSets(m, h, budget int) [][]int {
	total, ok := binomialAtMost(m, h, budget)
	if !ok {
		return nil
	}
	sets := make([][]int, 0, total)
	comb := make([]int, h)
	for i := range comb {
		comb[i] = i
	}
	for {
		sets = append(sets, append([]int(nil), comb...))
		// Advance to the next combination in lexicographic order.
		i := h - 1
		for i >= 0 && comb[i] == m-h+i {
			i--
		}
		if i < 0 {
			break
		}
		comb[i]++
		for j := i + 1; j < h; j++ {
			comb[j] = comb[j-1] + 1
		}
	}
	return sets
}

// sampleHoleSets draws `budget` distinct random h-subsets of [0, m).
func sampleHoleSets(rng *rand.Rand, m, h, budget int) [][]int {
	seen := make(map[string]bool, budget)
	sets := make([][]int, 0, budget)
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	for len(sets) < budget {
		rng.Shuffle(m, func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		holes := SortedHoles(idx[:h])
		key := fmt.Sprint(holes)
		if seen[key] {
			continue
		}
		seen[key] = true
		sets = append(sets, holes)
	}
	return sets
}

// binomialAtMost reports whether C(m, h) <= budget, returning the exact
// count when it is (avoiding overflow by early exit).
func binomialAtMost(m, h, budget int) (int, bool) {
	if h > m {
		return 0, true
	}
	if h > m-h {
		h = m - h
	}
	c := 1
	for i := 0; i < h; i++ {
		c = c * (m - i) / (i + 1)
		if c > budget {
			return 0, false
		}
	}
	return c, c <= budget
}

// GECurve evaluates GEh for every h in [1, maxHoles], the series plotted in
// the paper's Fig. 6.
func GECurve(est Estimator, test *matrix.Dense, maxHoles int, cfg GEhConfig) ([]float64, error) {
	out := make([]float64, maxHoles)
	for h := 1; h <= maxHoles; h++ {
		c := cfg
		c.Holes = h
		ge, err := GEh(est, test, c)
		if err != nil {
			return nil, err
		}
		out[h-1] = ge
	}
	return out, nil
}
