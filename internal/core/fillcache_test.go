package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestFillCachedMatchesFill drives the cached path over every Sec. 4.4
// case (exact, over- and under-specified, both solvers) and checks it
// agrees with the one-shot fill.
func TestFillCachedMatchesFill(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := planeData(rng, 200, 8, 3)
	rules := mineK(t, x, 3)
	patterns := [][]int{
		{0},                      // over-specified
		{6, 2},                   // over-specified, unsorted on purpose
		{0, 1, 2, 3, 4},          // exactly specified (known = k = 3)
		{0, 1, 2, 3, 4, 5},       // under-specified (Case 3)
		{7, 6, 5, 4, 3, 2, 1, 0}, // everything hidden -> column means
		{},                       // no holes
	}
	for _, solver := range []FillSolver{SolvePseudoInverse, SolveQR} {
		for _, holes := range patterns {
			for trial := 0; trial < 5; trial++ {
				row := x.Row(rng.Intn(200))
				want, err := rules.fill(row, holes, solver)
				if err != nil {
					t.Fatalf("fill(%v): %v", holes, err)
				}
				got, err := rules.fillCached(row, holes, solver)
				if err != nil {
					t.Fatalf("fillCached(%v): %v", holes, err)
				}
				for j := range want {
					if math.Abs(want[j]-got[j]) > 1e-9*(1+math.Abs(want[j])) {
						t.Fatalf("solver %v holes %v cell %d: cached %g, one-shot %g",
							solver, holes, j, got[j], want[j])
					}
				}
			}
		}
	}
}

// TestFillCachedReusesPlans checks that repeated patterns share one plan,
// that hole order does not fragment the cache, and that the two solvers
// get distinct entries.
func TestFillCachedReusesPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := planeData(rng, 100, 6, 2)
	rules := mineK(t, x, 2)
	row := x.Row(0)
	for i := 0; i < 10; i++ {
		if _, err := rules.fillCached(row, []int{1, 4}, SolvePseudoInverse); err != nil {
			t.Fatal(err)
		}
		if _, err := rules.fillCached(row, []int{4, 1}, SolvePseudoInverse); err != nil {
			t.Fatal(err)
		}
	}
	if got := rules.plans.len(); got != 1 {
		t.Fatalf("one pattern in two orders produced %d plans, want 1", got)
	}
	if _, err := rules.fillCached(row, []int{1, 4}, SolveQR); err != nil {
		t.Fatal(err)
	}
	if got := rules.plans.len(); got != 2 {
		t.Fatalf("QR solver should get its own plan: %d plans, want 2", got)
	}
}

// TestPlanCacheEvicts bounds the LRU and checks eviction order.
func TestPlanCacheEvicts(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := planeData(rng, 100, 6, 2)
	rules := mineK(t, x, 2)
	rules.plans.cap = 2
	row := x.Row(0)
	for _, holes := range [][]int{{0}, {1}, {2}} {
		if _, err := rules.fillCached(row, holes, SolvePseudoInverse); err != nil {
			t.Fatal(err)
		}
	}
	if got := rules.plans.len(); got != 2 {
		t.Fatalf("cache holds %d plans, want cap 2", got)
	}
	// {0} was least recently used and must be gone; {2} must be resident.
	if _, ok := rules.plans.get(patternKey([]int{0}, SolvePseudoInverse)); ok {
		t.Error("LRU pattern {0} still resident after eviction")
	}
	if _, ok := rules.plans.get(patternKey([]int{2}, SolvePseudoInverse)); !ok {
		t.Error("most recent pattern {2} evicted")
	}
}

// TestFillCachedValidation mirrors fill's error contract.
func TestFillCachedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := planeData(rng, 50, 4, 2)
	rules := mineK(t, x, 2)
	if _, err := rules.fillCached([]float64{1, 2}, []int{0}, SolvePseudoInverse); !errors.Is(err, ErrWidth) {
		t.Errorf("short record: got %v, want ErrWidth", err)
	}
	if _, err := rules.fillCached(make([]float64, 4), []int{4}, SolvePseudoInverse); !errors.Is(err, ErrBadHole) {
		t.Errorf("out-of-range hole: got %v, want ErrBadHole", err)
	}
	if _, err := rules.fillCached(make([]float64, 4), []int{1, 1}, SolvePseudoInverse); !errors.Is(err, ErrBadHole) {
		t.Errorf("duplicate hole: got %v, want ErrBadHole", err)
	}
	if got := rules.plans.len(); got != 0 {
		t.Errorf("invalid requests cached %d plans, want 0", got)
	}
}
