package core

import (
	"context"
	"errors"
	"fmt"
	"io"

	"ratiorules/internal/matrix"
	"ratiorules/internal/stats"
)

// SparseRowSource yields sparse rows of a data matrix, for single-pass
// mining of wide, mostly-zero matrices such as market baskets (the
// footnote-1 regime of the paper, where M is large but each row touches a
// few columns). NextSparse returns io.EOF after the last row; the returned
// vector's slices may be reused between calls.
type SparseRowSource interface {
	// Width reports the number of attributes M.
	Width() int
	// NextSparse returns the next row in sparse form or io.EOF.
	NextSparse() (matrix.SparseVec, error)
}

// MineSparse streams sparse rows through the single-pass accumulator,
// touching only nonzero cells: O(nnz²) work per row instead of O(M²). The
// rules produced are identical to dense mining of the materialized matrix.
func (m *Miner) MineSparse(src SparseRowSource) (*Rules, error) {
	width := src.Width()
	if width <= 0 {
		return nil, fmt.Errorf("core: sparse source width %d: %w", width, ErrWidth)
	}
	if m.attrs != nil && len(m.attrs) != width {
		return nil, fmt.Errorf("core: %d attribute names for width %d: %w", len(m.attrs), width, ErrWidth)
	}
	acc := stats.NewCovAccumulator(width)
	for {
		row, err := src.NextSparse()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("core: reading sparse rows: %w", err)
		}
		if err := acc.PushSparse(row); err != nil {
			return nil, fmt.Errorf("core: accumulating sparse row %d: %w", acc.Count(), err)
		}
	}
	if acc.Count() < 2 {
		return nil, fmt.Errorf("core: mining needs at least 2 rows, got %d", acc.Count())
	}
	scatter, err := acc.Scatter()
	if err != nil {
		return nil, fmt.Errorf("core: building covariance: %w", err)
	}
	means, err := acc.Means()
	if err != nil {
		return nil, fmt.Errorf("core: computing column averages: %w", err)
	}
	return m.rulesFromScatter(context.Background(), scatter, means, acc.Count())
}
