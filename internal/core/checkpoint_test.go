package core

import (
	"math/rand"
	"strings"
	"testing"

	"ratiorules/internal/matrix"
)

func TestStreamCheckpointResumeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	x := randomCorrelated(rng, 200, 4)

	// Uninterrupted run.
	whole, err := NewStreamMiner(4, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := whole.Push(x.RawRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := whole.Rules()
	if err != nil {
		t.Fatal(err)
	}

	// Checkpoint at row 120, resume, continue.
	first, err := NewStreamMiner(4, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		if err := first.Push(x.RawRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf strings.Builder
	if err := first.Save(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := LoadStreamMiner(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 120; i < 200; i++ {
		if err := resumed.Push(x.RawRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := resumed.Rules()
	if err != nil {
		t.Fatal(err)
	}

	if got.TrainedRows() != want.TrainedRows() {
		t.Fatalf("TrainedRows = %d, want %d", got.TrainedRows(), want.TrainedRows())
	}
	if !matrix.EqualApproxVec(got.Means(), want.Means(), 1e-12) {
		t.Error("means differ after resume")
	}
	if !matrix.EqualApproxVec(got.Eigenvalues(), want.Eigenvalues(), 1e-9*(1+want.Eigenvalues()[0])) {
		t.Error("eigenvalues differ after resume")
	}
	for i := 0; i < want.K() && i < got.K(); i++ {
		if !matrix.EqualApproxVec(got.Rule(i), want.Rule(i), 1e-9) {
			t.Errorf("rule %d differs after resume", i)
		}
	}
}

func TestLoadStreamMinerRejectsCorrupt(t *testing.T) {
	cases := map[string]string{
		"not json":       "{",
		"wrong version":  `{"version":99,"width":2,"sums":[0,0],"cross":[[0,0],[0]]}`,
		"bad width":      `{"version":1,"width":0,"sums":[],"cross":[]}`,
		"sums mismatch":  `{"version":1,"width":2,"sums":[0],"cross":[[0,0],[0]]}`,
		"cross mismatch": `{"version":1,"width":2,"sums":[0,0],"cross":[[0],[0]]}`,
		"negative count": `{"version":1,"width":2,"count":-1,"sums":[0,0],"cross":[[0,0],[0]]}`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := LoadStreamMiner(strings.NewReader(in)); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestLoadStreamMinerBadOptions(t *testing.T) {
	sm, err := NewStreamMiner(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.Push([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := sm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadStreamMiner(strings.NewReader(buf.String()), WithEnergy(-1)); err == nil {
		t.Error("invalid option at load must fail")
	}
	if _, err := LoadStreamMiner(strings.NewReader(buf.String()), WithAttrNames([]string{"a", "b", "c"})); err == nil {
		t.Error("attr width mismatch at load must fail")
	}
}
