package core

import (
	"errors"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"

	"ratiorules/internal/matrix"
)

// paperFig1 is the literal 5-customer bread/butter table of the paper's
// Fig. 1 (columns: bread, butter).
func paperFig1() *matrix.Dense {
	return matrix.MustFromRows([][]float64{
		{0.89, 0.49},
		{3.34, 1.85},
		{5.00, 3.09},
		{1.78, 0.99},
		{4.02, 2.61},
	})
}

func TestPaperFigure1(t *testing.T) {
	// The paper states eigensystem analysis identifies (0.866, 0.5) as the
	// best axis for this table, i.e. the rule bread:butter ≈ 0.866:0.5.
	// The table values come from an imperfect transcription of Fig. 1, so
	// the assertion uses a loose band around the published direction.
	miner, err := NewMiner(WithFixedK(1), WithAttrNames([]string{"bread", "butter"}))
	if err != nil {
		t.Fatal(err)
	}
	rules, err := miner.MineMatrix(paperFig1())
	if err != nil {
		t.Fatal(err)
	}
	rr1 := rules.Rule(0)
	if math.Abs(rr1[0]-0.866) > 0.06 || math.Abs(rr1[1]-0.5) > 0.06 {
		t.Errorf("RR1 = %v, want ≈ (0.866, 0.5)", rr1)
	}
	a, b := rules.Ratio(0, 0, 1)
	if a != rr1[0] || b != rr1[1] {
		t.Errorf("Ratio = %v:%v, want %v:%v", a, b, rr1[0], rr1[1])
	}
}

func TestMinerEnergyCutoff(t *testing.T) {
	// Strongly rank-1 data: first eigenvalue dominates, so the 85% cutoff
	// must retain exactly one rule.
	rng := rand.New(rand.NewSource(1))
	x := matrix.NewDense(200, 4)
	for i := 0; i < 200; i++ {
		v := rng.NormFloat64() * 10
		row := x.RawRow(i)
		for j := range row {
			row[j] = v*float64(j+1) + rng.NormFloat64()*0.01
		}
	}
	miner, err := NewMiner()
	if err != nil {
		t.Fatal(err)
	}
	rules, err := miner.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	if rules.K() != 1 {
		t.Errorf("K = %d, want 1 for near-rank-1 data", rules.K())
	}
	if got := rules.EnergyCovered(); got < 0.85 {
		t.Errorf("EnergyCovered = %v, want >= 0.85", got)
	}
	if rules.TrainedRows() != 200 {
		t.Errorf("TrainedRows = %d, want 200", rules.TrainedRows())
	}
}

func TestMinerEnergyCutoffWhiteNoise(t *testing.T) {
	// Isotropic noise spreads energy evenly: 85% of 6 dims needs 6·0.85
	// rounded up... at least 5 rules.
	rng := rand.New(rand.NewSource(2))
	x := matrix.NewDense(500, 6)
	for i := 0; i < 500; i++ {
		row := x.RawRow(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	miner, _ := NewMiner()
	rules, err := miner.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	if rules.K() < 5 {
		t.Errorf("K = %d, want >= 5 for isotropic data", rules.K())
	}
}

func TestMinerFixedAndMaxK(t *testing.T) {
	x := randomCorrelated(rand.New(rand.NewSource(3)), 100, 5)
	for _, tc := range []struct {
		name string
		opts []Option
		want int
	}{
		{"fixed 3", []Option{WithFixedK(3)}, 3},
		{"fixed 0", []Option{WithFixedK(0)}, 0},
		{"fixed beyond M", []Option{WithFixedK(99)}, 5},
		{"max 1", []Option{WithEnergy(0.9999), WithMaxK(1)}, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			miner, err := NewMiner(tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			rules, err := miner.MineMatrix(x)
			if err != nil {
				t.Fatal(err)
			}
			if rules.K() != tc.want {
				t.Errorf("K = %d, want %d", rules.K(), tc.want)
			}
		})
	}
}

func TestMinerOptionValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Option
	}{
		{"zero energy", WithEnergy(0)},
		{"energy above 1", WithEnergy(1.5)},
		{"negative fixed k", WithFixedK(-1)},
		{"zero max k", WithMaxK(0)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewMiner(tc.opt); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestMinerAttrNameWidthCheck(t *testing.T) {
	miner, err := NewMiner(WithAttrNames([]string{"a", "b", "c"}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := miner.MineMatrix(paperFig1()); !errors.Is(err, ErrWidth) {
		t.Errorf("err = %v, want ErrWidth", err)
	}
}

func TestMinerTooFewRows(t *testing.T) {
	miner, _ := NewMiner()
	if _, err := miner.MineMatrix(matrix.MustFromRows([][]float64{{1, 2}})); err == nil {
		t.Error("mining one row must fail")
	}
	if _, err := miner.MineMatrix(matrix.NewDense(0, 0)); !errors.Is(err, ErrWidth) {
		t.Errorf("zero-width source: err = %v, want ErrWidth", err)
	}
}

func TestMinerJacobiAgreesWithDefault(t *testing.T) {
	x := randomCorrelated(rand.New(rand.NewSource(4)), 150, 6)
	def, _ := NewMiner(WithFixedK(3))
	jac, _ := NewMiner(WithFixedK(3), WithJacobiSolver())
	r1, err := def.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := jac.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(r1.Eigenvalues(), r2.Eigenvalues(), 1e-6*(1+r1.Eigenvalues()[0])) {
		t.Errorf("eigenvalues differ: %v vs %v", r1.Eigenvalues(), r2.Eigenvalues())
	}
	for i := 0; i < 3; i++ {
		if !matrix.EqualApproxVec(r1.Rule(i), r2.Rule(i), 1e-6) {
			t.Errorf("rule %d differs: %v vs %v", i, r1.Rule(i), r2.Rule(i))
		}
	}
}

// errSource fails after two rows, exercising the error path of Mine.
type errSource struct{ n int }

func (s *errSource) Width() int { return 2 }
func (s *errSource) Next() ([]float64, error) {
	if s.n >= 2 {
		return nil, errors.New("disk on fire")
	}
	s.n++
	return []float64{1, 2}, nil
}

func TestMinerSourceError(t *testing.T) {
	miner, _ := NewMiner()
	_, err := miner.Mine(&errSource{})
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Errorf("err = %v, want wrapped source error", err)
	}
}

func TestMatrixSource(t *testing.T) {
	m := paperFig1()
	src := NewMatrixSource(m)
	if src.Width() != 2 {
		t.Fatalf("Width = %d, want 2", src.Width())
	}
	count := 0
	for {
		row, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(row) != 2 {
			t.Fatalf("row %d has width %d", count, len(row))
		}
		count++
	}
	if count != 5 {
		t.Errorf("iterated %d rows, want 5", count)
	}
}

func TestMiningStreamEqualsInMemory(t *testing.T) {
	// The single-pass streaming path and the in-memory convenience must
	// produce identical rules.
	x := randomCorrelated(rand.New(rand.NewSource(5)), 80, 4)
	miner, _ := NewMiner()
	r1, err := miner.Mine(NewMatrixSource(x))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := miner.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	if r1.K() != r2.K() {
		t.Fatalf("K differs: %d vs %d", r1.K(), r2.K())
	}
	if !matrix.EqualApproxVec(r1.Means(), r2.Means(), 0) {
		t.Error("means differ")
	}
	if !matrix.EqualApprox(r1.Vectors(), r2.Vectors(), 0) {
		t.Error("vectors differ")
	}
}

func TestRulesAccessors(t *testing.T) {
	miner, _ := NewMiner(WithFixedK(2), WithAttrNames([]string{"bread", "butter"}))
	rules, err := miner.MineMatrix(paperFig1())
	if err != nil {
		t.Fatal(err)
	}
	if rules.M() != 2 {
		t.Errorf("M = %d, want 2", rules.M())
	}
	if got := rules.AttrName(0); got != "bread" {
		t.Errorf("AttrName(0) = %q, want bread", got)
	}
	if got := rules.AttrName(9); got != "attr9" {
		t.Errorf("AttrName(9) = %q, want attr9 fallback", got)
	}
	names := rules.AttrNames()
	names[0] = "mutated"
	if rules.AttrName(0) != "bread" {
		t.Error("AttrNames must return a copy")
	}
	mu := rules.Means()
	mu[0] = -1
	if rules.Means()[0] == -1 {
		t.Error("Means must return a copy")
	}
	ev := rules.Eigenvalues()
	if len(ev) != 2 || ev[0] < ev[1] {
		t.Errorf("Eigenvalues = %v, want 2 descending values", ev)
	}
	ev[0] = -1
	if rules.Eigenvalues()[0] == -1 {
		t.Error("Eigenvalues must return a copy")
	}
	if rules.TotalVariance() <= 0 {
		t.Error("TotalVariance must be positive")
	}
	s := rules.String()
	if !strings.Contains(s, "bread") || !strings.Contains(s, "RR1") {
		t.Errorf("String() = %q, want table with attribute names and rule headers", s)
	}
}

func TestRulePanicsOutOfRange(t *testing.T) {
	miner, _ := NewMiner(WithFixedK(1))
	rules, err := miner.MineMatrix(paperFig1())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Rule(5) must panic")
		}
	}()
	rules.Rule(5)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	miner, _ := NewMiner(WithFixedK(2), WithAttrNames([]string{"bread", "butter"}))
	rules, err := miner.MineMatrix(paperFig1())
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := rules.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.K() != rules.K() || got.M() != rules.M() || got.TrainedRows() != rules.TrainedRows() {
		t.Error("shape metadata did not round-trip")
	}
	if !matrix.EqualApproxVec(got.Means(), rules.Means(), 1e-15) {
		t.Error("means did not round-trip")
	}
	if !matrix.EqualApprox(got.Vectors(), rules.Vectors(), 1e-15) {
		t.Error("vectors did not round-trip")
	}
	if got.AttrName(1) != "butter" {
		t.Error("attribute names did not round-trip")
	}
	if math.Abs(got.TotalVariance()-rules.TotalVariance()) > 1e-15 {
		t.Error("total variance did not round-trip")
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	cases := map[string]string{
		"not json":       "{",
		"ragged vectors": `{"means":[0,0],"eigenvalues":[1],"vectors":[[1],[1,2]]}`,
		"means mismatch": `{"means":[0,0,0],"eigenvalues":[1],"vectors":[[1],[1]]}`,
		"eigen mismatch": `{"means":[0,0],"eigenvalues":[1,2],"vectors":[[1],[1]]}`,
		"attrs mismatch": `{"attrs":["a"],"means":[0,0],"eigenvalues":[1],"vectors":[[1],[1]]}`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(in)); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

// randomCorrelated builds n rows of m correlated attributes: a couple of
// latent factors plus noise, so several eigenvalues are meaningful.
func randomCorrelated(rng *rand.Rand, n, m int) *matrix.Dense {
	x := matrix.NewDense(n, m)
	for i := 0; i < n; i++ {
		f1, f2 := rng.NormFloat64()*5, rng.NormFloat64()*2
		row := x.RawRow(i)
		for j := range row {
			row[j] = f1*float64(j+1) + f2*float64(m-j) + rng.NormFloat64()*0.5
		}
	}
	return x
}

func TestRulesStringUnnamed(t *testing.T) {
	miner, _ := NewMiner(WithFixedK(1))
	rules, err := miner.MineMatrix(paperFig1())
	if err != nil {
		t.Fatal(err)
	}
	s := rules.String()
	if !strings.Contains(s, "attr0") || !strings.Contains(s, "attr1") {
		t.Errorf("unnamed rules table missing fallback names:\n%s", s)
	}
}

func TestRatioPanicsOutOfRange(t *testing.T) {
	miner, _ := NewMiner(WithFixedK(1))
	rules, err := miner.MineMatrix(paperFig1())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Ratio with bad attribute must panic")
		}
	}()
	rules.Ratio(0, 0, 9)
}
