package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"ratiorules/internal/matrix"
)

// GEOptions tunes the fast GE₁ evaluation path.
type GEOptions struct {
	// Workers caps the row-parallelism; <= 0 selects GOMAXPROCS.
	Workers int
}

// GE1With computes the same single-hole guessing error as GE1 but built
// for the republish gate, where it is evaluated against a full holdout
// reservoir on every candidate model (~97% of republish latency in
// BENCH_PR5). Two changes make it fast without changing the definition:
//
//   - For a *Rules estimator only M distinct hole patterns exist, so the
//     M single-hole solver plans are factorized once up front (through
//     the rule set's plan cache, shared with the batch engine) and every
//     row reuses them with an O(M·k) apply — where GE1's per-cell
//     FillRow refactorizes V′ for every one of the N·M cells.
//   - Rows are partitioned across opts.Workers goroutines, each with its
//     own gather scratch, with the per-worker partial sums combined at
//     the end.
//
// With Workers == 1 the result is bit-identical to GE1; with more
// workers it differs only in float summation order. Estimators other
// than *Rules fall back to plain GE1.
func GE1With(est Estimator, test *matrix.Dense, opts GEOptions) (float64, error) {
	r, ok := est.(*Rules)
	if !ok {
		return GE1(est, test)
	}
	n, m := test.Dims()
	if m != r.M() {
		return 0, fmt.Errorf("core: GE1 on %d-wide matrix with %d-wide estimator: %w",
			m, r.M(), ErrWidth)
	}
	if n == 0 || m == 0 {
		return 0, nil
	}

	plans, err := r.singleHolePlans()
	if err != nil {
		return 0, err
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	sums := make([]float64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			sums[w], errs[w] = r.ge1Rows(test, plans, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, werr := range errs {
		if werr != nil {
			return 0, werr
		}
	}
	var sum float64
	for _, s := range sums {
		sum += s
	}
	ge := math.Sqrt(sum / float64(n*m))
	recordGE("ge1", 1, ge)
	return ge, nil
}

// singleHolePlans returns the M single-hole fill plans, fetching each
// from the rule set's plan cache or factorizing and caching it once.
func (r *Rules) singleHolePlans() ([]*fillPlan, error) {
	m := r.M()
	plans := make([]*fillPlan, m)
	hole := make([]int, 1)
	for j := 0; j < m; j++ {
		hole[0] = j
		key := patternKey(hole, SolvePseudoInverse)
		if p, ok := r.plans.get(key); ok {
			fillCacheHits.Inc()
			plans[j] = p
			continue
		}
		fillCacheMisses.Inc()
		p, err := r.buildPlan([]int{j}, SolvePseudoInverse)
		if err != nil {
			return nil, fmt.Errorf("core: GE1 plan for hole %d: %w", j, err)
		}
		r.plans.put(key, p)
		plans[j] = p
	}
	return plans, nil
}

// ge1Rows accumulates the squared single-hole reconstruction errors of
// test rows [lo, hi) against the pre-built plans. It inlines the hole's
// half of applyPlan — gather the centered knowns, solve, expand only
// the hole — so the inner loop touches one scratch buffer and no
// per-cell allocations beyond the solver's result.
func (r *Rules) ge1Rows(test *matrix.Dense, plans []*fillPlan, lo, hi int) (float64, error) {
	m := r.M()
	bPrime := make([]float64, m)
	var sum float64
	for i := lo; i < hi; i++ {
		row := test.RawRow(i)
		for j := 0; j < m; j++ {
			p := plans[j]
			var filled float64
			if p.degenerate {
				filled = r.means[j]
			} else {
				ki := 0
				for l, v := range row {
					if l == j {
						continue
					}
					bPrime[ki] = v - r.means[l]
					ki++
				}
				x, err := p.solve(bPrime[:p.known])
				if err != nil {
					return 0, fmt.Errorf("core: GE1 at cell (%d,%d): %w", i, j, err)
				}
				var s float64
				for c := 0; c < p.kEff; c++ {
					s += r.v.At(j, c) * x[c]
				}
				filled = s + r.means[j]
			}
			d := filled - row[j]
			sum += d * d
		}
	}
	return sum, nil
}
