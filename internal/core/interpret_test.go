package core

import (
	"math/rand"
	"strings"
	"testing"
)

func TestInterpretGroupsBySign(t *testing.T) {
	// Two factors: attr0+attr1 move together (volume); attr2 and attr3
	// trade off against each other (contrast).
	rng := rand.New(rand.NewSource(95))
	rows := make([][]float64, 500)
	for i := range rows {
		vol := rng.NormFloat64() * 10
		contrast := rng.NormFloat64() * 3
		rows[i] = []float64{
			vol + 0.05*rng.NormFloat64(),
			2*vol + 0.05*rng.NormFloat64(),
			contrast + 0.05*rng.NormFloat64(),
			-contrast + 0.05*rng.NormFloat64(),
		}
	}
	x := mustMatrix(t, rows)
	miner, err := NewMiner(WithFixedK(2), WithAttrNames([]string{"bread", "milk", "tea", "coffee"}))
	if err != nil {
		t.Fatal(err)
	}
	rules, err := miner.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	readings := rules.Interpret(0)
	if len(readings) != 2 {
		t.Fatalf("got %d readings, want 2", len(readings))
	}

	// RR1: volume — bread and milk positive, milk strongest.
	rr1 := readings[0]
	if len(rr1.Positive) < 2 || len(rr1.Negative) != 0 {
		t.Fatalf("RR1 = %+v, want two positive attrs, no negatives", rr1)
	}
	if rr1.Positive[0].Name != "milk" || rr1.Positive[1].Name != "bread" {
		t.Errorf("RR1 positives = %v, want milk then bread", rr1.Positive)
	}
	if rr1.EnergyShare < 0.5 {
		t.Errorf("RR1 energy share = %v, want dominant", rr1.EnergyShare)
	}

	// RR2: contrast — tea against coffee (sign orientation may flip which
	// side is positive).
	rr2 := readings[1]
	if len(rr2.Positive) != 1 || len(rr2.Negative) != 1 {
		t.Fatalf("RR2 = %+v, want one attr per side", rr2)
	}
	got := map[string]bool{rr2.Positive[0].Name: true, rr2.Negative[0].Name: true}
	if !got["tea"] || !got["coffee"] {
		t.Errorf("RR2 sides = %v vs %v, want tea and coffee", rr2.Positive, rr2.Negative)
	}

	s := rr2.String()
	if !strings.Contains(s, "AGAINST") {
		t.Errorf("contrast rendering = %q, want AGAINST marker", s)
	}
	if !strings.Contains(readings[0].String(), "RR1") {
		t.Error("RR1 rendering missing label")
	}
}

func TestInterpretThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	x := planeData(rng, 200, 5, 2)
	rules := mineK(t, x, 2)
	// Threshold 1.0 keeps only the single largest coefficient per rule.
	for _, rd := range rules.Interpret(1.0) {
		if len(rd.Positive)+len(rd.Negative) != 1 {
			t.Errorf("RR%d with threshold 1.0 kept %d attrs, want 1",
				rd.Index+1, len(rd.Positive)+len(rd.Negative))
		}
	}
	// Tiny threshold keeps everything non-zero.
	for _, rd := range rules.Interpret(1e-12) {
		if len(rd.Positive)+len(rd.Negative) != 5 {
			t.Errorf("RR%d with tiny threshold kept %d attrs, want 5",
				rd.Index+1, len(rd.Positive)+len(rd.Negative))
		}
	}
}

func TestInterpretZeroRules(t *testing.T) {
	x := paperFig1()
	rules := mineK(t, x, 0)
	if got := rules.Interpret(0); len(got) != 0 {
		t.Errorf("k=0 readings = %v, want none", got)
	}
}

func TestRuleReadingEmptyString(t *testing.T) {
	rd := RuleReading{Index: 0}
	if !strings.Contains(rd.String(), "no significant") {
		t.Errorf("empty reading = %q", rd.String())
	}
}
