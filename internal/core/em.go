package core

import (
	"fmt"
	"math"

	"ratiorules/internal/matrix"
)

// EMConfig controls MineWithHoles.
type EMConfig struct {
	// MaxRounds caps the fill→re-mine iterations. Zero selects 20.
	MaxRounds int
	// Tol stops iterating when the filled cells move less than Tol
	// relative to the data scale between rounds. Zero selects 1e-6.
	Tol float64
}

// EMResult reports the iterative mining outcome.
type EMResult struct {
	Rules *Rules
	// Completed is the input matrix with every hole replaced by its final
	// reconstruction.
	Completed *matrix.Dense
	// Rounds is the number of iterations performed.
	Rounds int
	// Converged reports whether the fill stabilized before MaxRounds.
	Converged bool
}

// MineWithHoles mines Ratio Rules directly from a matrix containing
// Hole-marked cells, in the expectation-maximization style of PCA with
// missing data: holes start at the column means, rules are mined from the
// completed matrix, the holes are re-filled from the rules, and the loop
// repeats until the filled values stabilize.
//
// This lifts a real limitation of the paper's pipeline: the single-pass
// algorithm needs complete rows, so a dataset where most rows have at
// least one hole would leave almost nothing to train on. Rows that are
// entirely holes contribute nothing and simply receive the means.
func (m *Miner) MineWithHoles(x *matrix.Dense, cfg EMConfig) (*EMResult, error) {
	n, cols := x.Dims()
	if n < 2 {
		return nil, fmt.Errorf("core: mining needs at least 2 rows, got %d", n)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 20
	}
	tol := cfg.Tol
	if tol <= 0 {
		tol = 1e-6
	}

	// Locate the holes and seed them with the per-column mean of the
	// observed cells.
	type cell struct{ i, j int }
	var holes []cell
	sums := make([]float64, cols)
	counts := make([]int, cols)
	work := x.Clone()
	for i := 0; i < n; i++ {
		row := work.RawRow(i)
		for j, v := range row {
			if IsHole(v) {
				holes = append(holes, cell{i, j})
				continue
			}
			sums[j] += v
			counts[j]++
		}
	}
	for j := range sums {
		if counts[j] == 0 {
			return nil, fmt.Errorf("core: column %d has no observed values: %w", j, ErrBadHole)
		}
	}
	seed := make([]float64, cols)
	for j := range seed {
		seed[j] = sums[j] / float64(counts[j])
	}
	for _, c := range holes {
		work.Set(c.i, c.j, seed[c.j])
	}

	// Data scale for the convergence test.
	scale := 1 + work.MaxAbs()

	out := &EMResult{Completed: work}
	row := make([]float64, cols)
	var rowHoles []int
	for round := 1; round <= maxRounds; round++ {
		out.Rounds = round
		rules, err := m.MineMatrix(work)
		if err != nil {
			return nil, fmt.Errorf("core: EM round %d: %w", round, err)
		}
		out.Rules = rules
		if len(holes) == 0 {
			out.Converged = true
			break
		}
		// Re-fill every hole from the fresh rules, tracking movement.
		var maxMove float64
		prev := -1
		for idx := 0; idx <= len(holes); idx++ {
			// Flush the previous row's fills when the row changes.
			if idx == len(holes) || (prev >= 0 && holes[idx].i != prev) {
				filled, err := rules.FillRow(row, rowHoles)
				if err != nil {
					return nil, fmt.Errorf("core: EM round %d row %d: %w", round, prev, err)
				}
				for _, j := range rowHoles {
					if d := math.Abs(filled[j] - work.At(prev, j)); d > maxMove {
						maxMove = d
					}
					work.Set(prev, j, filled[j])
				}
				rowHoles = rowHoles[:0]
			}
			if idx == len(holes) {
				break
			}
			c := holes[idx]
			if c.i != prev {
				copy(row, work.RawRow(c.i))
				prev = c.i
			}
			rowHoles = append(rowHoles, c.j)
		}
		if maxMove <= tol*scale {
			out.Converged = true
			break
		}
	}
	return out, nil
}
