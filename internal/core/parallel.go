package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"ratiorules/internal/obs"
	"ratiorules/internal/stats"
)

// MineSharded mines rules from several row shards concurrently: one
// goroutine accumulates the single-pass covariance sums per shard, the
// partial accumulators are merged exactly (plain additions), and a single
// eigensolve finishes the job. The result is bit-for-bit the same rules
// the sequential Mine would produce on the concatenated shards, because
// the paper's Fig. 2(a) sums are order-independent up to floating-point
// re-association.
//
// All shards must report the same Width. An error in any shard aborts the
// whole mine.
func (m *Miner) MineSharded(shards []RowSource) (*Rules, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("core: MineSharded with no shards: %w", ErrWidth)
	}
	width := shards[0].Width()
	if width <= 0 {
		return nil, fmt.Errorf("core: shard width %d: %w", width, ErrWidth)
	}
	for i, s := range shards {
		if s.Width() != width {
			return nil, fmt.Errorf("core: shard %d width %d, want %d: %w",
				i, s.Width(), width, ErrWidth)
		}
	}
	if m.attrs != nil && len(m.attrs) != width {
		return nil, fmt.Errorf("core: %d attribute names for width %d: %w",
			len(m.attrs), width, ErrWidth)
	}

	accs := make([]*stats.CovAccumulator, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	scanTimer := obs.NewTimer(scanPhase)
	for i, shard := range shards {
		wg.Add(1)
		go func(i int, shard RowSource) {
			defer wg.Done()
			defer obs.NewTimer(minerShardSeconds).ObserveDuration()
			acc := stats.NewCovAccumulator(width)
			for {
				row, err := shard.Next()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					errs[i] = fmt.Errorf("core: shard %d: %w", i, err)
					return
				}
				if err := acc.Push(row); err != nil {
					errs[i] = fmt.Errorf("core: shard %d row %d: %w", i, acc.Count(), err)
					return
				}
			}
			accs[i] = acc
		}(i, shard)
	}
	wg.Wait()
	scanElapsed := scanTimer.ObserveDuration()
	for _, err := range errs {
		if err != nil {
			recordMine(0, width, 0, err)
			return nil, err
		}
	}

	mergeTimer := obs.NewTimer(mergePhase)
	total := accs[0]
	for _, acc := range accs[1:] {
		if err := total.Merge(acc); err != nil {
			recordMine(0, width, 0, err)
			return nil, fmt.Errorf("core: merging shard accumulators: %w", err)
		}
	}
	mergeTimer.ObserveDuration()
	if total.Count() < 2 {
		err := fmt.Errorf("core: mining needs at least 2 rows, got %d", total.Count())
		recordMine(0, width, 0, err)
		return nil, err
	}
	covTimer := obs.NewTimer(covariancePhase)
	scatter, err := total.Scatter()
	if err != nil {
		recordMine(0, width, 0, err)
		return nil, fmt.Errorf("core: building covariance: %w", err)
	}
	means, err := total.Means()
	covTimer.ObserveDuration()
	if err != nil {
		recordMine(0, width, 0, err)
		return nil, fmt.Errorf("core: computing column averages: %w", err)
	}
	rules, err := m.rulesFromScatter(context.Background(), scatter, means, total.Count())
	recordMine(total.Count(), width, scanElapsed, err)
	return rules, err
}
