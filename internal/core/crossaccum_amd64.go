//go:build amd64

package core

// The batched covariance fold and the all-finite scan have AVX2/FMA
// bodies on amd64 (crossaccum_amd64.s); both fall back to the portable
// Go loops when the CPU (or the OS's saved-register state) predates
// AVX2. Feature detection runs once at init through raw CPUID/XGETBV —
// the stdlib does not export its internal/cpu flags and this package
// takes no third-party dependencies.

// useAVX2 gates the assembly kernels: AVX2 + FMA present and the OS
// saves the full YMM state across context switches.
var useAVX2 = cpuHasAVX2FMA()

// crossAccumAVX folds n rows (flat, row-major, width m) into the upper
// triangle of cross (m×m row-major) with fused multiply-adds.
//
//go:noescape
func crossAccumAVX(cross *float64, flat *float64, n, m int)

// allFiniteAVX reports whether every value is finite, vectorizing the
// v·0 ≠ 0 NaN/Inf test.
//
//go:noescape
func allFiniteAVX(flat *float64, n int) bool

// cpuidRaw executes CPUID for (leaf, subleaf).
func cpuidRaw(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended-state mask.
func xgetbv0() uint64

// cpuHasAVX2FMA checks FMA (leaf 1 ECX bit 12), OSXSAVE (leaf 1 ECX bit
// 27), AVX2 (leaf 7 EBX bit 5) and that XCR0 shows the OS saving both
// XMM and YMM state (bits 1 and 2).
func cpuHasAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuidRaw(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidRaw(1, 0)
	const fma, osxsave = 1 << 12, 1 << 27
	if ecx1&fma == 0 || ecx1&osxsave == 0 {
		return false
	}
	_, ebx7, _, _ := cpuidRaw(7, 0)
	const avx2 = 1 << 5
	if ebx7&avx2 == 0 {
		return false
	}
	const ymmState = 0x6 // XMM + YMM saved by the OS
	return xgetbv0()&ymmState == ymmState
}

// crossAccum dispatches the batched upper-triangle rank-1 update.
func crossAccum(cross, flat []float64, n, m int) {
	if !useAVX2 || n == 0 || m == 0 {
		crossAccumGo(cross, flat, n, m)
		return
	}
	crossAccumAVX(&cross[0], &flat[0], n, m)
}

// allFinite dispatches the NaN/Inf scan.
func allFinite(flat []float64) bool {
	if !useAVX2 || len(flat) == 0 {
		return allFiniteGo(flat)
	}
	return allFiniteAVX(&flat[0], len(flat))
}
