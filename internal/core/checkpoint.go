package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"ratiorules/internal/matrix"
)

// streamCheckpoint is the serialized sufficient statistics of a
// StreamMiner. The mining *options* (cutoff, solver) are reconstruction
// parameters, not data, so they are re-supplied at load time.
type streamCheckpoint struct {
	Version int         `json:"version"`
	Width   int         `json:"width"`
	Decay   float64     `json:"decay"`
	Weight  float64     `json:"weight"`
	Count   int         `json:"count"`
	Sums    []float64   `json:"sums"`
	Cross   [][]float64 `json:"cross"` // upper triangle, row-major per row
}

const checkpointVersion = 1

// Save writes the miner's sufficient statistics as JSON so a long-running
// pipeline can checkpoint and resume exactly: Load followed by the same
// pushes yields the same rules as an uninterrupted run.
func (s *StreamMiner) Save(w io.Writer) error {
	cp := streamCheckpoint{
		Version: checkpointVersion,
		Width:   s.width,
		Decay:   s.decay,
		Weight:  s.weight,
		Count:   s.count,
		Sums:    s.sums,
		Cross:   make([][]float64, s.width),
	}
	for j := 0; j < s.width; j++ {
		cp.Cross[j] = append([]float64(nil), s.cross.RawRow(j)[j:]...)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(cp); err != nil {
		return fmt.Errorf("core: saving stream checkpoint: %w", err)
	}
	return nil
}

// LoadStreamMiner restores a checkpointed stream miner. The mining options
// are re-supplied (they are configuration, not state) and must be valid
// for the checkpoint's width.
func LoadStreamMiner(r io.Reader, opts ...Option) (*StreamMiner, error) {
	var cp streamCheckpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("core: loading stream checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("core: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	if cp.Width <= 0 || len(cp.Sums) != cp.Width || len(cp.Cross) != cp.Width {
		return nil, fmt.Errorf("core: corrupt checkpoint shapes (width %d, %d sums, %d cross rows): %w",
			cp.Width, len(cp.Sums), len(cp.Cross), ErrWidth)
	}
	// Validate every cross row's shape before allocating the width²
	// matrix, so a checkpoint claiming a huge width with truncated rows
	// cannot force an allocation larger than its own payload.
	for j, tail := range cp.Cross {
		if len(tail) != cp.Width-j {
			return nil, fmt.Errorf("core: corrupt checkpoint cross row %d (%d values, want %d): %w",
				j, len(tail), cp.Width-j, ErrWidth)
		}
	}
	if cp.Count < 0 || cp.Weight < 0 || math.IsNaN(cp.Weight) {
		return nil, fmt.Errorf("core: corrupt checkpoint counters (count %d, weight %v)", cp.Count, cp.Weight)
	}
	sm, err := NewStreamMiner(cp.Width, cp.Decay, opts...)
	if err != nil {
		return nil, err
	}
	sm.weight = cp.Weight
	sm.count = cp.Count
	copy(sm.sums, cp.Sums)
	cross := matrix.NewDense(cp.Width, cp.Width)
	for j, tail := range cp.Cross {
		copy(cross.RawRow(j)[j:], tail)
	}
	sm.cross = cross
	return sm, nil
}
