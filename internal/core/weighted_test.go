package core

import (
	"errors"
	"math/rand"
	"testing"

	"ratiorules/internal/matrix"
	"ratiorules/internal/stats"
)

func TestMineWeightedEqualsExpanded(t *testing.T) {
	rng := rand.New(rand.NewSource(160))
	// Distinct basket shapes with multiplicities.
	var weighted []WeightedRow
	var expandedRows [][]float64
	for b := 0; b < 30; b++ {
		v := 1 + rng.Float64()*9
		row := []float64{v, 2 * v, 0.5*v + rng.NormFloat64()*0.1}
		w := 1 + rng.Intn(9)
		weighted = append(weighted, WeightedRow{Row: row, Weight: w})
		for c := 0; c < w; c++ {
			expandedRows = append(expandedRows, row)
		}
	}
	expanded, err := matrix.FromRows(expandedRows)
	if err != nil {
		t.Fatal(err)
	}
	miner, err := NewMiner()
	if err != nil {
		t.Fatal(err)
	}
	want, err := miner.MineMatrix(expanded)
	if err != nil {
		t.Fatal(err)
	}
	got, err := miner.MineWeighted(&WeightedSliceSource{Rows: weighted})
	if err != nil {
		t.Fatal(err)
	}
	if got.TrainedRows() != want.TrainedRows() {
		t.Fatalf("TrainedRows = %d, want %d", got.TrainedRows(), want.TrainedRows())
	}
	if !matrix.EqualApproxVec(got.Means(), want.Means(), 1e-9) {
		t.Error("means differ")
	}
	if !matrix.EqualApproxVec(got.Eigenvalues(), want.Eigenvalues(), 1e-7*(1+want.Eigenvalues()[0])) {
		t.Error("eigenvalues differ")
	}
	for i := 0; i < want.K(); i++ {
		if !matrix.EqualApproxVec(got.Rule(i), want.Rule(i), 1e-8) {
			t.Errorf("rule %d differs", i)
		}
	}
}

func TestMineWeightedValidation(t *testing.T) {
	miner, _ := NewMiner()
	if _, err := miner.MineWeighted(&WeightedSliceSource{}); !errors.Is(err, ErrWidth) {
		t.Errorf("empty source: err = %v, want ErrWidth", err)
	}
	one := &WeightedSliceSource{Rows: []WeightedRow{{Row: []float64{1, 2}, Weight: 1}}}
	if _, err := miner.MineWeighted(one); err == nil {
		t.Error("single weighted row must fail")
	}
	bad := &WeightedSliceSource{Rows: []WeightedRow{{Row: []float64{1, 2}, Weight: 0}}}
	if _, err := miner.MineWeighted(bad); !errors.Is(err, stats.ErrBadValue) {
		t.Errorf("zero weight: err = %v, want ErrBadValue", err)
	}
}

func TestPushWeightedEqualsRepeatedPush(t *testing.T) {
	a := stats.NewCovAccumulator(2)
	b := stats.NewCovAccumulator(2)
	row := []float64{3, -1}
	if err := a.PushWeighted(row, 5); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := b.Push(row); err != nil {
			t.Fatal(err)
		}
	}
	// Need a second distinct row for a defined covariance.
	other := []float64{1, 4}
	if err := a.PushWeighted(other, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := b.Push(other); err != nil {
			t.Fatal(err)
		}
	}
	if a.Count() != b.Count() {
		t.Fatalf("counts %d vs %d", a.Count(), b.Count())
	}
	sa, err := a.Scatter()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Scatter()
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(sa, sb, 1e-9*(1+sb.MaxAbs())) {
		t.Error("weighted scatter differs from repeated pushes")
	}
}
