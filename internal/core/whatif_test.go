package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ratiorules/internal/matrix"
)

// cerealFixture models the paper's Cheerios/milk example: demand for the
// two products is proportional (milk = 1.5 × cheerios), with small noise.
func cerealFixture(rng *rand.Rand, n int) *matrix.Dense {
	x := matrix.NewDense(n, 2)
	for i := 0; i < n; i++ {
		c := 2 + rng.Float64()*6
		x.SetRow(i, []float64{c, 1.5 * c * (1 + rng.NormFloat64()*0.01)})
	}
	return x
}

func TestWhatIfCheeriosDoubling(t *testing.T) {
	// "We expect the demand for Cheerios to double; how much milk should we
	// stock up on?" → milk doubles too.
	rng := rand.New(rand.NewSource(40))
	x := cerealFixture(rng, 300)
	rules := mineK(t, x, 1)

	base := rules.Means() // the typical demand
	doubled, err := rules.WhatIf(Scenario{Given: map[int]float64{0: 2 * base[0]}})
	if err != nil {
		t.Fatal(err)
	}
	wantMilk := 2 * 1.5 * base[0]
	if math.Abs(doubled[1]-wantMilk) > 0.05*wantMilk {
		t.Errorf("milk forecast = %v, want ≈ %v", doubled[1], wantMilk)
	}
	if doubled[0] != 2*base[0] {
		t.Errorf("given attribute changed: %v", doubled[0])
	}
}

func TestForecast(t *testing.T) {
	// "If a customer spends $1 on bread and $2.50 on ham, how much will
	// s/he spend on mayonnaise?" — three correlated products.
	rng := rand.New(rand.NewSource(41))
	x := matrix.NewDense(400, 3)
	for i := 0; i < 400; i++ {
		v := 1 + rng.Float64()*4
		x.SetRow(i, []float64{v, 2.5 * v, 0.5 * v})
	}
	rules := mineK(t, x, 1)
	mayo, err := rules.Forecast(map[int]float64{0: 1, 1: 2.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mayo-0.5) > 0.05 {
		t.Errorf("mayonnaise forecast = %v, want ≈ 0.5", mayo)
	}
}

func TestWhatIfErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := cerealFixture(rng, 50)
	rules := mineK(t, x, 1)
	if _, err := rules.WhatIf(Scenario{}); !errors.Is(err, ErrBadHole) {
		t.Errorf("empty scenario: err = %v, want ErrBadHole", err)
	}
	if _, err := rules.WhatIf(Scenario{Given: map[int]float64{5: 1}}); !errors.Is(err, ErrBadHole) {
		t.Errorf("out-of-range given: err = %v, want ErrBadHole", err)
	}
	if _, err := rules.WhatIf(Scenario{Given: map[int]float64{0: 1, -1: 2}}); !errors.Is(err, ErrBadHole) {
		t.Errorf("negative given: err = %v, want ErrBadHole", err)
	}
}

func TestForecastErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	x := cerealFixture(rng, 50)
	rules := mineK(t, x, 1)
	if _, err := rules.Forecast(map[int]float64{0: 1}, 9); !errors.Is(err, ErrBadHole) {
		t.Errorf("bad target: err = %v, want ErrBadHole", err)
	}
	if _, err := rules.Forecast(map[int]float64{0: 1}, 0); !errors.Is(err, ErrBadHole) {
		t.Errorf("target already given: err = %v, want ErrBadHole", err)
	}
}

func TestProjectTrainingVariance(t *testing.T) {
	// Projecting the training data onto the rules must yield coordinates
	// whose scatter equals the retained eigenvalues.
	rng := rand.New(rand.NewSource(44))
	x := planeData(rng, 150, 5, 2)
	rules := mineK(t, x, 2)
	proj, err := rules.Project(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := proj.Dims()
	if n != 150 {
		t.Fatalf("projected rows = %d, want 150", n)
	}
	ev := rules.Eigenvalues()
	for c := 0; c < 2; c++ {
		col := proj.Col(c)
		var ss float64
		for _, v := range col {
			ss += v * v
		}
		if math.Abs(ss-ev[c]) > 1e-6*(1+ev[c]) {
			t.Errorf("scatter along RR%d = %v, want eigenvalue %v", c+1, ss, ev[c])
		}
	}
}

func TestProjectRowAndReconstructRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	x := planeData(rng, 100, 4, 2)
	rules := mineK(t, x, 2)
	row := x.Row(11)
	coords, err := rules.ProjectRow(row, 2)
	if err != nil {
		t.Fatal(err)
	}
	back, err := rules.Reconstruct(coords)
	if err != nil {
		t.Fatal(err)
	}
	// On-plane rows survive the round trip exactly.
	if !matrix.EqualApproxVec(back, row, 1e-6*(1+matrix.Norm2(row))) {
		t.Errorf("round trip: got %v, want %v", back, row)
	}
}

func TestProjectErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	x := planeData(rng, 50, 4, 2)
	rules := mineK(t, x, 2)
	if _, err := rules.Project(matrix.NewDense(3, 9), 2); !errors.Is(err, ErrWidth) {
		t.Errorf("width: err = %v, want ErrWidth", err)
	}
	if _, err := rules.Project(x, 3); !errors.Is(err, ErrNoRules) {
		t.Errorf("too many dims: err = %v, want ErrNoRules", err)
	}
	if _, err := rules.Project(x, 0); !errors.Is(err, ErrNoRules) {
		t.Errorf("zero dims: err = %v, want ErrNoRules", err)
	}
	if _, err := rules.ProjectRow([]float64{1}, 1); !errors.Is(err, ErrWidth) {
		t.Errorf("row width: err = %v, want ErrWidth", err)
	}
	if _, err := rules.ProjectRow(x.Row(0), 5); !errors.Is(err, ErrNoRules) {
		t.Errorf("row dims: err = %v, want ErrNoRules", err)
	}
	if _, err := rules.Reconstruct([]float64{1, 2, 3}); !errors.Is(err, ErrNoRules) {
		t.Errorf("reconstruct dims: err = %v, want ErrNoRules", err)
	}
}

func TestReconstructMeansAtOrigin(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	x := planeData(rng, 60, 3, 1)
	rules := mineK(t, x, 1)
	got, err := rules.Reconstruct([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(got, rules.Means(), 1e-12) {
		t.Errorf("Reconstruct(0) = %v, want means %v", got, rules.Means())
	}
}
