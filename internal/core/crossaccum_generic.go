//go:build !amd64

package core

// Non-amd64 builds fold batches through the portable loops; the AVX2
// kernels in crossaccum_amd64.s are the only architecture-specific
// bodies.

func crossAccum(cross, flat []float64, n, m int) { crossAccumGo(cross, flat, n, m) }

func allFinite(flat []float64) bool { return allFiniteGo(flat) }
