package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ratiorules/internal/matrix"
)

// outlierFixture builds strongly correlated data with one planted anomaly:
// row `badRow` breaks the correlation at column `badCol`.
func outlierFixture(rng *rand.Rand, n, m, badRow, badCol int) *matrix.Dense {
	x := matrix.NewDense(n, m)
	for i := 0; i < n; i++ {
		v := 5 + rng.NormFloat64()
		row := x.RawRow(i)
		for j := range row {
			row[j] = v*float64(j+1) + rng.NormFloat64()*0.05
		}
	}
	x.Set(badRow, badCol, x.At(badRow, badCol)*4)
	return x
}

func TestCellOutliersFindsPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	x := outlierFixture(rng, 100, 4, 17, 2)
	rules := mineK(t, x, 1)
	got, err := rules.CellOutliers(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no outliers found")
	}
	top := got[0]
	if top.Row != 17 || top.Col != 2 {
		t.Errorf("top outlier at (%d,%d), want (17,2)", top.Row, top.Col)
	}
	if top.Score < 2 {
		t.Errorf("top score = %v, want >= 2", top.Score)
	}
	if math.Abs(top.Actual-x.At(17, 2)) > 1e-12 {
		t.Errorf("Actual = %v, want %v", top.Actual, x.At(17, 2))
	}
	// Predicted should be near the unbroken value (¼ of actual).
	if math.Abs(top.Predicted-top.Actual/4) > 0.3*math.Abs(top.Actual/4) {
		t.Errorf("Predicted = %v, want ≈ %v", top.Predicted, top.Actual/4)
	}
	// Results sorted by descending score.
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Error("outliers not sorted by descending score")
		}
	}
}

func TestCellOutliersDefaultSigma(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := outlierFixture(rng, 80, 3, 5, 1)
	rules := mineK(t, x, 1)
	a, err := rules.CellOutliers(x, 0) // 0 selects the default
	if err != nil {
		t.Fatal(err)
	}
	b, err := rules.CellOutliers(x, DefaultOutlierSigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Errorf("default sigma gave %d outliers, explicit 2.0 gave %d", len(a), len(b))
	}
}

func TestCellOutliersWidthError(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	x := outlierFixture(rng, 50, 3, 5, 1)
	rules := mineK(t, x, 1)
	if _, err := rules.CellOutliers(matrix.NewDense(5, 9), 2); !errors.Is(err, ErrWidth) {
		t.Errorf("err = %v, want ErrWidth", err)
	}
}

func TestRowOutliersFindsPlantedRow(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n, m := 120, 5
	x := matrix.NewDense(n, m)
	for i := 0; i < n; i++ {
		v := rng.NormFloat64() * 3
		row := x.RawRow(i)
		for j := range row {
			row[j] = v*float64(j+1) + rng.NormFloat64()*0.05
		}
	}
	// Row 40 points in a direction orthogonal to the dominant correlation.
	x.SetRow(40, []float64{10, -10, 10, -10, 10})
	rules := mineK(t, x, 1)
	got, err := rules.RowOutliers(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no row outliers found")
	}
	if got[0].Row != 40 {
		t.Errorf("top row outlier = %d, want 40", got[0].Row)
	}
	if got[0].Distance <= 0 || got[0].Score < 3 {
		t.Errorf("outlier stats = %+v", got[0])
	}
}

func TestRowOutliersPerfectDataNone(t *testing.T) {
	// Data exactly on the plane: all distances 0, no outliers, no NaNs.
	rng := rand.New(rand.NewSource(34))
	x := planeData(rng, 60, 4, 2)
	rules := mineK(t, x, 2)
	got, err := rules.RowOutliers(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d outliers on perfect data, want 0", len(got))
	}
}

func TestRowOutliersWidthError(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	x := planeData(rng, 40, 4, 2)
	rules := mineK(t, x, 2)
	if _, err := rules.RowOutliers(matrix.NewDense(5, 9), 2); !errors.Is(err, ErrWidth) {
		t.Errorf("err = %v, want ErrWidth", err)
	}
}
