package core

import (
	"fmt"

	"ratiorules/internal/matrix"
)

// Project maps every row of x onto the first dims Ratio Rules, returning an
// N×dims matrix of RR-space coordinates. This is the paper's visualization
// primitive (Sec. 6.1): projecting onto the first two or three rules
// reveals clusters, linear correlations and outliers (Figs. 9 and 11).
func (r *Rules) Project(x *matrix.Dense, dims int) (*matrix.Dense, error) {
	out, err := r.project(x, dims)
	projectOps.count(err)
	return out, err
}

func (r *Rules) project(x *matrix.Dense, dims int) (*matrix.Dense, error) {
	n, m := x.Dims()
	if m != r.M() {
		return nil, fmt.Errorf("core: projecting %d-wide matrix with %d-wide rules: %w",
			m, r.M(), ErrWidth)
	}
	if dims < 1 || dims > r.K() {
		return nil, fmt.Errorf("core: projection onto %d rules, have %d: %w", dims, r.K(), ErrNoRules)
	}
	out := matrix.NewDense(n, dims)
	for i := 0; i < n; i++ {
		row := x.RawRow(i)
		for c := 0; c < dims; c++ {
			var s float64
			for j := 0; j < m; j++ {
				s += (row[j] - r.means[j]) * r.v.At(j, c)
			}
			out.Set(i, c, s)
		}
	}
	return out, nil
}

// ProjectRow maps a single record onto the first dims rules.
func (r *Rules) ProjectRow(row []float64, dims int) ([]float64, error) {
	if len(row) != r.M() {
		return nil, fmt.Errorf("core: projecting %d-wide record with %d-wide rules: %w",
			len(row), r.M(), ErrWidth)
	}
	if dims < 1 || dims > r.K() {
		return nil, fmt.Errorf("core: projection onto %d rules, have %d: %w", dims, r.K(), ErrNoRules)
	}
	out := make([]float64, dims)
	for c := 0; c < dims; c++ {
		var s float64
		for j := range row {
			s += (row[j] - r.means[j]) * r.v.At(j, c)
		}
		out[c] = s
	}
	return out, nil
}

// Reconstruct maps RR-space coordinates back to attribute space:
// x̂ = V·coords + mean. It is the inverse of ProjectRow restricted to the
// RR-hyperplane.
func (r *Rules) Reconstruct(coords []float64) ([]float64, error) {
	if len(coords) > r.K() {
		return nil, fmt.Errorf("core: reconstructing from %d coords with %d rules: %w",
			len(coords), r.K(), ErrNoRules)
	}
	m := r.M()
	out := make([]float64, m)
	for j := 0; j < m; j++ {
		s := r.means[j]
		for c := range coords {
			s += r.v.At(j, c) * coords[c]
		}
		out[j] = s
	}
	return out, nil
}
