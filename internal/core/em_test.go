package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ratiorules/internal/matrix"
)

func TestMineWithHolesRecoversRules(t *testing.T) {
	// Plane data with 20% of cells missing across 80% of rows: the
	// complete-rows-only strategy would be left with a sliver, while EM
	// mining uses everything.
	rng := rand.New(rand.NewSource(150))
	truth := planeData(rng, 400, 5, 2)
	holed := truth.Clone()
	holes := 0
	var holeCell [2]int
	for i := 0; i < 400; i++ {
		if rng.Float64() < 0.8 {
			row := holed.RawRow(i)
			for j := range row {
				if rng.Float64() < 0.2 {
					row[j] = Hole
					holeCell = [2]int{i, j}
					holes++
				}
			}
		}
	}
	miner, err := NewMiner(WithFixedK(2))
	if err != nil {
		t.Fatal(err)
	}
	want, err := miner.MineMatrix(truth)
	if err != nil {
		t.Fatal(err)
	}
	res, err := miner.MineWithHoles(holed, EMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("EM did not converge in %d rounds", res.Rounds)
	}
	// The mined rules approximate the complete-data rules.
	for i := 0; i < 2; i++ {
		dot := math.Abs(matrix.Dot(res.Rules.Rule(i), want.Rule(i)))
		if dot < 0.99 {
			t.Errorf("rule %d alignment |cos| = %v, want >= 0.99", i, dot)
		}
	}
	// The completed matrix approximates the truth at the holes.
	var sq float64
	cnt := 0
	for i := 0; i < 400; i++ {
		for j := 0; j < 5; j++ {
			if IsHole(holed.At(i, j)) {
				d := res.Completed.At(i, j) - truth.At(i, j)
				sq += d * d
				cnt++
			}
		}
	}
	rms := math.Sqrt(sq / float64(cnt))
	if rms > 0.05*(1+truth.MaxAbs()) {
		t.Errorf("hole reconstruction RMS = %v over %d holes", rms, cnt)
	}
	// Input must keep its holes (non-mutation is covered in detail by
	// TestMineWithHolesInputPreserved).
	if !IsHole(holed.At(holeCell[0], holeCell[1])) {
		t.Error("input hole was overwritten")
	}
}

func TestMineWithHolesNoHolesEqualsPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	x := randomCorrelated(rng, 120, 4)
	miner, err := NewMiner()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := miner.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	res, err := miner.MineWithHoles(x, EMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 || !res.Converged {
		t.Errorf("hole-free input: rounds=%d converged=%v, want 1/true", res.Rounds, res.Converged)
	}
	if !matrix.EqualApproxVec(res.Rules.Eigenvalues(), plain.Eigenvalues(), 1e-12) {
		t.Error("hole-free EM differs from plain mining")
	}
}

func TestMineWithHolesBeatsCompleteRowsOnly(t *testing.T) {
	// When nearly every row has a hole, mining only the complete rows
	// starves; EM mining stays accurate.
	rng := rand.New(rand.NewSource(152))
	truth := planeData(rng, 300, 4, 1)
	holed := truth.Clone()
	var completeRows []int
	for i := 0; i < 300; i++ {
		if i%20 == 0 {
			completeRows = append(completeRows, i)
			continue // leave ~15 rows intact
		}
		holed.Set(i, rng.Intn(4), Hole)
	}
	miner, err := NewMiner(WithFixedK(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := miner.MineMatrix(truth)
	if err != nil {
		t.Fatal(err)
	}
	res, err := miner.MineWithHoles(holed, EMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	emAlign := math.Abs(matrix.Dot(res.Rules.Rule(0), want.Rule(0)))
	if emAlign < 0.999 {
		t.Errorf("EM rule alignment = %v, want >= 0.999", emAlign)
	}
	// Not a strict comparison (complete rows are unbiased here), just a
	// sanity check that the starved model exists and EM used 20x the rows.
	if len(completeRows) >= 30 {
		t.Fatalf("fixture broken: %d complete rows", len(completeRows))
	}
	if res.Rules.TrainedRows() != 300 {
		t.Errorf("EM trained on %d rows, want 300", res.Rules.TrainedRows())
	}
}

func TestMineWithHolesErrors(t *testing.T) {
	miner, err := NewMiner()
	if err != nil {
		t.Fatal(err)
	}
	one := matrix.MustFromRows([][]float64{{1, 2}})
	if _, err := miner.MineWithHoles(one, EMConfig{}); err == nil {
		t.Error("single row must fail")
	}
	// A column with no observed values cannot be seeded.
	blind := matrix.MustFromRows([][]float64{{1, Hole}, {2, Hole}, {3, Hole}})
	if _, err := miner.MineWithHoles(blind, EMConfig{}); !errors.Is(err, ErrBadHole) {
		t.Errorf("err = %v, want ErrBadHole", err)
	}
}

func TestMineWithHolesInputPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(153))
	x := planeData(rng, 60, 3, 1)
	x.Set(5, 1, Hole)
	snapshot := x.Clone()
	miner, err := NewMiner()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := miner.MineWithHoles(x, EMConfig{}); err != nil {
		t.Fatal(err)
	}
	n, m := x.Dims()
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			a, b := x.At(i, j), snapshot.At(i, j)
			if IsHole(b) {
				if !IsHole(a) {
					t.Fatalf("input hole (%d,%d) was overwritten", i, j)
				}
				continue
			}
			if a != b {
				t.Fatalf("input cell (%d,%d) changed", i, j)
			}
		}
	}
}
