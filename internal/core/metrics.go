package core

import (
	"strconv"
	"time"

	"ratiorules/internal/obs"
)

// Mining and query metrics, recorded into the process-wide obs
// registry (scraped by rrserve's GET /metrics, snapshot by rrbench
// -json). Phase names follow the paper's Fig. 2 pipeline:
//
//	scan        single-pass row ingest + covariance accumulation
//	covariance  finalizing the scatter matrix from the running sums
//	merge       combining per-shard accumulators (MineSharded only)
//	eigensolve  the eigensystem of the scatter matrix
//
// rr_ops_total counts public query operations (fill, forecast, whatif,
// outliers, project) with result="ok"|"error". The guessing-error
// harness (GE1/GEh) drives fills through the Estimator interface, so
// evaluation runs inflate the fill counters by design — they really
// are fill operations.
var (
	minerPhaseSeconds = obs.Default().HistogramVec("rr_miner_phase_seconds",
		"Wall-clock seconds per mining phase.", obs.DefBuckets, "phase")
	minerShardSeconds = obs.Default().Histogram("rr_miner_shard_seconds",
		"Per-shard scan seconds in MineSharded.", obs.DefBuckets)
	minerRowsTotal = obs.Default().Counter("rr_miner_rows_total",
		"Rows scanned across all mining runs.")
	minerCellsTotal = obs.Default().Counter("rr_miner_cells_total",
		"Cells (rows x attributes) scanned across all mining runs.")
	minerRowsPerSec = obs.Default().Gauge("rr_miner_rows_per_second",
		"Scan throughput of the most recent mining run.")
	minerCellsPerSec = obs.Default().Gauge("rr_miner_cells_per_second",
		"Cell throughput of the most recent mining run.")
	minerMinesTotal = obs.Default().CounterVec("rr_miner_mines_total",
		"Completed mining runs by result.", "result")
	minerRulesRetained = obs.Default().Gauge("rr_miner_rules_retained",
		"Rules (k) retained by the most recent mining run.")

	opsTotal = obs.Default().CounterVec("rr_ops_total",
		"Rule query operations by type and result.", "op", "result")

	geGauge = obs.Default().GaugeVec("rr_guessing_error",
		"Most recent guessing error by definition and hole count.", "def", "holes")

	// Hole-pattern solver cache traffic (see fillcache.go): hits reuse a
	// V′ factorization, misses pay the O(M·k²) build, evictions count
	// LRU pressure beyond DefaultFillCacheCap.
	fillCacheHits = obs.Default().Counter("rr_fill_cache_hits_total",
		"Batch fills served from a cached hole-pattern factorization.")
	fillCacheMisses = obs.Default().Counter("rr_fill_cache_misses_total",
		"Batch fills that had to factor V' for a new hole pattern.")
	fillCacheEvictions = obs.Default().Counter("rr_fill_cache_evictions_total",
		"Hole-pattern plans evicted from the LRU cache.")
)

// Phase children and op counters are resolved once so hot paths pay a
// single atomic add, not a map lookup.
var (
	scanPhase       = minerPhaseSeconds.With("scan")
	covariancePhase = minerPhaseSeconds.With("covariance")
	mergePhase      = minerPhaseSeconds.With("merge")
	eigensolvePhase = minerPhaseSeconds.With("eigensolve")

	mineOK  = minerMinesTotal.With("ok")
	mineErr = minerMinesTotal.With("error")

	fillOps     = newOpCounters("fill")
	forecastOps = newOpCounters("forecast")
	whatIfOps   = newOpCounters("whatif")
	outlierOps  = newOpCounters("outliers")
	projectOps  = newOpCounters("project")
)

type opCounters struct {
	ok, err *obs.Counter
}

func newOpCounters(op string) opCounters {
	return opCounters{ok: opsTotal.With(op, "ok"), err: opsTotal.With(op, "error")}
}

// count records one operation outcome.
func (o opCounters) count(err error) {
	if err != nil {
		o.err.Inc()
	} else {
		o.ok.Inc()
	}
}

// recordMine books a completed (or failed) mining run's scan counters
// and throughput gauges.
func recordMine(rows, width int, scanElapsed time.Duration, err error) {
	if err != nil {
		mineErr.Inc()
		return
	}
	mineOK.Inc()
	cells := rows * width
	minerRowsTotal.Add(float64(rows))
	minerCellsTotal.Add(float64(cells))
	minerRowsPerSec.Set(obs.Rate(rows, scanElapsed))
	minerCellsPerSec.Set(obs.Rate(cells, scanElapsed))
}

// recordGE publishes a guessing-error evaluation.
func recordGE(def string, holes int, ge float64) {
	geGauge.With(def, strconv.Itoa(holes)).Set(ge)
}
