package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// batchFixture mines a k-rule model over plane data and returns both.
func batchFixture(t *testing.T, seed int64, n, m, k int) (*Rules, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := planeData(rng, n, m, k)
	rules := mineK(t, x, k)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = x.Row(i)
	}
	return rules, rows
}

// TestBatchFillSliceMatchesSequential checks values and ordering against
// the per-row FillRow loop across a few distinct hole patterns.
func TestBatchFillSliceMatchesSequential(t *testing.T) {
	rules, rows := batchFixture(t, 11, 120, 7, 3)
	patterns := [][]int{{0}, {2, 5}, {1, 3, 6}, {4}}
	holes := make([][]int, len(rows))
	for i := range rows {
		holes[i] = patterns[i%len(patterns)]
	}
	results := rules.BatchFillSlice(rows, holes, BatchOptions{Workers: 4})
	if len(results) != len(rows) {
		t.Fatalf("got %d results for %d rows", len(results), len(rows))
	}
	for i, res := range results {
		if res.Index != i {
			t.Fatalf("result %d carries index %d: ordering broken", i, res.Index)
		}
		if res.Err != nil {
			t.Fatalf("row %d: %v", i, res.Err)
		}
		want, err := rules.FillRow(rows[i], holes[i])
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if math.Abs(want[j]-res.Filled[j]) > 1e-9*(1+math.Abs(want[j])) {
				t.Fatalf("row %d cell %d: batch %g, sequential %g", i, j, res.Filled[j], want[j])
			}
		}
	}
}

// TestBatchFillRowErrors checks one bad row cannot fail the batch and
// that upstream Err passthrough keeps its slot.
func TestBatchFillRowErrors(t *testing.T) {
	rules, rows := batchFixture(t, 12, 10, 5, 2)
	upstream := errors.New("malformed line 3")
	jobs := make(chan FillJob)
	go func() {
		defer close(jobs)
		jobs <- FillJob{Record: rows[0], Holes: []int{1}}
		jobs <- FillJob{Record: rows[1], Holes: []int{99}}        // bad hole index
		jobs <- FillJob{Record: []float64{1, 2}, Holes: []int{0}} // wrong width
		jobs <- FillJob{Err: upstream}                            // upstream decode failure
		jobs <- FillJob{Record: rows[2], Holes: []int{0, 3}}
	}()
	var results []FillResult
	for res := range rules.BatchFill(context.Background(), jobs, BatchOptions{Workers: 3}) {
		results = append(results, res)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results, want 5", len(results))
	}
	if results[0].Err != nil || results[4].Err != nil {
		t.Fatalf("good rows failed: %v, %v", results[0].Err, results[4].Err)
	}
	if !errors.Is(results[1].Err, ErrBadHole) {
		t.Errorf("row 1: got %v, want ErrBadHole", results[1].Err)
	}
	if !errors.Is(results[2].Err, ErrWidth) {
		t.Errorf("row 2: got %v, want ErrWidth", results[2].Err)
	}
	if !errors.Is(results[3].Err, upstream) {
		t.Errorf("row 3: got %v, want upstream error propagated", results[3].Err)
	}
}

// TestBatchFillDerivesHolesFromNaN covers the Holes == nil contract.
func TestBatchFillDerivesHolesFromNaN(t *testing.T) {
	rules, rows := batchFixture(t, 13, 30, 5, 2)
	record := append([]float64(nil), rows[0]...)
	record[2] = Hole
	want, err := rules.FillRecord(append([]float64(nil), record...))
	if err != nil {
		t.Fatal(err)
	}
	results := rules.BatchFillSlice([][]float64{record}, nil, BatchOptions{})
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if math.Abs(results[0].Filled[2]-want[2]) > 1e-9*(1+math.Abs(want[2])) {
		t.Fatalf("NaN-derived fill %g, FillRecord %g", results[0].Filled[2], want[2])
	}
}

// TestBatchForecastSliceMatchesForecast compares the batch path with the
// one-shot Forecast on identical queries.
func TestBatchForecastSliceMatchesForecast(t *testing.T) {
	rules, rows := batchFixture(t, 14, 80, 6, 2)
	queries := make([]ForecastJob, 20)
	for i := range queries {
		row := rows[i]
		queries[i] = ForecastJob{
			Given:  map[int]float64{0: row[0], 1: row[1], 2: row[2]},
			Target: 5,
		}
	}
	queries = append(queries, ForecastJob{Given: map[int]float64{0: 1}, Target: 0}) // target given
	results := rules.BatchForecastSlice(queries, BatchOptions{Workers: 4})
	for i := 0; i < 20; i++ {
		want, err := rules.Forecast(queries[i].Given, queries[i].Target)
		if err != nil {
			t.Fatal(err)
		}
		if res := results[i]; res.Err != nil || math.Abs(res.Value-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("query %d: batch (%g, %v), one-shot %g", i, res.Value, res.Err, want)
		}
	}
	if !errors.Is(results[20].Err, ErrBadHole) {
		t.Errorf("given-target query: got %v, want ErrBadHole", results[20].Err)
	}
}

// TestBatchOutliersSlice plants a gross cell corruption and expects the
// streaming scorer to flag it against the training residual bands.
func TestBatchOutliersSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	x := planeData(rng, 200, 6, 2)
	// Perturb the training data slightly so residual stds are non-zero.
	for i := 0; i < 200; i++ {
		row := x.RawRow(i)
		for j := range row {
			row[j] += 0.05 * rng.NormFloat64()
		}
	}
	rules := mineK(t, x, 2)
	clean := x.Row(0)
	corrupt := x.Row(1)
	corrupt[3] += 500 // gross corruption
	results := rules.BatchOutliersSlice([][]float64{clean, corrupt}, BatchOptions{Workers: 2})
	if results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("unexpected errors: %v, %v", results[0].Err, results[1].Err)
	}
	found := false
	for _, c := range results[1].Outliers {
		if c.Col == 3 && c.Row == 1 {
			found = true
			if c.Actual != corrupt[3] {
				t.Errorf("outlier actual %g, want %g", c.Actual, corrupt[3])
			}
		}
	}
	if !found {
		t.Fatalf("corrupted cell not flagged; outliers: %+v", results[1].Outliers)
	}
}

// TestRowCellOutliersNeedsResiduals covers the legacy-model error.
func TestRowCellOutliersNeedsResiduals(t *testing.T) {
	rules, rows := batchFixture(t, 16, 30, 4, 2)
	legacy := &Rules{
		attrs:         rules.attrs,
		means:         rules.means,
		v:             rules.v,
		eigenvalues:   rules.eigenvalues,
		totalVariance: rules.totalVariance,
		trainedRows:   rules.trainedRows,
		// residStd deliberately nil, as in pre-band serialized models.
	}
	if _, err := legacy.RowCellOutliers(rows[0], 2); !errors.Is(err, ErrNoResiduals) {
		t.Fatalf("got %v, want ErrNoResiduals", err)
	}
}

// TestBatchFillContextCancel checks the pipeline shuts down (and closes
// its output) when the consumer's context dies mid-stream.
func TestBatchFillContextCancel(t *testing.T) {
	rules, rows := batchFixture(t, 17, 10, 5, 2)
	ctx, cancel := context.WithCancel(context.Background())
	jobs := make(chan FillJob)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Produce until the engine stops accepting; the feeder must not
		// block forever after cancellation.
		for i := 0; ; i++ {
			select {
			case jobs <- FillJob{Record: rows[i%len(rows)], Holes: []int{1}}:
			case <-ctx.Done():
				close(jobs)
				return
			}
		}
	}()
	results := rules.BatchFill(ctx, jobs, BatchOptions{Workers: 2})
	for i := 0; i < 5; i++ {
		if res, ok := <-results; !ok || res.Err != nil {
			t.Fatalf("result %d: ok=%v err=%v", i, ok, res.Err)
		}
	}
	cancel()
	for range results {
		// Drain whatever was in flight; the channel must close.
	}
	<-done
}
