package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// RuleReading is the machine-assisted version of the paper's Fig. 10
// interpretation methodology for one rule: the attributes with significant
// positive and negative coefficients, ordered by magnitude, plus the
// variance share the rule carries.
type RuleReading struct {
	// Index is the 0-based rule number (RR1 has Index 0).
	Index int
	// EnergyShare is this rule's eigenvalue as a fraction of total
	// variance.
	EnergyShare float64
	// Positive and Negative list the significant attributes on each side
	// of the contrast, strongest first.
	Positive, Negative []AttrWeight
}

// AttrWeight pairs an attribute with its coefficient in a rule.
type AttrWeight struct {
	Attr   int
	Name   string
	Weight float64
}

// DefaultInterpretThreshold suppresses coefficients whose magnitude is
// below this fraction of the rule's largest coefficient.
const DefaultInterpretThreshold = 0.15

// Interpret applies the Fig. 10 methodology ("display Ratio Rules
// graphically...; observe positive and negative correlations; interpret")
// to every retained rule: it groups each rule's significant attributes by
// sign so a human can name the underlying factor (the paper's "court
// action", "field position", "height"). threshold <= 0 selects
// DefaultInterpretThreshold.
func (r *Rules) Interpret(threshold float64) []RuleReading {
	if threshold <= 0 {
		threshold = DefaultInterpretThreshold
	}
	out := make([]RuleReading, 0, r.K())
	for i := 0; i < r.K(); i++ {
		rule := r.Rule(i)
		var maxAbs float64
		for _, v := range rule {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		reading := RuleReading{Index: i}
		if r.totalVariance > 0 {
			reading.EnergyShare = r.eigenvalues[i] / r.totalVariance
		}
		cut := threshold * maxAbs
		for j, v := range rule {
			if math.Abs(v) < cut || v == 0 {
				continue
			}
			aw := AttrWeight{Attr: j, Name: r.AttrName(j), Weight: v}
			if v > 0 {
				reading.Positive = append(reading.Positive, aw)
			} else {
				reading.Negative = append(reading.Negative, aw)
			}
		}
		byMagnitude := func(s []AttrWeight) {
			sort.SliceStable(s, func(a, b int) bool {
				return math.Abs(s[a].Weight) > math.Abs(s[b].Weight)
			})
		}
		byMagnitude(reading.Positive)
		byMagnitude(reading.Negative)
		out = append(out, reading)
	}
	return out
}

// String renders the reading as the ratio sentence the paper uses, e.g.
// "RR1: minutes played : points ≈ 0.82 : 0.39" with the contrast side
// marked, plus the variance share.
func (rd RuleReading) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "RR%d (%.1f%% of variance): ", rd.Index+1, 100*rd.EnergyShare)
	part := func(s []AttrWeight) string {
		names := make([]string, len(s))
		vals := make([]string, len(s))
		for i, aw := range s {
			names[i] = aw.Name
			vals[i] = fmt.Sprintf("%.2f", math.Abs(aw.Weight))
		}
		return strings.Join(names, " : ") + " ≈ " + strings.Join(vals, " : ")
	}
	switch {
	case len(rd.Positive) > 0 && len(rd.Negative) > 0:
		fmt.Fprintf(&b, "%s  AGAINST  %s", part(rd.Positive), part(rd.Negative))
	case len(rd.Positive) > 0:
		b.WriteString(part(rd.Positive))
	case len(rd.Negative) > 0:
		fmt.Fprintf(&b, "negative: %s", part(rd.Negative))
	default:
		b.WriteString("(no significant coefficients)")
	}
	return b.String()
}
