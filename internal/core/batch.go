package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"ratiorules/internal/obs/trace"
)

// The batch inference engine amortizes the Sec. 4.4 solve across many
// rows: a bounded worker pool drives fillCached, so a 10k-row batch with
// a handful of distinct hole patterns pays each V′ factorization once
// (see fillcache.go) and the per-row cost drops to a gather + mat-vec.
// Results are delivered in input order with bounded buffering, which is
// what lets the HTTP layer stream NDJSON without holding a batch in
// memory.

// ErrNoResiduals is returned by per-row outlier scoring on rule sets
// that predate the residual-deviation bands (legacy serialized models).
var ErrNoResiduals = fmt.Errorf("core: rules carry no residual deviations")

// DefaultBatchWorkers is the worker-pool width used when BatchOptions
// leaves Workers unset: one worker per available CPU.
func DefaultBatchWorkers() int { return runtime.GOMAXPROCS(0) }

// BatchOptions tunes a batch inference run.
type BatchOptions struct {
	// Workers bounds the concurrent solves; <= 0 selects
	// DefaultBatchWorkers().
	Workers int
	// Solver picks the over-specified-case algorithm (fill/forecast).
	Solver FillSolver
	// Sigma is the outlier threshold in residual standard deviations;
	// <= 0 selects DefaultOutlierSigma.
	Sigma float64
}

// workers resolves the effective pool width.
func (o BatchOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return DefaultBatchWorkers()
}

// FillJob is one record of a batch fill.
type FillJob struct {
	// Record holds the row values; cells listed in Holes (or marked with
	// the Hole NaN sentinel when Holes is nil) are reconstructed.
	Record []float64
	// Holes lists the unknown cells. nil derives the holes from Hole
	// markers in Record; an explicit empty slice means "no holes".
	Holes []int
	// Err, when non-nil, marks a row that already failed upstream (e.g.
	// a malformed NDJSON line). The engine propagates it to the result
	// unchanged, keeping the row's slot in the output order.
	Err error
}

// FillResult is the outcome for one batch-fill row.
type FillResult struct {
	// Index is the zero-based position of the row in the input stream.
	Index int
	// Filled is the completed record; nil when Err is set.
	Filled []float64
	// Err is the row-level failure; other rows are unaffected.
	Err error
}

// ForecastJob is one forecasting query of a batch.
type ForecastJob struct {
	// Given maps attribute index to its known value.
	Given map[int]float64
	// Target is the attribute to predict.
	Target int
	// Err marks an upstream-failed row, propagated like FillJob.Err.
	Err error
}

// ForecastResult is the outcome for one batch-forecast row.
type ForecastResult struct {
	Index int
	Value float64
	Err   error
}

// OutlierJob is one record of a batch outlier scan.
type OutlierJob struct {
	Record []float64
	// Err marks an upstream-failed row, propagated like FillJob.Err.
	Err error
}

// OutlierResult is the outcome for one batch-outliers row: the cells of
// that record whose deviation from the reconstruction exceeds the
// threshold, sorted by descending score. Cell Row fields carry the batch
// row index.
type OutlierResult struct {
	Index    int
	Outliers []CellOutlier
	Err      error
}

// BatchFill reconstructs a stream of records on a bounded worker pool,
// reusing cached hole-pattern factorizations. Results arrive on the
// returned channel in input order; in-flight buffering is bounded by the
// pool width, so arbitrarily long streams run in constant memory. The
// channel closes after the last result (or once ctx is cancelled);
// callers must drain it.
func (r *Rules) BatchFill(ctx context.Context, jobs <-chan FillJob, opts BatchOptions) <-chan FillResult {
	return runOrdered(ctx, opts.workers(), jobs, func(ctx context.Context, i int, j FillJob, wait time.Duration) FillResult {
		if j.Err != nil {
			return FillResult{Index: i, Err: j.Err}
		}
		rctx, sp := startRowSpan(ctx, "fill", i, wait)
		holes := j.Holes
		if holes == nil {
			for idx, v := range j.Record {
				if IsHole(v) {
					holes = append(holes, idx)
				}
			}
		}
		filled, err := r.fillCachedCtx(rctx, j.Record, holes, opts.Solver)
		sp.End()
		fillOps.count(err)
		return FillResult{Index: i, Filled: filled, Err: err}
	})
}

// startRowSpan opens the per-row "batch.row" child span, annotated with
// the operation, the row's input index, and how long the job sat in the
// pool queue before a worker picked it up — the span that splits "the
// pool was saturated" from "the solve was slow" in a trace.
func startRowSpan(ctx context.Context, op string, index int, wait time.Duration) (context.Context, *trace.Span) {
	rctx, sp := trace.Start(ctx, "batch.row")
	sp.SetAttr("op", op)
	sp.SetAttr("index", index)
	sp.SetAttr("queue_wait_us", wait.Microseconds())
	return rctx, sp
}

// BatchForecast answers a stream of forecasting queries on a bounded
// worker pool. The hole pattern of a forecast is the complement of its
// given set, so workloads that query the same attributes row after row
// hit the plan cache just like batch fills. Delivery contract as in
// BatchFill.
func (r *Rules) BatchForecast(ctx context.Context, jobs <-chan ForecastJob, opts BatchOptions) <-chan ForecastResult {
	return runOrdered(ctx, opts.workers(), jobs, func(ctx context.Context, i int, j ForecastJob, wait time.Duration) ForecastResult {
		if j.Err != nil {
			return ForecastResult{Index: i, Err: j.Err}
		}
		rctx, sp := startRowSpan(ctx, "forecast", i, wait)
		v, err := r.forecastCached(rctx, j.Given, j.Target, opts.Solver)
		sp.End()
		forecastOps.count(err)
		return ForecastResult{Index: i, Value: v, Err: err}
	})
}

// forecastCached is Forecast through the plan cache.
func (r *Rules) forecastCached(ctx context.Context, given map[int]float64, target int, solver FillSolver) (float64, error) {
	if target < 0 || target >= r.M() {
		return 0, fmt.Errorf("core: forecast target %d out of range [0,%d): %w",
			target, r.M(), ErrBadHole)
	}
	if _, ok := given[target]; ok {
		return 0, fmt.Errorf("core: forecast target %d is already given: %w", target, ErrBadHole)
	}
	row, holes, err := r.scenarioRow(Scenario{Given: given})
	if err != nil {
		return 0, err
	}
	full, err := r.fillCachedCtx(ctx, row, holes, solver)
	if err != nil {
		return 0, err
	}
	return full[target], nil
}

// BatchOutliers scores a stream of records for cell outliers on a
// bounded worker pool. Unlike CellOutliers — which needs two passes over
// a full matrix to estimate residual scales from the batch itself —
// the streaming form scores each cell against the model's training
// residual deviation (ResidualStd), so one row can be judged in
// isolation. Every cell probe is a single-hole pattern, which the plan
// cache reduces to M factorizations for the whole stream. Delivery
// contract as in BatchFill.
func (r *Rules) BatchOutliers(ctx context.Context, jobs <-chan OutlierJob, opts BatchOptions) <-chan OutlierResult {
	sigma := opts.Sigma
	if sigma <= 0 {
		sigma = DefaultOutlierSigma
	}
	return runOrdered(ctx, opts.workers(), jobs, func(ctx context.Context, i int, j OutlierJob, wait time.Duration) OutlierResult {
		if j.Err != nil {
			return OutlierResult{Index: i, Err: j.Err}
		}
		// Cell probes stay span-less on purpose: M single-hole fills per
		// row would blow the per-trace span cap on the first few rows.
		_, sp := startRowSpan(ctx, "outliers", i, wait)
		cells, err := r.rowCellOutliers(j.Record, sigma, i)
		sp.End()
		outlierOps.count(err)
		return OutlierResult{Index: i, Outliers: cells, Err: err}
	})
}

// RowCellOutliers hides each cell of row in turn, reconstructs it from
// the rest, and reports cells deviating by more than sigma training
// residual standard deviations (sigma <= 0 selects
// DefaultOutlierSigma). It requires a model mined with residual bands;
// legacy rule sets return ErrNoResiduals. Reported Row fields are 0.
func (r *Rules) RowCellOutliers(row []float64, sigma float64) ([]CellOutlier, error) {
	if sigma <= 0 {
		sigma = DefaultOutlierSigma
	}
	out, err := r.rowCellOutliers(row, sigma, 0)
	outlierOps.count(err)
	return out, err
}

func (r *Rules) rowCellOutliers(row []float64, sigma float64, rowIdx int) ([]CellOutlier, error) {
	m := r.M()
	if len(row) != m {
		return nil, fmt.Errorf("core: record width %d, want %d: %w", len(row), m, ErrWidth)
	}
	if r.residStd == nil {
		return nil, fmt.Errorf("core: per-row outlier scoring needs residual bands: %w", ErrNoResiduals)
	}
	var out []CellOutlier
	hole := make([]int, 1)
	for j := 0; j < m; j++ {
		std := r.residStd[j]
		if std == 0 {
			continue
		}
		hole[0] = j
		filled, err := r.fillCached(row, hole, SolvePseudoInverse)
		if err != nil {
			return nil, fmt.Errorf("core: reconstructing cell %d: %w", j, err)
		}
		score := math.Abs(row[j]-filled[j]) / std
		if score >= sigma {
			out = append(out, CellOutlier{
				Row:       rowIdx,
				Col:       j,
				Actual:    row[j],
				Predicted: filled[j],
				Score:     score,
			})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out, nil
}

// BatchFillSlice is BatchFill over in-memory slices: rows[i] is filled
// with hole set holes[i] (a nil holes slice, or a nil entry, derives
// holes from NaN markers). Results are indexed like rows.
func (r *Rules) BatchFillSlice(rows [][]float64, holes [][]int, opts BatchOptions) []FillResult {
	jobs := make(chan FillJob)
	go func() {
		defer close(jobs)
		for i, row := range rows {
			var h []int
			if i < len(holes) {
				h = holes[i]
			}
			jobs <- FillJob{Record: row, Holes: h}
		}
	}()
	return collect(r.BatchFill(context.Background(), jobs, opts), len(rows))
}

// BatchForecastSlice is BatchForecast over an in-memory query slice.
func (r *Rules) BatchForecastSlice(queries []ForecastJob, opts BatchOptions) []ForecastResult {
	jobs := make(chan ForecastJob)
	go func() {
		defer close(jobs)
		for _, q := range queries {
			jobs <- q
		}
	}()
	return collect(r.BatchForecast(context.Background(), jobs, opts), len(queries))
}

// BatchOutliersSlice is BatchOutliers over in-memory rows.
func (r *Rules) BatchOutliersSlice(rows [][]float64, opts BatchOptions) []OutlierResult {
	jobs := make(chan OutlierJob)
	go func() {
		defer close(jobs)
		for _, row := range rows {
			jobs <- OutlierJob{Record: row}
		}
	}()
	return collect(r.BatchOutliers(context.Background(), jobs, opts), len(rows))
}

// collect drains a result channel into a slice.
func collect[R any](ch <-chan R, capHint int) []R {
	out := make([]R, 0, capHint)
	for res := range ch {
		out = append(out, res)
	}
	return out
}

// runOrdered fans jobs out to a bounded worker pool and returns results
// in input order. The reorder buffer holds at most 2×workers pending
// results, so a slow consumer back-pressures the feeder instead of
// growing memory. On ctx cancellation the pipeline shuts down promptly;
// the output channel always closes.
//
// Workers invoke fn with the pipeline ctx — which carries the caller's
// trace span, so per-row child spans parent correctly across the
// goroutine hop — and with the time the job spent queued between
// dispatch and pickup.
func runOrdered[J, R any](ctx context.Context, workers int, jobs <-chan J, fn func(ctx context.Context, index int, j J, wait time.Duration) R) <-chan R {
	if workers < 1 {
		workers = 1
	}
	type task struct {
		index    int
		job      J
		enqueued time.Time
		res      chan R
	}
	tasks := make(chan task)
	// pending is the ordered reorder queue: each entry is the (1-buffered)
	// result slot of one dispatched job, enqueued in input order.
	pending := make(chan chan R, 2*workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for t := range tasks {
				t.res <- fn(ctx, t.index, t.job, time.Since(t.enqueued))
			}
		}()
	}
	go func() {
		defer close(pending)
		defer close(tasks)
		i := 0
		for {
			select {
			case j, ok := <-jobs:
				if !ok {
					return
				}
				res := make(chan R, 1)
				select {
				case pending <- res:
				case <-ctx.Done():
					return
				}
				select {
				case tasks <- task{index: i, job: j, enqueued: time.Now(), res: res}:
				case <-ctx.Done():
					// The slot was enqueued but its task never dispatched;
					// the emitter bails out on ctx too, so nobody waits on it.
					return
				}
				i++
			case <-ctx.Done():
				return
			}
		}
	}()
	out := make(chan R)
	go func() {
		defer close(out)
		defer wg.Wait()
		for res := range pending {
			select {
			case rv := <-res:
				select {
				case out <- rv:
				case <-ctx.Done():
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}
