package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// fuzzSeedCheckpoint builds a valid Save output for seeding the fuzzer.
func fuzzSeedCheckpoint(t testing.TB, width int, decay float64, rows int) []byte {
	t.Helper()
	sm, err := NewStreamMiner(width, decay)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(93))
	row := make([]float64, width)
	for i := 0; i < rows; i++ {
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		if err := sm.Push(row); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoadStreamMiner throws mutated checkpoint bytes at the decoder:
// it must never panic, and whenever it accepts an input, the restored
// miner must survive a Save/Load round trip with identical counters and
// identical sufficient statistics (Save is the canonical encoding, so a
// fixed point after one hop proves the state was fully captured).
func FuzzLoadStreamMiner(f *testing.F) {
	valid := fuzzSeedCheckpoint(f, 4, 0, 25)
	decayed := fuzzSeedCheckpoint(f, 3, 0.25, 10)
	f.Add(valid)
	f.Add(decayed)
	f.Add(valid[:len(valid)/2])                                             // truncated mid-document
	f.Add(append([]byte("{"), valid...))                                    // broken framing
	f.Add([]byte(`{}`))                                                     // empty document
	f.Add([]byte(`{"version":1,"width":9999999,"sums":[1],"cross":[[1]]}`)) // absurd width
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x20 // bit flip in the payload
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		sm, err := LoadStreamMiner(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs just need to not panic
		}
		var buf bytes.Buffer
		if err := sm.Save(&buf); err != nil {
			t.Fatalf("Save of accepted checkpoint failed: %v", err)
		}
		again, err := LoadStreamMiner(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-Load of Save output failed: %v", err)
		}
		if again.width != sm.width || again.decay != sm.decay ||
			again.count != sm.count || again.weight != sm.weight {
			t.Fatalf("round trip changed state: %d/%v/%d/%v vs %d/%v/%d/%v",
				again.width, again.decay, again.count, again.weight,
				sm.width, sm.decay, sm.count, sm.weight)
		}
		var second bytes.Buffer
		if err := again.Save(&second); err != nil {
			t.Fatalf("second Save failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), second.Bytes()) {
			t.Fatal("Save output is not a fixed point after one Load hop")
		}
	})
}

// TestLoadStreamMinerRoundTrip pins the happy path the fuzzer asserts
// structurally: a checkpointed miner resumes exactly — same count, and
// identical rules after identical further pushes.
func TestLoadStreamMinerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	x := randomCorrelated(rng, 120, 5)
	orig, err := NewStreamMiner(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := orig.Push(x.RawRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadStreamMiner(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count() != 60 || restored.Width() != 5 || restored.Decay() != 0 {
		t.Fatalf("restored count/width/decay = %d/%d/%v", restored.Count(), restored.Width(), restored.Decay())
	}
	for i := 60; i < 120; i++ {
		for _, sm := range []*StreamMiner{orig, restored} {
			if err := sm.Push(x.RawRow(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	want, err := orig.Rules()
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Rules()
	if err != nil {
		t.Fatal(err)
	}
	assertRulesClose(t, got, want, 1e-12)
}
