package core

import (
	"fmt"
	"math"

	"ratiorules/internal/stats"
)

// PushBatch folds a block of rows — flat, row-major, len(flat) = n·width
// — into the decayed sums in one call, equivalent to Pushing each row in
// order. The batch is validated up front and applied all-or-nothing: on
// a non-finite value or a ragged length nothing is folded and the error
// names the offending row/column, so cluster workers can reject a whole
// wire chunk without partially applying it.
//
// With decay 0 the fold runs through a SIMD rank-1 kernel (AVX2/FMA on
// amd64, a portable blocked loop elsewhere) that updates the upper
// triangle of the cross matrix ~4x faster than the per-row scalar path;
// this is what lets one worker core keep up with a coordinator fanning
// out wire chunks. The kernel fuses each multiply-add, so batched sums
// can differ from sequentially Pushed ones in the last bits (well within
// the 1e-12 equivalence every merge test pins). With decay > 0 each row
// must rescale everything pushed before it, so the fold falls back to
// the exact per-row scalar update.
func (s *StreamMiner) PushBatch(flat []float64) error {
	if s.width <= 0 {
		return fmt.Errorf("core: batch push into zero-width stream: %w", ErrWidth)
	}
	if len(flat)%s.width != 0 {
		return fmt.Errorf("core: batch of %d values is not a multiple of width %d: %w",
			len(flat), s.width, ErrWidth)
	}
	n := len(flat) / s.width
	if n == 0 {
		return nil
	}
	if i := firstNonFinite(flat); i >= 0 {
		return fmt.Errorf("core: batch row %d column %d has value %v: %w",
			i/s.width, i%s.width, flat[i], stats.ErrBadValue)
	}
	if s.decay > 0 {
		for r := 0; r < n; r++ {
			row := flat[r*s.width : (r+1)*s.width]
			if err := s.Push(row); err != nil {
				return err
			}
		}
		return nil
	}
	for r := 0; r < n; r++ {
		row := flat[r*s.width : (r+1)*s.width]
		for j, v := range row {
			s.sums[j] += v
		}
	}
	crossAccum(s.cross.RawData(), flat, n, s.width)
	s.weight += float64(n)
	s.count += n
	return nil
}

// firstNonFinite returns the index of the first NaN or ±Inf in flat, or
// -1 when every value is finite. The hot path is the vectorized
// all-finite scan (v·0 ≠ 0 exactly for NaN and ±Inf); the index hunt
// only runs on the error path.
func firstNonFinite(flat []float64) int {
	if allFinite(flat) {
		return -1
	}
	for i, v := range flat {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return i
		}
	}
	return -1
}

// RowAllFinite reports whether every value of row is finite (no NaN or
// ±Inf) — the same per-value validation Push applies, exposed as a
// vectorized scan so the cluster coordinator can pre-validate rows once
// and ship chunks the workers fold without re-checking.
func RowAllFinite(row []float64) bool { return allFinite(row) }

// crossAccumGo is the portable rank-1 batch update: for every row r of
// the block, cross[j][l] += r[j]·r[l] over the upper triangle. It is
// the non-amd64 body of crossAccum and the differential-testing oracle
// for the assembly kernel.
func crossAccumGo(cross, flat []float64, n, m int) {
	for r := 0; r < n; r++ {
		row := flat[r*m : (r+1)*m]
		for j, v := range row {
			if v == 0 {
				continue
			}
			dst := cross[j*m : (j+1)*m]
			for l := j; l < m; l++ {
				dst[l] += v * row[l]
			}
		}
	}
}

// allFiniteGo is the portable all-finite scan and the oracle for the
// assembly version.
func allFiniteGo(flat []float64) bool {
	for _, v := range flat {
		if v*0 != 0 {
			return false
		}
	}
	return true
}
