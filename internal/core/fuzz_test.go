package core

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzFillRow checks that hole filling never panics, never corrupts known
// cells and always returns finite values, for arbitrary records and hole
// sets against a fixed mined rule set.
func FuzzFillRow(f *testing.F) {
	rng := rand.New(rand.NewSource(99))
	x := planeData(rng, 150, 5, 2)
	miner, err := NewMiner()
	if err != nil {
		f.Fatal(err)
	}
	rules, err := miner.MineMatrix(x)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(1.0, 2.0, 3.0, 4.0, 5.0, uint8(0b00001))
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, uint8(0b11111))
	f.Add(-1e9, 1e9, 0.5, -0.5, 42.0, uint8(0b01010))
	f.Add(1e-300, -1e-300, 1e300, 0.0, 1.0, uint8(0b10000))

	f.Fuzz(func(t *testing.T, a, b, c, d, e float64, mask uint8) {
		row := []float64{a, b, c, d, e}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return // holes are the only sanctioned non-finite input
			}
		}
		var holes []int
		for j := 0; j < 5; j++ {
			if mask&(1<<j) != 0 {
				holes = append(holes, j)
			}
		}
		out, err := rules.FillRow(row, holes)
		if err != nil {
			t.Fatalf("FillRow(%v, %v): %v", row, holes, err)
		}
		isHole := map[int]bool{}
		for _, j := range holes {
			isHole[j] = true
		}
		for j, v := range out {
			if isHole[j] {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("filled cell %d = %v for row %v holes %v", j, v, row, holes)
				}
				continue
			}
			if v != row[j] {
				t.Fatalf("known cell %d changed: %v -> %v", j, row[j], v)
			}
		}
	})
}

// FuzzWhatIf checks the scenario API never panics and respects givens.
func FuzzWhatIf(f *testing.F) {
	rng := rand.New(rand.NewSource(98))
	x := planeData(rng, 100, 4, 2)
	miner, err := NewMiner()
	if err != nil {
		f.Fatal(err)
	}
	rules, err := miner.MineMatrix(x)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(0, 10.0)
	f.Add(3, -5.0)
	f.Add(7, 0.0)
	f.Fuzz(func(t *testing.T, attr int, value float64) {
		if math.IsNaN(value) || math.IsInf(value, 0) {
			return
		}
		out, err := rules.WhatIf(Scenario{Given: map[int]float64{attr: value}})
		if attr < 0 || attr >= 4 {
			if err == nil {
				t.Fatalf("out-of-range attr %d accepted", attr)
			}
			return
		}
		if err != nil {
			t.Fatalf("WhatIf(%d=%v): %v", attr, value, err)
		}
		if out[attr] != value {
			t.Fatalf("given attr changed: %v -> %v", value, out[attr])
		}
	})
}
