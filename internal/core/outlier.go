package core

import (
	"fmt"
	"math"
	"sort"

	"ratiorules/internal/matrix"
	"ratiorules/internal/stats"
)

// CellOutlier is a single matrix cell whose actual value deviates from its
// Ratio-Rules reconstruction by more than the configured number of standard
// deviations (Sec. 4.4: "a value is an outlier when its predicted value is
// significantly different (e.g., two standard deviations away) from the
// existing hidden value").
type CellOutlier struct {
	Row, Col  int
	Actual    float64
	Predicted float64
	// Score is the deviation in units of the column's residual standard
	// deviation (always >= the detection threshold).
	Score float64
}

// DefaultOutlierSigma is the paper's suggested two-standard-deviations
// threshold.
const DefaultOutlierSigma = 2.0

// CellOutliers hides each cell of x in turn, reconstructs it with the
// rules, and reports cells whose residual exceeds sigma standard deviations
// of that column's residual distribution. A sigma of 0 selects
// DefaultOutlierSigma. Results are sorted by descending score.
func (r *Rules) CellOutliers(x *matrix.Dense, sigma float64) ([]CellOutlier, error) {
	out, err := r.cellOutliers(x, sigma)
	outlierOps.count(err)
	return out, err
}

func (r *Rules) cellOutliers(x *matrix.Dense, sigma float64) ([]CellOutlier, error) {
	n, m := x.Dims()
	if m != r.M() {
		return nil, fmt.Errorf("core: outliers on %d-wide matrix with %d-wide rules: %w",
			m, r.M(), ErrWidth)
	}
	if sigma <= 0 {
		sigma = DefaultOutlierSigma
	}
	// First pass: reconstruct every cell and collect residuals per column.
	resid := matrix.NewDense(n, m)
	hole := make([]int, 1)
	for i := 0; i < n; i++ {
		row := x.RawRow(i)
		for j := 0; j < m; j++ {
			hole[0] = j
			filled, err := r.fill(row, hole, SolvePseudoInverse)
			if err != nil {
				return nil, fmt.Errorf("core: reconstructing cell (%d,%d): %w", i, j, err)
			}
			resid.Set(i, j, row[j]-filled[j])
		}
	}
	// Per-column residual scale.
	stds := make([]float64, m)
	for j := 0; j < m; j++ {
		stds[j] = stats.RMS(resid.Col(j))
	}
	var out []CellOutlier
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if stds[j] == 0 {
				continue
			}
			score := math.Abs(resid.At(i, j)) / stds[j]
			if score >= sigma {
				out = append(out, CellOutlier{
					Row:       i,
					Col:       j,
					Actual:    x.At(i, j),
					Predicted: x.At(i, j) - resid.At(i, j),
					Score:     score,
				})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out, nil
}

// RowOutlier is a record whose distance from the RR-hyperplane is
// anomalously large relative to the dataset.
type RowOutlier struct {
	Row int
	// Distance is the Euclidean distance of the (centered) record from the
	// rank-k RR-hyperplane — the reconstruction residual norm.
	Distance float64
	// Score is the distance in units of the dataset's RMS distance.
	Score float64
}

// RowOutliers measures each record's distance from the RR-hyperplane (the
// energy outside the retained rules) and reports rows whose distance
// exceeds sigma times the RMS distance. A sigma of 0 selects
// DefaultOutlierSigma. Results are sorted by descending score.
func (r *Rules) RowOutliers(x *matrix.Dense, sigma float64) ([]RowOutlier, error) {
	out, err := r.rowOutliers(x, sigma)
	outlierOps.count(err)
	return out, err
}

func (r *Rules) rowOutliers(x *matrix.Dense, sigma float64) ([]RowOutlier, error) {
	n, m := x.Dims()
	if m != r.M() {
		return nil, fmt.Errorf("core: outliers on %d-wide matrix with %d-wide rules: %w",
			m, r.M(), ErrWidth)
	}
	if sigma <= 0 {
		sigma = DefaultOutlierSigma
	}
	dists := make([]float64, n)
	norms := make([]float64, n)
	k := r.K()
	centered := make([]float64, m)
	proj := make([]float64, k)
	for i := 0; i < n; i++ {
		row := x.RawRow(i)
		for j := 0; j < m; j++ {
			centered[j] = row[j] - r.means[j]
		}
		norms[i] = matrix.Norm2(centered)
		// Project onto the rules and measure what the projection misses.
		for c := 0; c < k; c++ {
			var s float64
			for j := 0; j < m; j++ {
				s += r.v.At(j, c) * centered[j]
			}
			proj[c] = s
		}
		var d2 float64
		for j := 0; j < m; j++ {
			var recon float64
			for c := 0; c < k; c++ {
				recon += r.v.At(j, c) * proj[c]
			}
			diff := centered[j] - recon
			d2 += diff * diff
		}
		dists[i] = math.Sqrt(d2)
	}
	scale := stats.RMS(dists)
	// When every record sits numerically on the hyperplane, the residuals
	// are pure round-off; normalizing round-off by round-off would
	// manufacture outliers, so require the residual scale to be
	// non-negligible relative to the data's own magnitude.
	if scale <= 1e-9*(1+stats.RMS(norms)) {
		return nil, nil
	}
	var out []RowOutlier
	for i, d := range dists {
		if score := d / scale; score >= sigma {
			out = append(out, RowOutlier{Row: i, Distance: d, Score: score})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out, nil
}
