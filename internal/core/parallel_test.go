package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"ratiorules/internal/matrix"
)

func TestMineShardedEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	x := randomCorrelated(rng, 400, 6)
	miner, err := NewMiner()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := miner.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	// Shard into 4 uneven pieces.
	bounds := []int{0, 83, 200, 311, 400}
	shards := make([]RowSource, 4)
	for i := 0; i < 4; i++ {
		shards[i] = NewMatrixSource(x.SelectRows(seq2(bounds[i], bounds[i+1])))
	}
	par, err := miner.MineSharded(shards)
	if err != nil {
		t.Fatal(err)
	}
	if par.K() != seq.K() || par.TrainedRows() != seq.TrainedRows() {
		t.Fatalf("K/rows = %d/%d, want %d/%d", par.K(), par.TrainedRows(), seq.K(), seq.TrainedRows())
	}
	if !matrix.EqualApproxVec(par.Means(), seq.Means(), 1e-9) {
		t.Error("means differ")
	}
	if !matrix.EqualApproxVec(par.Eigenvalues(), seq.Eigenvalues(), 1e-6*(1+seq.Eigenvalues()[0])) {
		t.Errorf("eigenvalues differ:\nseq %v\npar %v", seq.Eigenvalues(), par.Eigenvalues())
	}
	for i := 0; i < seq.K(); i++ {
		if !matrix.EqualApproxVec(par.Rule(i), seq.Rule(i), 1e-7) {
			t.Errorf("rule %d differs", i)
		}
	}
}

func TestMineShardedValidation(t *testing.T) {
	miner, _ := NewMiner()
	if _, err := miner.MineSharded(nil); !errors.Is(err, ErrWidth) {
		t.Errorf("no shards: err = %v, want ErrWidth", err)
	}
	a := NewMatrixSource(matrix.NewDense(3, 2))
	b := NewMatrixSource(matrix.NewDense(3, 4))
	if _, err := miner.MineSharded([]RowSource{a, b}); !errors.Is(err, ErrWidth) {
		t.Errorf("mixed widths: err = %v, want ErrWidth", err)
	}
	zero := NewMatrixSource(matrix.NewDense(0, 0))
	if _, err := miner.MineSharded([]RowSource{zero}); !errors.Is(err, ErrWidth) {
		t.Errorf("zero width: err = %v, want ErrWidth", err)
	}
}

func TestMineShardedPropagatesShardError(t *testing.T) {
	miner, _ := NewMiner()
	good := NewMatrixSource(matrix.MustFromRows([][]float64{{1, 2}, {3, 4}}))
	_, err := miner.MineSharded([]RowSource{good, &errSource{}})
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Errorf("err = %v, want wrapped shard error", err)
	}
}

func TestMineShardedTooFewRows(t *testing.T) {
	miner, _ := NewMiner()
	one := NewMatrixSource(matrix.MustFromRows([][]float64{{1, 2}}))
	if _, err := miner.MineSharded([]RowSource{one}); err == nil {
		t.Error("single row across shards must fail")
	}
}

func seq2(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
