package core

import (
	"fmt"
	"math"
	"sort"

	"ratiorules/internal/matrix"
)

// Hole is the paper's "?" marker: place it in a record passed to
// FillRecord to mark an unknown value.
var Hole = math.NaN()

// IsHole reports whether a cell value is the Hole marker.
func IsHole(v float64) bool { return math.IsNaN(v) }

// FillSolver selects the algorithm used for the over-specified case
// (Case 2 of Sec. 4.4).
type FillSolver int

const (
	// SolvePseudoInverse uses the Moore–Penrose pseudo-inverse via SVD, as
	// the paper prescribes (Eqs. 7–9). This is the default.
	SolvePseudoInverse FillSolver = iota
	// SolveQR uses Householder QR least squares; an ablation alternative
	// that agrees with the pseudo-inverse whenever V′ has full column rank.
	SolveQR
)

// Estimator is anything that can reconstruct hidden cells of a record.
// The guessing error (Sec. 4.3) is defined for any Estimator, which is how
// the paper's col-avgs competitor and the Ratio Rules method share one
// benchmark harness.
type Estimator interface {
	// Width reports the record width M the estimator expects.
	Width() int
	// FillRow returns a copy of row with the cells at holes replaced by
	// estimates. Cells not listed in holes are passed through unchanged.
	// The input row's values at hole positions are ignored.
	FillRow(row []float64, holes []int) ([]float64, error)
}

// FillRow implements Estimator using the geometric algorithm of Fig. 3:
// intersect the feasible solution space (fixed by the known cells) with the
// RR-hyperplane spanned by the retained rules.
//
// The three cases of Sec. 4.4 are handled as the paper prescribes:
//
//   - exactly-specified, (M−h) == k: direct solve of V′·x = b′ (Eq. 6);
//   - over-specified, (M−h) > k: Moore–Penrose pseudo-inverse (Eqs. 7–9);
//   - under-specified, (M−h) < k: drop the weakest rules until the system
//     is exactly specified, then solve (Case 3).
//
// With k = 0 (or when every cell is a hole) the prediction degenerates to
// the column averages, which is exactly the col-avgs competitor.
func (r *Rules) FillRow(row []float64, holes []int) ([]float64, error) {
	out, err := r.fill(row, holes, SolvePseudoInverse)
	fillOps.count(err)
	return out, err
}

// FillRowWith is FillRow with an explicit solver for the over-specified
// case, exposed for the solver ablation.
func (r *Rules) FillRowWith(row []float64, holes []int, solver FillSolver) ([]float64, error) {
	out, err := r.fill(row, holes, solver)
	fillOps.count(err)
	return out, err
}

// Width implements Estimator.
func (r *Rules) Width() int { return r.M() }

// FillRecord reconstructs every cell marked with the Hole marker (NaN) in
// record, returning a fully populated copy. It is the user-facing
// counterpart of FillRow for records with inline "?" markers.
func (r *Rules) FillRecord(record []float64) ([]float64, error) {
	var holes []int
	for j, v := range record {
		if IsHole(v) {
			holes = append(holes, j)
		}
	}
	return r.FillRow(record, holes)
}

// fill runs one uncached solve: the case analysis and V′ factorization
// of buildPlan followed by a single applyPlan. The batch engine takes
// the same two steps through the hole-pattern plan cache (fillCached),
// amortizing buildPlan across every row that shares a pattern.
func (r *Rules) fill(row []float64, holes []int, solver FillSolver) ([]float64, error) {
	m := r.M()
	if len(row) != m {
		return nil, fmt.Errorf("core: record width %d, want %d: %w", len(row), m, ErrWidth)
	}
	if err := validateHoles(holes, m); err != nil {
		return nil, err
	}
	plan, err := r.buildPlan(SortedHoles(holes), solver)
	if err != nil {
		return nil, err
	}
	return r.applyPlan(plan, row)
}

// validateHoles rejects out-of-range and duplicate hole indices.
func validateHoles(holes []int, m int) error {
	if len(holes) > m {
		return fmt.Errorf("core: %d holes for %d attributes: %w", len(holes), m, ErrBadHole)
	}
	seen := make(map[int]bool, len(holes))
	for _, j := range holes {
		if j < 0 || j >= m {
			return fmt.Errorf("core: hole index %d out of range [0,%d): %w", j, m, ErrBadHole)
		}
		if seen[j] {
			return fmt.Errorf("core: duplicate hole index %d: %w", j, ErrBadHole)
		}
		seen[j] = true
	}
	return nil
}

// BandedFill is a reconstruction with a 1-sigma uncertainty band per
// filled cell.
type BandedFill struct {
	// Filled is the completed record (known cells passed through).
	Filled []float64
	// Std[j] is the 1-sigma reconstruction uncertainty of cell j: the
	// training residual deviation for filled cells, 0 for known cells.
	Std []float64
}

// FillRecordWithBands reconstructs the Hole-marked cells of record and
// attaches a per-cell uncertainty: the training residual standard
// deviation of each filled attribute (how far real records typically sit
// from the RR-hyperplane along it). A forecast of "$6.10 ± $0.40 of
// butter" is considerably more useful for the paper's decision-support
// applications than the point estimate alone.
//
// The band is the *projection* residual — the error that remains when a
// record is projected onto the RR-hyperplane with full information. When
// most of the record is hidden, the fill additionally inherits the noise
// of the few known cells through the solve, so treat the band as a lower
// bound in heavily-incomplete records.
func (r *Rules) FillRecordWithBands(record []float64) (*BandedFill, error) {
	filled, err := r.FillRecord(record)
	if err != nil {
		return nil, err
	}
	std := make([]float64, len(record))
	for j, v := range record {
		if IsHole(v) {
			std[j] = r.ResidualStd(j)
		}
	}
	return &BandedFill{Filled: filled, Std: std}, nil
}

// FillMatrix repairs every Hole-marked cell of x in place using est,
// row by row, and reports how many cells were filled. Rows without holes
// are untouched. This is the batch form of FillRow used by data-cleaning
// pipelines (rrclean, the data-cleaning example).
func FillMatrix(est Estimator, x *matrix.Dense) (int, error) {
	n, m := x.Dims()
	if m != est.Width() {
		return 0, fmt.Errorf("core: FillMatrix on %d-wide matrix with %d-wide estimator: %w",
			m, est.Width(), ErrWidth)
	}
	filled := 0
	row := make([]float64, m)
	var holes []int
	for i := 0; i < n; i++ {
		holes = holes[:0]
		copy(row, x.RawRow(i))
		for j, v := range row {
			if IsHole(v) {
				holes = append(holes, j)
			}
		}
		if len(holes) == 0 {
			continue
		}
		fixed, err := est.FillRow(row, holes)
		if err != nil {
			return filled, fmt.Errorf("core: FillMatrix row %d: %w", i, err)
		}
		for _, j := range holes {
			x.Set(i, j, fixed[j])
		}
		filled += len(holes)
	}
	return filled, nil
}

// ColAvgs is the paper's straightforward competitor: predict every hidden
// cell with the column average of the training set. It equals Ratio Rules
// with k = 0 eigenvectors.
type ColAvgs struct {
	means []float64
}

// NewColAvgs builds the competitor from training column averages.
func NewColAvgs(means []float64) *ColAvgs {
	out := make([]float64, len(means))
	copy(out, means)
	return &ColAvgs{means: out}
}

// Width implements Estimator.
func (c *ColAvgs) Width() int { return len(c.means) }

// FillRow implements Estimator by substituting column averages.
func (c *ColAvgs) FillRow(row []float64, holes []int) ([]float64, error) {
	if len(row) != len(c.means) {
		return nil, fmt.Errorf("core: record width %d, want %d: %w", len(row), len(c.means), ErrWidth)
	}
	if err := validateHoles(holes, len(c.means)); err != nil {
		return nil, err
	}
	out := make([]float64, len(row))
	copy(out, row)
	for _, j := range holes {
		out[j] = c.means[j]
	}
	return out, nil
}

// SortedHoles returns a sorted copy of holes; exported helpers in this
// package expect ordered hole sets only for deterministic error text, the
// algorithms accept any order.
func SortedHoles(holes []int) []int {
	out := append([]int(nil), holes...)
	sort.Ints(out)
	return out
}
