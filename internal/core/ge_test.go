package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ratiorules/internal/matrix"
)

func TestGE1ColAvgsKnown(t *testing.T) {
	// For col-avgs with means (0), GE1 is the RMS of the test cells.
	test := matrix.MustFromRows([][]float64{{3, -4}, {0, 0}})
	ca := NewColAvgs([]float64{0, 0})
	got, err := GE1(ca, test)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt((9.0 + 16.0) / 4.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("GE1 = %v, want %v", got, want)
	}
}

func TestGE1ZeroOnPlaneData(t *testing.T) {
	// Ratio Rules reconstruct on-plane data exactly, so GE1 vanishes.
	rng := rand.New(rand.NewSource(20))
	x := planeData(rng, 100, 4, 2)
	rules := mineK(t, x, 2)
	ge, err := GE1(rules, x)
	if err != nil {
		t.Fatal(err)
	}
	if ge > 1e-6 {
		t.Errorf("GE1 = %v, want ≈ 0 on exactly low-rank data", ge)
	}
}

func TestGE1RRBeatsColAvgsOnCorrelatedData(t *testing.T) {
	// The headline claim (Fig. 7): Ratio Rules beat col-avgs when the data
	// is linearly correlated.
	rng := rand.New(rand.NewSource(21))
	x := planeData(rng, 300, 5, 2)
	for i := 0; i < 300; i++ {
		row := x.RawRow(i)
		for j := range row {
			row[j] += rng.NormFloat64() * 0.2
		}
	}
	train := x.SelectRows(seq(0, 270))
	test := x.SelectRows(seq(270, 300))
	miner, _ := NewMiner()
	rules, err := miner.MineMatrix(train)
	if err != nil {
		t.Fatal(err)
	}
	geRR, err := GE1(rules, test)
	if err != nil {
		t.Fatal(err)
	}
	geCA, err := GE1(NewColAvgs(rules.Means()), test)
	if err != nil {
		t.Fatal(err)
	}
	if geRR >= geCA/2 {
		t.Errorf("GE1(RR) = %v, GE1(col-avgs) = %v: want RR at least 2× better", geRR, geCA)
	}
}

func TestGE1Errors(t *testing.T) {
	ca := NewColAvgs([]float64{0, 0})
	if _, err := GE1(ca, matrix.NewDense(2, 3)); !errors.Is(err, ErrWidth) {
		t.Errorf("err = %v, want ErrWidth", err)
	}
	ge, err := GE1(ca, matrix.NewDense(0, 2))
	if err != nil || ge != 0 {
		t.Errorf("empty test: GE1 = %v, %v; want 0, nil", ge, err)
	}
}

func TestGEhColAvgsConstantInH(t *testing.T) {
	// The paper: "GEh is constant with respect to h for col-avgs since the
	// computation turns out to be the same for all h".
	rng := rand.New(rand.NewSource(22))
	x := planeData(rng, 40, 5, 2)
	ca := NewColAvgs(x.ColMeans())
	curve, err := GECurve(ca, x, 4, GEhConfig{SetsPerRow: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Same per-cell error regardless of grouping; only the sampling of
	// hole sets varies, so allow a small relative wobble.
	for h := 1; h < len(curve); h++ {
		if math.Abs(curve[h]-curve[0]) > 0.1*curve[0] {
			t.Errorf("GEh curve for col-avgs not ≈ constant: %v", curve)
		}
	}
}

func TestGEhMatchesGE1ForSingleHole(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := planeData(rng, 30, 4, 2)
	for i := 0; i < 30; i++ {
		row := x.RawRow(i)
		for j := range row {
			row[j] += rng.NormFloat64() * 0.1
		}
	}
	rules := mineK(t, x, 2)
	ge1, err := GE1(rules, x)
	if err != nil {
		t.Fatal(err)
	}
	// h=1 with all C(4,1)=4 combinations per row is exactly GE1.
	geh, err := GEh(rules, x, GEhConfig{Holes: 1, SetsPerRow: 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ge1-geh) > 1e-12 {
		t.Errorf("GE1 = %v, GEh(h=1, exhaustive) = %v: must match", ge1, geh)
	}
}

func TestGEhStabilityOnNoisyPlane(t *testing.T) {
	// Fig. 6's shape: RR's GEh stays well below col-avgs and does not blow
	// up as h grows.
	rng := rand.New(rand.NewSource(24))
	x := planeData(rng, 200, 6, 2)
	for i := 0; i < 200; i++ {
		row := x.RawRow(i)
		for j := range row {
			row[j] += rng.NormFloat64() * 0.3
		}
	}
	train := x.SelectRows(seq(0, 180))
	test := x.SelectRows(seq(180, 200))
	miner, _ := NewMiner()
	rules, err := miner.MineMatrix(train)
	if err != nil {
		t.Fatal(err)
	}
	cfg := GEhConfig{SetsPerRow: 15, Seed: 7}
	rr, err := GECurve(rules, test, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := GECurve(NewColAvgs(rules.Means()), test, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 4; h++ {
		if rr[h] >= ca[h] {
			t.Errorf("h=%d: GEh(RR)=%v >= GEh(col-avgs)=%v", h+1, rr[h], ca[h])
		}
	}
	if rr[3] > 10*rr[0] {
		t.Errorf("GEh unstable: h=1 %v, h=4 %v", rr[0], rr[3])
	}
}

func TestGEhErrors(t *testing.T) {
	ca := NewColAvgs([]float64{0, 0})
	x := matrix.NewDense(3, 2)
	if _, err := GEh(ca, x, GEhConfig{Holes: 0}); !errors.Is(err, ErrBadHole) {
		t.Errorf("h=0: err = %v, want ErrBadHole", err)
	}
	if _, err := GEh(ca, x, GEhConfig{Holes: 3}); !errors.Is(err, ErrBadHole) {
		t.Errorf("h>M: err = %v, want ErrBadHole", err)
	}
	if _, err := GEh(ca, matrix.NewDense(2, 5), GEhConfig{Holes: 1}); !errors.Is(err, ErrWidth) {
		t.Errorf("width: err = %v, want ErrWidth", err)
	}
	ge, err := GEh(ca, matrix.NewDense(0, 2), GEhConfig{Holes: 1})
	if err != nil || ge != 0 {
		t.Errorf("empty: GEh = %v, %v; want 0, nil", ge, err)
	}
}

func TestGEhDeterministicSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	x := planeData(rng, 20, 10, 2)
	rules := mineK(t, x, 2)
	cfg := GEhConfig{Holes: 3, SetsPerRow: 5, Seed: 42}
	a, err := GEh(rules, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GEh(rules, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed gave %v and %v", a, b)
	}
	cfg.Seed = 43
	c, err := GEh(rules, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Log("different seeds coincidentally agree (allowed but unlikely)")
	}
}

func TestEnumerateAndSampleHoleSets(t *testing.T) {
	// Small space: exhaustive enumeration, C(4,2) = 6.
	sets := enumerateHoleSets(4, 2, 10)
	if len(sets) != 6 {
		t.Fatalf("got %d sets, want 6", len(sets))
	}
	seen := map[string]bool{}
	for _, s := range sets {
		if len(s) != 2 || s[0] >= s[1] {
			t.Errorf("bad combination %v", s)
		}
		key := string(rune(s[0])) + string(rune(s[1]))
		if seen[key] {
			t.Errorf("duplicate combination %v", s)
		}
		seen[key] = true
	}
	// Large space: enumeration declines, sampling returns exactly the
	// budget with all-distinct sorted sets.
	if enumerateHoleSets(20, 5, 8) != nil {
		t.Fatal("enumerateHoleSets must decline when C(m,h) exceeds the budget")
	}
	sampled := sampleHoleSets(rand.New(rand.NewSource(1)), 20, 5, 8)
	if len(sampled) != 8 {
		t.Fatalf("got %d sampled sets, want 8", len(sampled))
	}
	dedup := map[string]bool{}
	for _, s := range sampled {
		if len(s) != 5 {
			t.Errorf("sampled set %v has wrong size", s)
		}
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				t.Errorf("sampled set %v not sorted", s)
			}
		}
		k := fmt.Sprint(s)
		if dedup[k] {
			t.Errorf("duplicate sampled set %v", s)
		}
		dedup[k] = true
	}
}

func TestBinomialAtMost(t *testing.T) {
	if c, ok := binomialAtMost(5, 2, 100); !ok || c != 10 {
		t.Errorf("C(5,2): got %d, %v", c, ok)
	}
	if _, ok := binomialAtMost(30, 15, 100); ok {
		t.Error("C(30,15) must exceed 100")
	}
	if c, ok := binomialAtMost(3, 5, 10); !ok || c != 0 {
		t.Errorf("C(3,5): got %d, %v; want 0, true", c, ok)
	}
	if c, ok := binomialAtMost(6, 4, 100); !ok || c != 15 {
		t.Errorf("C(6,4): got %d, %v; want 15 (symmetry path)", c, ok)
	}
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
