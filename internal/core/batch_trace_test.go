package core

import (
	"context"
	"testing"

	"ratiorules/internal/obs/trace"
)

// TestBatchFillSpanParentage drives a batch fill under an active trace
// and checks that every per-row span recorded by a pool worker parents
// to the caller's span — the ctx hop through runOrdered — and that the
// fill-cache spans parent to their row.
func TestBatchFillSpanParentage(t *testing.T) {
	rules, data := batchFixture(t, 21, 6, 5, 2)

	tr := trace.New(trace.Config{})
	ctx, root := tr.StartRoot(context.Background(), "test batch", trace.SpanContext{})

	rows := len(data)
	jobs := make(chan FillJob)
	go func() {
		defer close(jobs)
		for _, rec := range data {
			jobs <- FillJob{Record: rec, Holes: []int{0}}
		}
	}()
	for res := range rules.BatchFill(ctx, jobs, BatchOptions{Workers: 3}) {
		if res.Err != nil {
			t.Fatalf("row %d: %v", res.Index, res.Err)
		}
	}
	root.End()

	td, ok := tr.Recorder().Get(root.TraceID())
	if !ok {
		t.Fatal("trace not recorded")
	}
	spanByID := map[string]trace.SpanData{}
	for _, sp := range td.Spans {
		spanByID[sp.SpanID] = sp
	}
	var rowSpans, cacheSpans, solveSpans int
	for _, sp := range td.Spans {
		switch sp.Name {
		case "batch.row":
			rowSpans++
			if sp.ParentID != root.SpanID() {
				t.Fatalf("batch.row parented to %q, want root %q", sp.ParentID, root.SpanID())
			}
			if sp.Duration <= 0 {
				t.Fatalf("batch.row has zero duration")
			}
			attrs := map[string]any{}
			for _, a := range sp.Attrs {
				attrs[a.Key] = a.Value
			}
			if attrs["op"] != "fill" {
				t.Fatalf("batch.row attrs = %v", sp.Attrs)
			}
			if _, ok := attrs["queue_wait_us"]; !ok {
				t.Fatalf("batch.row missing queue_wait_us: %v", sp.Attrs)
			}
		case "fill.cache":
			cacheSpans++
			parent, ok := spanByID[sp.ParentID]
			if !ok || parent.Name != "batch.row" {
				t.Fatalf("fill.cache parented to %+v", parent)
			}
		case "fill.solve":
			solveSpans++
		}
	}
	if rowSpans != rows {
		t.Fatalf("recorded %d batch.row spans, want %d", rowSpans, rows)
	}
	if cacheSpans != rows || solveSpans != rows {
		t.Fatalf("cache/solve spans = %d/%d, want %d each", cacheSpans, solveSpans, rows)
	}
}

// TestBatchFillNoTraceNoOverhead runs the same batch without a trace in
// ctx and just asserts nothing breaks (spans are nil no-ops).
func TestBatchFillNoTraceNoOverhead(t *testing.T) {
	rules, data := batchFixture(t, 22, 4, 5, 2)
	holes := make([][]int, len(data))
	for i := range holes {
		holes[i] = []int{1}
	}
	for i, res := range rules.BatchFillSlice(data, holes, BatchOptions{Workers: 2}) {
		if res.Err != nil {
			t.Fatalf("row %d: %v", i, res.Err)
		}
	}
}
