package core

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ratiorules/internal/matrix"
)

// planeData builds n rows lying exactly on a rank-k hyperplane in m-space
// (plus the column-mean offset), so a k-rule model can reconstruct any
// cell exactly.
func planeData(rng *rand.Rand, n, m, k int) *matrix.Dense {
	// Random orthonormal-ish basis via Gram-Schmidt on Gaussian vectors.
	basis := make([][]float64, k)
	for b := range basis {
		v := make([]float64, m)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		for _, prev := range basis[:b] {
			d := matrix.Dot(v, prev)
			for j := range v {
				v[j] -= d * prev[j]
			}
		}
		matrix.Normalize(v)
		basis[b] = v
	}
	x := matrix.NewDense(n, m)
	for i := 0; i < n; i++ {
		row := x.RawRow(i)
		for b, v := range basis {
			w := rng.NormFloat64() * float64(10/(b+1))
			for j := range row {
				row[j] += w * v[j]
			}
		}
		for j := range row {
			row[j] += 5 * float64(j) // non-zero column means
		}
	}
	return x
}

func mineK(t *testing.T, x *matrix.Dense, k int) *Rules {
	t.Helper()
	miner, err := NewMiner(WithFixedK(k))
	if err != nil {
		t.Fatal(err)
	}
	rules, err := miner.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

func TestFillExactRecoveryOnPlane(t *testing.T) {
	// Data exactly on a rank-2 plane: hiding any 1 or 2 cells of a row must
	// recover them (over- and exactly-specified cases).
	rng := rand.New(rand.NewSource(10))
	x := planeData(rng, 120, 4, 2)
	rules := mineK(t, x, 2)
	for i := 0; i < 20; i++ {
		row := x.Row(i)
		for _, holes := range [][]int{{0}, {3}, {1, 2}, {0, 3}} {
			got, err := rules.FillRow(row, holes)
			if err != nil {
				t.Fatalf("row %d holes %v: %v", i, holes, err)
			}
			if !matrix.EqualApproxVec(got, row, 1e-6*(1+matrix.Norm2(row))) {
				t.Errorf("row %d holes %v: got %v, want %v", i, holes, got, row)
			}
		}
	}
}

func TestFillKnownCellsPassThrough(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := planeData(rng, 50, 4, 2)
	rules := mineK(t, x, 2)
	row := []float64{1, 2, 3, 4} // NOT on the plane
	got, err := rules.FillRow(row, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{0, 2, 3} {
		if got[j] != row[j] {
			t.Errorf("known cell %d changed: %v -> %v", j, row[j], got[j])
		}
	}
	// Input row must not be mutated.
	if !matrix.EqualApproxVec(row, []float64{1, 2, 3, 4}, 0) {
		t.Error("FillRow mutated its input")
	}
}

func TestFillExactlySpecifiedFig4a(t *testing.T) {
	// M=2, k=1, h=1: Fig. 4(a). Data on the line butter = 0.58·bread; give
	// bread, recover butter at the line's intersection.
	x := matrix.NewDense(100, 2)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 100; i++ {
		b := rng.Float64() * 10
		x.SetRow(i, []float64{b, 0.58 * b})
	}
	rules := mineK(t, x, 1)
	got, err := rules.FillRow([]float64{8.5, 0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.58 * 8.5
	if math.Abs(got[1]-want) > 0.05 {
		t.Errorf("butter = %v, want ≈ %v", got[1], want)
	}
}

func TestFillPaperFig12Extrapolation(t *testing.T) {
	// The paper's Fig. 12: given $8.50 of bread on a dataset whose cloud
	// follows RR1 ≈ (0.81, 0.58), Ratio Rules predict ≈ $6.10 of butter —
	// an extrapolation beyond the training range.
	rng := rand.New(rand.NewSource(13))
	x := matrix.NewDense(200, 2)
	for i := 0; i < 200; i++ {
		v := rng.Float64() * 7 // training bread stays below 7
		x.SetRow(i, []float64{0.81 * v * 1.2345, 0.58 * v * 1.2345})
	}
	rules := mineK(t, x, 1)
	got, err := rules.FillRow([]float64{8.5, Hole}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	want := 8.5 * 0.58 / 0.81
	if math.Abs(got[1]-want) > 0.1 {
		t.Errorf("butter = %v, want ≈ %v (paper: 6.10)", got[1], want)
	}
}

func TestFillOverSpecified(t *testing.T) {
	// M=3, k=1, h=1 (Fig. 4(b)): two knowns constrain a 1-d rule; the
	// pseudo-inverse picks the closest point. With consistent data the
	// answer is exact.
	x := matrix.NewDense(100, 3)
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 100; i++ {
		v := rng.NormFloat64() * 5
		x.SetRow(i, []float64{v, 2 * v, 3 * v})
	}
	rules := mineK(t, x, 1)
	got, err := rules.FillRow([]float64{1, 2, Hole}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[2]-3) > 1e-6 {
		t.Errorf("filled = %v, want 3", got[2])
	}
	// Inconsistent knowns: prediction is a least-squares compromise and
	// must stay finite and reasonable.
	got, err = rules.FillRow([]float64{1, 3, Hole}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(got[2]) || got[2] < 3 || got[2] > 5.5 {
		t.Errorf("compromise fill = %v, want within (3, 5.5)", got[2])
	}
}

func TestFillUnderSpecified(t *testing.T) {
	// M=3, k=2, h=2 (Fig. 5): only 1 known, so the weakest rule is dropped
	// and the fill follows RR1 alone.
	rng := rand.New(rand.NewSource(15))
	x := planeData(rng, 200, 3, 2)
	rules := mineK(t, x, 2)
	row := x.Row(7)
	got, err := rules.FillRow(row, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != row[0] {
		t.Error("known cell changed")
	}
	// The under-specified answer uses only RR1: verify it equals the
	// explicit 1-rule reconstruction.
	rules1 := mineK(t, x, 1)
	want, err := rules1.FillRow(row, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(got, want, 1e-9*(1+matrix.Norm2(want))) {
		t.Errorf("under-specified fill = %v, want RR1-only fill %v", got, want)
	}
}

func TestFillZeroRulesIsColAvgs(t *testing.T) {
	// The paper: "col-avgs is identical to the proposed method with k = 0".
	x := paperFig1()
	rules := mineK(t, x, 0)
	ca := NewColAvgs(rules.Means())
	row := []float64{2, 1}
	for _, holes := range [][]int{{0}, {1}, {0, 1}} {
		got, err := rules.FillRow(row, holes)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ca.FillRow(row, holes)
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.EqualApproxVec(got, want, 1e-12) {
			t.Errorf("holes %v: k=0 fill %v != col-avgs %v", holes, got, want)
		}
	}
}

func TestFillAllHolesGivesMeans(t *testing.T) {
	x := paperFig1()
	rules := mineK(t, x, 1)
	got, err := rules.FillRow([]float64{Hole, Hole}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(got, rules.Means(), 1e-12) {
		t.Errorf("all-holes fill = %v, want means %v", got, rules.Means())
	}
}

func TestFillNoHoles(t *testing.T) {
	x := paperFig1()
	rules := mineK(t, x, 1)
	row := []float64{1, 2}
	got, err := rules.FillRow(row, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(got, row, 0) {
		t.Errorf("no-holes fill = %v, want %v", got, row)
	}
}

func TestFillErrors(t *testing.T) {
	x := paperFig1()
	rules := mineK(t, x, 1)
	for name, tc := range map[string]struct {
		row   []float64
		holes []int
	}{
		"wrong width":    {[]float64{1}, []int{0}},
		"negative hole":  {[]float64{1, 2}, []int{-1}},
		"hole too large": {[]float64{1, 2}, []int{2}},
		"duplicate hole": {[]float64{1, 2}, []int{1, 1}},
		"too many holes": {[]float64{1, 2}, []int{0, 1, 0}},
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := rules.FillRow(tc.row, tc.holes); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
	if _, err := rules.FillRow([]float64{1}, []int{0}); !errors.Is(err, ErrWidth) {
		t.Errorf("width: err = %v, want ErrWidth", err)
	}
	if _, err := rules.FillRow([]float64{1, 2}, []int{7}); !errors.Is(err, ErrBadHole) {
		t.Errorf("bad hole: err = %v, want ErrBadHole", err)
	}
}

func TestFillRecordNaNMarkers(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	x := planeData(rng, 100, 3, 1)
	rules := mineK(t, x, 1)
	row := x.Row(3)
	rec := []float64{row[0], Hole, row[2]}
	got, err := rules.FillRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[1]-row[1]) > 1e-6*(1+math.Abs(row[1])) {
		t.Errorf("FillRecord hole = %v, want %v", got[1], row[1])
	}
	if got[0] != row[0] || got[2] != row[2] {
		t.Error("FillRecord changed known cells")
	}
	// Record with no markers round-trips.
	got, err = rules.FillRecord(row)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(got, row, 0) {
		t.Error("FillRecord without holes must return the record unchanged")
	}
}

func TestIsHole(t *testing.T) {
	if !IsHole(Hole) {
		t.Error("IsHole(Hole) must be true")
	}
	if IsHole(0) || IsHole(math.Inf(1)) {
		t.Error("IsHole must be false for ordinary values")
	}
}

func TestColAvgsEstimator(t *testing.T) {
	ca := NewColAvgs([]float64{10, 20, 30})
	if ca.Width() != 3 {
		t.Fatalf("Width = %d, want 3", ca.Width())
	}
	got, err := ca.FillRow([]float64{1, 2, 3}, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(got, []float64{10, 2, 30}, 0) {
		t.Errorf("FillRow = %v, want [10 2 30]", got)
	}
	if _, err := ca.FillRow([]float64{1}, []int{0}); !errors.Is(err, ErrWidth) {
		t.Errorf("err = %v, want ErrWidth", err)
	}
	if _, err := ca.FillRow([]float64{1, 2, 3}, []int{5}); !errors.Is(err, ErrBadHole) {
		t.Errorf("err = %v, want ErrBadHole", err)
	}
	// Constructor copies.
	means := []float64{1, 2}
	ca2 := NewColAvgs(means)
	means[0] = 99
	got, _ = ca2.FillRow([]float64{0, 0}, []int{0})
	if got[0] != 1 {
		t.Error("NewColAvgs must copy the means")
	}
}

// Property: QR and pseudo-inverse solvers agree on over-specified fills
// with full-rank rule subsets.
func TestFillSolverAgreementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 4 + rng.Intn(4)
		k := 1 + rng.Intn(2)
		x := planeData(rng, 80, m, k)
		// Add noise so rows are near but not on the plane.
		for i := 0; i < 80; i++ {
			row := x.RawRow(i)
			for j := range row {
				row[j] += rng.NormFloat64() * 0.3
			}
		}
		miner, err := NewMiner(WithFixedK(k))
		if err != nil {
			return false
		}
		rules, err := miner.MineMatrix(x)
		if err != nil {
			return false
		}
		row := x.Row(rng.Intn(80))
		holes := []int{rng.Intn(m)} // h=1, M−h > k: over-specified
		a, err := rules.FillRowWith(row, holes, SolvePseudoInverse)
		if err != nil {
			return false
		}
		b, err := rules.FillRowWith(row, holes, SolveQR)
		if err != nil {
			return false
		}
		return matrix.EqualApproxVec(a, b, 1e-7*(1+matrix.Norm2(a)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: filled rows lie exactly on the RR-hyperplane when every cell is
// reconstructed from the others (residual orthogonal to discarded space is
// not guaranteed, but the hole cells are linear in xconcept, so refilling
// the same holes is idempotent).
func TestFillIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 3 + rng.Intn(4)
		x := planeData(rng, 60, m, 2)
		miner, err := NewMiner(WithFixedK(2))
		if err != nil {
			return false
		}
		rules, err := miner.MineMatrix(x)
		if err != nil {
			return false
		}
		row := make([]float64, m)
		for j := range row {
			row[j] = rng.NormFloat64() * 10
		}
		holes := []int{0, m - 1}
		once, err := rules.FillRow(row, holes)
		if err != nil {
			return false
		}
		twice, err := rules.FillRow(once, holes)
		if err != nil {
			return false
		}
		return matrix.EqualApproxVec(once, twice, 1e-7*(1+matrix.Norm2(once)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSortedHoles(t *testing.T) {
	in := []int{3, 1, 2}
	got := SortedHoles(in)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("SortedHoles = %v", got)
	}
	if in[0] != 3 {
		t.Error("SortedHoles must not mutate its input")
	}
}

func TestFillMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	x := planeData(rng, 80, 4, 2)
	truth := x.Clone()
	// Punch holes.
	holes := 0
	for i := 0; i < 80; i += 3 {
		x.Set(i, i%4, Hole)
		holes++
	}
	rules := mineK(t, truth, 2)
	filled, err := FillMatrix(rules, x)
	if err != nil {
		t.Fatal(err)
	}
	if filled != holes {
		t.Errorf("filled %d cells, want %d", filled, holes)
	}
	if !matrix.EqualApprox(x, truth, 1e-6*(1+truth.MaxAbs())) {
		t.Error("repair did not recover on-plane values")
	}
	// Idempotent on a hole-free matrix.
	filled, err = FillMatrix(rules, x)
	if err != nil || filled != 0 {
		t.Errorf("second pass filled %d, err %v", filled, err)
	}
}

func TestFillMatrixWidthError(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	rules := mineK(t, planeData(rng, 50, 4, 2), 2)
	if _, err := FillMatrix(rules, matrix.NewDense(3, 9)); !errors.Is(err, ErrWidth) {
		t.Errorf("err = %v, want ErrWidth", err)
	}
}

func TestFillRecordWithBands(t *testing.T) {
	// Noisy plane: the residual band should match the injected noise scale.
	rng := rand.New(rand.NewSource(140))
	const noise = 0.5
	x := planeData(rng, 2000, 4, 2)
	for i := 0; i < x.Rows(); i++ {
		row := x.RawRow(i)
		for j := range row {
			row[j] += rng.NormFloat64() * noise
		}
	}
	rules := mineK(t, x, 2)
	rec := []float64{x.At(0, 0), Hole, x.At(0, 2), Hole}
	out, err := rules.FillRecordWithBands(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Filled) != 4 || len(out.Std) != 4 {
		t.Fatalf("shapes: %d/%d", len(out.Filled), len(out.Std))
	}
	// Known cells carry no band.
	if out.Std[0] != 0 || out.Std[2] != 0 {
		t.Errorf("known cells have bands: %v", out.Std)
	}
	// Hole bands track the injected noise scale. Only the component of
	// the noise orthogonal to the retained plane lands in the residual,
	// and it splits unevenly across attributes, so allow a wide factor.
	for _, j := range []int{1, 3} {
		if out.Std[j] < noise/4 || out.Std[j] > 2*noise {
			t.Errorf("band[%d] = %v, want within (%v, %v)", j, out.Std[j], noise/4, 2*noise)
		}
	}
}

func TestBandsZeroOnPerfectData(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	x := planeData(rng, 300, 4, 2)
	rules := mineK(t, x, 2)
	out, err := rules.FillRecordWithBands([]float64{Hole, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Std[0] > 1e-5 {
		t.Errorf("band on exactly low-rank data = %v, want ≈ 0", out.Std[0])
	}
}

func TestResidualStdPanicsOutOfRange(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	rules := mineK(t, planeData(rng, 50, 3, 1), 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range ResidualStd must panic")
		}
	}()
	rules.ResidualStd(9)
}

func TestResidualStdSurvivesSaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(143))
	x := planeData(rng, 200, 3, 1)
	for i := 0; i < 200; i++ {
		row := x.RawRow(i)
		for j := range row {
			row[j] += rng.NormFloat64() * 0.2
		}
	}
	rules := mineK(t, x, 1)
	var buf strings.Builder
	if err := rules.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		if math.Abs(back.ResidualStd(j)-rules.ResidualStd(j)) > 1e-12 {
			t.Errorf("residual std %d did not round-trip", j)
		}
	}
	// Legacy documents without the field load with zero bands.
	legacy := `{"means":[0,0],"eigenvalues":[1],"vectors":[[1],[0]]}`
	lr, err := Load(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if lr.ResidualStd(0) != 0 {
		t.Error("legacy rules must report zero bands, not crash")
	}
}
