package core

import (
	"fmt"
	"math"

	"ratiorules/internal/matrix"
	"ratiorules/internal/stats"
)

// preTrimUnivariate returns the indices of rows whose every cell sits
// within zMax robust z-scores (median/MAD) of its column. If trimming
// would leave fewer than minKeep rows, all rows are kept — a sign the data
// is simply heavy-tailed rather than corrupted.
func preTrimUnivariate(x *matrix.Dense, zMax float64, minKeep int) []int {
	n, m := x.Dims()
	med := make([]float64, m)
	scale := make([]float64, m)
	for j := 0; j < m; j++ {
		col := x.Col(j)
		med[j] = stats.Median(col)
		scale[j] = stats.MADScale(col)
	}
	kept := make([]int, 0, n)
	for i := 0; i < n; i++ {
		row := x.RawRow(i)
		ok := true
		for j, v := range row {
			if scale[j] == 0 {
				continue // constant (or majority-constant) column
			}
			if math.Abs(v-med[j]) > zMax*scale[j] {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, i)
		}
	}
	if len(kept) < minKeep {
		kept = kept[:0]
		for i := 0; i < n; i++ {
			kept = append(kept, i)
		}
	}
	return kept
}

// RobustConfig controls MineRobust.
type RobustConfig struct {
	// TrimSigma is the row-outlier threshold: after each round, rows whose
	// distance from the current RR-hyperplane exceeds TrimSigma times the
	// RMS distance are excluded from the next round's covariance. Zero
	// selects DefaultOutlierSigma.
	TrimSigma float64
	// Rounds caps the mine→trim iterations. Zero selects 4.
	Rounds int
	// MinKeepFrac aborts trimming rather than discard more than this
	// fraction of the data (guarding against runaway trimming on clean
	// heavy-tailed data). Zero selects 0.5.
	MinKeepFrac float64
}

// RobustResult reports what MineRobust did alongside the rules.
type RobustResult struct {
	Rules *Rules
	// TrimmedRows lists the indices of rows excluded from the final fit,
	// ascending.
	TrimmedRows []int
	// Rounds is the number of mine→trim iterations actually performed.
	Rounds int
}

// MineRobust mines Ratio Rules with iterative trimming: plain mining is
// alternated with row-outlier detection, and flagged rows are dropped from
// the covariance before re-mining. Gross corruption (a few records with
// wild values) otherwise rotates the eigenvectors noticeably — the effect
// is visible in the paper's own Fig. 11, where Jordan and Rodman visibly
// stretch the axes. The returned rules are fitted on the trimmed majority;
// the trimmed rows are reported so callers can inspect or repair them.
//
// This is an extension beyond the paper (which fits all rows), informed by
// the data-cleaning application it proposes.
func (m *Miner) MineRobust(x *matrix.Dense, cfg RobustConfig) (*RobustResult, error) {
	n, _ := x.Dims()
	sigma := cfg.TrimSigma
	if sigma <= 0 {
		sigma = DefaultOutlierSigma
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 4
	}
	keepFrac := cfg.MinKeepFrac
	if keepFrac <= 0 {
		keepFrac = 0.5
	}
	minKeep := int(keepFrac * float64(n))
	if minKeep < 2 {
		minKeep = 2
	}

	// Round 0: univariate pre-trim with a median/MAD z-score. A grossly
	// corrupted cell can rotate the first eigenvector onto itself, hiding
	// from hyperplane-distance trimming entirely, but it cannot hide from
	// its own column's robust scale.
	kept := preTrimUnivariate(x, math.Max(3*sigma, 8), minKeep)

	var (
		rules *Rules
		err   error
		done  int
	)
	for round := 1; round <= rounds; round++ {
		done = round
		sub := x.SelectRows(kept)
		rules, err = m.MineMatrix(sub)
		if err != nil {
			return nil, fmt.Errorf("core: robust round %d: %w", round, err)
		}
		if rules.K() == 0 {
			break // nothing to trim against
		}
		outliers, err := rules.RowOutliers(sub, sigma)
		if err != nil {
			return nil, fmt.Errorf("core: robust round %d outliers: %w", round, err)
		}
		if len(outliers) == 0 {
			break
		}
		if len(kept)-len(outliers) < minKeep {
			break // refuse to trim away the dataset
		}
		drop := make(map[int]bool, len(outliers))
		for _, o := range outliers {
			drop[o.Row] = true
		}
		next := kept[:0]
		for local, global := range kept {
			if !drop[local] {
				next = append(next, global)
			}
		}
		kept = next
	}

	isKept := make([]bool, n)
	for _, i := range kept {
		isKept[i] = true
	}
	var trimmed []int
	for i := 0; i < n; i++ {
		if !isKept[i] {
			trimmed = append(trimmed, i)
		}
	}
	return &RobustResult{Rules: rules, TrimmedRows: trimmed, Rounds: done}, nil
}
