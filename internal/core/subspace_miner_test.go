package core

import (
	"math"
	"math/rand"
	"testing"

	"ratiorules/internal/matrix"
)

func TestSubspaceSolverMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	x := randomCorrelated(rng, 300, 8)
	full, err := NewMiner(WithFixedK(3))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := NewMiner(WithFixedK(3), WithSubspaceSolver())
	if err != nil {
		t.Fatal(err)
	}
	rf, err := full.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sub.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	if rs.K() != rf.K() {
		t.Fatalf("K = %d, want %d", rs.K(), rf.K())
	}
	scale := 1 + rf.Eigenvalues()[0]
	if !matrix.EqualApproxVec(rs.Eigenvalues(), rf.Eigenvalues(), 1e-6*scale) {
		t.Errorf("eigenvalues differ:\nfull %v\nsub  %v", rf.Eigenvalues(), rs.Eigenvalues())
	}
	for i := 0; i < 3; i++ {
		if !matrix.EqualApproxVec(rs.Rule(i), rf.Rule(i), 1e-6) {
			t.Errorf("rule %d differs", i)
		}
	}
	// Total variance (trace) must match the full solve's eigenvalue sum.
	if math.Abs(rs.TotalVariance()-rf.TotalVariance()) > 1e-6*(1+rf.TotalVariance()) {
		t.Errorf("TotalVariance = %v, want %v", rs.TotalVariance(), rf.TotalVariance())
	}
}

func TestSubspaceSolverWithEnergyCutoff(t *testing.T) {
	// MaxK bounds the extraction; the Eq. 1 cutoff applies within it,
	// using the trace as the total.
	rng := rand.New(rand.NewSource(86))
	x := matrix.NewDense(400, 6)
	for i := 0; i < 400; i++ {
		v := rng.NormFloat64() * 10
		row := x.RawRow(i)
		for j := range row {
			row[j] = v*float64(j+1) + rng.NormFloat64()*0.01
		}
	}
	sub, err := NewMiner(WithMaxK(4), WithSubspaceSolver())
	if err != nil {
		t.Fatal(err)
	}
	rules, err := sub.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	if rules.K() != 1 {
		t.Errorf("K = %d, want 1 for near-rank-1 data", rules.K())
	}
	if rules.EnergyCovered() < 0.85 {
		t.Errorf("EnergyCovered = %v, want >= 0.85", rules.EnergyCovered())
	}
}

func TestSubspaceSolverRequiresBound(t *testing.T) {
	sub, err := NewMiner(WithSubspaceSolver())
	if err != nil {
		t.Fatal(err)
	}
	x := randomCorrelated(rand.New(rand.NewSource(87)), 50, 4)
	if _, err := sub.MineMatrix(x); err == nil {
		t.Error("subspace solver without a k bound must fail")
	}
}

func TestSubspaceSolverFixedKZero(t *testing.T) {
	sub, err := NewMiner(WithFixedK(0), WithSubspaceSolver())
	if err != nil {
		t.Fatal(err)
	}
	x := randomCorrelated(rand.New(rand.NewSource(88)), 50, 4)
	rules, err := sub.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	if rules.K() != 0 {
		t.Errorf("K = %d, want 0", rules.K())
	}
	if rules.TotalVariance() <= 0 {
		t.Error("total variance (trace) must still be recorded")
	}
	// k=0 fill degenerates to means.
	got, err := rules.FillRow([]float64{0, 0, 0, 0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != rules.Means()[1] {
		t.Errorf("k=0 fill = %v, want mean %v", got[1], rules.Means()[1])
	}
}

func TestLanczosSolverMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	x := randomCorrelated(rng, 300, 8)
	full, err := NewMiner(WithFixedK(3))
	if err != nil {
		t.Fatal(err)
	}
	lz, err := NewMiner(WithFixedK(3), WithLanczosSolver())
	if err != nil {
		t.Fatal(err)
	}
	rf, err := full.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := lz.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	scale := 1 + rf.Eigenvalues()[0]
	if !matrix.EqualApproxVec(rl.Eigenvalues(), rf.Eigenvalues(), 1e-6*scale) {
		t.Errorf("eigenvalues differ:\nfull    %v\nlanczos %v", rf.Eigenvalues(), rl.Eigenvalues())
	}
	for i := 0; i < 3; i++ {
		if !matrix.EqualApproxVec(rl.Rule(i), rf.Rule(i), 1e-6) {
			t.Errorf("rule %d differs", i)
		}
	}
}
