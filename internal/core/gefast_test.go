package core

import (
	"math"
	"math/rand"
	"testing"

	"ratiorules/internal/matrix"
)

func minedRulesForGE(t *testing.T, n, m int) (*Rules, *matrix.Dense) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	x := randomCorrelated(rng, n, m)
	miner, err := NewMiner()
	if err != nil {
		t.Fatal(err)
	}
	rules, err := miner.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	test := randomCorrelated(rng, n/2, m)
	return rules, test
}

// GE1With must compute the same number as GE1 — bit-identical with one
// worker, summation-order close with several.
func TestGE1WithMatchesGE1(t *testing.T) {
	rules, test := minedRulesForGE(t, 200, 8)
	want, err := GE1(rules, test)
	if err != nil {
		t.Fatal(err)
	}
	got1, err := GE1With(rules, test, GEOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got1 != want {
		t.Fatalf("one-worker GE1With %v != GE1 %v", got1, want)
	}
	got4, err := GE1With(rules, test, GEOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(got4-want) / math.Max(want, 1e-30); d > 1e-12 {
		t.Fatalf("four-worker GE1With %v vs GE1 %v (rel %g)", got4, want, d)
	}
}

// Non-*Rules estimators take the plain GE1 path unchanged.
func TestGE1WithColAvgsFallback(t *testing.T) {
	rules, test := minedRulesForGE(t, 120, 5)
	avgs := NewColAvgs(rules.Means())
	want, err := GE1(avgs, test)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GE1With(avgs, test, GEOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("fallback GE1With %v != GE1 %v", got, want)
	}
}

// The single-hole plans land in the shared plan cache: a second
// evaluation (and any batch fill with the same pattern) reuses them.
func TestGE1WithWarmsPlanCache(t *testing.T) {
	rules, test := minedRulesForGE(t, 100, 6)
	if got := rules.plans.len(); got != 0 {
		t.Fatalf("fresh rules should have an empty plan cache, have %d", got)
	}
	if _, err := GE1With(rules, test, GEOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if got := rules.plans.len(); got != 6 {
		t.Fatalf("want 6 cached single-hole plans, have %d", got)
	}
	// Second run must not grow the cache.
	if _, err := GE1With(rules, test, GEOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if got := rules.plans.len(); got != 6 {
		t.Fatalf("second run grew the cache to %d plans", got)
	}
}

func TestGE1WithWidthMismatch(t *testing.T) {
	rules, _ := minedRulesForGE(t, 80, 4)
	rng := rand.New(rand.NewSource(1))
	wrong := randomCorrelated(rng, 10, 5)
	if _, err := GE1With(rules, wrong, GEOptions{}); err == nil {
		t.Fatal("want width-mismatch error")
	}
}
