package store

import "ratiorules/internal/obs"

// storeMetrics is the durability-layer instrumentation, registered on
// whichever obs.Registry the store was opened with (the process-wide
// default unless WithObs was given). All names carry the rr_store_
// prefix; registration is idempotent so reopening a store — or running
// several — is safe.
type storeMetrics struct {
	appends          *obs.CounterVec // op: put | delete
	walWrittenBytes  *obs.Counter
	walSizeBytes     *obs.Gauge
	fsyncs           *obs.Counter
	walFailures      *obs.Counter
	snapshots        *obs.Counter
	snapshotErrors   *obs.Counter
	snapshotSeconds  *obs.Histogram
	recoveredRecords *obs.Counter
	recoveredModels  *obs.Gauge
	tornRecords      *obs.Counter
	models           *obs.Gauge
}

func newStoreMetrics(r *obs.Registry) *storeMetrics {
	return &storeMetrics{
		appends: r.CounterVec("rr_store_wal_appends_total",
			"WAL records committed, by operation.", "op"),
		walWrittenBytes: r.Counter("rr_store_wal_written_bytes_total",
			"Bytes appended to the WAL (headers included)."),
		walSizeBytes: r.Gauge("rr_store_wal_size_bytes",
			"Current WAL size; drops to zero after compaction."),
		fsyncs: r.Counter("rr_store_fsyncs_total",
			"fsync calls issued by the store (WAL commits and resets)."),
		walFailures: r.Counter("rr_store_wal_rollback_failures_total",
			"WAL commit failures whose rollback truncation also failed, wedging the store."),
		snapshots: r.Counter("rr_store_snapshots_total",
			"Snapshots successfully written and compacted."),
		snapshotErrors: r.Counter("rr_store_snapshot_errors_total",
			"Snapshot attempts that failed (the WAL still holds the data)."),
		snapshotSeconds: r.Histogram("rr_store_snapshot_seconds",
			"Snapshot write + WAL compaction duration.", obs.DefBuckets),
		recoveredRecords: r.Counter("rr_store_recovered_records_total",
			"WAL records replayed during recovery at open."),
		recoveredModels: r.Gauge("rr_store_recovered_models",
			"Models restored by the most recent open."),
		tornRecords: r.Counter("rr_store_torn_records_total",
			"Torn or corrupt WAL tails truncated during recovery."),
		models: r.Gauge("rr_store_models",
			"Live models currently in the store."),
	}
}
