package store

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// TestEventsSinceTailing: every commit lands in the replication log and
// EventsSince serves exactly the suffix after a given seq.
func TestEventsSinceTailing(t *testing.T) {
	st := OpenMemory()
	r := testRules(t, 2)
	for i := 0; i < 5; i++ {
		if _, err := st.Put("m", r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Delete("m"); err != nil {
		t.Fatal(err)
	}
	if got := st.Seq(); got != 6 {
		t.Fatalf("seq = %d, want 6", got)
	}

	events, err := st.EventsSince(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 {
		t.Fatalf("EventsSince(0) = %d events, want 6", len(events))
	}
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if events[5].Op != "delete" || events[5].Name != "m" {
		t.Fatalf("last event = %+v, want delete m", events[5])
	}
	if events[2].Version != 3 || !bytes.Equal(events[2].Rules, rawOf(t, r)) {
		t.Fatalf("put event does not carry the canonical raw bytes: %+v", events[2])
	}

	tail, err := st.EventsSince(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 2 || tail[0].Seq != 5 {
		t.Fatalf("EventsSince(4) = %+v, want seqs 5,6", tail)
	}
	head, err := st.EventsSince(6)
	if err != nil || len(head) != 0 {
		t.Fatalf("EventsSince(head) = %v, %v; want empty, nil", head, err)
	}
}

// TestEventsSinceBounds: a seq ahead of the head or behind the retained
// log answers ErrSnapshotNeeded.
func TestEventsSinceBounds(t *testing.T) {
	st := OpenMemory(WithReplicationLog(3))
	r := testRules(t, 2)
	for i := 0; i < 6; i++ {
		if _, err := st.Put("m", r); err != nil {
			t.Fatal(err)
		}
	}
	// Log bound 3: seqs 4..6 retained, asking from 2 must bootstrap.
	if _, err := st.EventsSince(2); !errors.Is(err, ErrSnapshotNeeded) {
		t.Fatalf("EventsSince(trimmed) err = %v, want ErrSnapshotNeeded", err)
	}
	if events, err := st.EventsSince(3); err != nil || len(events) != 3 {
		t.Fatalf("EventsSince(base) = %v, %v; want 3 events", events, err)
	}
	if _, err := st.EventsSince(99); !errors.Is(err, ErrSnapshotNeeded) {
		t.Fatalf("EventsSince(future) err = %v, want ErrSnapshotNeeded", err)
	}
}

// TestEventsSinceAfterReopen: recovery replays without journaling, so a
// reopened store retains nothing and forces a snapshot bootstrap for
// any follower that is behind.
func TestEventsSinceAfterReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	r := testRules(t, 2)
	for i := 0; i < 3; i++ {
		if _, err := st.Put("m", r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Seq(); got != 3 {
		t.Fatalf("recovered seq = %d, want 3", got)
	}
	if _, err := st2.EventsSince(1); !errors.Is(err, ErrSnapshotNeeded) {
		t.Fatalf("EventsSince after reopen err = %v, want ErrSnapshotNeeded", err)
	}
	if events, err := st2.EventsSince(3); err != nil || len(events) != 0 {
		t.Fatalf("EventsSince(head) after reopen = %v, %v", events, err)
	}
	// New commits tail normally again.
	if _, err := st2.Put("m", r); err != nil {
		t.Fatal(err)
	}
	if events, err := st2.EventsSince(3); err != nil || len(events) != 1 || events[0].Seq != 4 {
		t.Fatalf("EventsSince(3) after new commit = %v, %v", events, err)
	}
}

// TestChangedWakesTailers: a Changed channel obtained before a commit
// is closed by it.
func TestChangedWakesTailers(t *testing.T) {
	st := OpenMemory()
	ch := st.Changed()
	select {
	case <-ch:
		t.Fatal("Changed closed before any commit")
	default:
	}
	if _, err := st.Put("m", testRules(t, 2)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("Changed not closed by commit")
	}
	// Re-armed channel waits for the next commit.
	ch2 := st.Changed()
	select {
	case <-ch2:
		t.Fatal("re-armed Changed already closed")
	default:
	}
}

// TestApplyEventReplication drives a leader→follower pair through the
// store API alone: every leader event applies exactly once, replays are
// skipped (seq idempotence), gaps are rejected, and the follower serves
// byte-identical raw models at the same versions.
func TestApplyEventReplication(t *testing.T) {
	leader := OpenMemory()
	follower := OpenMemory()
	r1, r2 := testRules(t, 2), testRules(t, 3)
	if _, err := leader.Put("m", r1); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Put("m", r2); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Put("other", r1); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Delete("other"); err != nil {
		t.Fatal(err)
	}

	events, err := leader.EventsSince(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		applied, err := follower.ApplyEvent(ev)
		if err != nil || !applied {
			t.Fatalf("ApplyEvent(%d) = %v, %v", ev.Seq, applied, err)
		}
	}
	// Replaying the whole stream is a no-op.
	for _, ev := range events {
		applied, err := follower.ApplyEvent(ev)
		if err != nil {
			t.Fatalf("re-ApplyEvent(%d): %v", ev.Seq, err)
		}
		if applied {
			t.Fatalf("re-ApplyEvent(%d) applied twice", ev.Seq)
		}
	}
	if follower.Seq() != leader.Seq() {
		t.Fatalf("follower seq %d, leader %d", follower.Seq(), leader.Seq())
	}
	lr, lv, _ := leader.GetRaw("m")
	fr, fv, ok := follower.GetRaw("m")
	if !ok || lv != fv || !bytes.Equal(lr, fr) {
		t.Fatalf("follower head (v%d, %d bytes) != leader (v%d, %d bytes)", fv, len(fr), lv, len(lr))
	}
	if _, _, ok := follower.Get("other"); ok {
		t.Fatal("follower kept a model the leader deleted")
	}
	if len(follower.Names()) != 1 {
		t.Fatalf("follower names = %v", follower.Names())
	}
	// A version history check: both retained the same revisions.
	li, _ := leader.Versions("m")
	fi, _ := follower.Versions("m")
	if len(li) != len(fi) || len(fi) != 2 {
		t.Fatalf("version history mismatch: leader %d, follower %d", len(li), len(fi))
	}

	// A gap (skipping a seq) must be rejected with ErrSnapshotNeeded.
	if _, err := leader.Put("m", r1); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Put("m", r2); err != nil {
		t.Fatal(err)
	}
	tail, err := leader.EventsSince(leader.Seq() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := follower.ApplyEvent(tail[0]); !errors.Is(err, ErrSnapshotNeeded) {
		t.Fatalf("gap apply err = %v, want ErrSnapshotNeeded", err)
	}

	// Garbage events are rejected before touching any state.
	if _, err := follower.ApplyEvent(Event{Seq: follower.Seq() + 1, Op: "put", Name: "x", Version: 1,
		Rules: []byte("{")}); err == nil {
		t.Fatal("corrupt put accepted")
	}
	if _, err := follower.ApplyEvent(Event{Seq: follower.Seq() + 1, Op: "nope", Name: "x"}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

// TestApplyEventDurable: replicated events are journaled into the
// follower's own WAL under the leader's seq, so a restarted follower
// resumes from its checkpointed position with identical state.
func TestApplyEventDurable(t *testing.T) {
	leader := OpenMemory()
	r1, r2 := testRules(t, 2), testRules(t, 3)
	if _, err := leader.Put("m", r1); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Put("m", r2); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	follower, err := Open(dir, WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	events, err := leader.EventsSince(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if _, err := follower.ApplyEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(dir, WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Seq() != leader.Seq() {
		t.Fatalf("reopened follower seq %d, leader %d", reopened.Seq(), leader.Seq())
	}
	lr, lv, _ := leader.GetRaw("m")
	fr, fv, ok := reopened.GetRaw("m")
	if !ok || fv != lv || !bytes.Equal(lr, fr) {
		t.Fatal("reopened follower state diverged from leader")
	}
	// Replaying the stream against the recovered store is still a no-op.
	for _, ev := range events {
		if applied, err := reopened.ApplyEvent(ev); err != nil || applied {
			t.Fatalf("replay after reopen: applied=%v err=%v", applied, err)
		}
	}
}

// TestRestoreSnapshot: the bootstrap path replaces the full state
// atomically, persists it, and leaves the store tailing from the
// restored seq.
func TestRestoreSnapshot(t *testing.T) {
	leader := OpenMemory()
	r1, r2 := testRules(t, 2), testRules(t, 3)
	if _, err := leader.Put("m", r1); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Put("m", r2); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Put("gone", r1); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	doc := leader.SnapshotDoc()
	if doc.Seq != 4 {
		t.Fatalf("doc seq = %d, want 4", doc.Seq)
	}

	dir := t.TempDir()
	follower, err := Open(dir, WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	// Pre-existing local state (a stale bootstrap) is fully replaced.
	if _, err := follower.Put("stale", r1); err != nil {
		t.Fatal(err)
	}
	if err := follower.RestoreSnapshot(doc); err != nil {
		t.Fatal(err)
	}
	if follower.Seq() != 4 {
		t.Fatalf("restored seq = %d, want 4", follower.Seq())
	}
	if _, _, ok := follower.Get("stale"); ok {
		t.Fatal("stale pre-bootstrap model survived the restore")
	}
	lr, lv, _ := leader.GetRaw("m")
	fr, fv, ok := follower.GetRaw("m")
	if !ok || fv != lv || !bytes.Equal(lr, fr) {
		t.Fatal("restored state is not byte-identical to the leader")
	}
	// The deleted name's version counter shipped too: a future put on
	// the follower-turned-leader would not reuse versions.
	if doc.LastVersion["gone"] != 1 {
		t.Fatalf("doc.LastVersion[gone] = %d, want 1", doc.LastVersion["gone"])
	}

	// Restore persists: a reopen recovers the restored state without
	// replaying stale local WAL records past it.
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(dir, WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Seq() != 4 {
		t.Fatalf("reopened restored seq = %d, want 4", reopened.Seq())
	}
	if _, _, ok := reopened.Get("stale"); ok {
		t.Fatal("stale model resurrected by recovery after restore")
	}

	// A corrupt doc must not touch any state.
	bad := leader.SnapshotDoc()
	bad.Models["m"][0].Rules = []byte("{torn")
	before, _, _ := reopened.GetRaw("m")
	if err := reopened.RestoreSnapshot(bad); err == nil {
		t.Fatal("corrupt snapshot doc accepted")
	}
	after, _, ok := reopened.GetRaw("m")
	if !ok || !bytes.Equal(before, after) {
		t.Fatal("failed restore mutated state")
	}
}
