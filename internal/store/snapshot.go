package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// snapshotFormat versions the snapshot schema for forward compatibility.
const snapshotFormat = 1

const (
	walFileName      = "wal.log"
	snapshotFileName = "snapshot.json"
	lockFileName     = "lock"
)

// snapRev is one retained revision of a model inside a snapshot.
type snapRev struct {
	Version int             `json:"version"`
	Rules   json.RawMessage `json:"rules"`
}

// snapshotFile is the on-disk snapshot: the full store state as of Seq.
// WAL events with seq <= Seq are already folded in and are skipped on
// replay. LastVersion outlives deletes so a re-created model continues
// its version counter and ETags never repeat.
type snapshotFile struct {
	Format      int                  `json:"format"`
	Seq         uint64               `json:"seq"`
	Models      map[string][]snapRev `json:"models"`
	LastVersion map[string]int       `json:"last_version,omitempty"`
}

// loadSnapshot reads the snapshot if present; a missing file yields an
// empty state. A corrupt snapshot is a hard error: snapshot writes are
// atomic (temp + rename), so damage here means real disk trouble and
// silently starting empty would discard committed data.
func loadSnapshot(path string) (*snapshotFile, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return &snapshotFile{Format: snapshotFormat}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading snapshot: %w", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("store: corrupt snapshot %s: %w", path, err)
	}
	if snap.Format != snapshotFormat {
		return nil, fmt.Errorf("store: snapshot format %d, want %d", snap.Format, snapshotFormat)
	}
	return &snap, nil
}

// writeSnapshot atomically replaces the snapshot: write to a temp file
// in the same directory, fsync it, rename over the target, then fsync
// the directory so the rename itself is durable.
func writeSnapshot(dir string, snap *snapshotFile) error {
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	path := filepath.Join(dir, snapshotFileName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating snapshot temp: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: closing snapshot temp: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
// Not all platforms support fsync on directories; that is best-effort.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
