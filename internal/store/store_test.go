package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"ratiorules/internal/core"
	"ratiorules/internal/matrix"
)

// testRules mines a tiny 2-attribute rule set with slope controlling
// the b:a ratio, so distinct slopes yield distinct (byte-distinct)
// models.
func testRules(t testing.TB, slope float64) *core.Rules {
	t.Helper()
	rows := make([][]float64, 20)
	for i := range rows {
		v := 1 + float64(i)*0.25
		rows[i] = []float64{v, slope * v}
	}
	x, err := matrix.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	miner, err := core.NewMiner(core.WithAttrNames([]string{"a", "b"}))
	if err != nil {
		t.Fatal(err)
	}
	rules, err := miner.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

// rawOf returns the store's canonical (compact) JSON of a rule set.
func rawOf(t testing.TB, r *core.Rules) []byte {
	t.Helper()
	raw, err := encodeRules(r)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestPutGetVersioning(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	r1, r2 := testRules(t, 2), testRules(t, 3)
	if v, err := st.Put("m", r1); err != nil || v != 1 {
		t.Fatalf("first put = v%d, %v; want v1", v, err)
	}
	if v, err := st.Put("m", r2); err != nil || v != 2 {
		t.Fatalf("second put = v%d, %v; want v2", v, err)
	}
	rules, version, ok := st.Get("m")
	if !ok || version != 2 {
		t.Fatalf("Get head = v%d, ok=%v; want v2", version, ok)
	}
	if !reflect.DeepEqual(rawOf(t, rules), rawOf(t, r2)) {
		t.Error("head is not the second put")
	}
	if old, ok := st.GetVersion("m", 1); !ok || !bytes.Equal(rawOf(t, old), rawOf(t, r1)) {
		t.Error("pinned v1 not retrievable")
	}
	if _, ok := st.GetVersion("m", 99); ok {
		t.Error("phantom version retrievable")
	}
	infos, ok := st.Versions("m")
	if !ok || len(infos) != 2 {
		t.Fatalf("Versions = %v, ok=%v", infos, ok)
	}
	if infos[0].Version != 1 || infos[0].Head || infos[1].Version != 2 || !infos[1].Head {
		t.Errorf("version metadata wrong: %+v", infos)
	}
	if infos[1].K != r2.K() || infos[1].M != 2 || infos[1].TrainedRows != 20 || infos[1].Bytes == 0 {
		t.Errorf("head info = %+v", infos[1])
	}
	if names := st.Names(); len(names) != 1 || names[0] != "m" || st.Len() != 1 {
		t.Errorf("Names = %v, Len = %d", names, st.Len())
	}
}

func TestDeleteKeepsVersionCounter(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if _, err := st.Put("m", testRules(t, 2)); err != nil {
		t.Fatal(err)
	}
	if ok, err := st.Delete("m"); !ok || err != nil {
		t.Fatalf("delete = %v, %v", ok, err)
	}
	if ok, err := st.Delete("m"); ok || err != nil {
		t.Fatalf("double delete = %v, %v", ok, err)
	}
	if _, _, ok := st.Get("m"); ok {
		t.Fatal("deleted model still served")
	}
	// Version numbering must never restart — ETags derived from it
	// would otherwise collide with pre-delete caches.
	if v, err := st.Put("m", testRules(t, 3)); err != nil || v != 2 {
		t.Fatalf("re-created model = v%d, %v; want v2", v, err)
	}
}

func TestRollback(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	r1, r2 := testRules(t, 2), testRules(t, 3)
	st.Put("m", r1)
	st.Put("m", r2)
	restored, newV, err := st.Rollback("m", 1)
	if err != nil || newV != 3 {
		t.Fatalf("rollback = v%d, %v; want v3", newV, err)
	}
	if !bytes.Equal(rawOf(t, restored), rawOf(t, r1)) {
		t.Error("rollback did not return the restored revision")
	}
	raw, version, ok := st.GetRaw("m")
	if !ok || version != 3 || !bytes.Equal(raw, rawOf(t, r1)) {
		t.Fatalf("head after rollback: v%d ok=%v, bytes match=%v", version, ok, bytes.Equal(raw, rawOf(t, r1)))
	}
	if infos, _ := st.Versions("m"); len(infos) != 3 {
		t.Errorf("rollback must extend history, got %d revisions", len(infos))
	}

	if _, _, err := st.Rollback("nope", 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("rollback of unknown model: %v", err)
	}
	if _, _, err := st.Rollback("m", 42); !errors.Is(err, ErrVersionNotFound) {
		t.Errorf("rollback to unknown version: %v", err)
	}
}

func TestReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2, r3 := testRules(t, 2), testRules(t, 3), testRules(t, 4)
	st.Put("a", r1)
	st.Put("a", r2)
	st.Put("b", r3)
	st.Delete("b")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if names := st2.Names(); len(names) != 1 || names[0] != "a" {
		t.Fatalf("reopened names = %v", names)
	}
	raw, version, ok := st2.GetRaw("a")
	if !ok || version != 2 || !bytes.Equal(raw, rawOf(t, r2)) {
		t.Fatalf("reopened head: v%d, byte-equal=%v", version, bytes.Equal(raw, rawOf(t, r2)))
	}
	if old, ok := st2.GetVersion("a", 1); !ok || !bytes.Equal(rawOf(t, old), rawOf(t, r1)) {
		t.Error("reopened store lost v1 history")
	}
	// Deleted b's counter survives the reopen too.
	if v, err := st2.Put("b", r3); err != nil || v != 2 {
		t.Errorf("b after reopen = v%d, %v; want v2", v, err)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, WithSnapshotEvery(2))
	if err != nil {
		t.Fatal(err)
	}
	st.Put("a", testRules(t, 2))
	walPath := filepath.Join(dir, walFileName)
	if fi, err := os.Stat(walPath); err != nil || fi.Size() == 0 {
		t.Fatalf("WAL empty before snapshot threshold: %v", err)
	}
	st.Put("a", testRules(t, 3)) // second event triggers the snapshot
	if fi, err := os.Stat(walPath); err != nil || fi.Size() != 0 {
		t.Fatalf("WAL not compacted after snapshot: size=%d err=%v", fi.Size(), err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFileName)); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, version, ok := st2.Get("a"); !ok || version != 2 {
		t.Fatalf("post-compaction reopen: v%d ok=%v", version, ok)
	}
	if infos, _ := st2.Versions("a"); len(infos) != 2 {
		t.Errorf("history lost in snapshot: %d revisions", len(infos))
	}
}

func TestMemoryStore(t *testing.T) {
	st := OpenMemory()
	if v, err := st.Put("m", testRules(t, 2)); err != nil || v != 1 {
		t.Fatalf("memory put = v%d, %v", v, err)
	}
	if _, _, err := st.Rollback("m", 1); err != nil {
		t.Fatalf("memory rollback: %v", err)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatalf("memory snapshot must be a no-op, got %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put("m", testRules(t, 2)); err != ErrClosed {
		t.Errorf("put after close = %v, want ErrClosed", err)
	}
	if _, err := st.Delete("m"); err != ErrClosed {
		t.Errorf("delete after close = %v, want ErrClosed", err)
	}
}

func TestPutValidation(t *testing.T) {
	st := OpenMemory()
	defer st.Close()
	if _, err := st.Put("", testRules(t, 2)); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := st.Put("m", nil); err == nil {
		t.Error("nil rules accepted")
	}
}

func TestMaxVersionsPruning(t *testing.T) {
	st, err := Open(t.TempDir(), WithMaxVersions(2))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.Put("m", testRules(t, 2))
	st.Put("m", testRules(t, 3))
	st.Put("m", testRules(t, 4))
	infos, _ := st.Versions("m")
	if len(infos) != 2 || infos[0].Version != 2 || infos[1].Version != 3 {
		t.Fatalf("retained = %+v, want v2,v3", infos)
	}
	if _, ok := st.GetVersion("m", 1); ok {
		t.Error("pruned version still retrievable")
	}
	if _, _, err := st.Rollback("m", 1); !errors.Is(err, ErrVersionNotFound) {
		t.Errorf("rollback to pruned version: %v", err)
	}
}

// TestConcurrentAccess exercises the store under the race detector
// (make verify-store runs this package with -race -count=3).
func TestConcurrentAccess(t *testing.T) {
	st, err := Open(t.TempDir(), WithNoSync(), WithSnapshotEvery(8))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rules := testRules(t, 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("m%d", g)
			for i := 0; i < 25; i++ {
				if _, err := st.Put(name, rules); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				st.Get(name)
				st.GetRaw(name)
				st.Versions(name)
				st.Names()
				if i%5 == 4 {
					if _, err := st.Delete(name); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
