package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ratiorules/internal/obs"
)

// walSize stats the live WAL of a store directory.
func walSize(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestCrashRecoveryEveryTruncationOffset simulates a crash mid-append
// at every possible byte offset of the final WAL record: for each cut
// point the store must open, truncate the torn tail, and serve exactly
// the last fully-committed state. The first store is never closed —
// copying its fsynced WAL is the crash.
func TestCrashRecoveryEveryTruncationOffset(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	r1, r2 := testRules(t, 2), testRules(t, 3)
	if _, err := st.Put("m", r1); err != nil {
		t.Fatal(err)
	}
	off1 := walSize(t, dir)
	if _, err := st.Put("m", r2); err != nil {
		t.Fatal(err)
	}
	off2 := walSize(t, dir)
	walData, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(walData)) != off2 || off1 <= 0 || off2 <= off1 {
		t.Fatalf("unexpected WAL layout: len=%d off1=%d off2=%d", len(walData), off1, off2)
	}
	want1, want2 := rawOf(t, r1), rawOf(t, r2)

	// reopen writes a truncated WAL copy into a fresh dir and recovers.
	reopen := func(t *testing.T, data []byte) (*Store, string) {
		t.Helper()
		d := t.TempDir()
		if err := os.WriteFile(filepath.Join(d, walFileName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(d, WithLogger(obs.NopLogger()))
		if err != nil {
			t.Fatalf("recovery must never fail open: %v", err)
		}
		t.Cleanup(func() { st.Close() })
		return st, d
	}

	// Cuts inside the second record: recover to exactly v1.
	for cut := off1; cut < off2; cut++ {
		st2, d := reopen(t, walData[:cut])
		raw, version, ok := st2.GetRaw("m")
		if !ok || version != 1 || !bytes.Equal(raw, want1) {
			t.Fatalf("cut %d: recovered v%d ok=%v byte-equal=%v; want clean v1",
				cut, version, ok, bytes.Equal(raw, want1))
		}
		if got := walSize(t, d); got != off1 {
			t.Fatalf("cut %d: torn tail not truncated: wal size %d, want %d", cut, got, off1)
		}
	}

	// Cuts inside the first record: recover to the empty store.
	for cut := int64(0); cut < off1; cut += 7 { // stride: same code path, 7x fewer subtests
		st2, d := reopen(t, walData[:cut])
		if st2.Len() != 0 {
			t.Fatalf("cut %d: %d models recovered from torn-only WAL", cut, st2.Len())
		}
		if got := walSize(t, d); got != 0 {
			t.Fatalf("cut %d: wal size %d after truncation, want 0", cut, got)
		}
	}

	// The untouched WAL recovers both versions with history intact.
	st2, _ := reopen(t, walData)
	raw, version, ok := st2.GetRaw("m")
	if !ok || version != 2 || !bytes.Equal(raw, want2) {
		t.Fatalf("full WAL: recovered v%d, byte-equal=%v", version, bytes.Equal(raw, want2))
	}
	if old, ok := st2.GetVersion("m", 1); !ok || !bytes.Equal(rawOf(t, old), want1) {
		t.Fatal("full WAL: v1 history lost")
	}

	// A bit flip inside the final record's payload fails the CRC and
	// rolls back to v1 — and the torn-record metric must say so.
	reg := obs.NewRegistry()
	flipped := append([]byte(nil), walData...)
	flipped[off2-2] ^= 0xff
	d := t.TempDir()
	if err := os.WriteFile(filepath.Join(d, walFileName), flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(d, WithObs(reg))
	if err != nil {
		t.Fatalf("bit-flip recovery: %v", err)
	}
	defer st3.Close()
	if _, version, _ := st3.Get("m"); version != 1 {
		t.Fatalf("bit-flip: recovered v%d, want v1", version)
	}
	if got := reg.Snapshot()["rr_store_torn_records_total"]; got != 1 {
		t.Errorf("rr_store_torn_records_total = %v, want 1", got)
	}
}

// TestRecoverySkipsSnapshottedEvents covers the crash window between
// snapshot rename and WAL truncate: replaying a WAL whose events are
// already folded into the snapshot must not double-apply them.
func TestRecoverySkipsSnapshottedEvents(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.Put("m", testRules(t, 2))
	st.Put("m", testRules(t, 3))
	walData, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(); err != nil { // compacts the WAL
		t.Fatal(err)
	}
	// Crash reconstruction: snapshot present AND the pre-compaction WAL.
	if err := os.WriteFile(filepath.Join(dir, walFileName), walData, 0o644); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	infos, ok := st2.Versions("m")
	if !ok || len(infos) != 2 {
		t.Fatalf("double-applied replay: %d revisions, want 2", len(infos))
	}
	if _, version, _ := st2.Get("m"); version != 2 {
		t.Fatalf("head = v%d, want v2", version)
	}
	// The next put must continue the sequence, not collide with it.
	if v, err := st2.Put("m", testRules(t, 4)); err != nil || v != 3 {
		t.Fatalf("put after stale-WAL recovery = v%d, %v", v, err)
	}
}

// TestOpenErrorPaths exercises the unopenable-directory failures (the
// fstest-style error path: the "directory" is not writable because it
// is not a directory at all — permission bits are useless under root,
// which is how CI containers run).
func TestOpenErrorPaths(t *testing.T) {
	base := t.TempDir()
	file := filepath.Join(base, "plainfile")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(file, "sub")); err == nil {
		t.Error("Open under a plain file must fail")
	}
	// wal.log occupied by a directory: the WAL cannot be created.
	dir := filepath.Join(base, "walisdir")
	if err := os.MkdirAll(filepath.Join(dir, walFileName), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("Open with wal.log as a directory must fail")
	}
	// Corrupt snapshot: hard error, never silently empty.
	dir2 := filepath.Join(base, "badsnap")
	if err := os.MkdirAll(dir2, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir2, snapshotFileName), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir2); err == nil {
		t.Error("corrupt snapshot must fail open")
	}
}
