package store

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"io"
)

// WAL record layout (all integers big-endian):
//
//	offset  size  field
//	0       4     payload length N
//	4       4     CRC32 (IEEE) of the payload
//	8       N     payload: one walEvent as JSON
//
// Records are appended with a single Write call and fsynced before the
// mutation is acknowledged, so a crash leaves at most one torn record
// at the tail. There is no resync marker: replay stops at the first
// record that fails the length, checksum or JSON checks and the file is
// truncated there (see Open).
const (
	walHeaderSize = 8
	// maxWalRecord rejects absurd lengths during replay so a few bytes
	// of tail garbage cannot demand a gigabyte allocation.
	maxWalRecord = 1 << 30
)

// Operations journaled in the WAL. Rollback is journaled as a plain put
// of the restored revision under a fresh version number, so replay needs
// only these two.
const (
	opPut    = "put"
	opDelete = "delete"
)

// walEvent is one journaled mutation. Seq is a store-wide monotonic
// sequence number: replay skips events at or below the snapshot's
// sequence, which makes the snapshot-then-compact dance idempotent even
// if the process dies between the snapshot rename and the WAL truncate.
type walEvent struct {
	Seq     uint64          `json:"seq"`
	Op      string          `json:"op"`
	Name    string          `json:"name"`
	Version int             `json:"version,omitempty"`
	Rules   json.RawMessage `json:"rules,omitempty"` // core.Rules JSON (put only)
	// Trace is the W3C traceparent of the mutation that journaled the
	// event ("" when untraced). It ships to follower replicas via the
	// identical-shape Event struct, so a follower's replica.apply span
	// can continue the leader's originating trace.
	Trace string `json:"trace,omitempty"`
}

// encodeRecord frames a payload as one WAL record.
func encodeRecord(payload []byte) []byte {
	rec := make([]byte, walHeaderSize+len(payload))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	copy(rec[walHeaderSize:], payload)
	return rec
}

// decodeRecords walks buf and returns the fully-committed events plus
// the byte offset where the first torn or corrupt record begins (equal
// to len(buf) when the log is clean). It never fails: anything invalid
// simply ends the walk, which is exactly the truncate-and-warn recovery
// contract.
func decodeRecords(buf []byte) (events []walEvent, valid int) {
	off := 0
	for {
		if len(buf)-off < walHeaderSize {
			return events, off
		}
		n := int(binary.BigEndian.Uint32(buf[off : off+4]))
		sum := binary.BigEndian.Uint32(buf[off+4 : off+8])
		if n > maxWalRecord || len(buf)-off-walHeaderSize < n {
			return events, off
		}
		payload := buf[off+walHeaderSize : off+walHeaderSize+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return events, off
		}
		var ev walEvent
		if err := json.Unmarshal(payload, &ev); err != nil {
			return events, off
		}
		events = append(events, ev)
		off += walHeaderSize + n
	}
}

// walFile is the file surface walWriter needs; *os.File satisfies it.
// Tests substitute failing implementations to drive the append/commit
// error paths.
type walFile interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Close() error
}

// walWriter appends framed records to the open log file, fsyncing each
// commit unless the store was opened with WithNoSync.
type walWriter struct {
	f    walFile
	sync bool
	size int64 // bytes currently in the log
}

// append frames and writes one payload, returning the record size.
func (w *walWriter) append(payload []byte) (int, error) {
	rec := encodeRecord(payload)
	if _, err := w.f.Write(rec); err != nil {
		return 0, err
	}
	w.size += int64(len(rec))
	return len(rec), nil
}

// commit makes the last append durable.
func (w *walWriter) commit() error {
	if !w.sync {
		return nil
	}
	return w.f.Sync()
}

// rollback restores the log to prevSize after a failed append or
// commit. A partial write (ENOSPC, I/O error) leaves torn bytes at the
// tail, and a failed fsync leaves an unacknowledged full record; either
// way, later appends would land after the bad bytes and recovery would
// stop at the tear — silently discarding every subsequently
// acknowledged write. Truncating back to the last committed record
// keeps the log identical to what callers were told is durable.
func (w *walWriter) rollback(prevSize int64) error {
	if err := w.f.Truncate(prevSize); err != nil {
		return err
	}
	if _, err := w.f.Seek(prevSize, io.SeekStart); err != nil {
		return err
	}
	w.size = prevSize
	return nil
}

// reset discards the log contents after a successful snapshot.
func (w *walWriter) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return err
	}
	w.size = 0
	if w.sync {
		return w.f.Sync()
	}
	return nil
}

func (w *walWriter) close() error {
	if w.sync {
		if err := w.f.Sync(); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.f.Close()
}
