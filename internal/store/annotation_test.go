package store

import (
	"testing"
)

// TestVersionGEAnnotations: advisory GE annotations attach to retained
// revisions, surface in Versions, and vanish with pruned versions.
func TestVersionGEAnnotations(t *testing.T) {
	s := OpenMemory(WithMaxVersions(2))
	defer s.Close()

	if _, ok := s.VersionGE("m", 1); ok {
		t.Fatal("annotation on missing model")
	}
	s.SetVersionGE("m", 1, 0.5) // no such model: ignored, no panic

	rules := testRules(t, 2)
	for i := 0; i < 3; i++ {
		if _, err := s.Put("m", rules); err != nil {
			t.Fatal(err)
		}
	}
	// Versions 2 and 3 are retained (max 2), version 1 pruned.
	s.SetVersionGE("m", 2, 0.25)
	s.SetVersionGE("m", 1, 0.75) // pruned: ignored

	if ge, ok := s.VersionGE("m", 2); !ok || ge != 0.25 {
		t.Fatalf("VersionGE(2) = %v/%v, want 0.25/true", ge, ok)
	}
	if _, ok := s.VersionGE("m", 3); ok {
		t.Fatal("unannotated version reported an annotation")
	}
	if _, ok := s.VersionGE("m", 1); ok {
		t.Fatal("pruned version reported an annotation")
	}

	infos, ok := s.Versions("m")
	if !ok || len(infos) != 2 {
		t.Fatalf("Versions = %v/%v", infos, ok)
	}
	if infos[0].Version != 2 || infos[0].GE == nil || *infos[0].GE != 0.25 {
		t.Fatalf("infos[0] = %+v, want GE 0.25", infos[0])
	}
	if infos[1].GE != nil {
		t.Fatalf("infos[1] = %+v, want no GE", infos[1])
	}

	// Overwrite sticks.
	s.SetVersionGE("m", 2, 0.125)
	if ge, _ := s.VersionGE("m", 2); ge != 0.125 {
		t.Fatalf("overwritten GE = %v, want 0.125", ge)
	}
}

// TestFailedAccessor: a healthy store reports nil; the wedge state is
// covered end to end in wal_failure_test.go.
func TestFailedAccessor(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	if err := s.Failed(); err != nil {
		t.Fatalf("Failed() on healthy store = %v", err)
	}
}
