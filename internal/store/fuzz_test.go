package store

import (
	"bytes"
	"encoding/json"
	"testing"
)

// fuzzSeedRecords builds a small valid WAL for seeding the fuzzer.
func fuzzSeedRecords(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i, ev := range []walEvent{
		{Seq: 1, Op: opPut, Name: "m", Version: 1, Rules: json.RawMessage(`{"means":[0],"eigenvalues":[1],"total_variance":1,"trained_rows":2,"vectors":[[1]]}`)},
		{Seq: 2, Op: opDelete, Name: "m"},
	} {
		payload, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		buf.Write(encodeRecord(payload))
	}
	return buf.Bytes()
}

// FuzzWALDecode throws arbitrary bytes at the WAL record decoder: it
// must never panic, must report a valid-prefix offset inside the input,
// and decoding that prefix again must be a fixed point (the truncate
// step of recovery must converge in one pass).
func FuzzWALDecode(f *testing.F) {
	valid := fuzzSeedRecords(f)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])           // torn tail
	f.Add(append([]byte{0xff}, valid...)) // leading garbage
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0x01
	f.Add(corrupt)                                    // CRC failure in the last record
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length header

	f.Fuzz(func(t *testing.T, data []byte) {
		events, valid := decodeRecords(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid offset %d outside [0, %d]", valid, len(data))
		}
		again, validAgain := decodeRecords(data[:valid])
		if validAgain != valid || len(again) != len(events) {
			t.Fatalf("re-decode of valid prefix: offset %d/%d, %d/%d events",
				validAgain, valid, len(again), len(events))
		}
		// Every decoded event must survive a marshal/encode/decode
		// round trip — what recovery replays is what append committed.
		var rebuilt bytes.Buffer
		for _, ev := range events {
			payload, err := json.Marshal(ev)
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			rebuilt.Write(encodeRecord(payload))
		}
		round, roundValid := decodeRecords(rebuilt.Bytes())
		if roundValid != rebuilt.Len() || len(round) != len(events) {
			t.Fatalf("round trip lost records: %d/%d", len(round), len(events))
		}
	})
}

// TestDecodeRecordsUnit pins the exact decoder behavior the fuzz target
// asserts structurally: clean logs decode fully, torn tails stop at the
// record boundary.
func TestDecodeRecordsUnit(t *testing.T) {
	data := fuzzSeedRecords(t)
	events, valid := decodeRecords(data)
	if valid != len(data) || len(events) != 2 {
		t.Fatalf("clean decode: offset %d/%d, %d events", valid, len(data), len(events))
	}
	if events[0].Op != opPut || events[0].Seq != 1 || events[1].Op != opDelete || events[1].Seq != 2 {
		t.Fatalf("decoded events wrong: %+v", events)
	}
	// Find the first record's frame size to check mid-stream cuts.
	payload0, _ := json.Marshal(events[0])
	first := walHeaderSize + len(payload0)
	for _, cut := range []int{0, 1, walHeaderSize - 1, walHeaderSize, first - 1} {
		ev, v := decodeRecords(data[:cut])
		if len(ev) != 0 || v != 0 {
			t.Errorf("cut %d: %d events, offset %d; want none", cut, len(ev), v)
		}
	}
	ev, v := decodeRecords(data[:first+3])
	if len(ev) != 1 || v != first {
		t.Errorf("torn second record: %d events, offset %d, want 1 event at %d", len(ev), v, first)
	}
}
