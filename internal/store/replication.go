package store

// Replication surface: the WAL is already a totally-ordered,
// seq-numbered event log with idempotent replay, so shipping it to
// follower replicas needs only four things from the store —
//
//   - EventsSince: committed events after a given seq, served from a
//     bounded in-memory replication log (appended at commit time, so it
//     survives disk WAL compaction: snapshotting the leader never cuts
//     off a follower that is only slightly behind);
//   - SnapshotDoc: a consistent full-state snapshot for followers too
//     far behind the retained log (or starting empty);
//   - ApplyEvent: the follower-side fold, idempotent on seq, journaling
//     each event into the follower's OWN WAL under the leader's seq so
//     the applied position is checkpointed for free and a restarted
//     follower resumes exactly where it stopped;
//   - RestoreSnapshot: the follower-side bootstrap, validating the full
//     doc before swapping any state so a half-read snapshot can never
//     become a torn served model.
//
// Memory-mode stores replicate identically (journal still advances seq
// and the replication log); they just re-bootstrap from the leader
// after a restart instead of from their own disk.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"ratiorules/internal/core"
)

// ctxBackground avoids re-allocating a background context on every
// replicated apply (they come in long runs during catch-up).
var ctxBackground = context.Background()

// DefaultReplicationLog is the default number of committed events
// retained in memory for follower catch-up. A follower further behind
// than this bootstraps from a snapshot instead.
const DefaultReplicationLog = 1024

// WithReplicationLog bounds the committed events retained in memory for
// follower catch-up (default DefaultReplicationLog; <= 0 retains none,
// forcing every follower attach through a snapshot bootstrap).
func WithReplicationLog(n int) Option { return func(o *options) { o.replicationLog = n } }

// Event is one committed store mutation, exactly as journaled: the unit
// of leader→follower replication. Op is "put" or "delete"; Rules is the
// canonical model JSON (put only), byte-identical to what the leader
// serves, so follower GETs and ETags match the leader at the same seq.
type Event struct {
	Seq     uint64          `json:"seq"`
	Op      string          `json:"op"`
	Name    string          `json:"name"`
	Version int             `json:"version,omitempty"`
	Rules   json.RawMessage `json:"rules,omitempty"`
	// Trace is the leader's originating traceparent ("" when the
	// mutation was untraced): what lets a follower's replica.apply span
	// link back to the leader trace that committed the mutation. The
	// field layout must stay identical to walEvent — the two convert by
	// direct struct conversion.
	Trace string `json:"trace,omitempty"`
}

// SnapshotRev is one retained revision inside a SnapshotDoc.
type SnapshotRev struct {
	Version int             `json:"version"`
	Rules   json.RawMessage `json:"rules"`
}

// SnapshotDoc is a consistent full-state snapshot as of Seq — the same
// shape the on-disk snapshot uses, exported for replication bootstrap.
// GE annotations are advisory and in-memory only; they do not ship.
type SnapshotDoc struct {
	Seq         uint64                   `json:"seq"`
	Models      map[string][]SnapshotRev `json:"models"`
	LastVersion map[string]int           `json:"last_version,omitempty"`
}

// ErrSnapshotNeeded reports that the requested seq precedes the
// retained replication log: the caller must bootstrap from SnapshotDoc.
var ErrSnapshotNeeded = errors.New("store: seq compacted past, snapshot bootstrap needed")

// Seq returns the last committed sequence number.
func (s *Store) Seq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// Changed returns a channel closed at the next committed mutation.
// Callers re-arm by calling Changed again after each wakeup; the
// channel obtained before a commit is always eventually closed, so a
// replication stream can never sleep through an event.
func (s *Store) Changed() <-chan struct{} {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.changed
}

// notifyChanged wakes every Changed waiter. Callers hold s.mu.
func (s *Store) notifyChanged() {
	close(s.changed)
	s.changed = make(chan struct{})
}

// appendReplog retains ev for follower catch-up, trimming to the
// configured bound. Callers hold s.mu; ev.Seq must be s.seq.
func (s *Store) appendReplog(ev walEvent) {
	if s.opts.replicationLog <= 0 {
		s.replogBase = ev.Seq
		return
	}
	s.replog = append(s.replog, Event(ev))
	if over := len(s.replog) - s.opts.replicationLog; over > 0 {
		s.replogBase = s.replog[over-1].Seq
		s.replog = append(s.replog[:0], s.replog[over:]...)
	}
}

// EventsSince returns the committed events with Seq > after, in order.
// It returns ErrSnapshotNeeded when `after` precedes the retained
// replication log (the store was restarted, or the log was trimmed past
// it) — the caller must bootstrap from SnapshotDoc and re-attach from
// its seq. A caller exactly at the head gets an empty slice; wait on
// Changed for more.
func (s *Store) EventsSince(after uint64) ([]Event, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if after > s.seq {
		return nil, fmt.Errorf("store: seq %d is ahead of head %d: %w", after, s.seq, ErrSnapshotNeeded)
	}
	if after < s.replogBase {
		return nil, fmt.Errorf("store: seq %d precedes retained log base %d: %w", after, s.replogBase, ErrSnapshotNeeded)
	}
	// replog holds (replogBase, seq] in seq order; skip what the caller
	// already has.
	events := s.replog
	i := 0
	for i < len(events) && events[i].Seq <= after {
		i++
	}
	events = events[i:]
	out := make([]Event, len(events))
	copy(out, events)
	return out, nil
}

// SnapshotDoc captures a consistent full-state snapshot for follower
// bootstrap. Reads run under the store read-lock, so the doc can never
// mix state across a concurrent commit.
func (s *Store) SnapshotDoc() *SnapshotDoc {
	s.mu.RLock()
	defer s.mu.RUnlock()
	doc := &SnapshotDoc{
		Seq:         s.seq,
		Models:      make(map[string][]SnapshotRev, len(s.models)),
		LastVersion: make(map[string]int, len(s.lastVersion)),
	}
	for name, m := range s.models {
		revs := make([]SnapshotRev, len(m.revs))
		for i, r := range m.revs {
			revs[i] = SnapshotRev{Version: r.version, Rules: r.raw}
		}
		doc.Models[name] = revs
	}
	for name, v := range s.lastVersion {
		doc.LastVersion[name] = v
	}
	return doc
}

// ApplyEvent folds one replicated event into this store under the
// LEADER's sequence number: the event is validated, journaled to this
// store's own WAL (durable mode) and installed, exactly like local
// replay. Events at or below the current seq are skipped (applied=false,
// nil error) — reconnecting from the last applied seq can never
// double-apply a record. Gaps are rejected: an event more than one
// ahead means the stream lost records and the caller must re-bootstrap.
func (s *Store) ApplyEvent(ev Event) (applied bool, err error) {
	// Validate before taking the lock or touching the journal: a corrupt
	// frame must never be written to the local WAL.
	var rules *core.Rules
	switch ev.Op {
	case opPut:
		if ev.Name == "" || ev.Version <= 0 {
			return false, fmt.Errorf("store: replicated put seq %d: missing name or version", ev.Seq)
		}
		if rules, err = core.Load(bytes.NewReader(ev.Rules)); err != nil {
			return false, fmt.Errorf("store: replicated put %q seq %d: %w", ev.Name, ev.Seq, err)
		}
	case opDelete:
		if ev.Name == "" {
			return false, fmt.Errorf("store: replicated delete seq %d: missing name", ev.Seq)
		}
	default:
		return false, fmt.Errorf("store: replicated event seq %d: unknown op %q", ev.Seq, ev.Op)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	if s.failed != nil {
		return false, s.failed
	}
	if ev.Seq <= s.seq {
		return false, nil // already applied: seq idempotence
	}
	if ev.Seq != s.seq+1 {
		return false, fmt.Errorf("store: replicated seq %d after %d: gap, %w", ev.Seq, s.seq, ErrSnapshotNeeded)
	}
	if err := s.journal(ctxBackground, walEvent(ev)); err != nil {
		return false, err
	}
	switch ev.Op {
	case opPut:
		s.install(ev.Name, rev{version: ev.Version, rules: rules, raw: ev.Rules})
	case opDelete:
		delete(s.models, ev.Name)
	}
	s.met.models.Set(float64(len(s.models)))
	s.maybeSnapshot(ctxBackground)
	return true, nil
}

// RestoreSnapshot atomically replaces this store's entire state with
// the snapshot doc — the follower bootstrap path, also used when the
// leader's retained log no longer covers the follower's seq. Every
// model is validated BEFORE any state is touched, so a torn or corrupt
// doc leaves the store exactly as it was; on success the new state is
// persisted as a local snapshot and the local WAL is compacted (durable
// mode), making the restore itself crash-safe.
func (s *Store) RestoreSnapshot(doc *SnapshotDoc) error {
	if doc == nil {
		return errors.New("store: nil snapshot doc")
	}
	// Validate first, outside the lock: Load every model revision.
	models := make(map[string]*model, len(doc.Models))
	for name, revs := range doc.Models {
		m := &model{revs: make([]rev, len(revs))}
		for i, sr := range revs {
			rules, err := core.Load(bytes.NewReader(sr.Rules))
			if err != nil {
				return fmt.Errorf("store: snapshot model %q v%d: %w", name, sr.Version, err)
			}
			m.revs[i] = rev{version: sr.Version, rules: rules, raw: sr.Rules}
		}
		models[name] = m
	}
	lastVersion := make(map[string]int, len(doc.LastVersion))
	for name, v := range doc.LastVersion {
		lastVersion[name] = v
	}
	// The head version counters must cover the installed revisions even
	// if the doc omitted last_version.
	for name, m := range models {
		for _, r := range m.revs {
			if r.version > lastVersion[name] {
				lastVersion[name] = r.version
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.failed != nil {
		return s.failed
	}
	s.models = models
	s.lastVersion = lastVersion
	s.seq = doc.Seq
	s.replog = nil
	s.replogBase = doc.Seq
	s.met.models.Set(float64(len(s.models)))
	// Persist the restored state and compact the local WAL: stale
	// records below the snapshot seq must not resurrect on recovery.
	// Failure is not fatal to the in-memory restore — the WAL's replay
	// guard (seq <= snapshot seq is skipped) keeps recovery correct —
	// but surface it so the follower can log.
	s.sinceSnap = 1
	err := s.snapshotLocked(ctxBackground)
	s.notifyChanged()
	if err != nil {
		return fmt.Errorf("store: persisting restored snapshot: %w", err)
	}
	return nil
}
