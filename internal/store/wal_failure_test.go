package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// flakyFile wraps the live WAL file, failing injected operations so
// tests can drive the append/commit error paths end to end.
type flakyFile struct {
	walFile
	failNextWrite bool // write half the bytes, then error (the ENOSPC shape)
	failNextSync  bool
	failTruncate  bool
}

func (f *flakyFile) Write(p []byte) (int, error) {
	if f.failNextWrite {
		f.failNextWrite = false
		n, _ := f.walFile.Write(p[:len(p)/2])
		return n, errors.New("injected: short write")
	}
	return f.walFile.Write(p)
}

func (f *flakyFile) Sync() error {
	if f.failNextSync {
		f.failNextSync = false
		return errors.New("injected: fsync failed")
	}
	return f.walFile.Sync()
}

func (f *flakyFile) Truncate(size int64) error {
	if f.failTruncate {
		return errors.New("injected: truncate failed")
	}
	return f.walFile.Truncate(size)
}

// TestShortWriteRolledBack injects a partial append and requires the
// log to be truncated back to the last committed record, so commits
// before AND after the failure both survive crash recovery — the
// "never silently drops an acknowledged write" invariant. Without the
// rollback, the torn bytes would sit mid-log and recovery would stop
// there, discarding the later acknowledged put.
func TestShortWriteRolledBack(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, WithSnapshotEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r1, r3 := testRules(t, 2), testRules(t, 4)
	if _, err := st.Put("m", r1); err != nil {
		t.Fatal(err)
	}
	off1 := walSize(t, dir)

	st.wal.f = &flakyFile{walFile: st.wal.f, failNextWrite: true}
	if _, err := st.Put("m", testRules(t, 3)); err == nil {
		t.Fatal("put with failing write must error")
	}
	if got := walSize(t, dir); got != off1 {
		t.Fatalf("torn bytes left in log: size %d, want %d", got, off1)
	}

	// The failed put was never acknowledged, so the next one takes v2.
	if v, err := st.Put("m", r3); err != nil || v != 2 {
		t.Fatalf("put after rollback = v%d, %v; want v2", v, err)
	}

	// Crash (no Close): the on-disk WAL alone must recover both commits.
	walData, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	d2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(d2, walFileName), walData, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(d2)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	raw, version, ok := st2.GetRaw("m")
	if !ok || version != 2 || !bytes.Equal(raw, rawOf(t, r3)) {
		t.Fatalf("recovered head = v%d ok=%v; want clean v2", version, ok)
	}
	if old, ok := st2.GetVersion("m", 1); !ok || !bytes.Equal(rawOf(t, old), rawOf(t, r1)) {
		t.Error("commit before the failed append was lost")
	}
}

// TestFailedSyncDoesNotDuplicateVersions injects an fsync failure after
// a complete record hit the file: the record must be rolled back so the
// retried put — which reuses the same seq and version, since neither
// advanced — does not leave two replayable records for one version.
func TestFailedSyncDoesNotDuplicateVersions(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, WithSnapshotEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Put("m", testRules(t, 2)); err != nil {
		t.Fatal(err)
	}
	off1 := walSize(t, dir)

	st.wal.f = &flakyFile{walFile: st.wal.f, failNextSync: true}
	r2 := testRules(t, 3)
	if _, err := st.Put("m", r2); err == nil {
		t.Fatal("put must fail when the WAL fsync fails")
	}
	if got := walSize(t, dir); got != off1 {
		t.Fatalf("unacknowledged record left in log: size %d, want %d", got, off1)
	}
	if v, err := st.Put("m", r2); err != nil || v != 2 {
		t.Fatalf("retried put = v%d, %v; want v2", v, err)
	}

	data, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	events, valid := decodeRecords(data)
	if valid != len(data) {
		t.Fatalf("log has torn bytes: %d valid of %d", valid, len(data))
	}
	seen := map[int]int{}
	for _, ev := range events {
		if ev.Op == opPut && ev.Name == "m" {
			seen[ev.Version]++
		}
	}
	if len(seen) != 2 || seen[1] != 1 || seen[2] != 1 {
		t.Fatalf("journaled put versions = %v, want exactly one v1 and one v2", seen)
	}
}

// TestRollbackFailureWedgesStore: when the post-failure truncation
// itself fails, the log may hold torn or unacknowledged bytes, so the
// store must refuse further mutations with ErrFailed while reads keep
// serving the in-memory state.
func TestRollbackFailureWedgesStore(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Put("m", testRules(t, 2)); err != nil {
		t.Fatal(err)
	}

	st.wal.f = &flakyFile{walFile: st.wal.f, failNextSync: true, failTruncate: true}
	if _, err := st.Put("m", testRules(t, 3)); err == nil {
		t.Fatal("put must fail when fsync fails")
	}
	if _, err := st.Put("m", testRules(t, 3)); !errors.Is(err, ErrFailed) {
		t.Fatalf("put on failed store = %v, want ErrFailed", err)
	}
	if _, err := st.Delete("m"); !errors.Is(err, ErrFailed) {
		t.Fatalf("delete on failed store = %v, want ErrFailed", err)
	}
	if _, _, err := st.Rollback("m", 1); !errors.Is(err, ErrFailed) {
		t.Fatalf("rollback on failed store = %v, want ErrFailed", err)
	}
	if _, version, ok := st.Get("m"); !ok || version != 1 {
		t.Errorf("reads must survive a failed store: v%d ok=%v", version, ok)
	}
}
