//go:build unix

package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes the advisory exclusive lock guarding a store directory
// against concurrent opens. Without it, rrmine -store pointed at a live
// rrserve -data-dir would interleave WAL appends and snapshot writes
// with the server's, and whichever process compacts last would silently
// destroy the other's committed models. The lock is released by closing
// the returned file (Store.Close, or process exit — flock dies with the
// file description, so a crashed holder never wedges the directory).
func lockDir(dir string) (*os.File, error) {
	path := filepath.Join(dir, lockFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) {
			return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
		}
		return nil, fmt.Errorf("store: locking %s: %w", dir, err)
	}
	return f, nil
}
