// Package store is the durability layer of the Ratio Rules system: an
// embedded, stdlib-only, versioned model store backing the rrserve
// registry and the rrmine -store flag.
//
// Layout of a store directory:
//
//	wal.log        append-only write-ahead log of put/delete events
//	               (length-prefixed JSON records with CRC32 checksums,
//	               fsynced on every commit — see wal.go)
//	snapshot.json  atomic full-state snapshot (write-temp + rename);
//	               writing one compacts the WAL to zero
//
// Every Put of a model creates version n+1; Get serves the latest
// revision, GetVersion a pinned one, and Rollback re-installs a prior
// revision as a new head version (journaled as a plain put, so the
// history is linear and replay stays trivial). Version counters survive
// Delete, so a re-created model never reuses a version number — which
// keeps HTTP ETags derived from versions truthful.
//
// Recovery replays snapshot + WAL tail. A torn or corrupt final record
// — the signature of a crash mid-append — is truncated with a warning;
// the store never fails to open because of a torn tail. Corruption of
// the snapshot itself is a hard error, since snapshots are installed
// atomically and damage there means the disk lied. A failed WAL append
// or fsync at runtime (disk full, I/O error) is rolled back by
// truncating the log to the last committed record, so torn bytes never
// sit mid-log ahead of acknowledged writes; if even that truncation
// fails, the store wedges itself (mutations return ErrFailed, reads
// keep working) rather than risk journaling past damage.
//
// Open takes an exclusive flock on a lock file in the directory, so a
// second process (say, rrmine -store against a live rrserve -data-dir)
// fails fast with ErrLocked instead of corrupting the log. The lock is
// tied to the file description and vanishes with the process, crashed
// or not.
//
// Mutations commit — and periodically snapshot — while holding the
// store mutex, so concurrent reads wait out each commit's fsync (and,
// rarely, a whole-store snapshot). Models change rarely and reads
// dominate, so that simplicity wins at this scale; revisit with
// copy-then-write snapshots if puts ever become hot.
//
// OpenMemory returns the same store without any files behind it: the
// rrserve registry uses that when no -data-dir is given, so versioning
// and rollback behave identically with and without durability.
package store

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"ratiorules/internal/core"
	"ratiorules/internal/obs"
	"ratiorules/internal/obs/trace"
)

// Sentinel errors mapped onto HTTP statuses by internal/server.
var (
	ErrClosed          = errors.New("store: closed")
	ErrNotFound        = errors.New("store: model not found")
	ErrVersionNotFound = errors.New("store: version not found")
	// ErrLocked: the directory is already open in another process.
	ErrLocked = errors.New("store: directory locked by another process")
	// ErrFailed: a WAL commit failed AND the rollback truncation failed,
	// so the on-disk log may hold torn or unacknowledged bytes. The
	// store refuses further mutations (reads still work); reopening
	// recovers to the last committed state.
	ErrFailed = errors.New("store: failed, reopen to recover")
)

// options collects the Open/OpenMemory knobs.
type options struct {
	snapshotEvery  int
	maxVersions    int
	replicationLog int
	noSync         bool
	metrics        *obs.Registry
	logger         *slog.Logger
}

// Option customizes Open and OpenMemory.
type Option func(*options)

// WithSnapshotEvery sets how many committed events trigger an automatic
// snapshot + WAL compaction (default 64; <= 0 disables automatic
// snapshots, leaving them to explicit Snapshot calls and Close).
func WithSnapshotEvery(n int) Option { return func(o *options) { o.snapshotEvery = n } }

// WithMaxVersions bounds the revisions retained per model (default 32;
// <= 0 keeps every revision). Pruned versions cannot be fetched or
// rolled back to.
func WithMaxVersions(n int) Option { return func(o *options) { o.maxVersions = n } }

// WithNoSync skips fsync on WAL commits — only for tests that churn
// thousands of commits; production stores must not use it.
func WithNoSync() Option { return func(o *options) { o.noSync = true } }

// WithObs records store metrics into r instead of obs.Default().
func WithObs(r *obs.Registry) Option { return func(o *options) { o.metrics = r } }

// WithLogger routes recovery warnings and snapshot logs to l.
func WithLogger(l *slog.Logger) Option { return func(o *options) { o.logger = l } }

// rev is one retained revision of a model. raw is the canonical
// core.Rules JSON (exactly what Rules.Save wrote), kept so GETs serve
// byte-identical documents and rollbacks re-journal without re-encoding.
type rev struct {
	version int
	rules   *core.Rules
	raw     []byte
	// ge is an advisory quality annotation (GE₁ measured by the online
	// monitor), in-memory only: it describes a measurement against a
	// transient holdout, not durable model state, so it is never
	// journaled and vanishes on restart like the holdout itself.
	ge    float64
	hasGE bool
}

// model is the retained revision history of one name, ascending by
// version; the last entry is the head.
type model struct {
	revs []rev
}

// VersionInfo describes one retained revision for the versions API.
type VersionInfo struct {
	Version     int  `json:"version"`
	K           int  `json:"k"`
	M           int  `json:"m"`
	TrainedRows int  `json:"trained_rows"`
	Bytes       int  `json:"bytes"`
	Head        bool `json:"head"`
	// GE is the online monitor's last GE₁ measurement for this
	// version, when one exists (see SetVersionGE).
	GE *float64 `json:"ge,omitempty"`
}

// Store is a concurrency-safe versioned model store. Mutations are
// serialized (each commits a WAL record before acknowledging); reads
// run concurrently.
type Store struct {
	dir  string // "" for memory mode
	opts options
	met  *storeMetrics

	mu          sync.RWMutex
	wal         *walWriter // nil in memory mode
	lock        *os.File   // flock guarding dir against other processes
	seq         uint64     // last committed sequence number
	models      map[string]*model
	lastVersion map[string]int // survives Delete; never decreases
	sinceSnap   int            // events since the last snapshot
	closed      bool
	failed      error // non-nil wedges mutations (wraps ErrFailed)

	// Replication: recent committed events retained for follower
	// catch-up (see replication.go). replog covers (replogBase, seq];
	// changed is closed-and-replaced on every commit to wake tailers.
	replog     []Event
	replogBase uint64
	changed    chan struct{}
}

func newStore(dir string, opts []Option) *Store {
	o := options{snapshotEvery: 64, maxVersions: 32, replicationLog: DefaultReplicationLog,
		metrics: obs.Default(), logger: obs.NopLogger()}
	for _, opt := range opts {
		opt(&o)
	}
	return &Store{
		dir:         dir,
		opts:        o,
		met:         newStoreMetrics(o.metrics),
		models:      make(map[string]*model),
		lastVersion: make(map[string]int),
		changed:     make(chan struct{}),
	}
}

// OpenMemory returns a store with no files behind it: full versioning
// semantics, zero durability. It cannot fail.
func OpenMemory(opts ...Option) *Store {
	return newStore("", opts)
}

// Open opens (or creates) a store directory, recovering state from the
// snapshot and WAL. A torn final WAL record is truncated with a warning
// and never prevents opening. The directory is flock-guarded: a second
// Open — from this or any other process — fails with ErrLocked until
// the holder closes (or dies).
func Open(dir string, opts ...Option) (*Store, error) {
	s := newStore(dir, opts)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	s.lock = lock
	opened := false
	defer func() {
		if !opened && s.lock != nil {
			s.lock.Close()
		}
	}()
	// A leftover temp file means a snapshot died before rename; the WAL
	// still has everything, so just discard it.
	os.Remove(filepath.Join(dir, snapshotFileName+".tmp"))

	snap, err := loadSnapshot(filepath.Join(dir, snapshotFileName))
	if err != nil {
		return nil, err
	}
	s.seq = snap.Seq
	for name, revs := range snap.Models {
		m := &model{}
		for _, sr := range revs {
			rules, err := core.Load(bytes.NewReader(sr.Rules))
			if err != nil {
				return nil, fmt.Errorf("store: snapshot model %q v%d: %w", name, sr.Version, err)
			}
			m.revs = append(m.revs, rev{version: sr.Version, rules: rules, raw: sr.Rules})
		}
		sort.Slice(m.revs, func(i, j int) bool { return m.revs[i].version < m.revs[j].version })
		s.models[name] = m
	}
	for name, v := range snap.LastVersion {
		s.lastVersion[name] = v
	}

	walPath := filepath.Join(dir, walFileName)
	f, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening WAL: %w", err)
	}
	data, err := os.ReadFile(walPath)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: reading WAL: %w", err)
	}
	events, valid := decodeRecords(data)
	if valid < len(data) {
		s.opts.logger.Warn("truncating torn WAL tail",
			"dir", dir, "offset", valid, "dropped_bytes", len(data)-valid)
		s.met.tornRecords.Inc()
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncating torn WAL tail: %w", err)
		}
		if !s.opts.noSync {
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, fmt.Errorf("store: syncing truncated WAL: %w", err)
			}
		}
	}
	replayed := 0
	for _, ev := range events {
		if ev.Seq <= snap.Seq {
			continue // already folded into the snapshot
		}
		if err := s.apply(ev); err != nil {
			// CRC-valid but semantically bad: warn and keep the rest.
			s.opts.logger.Warn("skipping unreplayable WAL event",
				"dir", dir, "seq", ev.Seq, "op", ev.Op, "model", ev.Name, "err", err)
			continue
		}
		replayed++
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seeking WAL tail: %w", err)
	}
	s.wal = &walWriter{f: f, sync: !s.opts.noSync, size: int64(valid)}
	// Replayed events are dirty relative to the snapshot: count them so
	// the periodic compaction still triggers after a crash-loop.
	s.sinceSnap = replayed

	// Recovery replays without journaling, so the replication log starts
	// empty at the recovered head: a follower attached before the
	// restart re-bootstraps from a snapshot.
	s.replogBase = s.seq

	s.met.recoveredRecords.Add(float64(replayed))
	s.met.recoveredModels.Set(float64(len(s.models)))
	s.met.models.Set(float64(len(s.models)))
	s.met.walSizeBytes.Set(float64(valid))
	s.opts.logger.Info("store open",
		"dir", dir, "models", len(s.models), "snapshot_seq", snap.Seq, "replayed", replayed)
	opened = true
	return s, nil
}

// encodeRules returns the canonical compact Rules JSON the store uses
// everywhere (WAL events, snapshots, GetRaw). Compact form matters:
// json.Marshal re-compacts embedded json.RawMessage values, so only a
// compact canonical form survives the journal and snapshot round trips
// byte-for-byte.
func encodeRules(r *core.Rules) ([]byte, error) {
	var indented bytes.Buffer
	if err := r.Save(&indented); err != nil {
		return nil, err
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, indented.Bytes()); err != nil {
		return nil, fmt.Errorf("store: canonicalizing rules: %w", err)
	}
	return compact.Bytes(), nil
}

// apply folds one WAL event into the in-memory state (replay path).
func (s *Store) apply(ev walEvent) error {
	s.seq = ev.Seq
	switch ev.Op {
	case opPut:
		rules, err := core.Load(bytes.NewReader(ev.Rules))
		if err != nil {
			return err
		}
		s.install(ev.Name, rev{version: ev.Version, rules: rules, raw: ev.Rules})
		return nil
	case opDelete:
		delete(s.models, ev.Name)
		return nil
	default:
		return fmt.Errorf("unknown op %q", ev.Op)
	}
}

// install appends a revision to a model's history, pruning beyond the
// retention bound, and advances the name's version counter.
func (s *Store) install(name string, r rev) {
	m := s.models[name]
	if m == nil {
		m = &model{}
		s.models[name] = m
	}
	m.revs = append(m.revs, r)
	if limit := s.opts.maxVersions; limit > 0 && len(m.revs) > limit {
		m.revs = append(m.revs[:0], m.revs[len(m.revs)-limit:]...)
	}
	if r.version > s.lastVersion[name] {
		s.lastVersion[name] = r.version
	}
}

// journal commits one event to the WAL (no-op in memory mode) and
// advances the sequence counter. On append or fsync failure the log is
// truncated back to its pre-append size, so the file always ends at the
// last acknowledged record and the caller can simply retry (reusing the
// same seq and version, since neither advanced). If the truncation
// itself fails the store wedges: every later mutation returns ErrFailed
// rather than appending past torn bytes that recovery would stop at.
// Callers hold s.mu.
func (s *Store) journal(ctx context.Context, ev walEvent) error {
	// Stamp the committing request's trace onto the event (replicated
	// applies arrive pre-stamped with the LEADER's trace and a traceless
	// ctx, so an existing stamp is never overwritten): followers parent
	// their replica.apply spans on it.
	if ev.Trace == "" {
		if tid, sid, ok := trace.FromContext(ctx); ok {
			ev.Trace = trace.Traceparent(tid, sid)
		}
	}
	if s.wal != nil {
		payload, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("store: encoding WAL event: %w", err)
		}
		prevSize := s.wal.size
		_, appendSpan := trace.Start(ctx, "wal.append")
		appendSpan.SetAttr("bytes", len(payload))
		n, err := s.wal.append(payload)
		appendSpan.End()
		if err == nil {
			// commit is the fsync half of the WAL write — the span that
			// shows up when the disk, not the solve, is the bottleneck.
			_, fsyncSpan := trace.Start(ctx, "wal.fsync")
			err = s.wal.commit()
			fsyncSpan.End()
		}
		if err != nil {
			if rbErr := s.wal.rollback(prevSize); rbErr != nil {
				s.failed = fmt.Errorf("%w: WAL rollback: %v (after commit error: %v)", ErrFailed, rbErr, err)
				s.opts.logger.Error("store failed: torn WAL could not be rolled back",
					"dir", s.dir, "commit_err", err, "rollback_err", rbErr)
				s.met.walFailures.Inc()
				return fmt.Errorf("store: committing WAL record: %w", err)
			}
			s.met.walSizeBytes.Set(float64(s.wal.size))
			return fmt.Errorf("store: committing WAL record: %w", err)
		}
		if s.wal.sync {
			s.met.fsyncs.Inc()
		}
		s.met.appends.With(ev.Op).Inc()
		s.met.walWrittenBytes.Add(float64(n))
		s.met.walSizeBytes.Set(float64(s.wal.size))
	} else {
		s.met.appends.With(ev.Op).Inc()
	}
	s.seq = ev.Seq
	s.sinceSnap++
	s.appendReplog(ev)
	s.notifyChanged()
	return nil
}

// Put stores rules under name as a new head version and returns it.
// The mutation is durable (WAL-committed) before Put returns.
func (s *Store) Put(name string, rules *core.Rules) (int, error) {
	return s.PutContext(context.Background(), name, rules)
}

// PutContext is Put with trace spans: a "store.put" span covers the
// whole mutation, with "wal.append"/"wal.fsync" children from the
// journal and a "store.snapshot" child when the put trips the periodic
// compaction.
func (s *Store) PutContext(ctx context.Context, name string, rules *core.Rules) (int, error) {
	if name == "" {
		return 0, errors.New("store: empty model name")
	}
	if rules == nil {
		return 0, errors.New("store: nil rules")
	}
	ctx, sp := trace.Start(ctx, "store.put")
	defer sp.End()
	sp.SetAttr("model", name)
	raw, err := encodeRules(rules)
	if err != nil {
		return 0, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.failed != nil {
		return 0, s.failed
	}
	version := s.lastVersion[name] + 1
	sp.SetAttr("version", version)
	if err := s.journal(ctx, walEvent{Seq: s.seq + 1, Op: opPut, Name: name, Version: version, Rules: raw}); err != nil {
		return 0, err
	}
	s.install(name, rev{version: version, rules: rules, raw: raw})
	s.met.models.Set(float64(len(s.models)))
	s.maybeSnapshot(ctx)
	return version, nil
}

// Delete removes a model (its whole history), reporting whether it
// existed. The version counter for the name is retained so a future
// re-create continues from version n+1.
func (s *Store) Delete(name string) (bool, error) {
	return s.DeleteContext(context.Background(), name)
}

// DeleteContext is Delete with a "store.delete" trace span (children as
// in PutContext).
func (s *Store) DeleteContext(ctx context.Context, name string) (bool, error) {
	ctx, sp := trace.Start(ctx, "store.delete")
	defer sp.End()
	sp.SetAttr("model", name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	if s.failed != nil {
		return false, s.failed
	}
	if _, ok := s.models[name]; !ok {
		return false, nil
	}
	if err := s.journal(ctx, walEvent{Seq: s.seq + 1, Op: opDelete, Name: name}); err != nil {
		return false, err
	}
	delete(s.models, name)
	s.met.models.Set(float64(len(s.models)))
	s.maybeSnapshot(ctx)
	return true, nil
}

// Rollback re-installs retained version v of name as a new head
// version, returning the restored rules and the new head's number (the
// pair is taken under the store lock, so it cannot mix revisions with a
// concurrent Put). It is journaled as a plain put, so history stays
// linear: rolling back never erases revisions.
func (s *Store) Rollback(name string, version int) (*core.Rules, int, error) {
	return s.RollbackContext(context.Background(), name, version)
}

// RollbackContext is Rollback with a "store.rollback" trace span
// (children as in PutContext).
func (s *Store) RollbackContext(ctx context.Context, name string, version int) (*core.Rules, int, error) {
	ctx, sp := trace.Start(ctx, "store.rollback")
	defer sp.End()
	sp.SetAttr("model", name)
	sp.SetAttr("to_version", version)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, ErrClosed
	}
	if s.failed != nil {
		return nil, 0, s.failed
	}
	m := s.models[name]
	if m == nil {
		return nil, 0, fmt.Errorf("model %q: %w", name, ErrNotFound)
	}
	var target rev
	found := false
	for _, r := range m.revs {
		if r.version == version {
			target, found = r, true
			break
		}
	}
	if !found {
		return nil, 0, fmt.Errorf("model %q version %d: %w", name, version, ErrVersionNotFound)
	}
	newVersion := s.lastVersion[name] + 1
	if err := s.journal(ctx, walEvent{Seq: s.seq + 1, Op: opPut, Name: name, Version: newVersion, Rules: target.raw}); err != nil {
		return nil, 0, err
	}
	s.install(name, rev{version: newVersion, rules: target.rules, raw: target.raw})
	s.maybeSnapshot(ctx)
	return target.rules, newVersion, nil
}

// Get returns the head revision of a model and its version.
func (s *Store) Get(name string) (*core.Rules, int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := s.models[name]
	if m == nil || len(m.revs) == 0 {
		return nil, 0, false
	}
	head := m.revs[len(m.revs)-1]
	return head.rules, head.version, true
}

// GetRaw returns the head revision's canonical Rules JSON (exactly the
// bytes Rules.Save produced) and its version.
func (s *Store) GetRaw(name string) ([]byte, int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := s.models[name]
	if m == nil || len(m.revs) == 0 {
		return nil, 0, false
	}
	head := m.revs[len(m.revs)-1]
	return head.raw, head.version, true
}

// GetVersion returns a pinned retained revision.
func (s *Store) GetVersion(name string, version int) (*core.Rules, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := s.models[name]
	if m == nil {
		return nil, false
	}
	for _, r := range m.revs {
		if r.version == version {
			return r.rules, true
		}
	}
	return nil, false
}

// GetVersionRaw returns a pinned retained revision's canonical Rules
// JSON, so version-pinned model GETs serve the exact bytes the revision
// was journaled with.
func (s *Store) GetVersionRaw(name string, version int) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := s.models[name]
	if m == nil {
		return nil, false
	}
	for _, r := range m.revs {
		if r.version == version {
			return r.raw, true
		}
	}
	return nil, false
}

// Versions lists the retained revisions of a model, ascending, with the
// head flagged. ok is false when the model does not exist.
func (s *Store) Versions(name string) (infos []VersionInfo, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := s.models[name]
	if m == nil {
		return nil, false
	}
	infos = make([]VersionInfo, len(m.revs))
	for i, r := range m.revs {
		infos[i] = VersionInfo{
			Version:     r.version,
			K:           r.rules.K(),
			M:           r.rules.M(),
			TrainedRows: r.rules.TrainedRows(),
			Bytes:       len(r.raw),
			Head:        i == len(m.revs)-1,
		}
		if r.hasGE {
			ge := r.ge
			infos[i].GE = &ge
		}
	}
	return infos, true
}

// SetVersionGE attaches the online monitor's GE₁ measurement to a
// retained revision. Advisory and in-memory only (never journaled);
// unknown names or pruned versions are ignored.
func (s *Store) SetVersionGE(name string, version int, ge float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.models[name]
	if m == nil {
		return
	}
	for i := range m.revs {
		if m.revs[i].version == version {
			m.revs[i].ge = ge
			m.revs[i].hasGE = true
			return
		}
	}
}

// VersionGE reads a revision's GE annotation, ok=false when none was
// ever recorded (or the version is gone).
func (s *Store) VersionGE(name string, version int) (float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := s.models[name]
	if m == nil {
		return 0, false
	}
	for _, r := range m.revs {
		if r.version == version {
			return r.ge, r.hasGE
		}
	}
	return 0, false
}

// Failed reports the wedge state: non-nil (wrapping ErrFailed) when a
// WAL rollback failed and the store refuses mutations. The readiness
// probe keys off this.
func (s *Store) Failed() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.failed
}

// Names lists live model names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.models))
	for n := range s.models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of live models.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.models)
}

// Snapshot writes a full-state snapshot and compacts the WAL.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.snapshotLocked(context.Background())
}

// maybeSnapshot runs the periodic compaction. Failures are logged, not
// returned: the WAL still holds every committed event, so the caller's
// mutation is safe regardless. Callers hold s.mu.
func (s *Store) maybeSnapshot(ctx context.Context) {
	if s.wal == nil || s.opts.snapshotEvery <= 0 || s.sinceSnap < s.opts.snapshotEvery {
		return
	}
	if err := s.snapshotLocked(ctx); err != nil {
		s.opts.logger.Warn("periodic snapshot failed; WAL retains the data", "dir", s.dir, "err", err)
		s.met.snapshotErrors.Inc()
		s.sinceSnap = 0 // back off rather than retry on every event
	}
}

// snapshotLocked does the snapshot + compact dance under s.mu.
func (s *Store) snapshotLocked(ctx context.Context) error {
	if s.wal == nil {
		s.sinceSnap = 0
		return nil // memory mode: nothing to persist
	}
	timer := obs.NewTimer(s.met.snapshotSeconds)
	_, snapSpan := trace.Start(ctx, "store.snapshot")
	defer snapSpan.End()
	snap := &snapshotFile{
		Format:      snapshotFormat,
		Seq:         s.seq,
		Models:      make(map[string][]snapRev, len(s.models)),
		LastVersion: make(map[string]int, len(s.lastVersion)),
	}
	for name, m := range s.models {
		revs := make([]snapRev, len(m.revs))
		for i, r := range m.revs {
			revs[i] = snapRev{Version: r.version, Rules: r.raw}
		}
		snap.Models[name] = revs
	}
	for name, v := range s.lastVersion {
		snap.LastVersion[name] = v
	}
	if err := writeSnapshot(s.dir, snap); err != nil {
		return err
	}
	if err := s.wal.reset(); err != nil {
		return fmt.Errorf("store: compacting WAL: %w", err)
	}
	if s.wal.sync {
		s.met.fsyncs.Inc()
	}
	s.sinceSnap = 0
	s.met.snapshots.Inc()
	s.met.walSizeBytes.Set(0)
	elapsed := timer.ObserveDuration()
	s.opts.logger.Info("snapshot written",
		"dir", s.dir, "models", len(s.models), "seq", s.seq, "duration", elapsed)
	return nil
}

// Close flushes a final snapshot (compacting the WAL so the next open
// is O(snapshot)) and closes the log. Close is idempotent; mutations
// after Close return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal == nil {
		return nil
	}
	var firstErr error
	if s.sinceSnap > 0 {
		if err := s.snapshotLocked(context.Background()); err != nil {
			firstErr = err
		}
	}
	if err := s.wal.close(); err != nil && firstErr == nil {
		firstErr = err
	}
	s.wal = nil
	if s.lock != nil {
		if err := s.lock.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.lock = nil
	}
	return firstErr
}
