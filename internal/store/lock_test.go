//go:build unix

package store

import (
	"errors"
	"testing"
)

// TestOpenLocksDirectory: two concurrent opens of one directory — the
// shape of rrmine -store pointed at a live rrserve -data-dir — must
// fail fast with ErrLocked instead of interleaving WAL appends and
// snapshot writes. flock is per file description, so a second open in
// the same process exercises the same path as a second process.
func TestOpenLocksDirectory(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("second open = %v, want ErrLocked", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}
