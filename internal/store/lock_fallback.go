//go:build !unix

package store

import "os"

// lockDir is a no-op where flock is unavailable: concurrent opens of
// the same directory are then the operator's responsibility (see
// docs/persistence.md).
func lockDir(dir string) (*os.File, error) {
	return nil, nil
}
