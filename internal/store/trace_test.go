package store

import (
	"context"
	"testing"

	"ratiorules/internal/obs"
	"ratiorules/internal/obs/trace"
)

// TestPutContextSpans checks that a traced durable put records the
// store.put span with its wal.append/wal.fsync children.
func TestPutContextSpans(t *testing.T) {
	s, err := Open(t.TempDir(), WithObs(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tr := trace.New(trace.Config{})
	ctx, root := tr.StartRoot(context.Background(), "test put", trace.SpanContext{})
	if _, err := s.PutContext(ctx, "m", testRules(t, 2)); err != nil {
		t.Fatal(err)
	}
	root.End()

	td, ok := tr.Recorder().Get(root.TraceID())
	if !ok {
		t.Fatal("trace not recorded")
	}
	names := map[string]int{}
	byID := map[string]trace.SpanData{}
	for _, sp := range td.Spans {
		names[sp.Name]++
		byID[sp.SpanID] = sp
	}
	for _, want := range []string{"store.put", "wal.append", "wal.fsync"} {
		if names[want] != 1 {
			t.Fatalf("span %q recorded %d times (spans: %v)", want, names[want], names)
		}
	}
	for _, sp := range td.Spans {
		if sp.Name == "wal.append" || sp.Name == "wal.fsync" {
			if parent := byID[sp.ParentID]; parent.Name != "store.put" {
				t.Fatalf("%s parented to %q, want store.put", sp.Name, parent.Name)
			}
		}
	}
}
