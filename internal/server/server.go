// Package server exposes Ratio Rules mining and reconstruction as a JSON
// HTTP service, so non-Go clients can mine rules once and query them for
// forecasting, what-if analysis and outlier detection. Models live in a
// named, versioned registry backed by internal/store: purely in memory
// by default, or journaled to a write-ahead log with snapshots when the
// registry is built over a durable store (rrserve -data-dir). Every
// mutation — mine, install, delete — is versioned, and durable
// registries survive restarts with full version history.
//
// Endpoints (Go 1.22 pattern routing):
//
//	POST   /v1/rules                         mine a model from rows
//	GET    /v1/rules                         list model names
//	GET    /v1/rules/{name}                  fetch a model (Rules JSON; ETag/304)
//	PUT    /v1/rules/{name}                  install a model from Rules JSON
//	DELETE /v1/rules/{name}                  drop a model
//	GET    /v1/rules/{name}/versions         list retained versions
//	POST   /v1/rules/{name}/rollback         restore a version as the new head
//	POST   /v1/rules/{name}/fill             reconstruct holes in a record
//	POST   /v1/rules/{name}/forecast         predict one attribute from givens
//	POST   /v1/rules/{name}/whatif           complete a scenario from pinned values
//	POST   /v1/rules/{name}/project          map rows into RR space
//	POST   /v1/rules/{name}/outliers         score rows for cell outliers
//	POST   /v1/rules/{name}/batch/fill       batch fill (JSON array or NDJSON in, NDJSON out)
//	POST   /v1/rules/{name}/batch/forecast   batch forecast (same framing)
//	POST   /v1/rules/{name}/batch/outliers   batch outlier scan (same framing)
//	POST   /v1/rules/{name}/ingest           stream rows into the live accumulator (NDJSON acks out)
//	GET    /v1/rules/{name}/stream           live stream status (rows, reservoir, GE gate tallies)
//	DELETE /v1/rules/{name}/stream           drop the live stream (published versions stay)
//	GET    /v1/rules/{name}/health           model quality: GE trend, firing alerts (ETag/304)
//	GET    /v1/replicate                     WAL replication stream (CRC frames; ?from=N)
//	GET    /healthz                          liveness probe (process up, nothing else)
//	GET    /readyz                           readiness: 503 when the store is wedged
//	GET    /metrics                          Prometheus text exposition (this node)
//	GET    /metrics/fleet                    federated exposition, node="..." labeled (WithFleet)
//	GET    /debug/traces                     flight recorder: recent trace summaries
//	GET    /debug/traces/{id}                one trace's span tree + remote-node references
//	GET    /debug/alerts                     alert engine: rules and per-model states
//	GET    /debug/fleet                      fleet rollup: per-node health, lag, shards, build
//	GET    /debug/profiles                   continuous-profiling ring listing
//	GET    /debug/profiles/{id}              one retained pprof blob
//
// The server runs as one of three roles (see routes.go): a plain
// leader, a coordinator (WithCluster: adds the /v1/cluster admin
// surface), or a read-only follower (WithFollower: a replica tailing a
// leader's WAL). Followers serve every GET and inference route with
// bodies and ETags byte-identical to the leader at the same replicated
// seq; mutating routes answer 403 read_only naming the leader, and
// /readyz reports replication lag (503 replica_lagging + Retry-After
// past -max-replica-lag). See docs/replication.md.
//
// Every error response — including 404 fallthroughs and 405s — carries
// the uniform envelope {"error": {"code": "...", "message": "..."}} with
// a stable machine-readable code (see the Code* constants). GET
// /v1/rules/{name} carries an ETag derived from the model version and
// honors If-None-Match with 304, so pollers do not re-download unchanged
// rule sets. The model GET and every inference endpoint accept
// ?version=N to pin a retained historical revision instead of the head
// (version_not_found when not retained). Request bodies are capped
// (default 32 MiB, WithMaxBodyBytes) and oversized bodies answer 413;
// the batch endpoints are exempt from the cap because they stream
// row-by-row in bounded memory (see batch.go). Wrong-method requests to
// the /v1/rules paths return 405 with an Allow header. All routes are
// wrapped in the obs middleware; see docs/api.md, docs/observability.md
// and docs/persistence.md.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ratiorules/internal/admission"
	"ratiorules/internal/cluster"
	"ratiorules/internal/core"
	"ratiorules/internal/matrix"
	"ratiorules/internal/obs"
	"ratiorules/internal/obs/fleet"
	"ratiorules/internal/obs/profile"
	"ratiorules/internal/obs/trace"
	"ratiorules/internal/online"
	"ratiorules/internal/replica"
	"ratiorules/internal/store"
)

// Registry is a concurrency-safe named, versioned store of mined rule
// sets. It is a thin façade over internal/store: NewRegistry backs it
// with a memory-only store (full versioning, zero durability), while
// NewRegistryWithStore journals every mutation to disk.
type Registry struct {
	st *store.Store
}

// NewRegistry returns a registry backed by a memory-only store.
func NewRegistry() *Registry {
	return &Registry{st: store.OpenMemory()}
}

// NewRegistryWithStore returns a registry over an opened durable store;
// models recovered at store open are immediately served.
func NewRegistryWithStore(st *store.Store) *Registry {
	return &Registry{st: st}
}

// Put stores (or replaces) a model, returning its new version. With a
// durable store the mutation is journaled and fsynced before Put
// returns. ctx carries the request trace (store.put/wal.* spans).
func (r *Registry) Put(ctx context.Context, name string, rules *core.Rules) (int, error) {
	return r.st.PutContext(ctx, name, rules)
}

// Get fetches the head revision of a model, reporting whether it exists.
func (r *Registry) Get(name string) (*core.Rules, bool) {
	rules, _, ok := r.st.Get(name)
	return rules, ok
}

// GetWithVersion fetches the head revision and its version number.
func (r *Registry) GetWithVersion(name string) (*core.Rules, int, bool) {
	return r.st.Get(name)
}

// GetRaw fetches the head revision's canonical Rules JSON and version.
func (r *Registry) GetRaw(name string) ([]byte, int, bool) {
	return r.st.GetRaw(name)
}

// GetVersion fetches a pinned retained revision of a model.
func (r *Registry) GetVersion(name string, version int) (*core.Rules, bool) {
	return r.st.GetVersion(name, version)
}

// GetVersionRaw fetches a pinned retained revision's canonical JSON.
func (r *Registry) GetVersionRaw(name string, version int) ([]byte, bool) {
	return r.st.GetVersionRaw(name, version)
}

// Delete removes a model, reporting whether it existed.
func (r *Registry) Delete(ctx context.Context, name string) (bool, error) {
	return r.st.DeleteContext(ctx, name)
}

// Names lists stored model names, sorted.
func (r *Registry) Names() []string {
	return r.st.Names()
}

// Versions lists the retained revisions of a model.
func (r *Registry) Versions(name string) ([]store.VersionInfo, bool) {
	return r.st.Versions(name)
}

// Rollback restores a retained version as the new head, returning the
// restored rules and the new head version.
func (r *Registry) Rollback(ctx context.Context, name string, version int) (*core.Rules, int, error) {
	return r.st.RollbackContext(ctx, name, version)
}

// SetVersionGE attaches the online monitor's GE₁ measurement to a
// retained revision (advisory, in-memory; see store.SetVersionGE).
func (r *Registry) SetVersionGE(name string, version int, ge float64) {
	r.st.SetVersionGE(name, version, ge)
}

// VersionGE reads a revision's GE annotation.
func (r *Registry) VersionGE(name string, version int) (float64, bool) {
	return r.st.VersionGE(name, version)
}

// Failed reports the store wedge state (non-nil wraps store.ErrFailed);
// /readyz keys off it.
func (r *Registry) Failed() error {
	return r.st.Failed()
}

// Store exposes the backing store for replication wiring (the
// /v1/replicate stream and rrserve's follower mode read and apply
// committed events through it).
func (r *Registry) Store() *store.Store {
	return r.st
}

// DefaultMaxBodyBytes caps request bodies unless WithMaxBodyBytes says
// otherwise: 32 MiB comfortably fits millions of cells per mine request
// while stopping accidental (or hostile) unbounded uploads.
const DefaultMaxBodyBytes = 32 << 20

// Handler builds the HTTP handler over a registry. Every route is
// wrapped in the obs middleware (request counters, latency histograms,
// in-flight gauge — see middleware.go), the metrics registry itself is
// exposed at GET /metrics in Prometheus text format, and wrong-method
// hits on known paths answer 405 with an Allow header instead of the
// generic 404 fallthrough.
func Handler(reg *Registry, opts ...HandlerOption) http.Handler {
	cfg := handlerConfig{
		metrics:      obs.Default(),
		logger:       obs.NopLogger(),
		maxBodyBytes: DefaultMaxBodyBytes,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.tracer == nil {
		cfg.tracer = trace.New(trace.Config{
			Logger:  cfg.logger,
			Dropped: obs.SpanDropCounter(cfg.metrics),
		})
	}
	if cfg.profiles == nil {
		// A passive ring (nobody calls Run) keeps GET /debug/profiles
		// serving an honest empty listing; rrserve decides whether the
		// capture loop actually runs (WithProfiles + -profile-every).
		cfg.profiles = profile.New(profile.Config{Logger: cfg.logger})
	}
	obs.RegisterRuntime(cfg.metrics)
	obs.RegisterBuildInfo(cfg.metrics)
	if cfg.online == nil {
		// A default manager (no checkpoint dir, synchronous row-count
		// republishing) keeps the ingest routes working for embedders
		// that never heard of internal/online; NewManager cannot fail
		// without a checkpoint directory to load.
		cfg.online, _ = online.NewManager(reg, online.Config{
			Logger: cfg.logger, Metrics: cfg.metrics, Tracer: cfg.tracer,
		})
	}
	// The role decides which table entries mount: a plain server is a
	// leader, WithCluster adds the coordinator admin surface, and
	// WithFollower turns the whole instance read-only.
	role := RoleLeader
	if cfg.cluster != nil {
		role |= RoleCoordinator
	}
	if cfg.follower != nil {
		role = RoleFollower
	}
	maxLag := cfg.maxReplicaLag
	if maxLag <= 0 {
		maxLag = DefaultMaxReplicaLag
	}
	m := newHTTPMetrics(cfg.metrics, cfg.logger, cfg.tracer)
	s := &service{
		reg:            reg,
		logger:         cfg.logger,
		batchWorkers:   cfg.batchWorkers,
		batch:          newBatchMetrics(cfg.metrics),
		tracer:         cfg.tracer,
		online:         cfg.online,
		cluster:        cfg.cluster,
		failed:         reg.Failed,
		metricsHandler: cfg.metrics.Handler(),
		fleet:          cfg.fleet,
		profiles:       cfg.profiles,
		role:           role,
		admission:      cfg.admission,
		follower:       cfg.follower,
		leaderURL:      cfg.leaderURL,
		maxReplicaLag:  maxLag,
		replication: &replica.Handler{
			Store:  reg.Store(),
			Logger: cfg.logger,
			WriteError: func(w http.ResponseWriter, status int, err error) {
				writeErr(w, status, CodeBadRequest, err)
			},
		},
	}
	mux := http.NewServeMux()
	// The whole public surface — the /v1 API, probes, /metrics and the
	// /debug endpoints, with role gating, body caps, and the derived
	// wrong-method fallbacks — mounts from the declarative route table
	// in routes.go.
	mountRoutes(mux, s, m, cfg.maxBodyBytes)
	// Catch-all: unknown paths answer the uniform envelope instead of
	// net/http's plain-text 404.
	mux.Handle("/", m.instrument("(unmatched)", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, CodeNotFound,
			fmt.Errorf("no route for %s %s", r.Method, r.URL.Path))
	})))
	return mux
}

// limitBody caps the request body; reads past the cap fail with
// *http.MaxBytesError, which the decode helpers map to 413.
func limitBody(limit int64, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, limit)
		}
		h.ServeHTTP(w, r)
	})
}

type service struct {
	reg            *Registry
	logger         *slog.Logger
	batchWorkers   int
	batch          *batchMetrics
	tracer         *trace.Tracer
	online         *online.Manager
	cluster        *cluster.Coordinator  // nil unless coordinator mode (WithCluster)
	failed         func() error          // readiness seam; Handler wires reg.Failed
	metricsHandler http.Handler          // GET /metrics (this node's registry)
	fleet          *fleet.Collector      // nil unless fleet collection configured (WithFleet)
	profiles       *profile.Ring         // always non-nil; passive unless rrserve runs it
	admission      *admission.Controller // nil unless traffic protection configured (WithAdmission)

	role          Role
	follower      *replica.Follower // nil unless follower mode (WithFollower)
	leaderURL     string            // follower mode: where writes should go
	maxReplicaLag time.Duration     // follower mode: /readyz 503 threshold
	replication   http.Handler      // GET /v1/replicate (internal/replica)
}

// DefaultMaxReplicaLag is the follower staleness beyond which /readyz
// answers 503 replica_lagging (rrserve -max-replica-lag overrides).
const DefaultMaxReplicaLag = 30 * time.Second

// Stable machine-readable error codes carried by every v1 error
// envelope. Clients should branch on these, not on message text.
const (
	CodeNotFound         = "not_found"          // model (or route) does not exist
	CodeVersionNotFound  = "version_not_found"  // pinned version not retained
	CodeBadRequest       = "bad_request"        // malformed body, bad holes/width, invalid params
	CodeBodyTooLarge     = "body_too_large"     // request body exceeds the cap
	CodeStoreFailed      = "store_failed"       // durable store rejected the mutation
	CodeMethodNotAllowed = "method_not_allowed" // known path, wrong verb
	CodeConflict         = "conflict"           // request contradicts live stream state (decay mismatch)
	CodeClusterJoin      = "cluster_join"       // worker node failed its admission probe
	CodeReadOnly         = "read_only"          // mutation sent to a follower replica; write to the leader
	CodeReplicaLagging   = "replica_lagging"    // follower too far behind the leader (503 + Retry-After)
	CodeUnauthorized     = "unauthorized"       // missing/unknown bearer token (401 + WWW-Authenticate)
	CodeForbidden        = "forbidden"          // valid token, but the tenant is disabled
	CodeRateLimited      = "rate_limited"       // tenant token bucket empty (429 + Retry-After)
	CodeOverQuota        = "over_quota"         // tenant concurrency quota or ingest queue full (429 + Retry-After)
	CodeOverloaded       = "overloaded"         // global in-flight ceiling shed this request (503 + Retry-After)
	CodeInternal         = "internal"           // unexpected server-side failure
)

// errorInfo is the inner object of the uniform error envelope.
type errorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorBody is the uniform error envelope:
// {"error": {"code": "...", "message": "..."}}.
type errorBody struct {
	Error errorInfo `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorBody{Error: errorInfo{Code: code, Message: err.Error()}})
}

// bodyErr writes the envelope for a request-body read/decode failure,
// distinguishing oversized bodies (413) from malformed ones (400).
func bodyErr(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeErr(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
			fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
		return
	}
	writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("decoding request: %w", err))
}

// decodeBody decodes the JSON request body into v, answering 413/400
// itself on failure; callers bail out when it returns false.
func decodeBody(w http.ResponseWriter, req *http.Request, v any) bool {
	if err := json.NewDecoder(req.Body).Decode(v); err != nil {
		bodyErr(w, err)
		return false
	}
	return true
}

// errStatus maps library sentinel errors onto an HTTP status and
// envelope code.
func errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, core.ErrWidth), errors.Is(err, core.ErrBadHole), errors.Is(err, core.ErrNoRules),
		errors.Is(err, errBadRow):
		return http.StatusBadRequest, CodeBadRequest
	case errors.Is(err, store.ErrVersionNotFound):
		return http.StatusNotFound, CodeVersionNotFound
	case errors.Is(err, store.ErrNotFound):
		return http.StatusNotFound, CodeNotFound
	case errors.Is(err, admission.ErrUnauthorized):
		return http.StatusUnauthorized, CodeUnauthorized
	case errors.Is(err, admission.ErrForbidden):
		return http.StatusForbidden, CodeForbidden
	case errors.Is(err, admission.ErrRateLimited):
		return http.StatusTooManyRequests, CodeRateLimited
	case errors.Is(err, admission.ErrOverQuota):
		return http.StatusTooManyRequests, CodeOverQuota
	case errors.Is(err, admission.ErrOverloaded):
		return http.StatusServiceUnavailable, CodeOverloaded
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

// writeErrFor is writeErr with the status and code derived from the
// error's sentinel chain via errStatus.
func writeErrFor(w http.ResponseWriter, err error) {
	status, code := errStatus(err)
	writeErr(w, status, code, err)
}

// mineRequest is the POST /v1/rules body.
type mineRequest struct {
	Name   string      `json:"name"`
	Attrs  []string    `json:"attrs,omitempty"`
	Rows   [][]float64 `json:"rows"`
	Energy float64     `json:"energy,omitempty"` // 0 = default 0.85
	K      *int        `json:"k,omitempty"`      // fixed k override
}

// modelSummary is returned after mining and by GET /v1/rules.
type modelSummary struct {
	Name          string    `json:"name"`
	Version       int       `json:"version"`
	K             int       `json:"k"`
	M             int       `json:"m"`
	TrainedRows   int       `json:"trained_rows"`
	EnergyCovered float64   `json:"energy_covered"`
	Eigenvalues   []float64 `json:"eigenvalues"`
}

func summarize(name string, version int, r *core.Rules) modelSummary {
	return modelSummary{
		Name:          name,
		Version:       version,
		K:             r.K(),
		M:             r.M(),
		TrainedRows:   r.TrainedRows(),
		EnergyCovered: r.EnergyCovered(),
		Eigenvalues:   r.Eigenvalues(),
	}
}

func (s *service) mine(w http.ResponseWriter, req *http.Request) {
	var body mineRequest
	if !decodeBody(w, req, &body) {
		return
	}
	if body.Name == "" {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, errors.New("missing model name"))
		return
	}
	// With tenancy on, "/" is the namespace separator in store keys, so
	// client-chosen names must not contain it (a root-scope tenant could
	// otherwise mine straight into another tenant's namespace).
	if s.admission != nil && strings.Contains(body.Name, "/") {
		writeErr(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("invalid model name %q: must not contain %q", body.Name, "/"))
		return
	}
	if len(body.Rows) == 0 {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, errors.New("missing rows"))
		return
	}
	x, err := matrix.FromRows(body.Rows)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	opts := []core.Option{}
	if body.Attrs != nil {
		opts = append(opts, core.WithAttrNames(body.Attrs))
	}
	if body.K != nil {
		opts = append(opts, core.WithFixedK(*body.K))
	} else if body.Energy > 0 {
		opts = append(opts, core.WithEnergy(body.Energy))
	}
	miner, err := core.NewMiner(opts...)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	rules, err := miner.MineMatrixContext(req.Context(), x)
	if err != nil {
		writeErrFor(w, err)
		return
	}
	key := tenantFrom(req).ScopedName(body.Name)
	version, err := s.reg.Put(req.Context(), key, rules)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, CodeStoreFailed,
			fmt.Errorf("persisting model: %w", err))
		return
	}
	s.logger.Info("model mined",
		"model", key, "version", version,
		"rows", rules.TrainedRows(), "k", rules.K(), "attrs", rules.M())
	writeJSON(w, http.StatusCreated, summarize(body.Name, version, rules))
}

func (s *service) list(w http.ResponseWriter, req *http.Request) {
	t := tenantFrom(req)
	names := s.reg.Names()
	out := make([]modelSummary, 0, len(names))
	for _, key := range names {
		name, visible := s.visibleName(t, key)
		if !visible {
			continue
		}
		if m, version, ok := s.reg.GetWithVersion(key); ok {
			out = append(out, summarize(name, version, m))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// queryVersion parses the optional ?version=N pin. ok=false means the
// request was already answered with a 400.
func queryVersion(w http.ResponseWriter, req *http.Request) (version int, pinned, ok bool) {
	raw := req.URL.Query().Get("version")
	if raw == "" {
		return 0, false, true
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v <= 0 {
		writeErr(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("invalid version %q: want a positive integer", raw))
		return 0, false, false
	}
	return v, true, true
}

// lookup resolves {name} to a rule set, honoring the ?version=N pin
// shared by every inference endpoint. Missing models answer 404
// not_found; unretained pins answer 404 version_not_found. The store
// key is the tenant-scoped name, so another tenant's models are
// indistinguishable from absent.
func (s *service) lookup(w http.ResponseWriter, req *http.Request) (*core.Rules, bool) {
	name, key, ok := s.modelRef(w, req)
	if !ok {
		return nil, false
	}
	version, pinned, ok := queryVersion(w, req)
	if !ok {
		return nil, false
	}
	_, sp := trace.Start(req.Context(), "store.get")
	sp.SetAttr("model", key)
	defer sp.End()
	if pinned {
		if _, exists := s.reg.Get(key); !exists {
			writeErr(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("model %q not found", name))
			return nil, false
		}
		rules, ok := s.reg.GetVersion(key, version)
		if !ok {
			writeErr(w, http.StatusNotFound, CodeVersionNotFound,
				fmt.Errorf("model %q has no retained version %d", name, version))
			return nil, false
		}
		return rules, true
	}
	rules, ok := s.reg.Get(key)
	if !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("model %q not found", name))
		return nil, false
	}
	return rules, true
}

// etagFor renders the strong ETag of a model version.
func etagFor(version int) string { return fmt.Sprintf("%q", fmt.Sprintf("v%d", version)) }

// etagMatch reports whether an If-None-Match header matches etag,
// honoring the `*` wildcard and weak-validator prefixes.
func etagMatch(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(part), "W/"))
		if part != "" && (part == "*" || part == etag) {
			return true
		}
	}
	return false
}

// get serves a revision's canonical Rules JSON — the head by default,
// or a retained revision pinned with ?version=N. The body is the
// pre-encoded canonical bytes held by the store, so encoding can never
// fail after headers are written (the old streaming Save risked a
// second WriteHeader on mid-body errors). The ETag is the served
// version; If-None-Match answers 304 so pollers skip the download.
func (s *service) get(w http.ResponseWriter, req *http.Request) {
	name, key, ok := s.modelRef(w, req)
	if !ok {
		return
	}
	version, pinned, ok := queryVersion(w, req)
	if !ok {
		return
	}
	var raw []byte
	if pinned {
		if _, _, exists := s.reg.GetRaw(key); !exists {
			writeErr(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("model %q not found", name))
			return
		}
		raw, ok = s.reg.GetVersionRaw(key, version)
		if !ok {
			writeErr(w, http.StatusNotFound, CodeVersionNotFound,
				fmt.Errorf("model %q has no retained version %d", name, version))
			return
		}
	} else {
		raw, version, ok = s.reg.GetRaw(key)
		if !ok {
			writeErr(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("model %q not found", name))
			return
		}
	}
	etag := etagFor(version)
	w.Header().Set("ETag", etag)
	if etagMatch(req.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(raw)
}

// put installs a model from Rules JSON (as produced by GET or rrmine
// -out), enabling offline mining with online serving.
func (s *service) put(w http.ResponseWriter, req *http.Request) {
	name, key, ok := s.modelRef(w, req)
	if !ok {
		return
	}
	if name == "" {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, errors.New("missing model name"))
		return
	}
	rules, err := core.Load(req.Body)
	if err != nil {
		bodyErr(w, err)
		return
	}
	version, err := s.reg.Put(req.Context(), key, rules)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, CodeStoreFailed,
			fmt.Errorf("persisting model: %w", err))
		return
	}
	s.logger.Info("model installed",
		"model", key, "version", version, "k", rules.K(), "attrs", rules.M())
	writeJSON(w, http.StatusOK, summarize(name, version, rules))
}

func (s *service) del(w http.ResponseWriter, req *http.Request) {
	name, key, ok := s.modelRef(w, req)
	if !ok {
		return
	}
	ok, err := s.reg.Delete(req.Context(), key)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, CodeStoreFailed,
			fmt.Errorf("deleting model: %w", err))
		return
	}
	if !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("model %q not found", name))
		return
	}
	// Deleting the model also drops its live stream: leaving the
	// accumulator running would republish the model right back. The
	// ingest admission queue goes with it.
	s.online.Drop(key)
	s.admission.DropIngestQueue(key)
	s.logger.Info("model deleted", "model", key)
	w.WriteHeader(http.StatusNoContent)
}

// versionsResponse is the GET /v1/rules/{name}/versions body.
type versionsResponse struct {
	Name     string              `json:"name"`
	Head     int                 `json:"head"`
	Versions []store.VersionInfo `json:"versions"`
}

func (s *service) versions(w http.ResponseWriter, req *http.Request) {
	name, key, ok := s.modelRef(w, req)
	if !ok {
		return
	}
	infos, ok := s.reg.Versions(key)
	if !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("model %q not found", name))
		return
	}
	head := 0
	if len(infos) > 0 {
		head = infos[len(infos)-1].Version
	}
	writeJSON(w, http.StatusOK, versionsResponse{Name: name, Head: head, Versions: infos})
}

// rollbackRequest is the POST /v1/rules/{name}/rollback body.
type rollbackRequest struct {
	Version int `json:"version"`
}

// rollback restores a retained version as the new head. The restored
// revision gets a fresh version number, so history stays linear and
// ETags keep advancing.
func (s *service) rollback(w http.ResponseWriter, req *http.Request) {
	name, key, ok := s.modelRef(w, req)
	if !ok {
		return
	}
	var body rollbackRequest
	if !decodeBody(w, req, &body) {
		return
	}
	if body.Version <= 0 {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, errors.New("missing or invalid version"))
		return
	}
	// The store returns the restored rules from under its lock, so the
	// summary always matches newVersion even when a concurrent Put lands
	// a newer head before we respond.
	rules, newVersion, err := s.reg.Rollback(req.Context(), key, body.Version)
	if err != nil {
		// Rollback failures that are neither missing-model nor
		// missing-version are journal write failures.
		status, code := errStatus(err)
		if code == CodeInternal {
			code = CodeStoreFailed
		}
		writeErr(w, status, code, err)
		return
	}
	s.logger.Info("model rolled back",
		"model", name, "restored", body.Version, "head", newVersion)
	writeJSON(w, http.StatusOK, summarize(name, newVersion, rules))
}

// fillRequest is the POST fill body: record values with the hole indices
// listed separately (JSON has no NaN).
type fillRequest struct {
	Record []float64 `json:"record"`
	Holes  []int     `json:"holes"`
}

type fillResponse struct {
	Filled []float64 `json:"filled"`
}

func (s *service) fill(w http.ResponseWriter, req *http.Request) {
	rules, ok := s.lookup(w, req)
	if !ok {
		return
	}
	var body fillRequest
	if !decodeBody(w, req, &body) {
		return
	}
	filled, err := rules.FillRow(body.Record, body.Holes)
	if err != nil {
		writeErrFor(w, err)
		return
	}
	writeJSON(w, http.StatusOK, fillResponse{Filled: filled})
}

// forecastRequest is the POST forecast body.
type forecastRequest struct {
	Given  map[int]float64 `json:"given"`
	Target int             `json:"target"`
}

type forecastResponse struct {
	Value float64 `json:"value"`
}

func (s *service) forecast(w http.ResponseWriter, req *http.Request) {
	rules, ok := s.lookup(w, req)
	if !ok {
		return
	}
	var body forecastRequest
	if !decodeBody(w, req, &body) {
		return
	}
	v, err := rules.Forecast(body.Given, body.Target)
	if err != nil {
		writeErrFor(w, err)
		return
	}
	writeJSON(w, http.StatusOK, forecastResponse{Value: v})
}

// whatIfRequest is the POST whatif body: pinned attribute values.
type whatIfRequest struct {
	Given map[int]float64 `json:"given"`
}

type whatIfResponse struct {
	Record []float64 `json:"record"`
}

func (s *service) whatIf(w http.ResponseWriter, req *http.Request) {
	rules, ok := s.lookup(w, req)
	if !ok {
		return
	}
	var body whatIfRequest
	if !decodeBody(w, req, &body) {
		return
	}
	out, err := rules.WhatIf(core.Scenario{Given: body.Given})
	if err != nil {
		writeErrFor(w, err)
		return
	}
	writeJSON(w, http.StatusOK, whatIfResponse{Record: out})
}

// projectRequest is the POST project body.
type projectRequest struct {
	Rows [][]float64 `json:"rows"`
	Dims int         `json:"dims"`
}

type projectResponse struct {
	Coords [][]float64 `json:"coords"`
}

func (s *service) project(w http.ResponseWriter, req *http.Request) {
	rules, ok := s.lookup(w, req)
	if !ok {
		return
	}
	var body projectRequest
	if !decodeBody(w, req, &body) {
		return
	}
	x, err := matrix.FromRows(body.Rows)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	dims := body.Dims
	if dims == 0 {
		dims = 2
	}
	proj, err := rules.Project(x, dims)
	if err != nil {
		writeErrFor(w, err)
		return
	}
	coords := make([][]float64, proj.Rows())
	for i := range coords {
		coords[i] = proj.Row(i)
	}
	writeJSON(w, http.StatusOK, projectResponse{Coords: coords})
}

// outliersRequest is the POST outliers body.
type outliersRequest struct {
	Rows  [][]float64 `json:"rows"`
	Sigma float64     `json:"sigma,omitempty"`
}

type outliersResponse struct {
	Outliers []core.CellOutlier `json:"outliers"`
}

func (s *service) outliers(w http.ResponseWriter, req *http.Request) {
	rules, ok := s.lookup(w, req)
	if !ok {
		return
	}
	var body outliersRequest
	if !decodeBody(w, req, &body) {
		return
	}
	x, err := matrix.FromRows(body.Rows)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	out, err := rules.CellOutliers(x, body.Sigma)
	if err != nil {
		writeErrFor(w, err)
		return
	}
	if out == nil {
		out = []core.CellOutlier{}
	}
	writeJSON(w, http.StatusOK, outliersResponse{Outliers: out})
}
