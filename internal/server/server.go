// Package server exposes Ratio Rules mining and reconstruction as a JSON
// HTTP service, so non-Go clients can mine rules once and query them for
// forecasting, what-if analysis and outlier detection. Models are held in
// memory behind a named registry; persistence is the caller's concern
// (rules serialize with Rules.Save / the GET endpoint).
//
// Endpoints (Go 1.22 pattern routing):
//
//	POST   /v1/rules                 mine a model from rows
//	GET    /v1/rules                 list model names
//	GET    /v1/rules/{name}          fetch a model (Rules JSON)
//	PUT    /v1/rules/{name}          install a model from Rules JSON
//	DELETE /v1/rules/{name}          drop a model
//	POST   /v1/rules/{name}/fill     reconstruct holes in a record
//	POST   /v1/rules/{name}/forecast predict one attribute from givens
//	POST   /v1/rules/{name}/whatif   complete a scenario from pinned values
//	POST   /v1/rules/{name}/project  map rows into RR space
//	POST   /v1/rules/{name}/outliers score rows for cell outliers
//	GET    /healthz                  liveness probe
//	GET    /metrics                  Prometheus text exposition
//
// Wrong-method requests to the /v1/rules paths return 405 with an
// Allow header. All routes are wrapped in the obs middleware; see
// docs/observability.md for the metric and label conventions.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"

	"ratiorules/internal/core"
	"ratiorules/internal/matrix"
	"ratiorules/internal/obs"
)

// Registry is a concurrency-safe named store of mined rule sets.
type Registry struct {
	mu     sync.RWMutex
	models map[string]*core.Rules
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]*core.Rules)}
}

// Put stores (or replaces) a model.
func (r *Registry) Put(name string, rules *core.Rules) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.models[name] = rules
}

// Get fetches a model, reporting whether it exists.
func (r *Registry) Get(name string) (*core.Rules, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[name]
	return m, ok
}

// Delete removes a model, reporting whether it existed.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.models[name]
	delete(r.models, name)
	return ok
}

// Names lists stored model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.models))
	for n := range r.models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Handler builds the HTTP handler over a registry. Every route is
// wrapped in the obs middleware (request counters, latency histograms,
// in-flight gauge — see middleware.go), the metrics registry itself is
// exposed at GET /metrics in Prometheus text format, and wrong-method
// hits on known paths answer 405 with an Allow header instead of the
// generic 404 fallthrough.
func Handler(reg *Registry, opts ...HandlerOption) http.Handler {
	cfg := handlerConfig{metrics: obs.Default(), logger: obs.NopLogger()}
	for _, o := range opts {
		o(&cfg)
	}
	m := newHTTPMetrics(cfg.metrics, cfg.logger)
	s := &service{reg: reg, logger: cfg.logger}
	mux := http.NewServeMux()
	handle := func(method, path string, h http.HandlerFunc) {
		mux.Handle(method+" "+path, m.instrument(path, h))
	}
	handle("GET", "/healthz", s.health)
	handle("GET", "/metrics", cfg.metrics.Handler().ServeHTTP)
	handle("POST", "/v1/rules", s.mine)
	handle("GET", "/v1/rules", s.list)
	handle("GET", "/v1/rules/{name}", s.get)
	handle("PUT", "/v1/rules/{name}", s.put)
	handle("DELETE", "/v1/rules/{name}", s.del)
	handle("POST", "/v1/rules/{name}/fill", s.fill)
	handle("POST", "/v1/rules/{name}/forecast", s.forecast)
	handle("POST", "/v1/rules/{name}/whatif", s.whatIf)
	handle("POST", "/v1/rules/{name}/project", s.project)
	handle("POST", "/v1/rules/{name}/outliers", s.outliers)
	// Wrong-method fallbacks: the method-specific patterns above take
	// precedence, so these catch everything else on known paths.
	fallback := func(path, allow string) {
		mux.Handle(path, m.instrument(path, methodNotAllowed(allow)))
	}
	fallback("/v1/rules", "GET, POST")
	fallback("/v1/rules/{name}", "GET, PUT, DELETE")
	for _, sub := range []string{"fill", "forecast", "whatif", "project", "outliers"} {
		fallback("/v1/rules/{name}/"+sub, "POST")
	}
	return mux
}

type service struct {
	reg    *Registry
	logger *slog.Logger
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// statusFor maps library sentinel errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrWidth), errors.Is(err, core.ErrBadHole), errors.Is(err, core.ErrNoRules):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// health answers liveness probes with the model count.
func (s *service) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"models": len(s.reg.Names()),
	})
}

// mineRequest is the POST /v1/rules body.
type mineRequest struct {
	Name   string      `json:"name"`
	Attrs  []string    `json:"attrs,omitempty"`
	Rows   [][]float64 `json:"rows"`
	Energy float64     `json:"energy,omitempty"` // 0 = default 0.85
	K      *int        `json:"k,omitempty"`      // fixed k override
}

// modelSummary is returned after mining and by GET /v1/rules.
type modelSummary struct {
	Name          string    `json:"name"`
	K             int       `json:"k"`
	M             int       `json:"m"`
	TrainedRows   int       `json:"trained_rows"`
	EnergyCovered float64   `json:"energy_covered"`
	Eigenvalues   []float64 `json:"eigenvalues"`
}

func summarize(name string, r *core.Rules) modelSummary {
	return modelSummary{
		Name:          name,
		K:             r.K(),
		M:             r.M(),
		TrainedRows:   r.TrainedRows(),
		EnergyCovered: r.EnergyCovered(),
		Eigenvalues:   r.Eigenvalues(),
	}
}

func (s *service) mine(w http.ResponseWriter, req *http.Request) {
	var body mineRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if body.Name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing model name"))
		return
	}
	if len(body.Rows) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("missing rows"))
		return
	}
	x, err := matrix.FromRows(body.Rows)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	opts := []core.Option{}
	if body.Attrs != nil {
		opts = append(opts, core.WithAttrNames(body.Attrs))
	}
	if body.K != nil {
		opts = append(opts, core.WithFixedK(*body.K))
	} else if body.Energy > 0 {
		opts = append(opts, core.WithEnergy(body.Energy))
	}
	miner, err := core.NewMiner(opts...)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rules, err := miner.MineMatrix(x)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	s.reg.Put(body.Name, rules)
	s.logger.Info("model mined",
		"model", body.Name, "rows", rules.TrainedRows(), "k", rules.K(), "attrs", rules.M())
	writeJSON(w, http.StatusCreated, summarize(body.Name, rules))
}

func (s *service) list(w http.ResponseWriter, _ *http.Request) {
	names := s.reg.Names()
	out := make([]modelSummary, 0, len(names))
	for _, n := range names {
		if m, ok := s.reg.Get(n); ok {
			out = append(out, summarize(n, m))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *service) lookup(w http.ResponseWriter, req *http.Request) (*core.Rules, bool) {
	name := req.PathValue("name")
	rules, ok := s.reg.Get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("model %q not found", name))
		return nil, false
	}
	return rules, true
}

func (s *service) get(w http.ResponseWriter, req *http.Request) {
	rules, ok := s.lookup(w, req)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := rules.Save(w); err != nil {
		// Headers are gone; nothing more we can do than log-by-status.
		writeErr(w, http.StatusInternalServerError, err)
	}
}

// put installs a model from Rules JSON (as produced by GET or rrmine
// -out), enabling offline mining with online serving.
func (s *service) put(w http.ResponseWriter, req *http.Request) {
	name := req.PathValue("name")
	if name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing model name"))
		return
	}
	rules, err := core.Load(req.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.reg.Put(name, rules)
	s.logger.Info("model installed", "model", name, "k", rules.K(), "attrs", rules.M())
	writeJSON(w, http.StatusOK, summarize(name, rules))
}

func (s *service) del(w http.ResponseWriter, req *http.Request) {
	name := req.PathValue("name")
	if !s.reg.Delete(name) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("model %q not found", name))
		return
	}
	s.logger.Info("model deleted", "model", name)
	w.WriteHeader(http.StatusNoContent)
}

// fillRequest is the POST fill body: record values with the hole indices
// listed separately (JSON has no NaN).
type fillRequest struct {
	Record []float64 `json:"record"`
	Holes  []int     `json:"holes"`
}

type fillResponse struct {
	Filled []float64 `json:"filled"`
}

func (s *service) fill(w http.ResponseWriter, req *http.Request) {
	rules, ok := s.lookup(w, req)
	if !ok {
		return
	}
	var body fillRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	filled, err := rules.FillRow(body.Record, body.Holes)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, fillResponse{Filled: filled})
}

// forecastRequest is the POST forecast body.
type forecastRequest struct {
	Given  map[int]float64 `json:"given"`
	Target int             `json:"target"`
}

type forecastResponse struct {
	Value float64 `json:"value"`
}

func (s *service) forecast(w http.ResponseWriter, req *http.Request) {
	rules, ok := s.lookup(w, req)
	if !ok {
		return
	}
	var body forecastRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	v, err := rules.Forecast(body.Given, body.Target)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, forecastResponse{Value: v})
}

// whatIfRequest is the POST whatif body: pinned attribute values.
type whatIfRequest struct {
	Given map[int]float64 `json:"given"`
}

type whatIfResponse struct {
	Record []float64 `json:"record"`
}

func (s *service) whatIf(w http.ResponseWriter, req *http.Request) {
	rules, ok := s.lookup(w, req)
	if !ok {
		return
	}
	var body whatIfRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	out, err := rules.WhatIf(core.Scenario{Given: body.Given})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, whatIfResponse{Record: out})
}

// projectRequest is the POST project body.
type projectRequest struct {
	Rows [][]float64 `json:"rows"`
	Dims int         `json:"dims"`
}

type projectResponse struct {
	Coords [][]float64 `json:"coords"`
}

func (s *service) project(w http.ResponseWriter, req *http.Request) {
	rules, ok := s.lookup(w, req)
	if !ok {
		return
	}
	var body projectRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	x, err := matrix.FromRows(body.Rows)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	dims := body.Dims
	if dims == 0 {
		dims = 2
	}
	proj, err := rules.Project(x, dims)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	coords := make([][]float64, proj.Rows())
	for i := range coords {
		coords[i] = proj.Row(i)
	}
	writeJSON(w, http.StatusOK, projectResponse{Coords: coords})
}

// outliersRequest is the POST outliers body.
type outliersRequest struct {
	Rows  [][]float64 `json:"rows"`
	Sigma float64     `json:"sigma,omitempty"`
}

type outliersResponse struct {
	Outliers []core.CellOutlier `json:"outliers"`
}

func (s *service) outliers(w http.ResponseWriter, req *http.Request) {
	rules, ok := s.lookup(w, req)
	if !ok {
		return
	}
	var body outliersRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	x, err := matrix.FromRows(body.Rows)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	out, err := rules.CellOutliers(x, body.Sigma)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	if out == nil {
		out = []core.CellOutlier{}
	}
	writeJSON(w, http.StatusOK, outliersResponse{Outliers: out})
}
