package server

// Pooled NDJSON line encoding shared by the streaming write paths
// (batch inference and ingest acks). Those handlers emit one small JSON
// line per input row; encoding each line with json.Marshal allocates a
// fresh byte slice per row, which at millions of rows per request makes
// the garbage collector a measurable cost on the response path. A
// lineWriter instead rents a buffer + encoder pair from a process-wide
// sync.Pool for the duration of the request and reuses it for every
// line. json.Encoder appends the trailing '\n' itself, so the framing
// is byte-identical to the old Marshal+append form.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
)

// lineBuf is one pooled encode buffer; enc writes into buf.
type lineBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var linePool = sync.Pool{
	New: func() any {
		lb := &lineBuf{}
		lb.enc = json.NewEncoder(&lb.buf)
		return lb
	},
}

// lineWriter emits NDJSON lines to one response, flushing after each so
// clients see acks while still sending. Not safe for concurrent use —
// each request path has exactly one emitting goroutine.
type lineWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
	lb      *lineBuf
}

// newLineWriter rents a pooled buffer for the request. Callers must
// release() when the response is done.
func newLineWriter(w http.ResponseWriter) *lineWriter {
	flusher, _ := w.(http.Flusher)
	return &lineWriter{w: w, flusher: flusher, lb: linePool.Get().(*lineBuf)}
}

// emit encodes v as one NDJSON line and flushes it. It reports false
// when the value cannot be encoded or the client is gone; callers stop
// streaming on false. Nothing is written on an encode failure, so the
// line framing can never be corrupted mid-stream.
func (lw *lineWriter) emit(v any) bool {
	lw.lb.buf.Reset()
	if err := lw.lb.enc.Encode(v); err != nil {
		return false
	}
	if _, err := lw.w.Write(lw.lb.buf.Bytes()); err != nil {
		return false
	}
	if lw.flusher != nil {
		lw.flusher.Flush()
	}
	return true
}

// emitErr encodes a row-error line for index with the envelope code
// derived from err — the shared shape of every streaming endpoint.
func (lw *lineWriter) emitErr(index int, err error) bool {
	_, code := errStatus(err)
	return lw.emit(lineError{Index: index, Error: errorInfo{Code: code, Message: err.Error()}})
}

// release returns the encode buffer to the pool. The buffer is reset on
// next rent; oversized buffers (a huge batch result line) are dropped
// rather than pooled so one outlier row does not pin memory.
func (lw *lineWriter) release() {
	if lw.lb == nil {
		return
	}
	if lw.lb.buf.Cap() <= maxPooledLineBytes {
		linePool.Put(lw.lb)
	}
	lw.lb = nil
}

// maxPooledLineBytes bounds what a returned buffer may retain: lines
// are typically well under 1 KiB, so 64 KiB keeps every normal workload
// allocation-free while letting rare megabyte-class outlier lines be
// garbage collected.
const maxPooledLineBytes = 64 << 10
