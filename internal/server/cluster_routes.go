package server

// Cluster admin routes, mounted only when Handler runs in coordinator
// mode (WithCluster):
//
//	GET  /v1/cluster/status            membership, health, degradation
//	POST /v1/cluster/join              add (or re-probe) a worker node
//	POST /v1/cluster/republish/{name}  force one pull-merge-republish cycle
//
// Workers announce themselves with POST join on startup (rrserve -node
// -coordinator=URL); operators use the same route to re-admit a node
// after restart. Force republish is the deterministic merge trigger:
// e2e tests and operators use it instead of waiting for the row-count
// or interval triggers.

import (
	"errors"
	"fmt"
	"net/http"

	"ratiorules/internal/cluster"
	"ratiorules/internal/online"
)

// clusterJoinRequest is the POST /v1/cluster/join body.
type clusterJoinRequest struct {
	URL string `json:"url"`
}

// clusterJoin admits a worker node into the coordinator's membership.
// The coordinator probes it synchronously; an unreachable or tainted
// node answers 502 with the probe failure, so announcing workers know
// immediately whether they made it in.
func (s *service) clusterJoin(w http.ResponseWriter, req *http.Request) {
	var body clusterJoinRequest
	if !decodeBody(w, req, &body) {
		return
	}
	if body.URL == "" {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, errors.New("missing worker url"))
		return
	}
	if err := s.cluster.Join(body.URL); err != nil {
		writeErr(w, http.StatusBadGateway, CodeClusterJoin,
			fmt.Errorf("joining worker %s: %w", body.URL, err))
		return
	}
	s.logger.Info("cluster worker joined", "worker", body.URL)
	writeJSON(w, http.StatusOK, s.cluster.Status())
}

// clusterStatus reports membership and degradation (GET /v1/cluster/status).
func (s *service) clusterStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.cluster.Status())
}

// clusterRepublish forces one synchronous pull-merge-republish cycle
// for a model (POST /v1/cluster/republish/{name}), answering the
// published model summary. A merge that found no shard rows anywhere
// answers 404.
func (s *service) clusterRepublish(w http.ResponseWriter, req *http.Request) {
	name := req.PathValue("name")
	if err := s.cluster.MergeNow(req.Context(), name); err != nil {
		if online.IsTooFewRows(err) || errors.Is(err, cluster.ErrUnknownModel) {
			writeErr(w, http.StatusNotFound, CodeNotFound,
				fmt.Errorf("model %q has no cluster shard rows: %w", name, err))
			return
		}
		writeErr(w, http.StatusInternalServerError, CodeInternal,
			fmt.Errorf("merging shards for %q: %w", name, err))
		return
	}
	rules, version, ok := s.reg.GetWithVersion(name)
	if !ok {
		// Merge succeeded but the GE gate held the publish back; report
		// the gate decision rather than inventing a version.
		writeErr(w, http.StatusConflict, CodeConflict,
			fmt.Errorf("model %q merged but was not promoted (GE gate)", name))
		return
	}
	s.logger.Info("cluster republish forced", "model", name, "version", version)
	writeJSON(w, http.StatusOK, summarize(name, version, rules))
}
