package server

// Integration coverage for the fleet and profiling surface when it IS
// configured (the contract test pins the unconfigured 404s).

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ratiorules/internal/obs"
	"ratiorules/internal/obs/fleet"
	"ratiorules/internal/obs/profile"
)

func TestFleetRoutesConfigured(t *testing.T) {
	// One fake member with metrics and a readiness probe.
	memberMux := http.NewServeMux()
	memberMux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "# HELP rr_models Registered models.\n# TYPE rr_models gauge\nrr_models 5\n")
	})
	memberMux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, `{"status":"ok"}`)
	})
	member := httptest.NewServer(memberMux)
	t.Cleanup(member.Close)

	collector := fleet.New(fleet.Config{
		Members:  []fleet.Member{{Name: "w1", URL: member.URL}},
		Interval: time.Hour,
		Logger:   obs.NopLogger(),
		SelfName: "self",
		SelfRole: "leader",
	})
	collector.ScrapeOnce(context.Background())

	ts := httptest.NewServer(Handler(NewRegistry(), WithFleet(collector)))
	t.Cleanup(ts.Close)

	resp := doRaw(t, "GET", ts.URL+"/metrics/fleet", "", "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics/fleet status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("/metrics/fleet Content-Type %q, want %q", ct, obs.ContentType)
	}
	for _, want := range []string{`rr_models{node="w1"} 5`, `rr_fleet_member_up{node="w1"} 1`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics/fleet missing %q:\n%s", want, body)
		}
	}

	resp = doRaw(t, "GET", ts.URL+"/debug/fleet", "", "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/fleet status %d", resp.StatusCode)
	}
	var rollup struct {
		Self struct {
			Role  string        `json:"role"`
			Build obs.BuildInfo `json:"build"`
		} `json:"self"`
		IntervalSeconds float64 `json:"scrape_interval_seconds"`
		Nodes           []struct {
			Name    string `json:"name"`
			Healthy bool   `json:"healthy"`
			Stale   bool   `json:"stale"`
		} `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rollup); err != nil {
		t.Fatal(err)
	}
	if rollup.Self.Role != "leader" || rollup.Self.Build.GoVersion == "" {
		t.Errorf("/debug/fleet self = %+v, want role leader with build info", rollup.Self)
	}
	if rollup.IntervalSeconds != 3600 {
		t.Errorf("/debug/fleet interval = %v, want 3600", rollup.IntervalSeconds)
	}
	if len(rollup.Nodes) != 1 || rollup.Nodes[0].Name != "w1" || !rollup.Nodes[0].Healthy {
		t.Errorf("/debug/fleet nodes = %+v, want healthy w1", rollup.Nodes)
	}
}

func TestProfileRoutesConfigured(t *testing.T) {
	ring := profile.New(profile.Config{Logger: obs.NopLogger()})
	ring.CaptureSnapshots()

	ts := httptest.NewServer(Handler(NewRegistry(), WithProfiles(ring)))
	t.Cleanup(ts.Close)

	resp := doRaw(t, "GET", ts.URL+"/debug/profiles", "", "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/profiles status %d", resp.StatusCode)
	}
	var listing struct {
		Retained   int `json:"retained"`
		TotalBytes int `json:"total_bytes"`
		Profiles   []struct {
			ID   int    `json:"id"`
			Kind string `json:"kind"`
		} `json:"profiles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if listing.Retained != 2 || len(listing.Profiles) != 2 || listing.TotalBytes <= 0 {
		t.Fatalf("/debug/profiles listing = %+v, want heap+goroutine", listing)
	}

	id := listing.Profiles[0].ID
	blob := doRaw(t, "GET", ts.URL+"/debug/profiles/"+strconv.Itoa(id), "", "")
	data, _ := io.ReadAll(blob.Body)
	blob.Body.Close()
	if blob.StatusCode != http.StatusOK || len(data) == 0 {
		t.Fatalf("profile blob fetch: status %d, %d bytes", blob.StatusCode, len(data))
	}
	if ct := blob.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("profile blob Content-Type %q", ct)
	}
	if cd := blob.Header.Get("Content-Disposition"); !strings.Contains(cd, listing.Profiles[0].Kind) {
		t.Errorf("Content-Disposition %q, want kind %q in filename", cd, listing.Profiles[0].Kind)
	}
}

// TestMetricsServesBuildInfo: every node exposes rr_build_info so the
// fleet collector can report mixed-version fleets.
func TestMetricsServesBuildInfo(t *testing.T) {
	ts := newTestServer(t)
	resp := doRaw(t, "GET", ts.URL+"/metrics", "", "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "rr_build_info{") {
		t.Errorf("/metrics missing rr_build_info:\n%.2000s", body)
	}
}
