package server

// Debug and fleet surfaces: the trace flight recorder (/debug/traces),
// the continuous-profiling ring (/debug/profiles), and the federated
// fleet views (/metrics/fleet, /debug/fleet). All of them mount from
// the route table (routes.go) untraced — scraping the scraper would
// flush real traffic out of the flight recorder.

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ratiorules/internal/obs"
	"ratiorules/internal/obs/fleet"
	"ratiorules/internal/obs/profile"
	"ratiorules/internal/obs/trace"
)

// tracesResponse is the GET /debug/traces body: flight-recorder
// occupancy plus the most recent (or slowest) trace summaries.
type tracesResponse struct {
	Retained int             `json:"retained"`
	Total    uint64          `json:"total"`
	Traces   []trace.Summary `json:"traces"`
}

// debugTraces lists the flight recorder: newest first by default,
// slowest first with ?sort=duration, capped with ?n=N (default 50).
func (s *service) debugTraces(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	n := 50
	if raw := q.Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			writeErr(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("invalid n %q: want a positive integer", raw))
			return
		}
		n = v
	}
	var byDuration bool
	switch q.Get("sort") {
	case "", "recent":
	case "duration":
		byDuration = true
	default:
		writeErr(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("invalid sort %q: want recent or duration", q.Get("sort")))
		return
	}
	rec := s.tracer.Recorder()
	writeJSON(w, http.StatusOK, tracesResponse{
		Retained: rec.Len(),
		Total:    rec.Total(),
		Traces:   rec.Summaries(n, byDuration),
	})
}

// traceResponse is the GET /debug/traces/{id} body: the trace header,
// its span tree, and the trace's cross-node references — where the
// rest of a federated trace lives when this node only holds a part of
// it. Spans whose parent was dropped at the span cap (or ran on
// another node) surface as extra roots.
type traceResponse struct {
	TraceID    string            `json:"trace_id"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Spans      int               `json:"spans"`
	Dropped    int               `json:"dropped,omitempty"`
	Remote     []trace.RemoteRef `json:"remote,omitempty"`
	Tree       []*trace.SpanNode `json:"tree"`
}

// debugTrace serves one retained trace's full span tree, rebuilt from
// the flat span list by ParentID (trace.BuildTree — the same renderer
// worker nodes use, so every node in the fleet answers the same shape).
// Evicted or unknown IDs answer 404.
func (s *service) debugTrace(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	td, ok := s.tracer.Recorder().Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound,
			fmt.Errorf("trace %q not retained (evicted or never recorded)", id))
		return
	}
	tree := trace.BuildTree(td.Spans)
	if tree == nil {
		tree = []*trace.SpanNode{}
	}
	writeJSON(w, http.StatusOK, traceResponse{
		TraceID:    td.TraceID,
		Name:       td.Name,
		Start:      td.Start,
		DurationMS: float64(td.Duration) / float64(time.Millisecond),
		Spans:      len(td.Spans),
		Dropped:    td.Dropped,
		Remote:     trace.RemoteRefs(td.Spans),
		Tree:       tree,
	})
}

// metricsExpo serves the node's own registry (GET /metrics).
func (s *service) metricsExpo(w http.ResponseWriter, req *http.Request) {
	s.metricsHandler.ServeHTTP(w, req)
}

// metricsFleet serves the federated exposition: every member's last
// scrape with node="..." injected, plus the synthetic per-node health
// series. Nodes without a collector answer 404 so scrapers can probe
// which node fronts the fleet.
func (s *service) metricsFleet(w http.ResponseWriter, _ *http.Request) {
	if s.fleet == nil {
		writeErr(w, http.StatusNotFound, CodeNotFound,
			errors.New("fleet collection not configured on this node"))
		return
	}
	// Render to a buffer first so a mid-exposition failure can still
	// answer a clean error instead of a torn body.
	var buf bytes.Buffer
	if err := s.fleet.WriteMetrics(&buf); err != nil {
		if errors.Is(err, fleet.ErrNoData) {
			writeErr(w, http.StatusNotFound, CodeNotFound, err)
			return
		}
		writeErr(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	w.Header().Set("Content-Type", obs.ContentType)
	_, _ = w.Write(buf.Bytes())
}

// fleetResponse is the GET /debug/fleet body: the collecting node's
// own identity plus one row per scraped member.
type fleetResponse struct {
	Self            fleetSelf          `json:"self"`
	IntervalSeconds float64            `json:"scrape_interval_seconds"`
	Nodes           []fleet.NodeStatus `json:"nodes"`
}

// fleetSelf identifies the node serving the rollup.
type fleetSelf struct {
	Role  string        `json:"role"`
	Build obs.BuildInfo `json:"build"`
}

// debugFleet serves the JSON fleet rollup: per-node role, health,
// staleness, build identity, probe body and (for workers) shard
// ownership.
func (s *service) debugFleet(w http.ResponseWriter, _ *http.Request) {
	if s.fleet == nil {
		writeErr(w, http.StatusNotFound, CodeNotFound,
			errors.New("fleet collection not configured on this node"))
		return
	}
	nodes := s.fleet.Nodes()
	if nodes == nil {
		nodes = []fleet.NodeStatus{}
	}
	writeJSON(w, http.StatusOK, fleetResponse{
		Self:            fleetSelf{Role: s.role.String(), Build: obs.Build()},
		IntervalSeconds: s.fleet.Interval().Seconds(),
		Nodes:           nodes,
	})
}

// profilesResponse is the GET /debug/profiles body: ring occupancy, the
// knobs in effect, and the retained captures oldest first.
type profilesResponse struct {
	Retained           int             `json:"retained"`
	TotalBytes         int64           `json:"total_bytes"`
	IntervalSeconds    float64         `json:"interval_seconds"`
	CPUDurationSeconds float64         `json:"cpu_duration_seconds"`
	Profiles           []profile.Entry `json:"profiles"`
}

// debugProfiles lists the continuous-profiling ring.
func (s *service) debugProfiles(w http.ResponseWriter, _ *http.Request) {
	entries := s.profiles.List()
	if entries == nil {
		entries = []profile.Entry{}
	}
	writeJSON(w, http.StatusOK, profilesResponse{
		Retained:           len(entries),
		TotalBytes:         s.profiles.TotalBytes(),
		IntervalSeconds:    s.profiles.Interval().Seconds(),
		CPUDurationSeconds: s.profiles.CPUDuration().Seconds(),
		Profiles:           entries,
	})
}

// debugProfile serves one retained capture's pprof blob, ready for
// `go tool pprof <url>` or a saved-file workflow.
func (s *service) debugProfile(w http.ResponseWriter, req *http.Request) {
	raw := req.PathValue("id")
	id, err := strconv.Atoi(raw)
	if err != nil || id <= 0 {
		writeErr(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("invalid profile id %q: want a positive integer", raw))
		return
	}
	e, blob, ok := s.profiles.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound,
			fmt.Errorf("profile %d not retained (evicted or never captured)", id))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", fmt.Sprintf("%s-%d.pprof", e.Kind, e.ID)))
	_, _ = w.Write(blob)
}
