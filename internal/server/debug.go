package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ratiorules/internal/obs/trace"
)

// tracesResponse is the GET /debug/traces body: flight-recorder
// occupancy plus the most recent (or slowest) trace summaries.
type tracesResponse struct {
	Retained int             `json:"retained"`
	Total    uint64          `json:"total"`
	Traces   []trace.Summary `json:"traces"`
}

// debugTraces lists the flight recorder: newest first by default,
// slowest first with ?sort=duration, capped with ?n=N (default 50).
func (s *service) debugTraces(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	n := 50
	if raw := q.Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			writeErr(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("invalid n %q: want a positive integer", raw))
			return
		}
		n = v
	}
	var byDuration bool
	switch q.Get("sort") {
	case "", "recent":
	case "duration":
		byDuration = true
	default:
		writeErr(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("invalid sort %q: want recent or duration", q.Get("sort")))
		return
	}
	rec := s.tracer.Recorder()
	writeJSON(w, http.StatusOK, tracesResponse{
		Retained: rec.Len(),
		Total:    rec.Total(),
		Traces:   rec.Summaries(n, byDuration),
	})
}

// spanNode is one span rendered into the tree, children nested under
// their parent.
type spanNode struct {
	SpanID     string       `json:"span_id"`
	Name       string       `json:"name"`
	Start      time.Time    `json:"start"`
	DurationMS float64      `json:"duration_ms"`
	Attrs      []trace.Attr `json:"attrs,omitempty"`
	Children   []*spanNode  `json:"children,omitempty"`
}

// traceResponse is the GET /debug/traces/{id} body: the trace header
// plus its span tree. Spans whose parent was dropped at the span cap
// (or belongs to an upstream service) surface as extra roots.
type traceResponse struct {
	TraceID    string      `json:"trace_id"`
	Name       string      `json:"name"`
	Start      time.Time   `json:"start"`
	DurationMS float64     `json:"duration_ms"`
	Spans      int         `json:"spans"`
	Dropped    int         `json:"dropped,omitempty"`
	Tree       []*spanNode `json:"tree"`
}

// debugTrace serves one retained trace's full span tree, rebuilt from
// the flat span list by ParentID. Evicted or unknown IDs answer 404.
func (s *service) debugTrace(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	td, ok := s.tracer.Recorder().Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound,
			fmt.Errorf("trace %q not retained (evicted or never recorded)", id))
		return
	}
	writeJSON(w, http.StatusOK, traceResponse{
		TraceID:    td.TraceID,
		Name:       td.Name,
		Start:      td.Start,
		DurationMS: float64(td.Duration) / float64(time.Millisecond),
		Spans:      len(td.Spans),
		Dropped:    td.Dropped,
		Tree:       buildSpanTree(td.Spans),
	})
}

// buildSpanTree nests the flat span list by ParentID, ordering
// siblings by start time. Orphans — spans whose parent is not in the
// list — become roots, so a capped trace still renders.
func buildSpanTree(spans []trace.SpanData) []*spanNode {
	nodes := make(map[string]*spanNode, len(spans))
	for _, sp := range spans {
		nodes[sp.SpanID] = &spanNode{
			SpanID:     sp.SpanID,
			Name:       sp.Name,
			Start:      sp.Start,
			DurationMS: float64(sp.Duration) / float64(time.Millisecond),
			Attrs:      sp.Attrs,
		}
	}
	var roots []*spanNode
	for _, sp := range spans {
		node := nodes[sp.SpanID]
		if parent, ok := nodes[sp.ParentID]; ok && sp.ParentID != sp.SpanID {
			parent.Children = append(parent.Children, node)
		} else {
			roots = append(roots, node)
		}
	}
	sortSpanNodes(roots)
	for _, n := range nodes {
		sortSpanNodes(n.Children)
	}
	if roots == nil {
		roots = []*spanNode{}
	}
	return roots
}

// sortSpanNodes orders siblings chronologically (insertion sort: spans
// already arrive in near-End order, and sibling lists are short).
func sortSpanNodes(nodes []*spanNode) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j].Start.Before(nodes[j-1].Start); j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}
