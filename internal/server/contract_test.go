package server

// The v1 contract test walks every route of the public HTTP surface
// and pins down the externally observable behavior clients depend on:
// status codes, error-envelope shape and codes, Allow headers on 405s,
// ETag/If-None-Match handling, ?version pinning, and the NDJSON batch
// framing. If this test has to change, the API contract changed —
// update docs/api.md in the same commit.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// contractServer mines the "m" model twice so version 1 is retained
// history and version 2 is the head.
func contractServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := newTestServer(t)
	mineModel(t, ts, "m")
	mineModel(t, ts, "m")
	return ts
}

// doRaw performs a request with an optional raw body and content type,
// returning the response (caller closes).
func doRaw(t *testing.T, method, url, contentType, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeEnvelope asserts the body is the uniform error envelope and
// returns its code.
func decodeEnvelope(t *testing.T, label string, body io.Reader) string {
	t.Helper()
	var env errorBody
	if err := json.NewDecoder(body).Decode(&env); err != nil {
		t.Fatalf("%s: body is not the error envelope: %v", label, err)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("%s: envelope missing code or message: %+v", label, env)
	}
	return env.Error.Code
}

// TestV1Contract walks the whole surface with a golden table.
func TestV1Contract(t *testing.T) {
	ts := contractServer(t)

	cases := []struct {
		label       string
		method      string
		path        string
		contentType string
		body        string
		wantStatus  int
		wantCode    string // "" = success body, no envelope
		wantAllow   string
	}{
		{label: "health", method: "GET", path: "/healthz", wantStatus: 200},
		{label: "ready", method: "GET", path: "/readyz", wantStatus: 200},
		{label: "metrics", method: "GET", path: "/metrics", wantStatus: 200},
		{label: "debug alerts", method: "GET", path: "/debug/alerts", wantStatus: 200},
		{label: "debug traces", method: "GET", path: "/debug/traces", wantStatus: 200},
		{label: "debug trace absent", method: "GET", path: "/debug/traces/deadbeef",
			wantStatus: 404, wantCode: CodeNotFound},
		{label: "debug profiles", method: "GET", path: "/debug/profiles", wantStatus: 200},
		{label: "debug profile bad id", method: "GET", path: "/debug/profiles/abc",
			wantStatus: 400, wantCode: CodeBadRequest},
		{label: "debug profile absent", method: "GET", path: "/debug/profiles/999",
			wantStatus: 404, wantCode: CodeNotFound},
		// No fleet collector configured on this node: the routes exist
		// (not 404-by-absence — wrong methods still draw 405 below) but
		// answer not_found with an explanatory envelope.
		{label: "metrics fleet unconfigured", method: "GET", path: "/metrics/fleet",
			wantStatus: 404, wantCode: CodeNotFound},
		{label: "debug fleet unconfigured", method: "GET", path: "/debug/fleet",
			wantStatus: 404, wantCode: CodeNotFound},
		{label: "unknown path", method: "GET", path: "/nope", wantStatus: 404, wantCode: CodeNotFound},
		{label: "unknown v1 path", method: "POST", path: "/v1/bogus", wantStatus: 404, wantCode: CodeNotFound},

		{label: "mine bad JSON", method: "POST", path: "/v1/rules", body: "{",
			wantStatus: 400, wantCode: CodeBadRequest},
		{label: "mine missing name", method: "POST", path: "/v1/rules",
			body: `{"rows":[[1,2]]}`, wantStatus: 400, wantCode: CodeBadRequest},
		{label: "mine missing rows", method: "POST", path: "/v1/rules",
			body: `{"name":"x"}`, wantStatus: 400, wantCode: CodeBadRequest},
		{label: "list", method: "GET", path: "/v1/rules", wantStatus: 200},

		{label: "get absent", method: "GET", path: "/v1/rules/absent",
			wantStatus: 404, wantCode: CodeNotFound},
		{label: "get head", method: "GET", path: "/v1/rules/m", wantStatus: 200},
		{label: "get pinned", method: "GET", path: "/v1/rules/m?version=1", wantStatus: 200},
		{label: "get unretained pin", method: "GET", path: "/v1/rules/m?version=99",
			wantStatus: 404, wantCode: CodeVersionNotFound},
		{label: "get pin on absent model", method: "GET", path: "/v1/rules/absent?version=1",
			wantStatus: 404, wantCode: CodeNotFound},
		{label: "get malformed pin", method: "GET", path: "/v1/rules/m?version=abc",
			wantStatus: 400, wantCode: CodeBadRequest},
		{label: "put garbage model", method: "PUT", path: "/v1/rules/m", body: "not json",
			wantStatus: 400, wantCode: CodeBadRequest},
		{label: "delete absent", method: "DELETE", path: "/v1/rules/absent",
			wantStatus: 404, wantCode: CodeNotFound},

		{label: "versions", method: "GET", path: "/v1/rules/m/versions", wantStatus: 200},
		{label: "versions absent", method: "GET", path: "/v1/rules/absent/versions",
			wantStatus: 404, wantCode: CodeNotFound},
		{label: "rollback invalid version", method: "POST", path: "/v1/rules/m/rollback",
			body: `{"version":0}`, wantStatus: 400, wantCode: CodeBadRequest},
		{label: "rollback unretained", method: "POST", path: "/v1/rules/m/rollback",
			body: `{"version":99}`, wantStatus: 404, wantCode: CodeVersionNotFound},
		{label: "rollback absent", method: "POST", path: "/v1/rules/absent/rollback",
			body: `{"version":1}`, wantStatus: 404, wantCode: CodeNotFound},

		{label: "fill ok", method: "POST", path: "/v1/rules/m/fill",
			body: `{"record":[3,0],"holes":[1]}`, wantStatus: 200},
		{label: "fill pinned", method: "POST", path: "/v1/rules/m/fill?version=1",
			body: `{"record":[3,0],"holes":[1]}`, wantStatus: 200},
		{label: "fill unretained pin", method: "POST", path: "/v1/rules/m/fill?version=99",
			body: `{"record":[3,0],"holes":[1]}`, wantStatus: 404, wantCode: CodeVersionNotFound},
		{label: "fill bad hole", method: "POST", path: "/v1/rules/m/fill",
			body: `{"record":[3,0],"holes":[9]}`, wantStatus: 400, wantCode: CodeBadRequest},
		{label: "fill wrong width", method: "POST", path: "/v1/rules/m/fill",
			body: `{"record":[3],"holes":[0]}`, wantStatus: 400, wantCode: CodeBadRequest},
		{label: "fill absent model", method: "POST", path: "/v1/rules/absent/fill",
			body: `{"record":[3,0],"holes":[1]}`, wantStatus: 404, wantCode: CodeNotFound},

		{label: "forecast ok", method: "POST", path: "/v1/rules/m/forecast",
			body: `{"given":{"0":3},"target":1}`, wantStatus: 200},
		{label: "forecast target given", method: "POST", path: "/v1/rules/m/forecast",
			body: `{"given":{"0":3},"target":0}`, wantStatus: 400, wantCode: CodeBadRequest},
		{label: "whatif ok", method: "POST", path: "/v1/rules/m/whatif",
			body: `{"given":{"0":3}}`, wantStatus: 200},
		{label: "project ok", method: "POST", path: "/v1/rules/m/project",
			body: `{"rows":[[1,2]],"dims":1}`, wantStatus: 200},
		{label: "project ragged rows", method: "POST", path: "/v1/rules/m/project",
			body: `{"rows":[[1,2],[1]],"dims":1}`, wantStatus: 400, wantCode: CodeBadRequest},
		{label: "outliers ok", method: "POST", path: "/v1/rules/m/outliers",
			body: `{"rows":[[1,2],[1,50]]}`, wantStatus: 200},

		{label: "batch fill unretained pin", method: "POST", path: "/v1/rules/m/batch/fill?version=99",
			body: `[]`, wantStatus: 404, wantCode: CodeVersionNotFound},
		{label: "batch outliers bad sigma", method: "POST", path: "/v1/rules/m/batch/outliers?sigma=-1",
			body: `[]`, wantStatus: 400, wantCode: CodeBadRequest},
		{label: "batch fill absent model", method: "POST", path: "/v1/rules/absent/batch/fill",
			body: `[]`, wantStatus: 404, wantCode: CodeNotFound},

		{label: "model health head", method: "GET", path: "/v1/rules/m/health", wantStatus: 200},
		{label: "model health pinned", method: "GET", path: "/v1/rules/m/health?version=1", wantStatus: 200},
		{label: "model health absent", method: "GET", path: "/v1/rules/absent/health",
			wantStatus: 404, wantCode: CodeNotFound},
		{label: "model health unretained pin", method: "GET", path: "/v1/rules/m/health?version=99",
			wantStatus: 404, wantCode: CodeVersionNotFound},
		{label: "model health malformed pin", method: "GET", path: "/v1/rules/m/health?version=abc",
			wantStatus: 400, wantCode: CodeBadRequest},

		{label: "ingest invalid decay", method: "POST", path: "/v1/rules/m/ingest?decay=2",
			body: "[1,2]\n", wantStatus: 400, wantCode: CodeBadRequest},
		{label: "stream status absent", method: "GET", path: "/v1/rules/m/stream",
			wantStatus: 404, wantCode: CodeNotFound},
		{label: "stream delete absent", method: "DELETE", path: "/v1/rules/m/stream",
			wantStatus: 404, wantCode: CodeNotFound},

		{label: "405 rules", method: "PATCH", path: "/v1/rules",
			wantStatus: 405, wantCode: CodeMethodNotAllowed, wantAllow: "GET, POST"},
		{label: "405 model", method: "PATCH", path: "/v1/rules/m",
			wantStatus: 405, wantCode: CodeMethodNotAllowed, wantAllow: "GET, PUT, DELETE"},
		{label: "405 versions", method: "POST", path: "/v1/rules/m/versions",
			wantStatus: 405, wantCode: CodeMethodNotAllowed, wantAllow: "GET"},
		{label: "405 fill", method: "GET", path: "/v1/rules/m/fill",
			wantStatus: 405, wantCode: CodeMethodNotAllowed, wantAllow: "POST"},
		{label: "405 batch fill", method: "GET", path: "/v1/rules/m/batch/fill",
			wantStatus: 405, wantCode: CodeMethodNotAllowed, wantAllow: "POST"},
		{label: "405 batch forecast", method: "DELETE", path: "/v1/rules/m/batch/forecast",
			wantStatus: 405, wantCode: CodeMethodNotAllowed, wantAllow: "POST"},
		{label: "405 batch outliers", method: "PUT", path: "/v1/rules/m/batch/outliers",
			wantStatus: 405, wantCode: CodeMethodNotAllowed, wantAllow: "POST"},
		{label: "405 ingest", method: "GET", path: "/v1/rules/m/ingest",
			wantStatus: 405, wantCode: CodeMethodNotAllowed, wantAllow: "POST"},
		{label: "405 stream", method: "POST", path: "/v1/rules/m/stream",
			wantStatus: 405, wantCode: CodeMethodNotAllowed, wantAllow: "GET, DELETE"},
		{label: "405 model health", method: "POST", path: "/v1/rules/m/health",
			wantStatus: 405, wantCode: CodeMethodNotAllowed, wantAllow: "GET"},
		// Probes and debug routes live in the same route table, so a
		// wrong method answers 405 + Allow, not a bare 404.
		{label: "405 healthz", method: "POST", path: "/healthz",
			wantStatus: 405, wantCode: CodeMethodNotAllowed, wantAllow: "GET"},
		{label: "405 metrics", method: "POST", path: "/metrics",
			wantStatus: 405, wantCode: CodeMethodNotAllowed, wantAllow: "GET"},
		{label: "405 metrics fleet", method: "POST", path: "/metrics/fleet",
			wantStatus: 405, wantCode: CodeMethodNotAllowed, wantAllow: "GET"},
		{label: "405 debug profiles", method: "DELETE", path: "/debug/profiles",
			wantStatus: 405, wantCode: CodeMethodNotAllowed, wantAllow: "GET"},
		{label: "405 debug fleet", method: "POST", path: "/debug/fleet",
			wantStatus: 405, wantCode: CodeMethodNotAllowed, wantAllow: "GET"},
	}

	for _, tc := range cases {
		resp := doRaw(t, tc.method, ts.URL+tc.path, tc.contentType, tc.body)
		if resp.StatusCode != tc.wantStatus {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Errorf("%s: status %d, want %d (body %s)", tc.label, resp.StatusCode, tc.wantStatus, body)
			continue
		}
		if tc.wantAllow != "" {
			if got := resp.Header.Get("Allow"); got != tc.wantAllow {
				t.Errorf("%s: Allow %q, want %q", tc.label, got, tc.wantAllow)
			}
		}
		if tc.wantCode != "" {
			if got := decodeEnvelope(t, tc.label, resp.Body); got != tc.wantCode {
				t.Errorf("%s: envelope code %q, want %q", tc.label, got, tc.wantCode)
			}
		}
		resp.Body.Close()
	}
}

// TestV1ContractETag pins the ETag contract: head and pinned GETs carry
// version-derived ETags and If-None-Match answers 304.
func TestV1ContractETag(t *testing.T) {
	ts := contractServer(t)

	resp := doRaw(t, "GET", ts.URL+"/v1/rules/m", "", "")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("ETag"); got != `"v2"` {
		t.Fatalf("head ETag %q, want %q", got, `"v2"`)
	}

	resp = doRaw(t, "GET", ts.URL+"/v1/rules/m?version=1", "", "")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("ETag"); got != `"v1"` {
		t.Fatalf("pinned ETag %q, want %q", got, `"v1"`)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/v1/rules/m?version=1", nil)
	req.Header.Set("If-None-Match", `"v1"`)
	got, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, got.Body)
	got.Body.Close()
	if got.StatusCode != http.StatusNotModified {
		t.Fatalf("pinned conditional GET: status %d, want 304", got.StatusCode)
	}
}

// batchLine is a superset decode target for NDJSON response lines.
type batchLine struct {
	Index    int              `json:"index"`
	Filled   []float64        `json:"filled"`
	Value    *float64         `json:"value"`
	Outliers []map[string]any `json:"outliers"`
	Error    *errorInfo       `json:"error"`
}

// readNDJSON decodes every response line, asserting the content type.
func readNDJSON(t *testing.T, resp *http.Response) []batchLine {
	t.Helper()
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != ndjsonContentType {
		t.Fatalf("batch Content-Type %q, want %q", got, ndjsonContentType)
	}
	var lines []batchLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var l batchLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("malformed NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestV1ContractBatchNDJSON drives the NDJSON framing with a malformed
// line mid-batch: status stays 200, the bad row yields an error line in
// its slot, and every other row completes.
func TestV1ContractBatchNDJSON(t *testing.T) {
	ts := contractServer(t)
	body := `{"record":[3,0],"holes":[1]}
not json at all
{"record":[4,0],"holes":[1]}
{"record":[5,0],"holes":[9]}
`
	resp := doRaw(t, "POST", ts.URL+"/v1/rules/m/batch/fill", ndjsonContentType, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d, want 200", resp.StatusCode)
	}
	lines := readNDJSON(t, resp)
	if len(lines) != 4 {
		t.Fatalf("got %d result lines, want 4: %+v", len(lines), lines)
	}
	for i, l := range lines {
		if l.Index != i {
			t.Fatalf("line %d carries index %d: ordering broken", i, l.Index)
		}
	}
	if lines[0].Error != nil || len(lines[0].Filled) != 2 {
		t.Errorf("line 0: want filled record, got %+v", lines[0])
	}
	if lines[1].Error == nil || lines[1].Error.Code != CodeBadRequest {
		t.Errorf("line 1: want bad_request error for malformed JSON, got %+v", lines[1])
	}
	if lines[2].Error != nil {
		t.Errorf("line 2: row after malformed line failed: %+v", lines[2].Error)
	}
	if lines[3].Error == nil || lines[3].Error.Code != CodeBadRequest {
		t.Errorf("line 3: want bad_request error for bad hole, got %+v", lines[3])
	}
	// The recovered fill must agree with the ratio model: y = 2x.
	if got := lines[2].Filled[1]; got < 7.9 || got > 8.1 {
		t.Errorf("line 2 filled %g, want ~8", got)
	}
}

// TestV1ContractBatchArray drives the JSON-array framing across all
// three batch operations.
func TestV1ContractBatchArray(t *testing.T) {
	ts := contractServer(t)

	resp := doRaw(t, "POST", ts.URL+"/v1/rules/m/batch/fill", "application/json",
		`[{"record":[3,0],"holes":[1]},{"record":[4,0],"holes":[1]}]`)
	lines := readNDJSON(t, resp)
	if len(lines) != 2 || lines[0].Error != nil || lines[1].Error != nil {
		t.Fatalf("array batch fill: %+v", lines)
	}

	resp = doRaw(t, "POST", ts.URL+"/v1/rules/m/batch/forecast", "application/json",
		`[{"given":{"0":3},"target":1},{"given":{"1":4},"target":0}]`)
	lines = readNDJSON(t, resp)
	if len(lines) != 2 || lines[0].Value == nil || lines[1].Value == nil {
		t.Fatalf("array batch forecast: %+v", lines)
	}
	if v := *lines[0].Value; v < 5.9 || v > 6.1 {
		t.Errorf("forecast(x=3) = %g, want ~6", v)
	}

	resp = doRaw(t, "POST", ts.URL+"/v1/rules/m/batch/outliers", "application/json",
		`[{"record":[1,2]},{"record":[1,50]}]`)
	lines = readNDJSON(t, resp)
	if len(lines) != 2 {
		t.Fatalf("array batch outliers: %+v", lines)
	}
	for i, l := range lines {
		if l.Error != nil {
			t.Errorf("outlier row %d failed: %+v", i, l.Error)
		}
		if l.Outliers == nil {
			t.Errorf("outlier row %d: outliers field missing (must be [] not null)", i)
		}
	}

	// A terminally malformed array emits one error line and stops.
	resp = doRaw(t, "POST", ts.URL+"/v1/rules/m/batch/fill", "application/json",
		`{"not":"an array"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("malformed array batch status %d, want 200 (framing fails per-row)", resp.StatusCode)
	}
	lines = readNDJSON(t, resp)
	if len(lines) != 1 || lines[0].Error == nil || lines[0].Error.Code != CodeBadRequest {
		t.Fatalf("malformed array framing: %+v", lines)
	}
}

// TestV1ContractBatchStreams proves results are flushed before the
// request body ends: a raw HTTP/1.1 client sends one chunked row,
// reads its result line while the request is still open, then sends
// the next row. (net/http's client buffers chunked request bodies, so
// this full-duplex exchange needs a hand-rolled socket.)
func TestV1ContractBatchStreams(t *testing.T) {
	ts := contractServer(t)
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	fmt.Fprintf(conn, "POST /v1/rules/m/batch/fill HTTP/1.1\r\n"+
		"Host: contract-test\r\nContent-Type: %s\r\nTransfer-Encoding: chunked\r\n\r\n",
		ndjsonContentType)
	chunk := func(s string) {
		t.Helper()
		if _, err := fmt.Fprintf(conn, "%x\r\n%s\r\n", len(s), s); err != nil {
			t.Fatal(err)
		}
	}

	chunk(`{"record":[3,0],"holes":[1]}` + "\n")
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		t.Fatalf("reading response headers mid-request: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	lines := bufio.NewScanner(resp.Body)
	if !lines.Scan() {
		t.Fatalf("no result line streamed while request body still open: %v", lines.Err())
	}
	var first batchLine
	if err := json.Unmarshal(lines.Bytes(), &first); err != nil {
		t.Fatalf("first streamed line %q: %v", lines.Text(), err)
	}
	if first.Index != 0 || first.Error != nil || len(first.Filled) != 2 {
		t.Fatalf("first streamed line: %+v", first)
	}

	// Second row only goes out after the first result arrived: the
	// exchange is genuinely incremental.
	chunk(`{"record":[4,0],"holes":[1]}` + "\n")
	fmt.Fprint(conn, "0\r\n\r\n") // terminal chunk: request body done
	if !lines.Scan() {
		t.Fatalf("second line missing: %v", lines.Err())
	}
	var second batchLine
	if err := json.Unmarshal(lines.Bytes(), &second); err != nil {
		t.Fatalf("second streamed line %q: %v", lines.Text(), err)
	}
	if second.Index != 1 || second.Error != nil {
		t.Fatalf("second streamed line: %+v", second)
	}
	if lines.Scan() {
		t.Fatalf("unexpected extra line %q", lines.Text())
	}
}
