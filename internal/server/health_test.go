package server

// Probe and model-health surface tests: the liveness/readiness split,
// the wedged-store 503, and the ETag contract on the per-model health
// endpoint. The happy-path status codes are covered by the contract
// walk in contract_test.go; these tests pin the bodies.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"ratiorules/internal/online"
	"ratiorules/internal/store"
)

// TestReadyzWedgedStore: a wedged store turns /readyz into a 503 with
// the v1 error envelope, while /healthz keeps answering 200 — a wedged
// store must drain traffic, not restart the process.
func TestReadyzWedgedStore(t *testing.T) {
	reg := NewRegistry()
	mgr, err := online.NewManager(reg, online.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	s := &service{
		reg:    reg,
		online: mgr,
		failed: func() error { return store.ErrFailed },
	}

	rec := httptest.NewRecorder()
	s.readyz(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz on wedged store = %d, want 503", rec.Code)
	}
	var env errorBody
	if err := json.NewDecoder(rec.Body).Decode(&env); err != nil {
		t.Fatalf("503 body is not the error envelope: %v", err)
	}
	if env.Error.Code != CodeStoreFailed {
		t.Fatalf("envelope code = %q, want %q", env.Error.Code, CodeStoreFailed)
	}

	// Liveness is unaffected by the wedge.
	rec = httptest.NewRecorder()
	s.health(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz on wedged store = %d, want 200", rec.Code)
	}
}

// TestModelHealthETag: the health endpoint mirrors the model GET's
// version pinning and If-None-Match handling.
func TestModelHealthETag(t *testing.T) {
	ts := contractServer(t) // "m" at version 2 with version 1 retained

	resp := doRaw(t, "GET", ts.URL+"/v1/rules/m/health", "", "")
	var head struct {
		Name           string  `json:"name"`
		Status         string  `json:"status"`
		Version        int     `json:"version"`
		ServingVersion int     `json:"serving_version"`
		Alerts         []any   `json:"alerts"`
		Samples        int     `json:"samples"`
		CurrentGE      float64 `json:"current_ge"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&head); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("ETag"); got != `"v2"` {
		t.Fatalf("head health ETag %q, want %q", got, `"v2"`)
	}
	if head.Name != "m" || head.Status != "ok" || head.Version != 2 || head.ServingVersion != 2 {
		t.Fatalf("head health = %+v", head)
	}
	if head.Alerts == nil {
		t.Fatal("alerts must serialize as [], not null")
	}

	resp = doRaw(t, "GET", ts.URL+"/v1/rules/m/health?version=1", "", "")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("ETag"); got != `"v1"` {
		t.Fatalf("pinned health ETag %q, want %q", got, `"v1"`)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/v1/rules/m/health", nil)
	req.Header.Set("If-None-Match", `"v2"`)
	got, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, got.Body)
	got.Body.Close()
	if got.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional health GET: status %d, want 304", got.StatusCode)
	}
}

// TestDebugAlertsShape: /debug/alerts always answers with rules and
// states arrays (never null) plus the firing count.
func TestDebugAlertsShape(t *testing.T) {
	ts := newTestServer(t)
	resp := doRaw(t, "GET", ts.URL+"/debug/alerts", "", "")
	defer resp.Body.Close()
	var out struct {
		Firing int               `json:"firing"`
		Rules  []json.RawMessage `json:"rules"`
		States []json.RawMessage `json:"states"`
	}
	body, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("debug/alerts body %s: %v", body, err)
	}
	if out.Firing != 0 {
		t.Fatalf("fresh server firing = %d", out.Firing)
	}
	// The default engine ships rules; states start empty but present.
	if len(out.Rules) == 0 {
		t.Fatalf("default rules missing: %s", body)
	}
	if out.States == nil {
		t.Fatalf("states must serialize as [], not null: %s", body)
	}
}
