package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"ratiorules/internal/obs"
	"ratiorules/internal/obs/trace"
)

// newTracedServer starts a test server over an isolated metrics
// registry, a JSON logger captured into buf, and a fresh tracer whose
// flight recorder the test can read directly.
func newTracedServer(t *testing.T) (*httptest.Server, *trace.Tracer, *lockedBuffer) {
	t.Helper()
	buf := &lockedBuffer{}
	logger := obs.NewLogger(buf, slog.LevelInfo, true)
	tr := trace.New(trace.Config{Logger: logger})
	ts := httptest.NewServer(Handler(NewRegistry(),
		WithObs(obs.NewRegistry()), WithLogger(logger), WithTracer(tr)))
	t.Cleanup(ts.Close)
	return ts, tr, buf
}

// lockedBuffer is a goroutine-safe bytes.Buffer: the server logs from
// handler goroutines while tests read.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var traceparentRe = regexp.MustCompile(`^00-[0-9a-f]{32}-[0-9a-f]{16}-01$`)

// TestTraceResponseHeaders checks that a v1 request answers with a
// well-formed traceparent and an X-Request-ID, and that the trace it
// names is retrievable from /debug/traces/{id}.
func TestTraceResponseHeaders(t *testing.T) {
	ts, tr, _ := newTracedServer(t)
	resp := do(t, "GET", ts.URL+"/v1/rules", "")
	tp := resp.Header.Get("Traceparent")
	if !traceparentRe.MatchString(tp) {
		t.Fatalf("traceparent = %q, want 00-<32hex>-<16hex>-01", tp)
	}
	traceID := strings.Split(tp, "-")[1]
	if got := resp.Header.Get(RequestIDHeader); got != traceID {
		t.Errorf("X-Request-ID = %q, want trace ID %q (none sent by client)", got, traceID)
	}
	if _, ok := tr.Recorder().Get(traceID); !ok {
		t.Errorf("trace %s not in the flight recorder", traceID)
	}
}

// TestTraceContinuesRemoteParent checks W3C propagation: a client
// traceparent pins the trace ID, and the client's X-Request-ID is
// echoed back verbatim.
func TestTraceContinuesRemoteParent(t *testing.T) {
	ts, tr, _ := newTracedServer(t)
	const remoteTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest("GET", ts.URL+"/v1/rules", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+remoteTrace+"-00f067aa0ba902b7-01")
	req.Header.Set(RequestIDHeader, "client-req-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	tp := resp.Header.Get("Traceparent")
	if !strings.Contains(tp, remoteTrace) {
		t.Errorf("traceparent = %q does not continue remote trace %s", tp, remoteTrace)
	}
	if got := resp.Header.Get(RequestIDHeader); got != "client-req-42" {
		t.Errorf("X-Request-ID = %q, want the client's own id echoed", got)
	}
	td, ok := tr.Recorder().Get(remoteTrace)
	if !ok {
		t.Fatal("continued trace not recorded")
	}
	// The root span must parent to the remote span from the header.
	for _, sp := range td.Spans {
		if sp.Name == "GET /v1/rules" && sp.ParentID != "00f067aa0ba902b7" {
			t.Errorf("root parent = %q, want the remote span id", sp.ParentID)
		}
	}
}

// TestProbeRoutesUntraced checks the exemption: /healthz and /metrics
// answer without trace headers and leave nothing in the recorder.
func TestProbeRoutesUntraced(t *testing.T) {
	ts, tr, _ := newTracedServer(t)
	for _, path := range []string{"/healthz", "/metrics", "/debug/traces"} {
		resp := do(t, "GET", ts.URL+path, "")
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s status = %d", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Traceparent"); got != "" {
			t.Errorf("GET %s carries traceparent %q, want none", path, got)
		}
		if got := resp.Header.Get(RequestIDHeader); got != "" {
			t.Errorf("GET %s carries X-Request-ID %q, want none", path, got)
		}
	}
	if n := tr.Recorder().Len(); n != 0 {
		t.Errorf("probe requests recorded %d traces, want 0", n)
	}
}

// TestRequestLogCorrelation is the log-correlation contract: the
// request log line of a traced route must carry the same trace_id the
// response traceparent advertised.
func TestRequestLogCorrelation(t *testing.T) {
	ts, _, buf := newTracedServer(t)
	resp := do(t, "GET", ts.URL+"/v1/rules", "")
	traceID := strings.Split(resp.Header.Get("Traceparent"), "-")[1]

	var found bool
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var line struct {
			Msg     string `json:"msg"`
			Route   string `json:"route"`
			TraceID string `json:"trace_id"`
			SpanID  string `json:"span_id"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("log line not JSON: %q", sc.Text())
		}
		if line.Msg == "request" && line.Route == "/v1/rules" {
			found = true
			if line.TraceID != traceID {
				t.Errorf("log trace_id = %q, want %q", line.TraceID, traceID)
			}
			if line.SpanID == "" {
				t.Errorf("log line missing span_id: %q", sc.Text())
			}
		}
	}
	if !found {
		t.Fatalf("no request log line for /v1/rules at info level in:\n%s", buf.String())
	}
}

// TestBatchTraceTree is the end-to-end acceptance flow: mine a model,
// stream a batch fill, then fetch the trace by the X-Request-ID the
// response carried and assert the span tree nests middleware →
// batch.row → fill.cache with non-zero durations.
func TestBatchTraceTree(t *testing.T) {
	ts, _, _ := newTracedServer(t)
	mine := do(t, "POST", ts.URL+"/v1/rules",
		`{"name":"sales","rows":[[1,2],[2,4.1],[3,5.9],[4,8.2],[5,9.8]]}`)
	if mine.StatusCode != 201 {
		t.Fatalf("mine status = %d", mine.StatusCode)
	}
	body := `[{"record":[4,0],"holes":[1]},{"record":[0,6],"holes":[0]},{"record":[2,0],"holes":[1]}]`
	resp := do(t, "POST", ts.URL+"/v1/rules/sales/batch/fill", body)
	if resp.StatusCode != 200 {
		t.Fatalf("batch fill status = %d", resp.StatusCode)
	}
	reqID := resp.Header.Get(RequestIDHeader)
	if reqID == "" {
		t.Fatal("batch response missing X-Request-ID")
	}

	var tree traceResponse
	if got := doJSON(t, "GET", ts.URL+"/debug/traces/"+reqID, nil, &tree); got != 200 {
		t.Fatalf("debug trace status = %d", got)
	}
	if tree.TraceID != reqID || len(tree.Tree) != 1 {
		t.Fatalf("trace = %+v, want one root", tree)
	}
	root := tree.Tree[0]
	if root.Name != "POST /v1/rules/{name}/batch/fill" {
		t.Fatalf("root span = %q", root.Name)
	}
	var rows, caches int
	for _, row := range root.Children {
		if row.Name != "batch.row" {
			continue
		}
		rows++
		if row.DurationMS <= 0 {
			t.Errorf("batch.row %s has zero duration", row.SpanID)
		}
		for _, c := range row.Children {
			if c.Name == "fill.cache" {
				caches++
			}
		}
	}
	if rows != 3 || caches != 3 {
		t.Fatalf("tree has %d batch.row / %d fill.cache spans, want 3 each", rows, caches)
	}
}

// TestDebugTracesListing exercises the flight-recorder listing: the
// ?sort=duration ordering, the ?n cap, parameter validation, and the
// 404 envelope for unknown trace IDs.
func TestDebugTracesListing(t *testing.T) {
	ts, _, _ := newTracedServer(t)
	for i := 0; i < 5; i++ {
		do(t, "GET", ts.URL+"/v1/rules", "")
	}
	var list tracesResponse
	if got := doJSON(t, "GET", ts.URL+"/debug/traces?sort=duration&n=3", nil, &list); got != 200 {
		t.Fatalf("listing status = %d", got)
	}
	if list.Retained != 5 || list.Total != 5 || len(list.Traces) != 3 {
		t.Fatalf("listing = retained %d total %d traces %d, want 5/5/3",
			list.Retained, list.Total, len(list.Traces))
	}
	for i := 1; i < len(list.Traces); i++ {
		if list.Traces[i].Duration > list.Traces[i-1].Duration {
			t.Errorf("sort=duration out of order: %v then %v",
				list.Traces[i-1].Duration, list.Traces[i].Duration)
		}
	}
	if got := doJSON(t, "GET", ts.URL+"/debug/traces?sort=zzz", nil, nil); got != 400 {
		t.Errorf("bad sort status = %d", got)
	}
	if got := doJSON(t, "GET", ts.URL+"/debug/traces?n=-1", nil, nil); got != 400 {
		t.Errorf("bad n status = %d", got)
	}
	var envelope errorBody
	if got := doJSON(t, "GET", ts.URL+"/debug/traces/"+strings.Repeat("ab", 16), nil, &envelope); got != 404 {
		t.Errorf("unknown trace status = %d", got)
	}
	if envelope.Error.Code != CodeNotFound {
		t.Errorf("unknown trace code = %q, want %q", envelope.Error.Code, CodeNotFound)
	}
}

// TestErrorEnvelopeCarriesTraceHeaders checks that error responses on
// traced routes still carry the correlation headers (set before the
// handler runs).
func TestErrorEnvelopeCarriesTraceHeaders(t *testing.T) {
	ts, _, _ := newTracedServer(t)
	resp := do(t, "GET", ts.URL+"/v1/rules/nope", "")
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !traceparentRe.MatchString(resp.Header.Get("Traceparent")) {
		t.Errorf("404 missing traceparent header")
	}
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Errorf("404 missing X-Request-ID header")
	}
}

// TestRuntimeGaugesOnMetrics checks the runtime collector satellites:
// the Go runtime gauges must appear on this handler's /metrics.
func TestRuntimeGaugesOnMetrics(t *testing.T) {
	ts, _, _ := newTracedServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"rr_go_goroutines", "rr_go_heap_bytes",
		"rr_go_gc_pause_seconds", "rr_process_uptime_seconds",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestSlowTraceLog checks the always-on slow-trace line: with a zero
// threshold every trace is "slow", so one request must log one line.
func TestSlowTraceLog(t *testing.T) {
	buf := &lockedBuffer{}
	logger := obs.NewLogger(buf, slog.LevelInfo, true)
	tr := trace.New(trace.Config{Slow: 1, Logger: logger}) // 1ns: everything is slow
	ts := httptest.NewServer(Handler(NewRegistry(),
		WithObs(obs.NewRegistry()), WithLogger(logger), WithTracer(tr)))
	t.Cleanup(ts.Close)

	resp := do(t, "GET", ts.URL+"/v1/rules", "")
	traceID := strings.Split(resp.Header.Get("Traceparent"), "-")[1]
	logs := buf.String()
	if !strings.Contains(logs, "slow trace") || !strings.Contains(logs, traceID) {
		t.Fatalf("no slow-trace line naming %s in:\n%s", traceID, logs)
	}
}
