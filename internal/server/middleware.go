package server

import (
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"ratiorules/internal/admission"
	"ratiorules/internal/cluster"
	"ratiorules/internal/obs"
	"ratiorules/internal/obs/fleet"
	"ratiorules/internal/obs/profile"
	"ratiorules/internal/obs/trace"
	"ratiorules/internal/online"
	"ratiorules/internal/replica"
)

// handlerConfig carries the observability and limit wiring for Handler.
type handlerConfig struct {
	metrics       *obs.Registry
	logger        *slog.Logger
	maxBodyBytes  int64
	batchWorkers  int
	tracer        *trace.Tracer
	online        *online.Manager
	cluster       *cluster.Coordinator
	fleet         *fleet.Collector
	profiles      *profile.Ring
	follower      *replica.Follower
	leaderURL     string
	maxReplicaLag time.Duration
	admission     *admission.Controller
}

// HandlerOption customizes Handler.
type HandlerOption func(*handlerConfig)

// WithObs records HTTP and miner metrics into r instead of the
// process-wide obs.Default() registry (tests use this for isolation;
// note the miner's own metrics always go to the default registry).
func WithObs(r *obs.Registry) HandlerOption {
	return func(c *handlerConfig) { c.metrics = r }
}

// WithLogger routes request and service logs to l. Without it the
// handler is silent.
func WithLogger(l *slog.Logger) HandlerOption {
	return func(c *handlerConfig) { c.logger = l }
}

// WithMaxBodyBytes caps request bodies at n bytes (default
// DefaultMaxBodyBytes); oversized bodies answer 413 with the uniform
// error envelope. n <= 0 disables the cap. The streaming batch
// endpoints are exempt (they bound memory per row, not per body).
func WithMaxBodyBytes(n int64) HandlerOption {
	return func(c *handlerConfig) { c.maxBodyBytes = n }
}

// WithBatchWorkers bounds the worker pool each batch request runs on
// (rrserve -batch-workers). n <= 0 selects core.DefaultBatchWorkers().
func WithBatchWorkers(n int) HandlerOption {
	return func(c *handlerConfig) { c.batchWorkers = n }
}

// WithTracer supplies the request tracer (rrserve wires -trace-buffer
// and -trace-slow through it). Without it Handler builds a default
// tracer, so /debug/traces always works; tracing cannot be disabled,
// only bounded.
func WithTracer(t *trace.Tracer) HandlerOption {
	return func(c *handlerConfig) { c.tracer = t }
}

// WithOnline supplies the live-ingest manager serving the ingest and
// stream routes (rrserve wires -republish-rows, -ge-slack and the
// checkpoint directory through it and owns its Start/Close lifecycle).
// Without it Handler builds a default manager — no checkpointing, no
// background republisher, row-count triggers republish synchronously —
// so the routes work out of the box.
func WithOnline(m *online.Manager) HandlerOption {
	return func(c *handlerConfig) { c.online = m }
}

// WithCluster puts the server in coordinator mode: POST ingest fans
// rows out to the cluster's worker nodes instead of folding them into
// the local accumulator, /readyz reports cluster membership and
// degradation, and the /v1/cluster/* admin routes (status, join, force
// republish) are mounted. The coordinator must share its online.Manager
// with WithOnline — merged shards republish through it, so promotion
// gating, versioning and alerts behave exactly as on a single node. The
// caller owns the coordinator's Start/Close lifecycle (rrserve wires
// -cluster-workers and friends through it).
func WithCluster(c *cluster.Coordinator) HandlerOption {
	return func(cfg *handlerConfig) { cfg.cluster = c }
}

// WithFleet mounts the federated fleet surface over c: GET
// /metrics/fleet serves every member's last scrape as one
// node="..."-labeled exposition and GET /debug/fleet serves the JSON
// rollup. The caller owns the collector's Run lifecycle (rrserve wires
// -fleet-members and -fleet-every through it). Without this option both
// routes answer 404 not_found.
func WithFleet(c *fleet.Collector) HandlerOption {
	return func(cfg *handlerConfig) { cfg.fleet = c }
}

// WithProfiles serves the continuous-profiling ring at GET
// /debug/profiles[/{id}]. The caller owns the ring's Run lifecycle
// (rrserve wires -profile-every and -profile-cpu through it). Without
// this option Handler builds a passive ring, so the routes always
// answer — just with an empty listing.
func WithProfiles(r *profile.Ring) HandlerOption {
	return func(cfg *handlerConfig) { cfg.profiles = r }
}

// WithAdmission puts the API surface behind the given admission
// controller: bearer-token tenant auth, per-tenant rate limits and
// concurrency quotas, tenant-scoped model namespaces, and global load
// shedding (see internal/admission and docs/api.md). The caller owns
// the controller's Run lifecycle (rrserve wires -tenants-file, SIGHUP
// reload and the -admission-* flags through it). Without this option
// every request runs unauthenticated against the root namespace on the
// exact pre-admission code path. The replication and cluster-internal
// routes stay outside admission either way — isolate them at the
// network layer (see docs/runbook.md).
func WithAdmission(c *admission.Controller) HandlerOption {
	return func(cfg *handlerConfig) { cfg.admission = c }
}

// WithFollower puts the server in read-only follower mode: every GET
// and inference route serves from the local replica (bodies and ETags
// byte-identical to the leader at the same seq), mutating routes answer
// 403 read_only pointing clients at leaderURL, and /readyz reports the
// follower's replication lag — degraded while behind, 503
// replica_lagging (with Retry-After) once staleness exceeds maxLag
// (DefaultMaxReplicaLag if <= 0). The caller owns the follower's Run
// lifecycle (rrserve wires -follow and -max-replica-lag through this).
func WithFollower(f *replica.Follower, leaderURL string, maxLag time.Duration) HandlerOption {
	return func(cfg *handlerConfig) {
		cfg.follower = f
		cfg.leaderURL = leaderURL
		cfg.maxReplicaLag = maxLag
	}
}

// httpMetrics is the per-handler request accounting: counts by route,
// method and status class, per-route latency histograms, and an
// in-flight gauge.
type httpMetrics struct {
	requests *obs.CounterVec   // route, method, status
	latency  *obs.HistogramVec // route
	inflight *obs.Gauge
	logger   *slog.Logger
	tracer   *trace.Tracer
}

func newHTTPMetrics(reg *obs.Registry, logger *slog.Logger, tracer *trace.Tracer) *httpMetrics {
	return &httpMetrics{
		requests: reg.CounterVec("rr_http_requests_total",
			"HTTP requests by route pattern, method and status class.",
			"route", "method", "status"),
		latency: reg.HistogramVec("rr_http_request_seconds",
			"HTTP request service time by route pattern.", obs.DefBuckets, "route"),
		inflight: reg.Gauge("rr_http_in_flight_requests",
			"HTTP requests currently being served."),
		logger: logger,
		tracer: tracer,
	}
}

// RequestIDHeader is echoed on every traced (v1) response: the client's
// own X-Request-ID when it sent one, otherwise the trace ID — either
// way a value the client can quote in a bug report and the operator can
// look up at /debug/traces/{id}.
const RequestIDHeader = "X-Request-ID"

// statusWriter records the status code and body size a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// Flush forwards to the underlying writer so the streaming batch
// endpoints can push each NDJSON line out as it is produced.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer to http.ResponseController, which
// the batch endpoints use to enable full-duplex streaming.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps h with request accounting under the given route
// label (the registered pattern path, keeping label cardinality fixed
// no matter what paths clients send). The probe and debug routes use
// this untraced form; traffic routes go through instrumentTraced.
func (m *httpMetrics) instrument(route string, h http.Handler) http.Handler {
	return m.observe(route, h, false)
}

// instrumentTraced is instrument plus a root trace span per request:
// an incoming W3C traceparent is continued (malformed ones start a
// fresh trace), the response echoes traceparent and X-Request-ID
// before the handler runs, and the span lands in the flight recorder
// with status/bytes attrs when the request finishes. The request log
// line below logs with the span's context, so the obs log handler
// stamps trace_id/span_id onto it.
func (m *httpMetrics) instrumentTraced(route string, h http.Handler) http.Handler {
	return m.observe(route, h, true)
}

func (m *httpMetrics) observe(route string, h http.Handler, traced bool) http.Handler {
	hist := m.latency.With(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.inflight.Inc()
		defer m.inflight.Dec()
		sw := &statusWriter{ResponseWriter: w}
		var sp *trace.Span
		if traced && m.tracer != nil {
			remote, _ := trace.ParseTraceparent(r.Header.Get(trace.TraceparentHeader))
			ctx, span := m.tracer.StartRoot(r.Context(), r.Method+" "+route, remote)
			sp = span
			r = r.WithContext(ctx)
			// Headers must land before the handler's first write; they
			// survive onto every response shape — JSON, NDJSON stream,
			// error envelope.
			sw.Header().Set(trace.TraceparentHeader, trace.Traceparent(span.TraceID(), span.SpanID()))
			reqID := r.Header.Get(RequestIDHeader)
			if reqID == "" {
				reqID = span.TraceID()
			}
			sw.Header().Set(RequestIDHeader, reqID)
		}
		timer := obs.NewTimer(hist)
		h.ServeHTTP(sw, r)
		elapsed := timer.ObserveDuration()
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		m.requests.With(route, methodLabel(r.Method), statusClass(sw.status)).Inc()
		// Traced (v1) requests log at info so the correlation line is
		// visible at the default level; probe/debug routes stay at debug
		// to keep scrapes out of the logs.
		level, msg := slog.LevelDebug, "request"
		if traced {
			level = slog.LevelInfo
		}
		switch {
		case sw.status >= 500:
			level, msg = slog.LevelError, "request failed"
		case sw.status >= 400:
			level, msg = slog.LevelWarn, "request rejected"
		}
		m.logger.Log(r.Context(), level, msg,
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"status", sw.status,
			"bytes", sw.bytes,
			"duration", elapsed,
		)
		if sp != nil {
			sp.SetAttr("status", sw.status)
			sp.SetAttr("bytes", sw.bytes)
			sp.End()
		}
	})
}

// statusClass buckets a status code into 1xx..5xx.
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}

// methodLabel clamps the method label to the standard set so clients
// cannot grow metric cardinality with invented methods.
func methodLabel(m string) string {
	switch m {
	case http.MethodGet, http.MethodHead, http.MethodPost, http.MethodPut,
		http.MethodPatch, http.MethodDelete, http.MethodOptions:
		return m
	}
	return "OTHER"
}

// methodNotAllowed answers wrong-method hits on a known path with 405,
// the Allow header, and the JSON error envelope (the instrument
// wrapper logs it at warn).
func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeErr(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			fmt.Errorf("method %s not allowed on %s (allow: %s)", r.Method, r.URL.Path, allow))
	}
}
