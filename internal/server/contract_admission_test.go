package server

// Admission contract: with WithAdmission configured, every protected
// route — derived from the same v1Routes table the mux mounts —
// answers 401 unauthorized (with a WWW-Authenticate challenge) to
// missing or unknown tokens and 403 forbidden to disabled tenants;
// non-stream routes answer 429 rate_limited with a Retry-After once a
// tenant's request bucket drains; streaming routes shed mid-stream
// with an error line in the row's slot and then terminate; and tenants
// cannot see — or 404-probe — each other's models.

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ratiorules/internal/admission"
	"ratiorules/internal/obs"
	"ratiorules/internal/online"
)

// contractTenants gives acme and globex room to work, starves
// "limited" (burst-1 requests, burst-2 row buckets, 1ms shed wait, a
// refill rate that never recovers within a test), and disables
// "blocked".
const contractTenants = `{
  "tenants": [
    {"id": "acme", "token": "tok-acme"},
    {"id": "globex", "token": "tok-globex"},
    {"id": "limited", "token": "tok-limited",
     "limits": {"requests_per_second": 0.001, "request_burst": 1,
                "rows_per_second": 0.001, "row_burst": 2,
                "batch_rows_per_second": 0.001, "batch_row_burst": 2,
                "max_wait_ms": 1}},
    {"id": "blocked", "token": "tok-blocked", "disabled": true}
  ]
}`

// admissionServer builds a full server (online manager included, so
// the streaming routes work) behind an admission controller loaded
// from contractTenants.
func admissionServer(t *testing.T) *httptest.Server {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(contractTenants), 0o644); err != nil {
		t.Fatal(err)
	}
	metrics := obs.NewRegistry()
	ctrl, err := admission.New(admission.Config{TenantsFile: path, Metrics: metrics})
	if err != nil {
		t.Fatalf("admission.New: %v", err)
	}
	reg := NewRegistry()
	mgr, err := online.NewManager(reg, online.Config{RepublishRows: 1 << 30, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mgr.Close() })
	ts := httptest.NewServer(Handler(reg,
		WithObs(metrics), WithOnline(mgr), WithAdmission(ctrl)))
	t.Cleanup(ts.Close)
	return ts
}

// authRaw is doRaw with a bearer token. Bodies are sent as JSON; the
// streaming tests override the content type themselves.
func authRaw(t *testing.T, method, url, token, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// authJSON performs a JSON request with a bearer token, discarding the
// body and returning the status.
func authStatus(t *testing.T, method, url, token, body string) int {
	t.Helper()
	resp := authRaw(t, method, url, token, body)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// mineAs mines a model under a tenant's token.
func mineAs(t *testing.T, ts *httptest.Server, token, name, rows string) {
	t.Helper()
	resp := authRaw(t, "POST", ts.URL+"/v1/rules", token,
		`{"name":"`+name+`","rows":`+rows+`}`)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("mine %s as %s = %d: %s", name, token, resp.StatusCode, body)
	}
}

// protectedPaths derives (method, path) pairs for every protected
// route from the route table, with {name} filled in — the same table
// the mux mounts, so a new route cannot dodge these assertions.
func protectedPaths(name string) [][2]string {
	var out [][2]string
	for _, rt := range v1Routes {
		if !rt.protected {
			continue
		}
		out = append(out, [2]string{rt.method, strings.ReplaceAll(rt.path, "{name}", name)})
	}
	return out
}

// TestV1ContractAdmissionAuth walks every protected route with no
// token, an unknown token, and a disabled tenant's token.
func TestV1ContractAdmissionAuth(t *testing.T) {
	ts := admissionServer(t)
	routes := protectedPaths("m")
	if len(routes) < 19 {
		t.Fatalf("route table lists %d protected routes, expected the whole /v1/rules surface", len(routes))
	}
	for _, mp := range routes {
		method, path := mp[0], mp[1]

		resp := authRaw(t, method, ts.URL+path, "", "")
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s %s anonymous: status %d, want 401", method, path, resp.StatusCode)
		}
		if got := resp.Header.Get("WWW-Authenticate"); !strings.Contains(got, "Bearer") {
			t.Errorf("%s %s: WWW-Authenticate %q, want a Bearer challenge", method, path, got)
		}
		if code := decodeEnvelope(t, method+" "+path, resp.Body); code != CodeUnauthorized {
			t.Errorf("%s %s anonymous: code %q, want %q", method, path, code, CodeUnauthorized)
		}
		resp.Body.Close()

		if got := authStatus(t, method, ts.URL+path, "tok-unknown", ""); got != http.StatusUnauthorized {
			t.Errorf("%s %s unknown token: status %d, want 401", method, path, got)
		}

		resp = authRaw(t, method, ts.URL+path, "tok-blocked", "")
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("%s %s disabled tenant: status %d, want 403", method, path, resp.StatusCode)
		} else if code := decodeEnvelope(t, method+" "+path, resp.Body); code != CodeForbidden {
			t.Errorf("%s %s disabled tenant: code %q, want %q", method, path, code, CodeForbidden)
		}
		resp.Body.Close()
	}

	// Probes, metrics and debug stay tokenless.
	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/debug/admission"} {
		if got := authStatus(t, "GET", ts.URL+path, "", ""); got != 200 {
			t.Errorf("GET %s without token = %d, want 200", path, got)
		}
	}
}

// TestV1ContractAdmissionRateLimit drains the "limited" tenant's
// one-request bucket, then requires 429 rate_limited + Retry-After on
// every protected non-stream route. Streaming routes are admitted
// request-free (their rows are metered instead — see the shed tests).
func TestV1ContractAdmissionRateLimit(t *testing.T) {
	ts := admissionServer(t)
	// Warm-up drains the single token (list answers 200 regardless of
	// stored models).
	if got := authStatus(t, "GET", ts.URL+"/v1/rules", "tok-limited", ""); got != 200 {
		t.Fatalf("warm-up list = %d, want 200", got)
	}
	for _, rt := range v1Routes {
		if !rt.protected || rt.stream {
			continue
		}
		path := strings.ReplaceAll(rt.path, "{name}", "m")
		resp := authRaw(t, rt.method, ts.URL+path, "tok-limited", "")
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("%s %s: status %d, want 429", rt.method, path, resp.StatusCode)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s %s: 429 without Retry-After", rt.method, path)
		}
		if code := decodeEnvelope(t, rt.method+" "+path, resp.Body); code != CodeRateLimited {
			t.Errorf("%s %s: code %q, want %q", rt.method, path, code, CodeRateLimited)
		}
		resp.Body.Close()
	}
}

// TestV1ContractAdmissionIsolation pins cross-tenant invisibility:
// another tenant's model answers plain 404 not_found everywhere (never
// 403 — existence is not leaked), same-named models coexist, and list
// shows each tenant only its own, unprefixed.
func TestV1ContractAdmissionIsolation(t *testing.T) {
	ts := admissionServer(t)
	mineAs(t, ts, "tok-acme", "m", `[[1,2],[2,4],[3,6],[4,8],[5,10]]`)

	probes := []struct {
		method, path, body string
	}{
		{"GET", "/v1/rules/m", ""},
		{"GET", "/v1/rules/m/versions", ""},
		{"GET", "/v1/rules/m/health", ""},
		{"GET", "/v1/rules/m/stream", ""},
		{"DELETE", "/v1/rules/m", ""},
		{"DELETE", "/v1/rules/m/stream", ""},
		{"POST", "/v1/rules/m/rollback", `{"version":1}`},
		{"POST", "/v1/rules/m/fill", `{"record":[3,0],"holes":[1]}`},
		{"POST", "/v1/rules/m/forecast", `{"given":{"0":3},"target":1}`},
	}
	for _, p := range probes {
		resp := authRaw(t, p.method, ts.URL+p.path, "tok-globex", p.body)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s as globex: status %d, want 404", p.method, p.path, resp.StatusCode)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		if code := decodeEnvelope(t, p.method+" "+p.path, resp.Body); code != CodeNotFound {
			t.Errorf("%s %s as globex: code %q, want %q", p.method, p.path, code, CodeNotFound)
		}
		resp.Body.Close()
	}

	// Same name, different tenants: independent models.
	mineAs(t, ts, "tok-globex", "m", `[[1,3],[2,6],[3,9],[4,12],[5,15]]`)
	for _, token := range []string{"tok-acme", "tok-globex"} {
		resp := authRaw(t, "GET", ts.URL+"/v1/rules", token, "")
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || strings.Count(string(body), `"name":"m"`) != 1 {
			t.Errorf("list as %s = %d %q, want exactly one unprefixed \"m\"", token, resp.StatusCode, body)
		}
		if strings.Contains(string(body), "/") {
			t.Errorf("list as %s leaks scoped keys: %q", token, body)
		}
	}

	// globex deleting its own "m" must not touch acme's.
	if got := authStatus(t, "DELETE", ts.URL+"/v1/rules/m", "tok-globex", ""); got != http.StatusNoContent {
		t.Fatalf("globex delete own model = %d, want 204", got)
	}
	if got := authStatus(t, "GET", ts.URL+"/v1/rules/m", "tok-acme", ""); got != 200 {
		t.Fatalf("acme model after globex delete = %d, want 200", got)
	}

	// Tenant-scoped addressing cannot be forged through the path: a
	// name containing "/" (reachable via %2F) answers 404, and mining
	// one answers 400.
	if got := authStatus(t, "GET", ts.URL+"/v1/rules/acme%2Fm", "tok-globex", ""); got != http.StatusNotFound {
		t.Fatalf("escaped scoped path = %d, want 404", got)
	}
	resp := authRaw(t, "POST", ts.URL+"/v1/rules", "tok-globex", `{"name":"acme/m","rows":[[1,2],[2,4]]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mine with slashed name = %d, want 400", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// TestV1ContractAdmissionIngestShed pins the mid-stream shed contract
// (and the held-connection regression): once the row bucket drains the
// stream gets one rate_limited error line in the offending row's slot,
// the done summary, and nothing else — the server does not keep
// reading and refusing rows one by one.
func TestV1ContractAdmissionIngestShed(t *testing.T) {
	ts := admissionServer(t)
	body := strings.Repeat("[1, 2]\n", 6)
	req, err := http.NewRequest("POST", ts.URL+"/v1/rules/live/ingest", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer tok-limited")
	req.Header.Set("Content-Type", ndjsonContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d, want 200 (shed is per-row)", resp.StatusCode)
	}
	lines, done := readIngestLines(t, resp)
	// row_burst 2: rows 0 and 1 ack, row 2 sheds, rows 3..5 never
	// answered.
	if len(lines) != 3 {
		t.Fatalf("got %d row lines, want 3 (2 acks + 1 shed): %+v", len(lines), lines)
	}
	for i := 0; i < 2; i++ {
		if lines[i].Error != nil || lines[i].Count != i+1 {
			t.Errorf("line %d: want ack with count %d, got %+v", i, i+1, lines[i])
		}
	}
	shedLine := lines[2]
	if shedLine.Error == nil || shedLine.Error.Code != CodeRateLimited {
		t.Fatalf("line 2: want rate_limited error, got %+v", shedLine)
	}
	if shedLine.Index != 2 {
		t.Errorf("shed line index %d, want 2", shedLine.Index)
	}
	if done.Done.Rows != 3 || done.Done.Accepted != 2 || done.Done.Errors != 1 {
		t.Fatalf("done summary = %+v, want rows 3 accepted 2 errors 1", *done.Done)
	}
}

// TestV1ContractAdmissionShedClosesSlowClient is the held-connection
// regression against a live client: the request body is a pipe the
// client never closes, trickling rows past the row bucket. Once the
// shed fires the server must emit the error + done lines and
// terminate the response anyway — before the fix, each refused row
// kept extending the rolling write deadline, so a rate-limited client
// could hold the connection (and its quota slot) open indefinitely.
func TestV1ContractAdmissionShedClosesSlowClient(t *testing.T) {
	ts := admissionServer(t)
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", ts.URL+"/v1/rules/live/ingest", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer tok-limited")
	req.Header.Set("Content-Type", ndjsonContentType)
	// Trickle rows from a goroutine that NEVER closes the pipe (started
	// before Do: response headers only flush once rows flow); once the
	// server stops reading (stream terminated), writes start failing
	// and the goroutine parks until cleanup.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				pw.Close()
				return
			default:
			}
			if _, err := pw.Write([]byte("[1, 2]\n")); err != nil {
				<-stop
				pw.Close()
				return
			}
		}
	}()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// readIngestLines consumes the response to EOF: if the server kept
	// the stream open refusing rows forever, this would hang until the
	// test deadline instead of returning the 3-line shed contract.
	type result struct {
		lines []ingestLine
		done  ingestLine
	}
	got := make(chan result, 1)
	go func() {
		lines, done := readIngestLines(t, resp)
		got <- result{lines, done}
	}()
	select {
	case r := <-got:
		if len(r.lines) != 3 {
			t.Fatalf("got %d row lines, want 3 (2 acks + 1 shed): %+v", len(r.lines), r.lines)
		}
		if r.lines[2].Error == nil || r.lines[2].Error.Code != CodeRateLimited {
			t.Fatalf("line 2: want rate_limited error, got %+v", r.lines[2])
		}
		if r.done.Done.Accepted != 2 || r.done.Done.Errors != 1 {
			t.Fatalf("done summary = %+v, want accepted 2 errors 1", *r.done.Done)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shed did not terminate the stream: response still open with the client body unclosed")
	}
}

// TestV1ContractAdmissionBatchShed is the same contract on the batch
// inference path: the batch row bucket sheds with an error line in the
// row's slot and the stream ends there.
func TestV1ContractAdmissionBatchShed(t *testing.T) {
	ts := admissionServer(t)
	mineAs(t, ts, "tok-acme", "m", `[[1,2],[2,4],[3,6],[4,8],[5,10]]`)
	// "limited" needs its own model: mine one slips under row limits
	// (mining is request-metered, not row-metered).
	mineAs(t, ts, "tok-limited", "m", `[[1,2],[2,4],[3,6],[4,8],[5,10]]`)

	body := strings.Repeat(`{"record":[3,0],"holes":[1]}`+"\n", 6)
	req, err := http.NewRequest("POST", ts.URL+"/v1/rules/m/batch/fill", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer tok-limited")
	req.Header.Set("Content-Type", ndjsonContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d, want 200", resp.StatusCode)
	}
	lines := readNDJSON(t, resp)
	// batch_row_burst 2: rows 0 and 1 answer, row 2 sheds, stream ends.
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3 (2 results + 1 shed): %+v", len(lines), lines)
	}
	if lines[0].Error != nil || lines[1].Error != nil {
		t.Fatalf("in-quota rows failed: %+v", lines[:2])
	}
	if lines[2].Error == nil || lines[2].Error.Code != CodeRateLimited {
		t.Fatalf("line 2: want rate_limited error, got %+v", lines[2])
	}
}

// TestV1ContractAdmissionQuota pins the 429 over_quota envelope: a
// tenant with max_in_flight 1 and no waiting room sheds the second
// concurrent request with over_quota and a Retry-After.
func TestV1ContractAdmissionQuota(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(`{
		"tenants": [{"id": "q", "token": "tok-q",
			"limits": {"max_in_flight": 1, "max_wait_ms": 1}}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	metrics := obs.NewRegistry()
	ctrl, err := admission.New(admission.Config{TenantsFile: path, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	mgr, err := online.NewManager(reg, online.Config{RepublishRows: 1 << 30, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mgr.Close() })

	ts := httptest.NewServer(Handler(reg, WithObs(metrics), WithOnline(mgr), WithAdmission(ctrl)))
	t.Cleanup(ts.Close)

	// Hold the tenant's single slot directly through the controller, as
	// a long-running in-flight request would.
	tn, err := ctrl.Authenticate("tok-q")
	if err != nil {
		t.Fatal(err)
	}
	rel, err := ctrl.AdmitRequest(context.Background(), tn, false)
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	defer rel()

	resp := authRaw(t, "GET", ts.URL+"/v1/rules", "tok-q", "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second concurrent request = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("over_quota 429 without Retry-After")
	}
	if code := decodeEnvelope(t, "quota", resp.Body); code != CodeOverQuota {
		t.Errorf("code %q, want %q", code, CodeOverQuota)
	}
	resp.Body.Close()
}
