package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ratiorules/internal/obs"
	"ratiorules/internal/online"
)

// ingestLine is a superset decode target for ingest NDJSON responses.
type ingestLine struct {
	Index int        `json:"index"`
	Count int        `json:"count"`
	Error *errorInfo `json:"error"`
	Done  *struct {
		Rows     int `json:"rows"`
		Accepted int `json:"accepted"`
		Errors   int `json:"errors"`
		Count    int `json:"count"`
	} `json:"done"`
}

// readIngestLines decodes the whole ingest response, asserting the
// NDJSON content type and that exactly the last line is the summary.
func readIngestLines(t *testing.T, resp *http.Response) (acks []ingestLine, done ingestLine) {
	t.Helper()
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != ndjsonContentType {
		t.Fatalf("ingest Content-Type %q, want %q", got, ndjsonContentType)
	}
	var lines []ingestLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var l ingestLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("malformed ingest line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 || lines[len(lines)-1].Done == nil {
		t.Fatalf("ingest response missing done summary: %+v", lines)
	}
	for _, l := range lines[:len(lines)-1] {
		if l.Done != nil {
			t.Fatalf("done summary before end of stream: %+v", lines)
		}
	}
	return lines[:len(lines)-1], lines[len(lines)-1]
}

// onlineTestServer builds a server over its own registry and a manager
// with a deterministic row trigger.
func onlineTestServer(t *testing.T, cfg online.Config) *httptest.Server {
	t.Helper()
	reg := NewRegistry()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	mgr, err := online.NewManager(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mgr.Close() })
	ts := httptest.NewServer(Handler(reg, WithObs(cfg.Metrics), WithOnline(mgr)))
	t.Cleanup(ts.Close)
	return ts
}

// TestIngestContract drives the ingest framing end to end: bare-array
// and {"row":...} lines ack in order, malformed and wrong-width rows
// get error lines in their slots, and the final summary reconciles.
func TestIngestContract(t *testing.T) {
	ts := onlineTestServer(t, online.Config{RepublishRows: 1 << 30})
	body := `[1, 2]
{"row": [2, 4]}
not json
[1, 2, 3]
{"other": true}
[3, 6]
`
	resp := doRaw(t, "POST", ts.URL+"/v1/rules/live/ingest", ndjsonContentType, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d, want 200", resp.StatusCode)
	}
	lines, done := readIngestLines(t, resp)
	if len(lines) != 6 {
		t.Fatalf("got %d row lines, want 6: %+v", len(lines), lines)
	}
	for i, l := range lines {
		if l.Index != i {
			t.Fatalf("line %d carries index %d: ordering broken", i, l.Index)
		}
	}
	wantErr := map[int]bool{2: true, 3: true, 4: true}
	counts := 0
	for i, l := range lines {
		if wantErr[i] {
			if l.Error == nil || l.Error.Code != CodeBadRequest {
				t.Errorf("line %d: want bad_request error, got %+v", i, l)
			}
			continue
		}
		if l.Error != nil {
			t.Errorf("line %d: unexpected error %+v", i, l.Error)
			continue
		}
		counts++
		if l.Count != counts {
			t.Errorf("line %d: count %d, want %d", i, l.Count, counts)
		}
	}
	if done.Done.Rows != 6 || done.Done.Accepted != 3 || done.Done.Errors != 3 || done.Done.Count != 3 {
		t.Fatalf("done summary = %+v", *done.Done)
	}

	// The stream status agrees with the acks.
	var status online.StreamStatus
	if code := doJSON(t, "GET", ts.URL+"/v1/rules/live/stream", nil, &status); code != 200 {
		t.Fatalf("stream status code %d", code)
	}
	if status.Rows != 3 || status.Width != 2 || status.Pending != 3 {
		t.Fatalf("stream status = %+v", status)
	}
}

// TestIngestRepublishServes pins the loop the subsystem exists for:
// ingesting past the row trigger makes the model appear at GET
// /v1/rules/{name} with a version ETag, with no explicit mine call.
func TestIngestRepublishServes(t *testing.T) {
	ts := onlineTestServer(t, online.Config{RepublishRows: 20})

	if resp := doRaw(t, "GET", ts.URL+"/v1/rules/live", "", ""); resp.StatusCode != 404 {
		t.Fatalf("model served before any ingest: %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	var body strings.Builder
	for _, row := range ratioRows(40) {
		b, _ := json.Marshal(row)
		body.Write(b)
		body.WriteByte('\n')
	}
	resp := doRaw(t, "POST", ts.URL+"/v1/rules/live/ingest", ndjsonContentType, body.String())
	_, done := readIngestLines(t, resp)
	if done.Done.Accepted != 40 {
		t.Fatalf("accepted %d rows, want 40", done.Done.Accepted)
	}

	// Row trigger fires synchronously (manager not Started), so the
	// promoted model is immediately visible.
	get := doRaw(t, "GET", ts.URL+"/v1/rules/live", "", "")
	defer get.Body.Close()
	if get.StatusCode != 200 {
		t.Fatalf("model not served after republish: %d", get.StatusCode)
	}
	if etag := get.Header.Get("ETag"); etag != `"v2"` {
		// 40 rows crossed the 20-row trigger twice: two promotions.
		t.Fatalf("served ETag %q, want \"v2\"", etag)
	}
	var status online.StreamStatus
	doJSON(t, "GET", ts.URL+"/v1/rules/live/stream", nil, &status)
	if status.Promotions != 2 || status.LastVersion != 2 {
		t.Fatalf("stream status after promotions = %+v", status)
	}

	// The mined model behaves: fill reconstructs the 1:2 ratio.
	var fill fillResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/rules/live/fill",
		fillRequest{Record: []float64{3, 0}, Holes: []int{1}}, &fill); code != 200 {
		t.Fatalf("fill against ingested model: %d", code)
	}
	if got := fill.Filled[1]; got < 5.9 || got > 6.1 {
		t.Fatalf("fill(x=3) = %g, want ~6", got)
	}
}

// TestIngestDecayContract pins the decay parameter semantics: invalid
// values 400, a conflicting explicit decay 409 with the conflict code,
// omitting the parameter joins the running stream.
func TestIngestDecayContract(t *testing.T) {
	ts := onlineTestServer(t, online.Config{RepublishRows: 1 << 30})

	resp := doRaw(t, "POST", ts.URL+"/v1/rules/live/ingest?decay=1.5", ndjsonContentType, "[1,2]\n")
	if resp.StatusCode != 400 {
		t.Fatalf("invalid decay status %d, want 400", resp.StatusCode)
	}
	if code := decodeEnvelope(t, "invalid decay", resp.Body); code != CodeBadRequest {
		t.Fatalf("invalid decay code %q", code)
	}
	resp.Body.Close()

	resp = doRaw(t, "POST", ts.URL+"/v1/rules/live/ingest?decay=0.25", ndjsonContentType, "[1,2]\n[2,4]\n")
	if resp.StatusCode != 200 {
		t.Fatalf("creating decayed stream: %d", resp.StatusCode)
	}
	readIngestLines(t, resp)

	resp = doRaw(t, "POST", ts.URL+"/v1/rules/live/ingest?decay=0.5", ndjsonContentType, "[3,6]\n")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting decay status %d, want 409", resp.StatusCode)
	}
	if code := decodeEnvelope(t, "decay conflict", resp.Body); code != CodeConflict {
		t.Fatalf("decay conflict code %q, want %q", code, CodeConflict)
	}
	resp.Body.Close()

	resp = doRaw(t, "POST", ts.URL+"/v1/rules/live/ingest", ndjsonContentType, "[3,6]\n")
	if resp.StatusCode != 200 {
		t.Fatalf("implicit join status %d, want 200", resp.StatusCode)
	}
	_, done := readIngestLines(t, resp)
	if done.Done.Count != 3 {
		t.Fatalf("joined stream count = %d, want 3", done.Done.Count)
	}

	var status online.StreamStatus
	doJSON(t, "GET", ts.URL+"/v1/rules/live/stream", nil, &status)
	if status.Decay != 0.25 {
		t.Fatalf("stream decay = %v, want 0.25", status.Decay)
	}
}

// TestStreamLifecycle pins GET/DELETE /stream and the model-delete
// cascade.
func TestStreamLifecycle(t *testing.T) {
	ts := onlineTestServer(t, online.Config{RepublishRows: 10})

	resp := doRaw(t, "GET", ts.URL+"/v1/rules/live/stream", "", "")
	if resp.StatusCode != 404 {
		t.Fatalf("absent stream status %d, want 404", resp.StatusCode)
	}
	if code := decodeEnvelope(t, "absent stream", resp.Body); code != CodeNotFound {
		t.Fatalf("absent stream code %q", code)
	}
	resp.Body.Close()

	var body strings.Builder
	for _, row := range ratioRows(10) {
		b, _ := json.Marshal(row)
		body.Write(b)
		body.WriteByte('\n')
	}
	resp = doRaw(t, "POST", ts.URL+"/v1/rules/live/ingest", ndjsonContentType, body.String())
	readIngestLines(t, resp)

	// DELETE the stream: gone, idempotently 404 afterwards, while the
	// promoted model keeps serving.
	resp = doRaw(t, "DELETE", ts.URL+"/v1/rules/live/stream", "", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("stream delete status %d, want 204", resp.StatusCode)
	}
	resp = doRaw(t, "DELETE", ts.URL+"/v1/rules/live/stream", "", "")
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("second stream delete status %d, want 404", resp.StatusCode)
	}
	if resp := doRaw(t, "GET", ts.URL+"/v1/rules/live", "", ""); resp.StatusCode != 200 {
		t.Fatalf("model lost with its stream: %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Re-ingest, then DELETE the model: the stream cascades away.
	resp = doRaw(t, "POST", ts.URL+"/v1/rules/live/ingest", ndjsonContentType, "[1,2]\n")
	readIngestLines(t, resp)
	resp = doRaw(t, "DELETE", ts.URL+"/v1/rules/live", "", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("model delete status %d, want 204", resp.StatusCode)
	}
	resp = doRaw(t, "GET", ts.URL+"/v1/rules/live/stream", "", "")
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("stream survived model delete: %d", resp.StatusCode)
	}
}
