package server

// Follower-mode server tests: the read-only role gating driven by the
// declarative route table, and the end-to-end consistency contract —
// a follower tailing a live leader serves byte-identical bodies and
// ETags at the same seq.

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ratiorules/internal/replica"
	"ratiorules/internal/store"
)

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// newFollowerPair starts a leader server and a follower server whose
// replica tails the leader's real /v1/replicate route.
func newFollowerPair(t *testing.T) (leader, follower *httptest.Server, f *replica.Follower) {
	t.Helper()
	leader = newTestServer(t)

	fstore := store.OpenMemory()
	f, err := replica.New(replica.Options{
		Leader:     leader.URL,
		Store:      fstore,
		Logger:     slog.New(slog.NewTextHandler(io.Discard, nil)),
		MinBackoff: 10 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = f.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})

	follower = httptest.NewServer(Handler(NewRegistryWithStore(fstore),
		WithFollower(f, leader.URL, time.Minute)))
	t.Cleanup(follower.Close)
	return leader, follower, f
}

// TestFollowerRoleGating walks the entire route table against a live
// follower: every mutating route answers 403 read_only pointing at the
// leader, every read route serves (never 403/405), coordinator-only
// routes answer 404, and the derived Allow headers still cover the full
// API surface.
func TestFollowerRoleGating(t *testing.T) {
	leader, follower, _ := newFollowerPair(t)
	mineModel(t, leader, "m")

	for _, rt := range v1Routes {
		path := strings.ReplaceAll(rt.path, "{name}", "m")
		label := rt.method + " " + rt.path
		resp := doRaw(t, rt.method, follower.URL+path, "", "{}")
		switch {
		case rt.mutating:
			if resp.StatusCode != http.StatusForbidden {
				t.Errorf("%s: status %d, want 403 on a follower", label, resp.StatusCode)
			} else {
				if code := decodeEnvelope(t, label, resp.Body); code != CodeReadOnly {
					t.Errorf("%s: code %q, want %q", label, code, CodeReadOnly)
				}
			}
		case rt.roles&RoleFollower == 0: // coordinator-only admin
			if resp.StatusCode != http.StatusNotFound {
				t.Errorf("%s: status %d, want 404 on a follower", label, resp.StatusCode)
			}
		default: // read route: must be served, whatever the outcome
			if resp.StatusCode == http.StatusForbidden || resp.StatusCode == http.StatusMethodNotAllowed {
				t.Errorf("%s: status %d; read routes must serve on a follower", label, resp.StatusCode)
			}
		}
		// No drain: GET /v1/replicate streams forever; Close hangs up.
		resp.Body.Close()
	}

	// The Allow surface is identical to the leader's: mutating routes
	// exist (403), they are not missing (405/404).
	resp := doRaw(t, http.MethodPatch, follower.URL+"/v1/rules/m", "", "")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PATCH on follower: status %d, want 405", resp.StatusCode)
	}
	if got := resp.Header.Get("Allow"); got != "GET, PUT, DELETE" {
		t.Errorf("follower Allow = %q, want %q", got, "GET, PUT, DELETE")
	}
	resp.Body.Close()

	// The read_only envelope names the leader so clients can redirect.
	resp = doRaw(t, http.MethodDelete, follower.URL+"/v1/rules/m", "", "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), leader.URL) {
		t.Errorf("read_only envelope %s does not name the leader %s", body, leader.URL)
	}
}

// TestFollowerServesIdenticalBytes is the consistency contract: after
// the follower catches up, GET bodies and ETags are byte-identical to
// the leader at the same seq, conditional GETs answer 304 with the same
// validator, and inference runs on the replica.
func TestFollowerServesIdenticalBytes(t *testing.T) {
	leader, follower, f := newFollowerPair(t)
	mineModel(t, leader, "m")
	mineModel(t, leader, "m") // v2 head, v1 retained

	waitUntil(t, "follower catch-up", func() bool {
		s := f.Status()
		return s.AppliedSeq == 2 && s.Synced
	})

	get := func(ts *httptest.Server, path string) (string, []byte) {
		t.Helper()
		resp := doRaw(t, http.MethodGet, ts.URL+path, "", "")
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("ETag"), body
	}
	for _, path := range []string{"/v1/rules/m", "/v1/rules/m?version=1"} {
		lEtag, lBody := get(leader, path)
		fEtag, fBody := get(follower, path)
		if lEtag != fEtag {
			t.Errorf("GET %s: ETag leader %q != follower %q", path, lEtag, fEtag)
		}
		if string(lBody) != string(fBody) {
			t.Errorf("GET %s: bodies differ (%d vs %d bytes)", path, len(lBody), len(fBody))
		}
	}

	// A leader ETag validates on the follower: caches shared across the
	// fleet see one coherent validator space.
	req, _ := http.NewRequest(http.MethodGet, follower.URL+"/v1/rules/m", nil)
	req.Header.Set("If-None-Match", `"v2"`)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET on follower: status %d, want 304", resp.StatusCode)
	}

	// Inference serves on the replica.
	var fill fillResponse
	if status := doJSON(t, http.MethodPost, follower.URL+"/v1/rules/m/fill",
		fillRequest{Record: []float64{3, 0}, Holes: []int{1}}, &fill); status != http.StatusOK {
		t.Fatalf("fill on follower: status %d", status)
	}
	if got := fill.Filled[1]; got < 5.9 || got > 6.1 {
		t.Errorf("fill on follower = %g, want ~6", got)
	}

	// New leader writes flow through live.
	mineModel(t, leader, "m")
	waitUntil(t, "live tail", func() bool { return f.Status().AppliedSeq == 3 })
	lEtag, lBody := get(leader, "/v1/rules/m")
	fEtag, fBody := get(follower, "/v1/rules/m")
	if lEtag != fEtag || string(lBody) != string(fBody) {
		t.Errorf("post-write: leader %q/%d bytes, follower %q/%d bytes",
			lEtag, len(lBody), fEtag, len(fBody))
	}
}

// TestFollowerReadyz pins the readiness contract of a replica: synced
// answers ready with the replica block; staleness beyond the bound
// answers 503 replica_lagging with Retry-After.
func TestFollowerReadyz(t *testing.T) {
	leader, follower, f := newFollowerPair(t)
	mineModel(t, leader, "m")
	waitUntil(t, "sync", func() bool { return f.Status().Synced })

	var body struct {
		Status  string          `json:"status"`
		Role    string          `json:"role"`
		Replica *replica.Status `json:"replica"`
	}
	if status := doJSON(t, http.MethodGet, follower.URL+"/readyz", nil, &body); status != http.StatusOK {
		t.Fatalf("readyz: status %d", status)
	}
	if body.Status != "ready" || body.Role != "follower" || body.Replica == nil {
		t.Fatalf("readyz body = %+v", body)
	}
	if !body.Replica.Synced || body.Replica.AppliedSeq != 1 {
		t.Fatalf("replica block = %+v", body.Replica)
	}

	// A follower that can never reach its leader trips replica_lagging
	// once staleness exceeds the bound (here: immediately).
	dead, err := replica.New(replica.Options{
		Leader:     "http://127.0.0.1:1", // nothing listens on port 1
		Store:      store.OpenMemory(),
		Logger:     slog.New(slog.NewTextHandler(io.Discard, nil)),
		MinBackoff: time.Hour, // never actually dial during the test
	})
	if err != nil {
		t.Fatal(err)
	}
	lagTS := httptest.NewServer(Handler(NewRegistry(),
		WithFollower(dead, "http://127.0.0.1:1", time.Nanosecond)))
	t.Cleanup(lagTS.Close)

	resp := doRaw(t, http.MethodGet, lagTS.URL+"/readyz", "", "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("lagging readyz: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("lagging readyz: missing Retry-After")
	}
	if code := decodeEnvelope(t, "lagging readyz", resp.Body); code != CodeReplicaLagging {
		t.Errorf("lagging readyz code = %q, want %q", code, CodeReplicaLagging)
	}
}

// TestReplicateRouteOnLeader: the replication stream mounts on plain
// leaders and speaks frames; a bad ?from answers the envelope.
func TestReplicateRouteOnLeader(t *testing.T) {
	ts := newTestServer(t)
	mineModel(t, ts, "m")

	resp := doRaw(t, http.MethodGet, ts.URL+"/v1/replicate?from=bogus", "", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from: status %d, want 400", resp.StatusCode)
	}
	if code := decodeEnvelope(t, "bad from", resp.Body); code != CodeBadRequest {
		t.Errorf("bad from code = %q", code)
	}
	resp.Body.Close()

	// A well-formed request streams frames; read the first (heartbeat)
	// and the catch-up event, then hang up.
	resp = doRaw(t, http.MethodGet, ts.URL+"/v1/replicate?from=0", "", "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replicate: status %d", resp.StatusCode)
	}
	fr, err := replica.ReadFrame(resp.Body)
	if err != nil || fr.Kind != replica.KindHeartbeat || fr.Seq != 1 {
		t.Fatalf("first frame = %+v, %v; want heartbeat seq 1", fr, err)
	}
	fr, err = replica.ReadFrame(resp.Body)
	if err != nil || fr.Kind != replica.KindEvent || fr.Event.Seq != 1 {
		t.Fatalf("second frame = %+v, %v; want event seq 1", fr, err)
	}
}
