package server

// Admission wiring: the per-route middleware that authenticates the
// tenant, runs the rate/quota/shed gauntlet, and stashes the resolved
// tenant on the request context; the tenant-scoped model-name helpers
// every handler resolves {name} through; and GET /debug/admission.
//
// The middleware wraps only routes marked protected in the table
// (routes.go) and only when WithAdmission configured a controller — a
// server without one serves the exact pre-admission code path, nil
// checks aside, which is what keeps the no-auth overhead unmeasurable.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ratiorules/internal/admission"
	"ratiorules/internal/obs/trace"
)

// tenantKey carries the admitted *admission.Tenant on the request
// context. Absent (admission off) means the legacy single-tenant path.
type tenantKey struct{}

// tenantFrom returns the request's admitted tenant, nil when admission
// is off. A nil tenant scopes nothing: ScopedName is the identity.
func tenantFrom(req *http.Request) *admission.Tenant {
	t, _ := req.Context().Value(tenantKey{}).(*admission.Tenant)
	return t
}

// bearerToken extracts the Authorization: Bearer credential. An absent
// header is the anonymous path (empty token); a present but non-Bearer
// header is malformed and must not silently downgrade to anonymous.
func bearerToken(req *http.Request) (string, error) {
	h := req.Header.Get("Authorization")
	if h == "" {
		return "", nil
	}
	const prefix = "Bearer "
	if len(h) > len(prefix) && strings.EqualFold(h[:len(prefix)], prefix) {
		return strings.TrimSpace(h[len(prefix):]), nil
	}
	return "", errors.New("malformed Authorization header: want \"Bearer <token>\"")
}

// admitted wraps a protected route's handler with the admission
// gauntlet. No controller → the handler is returned untouched.
func (s *service) admitted(stream bool, h http.Handler) http.Handler {
	if s.admission == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		ctx, sp := trace.Start(req.Context(), "admission.check")
		token, err := bearerToken(req)
		var tn *admission.Tenant
		if err == nil {
			tn, err = s.admission.Authenticate(token)
		} else {
			err = fmt.Errorf("%w: %v", admission.ErrUnauthorized, err)
		}
		if err != nil {
			sp.SetAttr("decision", "denied")
			sp.End()
			writeAdmissionErr(w, err)
			return
		}
		sp.SetAttr("tenant", tn.ID)
		release, err := s.admission.AdmitRequest(ctx, tn, stream)
		if err != nil {
			sp.SetAttr("decision", "denied")
			sp.End()
			writeAdmissionErr(w, err)
			return
		}
		sp.SetAttr("decision", "allowed")
		sp.End()
		defer release()
		h.ServeHTTP(w, req.WithContext(context.WithValue(ctx, tenantKey{}, tn)))
	})
}

// writeAdmissionErr maps an admission rejection onto the v1 envelope:
// 401 unauthorized (+ WWW-Authenticate), 403 forbidden, 429
// rate_limited / over_quota (+ Retry-After), 503 overloaded
// (+ Retry-After).
func writeAdmissionErr(w http.ResponseWriter, err error) {
	if retry := admission.RetryAfterOf(err); retry > 0 {
		w.Header().Set("Retry-After", retryAfterSeconds(retry))
	}
	if errors.Is(err, admission.ErrUnauthorized) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="ratiorules"`)
	}
	status, code := errStatus(err)
	writeErr(w, status, code, err)
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1 (a zero would invite an immediate retry storm).
func retryAfterSeconds(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// modelRef resolves the {name} path value to its tenant-scoped store
// key. name is what the client said (for messages and response bodies),
// key is where the model actually lives. With admission on, a path
// name containing "/" (reachable via %2F escapes) could address
// another tenant's namespace from the root scope, so it answers the
// same 404 a missing model would — indistinguishable from absent.
func (s *service) modelRef(w http.ResponseWriter, req *http.Request) (name, key string, ok bool) {
	name = req.PathValue("name")
	if s.admission != nil && strings.Contains(name, "/") {
		writeErr(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("model %q not found", name))
		return name, "", false
	}
	return name, tenantFrom(req).ScopedName(name), true
}

// visibleName maps a store key to the name the request's tenant sees,
// reporting false for keys outside its namespace. With admission off
// every key is visible as itself.
func (s *service) visibleName(t *admission.Tenant, key string) (string, bool) {
	if s.admission == nil {
		return key, true
	}
	scope := ""
	if t != nil {
		scope = t.Scope
	}
	rest, found := strings.CutPrefix(key, scope)
	if !found || strings.Contains(rest, "/") {
		return "", false
	}
	return rest, true
}

// debugAdmission serves GET /debug/admission: the controller's live
// bucket balances, semaphore occupancy and registry state. Not mounted
// behind admission itself — like the other /debug routes it is an
// operator surface, bound to the same listener trust as /metrics.
func (s *service) debugAdmission(w http.ResponseWriter, _ *http.Request) {
	if s.admission == nil {
		writeErr(w, http.StatusNotFound, CodeNotFound,
			errors.New("admission control is not enabled on this node"))
		return
	}
	writeJSON(w, http.StatusOK, s.admission.Snapshot())
}
