package server

// The declarative route table. Every route of the public surface —
// the /v1 API, the probes, /metrics and the /debug introspection
// endpoints — is one entry: method, path, which server roles serve it,
// whether it mutates state — and both the mux (Handler) and the
// contract tests walk the same table, so leader/follower/coordinator
// gating lives here and nowhere else. Wrong-method fallbacks (405 +
// Allow) are derived from the table too: the Allow header is exactly
// the methods mounted on a path (so POST /healthz is a 405 with
// Allow: GET, not a bare 404).

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// Role says what this server instance is allowed to do. Handler derives
// it from the options: plain servers are leaders, WithCluster adds the
// coordinator role, WithFollower replaces both with the read-only
// follower role.
type Role uint8

const (
	// RoleLeader is a writable single node: every route except the
	// cluster admin surface.
	RoleLeader Role = 1 << iota
	// RoleFollower is a read-only replica tailing a leader: every GET
	// and inference route; mutations answer read_only.
	RoleFollower
	// RoleCoordinator fronts a sharded cluster; it is a leader that also
	// serves the /v1/cluster admin routes.
	RoleCoordinator
)

func (r Role) String() string {
	switch {
	case r&RoleFollower != 0:
		return "follower"
	case r&RoleCoordinator != 0:
		return "coordinator"
	default:
		return "leader"
	}
}

const (
	// rolesAll marks read routes: any role serves them.
	rolesAll = RoleLeader | RoleFollower | RoleCoordinator
	// rolesWriters marks mutating routes: writable roles serve them,
	// followers answer 403 read_only instead.
	rolesWriters = RoleLeader | RoleCoordinator
)

// route is one entry of the v1 surface.
type route struct {
	method string
	path   string
	roles  Role // roles that serve the handler
	// mutating routes change registry/stream state. On a follower they
	// stay mounted but answer read_only pointing at the leader (rather
	// than 404: the route exists, this instance just cannot serve it).
	mutating bool
	// stream routes read or write unbounded bodies row-by-row and are
	// exempt from the request-body cap.
	stream bool
	// untraced routes skip the flight recorder (long-lived replication
	// streams would pin open root spans for hours).
	untraced bool
	// protected routes go through admission control (tenant auth, rate
	// limits, quotas, load shedding) when WithAdmission is configured:
	// the whole /v1/rules surface. Replication and cluster-internal
	// routes are exempt — followers and workers hold no tenant tokens;
	// those surfaces are isolated at the network layer instead (see
	// docs/runbook.md) — as are the probes, /metrics and /debug.
	protected bool
	handler   func(*service, http.ResponseWriter, *http.Request)
}

// v1Routes is the whole versioned API surface. Inference POSTs (fill,
// forecast, whatif, project, outliers and their batch forms) are
// semantic reads — they touch no state — so followers serve them.
var v1Routes = []route{
	{method: "GET", path: "/v1/rules", roles: rolesAll, protected: true, handler: (*service).list},
	{method: "POST", path: "/v1/rules", roles: rolesWriters, mutating: true, protected: true, handler: (*service).mine},
	{method: "GET", path: "/v1/rules/{name}", roles: rolesAll, protected: true, handler: (*service).get},
	{method: "PUT", path: "/v1/rules/{name}", roles: rolesWriters, mutating: true, protected: true, handler: (*service).put},
	{method: "DELETE", path: "/v1/rules/{name}", roles: rolesWriters, mutating: true, protected: true, handler: (*service).del},
	{method: "GET", path: "/v1/rules/{name}/versions", roles: rolesAll, protected: true, handler: (*service).versions},
	{method: "POST", path: "/v1/rules/{name}/rollback", roles: rolesWriters, mutating: true, protected: true, handler: (*service).rollback},
	{method: "POST", path: "/v1/rules/{name}/fill", roles: rolesAll, protected: true, handler: (*service).fill},
	{method: "POST", path: "/v1/rules/{name}/forecast", roles: rolesAll, protected: true, handler: (*service).forecast},
	{method: "POST", path: "/v1/rules/{name}/whatif", roles: rolesAll, protected: true, handler: (*service).whatIf},
	{method: "POST", path: "/v1/rules/{name}/project", roles: rolesAll, protected: true, handler: (*service).project},
	{method: "POST", path: "/v1/rules/{name}/outliers", roles: rolesAll, protected: true, handler: (*service).outliers},
	{method: "POST", path: "/v1/rules/{name}/batch/fill", roles: rolesAll, stream: true, protected: true, handler: (*service).batchFill},
	{method: "POST", path: "/v1/rules/{name}/batch/forecast", roles: rolesAll, stream: true, protected: true, handler: (*service).batchForecast},
	{method: "POST", path: "/v1/rules/{name}/batch/outliers", roles: rolesAll, stream: true, protected: true, handler: (*service).batchOutliers},
	{method: "POST", path: "/v1/rules/{name}/ingest", roles: rolesWriters, mutating: true, stream: true, protected: true, handler: (*service).ingest},
	{method: "GET", path: "/v1/rules/{name}/stream", roles: rolesAll, protected: true, handler: (*service).streamStatus},
	{method: "DELETE", path: "/v1/rules/{name}/stream", roles: rolesWriters, mutating: true, protected: true, handler: (*service).streamDrop},
	{method: "GET", path: "/v1/rules/{name}/health", roles: rolesAll, protected: true, handler: (*service).modelHealth},
	// Replication is served by every role — a follower can feed further
	// followers (cascading fan-out) because its store keeps its own
	// replication log under the leader's seqs.
	{method: "GET", path: "/v1/replicate", roles: rolesAll, stream: true, untraced: true, handler: (*service).replicate},
	// Cluster admin exists only on coordinators; on every other role the
	// paths fall through to the uniform 404.
	{method: "GET", path: "/v1/cluster/status", roles: RoleCoordinator, handler: (*service).clusterStatus},
	{method: "POST", path: "/v1/cluster/join", roles: RoleCoordinator, handler: (*service).clusterJoin},
	{method: "POST", path: "/v1/cluster/republish/{name}", roles: RoleCoordinator, handler: (*service).clusterRepublish},
	// Probes, metrics and the /debug introspection surface. All untraced:
	// scrapers hit them every few seconds and would flush real traffic
	// out of the flight recorder (and tracing the trace dump would be
	// silly). Every role serves them; the fleet pair answers 404
	// not_found on nodes without a collector.
	{method: "GET", path: "/healthz", roles: rolesAll, untraced: true, handler: (*service).health},
	{method: "GET", path: "/readyz", roles: rolesAll, untraced: true, handler: (*service).readyz},
	{method: "GET", path: "/metrics", roles: rolesAll, untraced: true, handler: (*service).metricsExpo},
	{method: "GET", path: "/metrics/fleet", roles: rolesAll, untraced: true, handler: (*service).metricsFleet},
	{method: "GET", path: "/debug/traces", roles: rolesAll, untraced: true, handler: (*service).debugTraces},
	{method: "GET", path: "/debug/traces/{id}", roles: rolesAll, untraced: true, handler: (*service).debugTrace},
	{method: "GET", path: "/debug/alerts", roles: rolesAll, untraced: true, handler: (*service).debugAlerts},
	{method: "GET", path: "/debug/admission", roles: rolesAll, untraced: true, handler: (*service).debugAdmission},
	{method: "GET", path: "/debug/fleet", roles: rolesAll, untraced: true, handler: (*service).debugFleet},
	{method: "GET", path: "/debug/profiles", roles: rolesAll, untraced: true, handler: (*service).debugProfiles},
	{method: "GET", path: "/debug/profiles/{id}", roles: rolesAll, untraced: true, handler: (*service).debugProfile},
}

// mounted reports whether a role mounts this route at all: either
// serving it, or (follower × mutating) answering read_only.
func (rt route) mounted(role Role) bool {
	return role&rt.roles != 0 || (rt.mutating && role&RoleFollower != 0)
}

// allowOrder is the canonical Allow-header method order.
var allowOrder = map[string]int{
	http.MethodGet: 0, http.MethodHead: 1, http.MethodPost: 2,
	http.MethodPut: 3, http.MethodPatch: 4, http.MethodDelete: 5,
}

// allowHeaders derives the per-path Allow strings for every path with
// at least one mounted route under the given role.
func allowHeaders(role Role) map[string]string {
	methods := make(map[string][]string)
	for _, rt := range v1Routes {
		if rt.mounted(role) {
			methods[rt.path] = append(methods[rt.path], rt.method)
		}
	}
	out := make(map[string]string, len(methods))
	for path, ms := range methods {
		sort.Slice(ms, func(i, j int) bool { return allowOrder[ms[i]] < allowOrder[ms[j]] })
		out[path] = strings.Join(ms, ", ")
	}
	return out
}

// readOnly answers a mutating route on a follower: 403 with the stable
// read_only code and the leader to write to instead.
func (s *service) readOnly(w http.ResponseWriter, _ *http.Request) {
	writeErr(w, http.StatusForbidden, CodeReadOnly,
		fmt.Errorf("this replica is read-only; send writes to the leader at %s", s.leaderURL))
}

// replicate serves the leader side of WAL shipping (GET /v1/replicate).
// The real handler lives in internal/replica; Handler wires it with the
// registry's store and the envelope error writer.
func (s *service) replicate(w http.ResponseWriter, req *http.Request) {
	s.replication.ServeHTTP(w, req)
}

// mountRoutes walks the table and registers every route for the
// service's role, plus the derived wrong-method fallbacks.
func mountRoutes(mux *http.ServeMux, s *service, m *httpMetrics, maxBodyBytes int64) {
	for _, rt := range v1Routes {
		if !rt.mounted(s.role) {
			continue
		}
		handler := rt.handler
		if s.role&rt.roles == 0 {
			handler = (*service).readOnly
		}
		var wrapped http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { handler(s, w, r) })
		// Admission wraps inside the body cap and the instrumentation:
		// 401/429 rejections are counted, logged and traced like any
		// other response, and never read the request body at all.
		if rt.protected {
			wrapped = s.admitted(rt.stream, wrapped)
		}
		if !rt.stream && maxBodyBytes > 0 {
			wrapped = limitBody(maxBodyBytes, wrapped)
		}
		if rt.untraced {
			wrapped = m.instrument(rt.path, wrapped)
		} else {
			wrapped = m.instrumentTraced(rt.path, wrapped)
		}
		mux.Handle(rt.method+" "+rt.path, wrapped)
	}
	for path, allow := range allowHeaders(s.role) {
		mux.Handle(path, m.instrument(path, methodNotAllowed(allow)))
	}
}
