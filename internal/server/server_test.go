package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ratiorules/internal/core"
	"ratiorules/internal/matrix"
	"ratiorules/internal/store"
)

// newTestServer returns a started test server plus a JSON helper.
func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(Handler(NewRegistry()))
	t.Cleanup(ts.Close)
	return ts
}

// doJSON posts (or gets) JSON and decodes the response into out (when
// non-nil), returning the status code.
func doJSON(t *testing.T, method, url string, in, out any) int {
	t.Helper()
	var body *bytes.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(data)
	} else {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s %s response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// ratioRows builds y = 2x training rows.
func ratioRows(n int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		v := 1 + float64(i)*0.1
		rows[i] = []float64{v, 2 * v}
	}
	return rows
}

func mineModel(t *testing.T, ts *httptest.Server, name string) modelSummary {
	t.Helper()
	var sum modelSummary
	status := doJSON(t, http.MethodPost, ts.URL+"/v1/rules", mineRequest{
		Name:  name,
		Attrs: []string{"bread", "butter"},
		Rows:  ratioRows(50),
	}, &sum)
	if status != http.StatusCreated {
		t.Fatalf("mine status = %d", status)
	}
	return sum
}

func TestMineAndSummary(t *testing.T) {
	ts := newTestServer(t)
	sum := mineModel(t, ts, "sales")
	if sum.Name != "sales" || sum.M != 2 || sum.TrainedRows != 50 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.K < 1 || sum.EnergyCovered < 0.85 {
		t.Errorf("mined model too weak: %+v", sum)
	}
}

func TestMineValidation(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name string
		body any
		want int
	}{
		{"no name", mineRequest{Rows: ratioRows(5)}, http.StatusBadRequest},
		{"no rows", mineRequest{Name: "x"}, http.StatusBadRequest},
		{"ragged rows", mineRequest{Name: "x", Rows: [][]float64{{1}, {1, 2}}}, http.StatusBadRequest},
		{"bad energy", mineRequest{Name: "x", Rows: ratioRows(5), Energy: 3}, http.StatusBadRequest},
		{"not json", "zzz", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := doJSON(t, http.MethodPost, ts.URL+"/v1/rules", tc.body, nil); got != tc.want {
				t.Errorf("status = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestListAndDelete(t *testing.T) {
	ts := newTestServer(t)
	mineModel(t, ts, "a")
	mineModel(t, ts, "b")
	var models []modelSummary
	if got := doJSON(t, http.MethodGet, ts.URL+"/v1/rules", nil, &models); got != http.StatusOK {
		t.Fatalf("list status = %d", got)
	}
	if len(models) != 2 || models[0].Name != "a" || models[1].Name != "b" {
		t.Errorf("list = %+v", models)
	}
	if got := doJSON(t, http.MethodDelete, ts.URL+"/v1/rules/a", nil, nil); got != http.StatusNoContent {
		t.Errorf("delete status = %d", got)
	}
	if got := doJSON(t, http.MethodDelete, ts.URL+"/v1/rules/a", nil, nil); got != http.StatusNotFound {
		t.Errorf("double delete status = %d", got)
	}
}

func TestGetRulesJSON(t *testing.T) {
	ts := newTestServer(t)
	mineModel(t, ts, "sales")
	resp, err := http.Get(ts.URL + "/v1/rules/sales")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var doc struct {
		Means   []float64   `json:"means"`
		Vectors [][]float64 `json:"vectors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Means) != 2 || len(doc.Vectors) != 2 {
		t.Errorf("rules doc = %+v", doc)
	}
}

func TestFillEndpoint(t *testing.T) {
	ts := newTestServer(t)
	mineModel(t, ts, "sales")
	var out fillResponse
	status := doJSON(t, http.MethodPost, ts.URL+"/v1/rules/sales/fill", fillRequest{
		Record: []float64{4, 0},
		Holes:  []int{1},
	}, &out)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if math.Abs(out.Filled[1]-8) > 0.1 {
		t.Errorf("filled = %v, want ≈ [4 8]", out.Filled)
	}
}

func TestFillErrors(t *testing.T) {
	ts := newTestServer(t)
	mineModel(t, ts, "sales")
	if got := doJSON(t, http.MethodPost, ts.URL+"/v1/rules/nope/fill",
		fillRequest{Record: []float64{1, 2}}, nil); got != http.StatusNotFound {
		t.Errorf("unknown model status = %d", got)
	}
	if got := doJSON(t, http.MethodPost, ts.URL+"/v1/rules/sales/fill",
		fillRequest{Record: []float64{1}, Holes: []int{0}}, nil); got != http.StatusBadRequest {
		t.Errorf("bad width status = %d", got)
	}
	if got := doJSON(t, http.MethodPost, ts.URL+"/v1/rules/sales/fill",
		fillRequest{Record: []float64{1, 2}, Holes: []int{9}}, nil); got != http.StatusBadRequest {
		t.Errorf("bad hole status = %d", got)
	}
	if got := doJSON(t, http.MethodPost, ts.URL+"/v1/rules/sales/fill",
		"garbage", nil); got != http.StatusBadRequest {
		t.Errorf("garbage body status = %d", got)
	}
}

func TestForecastEndpoint(t *testing.T) {
	ts := newTestServer(t)
	mineModel(t, ts, "sales")
	var out forecastResponse
	status := doJSON(t, http.MethodPost, ts.URL+"/v1/rules/sales/forecast", forecastRequest{
		Given:  map[int]float64{0: 3},
		Target: 1,
	}, &out)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if math.Abs(out.Value-6) > 0.1 {
		t.Errorf("forecast = %v, want ≈ 6", out.Value)
	}
	// Target already given.
	if got := doJSON(t, http.MethodPost, ts.URL+"/v1/rules/sales/forecast", forecastRequest{
		Given:  map[int]float64{0: 3},
		Target: 0,
	}, nil); got != http.StatusBadRequest {
		t.Errorf("bad target status = %d", got)
	}
}

func TestOutliersEndpoint(t *testing.T) {
	ts := newTestServer(t)
	mineModel(t, ts, "sales")
	rows := ratioRows(30)
	rows[10][1] = 500 // gross outlier
	var out outliersResponse
	status := doJSON(t, http.MethodPost, ts.URL+"/v1/rules/sales/outliers", outliersRequest{
		Rows:  rows,
		Sigma: 3,
	}, &out)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if len(out.Outliers) == 0 || out.Outliers[0].Row != 10 {
		t.Errorf("outliers = %+v, want row 10 first", out.Outliers)
	}
	// Clean rows: empty array, not null.
	status = doJSON(t, http.MethodPost, ts.URL+"/v1/rules/sales/outliers", outliersRequest{
		Rows:  ratioRows(10),
		Sigma: 50,
	}, &out)
	if status != http.StatusOK || out.Outliers == nil {
		t.Errorf("clean rows: status %d, outliers %v", status, out.Outliers)
	}
}

func TestMethodRouting(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/rules/sales/fill")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed && resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET on POST route status = %d", resp.StatusCode)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	rules := mineTestRules(t)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				name := fmt.Sprintf("m%d", g)
				if _, err := reg.Put(context.Background(), name, rules); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				reg.Get(name)
				reg.Names()
				if _, err := reg.Delete(context.Background(), name); err != nil {
					t.Errorf("delete: %v", err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

// mineTestRules mines a small in-process rule set for registry tests.
func mineTestRules(t testing.TB) *core.Rules {
	t.Helper()
	x, err := matrix.FromRows(ratioRows(20))
	if err != nil {
		t.Fatal(err)
	}
	miner, err := core.NewMiner()
	if err != nil {
		t.Fatal(err)
	}
	rules, err := miner.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

func TestWhatIfEndpoint(t *testing.T) {
	ts := newTestServer(t)
	mineModel(t, ts, "sales")
	var out whatIfResponse
	status := doJSON(t, http.MethodPost, ts.URL+"/v1/rules/sales/whatif", whatIfRequest{
		Given: map[int]float64{0: 10},
	}, &out)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if math.Abs(out.Record[1]-20) > 0.2 {
		t.Errorf("what-if record = %v, want ≈ [10 20]", out.Record)
	}
	if got := doJSON(t, http.MethodPost, ts.URL+"/v1/rules/sales/whatif",
		whatIfRequest{}, nil); got != http.StatusBadRequest {
		t.Errorf("empty scenario status = %d", got)
	}
}

func TestProjectEndpoint(t *testing.T) {
	ts := newTestServer(t)
	mineModel(t, ts, "sales")
	var out projectResponse
	status := doJSON(t, http.MethodPost, ts.URL+"/v1/rules/sales/project", projectRequest{
		Rows: ratioRows(5),
		Dims: 1,
	}, &out)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if len(out.Coords) != 5 || len(out.Coords[0]) != 1 {
		t.Errorf("coords shape = %dx%d, want 5x1", len(out.Coords), len(out.Coords[0]))
	}
	// Dims beyond the retained rules must 400.
	if got := doJSON(t, http.MethodPost, ts.URL+"/v1/rules/sales/project", projectRequest{
		Rows: ratioRows(3),
		Dims: 99,
	}, nil); got != http.StatusBadRequest {
		t.Errorf("bad dims status = %d", got)
	}
}

func TestPutModelRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	mineModel(t, ts, "sales")
	// Export the model, install it under a new name, then query the copy.
	resp, err := http.Get(ts.URL + "/v1/rules/sales")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/rules/copy", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	putResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusOK {
		t.Fatalf("put status = %d", putResp.StatusCode)
	}
	var out fillResponse
	status := doJSON(t, http.MethodPost, ts.URL+"/v1/rules/copy/fill", fillRequest{
		Record: []float64{4, 0},
		Holes:  []int{1},
	}, &out)
	if status != http.StatusOK || math.Abs(out.Filled[1]-8) > 0.1 {
		t.Errorf("copy fill: status %d, filled %v", status, out.Filled)
	}
}

func TestPutModelRejectsGarbage(t *testing.T) {
	ts := newTestServer(t)
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/rules/x", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	mineModel(t, ts, "a")
	// Liveness is pure: no dependency state, just "process up".
	var out map[string]any
	if got := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &out); got != http.StatusOK {
		t.Fatalf("status = %d", got)
	}
	if len(out) != 1 || out["status"] != "ok" {
		t.Errorf("health = %v", out)
	}
	// Readiness carries the dependency picture.
	var ready map[string]any
	if got := doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, &ready); got != http.StatusOK {
		t.Fatalf("readyz status = %d", got)
	}
	if ready["status"] != "ready" || ready["models"] != float64(1) || ready["firing_alerts"] != float64(0) {
		t.Errorf("readyz = %v", ready)
	}
}

// reMineModel mines a replacement model (different slope) under an
// existing name, creating the next version.
func reMineModel(t *testing.T, ts *httptest.Server, name string) modelSummary {
	t.Helper()
	rows := make([][]float64, 50)
	for i := range rows {
		v := 1 + float64(i)*0.1
		rows[i] = []float64{v, 3 * v}
	}
	var sum modelSummary
	status := doJSON(t, http.MethodPost, ts.URL+"/v1/rules", mineRequest{
		Name: name, Attrs: []string{"bread", "butter"}, Rows: rows,
	}, &sum)
	if status != http.StatusCreated {
		t.Fatalf("re-mine status = %d", status)
	}
	return sum
}

func TestMineReportsVersion(t *testing.T) {
	ts := newTestServer(t)
	if sum := mineModel(t, ts, "sales"); sum.Version != 1 {
		t.Errorf("first mine version = %d, want 1", sum.Version)
	}
	if sum := reMineModel(t, ts, "sales"); sum.Version != 2 {
		t.Errorf("second mine version = %d, want 2", sum.Version)
	}
}

func TestETagConditionalGet(t *testing.T) {
	ts := newTestServer(t)
	mineModel(t, ts, "sales")

	resp, err := http.Get(ts.URL + "/v1/rules/sales")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != http.StatusOK || etag != `"v1"` {
		t.Fatalf("GET: status %d, ETag %q; want 200, \"v1\"", resp.StatusCode, etag)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/rules/sales", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("conditional GET: status %d, %d body bytes; want 304 and empty", resp.StatusCode, len(body))
	}

	// A new version invalidates the cached ETag.
	reMineModel(t, ts, "sales")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") != `"v2"` {
		t.Fatalf("stale-ETag GET: status %d, ETag %q; want 200, \"v2\"",
			resp.StatusCode, resp.Header.Get("ETag"))
	}

	// Wildcard and weak validators match too.
	req.Header.Set("If-None-Match", `W/"v2", "zzz"`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("weak-validator GET: status %d, want 304", resp.StatusCode)
	}
}

func TestMaxBodyBytes(t *testing.T) {
	reg := NewRegistry()
	ts := httptest.NewServer(Handler(reg, WithMaxBodyBytes(256)))
	t.Cleanup(ts.Close)

	big := mineRequest{Name: "x", Rows: ratioRows(500)}
	var errBody errorBody
	if got := doJSON(t, http.MethodPost, ts.URL+"/v1/rules", big, &errBody); got != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized mine status = %d, want 413", got)
	}
	if !strings.Contains(errBody.Error.Message, "256") {
		t.Errorf("413 envelope missing the limit: %q", errBody.Error.Message)
	}
	if errBody.Error.Code != CodeBodyTooLarge {
		t.Errorf("413 envelope code = %q, want %q", errBody.Error.Code, CodeBodyTooLarge)
	}
	// The cap applies to PUT's streaming Load path as well.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/rules/x",
		bytes.NewReader(bytes.Repeat([]byte(" "), 1024)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized put status = %d, want 413", resp.StatusCode)
	}
	// Small requests still pass.
	if got := doJSON(t, http.MethodPost, ts.URL+"/v1/rules/x/fill",
		fillRequest{Record: []float64{1, 2}}, nil); got != http.StatusNotFound {
		t.Errorf("small body under cap status = %d, want 404 (no model)", got)
	}
}

func TestVersionsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	mineModel(t, ts, "sales")
	reMineModel(t, ts, "sales")

	var out versionsResponse
	if got := doJSON(t, http.MethodGet, ts.URL+"/v1/rules/sales/versions", nil, &out); got != http.StatusOK {
		t.Fatalf("versions status = %d", got)
	}
	if out.Name != "sales" || out.Head != 2 || len(out.Versions) != 2 {
		t.Fatalf("versions = %+v", out)
	}
	if out.Versions[0].Version != 1 || out.Versions[0].Head ||
		out.Versions[1].Version != 2 || !out.Versions[1].Head {
		t.Errorf("version flags wrong: %+v", out.Versions)
	}
	if got := doJSON(t, http.MethodGet, ts.URL+"/v1/rules/nope/versions", nil, nil); got != http.StatusNotFound {
		t.Errorf("unknown model versions status = %d", got)
	}
}

func TestRollbackEndpoint(t *testing.T) {
	ts := newTestServer(t)
	mineModel(t, ts, "sales")   // v1: butter = 2×bread
	reMineModel(t, ts, "sales") // v2: butter = 3×bread

	var sum modelSummary
	if got := doJSON(t, http.MethodPost, ts.URL+"/v1/rules/sales/rollback",
		rollbackRequest{Version: 1}, &sum); got != http.StatusOK {
		t.Fatalf("rollback status = %d", got)
	}
	if sum.Version != 3 {
		t.Errorf("rollback head = v%d, want v3", sum.Version)
	}
	// The head must now behave like v1 again.
	var out forecastResponse
	if got := doJSON(t, http.MethodPost, ts.URL+"/v1/rules/sales/forecast", forecastRequest{
		Given: map[int]float64{0: 3}, Target: 1,
	}, &out); got != http.StatusOK {
		t.Fatalf("forecast after rollback status = %d", got)
	}
	if math.Abs(out.Value-6) > 0.2 {
		t.Errorf("forecast after rollback = %v, want ≈ 6 (v1 behavior)", out.Value)
	}

	if got := doJSON(t, http.MethodPost, ts.URL+"/v1/rules/sales/rollback",
		rollbackRequest{Version: 42}, nil); got != http.StatusNotFound {
		t.Errorf("rollback to unknown version status = %d", got)
	}
	if got := doJSON(t, http.MethodPost, ts.URL+"/v1/rules/nope/rollback",
		rollbackRequest{Version: 1}, nil); got != http.StatusNotFound {
		t.Errorf("rollback of unknown model status = %d", got)
	}
	if got := doJSON(t, http.MethodPost, ts.URL+"/v1/rules/sales/rollback",
		rollbackRequest{}, nil); got != http.StatusBadRequest {
		t.Errorf("rollback without version status = %d", got)
	}
}

// TestDurableRegistryRestart proves the registry façade over a durable
// store round-trips through a cold reopen with history intact.
func TestDurableRegistryRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(Handler(NewRegistryWithStore(st)))
	mineModel(t, ts, "sales")
	reMineModel(t, ts, "sales")
	resp, err := http.Get(ts.URL + "/v1/rules/sales")
	if err != nil {
		t.Fatal(err)
	}
	before, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	ts.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	ts2 := httptest.NewServer(Handler(NewRegistryWithStore(st2)))
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/v1/rules/sales")
	if err != nil {
		t.Fatal(err)
	}
	after, _ := io.ReadAll(resp.Body)
	etag := resp.Header.Get("ETag")
	resp.Body.Close()
	if !bytes.Equal(before, after) {
		t.Error("served Rules JSON changed across restart")
	}
	if etag != `"v2"` {
		t.Errorf("ETag after restart = %q, want \"v2\"", etag)
	}
	var vers versionsResponse
	if got := doJSON(t, http.MethodGet, ts2.URL+"/v1/rules/sales/versions", nil, &vers); got != http.StatusOK {
		t.Fatalf("versions after restart status = %d", got)
	}
	if vers.Head != 2 || len(vers.Versions) != 2 {
		t.Errorf("history after restart = %+v", vers)
	}
}
