package server

// Live ingest endpoints over internal/online. POST
// /v1/rules/{name}/ingest follows the batch streaming conventions
// (batch.go): NDJSON or a JSON array in, one NDJSON line out per row,
// full-duplex with rolling deadlines, status 200 committed before the
// first row. Each input line is a row — either a bare array
// ([1.5, 3.0]) or {"row": [...]} — answered by an ack line
// {"index": i, "count": n} or an error line in its slot; the stream
// ends with a {"done": {...}} summary. Unlike batch inference, rows are
// folded into the stream sequentially (order is state here, not just
// output framing). Re-mining and GE-gated promotion run behind the
// scenes per the manager's triggers; GET /v1/rules/{name}/stream shows
// the live accumulator and gate counters, DELETE drops it.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ratiorules/internal/online"
)

// ingestAck is the per-row success line of POST ingest.
type ingestAck struct {
	Index int `json:"index"`
	Count int `json:"count"` // stream row total after this row
}

// ingestDone is the final summary line of POST ingest.
type ingestDone struct {
	Rows     int `json:"rows"`     // input lines seen
	Accepted int `json:"accepted"` // rows folded into the stream
	Errors   int `json:"errors"`   // rows answered with an error line
	Count    int `json:"count"`    // stream row total at end of request
}

// ingestDoneLine frames the summary so clients can tell it from acks.
type ingestDoneLine struct {
	Done ingestDone `json:"done"`
}

// queryDecay parses the optional ?decay=D parameter. ok=false means
// the request was already answered with a 400.
func queryDecay(w http.ResponseWriter, req *http.Request) (decay float64, explicit, ok bool) {
	raw := req.URL.Query().Get("decay")
	if raw == "" {
		return 0, false, true
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || v < 0 || v >= 1 {
		writeErr(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("invalid decay %q: want a number in [0, 1)", raw))
		return 0, false, false
	}
	return v, true, true
}

// decodeIngestRow parses one input line: a bare JSON array of numbers,
// or an object with a "row" field.
func decodeIngestRow(raw json.RawMessage) ([]float64, error) {
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) > 0 && trimmed[0] == '{' {
		var obj struct {
			Row []float64 `json:"row"`
		}
		if err := json.Unmarshal(trimmed, &obj); err != nil {
			return nil, fmt.Errorf("%w: %v", errBadRow, err)
		}
		if obj.Row == nil {
			return nil, fmt.Errorf("%w: missing \"row\"", errBadRow)
		}
		return obj.Row, nil
	}
	var row []float64
	if err := json.Unmarshal(trimmed, &row); err != nil {
		return nil, fmt.Errorf("%w: %v", errBadRow, err)
	}
	return row, nil
}

// ingest streams rows into a model's live accumulator. The first row
// of a new stream fixes its width; a ?decay=D on stream creation sets
// its exponential decay, and later requests naming a different decay
// answer 409 conflict (omit the parameter to join whatever runs).
// shedDrainSlack replaces the rolling deadline once a stream has shed:
// just enough for the done line to flush and the connection to wind
// down. Without this, a rate-limited client could keep trickling rows
// and have each 256-row extend() push the deadline 5 minutes out —
// holding a connection (and its quota slot) open indefinitely while
// every row is refused.
const shedDrainSlack = 5 * time.Second

func (s *service) ingest(w http.ResponseWriter, req *http.Request) {
	name, key, ok := s.modelRef(w, req)
	if !ok {
		return
	}
	if name == "" {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, errors.New("missing model name"))
		return
	}
	decay, explicit, ok := queryDecay(w, req)
	if !ok {
		return
	}
	if s.cluster != nil {
		s.ingestClustered(w, req, key, decay, explicit)
		return
	}
	st, err := s.online.Stream(key, decay, explicit)
	if err != nil {
		if errors.Is(err, online.ErrDecayConflict) {
			writeErr(w, http.StatusConflict, CodeConflict, err)
			return
		}
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}

	// Same connection discipline as serveBatch: full duplex so acks
	// flow while the client is still sending, deadlines rolled forward
	// while the stream makes progress.
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()
	extend := func() {
		t := time.Now().Add(batchDeadlineSlack)
		_ = rc.SetReadDeadline(t)
		_ = rc.SetWriteDeadline(t)
	}
	extend()

	src := batchSource(req)
	ctx := req.Context()
	tn := tenantFrom(req)
	gate := s.admission.RowGate(tn, false)
	defer gate.Close()
	w.Header().Set("Content-Type", ndjsonContentType)
	w.WriteHeader(http.StatusOK)
	lw := newLineWriter(w)
	defer lw.release()

	var done ingestDone
	shed := false
	for index := 0; ; index++ {
		raw, rowErr, more := src()
		if !more || ctx.Err() != nil {
			break
		}
		if index%256 == 0 {
			extend()
		}
		done.Rows++
		var row []float64
		if rowErr == nil {
			row, rowErr = decodeIngestRow(raw)
		}
		if rowErr == nil {
			// The row gate (tenant row bucket) and the fold slot (bounded
			// per-model admission queue) both shed by terminating the
			// stream: the client gets one error line naming the limit and
			// the Retry-After, then the done summary — continuing to read
			// and refuse rows one by one would just burn both sides' CPU.
			if rowErr = gate.Take(ctx); rowErr != nil {
				done.Errors++
				shed = true
				lw.emitErr(index, rowErr)
				break
			}
			var releaseSlot func()
			if releaseSlot, rowErr = s.admission.IngestSlot(ctx, tn, key); rowErr != nil {
				done.Errors++
				shed = true
				lw.emitErr(index, rowErr)
				break
			}
			var count int
			count, rowErr = st.Push(ctx, row)
			releaseSlot()
			if rowErr == nil {
				done.Accepted++
				done.Count = count
				if !lw.emit(ingestAck{Index: index, Count: count}) {
					return
				}
				continue
			}
		}
		done.Errors++
		if !lw.emitErr(index, rowErr) {
			return
		}
	}
	if shed {
		// Stop rolling the generous deadline forward: give the done line
		// a short window to flush, then let the connection die.
		t := time.Now().Add(shedDrainSlack)
		_ = rc.SetReadDeadline(t)
		_ = rc.SetWriteDeadline(t)
	}
	s.logger.Info("rows ingested",
		"model", key, "rows", done.Rows, "accepted", done.Accepted,
		"errors", done.Errors, "count", done.Count)
	lw.emit(ingestDoneLine{Done: done})
}

// ingestClustered serves POST ingest when the server fronts a sharded
// cluster: rows go into a fan-out session that hash-shards them across
// worker nodes, and the per-row NDJSON response is reassembled from the
// session's in-order chunk acks. The response contract is identical to
// the single-node path — acks and error lines in input order, one per
// row, then the done summary — so clients cannot tell how many machines
// are behind the endpoint.
func (s *service) ingestClustered(w http.ResponseWriter, req *http.Request, name string, decay float64, explicit bool) {
	sess, err := s.cluster.Ingest(req.Context(), name, decay, explicit)
	if err != nil {
		if errors.Is(err, online.ErrDecayConflict) {
			writeErr(w, http.StatusConflict, CodeConflict, err)
			return
		}
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}

	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()
	extend := func() {
		t := time.Now().Add(batchDeadlineSlack)
		_ = rc.SetReadDeadline(t)
		_ = rc.SetWriteDeadline(t)
	}
	extend()

	src := batchSource(req)
	ctx := req.Context()
	w.Header().Set("Content-Type", ndjsonContentType)
	w.WriteHeader(http.StatusOK)
	lw := newLineWriter(w)
	defer lw.release()

	// The ack drainer is the only goroutine writing the response while
	// the request loop below feeds the session; session emission order is
	// input order, so per-row lines come out exactly as the single-node
	// path would produce them. Chunk acks cover a run of rows: the run's
	// final count minus its length recovers each row's running total.
	var accepted, errs int
	var lastCount int64
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		index := 0
		for ev := range sess.Acks() {
			if ev.Err == nil {
				base := ev.Count - int64(ev.Rows)
				for j := 0; j < ev.Rows; j++ {
					if index%256 == 0 {
						extend()
					}
					accepted++
					lastCount = base + int64(j) + 1
					if !lw.emit(ingestAck{Index: index, Count: int(lastCount)}) {
						return
					}
					index++
				}
				continue
			}
			for j := 0; j < ev.Rows; j++ {
				errs++
				if !lw.emitErr(index, ev.Err) {
					return
				}
				index++
			}
		}
	}()

	gate := s.admission.RowGate(tenantFrom(req), false)
	defer gate.Close()
	rows := 0
	shed := false
	for {
		raw, rowErr, more := src()
		if !more || ctx.Err() != nil {
			break
		}
		if rows%256 == 0 {
			extend()
		}
		rows++
		var row []float64
		if rowErr == nil {
			row, rowErr = decodeIngestRow(raw)
		}
		if rowErr == nil {
			if rowErr = gate.Take(ctx); rowErr != nil {
				// Shed terminates the stream, same as the single-node
				// path: the error line surfaces through the ack drainer
				// in input order, then the session closes.
				sess.PushError(rowErr)
				shed = true
				break
			}
		}
		if rowErr != nil {
			sess.PushError(rowErr)
			continue
		}
		if err := sess.Push(row); err != nil {
			// Session-fatal: no healthy workers remain. The rows already
			// dispatched surface as error events on Acks; stop feeding.
			s.logger.Error("cluster ingest aborted", "model", name, "error", err)
			break
		}
	}
	closeErr := sess.Close()
	<-drained
	if shed {
		t := time.Now().Add(shedDrainSlack)
		_ = rc.SetReadDeadline(t)
		_ = rc.SetWriteDeadline(t)
	}
	if closeErr != nil {
		s.logger.Error("cluster ingest session closed with error",
			"model", name, "error", closeErr)
	}
	done := ingestDone{Rows: rows, Accepted: accepted, Errors: errs, Count: int(lastCount)}
	s.logger.Info("rows ingested via cluster",
		"model", name, "rows", done.Rows, "accepted", done.Accepted,
		"errors", done.Errors, "count", done.Count)
	lw.emit(ingestDoneLine{Done: done})
}

// streamStatus reports a model's live stream (GET .../stream): row and
// reservoir counts, republish/promotion/rejection tallies, and the GE
// values of the last gate decision.
func (s *service) streamStatus(w http.ResponseWriter, req *http.Request) {
	name, key, ok := s.modelRef(w, req)
	if !ok {
		return
	}
	status, ok := s.online.Status(key)
	if !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound,
			fmt.Errorf("model %q has no live stream", name))
		return
	}
	status.Name = name // the tenant's view, not the scoped store key
	writeJSON(w, http.StatusOK, status)
}

// streamDrop discards a model's live stream and its checkpoint
// (DELETE .../stream). Published model versions are untouched.
func (s *service) streamDrop(w http.ResponseWriter, req *http.Request) {
	name, key, ok := s.modelRef(w, req)
	if !ok {
		return
	}
	if !s.online.Drop(key) {
		writeErr(w, http.StatusNotFound, CodeNotFound,
			fmt.Errorf("model %q has no live stream", name))
		return
	}
	s.admission.DropIngestQueue(key)
	s.logger.Info("stream dropped", "model", key)
	w.WriteHeader(http.StatusNoContent)
}
