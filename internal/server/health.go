package server

// Probes and model-quality surfacing. Liveness (/healthz) answers "is
// the process up"; readiness (/readyz) answers "should traffic come
// here", keying off the store wedge state and the alert engine; and
// GET /v1/rules/{name}/health exposes the online monitor's per-model
// quality picture (current/baseline GE, trend, firing alerts) with the
// same ?version= and ETag semantics as the model GET. GET /debug/alerts
// dumps every alert rule and state, shaped like /debug/traces.

import (
	"fmt"
	"net/http"

	"ratiorules/internal/admission"
	"ratiorules/internal/obs/alert"
	"ratiorules/internal/online"
	"ratiorules/internal/replica"
)

// The online manager's optional store capabilities must keep being
// satisfied by the registry: auto-rollback and version GE annotations
// silently disable otherwise.
var (
	_ online.RollbackStore = (*Registry)(nil)
	_ online.GEAnnotator   = (*Registry)(nil)
)

// healthz answers liveness probes: the process is up and serving. No
// dependency state — a wedged store or a firing alert must not make an
// orchestrator restart the process (that is readyz's distinction).
func (s *service) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// readyzResponse is the GET /readyz success body.
type readyzResponse struct {
	Status       string            `json:"status"` // "ready" | "degraded"
	Role         string            `json:"role"`   // "leader" | "follower" | "coordinator"
	Models       int               `json:"models"`
	FiringAlerts int               `json:"firing_alerts"`
	Cluster      *readyzCluster    `json:"cluster,omitempty"`   // coordinator mode only
	Replica      *replica.Status   `json:"replica,omitempty"`   // follower mode only
	Admission    *admission.Health `json:"admission,omitempty"` // WithAdmission only
}

// readyzCluster summarizes cluster health in the readiness body.
type readyzCluster struct {
	Members  int  `json:"members"`
	Healthy  int  `json:"healthy"`
	Degraded bool `json:"degraded"` // last merge fell back to retained shards
}

// readyz answers readiness probes. A wedged store (mutations failing
// with store.ErrFailed) answers 503 with the v1 error envelope so load
// balancers drain the instance; firing quality alerts mark the body
// "degraded" but keep the instance routable — the served models still
// answer queries, they are just suspected stale. In coordinator mode a
// degraded cluster (dead workers, merges running on retained shard
// snapshots) likewise marks the body degraded without failing the
// probe: serving and single-path ingest still work. In follower mode
// the replica's lag decides: staleness beyond -max-replica-lag answers
// 503 replica_lagging with a Retry-After so load balancers drain the
// replica until it catches up; behind-but-within-bound reports
// "degraded" and keeps serving (reads are consistent, just stale).
func (s *service) readyz(w http.ResponseWriter, _ *http.Request) {
	if err := s.failed(); err != nil {
		writeErr(w, http.StatusServiceUnavailable, CodeStoreFailed,
			fmt.Errorf("store wedged: %w", err))
		return
	}
	if s.follower != nil {
		rs := s.follower.Status()
		if rs.LagSeconds > s.maxReplicaLag.Seconds() {
			w.Header().Set("Retry-After", replicaRetryAfter)
			writeErr(w, http.StatusServiceUnavailable, CodeReplicaLagging,
				fmt.Errorf("replica %.1fs behind leader %s (max %s): applied seq %d, leader seq %d",
					rs.LagSeconds, rs.Leader, s.maxReplicaLag, rs.AppliedSeq, rs.LeaderSeq))
			return
		}
	}
	_, firing := s.online.Alerts()
	status := "ready"
	if firing > 0 {
		status = "degraded"
	}
	resp := readyzResponse{
		Role:         s.role.String(),
		Models:       len(s.reg.Names()),
		FiringAlerts: firing,
	}
	if s.cluster != nil {
		cs := s.cluster.Status()
		resp.Cluster = &readyzCluster{
			Members:  len(cs.Members),
			Healthy:  cs.Healthy,
			Degraded: cs.Degraded,
		}
		if cs.Degraded || cs.Healthy < len(cs.Members) {
			status = "degraded"
		}
	}
	if s.follower != nil {
		rs := s.follower.Status()
		resp.Replica = &rs
		if !rs.Synced {
			status = "degraded"
		}
	}
	if s.admission != nil {
		ah := s.admission.Health()
		resp.Admission = &ah
		// A failing tenant-file reload serves the last-good registry:
		// degraded, not unready (see admission.Health).
		if ah.ReloadError != "" {
			status = "degraded"
		}
	}
	resp.Status = status
	writeJSON(w, http.StatusOK, resp)
}

// replicaRetryAfter is the Retry-After (seconds) on 503 replica_lagging
// responses: long enough for a reconnect + catch-up round, short enough
// that a recovered replica takes traffic again promptly.
const replicaRetryAfter = "5"

// modelHealthResponse is the GET /v1/rules/{name}/health body: the
// online monitor's quality summary plus the pinned version's stored GE
// annotation. Models without a live stream report monitor zero values
// (no samples, no alerts) — the model still serves, it just is not
// being measured.
type modelHealthResponse struct {
	online.ModelHealth
	// Version is the revision this response is pinned to (the head
	// unless ?version=N), matching the ETag.
	Version int `json:"version"`
	// VersionGE is the store's GE annotation for that revision, when
	// the monitor recorded one.
	VersionGE *float64 `json:"version_ge,omitempty"`
}

// modelHealth serves a model's quality picture. Version pinning and
// ETag/If-None-Match behave exactly like the model GET: the ETag is
// the pinned (or head) version, so health pollers can skip the body
// while the served revision is unchanged.
func (s *service) modelHealth(w http.ResponseWriter, req *http.Request) {
	name, key, ok := s.modelRef(w, req)
	if !ok {
		return
	}
	version, pinned, ok := queryVersion(w, req)
	if !ok {
		return
	}
	_, headVersion, exists := s.reg.GetWithVersion(key)
	if !exists {
		writeErr(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("model %q not found", name))
		return
	}
	if pinned {
		if _, ok := s.reg.GetVersion(key, version); !ok {
			writeErr(w, http.StatusNotFound, CodeVersionNotFound,
				fmt.Errorf("model %q has no retained version %d", name, version))
			return
		}
	} else {
		version = headVersion
	}
	etag := etagFor(version)
	w.Header().Set("ETag", etag)
	if etagMatch(req.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}

	h, live := s.online.Health(key)
	if !live {
		h = online.ModelHealth{Status: "ok"}
	}
	// The response names the model as the tenant addressed it, not by
	// its internal scoped key.
	h.Name = name
	h.ServingVersion = headVersion
	if h.Alerts == nil {
		h.Alerts = []alert.Status{}
	}
	resp := modelHealthResponse{ModelHealth: h, Version: version}
	if ge, ok := s.reg.VersionGE(key, version); ok {
		resp.VersionGE = &ge
	}
	writeJSON(w, http.StatusOK, resp)
}

// alertsResponse is the GET /debug/alerts body: the configured rules
// and every evaluated (rule, target) state, same shape idiom as
// /debug/traces (occupancy header + entries).
type alertsResponse struct {
	Firing int            `json:"firing"`
	Rules  []alert.Rule   `json:"rules"`
	States []alert.Status `json:"states"`
}

// debugAlerts dumps the alert engine: every configured rule and the
// state of every (rule, target) pair that has been evaluated.
func (s *service) debugAlerts(w http.ResponseWriter, _ *http.Request) {
	states, firing := s.online.Alerts()
	rules := s.online.AlertRules()
	if states == nil {
		states = []alert.Status{}
	}
	if rules == nil {
		rules = []alert.Rule{}
	}
	writeJSON(w, http.StatusOK, alertsResponse{Firing: firing, Rules: rules, States: states})
}
