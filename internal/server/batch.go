package server

// Streaming batch inference endpoints. Each POST
// /v1/rules/{name}/batch/{fill,forecast,outliers} accepts either a
// JSON array of row objects or NDJSON (one row object per line,
// Content-Type application/x-ndjson) and answers NDJSON: one result
// line per input row, in input order, flushed as it is produced. A row
// that fails — malformed JSON, bad hole indices, wrong width — yields
// an {"index": i, "error": {...}} line in its slot and the batch keeps
// going; the HTTP status stays 200 because it is committed before the
// first row is solved. Rows flow through core's bounded worker pool
// (WithBatchWorkers) and the hole-pattern plan cache, so memory is
// bounded by the pool width, not the batch size, and repeated hole
// patterns pay their factorization once.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ratiorules/internal/core"
	"ratiorules/internal/obs"
)

// ndjsonContentType is the media type of batch responses (and of batch
// requests that opt into line framing).
const ndjsonContentType = "application/x-ndjson"

// maxBatchLineBytes caps one NDJSON input line. The batch body as a
// whole is uncapped (it streams), but a single row has no business
// being this large.
const maxBatchLineBytes = 4 << 20

// batchDeadlineSlack is how far the connection deadlines are pushed
// ahead of a progressing batch (see serveBatch).
const batchDeadlineSlack = 5 * time.Minute

// errBadRow marks batch rows that failed framing or decoding; errStatus
// maps it to bad_request so the per-row error line carries that code.
var errBadRow = errors.New("malformed batch row")

// batchMetrics is the per-batch accounting registered by Handler.
type batchMetrics struct {
	rows *obs.CounterVec   // op, result
	size *obs.HistogramVec // op
}

func newBatchMetrics(reg *obs.Registry) *batchMetrics {
	return &batchMetrics{
		rows: reg.CounterVec("rr_batch_rows_total",
			"Batch inference rows by operation and per-row result.",
			"op", "result"),
		size: reg.HistogramVec("rr_batch_size_rows",
			"Rows per batch request by operation.",
			[]float64{1, 10, 100, 1_000, 10_000, 100_000}, "op"),
	}
}

// rowSource yields the next raw row of a batch body. more=false ends
// the stream; a non-nil rowErr is a row-shaped failure (the slot is
// preserved as an error line). Sources are not safe for concurrent use.
type rowSource func() (raw json.RawMessage, rowErr error, more bool)

// batchSource picks the body framing: NDJSON when the Content-Type
// says so, JSON array otherwise.
func batchSource(req *http.Request) rowSource {
	if mt, _, err := mime.ParseMediaType(req.Header.Get("Content-Type")); err == nil &&
		strings.Contains(mt, "ndjson") {
		return ndjsonRows(req.Body)
	}
	return arrayRows(req.Body)
}

// ndjsonRows frames the body as one JSON value per line. Blank lines
// are skipped; an unreadable or oversized line ends the stream with a
// final error row (there is no way to resync a broken byte stream).
func ndjsonRows(body interface{ Read([]byte) (int, error) }) rowSource {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64<<10), maxBatchLineBytes)
	done := false
	return func() (json.RawMessage, error, bool) {
		if done {
			return nil, nil, false
		}
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			raw := make(json.RawMessage, len(line))
			copy(raw, line)
			return raw, nil, true
		}
		done = true
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("%w: reading line: %v", errBadRow, err), true
		}
		return nil, nil, false
	}
}

// arrayRows frames the body as a single JSON array, decoded one
// element at a time so the whole batch never sits in memory. Malformed
// framing ends the stream with a final error row.
func arrayRows(body interface{ Read([]byte) (int, error) }) rowSource {
	dec := json.NewDecoder(body)
	started, done := false, false
	return func() (json.RawMessage, error, bool) {
		if done {
			return nil, nil, false
		}
		if !started {
			tok, err := dec.Token()
			if err != nil {
				done = true
				return nil, fmt.Errorf("%w: reading array: %v", errBadRow, err), true
			}
			if d, ok := tok.(json.Delim); !ok || d != '[' {
				done = true
				return nil, fmt.Errorf("%w: batch body must be a JSON array or NDJSON", errBadRow), true
			}
			started = true
		}
		if !dec.More() {
			done = true
			return nil, nil, false
		}
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			done = true
			return nil, fmt.Errorf("%w: decoding array element: %v", errBadRow, err), true
		}
		return raw, nil, true
	}
}

// lineError is the NDJSON result line for a failed row.
type lineError struct {
	Index int       `json:"index"`
	Error errorInfo `json:"error"`
}

// serveBatch wires one batch request end to end: a feeder goroutine
// decodes body rows into jobs, run drives them through core's ordered
// worker pool, and the loop below streams one NDJSON line per result.
// The request context cancels the pipeline if the client goes away.
func serveBatch[J, R any](
	s *service, w http.ResponseWriter, req *http.Request, op string,
	opts core.BatchOptions,
	parse func(raw json.RawMessage, rowErr error) J,
	run func(ctx context.Context, jobs <-chan J, opts core.BatchOptions) <-chan R,
	line func(R) (index int, v any, rowErr error),
) {
	rc := http.NewResponseController(w)
	// Without full duplex the HTTP/1 server drains the whole request
	// body before the first response write, which would defeat
	// streaming (and deadlock a client that waits for early results
	// before sending more rows). Unsupported writers just stay
	// half-duplex.
	_ = rc.EnableFullDuplex()
	// The server's global read/write timeouts cover the whole request,
	// which would sever any batch longer than them. Roll a generous
	// deadline forward as long as the batch makes progress; a fully
	// stalled connection still dies within the slack.
	extend := func() {
		t := time.Now().Add(batchDeadlineSlack)
		_ = rc.SetReadDeadline(t)
		_ = rc.SetWriteDeadline(t)
	}
	extend()
	src := batchSource(req)
	ctx := req.Context()
	gate := s.admission.RowGate(tenantFrom(req), true)
	defer gate.Close()
	// The feeder sets shed when the tenant's batch-row bucket runs dry:
	// the offending row becomes its own error line (rate_limited, in
	// slot), the feeder stops — terminating the stream after in-flight
	// rows drain — and the loop below stops rolling the generous
	// deadline forward so a limited client cannot hold the connection.
	var shed atomic.Bool
	jobs := make(chan J)
	go func() {
		defer close(jobs)
		for {
			raw, rowErr, more := src()
			if !more {
				return
			}
			if rowErr == nil {
				if gateErr := gate.Take(ctx); gateErr != nil {
					shed.Store(true)
					select {
					case jobs <- parse(nil, gateErr):
					case <-ctx.Done():
					}
					return
				}
			}
			select {
			case jobs <- parse(raw, rowErr):
			case <-ctx.Done():
				return
			}
		}
	}()
	results := run(ctx, jobs, opts)
	w.Header().Set("Content-Type", ndjsonContentType)
	w.WriteHeader(http.StatusOK)
	lw := newLineWriter(w)
	defer lw.release()
	rows := 0
	for res := range results {
		if rows%256 == 0 && !shed.Load() {
			extend()
		}
		idx, v, rowErr := line(res)
		rows++
		if rowErr == nil {
			// An unencodable value (e.g. a NaN that leaked into a result)
			// downgrades to a row error rather than corrupting the stream:
			// emit writes nothing on encode failure.
			if lw.emit(v) {
				s.batch.rows.With(op, "ok").Inc()
				continue
			}
			rowErr = fmt.Errorf("encoding result for row %d failed", idx)
		}
		s.batch.rows.With(op, "error").Inc()
		if !lw.emitErr(idx, rowErr) {
			return
		}
	}
	if shed.Load() {
		t := time.Now().Add(shedDrainSlack)
		_ = rc.SetReadDeadline(t)
		_ = rc.SetWriteDeadline(t)
	}
	s.batch.size.With(op).Observe(float64(rows))
}

// batchFillRow is one input row of POST batch/fill.
type batchFillRow struct {
	Record []float64 `json:"record"`
	Holes  []int     `json:"holes"`
}

// batchFillLine is one success line of the batch/fill response.
type batchFillLine struct {
	Index  int       `json:"index"`
	Filled []float64 `json:"filled"`
}

func (s *service) batchFill(w http.ResponseWriter, req *http.Request) {
	rules, ok := s.lookup(w, req)
	if !ok {
		return
	}
	serveBatch(s, w, req, "fill", core.BatchOptions{Workers: s.batchWorkers},
		func(raw json.RawMessage, rowErr error) core.FillJob {
			if rowErr != nil {
				return core.FillJob{Err: rowErr}
			}
			var row batchFillRow
			if err := json.Unmarshal(raw, &row); err != nil {
				return core.FillJob{Err: fmt.Errorf("%w: %v", errBadRow, err)}
			}
			return core.FillJob{Record: row.Record, Holes: row.Holes}
		},
		rules.BatchFill,
		func(r core.FillResult) (int, any, error) {
			if r.Err != nil {
				return r.Index, nil, r.Err
			}
			return r.Index, batchFillLine{Index: r.Index, Filled: r.Filled}, nil
		})
}

// batchForecastRow is one input row of POST batch/forecast.
type batchForecastRow struct {
	Given  map[int]float64 `json:"given"`
	Target int             `json:"target"`
}

// batchForecastLine is one success line of the batch/forecast response.
type batchForecastLine struct {
	Index int     `json:"index"`
	Value float64 `json:"value"`
}

func (s *service) batchForecast(w http.ResponseWriter, req *http.Request) {
	rules, ok := s.lookup(w, req)
	if !ok {
		return
	}
	serveBatch(s, w, req, "forecast", core.BatchOptions{Workers: s.batchWorkers},
		func(raw json.RawMessage, rowErr error) core.ForecastJob {
			if rowErr != nil {
				return core.ForecastJob{Err: rowErr}
			}
			var row batchForecastRow
			if err := json.Unmarshal(raw, &row); err != nil {
				return core.ForecastJob{Err: fmt.Errorf("%w: %v", errBadRow, err)}
			}
			return core.ForecastJob{Given: row.Given, Target: row.Target}
		},
		rules.BatchForecast,
		func(r core.ForecastResult) (int, any, error) {
			if r.Err != nil {
				return r.Index, nil, r.Err
			}
			return r.Index, batchForecastLine{Index: r.Index, Value: r.Value}, nil
		})
}

// batchOutlierRow is one input row of POST batch/outliers. The sigma
// threshold is per-batch, via the ?sigma= query parameter.
type batchOutlierRow struct {
	Record []float64 `json:"record"`
}

// batchOutliersLine is one success line of the batch/outliers response.
type batchOutliersLine struct {
	Index    int                `json:"index"`
	Outliers []core.CellOutlier `json:"outliers"`
}

func (s *service) batchOutliers(w http.ResponseWriter, req *http.Request) {
	rules, ok := s.lookup(w, req)
	if !ok {
		return
	}
	opts := core.BatchOptions{Workers: s.batchWorkers}
	if raw := req.URL.Query().Get("sigma"); raw != "" {
		sigma, err := strconv.ParseFloat(raw, 64)
		if err != nil || sigma <= 0 {
			writeErr(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("invalid sigma %q: want a positive number", raw))
			return
		}
		opts.Sigma = sigma
	}
	serveBatch(s, w, req, "outliers", opts,
		func(raw json.RawMessage, rowErr error) core.OutlierJob {
			if rowErr != nil {
				return core.OutlierJob{Err: rowErr}
			}
			var row batchOutlierRow
			if err := json.Unmarshal(raw, &row); err != nil {
				return core.OutlierJob{Err: fmt.Errorf("%w: %v", errBadRow, err)}
			}
			return core.OutlierJob{Record: row.Record}
		},
		rules.BatchOutliers,
		func(r core.OutlierResult) (int, any, error) {
			if r.Err != nil {
				return r.Index, nil, r.Err
			}
			cells := r.Outliers
			if cells == nil {
				cells = []core.CellOutlier{}
			}
			return r.Index, batchOutliersLine{Index: r.Index, Outliers: cells}, nil
		})
}
