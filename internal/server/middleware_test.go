package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ratiorules/internal/core"
	"ratiorules/internal/matrix"
	"ratiorules/internal/obs"
	"ratiorules/internal/obs/obstest"
)

// newObsServer starts a test server whose HTTP metrics go to a fresh,
// isolated obs registry.
func newObsServer(t *testing.T) (*httptest.Server, *obs.Registry) {
	t.Helper()
	mreg := obs.NewRegistry()
	ts := httptest.NewServer(Handler(NewRegistry(), WithObs(mreg)))
	t.Cleanup(ts.Close)
	return ts, mreg
}

func do(t *testing.T, method, url, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// TestMiddlewareCounts is the table-driven middleware test: each
// request must move exactly one request counter (route, method, status
// class) and the route's latency histogram.
func TestMiddlewareCounts(t *testing.T) {
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		route      string
		class      string
	}{
		{"healthz probe", "GET", "/healthz", "", 200, "/healthz", "2xx"},
		{"list models", "GET", "/v1/rules", "", 200, "/v1/rules", "2xx"},
		{"missing model", "GET", "/v1/rules/none", "", 404, "/v1/rules/{name}", "4xx"},
		{"bad mine body", "POST", "/v1/rules", "{not json", 400, "/v1/rules", "4xx"},
		{"delete missing", "DELETE", "/v1/rules/none", "", 404, "/v1/rules/{name}", "4xx"},
		{"fill on missing model", "POST", "/v1/rules/none/fill", "{}", 404, "/v1/rules/{name}/fill", "4xx"},
		{"wrong method on fill", "GET", "/v1/rules/x/fill", "", 405, "/v1/rules/{name}/fill", "4xx"},
		{"wrong method on model", "PATCH", "/v1/rules/x", "", 405, "/v1/rules/{name}", "4xx"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts, mreg := newObsServer(t)
			resp := do(t, tc.method, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			snap := mreg.Snapshot()
			ctrKey := obs.SampleKey("rr_http_requests_total", map[string]string{
				"route": tc.route, "method": tc.method, "status": tc.class,
			})
			if got := snap[ctrKey]; got != 1 {
				t.Errorf("%s = %v, want 1 (snapshot %v)", ctrKey, got, snap)
			}
			histKey := obs.SampleKey("rr_http_request_seconds_count",
				map[string]string{"route": tc.route})
			if got := snap[histKey]; got != 1 {
				t.Errorf("%s = %v, want 1", histKey, got)
			}
			if got := snap["rr_http_in_flight_requests"]; got != 0 {
				t.Errorf("in-flight after request = %v, want 0", got)
			}
		})
	}
}

// TestMethodNotAllowed checks the 405 contract: Allow header, JSON
// error envelope, and a warn-level log line.
func TestMethodNotAllowed(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelWarn}))
	ts := httptest.NewServer(Handler(NewRegistry(), WithObs(obs.NewRegistry()), WithLogger(logger)))
	t.Cleanup(ts.Close)

	cases := []struct {
		method, path, allow string
	}{
		{"GET", "/v1/rules/x/fill", "POST"},
		{"DELETE", "/v1/rules/x/forecast", "POST"},
		{"PUT", "/v1/rules/x/whatif", "POST"},
		{"GET", "/v1/rules/x/outliers", "POST"},
		{"PATCH", "/v1/rules/x", "GET, PUT, DELETE"},
		{"PATCH", "/v1/rules", "GET, POST"},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var body errorBody
		if err := jsonDecode(resp.Body, &body); err != nil {
			t.Errorf("%s %s: body not the JSON error envelope: %v", tc.method, tc.path, err)
		}
		if body.Error.Code != CodeMethodNotAllowed {
			t.Errorf("%s %s envelope code = %q, want %q", tc.method, tc.path, body.Error.Code, CodeMethodNotAllowed)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s status = %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != tc.allow {
			t.Errorf("%s %s Allow = %q, want %q", tc.method, tc.path, got, tc.allow)
		}
	}
	if !strings.Contains(logBuf.String(), "request rejected") {
		t.Errorf("405s were not logged at warn: %q", logBuf.String())
	}
}

func jsonDecode(r io.Reader, v any) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	if !bytes.HasPrefix(bytes.TrimSpace(data), []byte("{")) {
		return fmt.Errorf("not a JSON object: %q", data)
	}
	return json.Unmarshal(data, v)
}

// TestHealthzProbe checks the liveness endpoint through an isolated
// metrics registry (the richer body assertions live in server_test.go).
func TestHealthzProbe(t *testing.T) {
	ts, mreg := newObsServer(t)
	resp := do(t, "GET", ts.URL+"/healthz", "")
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	key := obs.SampleKey("rr_http_requests_total",
		map[string]string{"route": "/healthz", "method": "GET", "status": "2xx"})
	if got := mreg.Snapshot()[key]; got != 1 {
		t.Fatalf("healthz counter = %v, want 1", got)
	}
}

// TestMetricsExposition scrapes /metrics and validates the whole body
// is well-formed Prometheus text format with the expected families.
func TestMetricsExposition(t *testing.T) {
	ts, _ := newObsServer(t)
	do(t, "GET", ts.URL+"/healthz", "")
	do(t, "GET", ts.URL+"/v1/rules/none", "")

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != obs.ContentType {
		t.Fatalf("content type = %q, want %q", got, obs.ContentType)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	obstest.ValidateExposition(t, body)
	for _, want := range []string{
		`rr_http_requests_total{route="/healthz",method="GET",status="2xx"} 1`,
		`rr_http_requests_total{route="/v1/rules/{name}",method="GET",status="4xx"} 1`,
		`rr_http_request_seconds_bucket{route="/healthz",le="+Inf"} 1`,
		"# TYPE rr_http_request_seconds histogram",
		"# TYPE rr_http_requests_total counter",
		"rr_http_in_flight_requests",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q in:\n%s", want, body)
		}
	}
}

// TestEndToEndMetrics is the acceptance flow: mine a model over HTTP,
// query it (fill, forecast, outliers), then scrape /metrics and assert
// the HTTP counters, miner phase histograms and op counters all moved.
// It uses the default obs registry because the miner records there.
func TestEndToEndMetrics(t *testing.T) {
	before := obs.Default().Snapshot()
	ts := httptest.NewServer(Handler(NewRegistry()))
	t.Cleanup(ts.Close)

	mine := do(t, "POST", ts.URL+"/v1/rules",
		`{"name":"sales","rows":[[1,2],[2,4.1],[3,5.9],[4,8.2],[5,9.8]]}`)
	if mine.StatusCode != 201 {
		t.Fatalf("mine status = %d", mine.StatusCode)
	}
	if got := do(t, "POST", ts.URL+"/v1/rules/sales/fill",
		`{"record":[4,0],"holes":[1]}`).StatusCode; got != 200 {
		t.Fatalf("fill status = %d", got)
	}
	if got := do(t, "POST", ts.URL+"/v1/rules/sales/forecast",
		`{"given":{"0":2.5},"target":1}`).StatusCode; got != 200 {
		t.Fatalf("forecast status = %d", got)
	}
	if got := do(t, "POST", ts.URL+"/v1/rules/sales/outliers",
		`{"rows":[[1,2],[2,40]]}`).StatusCode; got != 200 {
		t.Fatalf("outliers status = %d", got)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	obstest.ValidateExposition(t, body)

	after := obs.Default().Snapshot()
	moved := func(key string, by float64) {
		t.Helper()
		if delta := after[key] - before[key]; delta < by {
			t.Errorf("%s moved by %v, want >= %v", key, delta, by)
		}
	}
	moved(`rr_miner_phase_seconds_count{phase="scan"}`, 1)
	moved(`rr_miner_phase_seconds_count{phase="covariance"}`, 1)
	moved(`rr_miner_phase_seconds_count{phase="eigensolve"}`, 1)
	moved(`rr_miner_mines_total{result="ok"}`, 1)
	moved(`rr_miner_rows_total`, 5)
	moved(`rr_ops_total{op="fill",result="ok"}`, 1)
	moved(`rr_ops_total{op="forecast",result="ok"}`, 1)
	moved(`rr_ops_total{op="outliers",result="ok"}`, 1)
	moved(`rr_http_requests_total{method="POST",route="/v1/rules",status="2xx"}`, 1)
	moved(`rr_http_requests_total{method="POST",route="/v1/rules/{name}/fill",status="2xx"}`, 1)
	moved(`rr_http_request_seconds_count{route="/v1/rules/{name}/forecast"}`, 1)

	for _, want := range []string{
		"# TYPE rr_miner_phase_seconds histogram",
		`rr_miner_phase_seconds_bucket{phase="scan",le="+Inf"}`,
		`rr_ops_total{op="fill",result="ok"}`,
		"rr_miner_rows_per_second",
		"rr_http_requests_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestModelRegistryRace hammers the model Registry from many
// goroutines — the dedicated -race stress for the existing store.
func TestModelRegistryRace(t *testing.T) {
	miner, err := core.NewMiner()
	if err != nil {
		t.Fatal(err)
	}
	x, err := matrix.FromRows([][]float64{{1, 2}, {2, 4}, {3, 6.1}})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := miner.MineMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("m%d", w%4)
			for i := 0; i < 500; i++ {
				reg.Put(context.Background(), name, rules)
				reg.Get(name)
				reg.Names()
				if i%10 == 0 {
					reg.Delete(context.Background(), name)
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestMiddlewareConcurrentScrape drives 8 recording goroutines through
// live HTTP requests while 2 goroutines scrape /metrics — the -race
// stress for the middleware + registry pipeline.
func TestMiddlewareConcurrentScrape(t *testing.T) {
	ts, mreg := newObsServer(t)
	const (
		writers  = 8
		requests = 50
	)
	done := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					return // server closing
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				resp, err := http.Get(ts.URL + "/healthz")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(done)
	scrapeWG.Wait()

	snap := mreg.Snapshot()
	key := obs.SampleKey("rr_http_requests_total",
		map[string]string{"route": "/healthz", "method": "GET", "status": "2xx"})
	if got := snap[key]; got != writers*requests {
		t.Fatalf("%s = %v, want %d", key, got, writers*requests)
	}
}
