package server

// Coordinator-mode contract tests: the public ingest surface must be
// byte-shape identical whether rows fold locally or fan out across a
// sharded cluster — per-row NDJSON acks and error lines in input order,
// a done summary, the same 409 on decay conflicts — and the cluster
// admin routes and /readyz cluster block must behave as documented.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ratiorules/internal/cluster"
	"ratiorules/internal/obs"
	"ratiorules/internal/online"
)

// clusterTestServer is a coordinator-mode API server over n in-process
// worker nodes.
type clusterTestServer struct {
	ts    *httptest.Server
	coord *cluster.Coordinator
	mgr   *online.Manager
}

func newClusterTestServer(t *testing.T, n int) *clusterTestServer {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		w := cluster.NewWorker()
		ws := httptest.NewServer(w.Handler())
		t.Cleanup(ws.Close)
		urls[i] = ws.URL
	}
	reg := NewRegistry()
	mgr, err := online.NewManager(reg, online.Config{
		Seed: 7,
		// Merges are driven explicitly via the republish route; park the
		// row-count trigger.
		RepublishRows: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := cluster.New(cluster.Config{
		Workers:   urls,
		Manager:   mgr,
		ChunkRows: 16,
		Metrics:   obs.NewRegistry(),
		// Background loops parked: tests drive merges synchronously.
		PullEvery:     time.Hour,
		HealthEvery:   time.Hour,
		RepublishRows: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.Start()
	t.Cleanup(func() { _ = coord.Close(context.Background()) })
	ts := httptest.NewServer(Handler(reg,
		WithObs(obs.NewRegistry()), WithOnline(mgr), WithCluster(coord)))
	t.Cleanup(ts.Close)
	return &clusterTestServer{ts: ts, coord: coord, mgr: mgr}
}

// clusterIngestLine is the union shape of one clustered ingest response line.
type clusterIngestLine struct {
	Index *int        `json:"index"`
	Count *int        `json:"count"`
	Error *errorInfo  `json:"error"`
	Done  *ingestDone `json:"done"`
}

func TestClusterIngestContract(t *testing.T) {
	cs := newClusterTestServer(t, 3)

	// 100 good rows with two bad rows interleaved: a non-array line at
	// slot 40 and a wrong-width row at slot 70.
	var b strings.Builder
	for i := 0; i < 102; i++ {
		switch i {
		case 40:
			b.WriteString("{\"nope\":true}\n")
		case 70:
			b.WriteString("[1,2,3]\n")
		default:
			fmt.Fprintf(&b, "[%d,%d]\n", i, 2*i)
		}
	}
	resp := doRaw(t, "POST", cs.ts.URL+"/v1/rules/m/ingest", ndjsonContentType, b.String())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ndjsonContentType {
		t.Fatalf("Content-Type = %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	var lines []clusterIngestLine
	for sc.Scan() {
		var ln clusterIngestLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatalf("line %d not JSON: %v: %s", len(lines), err, sc.Text())
		}
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 103 {
		t.Fatalf("got %d lines, want 102 rows + done", len(lines))
	}

	// Per-row lines must land in input order with the right shapes:
	// error lines in slots 40 and 70, acks with strictly increasing
	// counts everywhere else.
	wantCount := 0
	for i, ln := range lines[:102] {
		if ln.Index == nil || *ln.Index != i {
			t.Fatalf("line %d: index = %v, want %d", i, ln.Index, i)
		}
		if i == 40 || i == 70 {
			if ln.Error == nil || ln.Error.Code != CodeBadRequest {
				t.Fatalf("line %d: want bad_request error, got %+v", i, ln)
			}
			continue
		}
		wantCount++
		if ln.Count == nil || *ln.Count != wantCount {
			t.Fatalf("line %d: count = %v, want %d", i, ln.Count, wantCount)
		}
	}
	done := lines[102].Done
	if done == nil {
		t.Fatalf("last line is not the done summary: %+v", lines[102])
	}
	if done.Rows != 102 || done.Accepted != 100 || done.Errors != 2 || done.Count != 100 {
		t.Fatalf("done = %+v", *done)
	}

	// Force the merge-republish cycle and check the model came out the
	// single publish path with a version.
	var sum modelSummary
	status := doJSON(t, "POST", cs.ts.URL+"/v1/cluster/republish/m", nil, &sum)
	if status != http.StatusOK {
		t.Fatalf("republish status = %d", status)
	}
	if sum.TrainedRows != 100 || sum.Version < 1 {
		t.Fatalf("republished summary = %+v", sum)
	}

	// The decay-conflict contract carries over: the stream above runs
	// decay 0, an explicit different decay must 409.
	resp2 := doRaw(t, "POST", cs.ts.URL+"/v1/rules/m/ingest?decay=0.5", ndjsonContentType, "[1,2]\n")
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting decay status = %d", resp2.StatusCode)
	}
	if code := decodeEnvelope(t, "decay conflict", resp2.Body); code != CodeConflict {
		t.Fatalf("decay conflict code = %q", code)
	}
}

func TestClusterStatusJoinAndReadyz(t *testing.T) {
	cs := newClusterTestServer(t, 2)

	var st cluster.Status
	if status := doJSON(t, "GET", cs.ts.URL+"/v1/cluster/status", nil, &st); status != http.StatusOK {
		t.Fatalf("status route = %d", status)
	}
	if len(st.Members) != 2 || st.Healthy != 2 || st.Degraded {
		t.Fatalf("cluster status = %+v", st)
	}

	// A healthy cluster reports ready with a cluster block.
	var rz readyzResponse
	if status := doJSON(t, "GET", cs.ts.URL+"/readyz", nil, &rz); status != http.StatusOK {
		t.Fatalf("readyz = %d", status)
	}
	if rz.Status != "ready" || rz.Cluster == nil || rz.Cluster.Healthy != 2 || rz.Cluster.Degraded {
		t.Fatalf("readyz body = %+v", rz)
	}

	// Joining a third worker grows membership.
	w := cluster.NewWorker()
	ws := httptest.NewServer(w.Handler())
	t.Cleanup(ws.Close)
	if status := doJSON(t, "POST", cs.ts.URL+"/v1/cluster/join",
		clusterJoinRequest{URL: ws.URL}, &st); status != http.StatusOK {
		t.Fatalf("join = %d", status)
	}
	if len(st.Members) != 3 || st.Healthy != 3 {
		t.Fatalf("post-join status = %+v", st)
	}

	// Joining an unreachable worker answers 502 cluster_join.
	resp := doRaw(t, "POST", cs.ts.URL+"/v1/cluster/join", "application/json",
		`{"url":"http://127.0.0.1:1"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("bad join status = %d", resp.StatusCode)
	}
	if code := decodeEnvelope(t, "bad join", resp.Body); code != CodeClusterJoin {
		t.Fatalf("bad join code = %q", code)
	}

	// Kill one worker: the next readyz must flag degradation once the
	// coordinator notices (probe it via a failed status... the health
	// loop is parked, so drive membership with a join re-probe of a dead
	// URL is not possible — instead assert the absent-cluster server
	// keeps its old shape below).
	if status := doJSON(t, "POST", cs.ts.URL+"/v1/cluster/republish/absent", nil, nil); status != http.StatusNotFound {
		t.Fatalf("republish absent = %d", status)
	}

	// A plain (non-cluster) server must not expose the admin routes or
	// the readyz cluster block.
	plain := newTestServer(t)
	resp2 := doRaw(t, "GET", plain.URL+"/v1/cluster/status", "", "")
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("plain server cluster status = %d", resp2.StatusCode)
	}
	var rz2 readyzResponse
	if status := doJSON(t, "GET", plain.URL+"/readyz", nil, &rz2); status != http.StatusOK {
		t.Fatalf("plain readyz = %d", status)
	}
	if rz2.Cluster != nil {
		t.Fatalf("plain readyz grew a cluster block: %+v", rz2)
	}
}
