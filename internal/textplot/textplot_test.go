package textplot

import (
	"strings"
	"testing"
)

func TestScatterBasics(t *testing.T) {
	out := Scatter("title", "x", "y", []Point{
		{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 0.5, Y: 0.5, Label: "Jordan"},
	}, 20, 10)
	for _, want := range []string{"title", "x: x in [0, 1]", "y: y in [0, 1]", "J=Jordan"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Grid line count: height rows between the header and the axis line.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	gridRows := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "|") && strings.HasSuffix(l, "|") {
			gridRows++
		}
	}
	if gridRows != 10 {
		t.Errorf("grid rows = %d, want 10", gridRows)
	}
}

func TestScatterEmpty(t *testing.T) {
	out := Scatter("t", "x", "y", nil, 20, 10)
	if !strings.Contains(out, "no points") {
		t.Errorf("empty scatter output: %q", out)
	}
}

func TestScatterDegenerateRange(t *testing.T) {
	// All points identical: must not divide by zero.
	out := Scatter("t", "x", "y", []Point{{X: 2, Y: 3}, {X: 2, Y: 3}}, 20, 5)
	if !strings.Contains(out, "o") && !strings.Contains(out, "·") {
		t.Errorf("degenerate scatter lost its points:\n%s", out)
	}
}

func TestScatterDensityMarks(t *testing.T) {
	pts := make([]Point, 8)
	for i := range pts {
		pts[i] = Point{X: 0, Y: 0}
	}
	pts = append(pts, Point{X: 1, Y: 1})
	out := Scatter("t", "x", "y", pts, 10, 5)
	if !strings.Contains(out, "●") {
		t.Errorf("dense cluster should render ●:\n%s", out)
	}
}

func TestScatterMinimumSize(t *testing.T) {
	out := Scatter("t", "x", "y", []Point{{X: 0, Y: 0}, {X: 1, Y: 2}}, 1, 1)
	if len(out) == 0 {
		t.Error("tiny dimensions must be clamped, not crash")
	}
}

func TestLines(t *testing.T) {
	out := Lines("fig", "h", "GE", []Series{
		{Name: "col-avgs", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}, Marker: 'c'},
		{Name: "RR", X: []float64{1, 2, 3}, Y: []float64{1, 1.1, 1.2}, Marker: 'r'},
	}, 30, 10)
	for _, want := range []string{"series c: col-avgs", "series r: RR", "fig"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram("RR1", []string{"minutes", "points"}, []float64{0.8, -0.4}, 20)
	if !strings.Contains(out, "minutes") || !strings.Contains(out, "points") {
		t.Errorf("histogram missing names:\n%s", out)
	}
	if !strings.Contains(out, "█") {
		t.Errorf("histogram missing bars:\n%s", out)
	}
	if !strings.Contains(out, "-█") {
		t.Errorf("negative value must carry a sign marker:\n%s", out)
	}
}

func TestHistogramAllZero(t *testing.T) {
	out := Histogram("z", []string{"a"}, []float64{0}, 20)
	if !strings.Contains(out, "a") {
		t.Errorf("zero histogram broken:\n%s", out)
	}
}

func TestHeatmap(t *testing.T) {
	out := Heatmap("corr", []string{"a", "b"}, [][]float64{
		{1, -1},
		{-1, 1},
	})
	for _, want := range []string{"corr", "a", "b", "@", "#", "scale:"} {
		if !strings.Contains(out, want) {
			t.Errorf("heatmap missing %q:\n%s", want, out)
		}
	}
}

func TestHeatmapEmpty(t *testing.T) {
	if !strings.Contains(Heatmap("t", nil, nil), "empty") {
		t.Error("empty heatmap broken")
	}
}

func TestShadeOf(t *testing.T) {
	if shadeOf(1) != '@' || shadeOf(-1) != '#' {
		t.Errorf("extremes: %c %c", shadeOf(1), shadeOf(-1))
	}
	if shadeOf(2) != '@' || shadeOf(-2) != '#' {
		t.Error("clamping broken")
	}
	if shadeOf(nan()) != '?' {
		t.Error("NaN shade broken")
	}
	// Monotone: shades must progress with value.
	prev := -1
	for v := -1.0; v <= 1.0; v += 0.1 {
		idx := -1
		for i, r := range heatShades {
			if shadeOf(v) == r {
				idx = i
			}
		}
		if idx < prev {
			t.Fatalf("shade index not monotone at %v", v)
		}
		prev = idx
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}
