// Package textplot renders small ASCII scatter and line plots so the
// experiment binaries can show the paper's figures directly in a terminal
// (and EXPERIMENTS.md can embed them as text).
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Point is a 2-d data point with an optional label; labeled points are
// drawn with the first letter of their label (the experiments use this to
// mark Jordan, Rodman, etc. in the Fig. 11 reproduction).
type Point struct {
	X, Y  float64
	Label string
}

// Scatter renders points on a width×height character grid with axis
// annotations. Unlabeled points render as '·', overlapping clusters as
// '●', labeled points as their label's first rune (labels win over
// density).
func Scatter(title, xLabel, yLabel string, points []Point, width, height int) string {
	if width < 10 {
		width = 10
	}
	if height < 5 {
		height = 5
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(points) == 0 {
		b.WriteString("(no points)\n")
		return b.String()
	}
	minX, maxX := points[0].X, points[0].X
	minY, maxY := points[0].Y, points[0].Y
	for _, p := range points[1:] {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	density := make([][]int, height)
	for r := range density {
		density[r] = make([]int, width)
	}
	place := func(p Point) (row, col int) {
		col = int(float64(width-1) * (p.X - minX) / (maxX - minX))
		row = height - 1 - int(float64(height-1)*(p.Y-minY)/(maxY-minY))
		return row, col
	}
	// Density first, then labels on top.
	for _, p := range points {
		if p.Label != "" {
			continue
		}
		r, c := place(p)
		density[r][c]++
	}
	for r := 0; r < height; r++ {
		for c := 0; c < width; c++ {
			switch {
			case density[r][c] >= 4:
				grid[r][c] = '●'
			case density[r][c] >= 2:
				grid[r][c] = 'o'
			case density[r][c] == 1:
				grid[r][c] = '·'
			}
		}
	}
	for _, p := range points {
		if p.Label == "" {
			continue
		}
		r, c := place(p)
		grid[r][c] = []rune(p.Label)[0]
	}
	for r := 0; r < height; r++ {
		fmt.Fprintf(&b, "|%s|\n", string(grid[r]))
	}
	fmt.Fprintf(&b, "x: %s in [%.4g, %.4g]   y: %s in [%.4g, %.4g]\n",
		xLabel, minX, maxX, yLabel, minY, maxY)
	var legend []string
	for _, p := range points {
		if p.Label != "" {
			legend = append(legend, fmt.Sprintf("%c=%s(%.4g,%.4g)", p.Label[0], p.Label, p.X, p.Y))
		}
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "labels: %s\n", strings.Join(legend, " "))
	}
	return b.String()
}

// Series is one named line on a Lines plot.
type Series struct {
	Name   string
	X, Y   []float64
	Marker rune
}

// Lines renders one or more series as marker clouds over a character grid
// with a shared scale — sufficient to eyeball the guessing-error curves of
// Fig. 6 and the scale-up line of Fig. 8 in a terminal.
func Lines(title, xLabel, yLabel string, series []Series, width, height int) string {
	var pts []Point
	for _, s := range series {
		for i := range s.X {
			pts = append(pts, Point{X: s.X[i], Y: s.Y[i], Label: string(s.Marker)})
		}
	}
	var b strings.Builder
	b.WriteString(Scatter(title, xLabel, yLabel, pts, width, height))
	for _, s := range series {
		fmt.Fprintf(&b, "series %c: %s\n", s.Marker, s.Name)
	}
	return b.String()
}

// heatShades maps [-1, 1] onto glyphs: deep negative correlation through
// zero to deep positive.
var heatShades = []rune("#=-. +o*@")

// Heatmap renders a square matrix of values in [-1, 1] (e.g. a
// correlation matrix) as a character grid: '@' for strong positive, '#'
// for strong negative, space near zero. Labels are truncated to fit.
func Heatmap(title string, labels []string, values [][]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	n := len(values)
	if n == 0 {
		b.WriteString("(empty)\n")
		return b.String()
	}
	const labelWidth = 14
	short := func(i int) string {
		s := fmt.Sprintf("%d", i)
		if i < len(labels) {
			s = labels[i]
		}
		if len(s) > labelWidth {
			s = s[:labelWidth]
		}
		return s
	}
	for i, row := range values {
		fmt.Fprintf(&b, "%-*s ", labelWidth, short(i))
		for _, v := range row {
			b.WriteRune(shadeOf(v))
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	b.WriteString("scale: # strong-negative, - weak-negative, (space) ≈0, o weak-positive, @ strong-positive\n")
	return b.String()
}

// shadeOf maps a correlation in [-1, 1] to its glyph, clamping outside.
func shadeOf(v float64) rune {
	if math.IsNaN(v) {
		return '?'
	}
	if v < -1 {
		v = -1
	}
	if v > 1 {
		v = 1
	}
	idx := int((v + 1) / 2 * float64(len(heatShades)-1))
	return heatShades[idx]
}

// Histogram renders name/value bars, used for the Fig. 7 relative
// guessing-error chart and for displaying rule coefficients (the paper's
// Fig. 10 step 3 "display Ratio Rules graphically in a histogram").
func Histogram(title string, names []string, values []float64, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	var maxAbs float64
	for _, v := range values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	nameWidth := 0
	for _, n := range names {
		if len(n) > nameWidth {
			nameWidth = len(n)
		}
	}
	for i, v := range values {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		bars := int(math.Round(math.Abs(v) / maxAbs * float64(width)))
		mark := strings.Repeat("█", bars)
		sign := " "
		if v < 0 {
			sign = "-"
		}
		fmt.Fprintf(&b, "%-*s %s%-*s %10.4g\n", nameWidth, name, sign, width, mark, v)
	}
	return b.String()
}
