package obs

import (
	"runtime"
	"time"
)

// processStart anchors rr_process_uptime_seconds; set once at init so
// every registry in the process reports the same uptime.
var processStart = time.Now()

// RegisterRuntime registers the Go runtime gauges on r and hooks a
// collector that refreshes them at scrape time:
//
//	rr_go_goroutines             current goroutine count
//	rr_go_heap_bytes             bytes of allocated heap objects
//	rr_go_gc_pause_seconds       cumulative stop-the-world GC pause time
//	rr_process_uptime_seconds    seconds since process start
//
// Values are sampled lazily — runtime.ReadMemStats runs only when
// /metrics is scraped or Gather is called, never on the request path.
// Calling RegisterRuntime more than once on the same registry is a
// no-op.
func RegisterRuntime(r *Registry) {
	r.runtimeOnce.Do(func() {
		goroutines := r.Gauge("rr_go_goroutines",
			"Current number of goroutines.")
		heap := r.Gauge("rr_go_heap_bytes",
			"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).")
		gcPause := r.Gauge("rr_go_gc_pause_seconds",
			"Cumulative stop-the-world GC pause time since process start.")
		uptime := r.Gauge("rr_process_uptime_seconds",
			"Seconds since process start.")
		r.RegisterCollector(func() {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			goroutines.Set(float64(runtime.NumGoroutine()))
			heap.Set(float64(ms.HeapAlloc))
			gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
			uptime.Set(time.Since(processStart).Seconds())
		})
	})
}
