// Package obstest holds test helpers for asserting on scraped metrics;
// it lives outside the obs test files so the server and command tests
// can share the exposition-format validator.
package obstest

import (
	"regexp"
	"strings"
	"testing"
)

// sampleLine matches a valid Prometheus text-format sample: a metric
// name, an optional {k="v",...} label block, and a float value.
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? ` +
		`(-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$`)

// ValidateExposition fails the test unless every line of body is a
// HELP/TYPE comment or a well-formed sample whose family was announced
// by HELP and TYPE lines — the structural validity check behind the
// "/metrics serves valid Prometheus text format" guarantee.
func ValidateExposition(t testing.TB, body string) {
	t.Helper()
	if body == "" {
		t.Error("empty exposition body")
		return
	}
	if !strings.HasSuffix(body, "\n") {
		t.Error("exposition does not end in a newline")
	}
	announced := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) < 3 {
				t.Errorf("malformed comment line %q", line)
				continue
			}
			announced[fields[2]] = true
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if !announced[name] && !announced[base] {
			t.Errorf("sample %q has no HELP/TYPE announcement", name)
		}
	}
}
