// Package alert is a stdlib-only alerting engine over in-process
// quality time series — the monitoring half of the paper's claim that
// guessing error makes rule quality *quantifiable*. The online manager
// (internal/online) feeds it each model's served-GE history and gate
// outcomes; the engine evaluates declarative rules against those
// series and runs a Prometheus-style state machine per (rule, target):
//
//	inactive --breach--> pending --breach for Rule.For--> firing
//	pending  --clear---> inactive
//	firing   --clear---> inactive (a "resolved" transition)
//
// A resolved rule is held out of re-firing for Rule.Cooldown, so a
// value oscillating around a threshold cannot flap downstream policy
// (notably the online manager's auto-rollback).
//
// Rule kinds:
//
//	ceiling         latest value exceeds an absolute maximum
//	regression      mean of the last Recent samples exceeds Ratio times
//	                the mean of the Baseline samples before them — the
//	                "sustained regression vs a trailing baseline" signal
//	slope           least-squares slope over the last N samples, as a
//	                fraction of their mean, exceeds MinSlope per sample —
//	                slow monotone drift that never trips a ratio test
//	rejection_rate  share of rejected promotion attempts over the last
//	                Window outcomes exceeds Max
//
// Evaluations are cheap (a few arithmetic passes over bounded slices),
// observable (rr_alert_* metrics, alert.eval trace spans, transition
// log lines) and deterministic given a Config.Now seam.
package alert

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"ratiorules/internal/obs"
	"ratiorules/internal/obs/trace"
)

// Kind selects a rule's predicate.
type Kind string

const (
	KindCeiling       Kind = "ceiling"
	KindRegression    Kind = "regression"
	KindSlope         Kind = "slope"
	KindRejectionRate Kind = "rejection_rate"
)

// State is one (rule, target) pair's position in the alert lifecycle.
type State string

const (
	StateInactive State = "inactive"
	StatePending  State = "pending"
	StateFiring   State = "firing"
)

// Rule is one declarative alert condition. Only the fields named for
// its Kind are consulted; see the package comment for the predicates.
type Rule struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`

	// Max is the absolute bound for ceiling (value) and rejection_rate
	// (rate in [0,1]) rules.
	Max float64 `json:"max,omitempty"`

	// Regression: mean(last Recent) > Ratio * mean(Baseline before it).
	Ratio    float64 `json:"ratio,omitempty"`
	Baseline int     `json:"baseline,omitempty"`
	Recent   int     `json:"recent,omitempty"`

	// Slope: least-squares slope over the last N samples, normalized by
	// their mean, exceeds MinSlope (fractional increase per sample).
	N        int     `json:"n,omitempty"`
	MinSlope float64 `json:"min_slope,omitempty"`

	// RejectionRate: rate over the last Window outcomes, evaluated only
	// once MinCount outcomes exist.
	Window   int `json:"window,omitempty"`
	MinCount int `json:"min_count,omitempty"`

	// For keeps a breach pending this long before it fires (0 fires on
	// the first breaching evaluation).
	For time.Duration `json:"for,omitempty"`
	// Cooldown suppresses re-firing for this long after a resolve.
	Cooldown time.Duration `json:"cooldown,omitempty"`
}

// validate rejects rules whose parameters cannot evaluate.
func (r Rule) validate() error {
	if r.Name == "" {
		return errors.New("alert: rule missing name")
	}
	switch r.Kind {
	case KindCeiling:
		if r.Max <= 0 {
			return fmt.Errorf("alert: rule %q: ceiling needs Max > 0", r.Name)
		}
	case KindRegression:
		if r.Ratio <= 1 {
			return fmt.Errorf("alert: rule %q: regression needs Ratio > 1", r.Name)
		}
		if r.Baseline < 1 || r.Recent < 1 {
			return fmt.Errorf("alert: rule %q: regression needs Baseline and Recent >= 1", r.Name)
		}
	case KindSlope:
		if r.N < 3 {
			return fmt.Errorf("alert: rule %q: slope needs N >= 3", r.Name)
		}
		if r.MinSlope <= 0 {
			return fmt.Errorf("alert: rule %q: slope needs MinSlope > 0", r.Name)
		}
	case KindRejectionRate:
		if r.Max < 0 || r.Max >= 1 {
			return fmt.Errorf("alert: rule %q: rejection_rate needs Max in [0, 1)", r.Name)
		}
		if r.Window < 1 {
			return fmt.Errorf("alert: rule %q: rejection_rate needs Window >= 1", r.Name)
		}
		if r.MinCount < 1 {
			return fmt.Errorf("alert: rule %q: rejection_rate needs MinCount >= 1", r.Name)
		}
	default:
		return fmt.Errorf("alert: rule %q: unknown kind %q", r.Name, r.Kind)
	}
	if r.For < 0 || r.Cooldown < 0 {
		return fmt.Errorf("alert: rule %q: negative For or Cooldown", r.Name)
	}
	return nil
}

// Sample is one point of a quality time series, ascending by T.
type Sample struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// Input is everything one evaluation sees about a target: the quality
// series (served GE for the online manager), the trailing promotion
// outcomes (true = promoted), and an absolute noise floor added to
// relative thresholds so perfect models (GE at solver round-off) never
// alert on ratios of numerical dust.
type Input struct {
	Samples  []Sample
	Outcomes []bool
	Eps      float64
}

// Transition is one state change produced by an evaluation.
type Transition struct {
	Rule      Rule      `json:"rule"`
	Target    string    `json:"target"`
	From      State     `json:"from"`
	To        State     `json:"to"`
	Value     float64   `json:"value"`
	Threshold float64   `json:"threshold"`
	At        time.Time `json:"at"`
}

// Status is the externally visible state of one (rule, target) pair.
type Status struct {
	Rule      string     `json:"rule"`
	Kind      Kind       `json:"kind"`
	Target    string     `json:"target"`
	State     State      `json:"state"`
	Since     time.Time  `json:"since"`
	Value     float64    `json:"value"`
	Threshold float64    `json:"threshold"`
	Fires     uint64     `json:"fires"`
	LastFired *time.Time `json:"last_fired,omitempty"`
}

// Config builds an Engine.
type Config struct {
	// Rules are the conditions evaluated for every target; each must
	// validate. At least one rule is required.
	Rules []Rule
	// Metrics receives the rr_alert_* families; nil selects
	// obs.Default().
	Metrics *obs.Registry
	// Logger receives transition lines; nil is silent.
	Logger *slog.Logger
	// Now is the clock seam for tests; nil selects time.Now.
	Now func() time.Time
}

// Engine evaluates a fixed rule set against per-target inputs and owns
// the alert states. Safe for concurrent use.
type Engine struct {
	rules  []Rule
	logger *slog.Logger
	now    func() time.Time
	met    *alertMetrics

	mu     sync.Mutex
	states map[stateKey]*ruleState
}

type stateKey struct {
	rule   string
	target string
}

// ruleState is the mutable half of one (rule, target) pair.
type ruleState struct {
	state      State
	since      time.Time // entered the current state
	value      float64   // last evaluated value
	threshold  float64   // last evaluated threshold
	fires      uint64
	lastFired  time.Time
	resolvedAt time.Time // last firing -> inactive transition
}

// NewEngine validates the rules and builds an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if len(cfg.Rules) == 0 {
		return nil, errors.New("alert: no rules")
	}
	seen := make(map[string]bool, len(cfg.Rules))
	for _, r := range cfg.Rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("alert: duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.Default()
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Engine{
		rules:  append([]Rule(nil), cfg.Rules...),
		logger: cfg.Logger,
		now:    cfg.Now,
		met:    newAlertMetrics(cfg.Metrics),
		states: make(map[stateKey]*ruleState),
	}, nil
}

// DefaultRules is the stock rule set the online manager runs when no
// explicit engine is configured: sustained regression vs a trailing
// baseline, slow slope drift, and a promotion-rejection-rate guard.
// An absolute GE ceiling is deliberately absent — GE is measured in
// data units, so only a deployment knows a meaningful bound (rrserve
// -alert-ge-max adds one).
func DefaultRules() []Rule {
	return []Rule{
		{Name: "ge_regression", Kind: KindRegression, Ratio: 1.5,
			Baseline: 12, Recent: 4, Cooldown: 5 * time.Minute},
		{Name: "ge_drift", Kind: KindSlope, N: 8, MinSlope: 0.05,
			Cooldown: 5 * time.Minute},
		{Name: "gate_rejections", Kind: KindRejectionRate, Max: 0.5,
			Window: 8, MinCount: 4, Cooldown: 5 * time.Minute},
	}
}

// Rules returns the engine's rule set (a copy).
func (e *Engine) Rules() []Rule { return append([]Rule(nil), e.rules...) }

// Eval runs every rule against one target's input and returns the
// transitions this evaluation caused (often none). States for targets
// never seen before materialize as inactive.
func (e *Engine) Eval(ctx context.Context, target string, in Input) []Transition {
	_, sp := trace.Start(ctx, "alert.eval")
	now := e.now()
	var out []Transition

	e.mu.Lock()
	for _, r := range e.rules {
		key := stateKey{rule: r.Name, target: target}
		st := e.states[key]
		if st == nil {
			st = &ruleState{state: StateInactive, since: now}
			e.states[key] = st
		}
		breach, value, threshold, ok := evalRule(r, in)
		e.met.evals.Inc()
		if !ok {
			continue // not enough data yet: the state is left untouched
		}
		st.value, st.threshold = value, threshold
		if tr := e.step(r, target, st, breach, now); tr != nil {
			out = append(out, *tr)
		}
	}
	e.met.firing.Set(float64(e.firingLocked()))
	e.mu.Unlock()

	for _, tr := range out {
		lvl := slog.LevelInfo
		if tr.To == StateFiring {
			lvl = slog.LevelWarn
		}
		e.logger.Log(context.Background(), lvl, "alert transition",
			"rule", tr.Rule.Name, "target", tr.Target, "from", tr.From, "to", tr.To,
			"value", tr.Value, "threshold", tr.Threshold)
	}
	if sp != nil {
		sp.SetAttr("target", target)
		sp.SetAttr("rules", len(e.rules))
		sp.SetAttr("transitions", len(out))
		sp.End()
	}
	return out
}

// step advances one state machine; callers hold e.mu.
func (e *Engine) step(r Rule, target string, st *ruleState, breach bool, now time.Time) *Transition {
	move := func(to State) *Transition {
		tr := &Transition{Rule: r, Target: target, From: st.state, To: to,
			Value: st.value, Threshold: st.threshold, At: now}
		st.state = to
		st.since = now
		e.met.transitions.With(string(to)).Inc()
		return tr
	}
	switch st.state {
	case StateInactive:
		if !breach {
			return nil
		}
		if r.Cooldown > 0 && !st.resolvedAt.IsZero() && now.Sub(st.resolvedAt) < r.Cooldown {
			e.met.suppressed.Inc()
			return nil
		}
		if r.For <= 0 {
			st.fires++
			st.lastFired = now
			return move(StateFiring)
		}
		return move(StatePending)
	case StatePending:
		if !breach {
			return move(StateInactive)
		}
		if now.Sub(st.since) >= r.For {
			st.fires++
			st.lastFired = now
			return move(StateFiring)
		}
		return nil
	case StateFiring:
		if breach {
			return nil
		}
		st.resolvedAt = now
		return move(StateInactive)
	}
	return nil
}

// evalRule computes one rule's predicate. ok=false means the input has
// too little data to evaluate (the state must not move on ignorance).
func evalRule(r Rule, in Input) (breach bool, value, threshold float64, ok bool) {
	switch r.Kind {
	case KindCeiling:
		if len(in.Samples) == 0 {
			return false, 0, 0, false
		}
		v := in.Samples[len(in.Samples)-1].V
		return v > r.Max, v, r.Max, true
	case KindRegression:
		need := r.Baseline + r.Recent
		if len(in.Samples) < need {
			return false, 0, 0, false
		}
		tail := in.Samples[len(in.Samples)-need:]
		base := MeanValues(tail[:r.Baseline])
		recent := MeanValues(tail[r.Baseline:])
		threshold = base*r.Ratio + in.Eps
		return recent > threshold, recent, threshold, true
	case KindSlope:
		if len(in.Samples) < r.N {
			return false, 0, 0, false
		}
		tail := in.Samples[len(in.Samples)-r.N:]
		mean := MeanValues(tail)
		if mean <= in.Eps {
			// The whole window sits at the noise floor: no drift worth
			// naming, whatever the fitted slope of the dust says.
			return false, 0, r.MinSlope, true
		}
		rel := SlopePerSample(tail) / mean
		return rel > r.MinSlope, rel, r.MinSlope, true
	case KindRejectionRate:
		n := len(in.Outcomes)
		if n > r.Window {
			in.Outcomes = in.Outcomes[n-r.Window:]
			n = r.Window
		}
		if n < r.MinCount {
			return false, 0, 0, false
		}
		rejected := 0
		for _, promoted := range in.Outcomes {
			if !promoted {
				rejected++
			}
		}
		rate := float64(rejected) / float64(n)
		return rate > r.Max, rate, r.Max, true
	}
	return false, 0, 0, false
}

// MeanValues is the arithmetic mean of the samples' values (0 when
// empty).
func MeanValues(s []Sample) float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s {
		sum += x.V
	}
	return sum / float64(len(s))
}

// SlopePerSample fits value = a + b*i by least squares over the sample
// index i (not wall time, so irregular tick spacing cannot fake a
// drift) and returns b — the value change per sample.
func SlopePerSample(s []Sample) float64 {
	n := float64(len(s))
	if n < 2 {
		return 0
	}
	var sumI, sumV, sumIV, sumII float64
	for i, x := range s {
		fi := float64(i)
		sumI += fi
		sumV += x.V
		sumIV += fi * x.V
		sumII += fi * fi
	}
	den := n*sumII - sumI*sumI
	if den == 0 {
		return 0
	}
	return (n*sumIV - sumI*sumV) / den
}

// Statuses reports every rule's state for one target, in rule order.
// Rules the target was never evaluated against show as inactive.
func (e *Engine) Statuses(target string) []Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Status, 0, len(e.rules))
	for _, r := range e.rules {
		st := e.states[stateKey{rule: r.Name, target: target}]
		if st == nil {
			out = append(out, Status{Rule: r.Name, Kind: r.Kind, Target: target, State: StateInactive})
			continue
		}
		out = append(out, statusOf(r, target, st))
	}
	return out
}

// Snapshot lists every evaluated (rule, target) state, sorted by
// target then rule — the GET /debug/alerts body.
func (e *Engine) Snapshot() (states []Status, firing int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	byName := make(map[string]Rule, len(e.rules))
	for _, r := range e.rules {
		byName[r.Name] = r
	}
	states = make([]Status, 0, len(e.states))
	for key, st := range e.states {
		states = append(states, statusOf(byName[key.rule], key.target, st))
	}
	sort.Slice(states, func(i, j int) bool {
		if states[i].Target != states[j].Target {
			return states[i].Target < states[j].Target
		}
		return states[i].Rule < states[j].Rule
	})
	return states, e.firingLocked()
}

// FiringCount reports how many (rule, target) pairs are firing now.
func (e *Engine) FiringCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.firingLocked()
}

func (e *Engine) firingLocked() int {
	n := 0
	for _, st := range e.states {
		if st.state == StateFiring {
			n++
		}
	}
	return n
}

// Drop forgets every state for a target (its stream was deleted).
func (e *Engine) Drop(target string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for key := range e.states {
		if key.target == target {
			delete(e.states, key)
		}
	}
	e.met.firing.Set(float64(e.firingLocked()))
}

func statusOf(r Rule, target string, st *ruleState) Status {
	out := Status{
		Rule:      r.Name,
		Kind:      r.Kind,
		Target:    target,
		State:     st.state,
		Since:     st.since,
		Value:     st.value,
		Threshold: st.threshold,
		Fires:     st.fires,
	}
	if !st.lastFired.IsZero() {
		t := st.lastFired
		out.LastFired = &t
	}
	return out
}
