package alert

import "ratiorules/internal/obs"

// alertMetrics is the rr_alert_* family set. Cardinality stays bounded:
// the only label is the transition's destination state.
type alertMetrics struct {
	evals       *obs.Counter
	transitions *obs.CounterVec // to: pending|firing|inactive
	firing      *obs.Gauge
	suppressed  *obs.Counter
}

func newAlertMetrics(reg *obs.Registry) *alertMetrics {
	return &alertMetrics{
		evals: reg.Counter("rr_alert_evals_total",
			"Rule evaluations performed (one per rule per Eval call)."),
		transitions: reg.CounterVec("rr_alert_transitions_total",
			"Alert state transitions by destination state.", "to"),
		firing: reg.Gauge("rr_alert_firing",
			"Alert (rule, target) pairs currently in the firing state."),
		suppressed: reg.Counter("rr_alert_suppressed_total",
			"Breaches ignored because the rule was inside its post-resolve cooldown."),
	}
}
