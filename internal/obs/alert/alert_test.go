package alert

import (
	"context"
	"math"
	"testing"
	"time"

	"ratiorules/internal/obs"
)

// fakeClock is a manually advanced Config.Now seam.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// newTestEngine builds an engine on a fresh registry and fake clock.
func newTestEngine(t *testing.T, rules ...Rule) (*Engine, *fakeClock, *obs.Registry) {
	t.Helper()
	clk := newFakeClock()
	reg := obs.NewRegistry()
	e, err := NewEngine(Config{Rules: rules, Metrics: reg, Now: clk.now})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e, clk, reg
}

// series builds an ascending sample series from values, one per minute.
func series(clk *fakeClock, vals ...float64) []Sample {
	out := make([]Sample, len(vals))
	base := clk.t.Add(-time.Duration(len(vals)) * time.Minute)
	for i, v := range vals {
		out[i] = Sample{T: base.Add(time.Duration(i) * time.Minute), V: v}
	}
	return out
}

func stateOf(t *testing.T, e *Engine, target, rule string) Status {
	t.Helper()
	for _, st := range e.Statuses(target) {
		if st.Rule == rule {
			return st
		}
	}
	t.Fatalf("rule %q not in statuses for %q", rule, target)
	return Status{}
}

func TestRuleValidation(t *testing.T) {
	bad := []Rule{
		{},                             // no name
		{Name: "x", Kind: "bogus"},     // unknown kind
		{Name: "x", Kind: KindCeiling}, // Max <= 0
		{Name: "x", Kind: KindRegression, Ratio: 0.9, Baseline: 2, Recent: 1}, // Ratio <= 1
		{Name: "x", Kind: KindRegression, Ratio: 2},                           // windows missing
		{Name: "x", Kind: KindSlope, N: 2, MinSlope: 0.1},                     // N too small
		{Name: "x", Kind: KindSlope, N: 5},                                    // MinSlope missing
		{Name: "x", Kind: KindRejectionRate, Max: 1.5, Window: 4, MinCount: 2},
		{Name: "x", Kind: KindRejectionRate, Max: 0.5},
		{Name: "x", Kind: KindCeiling, Max: 1, For: -time.Second},
	}
	for i, r := range bad {
		if _, err := NewEngine(Config{Rules: []Rule{r}}); err == nil {
			t.Errorf("rule %d (%+v): want validation error, got nil", i, r)
		}
	}
	if _, err := NewEngine(Config{}); err == nil {
		t.Error("empty rule set: want error")
	}
	dup := Rule{Name: "x", Kind: KindCeiling, Max: 1}
	if _, err := NewEngine(Config{Rules: []Rule{dup, dup}}); err == nil {
		t.Error("duplicate rule names: want error")
	}
	for _, r := range DefaultRules() {
		if err := r.validate(); err != nil {
			t.Errorf("DefaultRules contains invalid rule: %v", err)
		}
	}
}

func TestCeilingFiresAndResolves(t *testing.T) {
	e, clk, _ := newTestEngine(t, Rule{Name: "cap", Kind: KindCeiling, Max: 2.0})
	ctx := context.Background()

	trs := e.Eval(ctx, "m", Input{Samples: series(clk, 1.0)})
	if len(trs) != 0 {
		t.Fatalf("below ceiling: want no transitions, got %+v", trs)
	}
	trs = e.Eval(ctx, "m", Input{Samples: series(clk, 1.0, 3.0)})
	if len(trs) != 1 || trs[0].To != StateFiring || trs[0].From != StateInactive {
		t.Fatalf("breach with For=0: want inactive->firing, got %+v", trs)
	}
	if got := stateOf(t, e, "m", "cap"); got.State != StateFiring || got.Value != 3.0 || got.Threshold != 2.0 {
		t.Fatalf("firing status wrong: %+v", got)
	}
	if e.FiringCount() != 1 {
		t.Fatalf("FiringCount = %d, want 1", e.FiringCount())
	}
	trs = e.Eval(ctx, "m", Input{Samples: series(clk, 3.0, 1.5)})
	if len(trs) != 1 || trs[0].To != StateInactive || trs[0].From != StateFiring {
		t.Fatalf("clear: want firing->inactive, got %+v", trs)
	}
	if e.FiringCount() != 0 {
		t.Fatalf("FiringCount after resolve = %d, want 0", e.FiringCount())
	}
}

func TestForHoldsPendingBeforeFiring(t *testing.T) {
	e, clk, _ := newTestEngine(t,
		Rule{Name: "cap", Kind: KindCeiling, Max: 1.0, For: 10 * time.Minute})
	ctx := context.Background()
	breach := Input{Samples: series(clk, 5.0)}

	trs := e.Eval(ctx, "m", breach)
	if len(trs) != 1 || trs[0].To != StatePending {
		t.Fatalf("first breach: want ->pending, got %+v", trs)
	}
	clk.advance(5 * time.Minute)
	if trs = e.Eval(ctx, "m", breach); len(trs) != 0 {
		t.Fatalf("inside For: want no transition, got %+v", trs)
	}
	clk.advance(6 * time.Minute)
	if trs = e.Eval(ctx, "m", breach); len(trs) != 1 || trs[0].To != StateFiring {
		t.Fatalf("past For: want ->firing, got %+v", trs)
	}

	// A pending breach that clears goes straight back to inactive.
	e2, clk2, _ := newTestEngine(t,
		Rule{Name: "cap", Kind: KindCeiling, Max: 1.0, For: 10 * time.Minute})
	e2.Eval(ctx, "m", Input{Samples: series(clk2, 5.0)})
	trs = e2.Eval(ctx, "m", Input{Samples: series(clk2, 0.5)})
	if len(trs) != 1 || trs[0].From != StatePending || trs[0].To != StateInactive {
		t.Fatalf("pending clear: want pending->inactive, got %+v", trs)
	}
}

func TestCooldownSuppressesRefire(t *testing.T) {
	e, clk, reg := newTestEngine(t,
		Rule{Name: "cap", Kind: KindCeiling, Max: 1.0, Cooldown: time.Hour})
	ctx := context.Background()
	breach := Input{Samples: series(clk, 5.0)}
	clear := Input{Samples: series(clk, 0.5)}

	e.Eval(ctx, "m", breach) // fires
	e.Eval(ctx, "m", clear)  // resolves, cooldown starts
	clk.advance(30 * time.Minute)
	if trs := e.Eval(ctx, "m", breach); len(trs) != 0 {
		t.Fatalf("inside cooldown: want suppressed, got %+v", trs)
	}
	if v := metricValue(t, reg, "rr_alert_suppressed_total"); v != 1 {
		t.Fatalf("rr_alert_suppressed_total = %v, want 1", v)
	}
	clk.advance(31 * time.Minute)
	if trs := e.Eval(ctx, "m", breach); len(trs) != 1 || trs[0].To != StateFiring {
		t.Fatalf("past cooldown: want ->firing, got %+v", trs)
	}
	if got := stateOf(t, e, "m", "cap"); got.Fires != 2 {
		t.Fatalf("Fires = %d, want 2", got.Fires)
	}
}

func TestRegressionRule(t *testing.T) {
	e, clk, _ := newTestEngine(t,
		Rule{Name: "reg", Kind: KindRegression, Ratio: 1.5, Baseline: 4, Recent: 2})
	ctx := context.Background()

	// Too few samples: state frozen at inactive.
	if trs := e.Eval(ctx, "m", Input{Samples: series(clk, 1, 1, 1)}); len(trs) != 0 {
		t.Fatalf("short series: want nothing, got %+v", trs)
	}
	// Flat series: recent mean == baseline mean, no breach.
	if trs := e.Eval(ctx, "m", Input{Samples: series(clk, 1, 1, 1, 1, 1, 1)}); len(trs) != 0 {
		t.Fatalf("flat series: want nothing, got %+v", trs)
	}
	// Recent window jumps 2x over baseline: breach.
	trs := e.Eval(ctx, "m", Input{Samples: series(clk, 1, 1, 1, 1, 2, 2)})
	if len(trs) != 1 || trs[0].To != StateFiring {
		t.Fatalf("2x regression: want ->firing, got %+v", trs)
	}
	if got := trs[0]; math.Abs(got.Value-2.0) > 1e-12 || math.Abs(got.Threshold-1.5) > 1e-12 {
		t.Fatalf("regression value/threshold = %v/%v, want 2/1.5", got.Value, got.Threshold)
	}
}

func TestRegressionEpsAbsorbsRoundoff(t *testing.T) {
	e, clk, _ := newTestEngine(t,
		Rule{Name: "reg", Kind: KindRegression, Ratio: 1.5, Baseline: 4, Recent: 2})
	// A perfect model's GE wobbles at round-off scale; with Eps at the
	// noise floor the ratio test must stay quiet.
	in := Input{
		Samples: series(clk, 1e-17, 2e-17, 1e-17, 2e-17, 8e-17, 9e-17),
		Eps:     1e-9,
	}
	if trs := e.Eval(context.Background(), "m", in); len(trs) != 0 {
		t.Fatalf("round-off regression with Eps: want nothing, got %+v", trs)
	}
}

func TestSlopeRule(t *testing.T) {
	e, clk, _ := newTestEngine(t,
		Rule{Name: "drift", Kind: KindSlope, N: 5, MinSlope: 0.05})
	ctx := context.Background()

	if trs := e.Eval(ctx, "m", Input{Samples: series(clk, 1, 1, 1, 1, 1)}); len(trs) != 0 {
		t.Fatalf("flat: want nothing, got %+v", trs)
	}
	// Steady climb: slope 0.25/sample over mean 1.5 ≈ 0.17/sample.
	trs := e.Eval(ctx, "m", Input{Samples: series(clk, 1, 1.25, 1.5, 1.75, 2)})
	if len(trs) != 1 || trs[0].To != StateFiring {
		t.Fatalf("drift: want ->firing, got %+v", trs)
	}
	// A whole window at the noise floor never counts as drift.
	e2, clk2, _ := newTestEngine(t,
		Rule{Name: "drift", Kind: KindSlope, N: 5, MinSlope: 0.05})
	in := Input{Samples: series(clk2, 1e-17, 2e-17, 3e-17, 4e-17, 5e-17), Eps: 1e-9}
	if trs := e2.Eval(ctx, "m", in); len(trs) != 0 {
		t.Fatalf("noise-floor drift with Eps: want nothing, got %+v", trs)
	}
}

func TestSlopeIgnoresTimestampSpacing(t *testing.T) {
	// Slope is per sample index, so irregular wall-clock gaps between
	// the same values must give the same answer.
	a := []Sample{{V: 1}, {V: 2}, {V: 3}, {V: 4}}
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	b := []Sample{
		{T: base, V: 1},
		{T: base.Add(time.Second), V: 2},
		{T: base.Add(time.Hour), V: 3},
		{T: base.Add(49 * time.Hour), V: 4},
	}
	if sa, sb := SlopePerSample(a), SlopePerSample(b); math.Abs(sa-sb) > 1e-12 {
		t.Fatalf("slope differs with spacing: %v vs %v", sa, sb)
	}
}

func TestRejectionRateRule(t *testing.T) {
	e, _, _ := newTestEngine(t,
		Rule{Name: "rej", Kind: KindRejectionRate, Max: 0.5, Window: 4, MinCount: 3})
	ctx := context.Background()

	if trs := e.Eval(ctx, "m", Input{Outcomes: []bool{false, false}}); len(trs) != 0 {
		t.Fatalf("below MinCount: want nothing, got %+v", trs)
	}
	if trs := e.Eval(ctx, "m", Input{Outcomes: []bool{true, true, false}}); len(trs) != 0 {
		t.Fatalf("rate 1/3: want nothing, got %+v", trs)
	}
	trs := e.Eval(ctx, "m", Input{Outcomes: []bool{true, false, false, false}})
	if len(trs) != 1 || trs[0].To != StateFiring {
		t.Fatalf("rate 3/4: want ->firing, got %+v", trs)
	}
	// Only the trailing Window outcomes count: old rejections age out.
	trs = e.Eval(ctx, "m", Input{Outcomes: []bool{false, false, false, true, true, true, true}})
	if len(trs) != 1 || trs[0].To != StateInactive {
		t.Fatalf("rejections aged out: want ->inactive, got %+v", trs)
	}
}

func TestTargetsAreIndependent(t *testing.T) {
	e, clk, _ := newTestEngine(t, Rule{Name: "cap", Kind: KindCeiling, Max: 1.0})
	ctx := context.Background()
	e.Eval(ctx, "a", Input{Samples: series(clk, 5.0)})
	e.Eval(ctx, "b", Input{Samples: series(clk, 0.5)})

	if got := stateOf(t, e, "a", "cap"); got.State != StateFiring {
		t.Fatalf("target a: %+v", got)
	}
	if got := stateOf(t, e, "b", "cap"); got.State != StateInactive {
		t.Fatalf("target b: %+v", got)
	}

	states, firing := e.Snapshot()
	if firing != 1 || len(states) != 2 {
		t.Fatalf("Snapshot: firing=%d len=%d, want 1/2", firing, len(states))
	}
	if states[0].Target != "a" || states[1].Target != "b" {
		t.Fatalf("Snapshot not sorted by target: %+v", states)
	}

	e.Drop("a")
	states, firing = e.Snapshot()
	if firing != 0 || len(states) != 1 || states[0].Target != "b" {
		t.Fatalf("after Drop(a): firing=%d states=%+v", firing, states)
	}
}

func TestStatusesListsUnevaluatedRules(t *testing.T) {
	e, _, _ := newTestEngine(t, DefaultRules()...)
	got := e.Statuses("never-seen")
	if len(got) != len(DefaultRules()) {
		t.Fatalf("Statuses len = %d, want %d", len(got), len(DefaultRules()))
	}
	for _, st := range got {
		if st.State != StateInactive {
			t.Fatalf("unevaluated rule not inactive: %+v", st)
		}
	}
}

func TestMetrics(t *testing.T) {
	e, clk, reg := newTestEngine(t, Rule{Name: "cap", Kind: KindCeiling, Max: 1.0})
	ctx := context.Background()
	e.Eval(ctx, "m", Input{Samples: series(clk, 5.0)}) // fires
	e.Eval(ctx, "m", Input{Samples: series(clk, 0.5)}) // resolves

	if v := metricValue(t, reg, "rr_alert_evals_total"); v != 2 {
		t.Fatalf("evals = %v, want 2", v)
	}
	if v := metricValue(t, reg, "rr_alert_firing"); v != 0 {
		t.Fatalf("firing gauge = %v, want 0", v)
	}
	if v := labeledMetricValue(t, reg, "rr_alert_transitions_total", "firing"); v != 1 {
		t.Fatalf("transitions{to=firing} = %v, want 1", v)
	}
	if v := labeledMetricValue(t, reg, "rr_alert_transitions_total", "inactive"); v != 1 {
		t.Fatalf("transitions{to=inactive} = %v, want 1", v)
	}
}

// metricValue reads an unlabeled series from a registry snapshot.
func metricValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	v, ok := reg.Snapshot()[name]
	if !ok {
		t.Fatalf("metric %q not found", name)
	}
	return v
}

// labeledMetricValue reads a series with a single "to" label.
func labeledMetricValue(t *testing.T, reg *obs.Registry, name, to string) float64 {
	t.Helper()
	return reg.Snapshot()[obs.SampleKey(name, map[string]string{"to": to})]
}
