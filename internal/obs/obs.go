// Package obs is the observability layer of the Ratio Rules system:
// a dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms) with Prometheus text exposition, timing helpers for the
// mining hot paths, and structured logging built on log/slog.
//
// The package holds a process-wide Default registry that the miner
// (internal/core) and the HTTP service (internal/server) record into;
// tests that need isolation construct their own Registry and read it
// back with Snapshot or Gather. Everything is safe for concurrent use:
// metric updates are single atomic operations, and scrapes may run
// while recorders are hot.
//
// Naming follows the Prometheus conventions: all metrics carry the
// `rr_` prefix, durations are `_seconds`, monotonic counts are
// `_total`, and label cardinality stays bounded (routes, phases, op
// names and status classes only — never user input).
package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// metricKind discriminates the registered metric families.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry is a concurrency-safe collection of metric families.
// The zero value is not usable; construct with NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family

	collectorMu sync.Mutex
	collectors  []func()
	runtimeOnce sync.Once // RegisterRuntime idempotency
}

// family is one named metric with a fixed type and label scheme; its
// children are the per-label-value instances.
type family struct {
	name       string
	help       string
	kind       metricKind
	labelNames []string
	buckets    []float64 // histogram families only

	mu       sync.RWMutex
	children map[string]*child // keyed by joined label values
}

type child struct {
	labelValues []string
	metric      any // *Counter, *Gauge or *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry used by the miner and
// the HTTP middleware unless a caller supplies its own.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// register fetches or creates a family, panicking on a name collision
// with a different type or label scheme — that is a programming error,
// caught the first time the code path runs.
func (r *Registry) register(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameRE.MatchString(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labelNames, labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
				name, kind, labels, f.kind, f.labelNames))
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		kind:       kind,
		labelNames: append([]string(nil), labels...),
		children:   make(map[string]*child),
	}
	if kind == kindHistogram {
		f.buckets = validateBuckets(buckets)
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// labelSep joins label values into child keys; it cannot appear in
// UTF-8 text, so joined keys are unambiguous.
const labelSep = "\xff"

// with fetches or creates the child for the given label values.
func (f *family) with(values []string) any {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %q got %d label values for %d labels",
			f.name, len(values), len(f.labelNames)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c.metric
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c.metric
	}
	var m any
	switch f.kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	case kindHistogram:
		m = newHistogram(f.buckets)
	}
	f.children[key] = &child{
		labelValues: append([]string(nil), values...),
		metric:      m,
	}
	return m
}

// sortedChildren snapshots the children in deterministic (sorted key)
// order for exposition.
func (f *family) sortedChildren() []*child {
	f.mu.RLock()
	defer f.mu.RUnlock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*child, len(keys))
	for i, k := range keys {
		out[i] = f.children[k]
	}
	return out
}

// RegisterCollector adds a function run at the start of every scrape
// (WritePrometheus, Gather, Snapshot) — the hook for gauges whose value
// is sampled on demand rather than recorded at event time, like the
// Go runtime stats (see RegisterRuntime). Collectors must be fast and
// must not scrape the registry themselves.
func (r *Registry) RegisterCollector(fn func()) {
	r.collectorMu.Lock()
	r.collectors = append(r.collectors, fn)
	r.collectorMu.Unlock()
}

// runCollectors invokes every registered collector.
func (r *Registry) runCollectors() {
	r.collectorMu.Lock()
	fns := append([]func(){}, r.collectors...)
	r.collectorMu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// sortedFamilies snapshots the families in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*family, len(names))
	for i, n := range names {
		out[i] = r.families[n]
	}
	return out
}

// Counter returns the registered unlabeled counter, creating it if
// needed. Registration is idempotent: every call with the same name
// returns the same instance.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil).with(nil).(*Counter)
}

// Gauge returns the registered unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil).with(nil).(*Gauge)
}

// Histogram returns the registered unlabeled histogram with the given
// ascending bucket upper bounds (a trailing +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, kindHistogram, nil, buckets).with(nil).(*Histogram)
}

// CounterVec returns the registered counter family with the given
// label names; fetch children with With.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil)}
}

// GaugeVec returns the registered gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil)}
}

// HistogramVec returns the registered histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, buckets)}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (one per label
// name, in registration order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter { return v.f.with(values).(*Counter) }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.with(values).(*Gauge) }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.with(values).(*Histogram) }
