package obs

import (
	"math"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "A test counter.")
	if got := c.Value(); got != 0 {
		t.Fatalf("fresh counter = %v, want 0", got)
	}
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	// Idempotent registration returns the same instance.
	if again := r.Counter("test_total", "A test counter."); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "A test gauge.")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-2.5)
	if got := g.Value(); got != 7.5 {
		t.Fatalf("gauge = %v, want 7.5", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "A test histogram.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-55.65) > 1e-9 {
		t.Fatalf("sum = %v, want 55.65", got)
	}
	bounds, cum := h.Buckets()
	wantBounds := []float64{0.1, 1, 10, math.Inf(1)}
	wantCum := []uint64{2, 3, 4, 5} // le is inclusive: 0.1 falls in the first bucket
	for i := range wantBounds {
		if bounds[i] != wantBounds[i] || cum[i] != wantCum[i] {
			t.Fatalf("bucket %d = (%v, %d), want (%v, %d)",
				i, bounds[i], cum[i], wantBounds[i], wantCum[i])
		}
	}
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ops_total", "Ops.", "op", "result")
	v.With("fill", "ok").Add(3)
	v.With("fill", "error").Inc()
	v.With("fill", "ok").Inc() // same child again
	if got := v.With("fill", "ok").Value(); got != 4 {
		t.Fatalf(`With("fill","ok") = %v, want 4`, got)
	}
	if got := v.With("fill", "error").Value(); got != 1 {
		t.Fatalf(`With("fill","error") = %v, want 1`, got)
	}
}

func TestRegisterMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "first")
	for name, f := range map[string]func(){
		"type change":  func() { r.Gauge("dup", "as gauge") },
		"label change": func() { r.CounterVec("dup", "with labels", "x") },
		"bad name":     func() { r.Counter("bad-name", "dash") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestWithWrongArity(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("labeled", "two labels", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

func TestSnapshotKeys(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain_total", "plain").Add(2)
	r.CounterVec("labeled_total", "labeled", "b", "a").With("vb", "va").Add(7)
	r.Histogram("hist_seconds", "hist", []float64{1}).Observe(0.5)

	snap := r.Snapshot()
	for key, want := range map[string]float64{
		"plain_total": 2,
		// Snapshot keys sort label names regardless of declaration order.
		`labeled_total{a="va",b="vb"}`: 7,
		"hist_seconds_sum":             0.5,
		"hist_seconds_count":           1,
	} {
		if got := snap[key]; got != want {
			t.Errorf("snapshot[%s] = %v, want %v (have keys %v)", key, got, want, snap)
		}
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
}

func TestDefaultIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() returned different registries")
	}
}
