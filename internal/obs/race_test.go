package obs

import (
	"io"
	"strconv"
	"sync"
	"testing"
)

// TestConcurrentRecordAndScrape is the registry's race-detector stress
// test: 8 goroutines hammer counters, gauges and histograms (including
// racing child creation in the vecs) while 2 goroutines scrape the
// exposition format and Gather continuously. Run with -race.
func TestConcurrentRecordAndScrape(t *testing.T) {
	r := NewRegistry()
	ctr := r.Counter("stress_total", "stress")
	vec := r.CounterVec("stress_ops_total", "stress", "op")
	g := r.Gauge("stress_gauge", "stress")
	h := r.HistogramVec("stress_seconds", "stress", DefBuckets, "phase")

	const (
		writers = 8
		scrapes = 2
		iters   = 2000
	)
	var writeWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			op := "op" + strconv.Itoa(w%3)
			for i := 0; i < iters; i++ {
				ctr.Inc()
				vec.With(op).Add(2)
				g.Set(float64(i))
				h.With("scan").Observe(float64(i) * 1e-4)
				// Occasionally create fresh children to race the
				// family map against the scrapers.
				if i%500 == 0 {
					vec.With("op" + strconv.Itoa(w) + "_" + strconv.Itoa(i)).Inc()
				}
			}
		}(w)
	}
	done := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for s := 0; s < scrapes; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				_ = r.Gather()
			}
		}()
	}
	writeWG.Wait()
	close(done)
	scrapeWG.Wait()

	if got, want := ctr.Value(), float64(writers*iters); got != want {
		t.Fatalf("counter = %v, want %v", got, want)
	}
	hist := h.With("scan")
	if got := hist.Count(); got != uint64(writers*iters) {
		t.Fatalf("histogram count = %d, want %d", got, writers*iters)
	}
	_, cum := hist.Buckets()
	if last := cum[len(cum)-1]; last != uint64(writers*iters) {
		t.Fatalf("+Inf cumulative = %d, want %d", last, writers*iters)
	}
}
