package trace

import (
	"context"
	"log/slog"
)

// WrapHandler wraps a slog.Handler so every record logged with a
// trace-carrying context is stamped with trace_id and span_id attrs.
// Records logged without an active trace pass through untouched.
// Wrapping an already-wrapped handler returns it unchanged.
func WrapHandler(inner slog.Handler) slog.Handler {
	if _, ok := inner.(*ctxHandler); ok {
		return inner
	}
	return &ctxHandler{inner: inner}
}

type ctxHandler struct {
	inner slog.Handler
}

func (h *ctxHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *ctxHandler) Handle(ctx context.Context, r slog.Record) error {
	if tid, sid, ok := FromContext(ctx); ok {
		r = r.Clone()
		r.AddAttrs(slog.String("trace_id", tid), slog.String("span_id", sid))
	}
	return h.inner.Handle(ctx, r)
}

func (h *ctxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &ctxHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *ctxHandler) WithGroup(name string) slog.Handler {
	return &ctxHandler{inner: h.inner.WithGroup(name)}
}
