package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func mkTrace(id string, dur time.Duration) TraceData {
	return TraceData{TraceID: id, Name: "t-" + id, Duration: dur, Spans: []SpanData{{Name: "root"}}}
}

func TestRecorderEviction(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Add(mkTrace(fmt.Sprintf("%032d", i), time.Duration(i)))
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
	// 0 and 1 evicted, 2..4 retained.
	for i := 0; i < 2; i++ {
		if _, ok := r.Get(fmt.Sprintf("%032d", i)); ok {
			t.Fatalf("trace %d survived eviction", i)
		}
	}
	for i := 2; i < 5; i++ {
		got, ok := r.Get(fmt.Sprintf("%032d", i))
		if !ok || got.Duration != time.Duration(i) {
			t.Fatalf("trace %d: %+v ok=%v", i, got, ok)
		}
	}
}

func TestRecorderDuplicateIDEviction(t *testing.T) {
	r := NewRecorder(2)
	r.Add(mkTrace("dup", 1))
	r.Add(mkTrace("dup", 2)) // moves the index forward
	r.Add(mkTrace("other", 3))
	// Overwriting slot 0 (the first "dup") must not delete the live
	// index entry for the second "dup" in slot 1.
	if got, ok := r.Get("dup"); !ok || got.Duration != 2 {
		t.Fatalf("dup = %+v ok=%v, want duration 2", got, ok)
	}
	if _, ok := r.Get("other"); !ok {
		t.Fatal("other missing")
	}
}

func TestRecorderSummariesOrder(t *testing.T) {
	r := NewRecorder(4)
	durs := []time.Duration{30, 10, 40, 20}
	for i, d := range durs {
		r.Add(mkTrace(fmt.Sprintf("%032d", i), d*time.Millisecond))
	}
	recent := r.Summaries(0, false)
	if len(recent) != 4 {
		t.Fatalf("len = %d", len(recent))
	}
	// Newest first: 3, 2, 1, 0.
	for i, want := range []int{3, 2, 1, 0} {
		if recent[i].TraceID != fmt.Sprintf("%032d", want) {
			t.Fatalf("recent[%d] = %q", i, recent[i].TraceID)
		}
	}
	slow := r.Summaries(2, true)
	if len(slow) != 2 || slow[0].Duration != 40 || slow[1].Duration != 30 {
		t.Fatalf("slowest = %+v", slow)
	}
}

func TestRecorderSummariesAfterWrap(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 7; i++ {
		r.Add(mkTrace(fmt.Sprintf("%032d", i), time.Duration(i)))
	}
	recent := r.Summaries(0, false)
	for i, want := range []int{6, 5, 4} {
		if recent[i].TraceID != fmt.Sprintf("%032d", want) {
			t.Fatalf("recent[%d] = %q", i, recent[i].TraceID)
		}
	}
}

// TestRecorderConcurrent hammers the ring from many writers while
// readers list and fetch; run with -race.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add(mkTrace(fmt.Sprintf("%02d%030d", w, i), time.Duration(i)))
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, s := range r.Summaries(8, i%2 == 0) {
					r.Get(s.TraceID)
				}
			}
		}()
	}
	wg.Wait()
	if r.Len() != 16 {
		t.Fatalf("Len = %d, want 16", r.Len())
	}
	if r.Total() != 1600 {
		t.Fatalf("Total = %d, want 1600", r.Total())
	}
	// Every retained summary must still be fetchable.
	for _, s := range r.Summaries(0, false) {
		if _, ok := r.Get(s.TraceID); !ok {
			t.Fatalf("retained trace %q unfetchable", s.TraceID)
		}
	}
}
