package trace

import (
	"sort"
	"sync"
	"time"
)

// TraceData is one completed trace: the root's identity and timing
// plus every recorded span (parentage is reconstructed from the
// ParentID fields by readers; see internal/server's /debug/traces).
type TraceData struct {
	TraceID  string        `json:"trace_id"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Spans    []SpanData    `json:"spans"`
	// Dropped counts spans refused after the per-trace MaxSpans cap —
	// non-zero means the tree is a prefix, not the whole story.
	Dropped int `json:"dropped,omitempty"`
}

// Summary is the flight-recorder listing entry: everything about a
// trace except its span tree.
type Summary struct {
	TraceID  string    `json:"trace_id"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	Duration float64   `json:"duration_ms"`
	Spans    int       `json:"spans"`
	Dropped  int       `json:"dropped,omitempty"`
}

// Recorder is the flight recorder: a fixed-size ring of the most
// recently completed traces, indexed by trace ID. Memory is bounded by
// capacity × (MaxSpans per trace); the oldest trace is evicted — and
// becomes unfetchable — when the ring wraps. Safe for concurrent use.
type Recorder struct {
	mu    sync.Mutex
	buf   []TraceData
	byID  map[string]int // trace ID -> buf slot
	next  int            // slot the next Add overwrites
	size  int            // occupied slots
	total uint64         // traces ever recorded
}

// NewRecorder returns a recorder retaining up to capacity traces
// (<= 0 selects DefaultBufferSize).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultBufferSize
	}
	return &Recorder{
		buf:  make([]TraceData, capacity),
		byID: make(map[string]int, capacity),
	}
}

// Add records a completed trace, evicting the oldest when full.
func (r *Recorder) Add(t TraceData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.size == len(r.buf) {
		// Only drop the index entry if it still points at the slot being
		// overwritten (a duplicate trace ID may have moved it forward).
		if old, ok := r.byID[r.buf[r.next].TraceID]; ok && old == r.next {
			delete(r.byID, r.buf[r.next].TraceID)
		}
	}
	r.buf[r.next] = t
	r.byID[t.TraceID] = r.next
	r.next = (r.next + 1) % len(r.buf)
	if r.size < len(r.buf) {
		r.size++
	}
	r.total++
}

// Get fetches a retained trace by ID.
func (r *Recorder) Get(id string) (TraceData, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	slot, ok := r.byID[id]
	if !ok {
		return TraceData{}, false
	}
	return r.buf[slot], true
}

// Len reports the retained trace count.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}

// Total reports how many traces were ever recorded (retained or
// evicted).
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Summaries lists up to n retained traces, newest first by default or
// slowest first when byDuration is set. n <= 0 lists everything.
func (r *Recorder) Summaries(n int, byDuration bool) []Summary {
	r.mu.Lock()
	out := make([]Summary, 0, r.size)
	for i := 0; i < r.size; i++ {
		// Walk backwards from the most recently written slot.
		slot := ((r.next-1-i)%len(r.buf) + len(r.buf)) % len(r.buf)
		t := &r.buf[slot]
		out = append(out, Summary{
			TraceID:  t.TraceID,
			Name:     t.Name,
			Start:    t.Start,
			Duration: float64(t.Duration) / float64(time.Millisecond),
			Spans:    len(t.Spans),
			Dropped:  t.Dropped,
		})
	}
	r.mu.Unlock()
	if byDuration {
		sort.SliceStable(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	}
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}
