// Package trace is the request-scoped tracing layer of the Ratio Rules
// system: a dependency-free span tracer that answers "why was *this*
// request slow?" where the metrics registry (internal/obs) can only
// answer in aggregates.
//
// A trace is a tree of spans sharing one 16-byte trace ID. The HTTP
// middleware opens the root span per request (continuing a W3C
// `traceparent` from the wire when the client sent one), and every
// layer below — the batch worker pool, the hole-pattern fill cache,
// the store WAL, the miner phases — opens children with Start. Spans
// flow through context.Context, so parentage survives goroutine hops
// as long as the ctx does.
//
// Completed traces land in a bounded in-process ring buffer (the
// "flight recorder", see Recorder): no external collector, no sampling
// daemon, just the last N request trees queryable over HTTP
// (GET /debug/traces in internal/server). Traces whose root exceeds
// the configured Slow threshold additionally emit one always-on log
// line, so the slowest requests leave evidence even after the ring
// has rolled over.
//
// Overhead is bounded by design: span IDs come from math/rand/v2
// (lock-free, per-goroutine state), each trace caps its span count at
// MaxSpans (further Starts return a no-op span and count as dropped),
// and a finished trace is a plain value in a fixed-size ring. Library
// code can call Start unconditionally: with no active trace in ctx it
// returns a nil span whose methods are all no-ops.
package trace

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"sync"
	"time"
)

// Counter is the write side of a monotonic metric. It matches
// *obs.Counter; the tracer cannot import internal/obs directly (obs
// already imports this package for log correlation), so the dependency
// points this way.
type Counter interface{ Inc() }

// Defaults for Config zero values.
const (
	// DefaultBufferSize is the flight-recorder capacity in traces.
	DefaultBufferSize = 256
	// DefaultMaxSpans caps the spans recorded per trace; beyond it new
	// spans are dropped (and counted), bounding per-request allocation
	// no matter how many rows a batch streams.
	DefaultMaxSpans = 512
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SpanData is the immutable record of a finished span.
type SpanData struct {
	SpanID   string        `json:"span_id"`
	ParentID string        `json:"parent_id,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Config tunes a Tracer. The zero value selects the defaults above,
// with the slow-trace log disabled.
type Config struct {
	// BufferSize is the flight-recorder ring capacity in completed
	// traces (rrserve -trace-buffer); <= 0 selects DefaultBufferSize.
	BufferSize int
	// MaxSpans bounds the spans recorded per trace; <= 0 selects
	// DefaultMaxSpans.
	MaxSpans int
	// Slow is the always-on slow-trace log threshold (rrserve
	// -trace-slow): a completed trace at least this long logs one line
	// through Logger. 0 disables the log.
	Slow time.Duration
	// Logger receives slow-trace lines; nil disables them.
	Logger *slog.Logger
	// Dropped, when non-nil, is incremented once per span refused after
	// the per-trace cap (obs.SpanDropCounter registers the conventional
	// rr_trace_spans_dropped_total). Span loss is silent by design on
	// streaming routes — one NDJSON request can want thousands of spans
	// — so the aggregate counter is how an operator notices it at all;
	// the per-trace count is in /debug/traces/{id}.
	Dropped Counter
}

// Tracer owns a flight recorder and the per-trace policy. Construct
// with New; safe for concurrent use.
type Tracer struct {
	rec      *Recorder
	maxSpans int
	slow     time.Duration
	logger   *slog.Logger
	dropped  Counter
}

// New returns a Tracer over a fresh flight recorder.
func New(cfg Config) *Tracer {
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = DefaultMaxSpans
	}
	return &Tracer{
		rec:      NewRecorder(cfg.BufferSize),
		maxSpans: cfg.MaxSpans,
		slow:     cfg.Slow,
		logger:   cfg.Logger,
		dropped:  cfg.Dropped,
	}
}

// Recorder returns the tracer's flight recorder (the read side for the
// /debug/traces endpoints).
func (t *Tracer) Recorder() *Recorder { return t.rec }

// state is the accumulation shared by every span of one trace.
type state struct {
	tracer  *Tracer
	traceID string

	mu      sync.Mutex
	spans   []SpanData
	started int  // spans handed out, bounded by tracer.maxSpans
	dropped int  // Starts refused after the cap
	done    bool // root ended; the trace is sealed
}

// Span is one timed operation within a trace. A nil *Span is a valid
// no-op: every method checks for it, so library code can Start/End
// unconditionally. A span's attrs belong to the goroutine that started
// it; End publishes them to the shared trace under the trace lock.
type Span struct {
	st     *state
	name   string
	spanID string
	parent string
	start  time.Time
	root   bool
	attrs  []Attr
}

// ctxKey carries the active *Span through context.
type ctxKey struct{}

// StartRoot opens the root span of a new trace. When remote is valid —
// a parsed incoming `traceparent` — the new trace continues the
// caller's trace ID with the remote span as the root's parent;
// otherwise a fresh trace ID is generated. The returned ctx carries
// the span for Start calls below.
func (t *Tracer) StartRoot(ctx context.Context, name string, remote SpanContext) (context.Context, *Span) {
	st := &state{tracer: t, started: 1}
	var parent string
	if remote.Valid() {
		st.traceID = remote.TraceID
		parent = remote.SpanID
	} else {
		st.traceID = newTraceID()
	}
	sp := &Span{
		st:     st,
		name:   name,
		spanID: newSpanID(),
		parent: parent,
		start:  time.Now(),
		root:   true,
	}
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// Start opens a child of the span carried by ctx. Without an active
// trace — or once the trace hit its span cap or its root already ended
// — it returns ctx unchanged and a nil (no-op) span, so callers never
// branch on tracing being enabled.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(ctxKey{}).(*Span)
	if parent == nil || parent.st == nil {
		return ctx, nil
	}
	st := parent.st
	st.mu.Lock()
	if st.done || st.started >= st.tracer.maxSpans {
		st.dropped++
		st.mu.Unlock()
		if c := st.tracer.dropped; c != nil {
			c.Inc()
		}
		return ctx, nil
	}
	st.started++
	st.mu.Unlock()
	sp := &Span{
		st:     st,
		name:   name,
		spanID: newSpanID(),
		parent: parent.spanID,
		start:  time.Now(),
	}
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// SetAttr annotates the span. Attrs set after End are lost. Call only
// from the goroutine that started the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil || s.st == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// TraceID returns the 32-hex-digit trace ID ("" for a no-op span).
func (s *Span) TraceID() string {
	if s == nil || s.st == nil {
		return ""
	}
	return s.st.traceID
}

// SpanID returns the 16-hex-digit span ID ("" for a no-op span).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.spanID
}

// End finishes the span, publishing it to the trace. Ending the root
// seals the trace: its spans go to the flight recorder, the slow-trace
// log fires if configured, and stragglers — children ending after the
// root, which only happens when work outlives the request — are
// discarded. End on a nil span or a sealed trace is a no-op.
func (s *Span) End() {
	if s == nil || s.st == nil {
		return
	}
	st := s.st
	dur := time.Since(s.start)
	data := SpanData{
		SpanID:   s.spanID,
		ParentID: s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: dur,
		Attrs:    s.attrs,
	}
	st.mu.Lock()
	if st.done {
		st.mu.Unlock()
		return
	}
	st.spans = append(st.spans, data)
	if !s.root {
		st.mu.Unlock()
		return
	}
	st.done = true
	spans := st.spans
	dropped := st.dropped
	st.mu.Unlock()

	t := st.tracer
	t.rec.Add(TraceData{
		TraceID:  st.traceID,
		Name:     s.name,
		Start:    s.start,
		Duration: dur,
		Spans:    spans,
		Dropped:  dropped,
	})
	if t.slow > 0 && dur >= t.slow && t.logger != nil {
		t.logger.Warn("slow trace",
			"trace_id", st.traceID, "name", s.name,
			"duration", dur, "spans", len(spans), "dropped", dropped)
	}
}

// FromContext reports the active trace and span IDs, for log
// correlation (see WrapHandler).
func FromContext(ctx context.Context) (traceID, spanID string, ok bool) {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	if sp == nil || sp.st == nil {
		return "", "", false
	}
	return sp.st.traceID, sp.spanID, true
}

// newTraceID returns 16 random bytes as 32 lowercase hex digits,
// re-rolling the (astronomically unlikely) all-zero value the W3C
// spec forbids.
func newTraceID() string {
	for {
		hi, lo := rand.Uint64(), rand.Uint64()
		if hi|lo != 0 {
			return fmt.Sprintf("%016x%016x", hi, lo)
		}
	}
}

// newSpanID returns 8 random bytes as 16 lowercase hex digits, never
// all-zero.
func newSpanID() string {
	for {
		if v := rand.Uint64(); v != 0 {
			return fmt.Sprintf("%016x", v)
		}
	}
}
