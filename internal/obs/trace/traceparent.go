package trace

import (
	"fmt"
	"strings"
)

// W3C Trace Context (https://www.w3.org/TR/trace-context/) header
// handling. The wire format of `traceparent` is
//
//	version "-" trace-id "-" parent-id "-" trace-flags
//	  00    -   32 hex   -   16 hex    -   2 hex
//
// all lowercase hex. Parsing is strict for version 00 and forward-
// compatible for higher versions (extra fields after the flags are
// ignored, as the spec requires); anything malformed is rejected so
// the middleware starts a fresh trace instead of inheriting garbage.

// TraceparentHeader is the canonical header name (HTTP header lookup
// is case-insensitive; the spec spells it lowercase).
const TraceparentHeader = "traceparent"

// SpanContext is the parsed identity of a remote span — what an
// incoming traceparent carries and what StartRoot continues.
type SpanContext struct {
	TraceID string // 32 lowercase hex digits, not all zero
	SpanID  string // 16 lowercase hex digits, not all zero
	Sampled bool   // trace-flags bit 0
}

// Valid reports whether the context carries usable IDs.
func (c SpanContext) Valid() bool { return c.TraceID != "" && c.SpanID != "" }

// ParseTraceparent parses a traceparent header value. The zero
// SpanContext and a non-nil error come back for anything malformed:
// wrong field sizes, uppercase or non-hex digits, the forbidden
// all-zero IDs, or the invalid version ff.
func ParseTraceparent(h string) (SpanContext, error) {
	if h == "" {
		return SpanContext{}, fmt.Errorf("trace: empty traceparent")
	}
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: want 4 fields, got %d", h, len(parts))
	}
	version, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	if !isHex(version, 2) {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: bad version", h)
	}
	if version == "ff" {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: version ff is invalid", h)
	}
	// Version 00 has exactly four fields; future versions may append
	// more, but must start with these four.
	if version == "00" && len(parts) != 4 {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: version 00 allows no extra fields", h)
	}
	if !isHex(traceID, 32) || allZero(traceID) {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: bad trace-id", h)
	}
	if !isHex(spanID, 16) || allZero(spanID) {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: bad parent-id", h)
	}
	if !isHex(flags, 2) {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: bad trace-flags", h)
	}
	sampled := hexNibble(flags[1])&0x1 == 1
	return SpanContext{TraceID: traceID, SpanID: spanID, Sampled: sampled}, nil
}

// Traceparent renders the version-00 header for the given IDs, always
// with the sampled flag set (every recorded trace is "sampled" — the
// flight recorder keeps whatever fits).
func Traceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// isHex reports whether s is exactly n lowercase hex digits.
func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// allZero reports whether s is entirely '0' characters.
func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// hexNibble maps one validated lowercase hex digit to its value.
func hexNibble(c byte) byte {
	if c <= '9' {
		return c - '0'
	}
	return c - 'a' + 10
}
