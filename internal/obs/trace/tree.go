package trace

import (
	"sort"
	"time"
)

// RemoteNodeAttr is the span attr key that marks a cross-node handoff:
// a span that shipped its context to another process (the coordinator's
// fan-out, the leader's replication stamp) sets it to the receiving
// node's address, and the /debug/traces/{id} surface turns it into a
// remote-child reference so an operator knows where the rest of the
// trace lives.
const RemoteNodeAttr = "remote_node"

// SpanNode is one span in the rendered trace tree.
type SpanNode struct {
	SpanID     string      `json:"span_id"`
	Name       string      `json:"name"`
	Start      time.Time   `json:"start"`
	DurationMS float64     `json:"duration_ms"`
	Attrs      []Attr      `json:"attrs,omitempty"`
	Children   []*SpanNode `json:"children,omitempty"`
}

// RemoteRef points at the part of a trace that lives on another node.
// Kind "child" means a local span handed its context to Node (the
// subtree continues there); kind "parent" means the local subtree was
// started by a remote span — SpanID is then the unresolved remote
// parent's ID, and the trace root lives wherever that span ran.
type RemoteRef struct {
	Kind   string `json:"kind"`
	SpanID string `json:"span_id"`
	Node   string `json:"node,omitempty"`
}

// BuildTree arranges a sealed trace's spans into parent/child trees.
// Spans whose parent is not in the trace — the root, remote-parented
// continuation roots, and children whose parent was dropped at the span
// cap — surface as top-level roots rather than vanishing. Siblings are
// ordered by start time.
func BuildTree(spans []SpanData) []*SpanNode {
	nodes := make(map[string]*SpanNode, len(spans))
	for _, sd := range spans {
		nodes[sd.SpanID] = &SpanNode{
			SpanID:     sd.SpanID,
			Name:       sd.Name,
			Start:      sd.Start,
			DurationMS: float64(sd.Duration) / 1e6,
			Attrs:      sd.Attrs,
		}
	}
	var roots []*SpanNode
	for _, sd := range spans {
		n := nodes[sd.SpanID]
		if p, ok := nodes[sd.ParentID]; ok && sd.ParentID != sd.SpanID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortNodes func([]*SpanNode)
	sortNodes = func(ns []*SpanNode) {
		sort.Slice(ns, func(i, j int) bool { return ns[i].Start.Before(ns[j].Start) })
		for _, n := range ns {
			sortNodes(n.Children)
		}
	}
	sortNodes(roots)
	return roots
}

// RemoteRefs extracts a trace's cross-node references: one "child" ref
// per RemoteNodeAttr annotation, and one "parent" ref per span whose
// parent ID is absent from the local span set (the remote span that
// started this subtree).
func RemoteRefs(spans []SpanData) []RemoteRef {
	local := make(map[string]bool, len(spans))
	for _, sd := range spans {
		local[sd.SpanID] = true
	}
	var refs []RemoteRef
	for _, sd := range spans {
		for _, a := range sd.Attrs {
			if a.Key != RemoteNodeAttr {
				continue
			}
			node, _ := a.Value.(string)
			refs = append(refs, RemoteRef{Kind: "child", SpanID: sd.SpanID, Node: node})
		}
		if sd.ParentID != "" && !local[sd.ParentID] {
			refs = append(refs, RemoteRef{Kind: "parent", SpanID: sd.ParentID})
		}
	}
	return refs
}
