package trace

import (
	"strings"
	"testing"
)

func TestParseTraceparentValid(t *testing.T) {
	tid := "4bf92f3577b34da6a3ce929d0e0e4736"
	sid := "00f067aa0ba902b7"
	cases := []struct {
		in      string
		sampled bool
	}{
		{"00-" + tid + "-" + sid + "-01", true},
		{"00-" + tid + "-" + sid + "-00", false},
		{"00-" + tid + "-" + sid + "-ff", true},
		// Future version: extra fields after flags are tolerated.
		{"01-" + tid + "-" + sid + "-01-extra", true},
	}
	for _, c := range cases {
		sc, err := ParseTraceparent(c.in)
		if err != nil {
			t.Fatalf("ParseTraceparent(%q): %v", c.in, err)
		}
		if sc.TraceID != tid || sc.SpanID != sid || sc.Sampled != c.sampled {
			t.Fatalf("ParseTraceparent(%q) = %+v", c.in, sc)
		}
		if !sc.Valid() {
			t.Fatalf("ParseTraceparent(%q) not Valid", c.in)
		}
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	tid := "4bf92f3577b34da6a3ce929d0e0e4736"
	sid := "00f067aa0ba902b7"
	cases := []string{
		"",
		"garbage",
		"00-" + tid + "-" + sid,              // missing flags
		"0-" + tid + "-" + sid + "-01",       // short version
		"ff-" + tid + "-" + sid + "-01",      // invalid version
		"00-" + tid + "-" + sid + "-01-more", // version 00 forbids extras
		"00-" + strings.Repeat("0", 32) + "-" + sid + "-01", // zero trace-id
		"00-" + tid + "-" + strings.Repeat("0", 16) + "-01", // zero parent-id
		"00-" + strings.ToUpper(tid) + "-" + sid + "-01",    // uppercase hex
		"00-" + tid[:31] + "-" + sid + "-01",                // short trace-id
		"00-" + tid + "-" + sid + "-0g",                     // non-hex flags
		"00-" + tid + "x" + tid[:0] + "-" + sid + "-01",     // non-hex trace-id
		"zz-" + tid + "-" + sid + "-01",                     // non-hex version
		"00-" + tid + "-" + sid + "1-01",                    // long parent-id
	}
	for _, c := range cases {
		if sc, err := ParseTraceparent(c); err == nil {
			t.Fatalf("ParseTraceparent(%q) accepted: %+v", c, sc)
		}
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Config{})
	_, root := tr.StartRoot(t.Context(), "x", SpanContext{})
	defer root.End()
	h := Traceparent(root.TraceID(), root.SpanID())
	sc, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("round trip %q: %v", h, err)
	}
	if sc.TraceID != root.TraceID() || sc.SpanID != root.SpanID() || !sc.Sampled {
		t.Fatalf("round trip %q = %+v", h, sc)
	}
}
