package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartRootFreshTrace(t *testing.T) {
	tr := New(Config{})
	ctx, root := tr.StartRoot(context.Background(), "GET /x", SpanContext{})
	if !isHex(root.TraceID(), 32) || allZero(root.TraceID()) {
		t.Fatalf("bad trace id %q", root.TraceID())
	}
	if !isHex(root.SpanID(), 16) {
		t.Fatalf("bad span id %q", root.SpanID())
	}
	tid, sid, ok := FromContext(ctx)
	if !ok || tid != root.TraceID() || sid != root.SpanID() {
		t.Fatalf("FromContext = %q %q %v, want %q %q true", tid, sid, ok, root.TraceID(), root.SpanID())
	}
	root.End()
	got, ok := tr.Recorder().Get(root.TraceID())
	if !ok {
		t.Fatal("trace not recorded")
	}
	if len(got.Spans) != 1 || got.Spans[0].Name != "GET /x" {
		t.Fatalf("spans = %+v", got.Spans)
	}
	if got.Spans[0].ParentID != "" {
		t.Fatalf("root has parent %q", got.Spans[0].ParentID)
	}
}

func TestStartRootContinuesRemote(t *testing.T) {
	tr := New(Config{})
	remote := SpanContext{TraceID: strings.Repeat("ab", 16), SpanID: strings.Repeat("cd", 8), Sampled: true}
	_, root := tr.StartRoot(context.Background(), "GET /x", remote)
	if root.TraceID() != remote.TraceID {
		t.Fatalf("trace id %q, want remote %q", root.TraceID(), remote.TraceID)
	}
	root.End()
	got, _ := tr.Recorder().Get(remote.TraceID)
	if got.Spans[0].ParentID != remote.SpanID {
		t.Fatalf("root parent %q, want remote span %q", got.Spans[0].ParentID, remote.SpanID)
	}
}

func TestChildParentage(t *testing.T) {
	tr := New(Config{})
	ctx, root := tr.StartRoot(context.Background(), "root", SpanContext{})
	cctx, child := Start(ctx, "child")
	child.SetAttr("k", 7)
	_, grand := Start(cctx, "grandchild")
	grand.End()
	child.End()
	root.End()

	got, ok := tr.Recorder().Get(root.TraceID())
	if !ok {
		t.Fatal("trace not recorded")
	}
	byName := map[string]SpanData{}
	for _, sp := range got.Spans {
		byName[sp.Name] = sp
	}
	if len(byName) != 3 {
		t.Fatalf("want 3 spans, got %+v", got.Spans)
	}
	if byName["child"].ParentID != byName["root"].SpanID {
		t.Fatalf("child parent %q, want %q", byName["child"].ParentID, byName["root"].SpanID)
	}
	if byName["grandchild"].ParentID != byName["child"].SpanID {
		t.Fatalf("grandchild parent %q, want %q", byName["grandchild"].ParentID, byName["child"].SpanID)
	}
	if a := byName["child"].Attrs; len(a) != 1 || a[0].Key != "k" {
		t.Fatalf("child attrs %+v", a)
	}
}

func TestNoopSpanWithoutTrace(t *testing.T) {
	ctx, sp := Start(context.Background(), "orphan")
	if sp != nil {
		t.Fatal("want nil span without active trace")
	}
	// All methods must be nil-safe.
	sp.SetAttr("k", "v")
	if sp.TraceID() != "" || sp.SpanID() != "" {
		t.Fatal("nil span leaked IDs")
	}
	sp.End()
	if _, _, ok := FromContext(ctx); ok {
		t.Fatal("FromContext true without trace")
	}
}

func TestMaxSpansCap(t *testing.T) {
	tr := New(Config{MaxSpans: 3})
	ctx, root := tr.StartRoot(context.Background(), "root", SpanContext{})
	var ended int
	for i := 0; i < 10; i++ {
		_, sp := Start(ctx, "child")
		if sp != nil {
			ended++
		}
		sp.End()
	}
	root.End()
	got, _ := tr.Recorder().Get(root.TraceID())
	if ended != 2 { // root counts against the cap of 3
		t.Fatalf("got %d live children, want 2", ended)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(got.Spans))
	}
	if got.Dropped != 8 {
		t.Fatalf("dropped = %d, want 8", got.Dropped)
	}
}

func TestStragglerAfterRootEndDiscarded(t *testing.T) {
	tr := New(Config{})
	ctx, root := tr.StartRoot(context.Background(), "root", SpanContext{})
	_, late := Start(ctx, "late")
	root.End()
	late.End() // root already sealed the trace
	got, _ := tr.Recorder().Get(root.TraceID())
	if len(got.Spans) != 1 {
		t.Fatalf("straggler recorded: %+v", got.Spans)
	}
	if _, sp := Start(ctx, "after"); sp != nil {
		t.Fatal("Start after seal returned live span")
	}
}

func TestCrossGoroutineParentage(t *testing.T) {
	tr := New(Config{})
	ctx, root := tr.StartRoot(context.Background(), "root", SpanContext{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := Start(ctx, "worker")
			time.Sleep(time.Millisecond)
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	got, _ := tr.Recorder().Get(root.TraceID())
	workers := 0
	for _, sp := range got.Spans {
		if sp.Name != "worker" {
			continue
		}
		workers++
		if sp.ParentID != root.SpanID() {
			t.Fatalf("worker parent %q, want root %q", sp.ParentID, root.SpanID())
		}
		if sp.Duration <= 0 {
			t.Fatalf("worker duration %v", sp.Duration)
		}
	}
	if workers != 8 {
		t.Fatalf("recorded %d workers, want 8", workers)
	}
}

func TestSlowTraceLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	tr := New(Config{Slow: time.Nanosecond, Logger: logger})
	_, root := tr.StartRoot(context.Background(), "slow", SpanContext{})
	time.Sleep(time.Millisecond)
	root.End()
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("no slow-trace log line: %v (buf=%q)", err, buf.String())
	}
	if line["msg"] != "slow trace" || line["trace_id"] != root.TraceID() {
		t.Fatalf("log line %v", line)
	}

	// Below-threshold traces stay quiet.
	buf.Reset()
	tr2 := New(Config{Slow: time.Hour, Logger: logger})
	_, r2 := tr2.StartRoot(context.Background(), "fast", SpanContext{})
	r2.End()
	if buf.Len() != 0 {
		t.Fatalf("fast trace logged: %q", buf.String())
	}
}

func TestWrapHandlerStampsIDs(t *testing.T) {
	var buf bytes.Buffer
	h := WrapHandler(slog.NewJSONHandler(&buf, nil))
	if WrapHandler(h) != h {
		t.Fatal("double wrap not idempotent")
	}
	logger := slog.New(h)

	tr := New(Config{})
	ctx, root := tr.StartRoot(context.Background(), "root", SpanContext{})
	logger.InfoContext(ctx, "traced line")
	logger.Info("plain line")
	root.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %q", buf.String())
	}
	var traced, plain map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &traced); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &plain); err != nil {
		t.Fatal(err)
	}
	if traced["trace_id"] != root.TraceID() || traced["span_id"] != root.SpanID() {
		t.Fatalf("traced line missing IDs: %v", traced)
	}
	if _, ok := plain["trace_id"]; ok {
		t.Fatalf("plain line has trace_id: %v", plain)
	}
}

func TestWrapHandlerWithAttrsKeepsStamping(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(WrapHandler(slog.NewJSONHandler(&buf, nil))).With("component", "x")
	tr := New(Config{})
	ctx, root := tr.StartRoot(context.Background(), "root", SpanContext{})
	defer root.End()
	logger.InfoContext(ctx, "line")
	var got map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got["trace_id"] != root.TraceID() || got["component"] != "x" {
		t.Fatalf("line %v", got)
	}
}
