package obs

import (
	"net/http/httptest"
	"ratiorules/internal/obs/obstest"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the full exposition output of a small
// registry: family ordering, HELP/TYPE lines, label rendering,
// cumulative histogram buckets with the implicit +Inf.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("rr_b_total", "Counts b.").Add(3)
	r.GaugeVec("rr_a_gauge", "Gauge with labels.", "route").With("/v1/rules").Set(1.5)
	h := r.Histogram("rr_c_seconds", "Latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP rr_a_gauge Gauge with labels.
# TYPE rr_a_gauge gauge
rr_a_gauge{route="/v1/rules"} 1.5
# HELP rr_b_total Counts b.
# TYPE rr_b_total counter
rr_b_total 3
# HELP rr_c_seconds Latency.
# TYPE rr_c_seconds histogram
rr_c_seconds_bucket{le="0.01"} 1
rr_c_seconds_bucket{le="0.1"} 2
rr_c_seconds_bucket{le="+Inf"} 3
rr_c_seconds_sum 5.055
rr_c_seconds_count 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestHandlerServesValidExposition(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("rr_http_requests_total", "Requests.", "route", "status").
		With(`/v1/rules/{name}`, "2xx").Inc()
	r.Histogram("rr_lat_seconds", "Latency.", DefBuckets).Observe(0.42)
	r.Gauge("rr_inflight", "In flight.").Set(2)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if got := rec.Header().Get("Content-Type"); got != ContentType {
		t.Fatalf("content type = %q, want %q", got, ContentType)
	}
	obstest.ValidateExposition(t, rec.Body.String())
	if !strings.Contains(rec.Body.String(), `rr_http_requests_total{route="/v1/rules/{name}",status="2xx"} 1`) {
		t.Errorf("missing labeled counter sample in:\n%s", rec.Body.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "Escapes.", "v").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{v="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped sample %q missing from:\n%s", want, b.String())
	}
	obstest.ValidateExposition(t, b.String())
}

func TestGatherHistogramSamples(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("phase_seconds", "Phases.", []float64{1}, "phase")
	h.With("scan").Observe(0.25)
	h.With("scan").Observe(0.75)

	var sum, count float64
	for _, s := range r.Gather() {
		switch s.Name {
		case "phase_seconds_sum":
			sum = s.Value
			if s.Labels["phase"] != "scan" {
				t.Errorf("sum labels = %v", s.Labels)
			}
		case "phase_seconds_count":
			count = s.Value
		}
	}
	if sum != 1.0 || count != 2 {
		t.Fatalf("gathered sum=%v count=%v, want 1.0 and 2", sum, count)
	}
}
