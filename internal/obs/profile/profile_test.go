package profile

import (
	"context"
	"io"
	"log/slog"
	"sync"
	"testing"
	"time"

	"ratiorules/internal/obs"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestSnapshotCapture: one capture cycle retains a heap and a
// goroutine snapshot, the listing carries absolute values on the first
// pair and deltas on the second, and blobs fetch by ID.
func TestSnapshotCapture(t *testing.T) {
	r := New(Config{Logger: quietLogger(), Metrics: obs.NewRegistry()})
	r.CaptureSnapshots()
	entries := r.List()
	if len(entries) != 2 {
		t.Fatalf("List() = %d entries, want heap+goroutine", len(entries))
	}
	kinds := map[string]Entry{}
	for _, e := range entries {
		kinds[e.Kind] = e
		if e.Bytes <= 0 {
			t.Errorf("%s capture has empty blob", e.Kind)
		}
		meta, blob, ok := r.Get(e.ID)
		if !ok || meta.ID != e.ID || len(blob) != e.Bytes {
			t.Errorf("Get(%d) = %+v ok=%v blob=%d, want the listed entry", e.ID, meta, ok, len(blob))
		}
	}
	if kinds[KindHeap].HeapAllocBytes == 0 {
		t.Error("heap snapshot missing HeapAllocBytes")
	}
	if kinds[KindGoroutine].Goroutines <= 0 {
		t.Error("goroutine snapshot missing count")
	}

	r.CaptureSnapshots()
	second := r.List()[len(r.List())-1]
	if second.Kind != KindGoroutine {
		t.Fatalf("last entry kind = %s, want goroutine", second.Kind)
	}
	// Delta may be zero but after a second capture it is populated from
	// the first; assert monotonic IDs while here.
	if second.ID <= kinds[KindGoroutine].ID {
		t.Errorf("IDs not monotonic: %d then %d", kinds[KindGoroutine].ID, second.ID)
	}
}

// TestEntryCountEviction: the ring holds MaxEntries and evicts oldest
// first; evicted IDs stop resolving, survivors keep resolving.
func TestEntryCountEviction(t *testing.T) {
	r := New(Config{MaxEntries: 4, Logger: quietLogger()})
	for i := 0; i < 6; i++ {
		r.CaptureSnapshots() // 2 entries per cycle → 12 total
	}
	if n := r.Len(); n != 4 {
		t.Fatalf("Len() = %d, want 4", n)
	}
	entries := r.List()
	if first := entries[0].ID; first != 9 {
		t.Errorf("oldest retained ID = %d, want 9 (IDs 1-8 evicted)", first)
	}
	if _, _, ok := r.Get(1); ok {
		t.Error("evicted entry 1 still resolves")
	}
	if _, _, ok := r.Get(entries[len(entries)-1].ID); !ok {
		t.Error("newest entry does not resolve")
	}
}

// TestByteBudgetEviction: a tiny MaxBytes forces eviction down to at
// least one entry — the newest capture is always retained even when it
// alone exceeds the budget.
func TestByteBudgetEviction(t *testing.T) {
	r := New(Config{MaxBytes: 1, Logger: quietLogger()})
	r.CaptureSnapshots()
	if n := r.Len(); n != 1 {
		t.Fatalf("Len() = %d, want 1 (budget keeps only the newest)", n)
	}
	if r.TotalBytes() <= 0 {
		t.Error("TotalBytes() = 0, want the retained blob's size")
	}
	last := r.List()[0]
	if last.Kind != KindGoroutine {
		t.Errorf("survivor kind = %s, want the newest capture (goroutine)", last.Kind)
	}
}

// TestCPUCapture exercises a short real CPU profile window.
func TestCPUCapture(t *testing.T) {
	r := New(Config{Interval: time.Second, CPUDuration: 20 * time.Millisecond, Logger: quietLogger()})
	if err := r.CaptureCPU(context.Background()); err != nil {
		t.Fatal(err)
	}
	entries := r.List()
	if len(entries) != 1 || entries[0].Kind != KindCPU {
		t.Fatalf("List() = %+v, want one cpu entry", entries)
	}
	if entries[0].DurationMS < 15 {
		t.Errorf("cpu capture window %.1fms, want ~20ms", entries[0].DurationMS)
	}
	if entries[0].Bytes <= 0 {
		t.Error("cpu capture has empty blob")
	}
}

// TestRunLoop: Run takes an immediate first snapshot cycle and stops
// cleanly on ctx cancel.
func TestRunLoop(t *testing.T) {
	r := New(Config{Interval: time.Hour, CPUDuration: -1, Logger: quietLogger()})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); r.Run(ctx) }()
	deadline := time.Now().Add(2 * time.Second)
	for r.Len() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("Run never took its first snapshot cycle")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

// TestConcurrentAccess hammers captures and reads together; run under
// -race this is the ring's data-race check.
func TestConcurrentAccess(t *testing.T) {
	r := New(Config{MaxEntries: 8, Logger: quietLogger()})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				r.CaptureSnapshots()
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				for _, e := range r.List() {
					r.Get(e.ID)
				}
				r.Len()
				r.TotalBytes()
			}
		}()
	}
	wg.Wait()
	if n := r.Len(); n > 8 {
		t.Errorf("Len() = %d, exceeds MaxEntries", n)
	}
}
