// Package profile is the always-on continuous profiler: a background
// loop takes periodic short CPU captures and heap/goroutine snapshots
// and retains them in a bounded in-process ring, the profiling
// equivalent of the trace flight recorder. When the 3am republish was
// slow, GET /debug/profiles (internal/server) still holds the pprof
// blobs that cover it — no -debug-addr needed in advance, no external
// agent.
//
// Overhead is bounded by construction: the CPU profiler runs
// CPUDuration out of every Interval (50ms/min by default at the
// rrserve flags; the BENCH_PR9 experiment measures the ingest-path
// cost), snapshots are two pprof.Lookup writes per cycle, and the ring
// evicts oldest-first under both an entry cap and a byte cap, so
// retention can never grow with uptime.
package profile

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"ratiorules/internal/obs"
)

// Capture kinds.
const (
	KindCPU       = "cpu"
	KindHeap      = "heap"
	KindGoroutine = "goroutine"
)

// Defaults for Config zero values.
const (
	DefaultInterval    = time.Minute
	DefaultCPUDuration = 2 * time.Second
	DefaultMaxEntries  = 64
	DefaultMaxBytes    = 8 << 20
)

// Config tunes a Ring. The zero value selects the defaults above.
type Config struct {
	// Interval is the capture-cycle cadence (rrserve -profile-every).
	Interval time.Duration
	// CPUDuration is how long each cycle's CPU capture runs; 0 disables
	// CPU captures (snapshots still run). It is clamped to Interval/2 so
	// a misconfigured ring can never profile back-to-back.
	CPUDuration time.Duration
	// MaxEntries bounds retained captures; oldest evict first.
	MaxEntries int
	// MaxBytes bounds the summed size of retained pprof blobs.
	MaxBytes int64
	// Logger receives capture-failure lines; nil uses slog.Default.
	Logger *slog.Logger
	// Metrics registers the rr_profile_* meta-metrics when non-nil.
	Metrics *obs.Registry
}

// Entry describes one retained capture; the pprof blob itself comes
// from Get.
type Entry struct {
	ID    int       `json:"id"`
	Kind  string    `json:"kind"`
	Start time.Time `json:"start"`
	// DurationMS is the CPU capture window (0 for snapshots).
	DurationMS float64 `json:"duration_ms,omitempty"`
	// Bytes is the pprof blob size.
	Bytes int `json:"bytes"`
	// Snapshot deltas: heap allocation and goroutine count movement
	// since the previous snapshot of the same kind, so a leak trends
	// visibly in the listing without fetching blobs.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes,omitempty"`
	HeapDeltaBytes int64  `json:"heap_delta_bytes,omitempty"`
	Goroutines     int    `json:"goroutines,omitempty"`
	GoroutineDelta int    `json:"goroutine_delta,omitempty"`
}

// entry pairs the listing row with its blob.
type entry struct {
	Entry
	data []byte
}

// Ring is the bounded capture store plus the capture loop. A Ring built
// by New is passive — it serves an empty listing — until Run starts the
// loop; internal/server always mounts the /debug/profiles routes over
// whatever ring it is given, and rrserve decides whether it runs.
type Ring struct {
	interval time.Duration
	cpuDur   time.Duration
	maxN     int
	maxBytes int64
	logger   *slog.Logger

	mu         sync.Mutex
	entries    []*entry
	nextID     int
	totalBytes int64
	lastHeap   map[string]uint64 // kind -> last absolute value, for deltas
	lastGoro   int
	haveGoro   bool

	captures *obs.CounterVec // kind
	errors   *obs.Counter
	evicted  *obs.Counter
}

// New builds a passive Ring; call Run to start capturing.
func New(cfg Config) *Ring {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.CPUDuration < 0 {
		cfg.CPUDuration = 0
	}
	if cfg.CPUDuration == 0 {
		cfg.CPUDuration = DefaultCPUDuration
	}
	if cfg.CPUDuration > cfg.Interval/2 {
		cfg.CPUDuration = cfg.Interval / 2
	}
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	r := &Ring{
		interval: cfg.Interval,
		cpuDur:   cfg.CPUDuration,
		maxN:     cfg.MaxEntries,
		maxBytes: cfg.MaxBytes,
		logger:   cfg.Logger,
		lastHeap: make(map[string]uint64),
	}
	if reg := cfg.Metrics; reg != nil {
		r.captures = reg.CounterVec("rr_profile_captures_total",
			"Profile captures retained, by kind.", "kind")
		r.errors = reg.Counter("rr_profile_capture_errors_total",
			"Profile captures that failed (e.g. CPU profiler already running).")
		r.evicted = reg.Counter("rr_profile_evictions_total",
			"Captures evicted from the ring by the entry or byte bound.")
		ringBytes := reg.Gauge("rr_profile_ring_bytes",
			"Summed size of retained pprof blobs.")
		ringEntries := reg.Gauge("rr_profile_ring_entries",
			"Captures currently retained.")
		reg.RegisterCollector(func() {
			r.mu.Lock()
			ringBytes.Set(float64(r.totalBytes))
			ringEntries.Set(float64(len(r.entries)))
			r.mu.Unlock()
		})
	}
	return r
}

// Interval returns the capture cadence (for the /debug/profiles
// listing, so an operator can see the knobs in effect).
func (r *Ring) Interval() time.Duration { return r.interval }

// CPUDuration returns the per-cycle CPU capture window.
func (r *Ring) CPUDuration() time.Duration { return r.cpuDur }

// Run drives capture cycles until ctx is cancelled: one heap +
// goroutine snapshot pair and one short CPU capture per Interval. It
// takes an immediate first snapshot so the ring is useful seconds after
// boot, not one interval later.
func (r *Ring) Run(ctx context.Context) {
	r.CaptureSnapshots()
	tick := time.NewTicker(r.interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if r.cpuDur > 0 {
			if err := r.CaptureCPU(ctx); err != nil && ctx.Err() == nil {
				if r.errors != nil {
					r.errors.Inc()
				}
				r.logger.Warn("cpu profile capture failed", "error", err)
			}
		}
		if ctx.Err() != nil {
			return
		}
		r.CaptureSnapshots()
	}
}

// CaptureCPU runs one CPU capture of the configured duration and
// retains the blob. It fails when another CPU profile is active (the
// runtime allows one at a time — e.g. an operator-driven
// /debug/pprof/profile on the side listener wins).
func (r *Ring) CaptureCPU(ctx context.Context) error {
	var buf bytes.Buffer
	start := time.Now()
	if err := pprof.StartCPUProfile(&buf); err != nil {
		return fmt.Errorf("profile: start cpu: %w", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(r.cpuDur):
	}
	pprof.StopCPUProfile()
	r.add(&entry{Entry: Entry{
		Kind:       KindCPU,
		Start:      start,
		DurationMS: float64(time.Since(start)) / 1e6,
	}, data: append([]byte(nil), buf.Bytes()...)})
	return nil
}

// CaptureSnapshots retains one heap and one goroutine snapshot with
// deltas against the previous pair.
func (r *Ring) CaptureSnapshots() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	goro := runtime.NumGoroutine()
	for _, kind := range []string{KindHeap, KindGoroutine} {
		p := pprof.Lookup(kind)
		if p == nil {
			continue
		}
		var buf bytes.Buffer
		if err := p.WriteTo(&buf, 0); err != nil {
			if r.errors != nil {
				r.errors.Inc()
			}
			r.logger.Warn("profile snapshot failed", "kind", kind, "error", err)
			continue
		}
		e := &entry{Entry: Entry{Kind: kind, Start: time.Now()}, data: buf.Bytes()}
		r.mu.Lock()
		switch kind {
		case KindHeap:
			e.HeapAllocBytes = ms.HeapAlloc
			if prev, ok := r.lastHeap[kind]; ok {
				e.HeapDeltaBytes = int64(ms.HeapAlloc) - int64(prev)
			}
			r.lastHeap[kind] = ms.HeapAlloc
		case KindGoroutine:
			e.Goroutines = goro
			if r.haveGoro {
				e.GoroutineDelta = goro - r.lastGoro
			}
			r.lastGoro, r.haveGoro = goro, true
		}
		r.mu.Unlock()
		r.add(e)
	}
}

// add retains one capture, evicting oldest-first past either bound.
func (r *Ring) add(e *entry) {
	r.mu.Lock()
	r.nextID++
	e.Entry.ID = r.nextID
	e.Bytes = len(e.data)
	r.entries = append(r.entries, e)
	r.totalBytes += int64(len(e.data))
	evictions := 0
	for len(r.entries) > r.maxN || (r.totalBytes > r.maxBytes && len(r.entries) > 1) {
		victim := r.entries[0]
		r.entries = r.entries[1:]
		r.totalBytes -= int64(len(victim.data))
		evictions++
	}
	r.mu.Unlock()
	if r.captures != nil {
		r.captures.With(e.Kind).Inc()
	}
	if evictions > 0 && r.evicted != nil {
		r.evicted.Add(float64(evictions))
	}
}

// List returns the retained captures, oldest first.
func (r *Ring) List() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Entry, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.Entry
	}
	return out
}

// Get returns one capture's metadata and pprof blob by ID.
func (r *Ring) Get(id int) (Entry, []byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		if e.Entry.ID == id {
			return e.Entry, e.data, true
		}
	}
	return Entry{}, nil, false
}

// Len reports the retained capture count.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// TotalBytes reports the summed retained blob size.
func (r *Ring) TotalBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.totalBytes
}
