package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary: what /debug/fleet reports in
// its build block and what the rr_build_info gauge labels carry, so a
// mixed-version fleet is visible at a glance.
type BuildInfo struct {
	// Version is the main module version ("(devel)" for plain go build,
	// a tag or pseudo-version for installed binaries).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit (vcs.revision), "" when built outside
	// a checkout or with -buildvcs=false.
	Revision string `json:"revision,omitempty"`
	// Modified reports a dirty working tree at build time.
	Modified bool `json:"modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's build identity, read once from
// runtime/debug.ReadBuildInfo.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{Version: "unknown", GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" {
			buildInfo.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// RegisterBuildInfo publishes the constant-1 rr_build_info gauge whose
// labels carry the binary's identity — the Prometheus idiom for joining
// version metadata onto any other series. Safe to call more than once
// on the same registry.
func RegisterBuildInfo(r *Registry) {
	b := Build()
	rev := b.Revision
	if rev == "" {
		rev = "unknown"
	}
	r.GaugeVec("rr_build_info",
		"Build identity of this binary; constant 1.",
		"version", "go_version", "revision").
		With(b.Version, b.GoVersion, rev).Set(1)
}

// SpanDropCounter registers the conventional span-loss counter for a
// trace.Config Dropped hook (see internal/obs/trace): incremented once
// per span refused after the per-trace cap.
func SpanDropCounter(r *Registry) *Counter {
	return r.Counter("rr_trace_spans_dropped_total",
		"Spans dropped after a trace hit its per-trace span cap.")
}
