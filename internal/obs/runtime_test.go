package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestRegisterRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	snap := r.Snapshot()
	for _, name := range []string{
		"rr_go_goroutines",
		"rr_go_heap_bytes",
		"rr_go_gc_pause_seconds",
		"rr_process_uptime_seconds",
	} {
		v, ok := snap[name]
		if !ok {
			t.Fatalf("gauge %s not gathered (snapshot: %v)", name, snap)
		}
		if name != "rr_go_gc_pause_seconds" && v <= 0 {
			t.Fatalf("gauge %s = %v, want > 0", name, v)
		}
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# TYPE rr_go_goroutines gauge") {
		t.Fatalf("exposition missing runtime gauge:\n%s", b.String())
	}
}

func TestRegisterRuntimeIdempotent(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	RegisterRuntime(r)
	r.collectorMu.Lock()
	n := len(r.collectors)
	r.collectorMu.Unlock()
	if n != 1 {
		t.Fatalf("double RegisterRuntime installed %d collectors, want 1", n)
	}
}

func TestRegisterCollectorConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("x_scraped_total", "scrapes observed")
	var calls sync.Map
	r.RegisterCollector(func() { g.Add(1); calls.Store("ran", true) })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if _, ok := calls.Load("ran"); !ok {
		t.Fatal("collector never ran")
	}
	if got := r.Snapshot()["x_scraped_total"]; got != 401 {
		t.Fatalf("collector ran %v times, want 401 (8*50 + final)", got)
	}
}
