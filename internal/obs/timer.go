package obs

import "time"

// Observer is anything that accepts a float64 observation — both
// Histogram and Gauge satisfy it, so a Timer can feed either a latency
// distribution or a "seconds of last run" gauge.
type Observer interface {
	Observe(float64)
}

// Observe implements Observer on Gauge by setting the value.
func (g *Gauge) Observe(v float64) { g.Set(v) }

// Timer measures a duration and reports it, in seconds, to an
// Observer. Typical use:
//
//	t := obs.NewTimer(phaseSeconds.With("scan"))
//	... work ...
//	t.ObserveDuration()
type Timer struct {
	start time.Time
	obs   Observer
}

// NewTimer starts a timer that will report to o (which may be nil, in
// which case ObserveDuration only returns the elapsed time).
func NewTimer(o Observer) *Timer {
	return &Timer{start: time.Now(), obs: o}
}

// ObserveDuration reports the elapsed time since NewTimer to the
// observer and returns it. It may be called multiple times; each call
// observes the total elapsed time so far.
func (t *Timer) ObserveDuration() time.Duration {
	d := time.Since(t.start)
	if t.obs != nil {
		t.obs.Observe(d.Seconds())
	}
	return d
}

// Rate returns n/elapsed in events per second, or 0 for non-positive
// elapsed — the rows/sec and cells/sec throughput helper.
func Rate(n int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed.Seconds()
}
