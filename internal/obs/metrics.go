package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// addFloat atomically adds v to the float64 stored as bits in u.
func addFloat(u *atomic.Uint64, v float64) {
	for {
		old := u.Load()
		nu := math.Float64bits(math.Float64frombits(old) + v)
		if u.CompareAndSwap(old, nu) {
			return
		}
	}
}

// Counter is a monotonically increasing value. The zero value is ready
// to use, but counters should be obtained from a Registry so they are
// scraped.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v, which must not be negative.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic(fmt.Sprintf("obs: counter decreased by %v", v))
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (negative to subtract).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets and tracks their
// sum, in the Prometheus cumulative-bucket model. Observations are
// lock-free; a scrape concurrent with observations may see a sum, a
// count and bucket fills that differ by the in-flight observations,
// which Prometheus tolerates by design.
type Histogram struct {
	upper   []float64 // ascending upper bounds; +Inf is implicit
	counts  []atomic.Uint64
	inf     atomic.Uint64
	sumBits atomic.Uint64
	total   atomic.Uint64
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{
		upper:  upper,
		counts: make([]atomic.Uint64, len(upper)),
	}
}

// validateBuckets checks bounds are finite and strictly ascending,
// returning a defensive copy (DefBuckets when empty).
func validateBuckets(upper []float64) []float64 {
	if len(upper) == 0 {
		upper = DefBuckets
	}
	out := append([]float64(nil), upper...)
	for i, b := range out {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: non-finite histogram bucket %v", b))
		}
		if i > 0 && out[i-1] >= b {
			panic(fmt.Sprintf("obs: histogram buckets not ascending at %v", b))
		}
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	if i < len(h.upper) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	addFloat(&h.sumBits, v)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the upper bounds and the cumulative counts at each
// bound, ending with the +Inf bucket (whose bound is math.Inf(1)).
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	bounds = make([]float64, len(h.upper)+1)
	cumulative = make([]uint64, len(h.upper)+1)
	var acc uint64
	for i := range h.upper {
		bounds[i] = h.upper[i]
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	bounds[len(h.upper)] = math.Inf(1)
	cumulative[len(h.upper)] = acc + h.inf.Load()
	return bounds, cumulative
}

// DefBuckets are latency buckets covering 100µs to 10s, suited to both
// in-process mining phases and HTTP request service times.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are decade buckets for row/cell counts and payload sizes.
var SizeBuckets = []float64{1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7}

// ExponentialBuckets returns n buckets starting at start (> 0), each
// factor (> 1) times the previous.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: bad exponential buckets (%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}
