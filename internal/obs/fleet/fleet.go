// Package fleet is the federated observability surface: a coordinator-
// or leader-side collector that scrapes every member node's /metrics
// and /readyz on a ticker and republishes them as one per-node-labeled
// exposition (GET /metrics/fleet) plus a JSON rollup (GET /debug/fleet).
// One scrape answers "is the fleet healthy, and where is it slow" —
// no hand-walking N node endpoints.
//
// Unreachable members degrade, they do not disappear: the collector
// keeps serving each member's last good scrape marked stale
// (rr_fleet_member_stale{node=...} 1, error + age in the rollup), so a
// dead worker's final state stays diagnosable exactly when it matters
// most.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"ratiorules/internal/obs"
)

// Defaults for Config zero values.
const (
	DefaultInterval = 5 * time.Second
	DefaultTimeout  = 2 * time.Second

	// maxScrapeBody bounds one member's /metrics body.
	maxScrapeBody = 4 << 20
	// maxProbeBody bounds one member's /readyz or shards body.
	maxProbeBody = 256 << 10
)

// Member is one scrape target.
type Member struct {
	// Name labels the member's series in the fleet exposition; "" uses
	// the URL.
	Name string
	// URL is the member's base URL (scheme://host:port, no path).
	URL string
	// Role is advisory ("worker", "follower", "leader", ...); workers
	// additionally get their shard listing scraped.
	Role string
}

// Config tunes a Collector.
type Config struct {
	// Members is the static target list (rrserve -fleet-members).
	Members []Member
	// Source, when non-nil, is re-evaluated every scrape cycle and its
	// members are appended to the static list — how the coordinator's
	// live cluster membership feeds the collector.
	Source func() []Member
	// Interval is the scrape cadence; DefaultInterval if 0.
	Interval time.Duration
	// Timeout bounds each member request; DefaultTimeout if 0.
	Timeout time.Duration
	// Client issues the scrapes; a fresh client if nil.
	Client *http.Client
	// Logger receives scrape-failure lines; nil uses slog.Default.
	Logger *slog.Logger
	// Metrics registers the rr_fleet_* meta-metrics when non-nil.
	Metrics *obs.Registry
	// SelfName/SelfRole/SelfMetrics describe the collecting node
	// itself: when SelfMetrics is non-nil its registry is rendered into
	// the fleet exposition under node=SelfName without an HTTP hop.
	SelfName    string
	SelfRole    string
	SelfMetrics *obs.Registry
}

// NodeStatus is one member's row in the /debug/fleet rollup.
type NodeStatus struct {
	Name    string `json:"name"`
	URL     string `json:"url,omitempty"`
	Role    string `json:"role,omitempty"`
	Healthy bool   `json:"healthy"`
	// Stale reports that the most recent scrape failed and the series
	// served for this node are retained from an older one.
	Stale bool   `json:"stale"`
	Err   string `json:"error,omitempty"`
	// LastScrape is the last successful scrape (zero when none ever
	// succeeded); ScrapeAgeSeconds is its age.
	LastScrape       time.Time `json:"last_scrape"`
	ScrapeAgeSeconds float64   `json:"scrape_age_seconds"`
	// Build is parsed from the member's rr_build_info series, so
	// mixed-version fleets are visible in one place.
	Build *obs.BuildInfo `json:"build,omitempty"`
	// Status is the member's raw /readyz (or /healthz fallback) body:
	// role, lag, firing alerts — whatever the node reports.
	Status json.RawMessage `json:"status,omitempty"`
	// Shards is the raw shard listing for worker members.
	Shards json.RawMessage `json:"shards,omitempty"`
}

// nodeState is the retained scrape result for one member.
type nodeState struct {
	member      Member
	metricsText []byte
	status      json.RawMessage
	shards      json.RawMessage
	build       *obs.BuildInfo
	healthy     bool
	lastOK      time.Time
	lastErr     string
	everOK      bool
}

// Collector owns the scrape loop and the retained per-member state.
type Collector struct {
	cfg    Config
	client *http.Client
	logger *slog.Logger

	mu    sync.Mutex
	nodes map[string]*nodeState // keyed by member URL (or name for self-like statics)

	members   *obs.Gauge
	membersUp *obs.Gauge
	scrapes   *obs.CounterVec // result: ok|error
	scrapeSec *obs.Histogram
}

// New builds a Collector; Run starts the loop. A Collector is also
// usable without Run by calling ScrapeOnce (tests, one-shot tools).
func New(cfg Config) *Collector {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	c := &Collector{
		cfg:    cfg,
		client: cfg.Client,
		logger: cfg.Logger,
		nodes:  make(map[string]*nodeState),
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if reg := cfg.Metrics; reg != nil {
		c.members = reg.Gauge("rr_fleet_members",
			"Members known to the fleet collector (including self).")
		c.membersUp = reg.Gauge("rr_fleet_members_up",
			"Members whose latest scrape succeeded and probe reported healthy.")
		c.scrapes = reg.CounterVec("rr_fleet_scrapes_total",
			"Member scrape attempts by result.", "result")
		c.scrapeSec = reg.Histogram("rr_fleet_scrape_seconds",
			"Wall time of one full fleet scrape cycle.", nil)
	}
	return c
}

// Interval returns the scrape cadence.
func (c *Collector) Interval() time.Duration { return c.cfg.Interval }

// Run scrapes every Interval until ctx is cancelled, starting with an
// immediate cycle so the fleet surface is populated right after boot.
func (c *Collector) Run(ctx context.Context) {
	c.ScrapeOnce(ctx)
	tick := time.NewTicker(c.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			c.ScrapeOnce(ctx)
		}
	}
}

// targets merges the static member list with the live Source.
func (c *Collector) targets() []Member {
	out := append([]Member(nil), c.cfg.Members...)
	if c.cfg.Source != nil {
		out = append(out, c.cfg.Source()...)
	}
	// Dedupe by URL, first writer wins (statics take precedence so an
	// operator can pin a name/role for a sourced member).
	seen := make(map[string]bool, len(out))
	dst := out[:0]
	for _, m := range out {
		if m.URL == "" || seen[m.URL] {
			continue
		}
		seen[m.URL] = true
		dst = append(dst, m)
	}
	return dst
}

// ScrapeOnce runs one scrape cycle over the current member set.
func (c *Collector) ScrapeOnce(ctx context.Context) {
	start := time.Now()
	members := c.targets()

	// Forget members that left the set (resharded away, reconfigured):
	// retaining them forever would report a removed node as eternally
	// stale rather than gone.
	current := make(map[string]bool, len(members))
	for _, m := range members {
		current[m.URL] = true
	}
	c.mu.Lock()
	for url := range c.nodes {
		if !current[url] {
			delete(c.nodes, url)
		}
	}
	c.mu.Unlock()

	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		go func(m Member) {
			defer wg.Done()
			c.scrapeMember(ctx, m)
		}(m)
	}
	wg.Wait()

	up := 0
	c.mu.Lock()
	n := len(c.nodes)
	for _, ns := range c.nodes {
		if ns.healthy && ns.lastErr == "" {
			up++
		}
	}
	c.mu.Unlock()
	if c.cfg.SelfMetrics != nil {
		n++
		up++
	}
	if c.members != nil {
		c.members.Set(float64(n))
		c.membersUp.Set(float64(up))
		c.scrapeSec.Observe(time.Since(start).Seconds())
	}
}

// scrapeMember fetches one member's metrics, probe and (for workers)
// shard listing, retaining the previous good data on failure.
func (c *Collector) scrapeMember(ctx context.Context, m Member) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()

	text, err := c.get(ctx, m.URL+"/metrics", maxScrapeBody)
	var status, shards []byte
	var healthy bool
	if err == nil {
		status, healthy, err = c.probe(ctx, m.URL)
	}
	if err == nil && m.Role == "worker" {
		// Best-effort: a worker that predates the shards listing still
		// scrapes fine.
		if sh, shErr := c.get(ctx, m.URL+"/v1/cluster/shards", maxProbeBody); shErr == nil {
			shards = sh
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	ns := c.nodes[m.URL]
	if ns == nil {
		ns = &nodeState{}
		c.nodes[m.URL] = ns
	}
	ns.member = m
	if err != nil {
		ns.lastErr = err.Error()
		ns.healthy = false
		if c.scrapes != nil {
			c.scrapes.With("error").Inc()
		}
		c.logger.Warn("fleet scrape failed", "member", m.URL, "error", err)
		return
	}
	ns.metricsText = text
	ns.status = status
	ns.shards = shards
	ns.build = parseBuildInfo(text)
	ns.healthy = healthy
	ns.lastOK = time.Now()
	ns.lastErr = ""
	ns.everOK = true
	if c.scrapes != nil {
		c.scrapes.With("ok").Inc()
	}
}

// get fetches one URL with a size bound.
func (c *Collector) get(ctx context.Context, url string, limit int64) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: %s answered %s", url, resp.Status)
	}
	return body, nil
}

// probe fetches the member's readiness: /readyz where it exists (server
// nodes), falling back to /healthz (worker nodes serve only liveness).
// A 503 readyz is a successful scrape of an unhealthy node — the body
// still carries role/lag/alerts and is retained.
func (c *Collector) probe(ctx context.Context, base string) (body []byte, healthy bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	b, readErr := io.ReadAll(io.LimitReader(resp.Body, maxProbeBody))
	resp.Body.Close()
	if readErr != nil {
		return nil, false, readErr
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return b, true, nil
	case resp.StatusCode == http.StatusServiceUnavailable:
		return b, false, nil
	case resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed:
		b, err := c.get(ctx, base+"/healthz", maxProbeBody)
		if err != nil {
			return nil, false, err
		}
		return b, true, nil
	default:
		return nil, false, fmt.Errorf("fleet: %s/readyz answered %s", base, resp.Status)
	}
}

// Nodes returns the rollup rows, sorted by name, for /debug/fleet.
func (c *Collector) Nodes() []NodeStatus {
	c.mu.Lock()
	out := make([]NodeStatus, 0, len(c.nodes))
	for _, ns := range c.nodes {
		row := NodeStatus{
			Name:    memberName(ns.member),
			URL:     ns.member.URL,
			Role:    ns.member.Role,
			Healthy: ns.healthy && ns.lastErr == "",
			Stale:   ns.everOK && ns.lastErr != "",
			Err:     ns.lastErr,
			Build:   ns.build,
			Status:  ns.status,
			Shards:  ns.shards,
		}
		row.LastScrape = ns.lastOK
		if ns.everOK {
			row.ScrapeAgeSeconds = time.Since(ns.lastOK).Seconds()
		}
		out = append(out, row)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// memberName is the node label for a member.
func memberName(m Member) string {
	if m.Name != "" {
		return m.Name
	}
	return m.URL
}

// ErrNoData reports a fleet exposition with no members at all.
var ErrNoData = errors.New("fleet: no members configured")

// WriteMetrics writes the federated exposition: every member's retained
// /metrics text (and the collector's own registry as SelfName) with a
// node="..." label injected into each sample, plus synthetic per-node
// health series:
//
//	rr_fleet_member_up{node=...}                 1 scraped + healthy
//	rr_fleet_member_stale{node=...}              1 serving retained data
//	rr_fleet_member_scrape_age_seconds{node=...} age of served data
//
// HELP/TYPE comments are deduplicated across members (first emitter
// wins); sample lines pass through byte-for-byte otherwise, so member
// label sets are preserved under the added node label.
func (c *Collector) WriteMetrics(w io.Writer) error {
	type block struct {
		node string
		text []byte
		row  NodeStatus
	}
	var blocks []block
	if c.cfg.SelfMetrics != nil {
		var sb strings.Builder
		c.cfg.SelfMetrics.WritePrometheus(&sb)
		name := c.cfg.SelfName
		if name == "" {
			name = "self"
		}
		blocks = append(blocks, block{node: name, text: []byte(sb.String()),
			row: NodeStatus{Name: name, Healthy: true}})
	}
	c.mu.Lock()
	for _, ns := range c.nodes {
		blocks = append(blocks, block{
			node: memberName(ns.member),
			text: ns.metricsText,
			row: NodeStatus{
				Name:    memberName(ns.member),
				Healthy: ns.healthy && ns.lastErr == "",
				Stale:   ns.everOK && ns.lastErr != "",
			},
		})
	}
	c.mu.Unlock()
	if len(blocks) == 0 {
		return ErrNoData
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].node < blocks[j].node })

	bw := newDedupWriter(w)
	for _, b := range blocks {
		if err := relabel(bw, b.text, b.node); err != nil {
			return err
		}
	}
	// Synthetic health series last, one sample per node.
	if err := bw.meta("rr_fleet_member_up", "gauge",
		"1 when the member's latest scrape succeeded and it probed healthy."); err != nil {
		return err
	}
	for _, b := range blocks {
		if err := bw.sample("rr_fleet_member_up", b.node, boolVal(b.row.Healthy)); err != nil {
			return err
		}
	}
	if err := bw.meta("rr_fleet_member_stale", "gauge",
		"1 when the member's series are retained from an older scrape."); err != nil {
		return err
	}
	for _, b := range blocks {
		if err := bw.sample("rr_fleet_member_stale", b.node, boolVal(b.row.Stale)); err != nil {
			return err
		}
	}
	return nil
}

func boolVal(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// dedupWriter emits exposition lines, dropping repeated HELP/TYPE
// comments for families already described by an earlier member.
type dedupWriter struct {
	w    io.Writer
	seen map[string]bool
}

func newDedupWriter(w io.Writer) *dedupWriter {
	return &dedupWriter{w: w, seen: make(map[string]bool)}
}

func (d *dedupWriter) line(s string) error {
	if strings.HasPrefix(s, "#") {
		f := strings.Fields(s)
		// "# HELP name ..." / "# TYPE name ..."
		if len(f) >= 3 && (f[1] == "HELP" || f[1] == "TYPE") {
			key := f[1] + " " + f[2]
			if d.seen[key] {
				return nil
			}
			d.seen[key] = true
		}
	}
	_, err := io.WriteString(d.w, s+"\n")
	return err
}

func (d *dedupWriter) meta(name, typ, help string) error {
	if err := d.line("# HELP " + name + " " + help); err != nil {
		return err
	}
	return d.line("# TYPE " + name + " " + typ)
}

func (d *dedupWriter) sample(name, node, value string) error {
	_, err := fmt.Fprintf(d.w, "%s{node=%q} %s\n", name, node, value)
	return err
}

// relabel streams one member's exposition through the dedup writer with
// node="..." injected into every sample line.
func relabel(d *dedupWriter, text []byte, node string) error {
	for _, raw := range strings.Split(string(text), "\n") {
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := d.line(line); err != nil {
				return err
			}
			continue
		}
		if err := d.line(injectNode(line, node)); err != nil {
			return err
		}
	}
	return nil
}

// injectNode adds node="..." as the first label of one sample line.
func injectNode(line, node string) string {
	label := fmt.Sprintf("node=%q", node)
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	if brace >= 0 && (space < 0 || brace < space) {
		if len(line) > brace+1 && line[brace+1] == '}' {
			return line[:brace+1] + label + line[brace+1:]
		}
		return line[:brace+1] + label + "," + line[brace+1:]
	}
	if space < 0 {
		return line // not a sample line; pass through untouched
	}
	return line[:space] + "{" + label + "}" + line[space:]
}

// parseBuildInfo recovers a member's build identity from its
// rr_build_info series.
func parseBuildInfo(text []byte) *obs.BuildInfo {
	for _, line := range strings.Split(string(text), "\n") {
		if !strings.HasPrefix(line, "rr_build_info{") {
			continue
		}
		end := strings.IndexByte(line, '}')
		if end < 0 {
			return nil
		}
		b := &obs.BuildInfo{}
		for _, pair := range strings.Split(line[len("rr_build_info{"):end], ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				continue
			}
			v = strings.Trim(v, `"`)
			switch k {
			case "version":
				b.Version = v
			case "go_version":
				b.GoVersion = v
			case "revision":
				b.Revision = v
			}
		}
		return b
	}
	return nil
}
