package fleet

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ratiorules/internal/obs"
)

// fakeMember serves the minimal scrape surface of an rrserve node:
// /metrics text exposition and a /readyz probe.
func fakeMember(t *testing.T, metricsText string, ready bool) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", obs.ContentType)
		io.WriteString(w, metricsText)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		io.WriteString(w, `{"status":"ok","role":"leader"}`)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

const memberAMetrics = `# HELP rr_models Registered models.
# TYPE rr_models gauge
rr_models 3
# HELP rr_build_info Build metadata of the running binary.
# TYPE rr_build_info gauge
rr_build_info{version="v1.2.3",go_version="go1.24",revision="abcdef0"} 1
`

const memberBMetrics = `# HELP rr_models Registered models.
# TYPE rr_models gauge
rr_models 7
`

func newTestCollector(t *testing.T, members ...Member) *Collector {
	t.Helper()
	return New(Config{
		Members:  members,
		Interval: time.Hour, // tests drive scrapes explicitly
		Timeout:  2 * time.Second,
		Logger:   quietLogger(),
		Metrics:  obs.NewRegistry(),
	})
}

// TestFleetAggregation scrapes two live members and checks the merged
// exposition carries per-node series, synthetic liveness series, and
// that /debug/fleet rows parse the build info.
func TestFleetAggregation(t *testing.T) {
	a := fakeMember(t, memberAMetrics, true)
	b := fakeMember(t, memberBMetrics, true)
	c := newTestCollector(t,
		Member{Name: "a", URL: a.URL, Role: "leader"},
		Member{Name: "b", URL: b.URL, Role: "follower"},
	)
	c.ScrapeOnce(context.Background())

	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`rr_models{node="a"} 3`,
		`rr_models{node="b"} 7`,
		`rr_build_info{node="a",version="v1.2.3",go_version="go1.24",revision="abcdef0"} 1`,
		`rr_fleet_member_up{node="a"} 1`,
		`rr_fleet_member_up{node="b"} 1`,
		`rr_fleet_member_stale{node="a"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE metadata must not repeat per node.
	if n := strings.Count(out, "# HELP rr_models "); n != 1 {
		t.Errorf("rr_models HELP repeated %d times, want 1", n)
	}

	nodes := c.Nodes()
	if len(nodes) != 2 {
		t.Fatalf("Nodes() = %d rows, want 2", len(nodes))
	}
	byName := map[string]NodeStatus{}
	for _, n := range nodes {
		byName[n.Name] = n
	}
	na := byName["a"]
	if !na.Healthy || na.Stale || na.Err != "" {
		t.Errorf("node a status = %+v, want healthy fresh", na)
	}
	if na.Build == nil || na.Build.Version != "v1.2.3" || na.Build.Revision != "abcdef0" {
		t.Errorf("node a build = %+v, want parsed rr_build_info", na.Build)
	}
	if byName["b"].Build != nil {
		t.Errorf("node b build = %+v, want nil (no rr_build_info series)", byName["b"].Build)
	}
}

// TestFleetUnreachableMember kills one member between scrapes: the
// collector must keep serving its last-good series, marked stale and
// down, while the healthy member stays fresh.
func TestFleetUnreachableMember(t *testing.T) {
	a := fakeMember(t, memberAMetrics, true)
	b := fakeMember(t, memberBMetrics, true)
	c := newTestCollector(t,
		Member{Name: "a", URL: a.URL},
		Member{Name: "b", URL: b.URL},
	)
	c.ScrapeOnce(context.Background())
	b.Close()
	c.ScrapeOnce(context.Background())

	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`rr_models{node="b"} 7`, // retained last-good data
		`rr_fleet_member_up{node="b"} 0`,
		`rr_fleet_member_stale{node="b"} 1`,
		`rr_fleet_member_up{node="a"} 1`,
		`rr_fleet_member_stale{node="a"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("degraded exposition missing %q:\n%s", want, out)
		}
	}
	for _, n := range c.Nodes() {
		switch n.Name {
		case "a":
			if !n.Healthy || n.Stale {
				t.Errorf("node a = %+v, want healthy fresh", n)
			}
		case "b":
			if n.Healthy || !n.Stale || n.Err == "" {
				t.Errorf("node b = %+v, want down, stale, with error", n)
			}
		}
	}
}

// TestFleetUnhealthyMember: a member that answers its probe 503 is
// scraped (fresh data, not stale) but reported down.
func TestFleetUnhealthyMember(t *testing.T) {
	a := fakeMember(t, memberAMetrics, false)
	c := newTestCollector(t, Member{Name: "a", URL: a.URL})
	c.ScrapeOnce(context.Background())
	nodes := c.Nodes()
	if len(nodes) != 1 {
		t.Fatalf("Nodes() = %d rows, want 1", len(nodes))
	}
	if nodes[0].Healthy || nodes[0].Stale || nodes[0].Err != "" {
		t.Errorf("node = %+v, want unhealthy but fresh (scrape succeeded)", nodes[0])
	}
}

// TestFleetSelfAndSource: the collecting node's own registry renders
// without an HTTP hop, and a live Source feeds extra members per
// scrape; members that leave the source are forgotten.
func TestFleetSelfAndSource(t *testing.T) {
	self := obs.NewRegistry()
	self.Gauge("rr_models", "Registered models.").Set(1)

	w := fakeMember(t, memberBMetrics, true)
	var dynamic []Member
	c := New(Config{
		Source:      func() []Member { return dynamic },
		Interval:    time.Hour,
		Logger:      quietLogger(),
		SelfName:    "co",
		SelfRole:    "coordinator",
		SelfMetrics: self,
	})

	// No members at all: self still renders, ErrNoData is not returned.
	c.ScrapeOnce(context.Background())
	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `rr_models{node="co"} 1`) {
		t.Errorf("self series missing:\n%s", buf.String())
	}

	dynamic = []Member{{Name: "w1", URL: w.URL, Role: "worker"}}
	c.ScrapeOnce(context.Background())
	buf.Reset()
	if err := c.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `rr_models{node="w1"} 7`) {
		t.Errorf("source member series missing:\n%s", buf.String())
	}

	// The worker departs: the next scrape forgets it entirely (a node
	// removed from membership is not "stale", it is gone).
	dynamic = nil
	c.ScrapeOnce(context.Background())
	if n := len(c.Nodes()); n != 0 {
		t.Errorf("departed member still listed: %d rows, want 0", n)
	}
}

// TestFleetNoData: with no members, no source and no self registry the
// exposition has nothing to serve.
func TestFleetNoData(t *testing.T) {
	c := New(Config{Interval: time.Hour, Logger: quietLogger()})
	c.ScrapeOnce(context.Background())
	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf); err != ErrNoData {
		t.Fatalf("WriteMetrics = %v, want ErrNoData", err)
	}
}

// TestInjectNode pins the relabeling across exposition line shapes.
func TestInjectNode(t *testing.T) {
	cases := []struct{ in, node, want string }{
		{`rr_models 3`, "a", `rr_models{node="a"} 3`},
		{`rr_up{job="x"} 1`, "a", `rr_up{node="a",job="x"} 1`},
		{`rr_hist_bucket{le="+Inf"} 4`, "b", `rr_hist_bucket{node="b",le="+Inf"} 4`},
	}
	for _, tc := range cases {
		if got := injectNode(tc.in, tc.node); got != tc.want {
			t.Errorf("injectNode(%q, %q) = %q, want %q", tc.in, tc.node, got, tc.want)
		}
	}
}
