package obs

import (
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug":  slog.LevelDebug,
		"":       slog.LevelInfo,
		"Info":   slog.LevelInfo,
		"WARN":   slog.LevelWarn,
		"error":  slog.LevelError,
		" warn ": slog.LevelWarn,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = (%v, %v), want (%v, nil)", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) succeeded, want error")
	}
}

func TestNewLoggerLevelsAndFormats(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, slog.LevelWarn, false)
	l.Info("hidden")
	l.Warn("shown", "k", "v")
	out := b.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown") || !strings.Contains(out, "k=v") {
		t.Errorf("text logger output wrong: %q", out)
	}

	b.Reset()
	jl := NewLogger(&b, slog.LevelDebug, true)
	jl.Debug("structured", "n", 3)
	var rec map[string]any
	if err := json.Unmarshal([]byte(b.String()), &rec); err != nil {
		t.Fatalf("json logger emitted invalid JSON %q: %v", b.String(), err)
	}
	if rec["msg"] != "structured" || rec["n"] != float64(3) {
		t.Errorf("json record = %v", rec)
	}
}

func TestSetupHonorsEnv(t *testing.T) {
	t.Setenv(EnvLogLevel, "error")
	t.Setenv(EnvLogFormat, "json")
	l := Setup(false)
	if l.Enabled(nil, slog.LevelWarn) {
		t.Error("RR_LOG_LEVEL=error still enables warn")
	}
	// -v overrides the env level down to debug.
	lv := Setup(true)
	if !lv.Enabled(nil, slog.LevelDebug) {
		t.Error("-v did not enable debug")
	}

	t.Setenv(EnvLogLevel, "not-a-level")
	if l := Setup(false); !l.Enabled(nil, slog.LevelInfo) {
		t.Error("bad env level did not fall back to info")
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	l := NopLogger()
	if l.Enabled(nil, slog.LevelError) {
		t.Error("nop logger claims error level is enabled")
	}
	l.Error("goes nowhere") // must not panic
}

func TestTimerObservesSeconds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", "t", DefBuckets)
	timer := NewTimer(h)
	time.Sleep(2 * time.Millisecond)
	d := timer.ObserveDuration()
	if d <= 0 {
		t.Fatalf("elapsed = %v", d)
	}
	if h.Count() != 1 || h.Sum() <= 0 || h.Sum() > 10 {
		t.Fatalf("histogram after timer: count=%d sum=%v", h.Count(), h.Sum())
	}
	// A nil observer only returns the elapsed time.
	if NewTimer(nil).ObserveDuration() < 0 {
		t.Fatal("nil-observer timer went backwards")
	}
}

func TestTimerFeedsGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("last_run_seconds", "t")
	tm := NewTimer(g)
	tm.ObserveDuration()
	if g.Value() < 0 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestRate(t *testing.T) {
	if got := Rate(100, 2*time.Second); got != 50 {
		t.Fatalf("Rate = %v, want 50", got)
	}
	if got := Rate(100, 0); got != 0 {
		t.Fatalf("Rate with zero elapsed = %v, want 0", got)
	}
}
