package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes every registered metric in the Prometheus
// text exposition format (version 0.0.4), families and children in
// sorted order so the output is deterministic for golden tests.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.runCollectors()
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		children := f.sortedChildren()
		if len(children) == 0 {
			continue
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range children {
			labels := labelString(f.labelNames, c.labelValues, "", "")
			switch m := c.metric.(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labels, formatValue(m.Value()))
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labels, formatValue(m.Value()))
			case *Histogram:
				bounds, cum := m.Buckets()
				for i, b := range bounds {
					le := "+Inf"
					if !math.IsInf(b, 1) {
						le = formatValue(b)
					}
					bl := labelString(f.labelNames, c.labelValues, "le", le)
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, bl, cum[i])
				}
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, labels, formatValue(m.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, labels, m.Count())
			}
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the exposition format, for
// mounting at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}

// Sample is one scraped value in a Gather result.
type Sample struct {
	// Name is the metric name; histograms gather as two samples with
	// the _sum and _count suffixes (buckets are exposition-only).
	Name   string
	Labels map[string]string
	Value  float64
}

// Gather snapshots every counter, gauge and histogram into a flat
// sample list — the in-process read path for tests and for rrbench's
// JSON summary. Ordering matches the exposition format.
func (r *Registry) Gather() []Sample {
	r.runCollectors()
	var out []Sample
	for _, f := range r.sortedFamilies() {
		for _, c := range f.sortedChildren() {
			labels := make(map[string]string, len(f.labelNames))
			for i, n := range f.labelNames {
				labels[n] = c.labelValues[i]
			}
			switch m := c.metric.(type) {
			case *Counter:
				out = append(out, Sample{f.name, labels, m.Value()})
			case *Gauge:
				out = append(out, Sample{f.name, labels, m.Value()})
			case *Histogram:
				out = append(out, Sample{f.name + "_sum", labels, m.Sum()})
				out = append(out, Sample{f.name + "_count", labels, float64(m.Count())})
			}
		}
	}
	return out
}

// Snapshot flattens Gather into a map keyed by the canonical sample
// line (`name` or `name{k="v",...}` with sorted label names), which
// makes delta assertions in tests one map lookup.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, s := range r.Gather() {
		out[SampleKey(s.Name, s.Labels)] = s.Value
	}
	return out
}

// SampleKey builds the canonical Snapshot key for a metric name and
// label set.
func SampleKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// labelString renders the {k="v",...} label block, optionally with a
// trailing extra label (used for histogram le), or "" when empty.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
