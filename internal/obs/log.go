package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"

	"ratiorules/internal/obs/trace"
)

// Environment variables honored by Setup, shared by every rr command:
//
//	RR_LOG_LEVEL  debug | info | warn | error   (default info)
//	RR_LOG_FORMAT text | json                   (default text)
const (
	EnvLogLevel  = "RR_LOG_LEVEL"
	EnvLogFormat = "RR_LOG_FORMAT"
)

// ParseLevel maps a level name (case-insensitive) to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger returns a structured logger writing to w at the given
// level, as logfmt-style text or JSON. The handler stamps
// trace_id/span_id on records logged with a trace-carrying context
// (see internal/obs/trace), so request logs correlate with the flight
// recorder.
func NewLogger(w io.Writer, level slog.Level, json bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if json {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(trace.WrapHandler(h))
}

// NopLogger returns a logger that discards everything — the default
// for library code when the caller does not supply one.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}

// Setup builds the process logger for a command-line tool: stderr
// output, level from RR_LOG_LEVEL overridden to debug by verbose (the
// -v flag), JSON when RR_LOG_FORMAT=json. It installs the logger as
// the slog default and returns it. An unknown level falls back to
// info with a warning rather than failing the command.
func Setup(verbose bool) *slog.Logger {
	level, err := ParseLevel(os.Getenv(EnvLogLevel))
	if err != nil {
		level = slog.LevelInfo
	}
	if verbose {
		level = slog.LevelDebug
	}
	json := strings.EqualFold(os.Getenv(EnvLogFormat), "json")
	logger := NewLogger(os.Stderr, level, json)
	if err != nil {
		logger.Warn("ignoring bad log level", "env", EnvLogLevel, "value", os.Getenv(EnvLogLevel))
	}
	slog.SetDefault(logger)
	return logger
}
