// Package svd provides the singular value decomposition and the
// Moore–Penrose pseudo-inverse used by the Ratio Rules hole-filling
// algorithm (Eqs. 7–9 of Korn et al., VLDB 1998).
//
// The decomposition is computed by the one-sided Jacobi (Hestenes) method:
// plane rotations repeatedly orthogonalize pairs of columns of the working
// matrix until every pair is numerically orthogonal; the column norms are
// then the singular values. One-sided Jacobi is simple, backward stable, and
// notably accurate for the small, possibly rank-deficient systems that hole
// filling produces ((M−h)×k with k rarely above a dozen).
package svd

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ratiorules/internal/matrix"
)

// ErrNoConvergence is returned when the Jacobi sweeps fail to orthogonalize
// the columns within the iteration budget.
var ErrNoConvergence = errors.New("svd: iteration did not converge")

// SVD is a thin singular value decomposition A = U·diag(σ)·Vᵗ where A is
// m×n, U is m×r, V is n×r, and r = min(m, n). Singular values appear in
// descending order; U and V columns match that order.
type SVD struct {
	U      *matrix.Dense
	Values []float64
	V      *matrix.Dense
}

// Decompose computes the thin SVD of a. The input is not modified.
func Decompose(a *matrix.Dense) (*SVD, error) {
	m, n := a.Dims()
	if m == 0 || n == 0 {
		return &SVD{
			U:      matrix.NewDense(m, 0),
			Values: nil,
			V:      matrix.NewDense(n, 0),
		}, nil
	}
	if m < n {
		// One-sided Jacobi wants at least as many rows as columns;
		// decompose the transpose and swap the factors.
		st, err := Decompose(a.T())
		if err != nil {
			return nil, err
		}
		return &SVD{U: st.V, Values: st.Values, V: st.U}, nil
	}
	return decomposeTall(a)
}

// decomposeTall runs one-sided Jacobi on an m×n matrix with m >= n.
func decomposeTall(a *matrix.Dense) (*SVD, error) {
	m, n := a.Dims()
	// Work on columns: b[j] is the j-th column of the evolving matrix.
	b := make([][]float64, n)
	for j := 0; j < n; j++ {
		b[j] = a.Col(j)
	}
	v := matrix.Identity(n)

	const (
		maxSweeps = 60
		tol       = 1e-13
	)
	// Columns whose norm collapses below zeroTol (relative to the overall
	// matrix scale) belong to the null space; rotating against them only
	// churns round-off and can stall convergence on exactly rank-deficient
	// inputs, so they are frozen.
	zeroTol := 1e-14 * a.FrobeniusNorm()
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				alpha := matrix.Dot(b[p], b[p])
				beta := matrix.Dot(b[q], b[q])
				gamma := matrix.Dot(b[p], b[q])
				if alpha <= zeroTol*zeroTol || beta <= zeroTol*zeroTol {
					continue
				}
				if math.Abs(gamma) <= tol*math.Sqrt(alpha*beta) {
					continue
				}
				rotated = true
				// Rotation that orthogonalizes columns p and q.
				zeta := (beta - alpha) / (2 * gamma)
				var t float64
				if zeta >= 0 {
					t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
				} else {
					t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					bp, bq := b[p][i], b[q][i]
					b[p][i] = c*bp - s*bq
					b[q][i] = s*bp + c*bq
				}
				for i := 0; i < n; i++ {
					vp, vq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if !rotated {
			return assemble(m, n, b, v), nil
		}
	}
	return nil, fmt.Errorf("svd: exceeded %d sweeps on %d×%d matrix: %w", maxSweeps, m, n, ErrNoConvergence)
}

// assemble extracts singular values from the orthogonalized columns, sorts
// them in descending order and builds U and V.
func assemble(m, n int, b [][]float64, v *matrix.Dense) *SVD {
	sigma := make([]float64, n)
	for j := 0; j < n; j++ {
		sigma[j] = matrix.Norm2(b[j])
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, c int) bool { return sigma[idx[a]] > sigma[idx[c]] })

	u := matrix.NewDense(m, n)
	vOut := matrix.NewDense(n, n)
	values := make([]float64, n)
	for out, in := range idx {
		values[out] = sigma[in]
		col := b[in]
		if sigma[in] > 0 {
			for i := 0; i < m; i++ {
				u.Set(i, out, col[i]/sigma[in])
			}
		}
		// Zero singular value: leave the U column zero; callers that need a
		// full orthonormal basis should complete it themselves, but the
		// pseudo-inverse (the only consumer here) ignores null directions.
		for i := 0; i < n; i++ {
			vOut.Set(i, out, v.At(i, in))
		}
	}
	return &SVD{U: u, Values: values, V: vOut}
}

// DefaultRankTol is the relative singular-value cutoff used by Rank and
// PseudoInverse when no tolerance is supplied. It is set well above the
// residue the one-sided Jacobi sweeps leave on exactly null directions
// (~1e-14 relative) and far below any variance direction a real dataset
// produces.
const DefaultRankTol = 1e-12

// Rank returns the numerical rank: the number of singular values above
// tol·σmax. If tol <= 0, DefaultRankTol is used.
func (s *SVD) Rank(tol float64) int {
	if len(s.Values) == 0 {
		return 0
	}
	if tol <= 0 {
		tol = DefaultRankTol
	}
	cut := tol * s.Values[0]
	r := 0
	for _, v := range s.Values {
		if v > cut {
			r++
		}
	}
	return r
}

// PseudoInverse returns the Moore–Penrose pseudo-inverse A⁺ = V·diag(1/σ)·Uᵗ
// (Eq. 8 of the paper), truncating singular values below tol·σmax (default
// tolerance as in Rank).
func PseudoInverse(a *matrix.Dense) (*matrix.Dense, error) {
	s, err := Decompose(a)
	if err != nil {
		return nil, err
	}
	m, n := a.Dims()
	r := s.Rank(0)
	inv := matrix.NewDense(n, m)
	// inv = Σ over the r leading singular triplets of (1/σj)·vj·ujᵗ.
	for j := 0; j < r; j++ {
		w := 1 / s.Values[j]
		for i := 0; i < n; i++ {
			vij := s.V.At(i, j)
			if vij == 0 {
				continue
			}
			row := inv.RawRow(i)
			for k := 0; k < m; k++ {
				row[k] += w * vij * s.U.At(k, j)
			}
		}
	}
	return inv, nil
}

// SolveLeastSquares returns the minimum-norm least-squares solution x of
// A·x = b using the pseudo-inverse. It returns an error when dimensions
// disagree or the decomposition fails.
func SolveLeastSquares(a *matrix.Dense, b []float64) ([]float64, error) {
	m, _ := a.Dims()
	if m != len(b) {
		return nil, fmt.Errorf("svd: solve %d×%d against vector %d: %w",
			m, a.Cols(), len(b), matrix.ErrDimensionMismatch)
	}
	inv, err := PseudoInverse(a)
	if err != nil {
		return nil, err
	}
	return matrix.MulVec(inv, b)
}
