package svd

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ratiorules/internal/matrix"
)

func TestDecomposeKnown(t *testing.T) {
	// diag(3, 2) has singular values 3, 2.
	a := matrix.Diagonal([]float64{3, 2})
	s, err := Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(s.Values, []float64{3, 2}, 1e-12) {
		t.Errorf("Values = %v, want [3 2]", s.Values)
	}
	assertSVD(t, a, s, 1e-10)
}

func TestDecomposeTall(t *testing.T) {
	a := matrix.MustFromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	s, err := Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	// AᵗA = [[2,1],[1,2]] has eigenvalues 3, 1 → singular values √3, 1.
	want := []float64{math.Sqrt(3), 1}
	if !matrix.EqualApproxVec(s.Values, want, 1e-10) {
		t.Errorf("Values = %v, want %v", s.Values, want)
	}
	assertSVD(t, a, s, 1e-10)
}

func TestDecomposeWide(t *testing.T) {
	a := matrix.MustFromRows([][]float64{{1, 0, 1}, {0, 1, 1}})
	s, err := Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{math.Sqrt(3), 1}
	if !matrix.EqualApproxVec(s.Values, want, 1e-10) {
		t.Errorf("Values = %v, want %v", s.Values, want)
	}
	assertSVD(t, a, s, 1e-10)
}

func TestDecomposeEmpty(t *testing.T) {
	for _, dims := range [][2]int{{0, 0}, {0, 3}, {3, 0}} {
		s, err := Decompose(matrix.NewDense(dims[0], dims[1]))
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if len(s.Values) != 0 {
			t.Errorf("%v: Values = %v, want empty", dims, s.Values)
		}
	}
}

func TestDecomposeZeroMatrix(t *testing.T) {
	a := matrix.NewDense(3, 2)
	s, err := Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s.Values {
		if v != 0 {
			t.Errorf("zero matrix singular value %v, want 0", v)
		}
	}
	if s.Rank(0) != 0 {
		t.Errorf("Rank = %d, want 0", s.Rank(0))
	}
}

func TestRank(t *testing.T) {
	// Rank-1: outer product.
	a := matrix.MustFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	s, err := Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Rank(0); got != 1 {
		t.Errorf("Rank = %d, want 1", got)
	}
	if got := s.Rank(1e-3); got != 1 {
		t.Errorf("Rank(1e-3) = %d, want 1", got)
	}
}

func TestInputNotModified(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(rng, 6, 4)
	orig := a.Clone()
	if _, err := Decompose(a); err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(a, orig, 0) {
		t.Error("Decompose modified its input")
	}
}

func TestPseudoInverseSquareInvertible(t *testing.T) {
	a := matrix.MustFromRows([][]float64{{2, 0}, {0, 4}})
	inv, err := PseudoInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.MustFromRows([][]float64{{0.5, 0}, {0, 0.25}})
	if !matrix.EqualApprox(inv, want, 1e-12) {
		t.Errorf("PseudoInverse = %v, want %v", inv, want)
	}
}

func TestPseudoInverseRankDeficient(t *testing.T) {
	// A = [[1,1],[1,1]]: A⁺ = A/4.
	a := matrix.MustFromRows([][]float64{{1, 1}, {1, 1}})
	inv, err := PseudoInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Scale(0.25, a)
	if !matrix.EqualApprox(inv, want, 1e-12) {
		t.Errorf("PseudoInverse = %v, want %v", inv, want)
	}
}

// Property: the four Moore–Penrose conditions hold for random matrices.
func TestMoorePenroseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(8), 1+rng.Intn(8)
		a := randomMatrix(rng, m, n)
		if rng.Intn(3) == 0 && m > 1 {
			// Make it rank-deficient: duplicate a row.
			a.SetRow(m-1, a.Row(0))
		}
		p, err := PseudoInverse(a)
		if err != nil {
			return false
		}
		const tol = 1e-8
		apa := matrix.MustMul(matrix.MustMul(a, p), a)
		if !matrix.EqualApprox(apa, a, tol*(1+a.MaxAbs())) {
			return false // A·A⁺·A = A
		}
		pap := matrix.MustMul(matrix.MustMul(p, a), p)
		if !matrix.EqualApprox(pap, p, tol*(1+p.MaxAbs())) {
			return false // A⁺·A·A⁺ = A⁺
		}
		ap := matrix.MustMul(a, p)
		if !matrix.EqualApprox(ap, ap.T(), tol) {
			return false // (A·A⁺)ᵗ = A·A⁺
		}
		pa := matrix.MustMul(p, a)
		return matrix.EqualApprox(pa, pa.T(), tol) // (A⁺·A)ᵗ = A⁺·A
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: U·diag(σ)·Vᵗ reconstructs A; U, V have orthonormal columns on
// the non-null space; singular values descend and are non-negative.
func TestReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(10), 1+rng.Intn(10)
		a := randomMatrix(rng, m, n)
		s, err := Decompose(a)
		if err != nil {
			return false
		}
		for i := 1; i < len(s.Values); i++ {
			if s.Values[i] < 0 || s.Values[i] > s.Values[i-1]+1e-12 {
				return false
			}
		}
		recon := matrix.MustMul(matrix.MustMul(s.U, matrix.Diagonal(s.Values)), s.V.T())
		return matrix.EqualApprox(a, recon, 1e-9*(1+a.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolveLeastSquaresExact(t *testing.T) {
	a := matrix.MustFromRows([][]float64{{1, 0}, {0, 2}})
	x, err := SolveLeastSquares(a, []float64{3, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(x, []float64{3, 4}, 1e-10) {
		t.Errorf("x = %v, want [3 4]", x)
	}
}

func TestSolveLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = c to observations 1, 2, 3: least squares c = 2.
	a := matrix.MustFromRows([][]float64{{1}, {1}, {1}})
	x, err := SolveLeastSquares(a, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(x, []float64{2}, 1e-10) {
		t.Errorf("x = %v, want [2]", x)
	}
}

func TestSolveLeastSquaresUnderdetermined(t *testing.T) {
	// x + y = 2: minimum-norm solution is (1, 1).
	a := matrix.MustFromRows([][]float64{{1, 1}})
	x, err := SolveLeastSquares(a, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApproxVec(x, []float64{1, 1}, 1e-10) {
		t.Errorf("x = %v, want [1 1]", x)
	}
}

func TestSolveLeastSquaresDimensionMismatch(t *testing.T) {
	a := matrix.NewDense(2, 2)
	if _, err := SolveLeastSquares(a, []float64{1}); !errors.Is(err, matrix.ErrDimensionMismatch) {
		t.Errorf("err = %v, want ErrDimensionMismatch", err)
	}
}

// Property: for consistent systems, SolveLeastSquares recovers a solution.
func TestSolveConsistentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 2+rng.Intn(6), 1+rng.Intn(4)
		if n > m {
			n = m
		}
		a := randomMatrix(rng, m, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b, err := matrix.MulVec(a, xTrue)
		if err != nil {
			return false
		}
		x, err := SolveLeastSquares(a, b)
		if err != nil {
			return false
		}
		// Residual must vanish (solution may differ if rank-deficient).
		got, err := matrix.MulVec(a, x)
		if err != nil {
			return false
		}
		return matrix.EqualApproxVec(got, b, 1e-8*(1+matrix.Norm2(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func assertSVD(t *testing.T, a *matrix.Dense, s *SVD, tol float64) {
	t.Helper()
	recon := matrix.MustMul(matrix.MustMul(s.U, matrix.Diagonal(s.Values)), s.V.T())
	if !matrix.EqualApprox(a, recon, tol*(1+a.MaxAbs())) {
		t.Error("U·diag(σ)·Vᵗ does not reconstruct A")
	}
}

func randomMatrix(rng *rand.Rand, r, c int) *matrix.Dense {
	m := matrix.NewDense(r, c)
	for i := 0; i < r; i++ {
		row := m.RawRow(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	return m
}

func BenchmarkDecompose20x10(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 20, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPseudoInverse20x10(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 20, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PseudoInverse(a); err != nil {
			b.Fatal(err)
		}
	}
}
