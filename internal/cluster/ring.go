package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringVnodes is the virtual-node count per member: enough that losing
// one of a handful of workers redistributes its keyspace roughly evenly
// across the survivors instead of dumping it on one neighbour.
const ringVnodes = 64

// hashRing is an immutable consistent-hash ring over the healthy
// members at build time. Sessions hash (model, chunk seq) onto it;
// because shard-then-merge mining is partition-independent, *any*
// stable assignment is exact, so the ring's only jobs are balance and
// minimal movement when membership changes.
type hashRing struct {
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	m    *member
}

// buildRing hashes ringVnodes points per member. The FNV output is
// post-mixed through splitmix64: vnode names share long prefixes, and
// raw FNV-1a diffuses a 1–2 byte suffix difference poorly, which
// clusters a member's points and lets its arc share collapse (observed
// as one worker receiving no chunks at all).
func buildRing(members []*member) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, len(members)*ringVnodes)}
	for _, m := range members {
		for i := 0; i < ringVnodes; i++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", m.url, i)
			r.points = append(r.points, ringPoint{hash: splitmix64(h.Sum64()), m: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// lookup returns the member owning key, or nil on an empty ring.
func (r *hashRing) lookup(key uint64) *member {
	if len(r.points) == 0 {
		return nil
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].m
}

// splitmix64 is the chunk-key mixer: cheap, stateless, and good enough
// dispersion that consecutive chunk sequence numbers land on different
// members.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
