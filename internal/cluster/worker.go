package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"ratiorules/internal/core"
	"ratiorules/internal/obs"
	"ratiorules/internal/obs/trace"
)

// workerDeadlineSlack is the rolling read/write deadline a worker keeps
// ahead of an active fan-out stream, mirroring the public batch
// endpoints: a live coordinator never trips it, a hung one frees the
// connection within the slack.
const workerDeadlineSlack = 5 * time.Minute

// deadlineEveryChunks bounds how often the deadline is pushed forward.
const deadlineEveryChunks = 256

// Worker is one cluster node: a set of per-model StreamMiner shards fed
// by binary fan-out streams, snapshotted on demand for the
// coordinator's pull-merge-republish loop. Workers never eigensolve,
// gate, or publish — they only fold rows.
type Worker struct {
	instance string
	tracer   *trace.Tracer

	chunks *obs.CounterVec // result: ok|width_conflict|decay_conflict|bad_chunk
	rows   *obs.Counter
	pulls  *obs.Counter

	mu     sync.Mutex
	shards map[string]*workerShard
}

// workerShard guards one model's local accumulator. The miner is
// created lazily by the first chunk, which fixes width and decay.
type workerShard struct {
	mu sync.Mutex
	sm *core.StreamMiner
}

// WorkerOption configures a Worker.
type WorkerOption func(*workerConfig)

type workerConfig struct {
	reg    *obs.Registry
	tracer *trace.Tracer
}

// WithWorkerObs registers the worker's rr_cluster_worker_* metrics on
// reg instead of a private registry.
func WithWorkerObs(reg *obs.Registry) WorkerOption {
	return func(c *workerConfig) { c.reg = reg }
}

// WithWorkerTracer records cluster.fold spans on t. Chunks carrying a
// coordinator trace context (v2 frames, or Chunk.Trace in process)
// continue that trace, so one trace ID spans the fan-out across nodes.
func WithWorkerTracer(t *trace.Tracer) WorkerOption {
	return func(c *workerConfig) { c.tracer = t }
}

// NewWorker creates an empty node with a fresh random instance ID. The
// ID distinguishes a rejoined (empty) worker from the crashed process
// that previously answered on the same address, which is what keeps
// degraded-mode shard retention from double-counting.
func NewWorker(opts ...WorkerOption) *Worker {
	cfg := workerConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.reg == nil {
		cfg.reg = obs.NewRegistry()
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("cluster: instance id: %v", err))
	}
	return &Worker{
		instance: hex.EncodeToString(b[:]),
		tracer:   cfg.tracer,
		chunks: cfg.reg.CounterVec("rr_cluster_worker_chunks_total",
			"Fan-out chunks folded by result.", "result"),
		rows: cfg.reg.Counter("rr_cluster_worker_rows_total",
			"Rows folded into local shards."),
		pulls: cfg.reg.Counter("rr_cluster_worker_shard_pulls_total",
			"Shard snapshots served to coordinators."),
		shards: make(map[string]*workerShard),
	}
}

// Instance returns the node's random per-process identity.
func (w *Worker) Instance() string { return w.instance }

// Handler serves the node's internal API: the binary fan-out stream,
// shard snapshots, and health.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/ingest/{name}", w.serveIngest)
	mux.HandleFunc("GET /v1/cluster/shard/{name}", w.serveShard)
	mux.HandleFunc("GET /v1/cluster/shards", w.serveShards)
	mux.HandleFunc("GET /healthz", w.serveHealth)
	if w.tracer != nil {
		mux.HandleFunc("GET /debug/traces", w.serveTraces)
		mux.HandleFunc("GET /debug/traces/{id}", w.serveTrace)
	}
	return mux
}

// serveTraces lists the node's recent traces — the worker-node
// equivalent of the server's GET /debug/traces, so a coordinator trace
// ID can be chased onto any node that folded part of it.
func (w *Worker) serveTraces(rw http.ResponseWriter, _ *http.Request) {
	rec := w.tracer.Recorder()
	out := struct {
		Retained int             `json:"retained"`
		Total    uint64          `json:"total"`
		Traces   []trace.Summary `json:"traces"`
	}{Retained: rec.Len(), Total: rec.Total(), Traces: rec.Summaries(50, false)}
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(out)
}

// serveTrace returns this node's local subtree of one trace plus its
// remote references (for fold streams, a "parent" ref naming the
// coordinator span that fanned out to us).
func (w *Worker) serveTrace(rw http.ResponseWriter, r *http.Request) {
	td, ok := w.tracer.Recorder().Get(r.PathValue("id"))
	if !ok {
		http.Error(rw, "unknown trace", http.StatusNotFound)
		return
	}
	out := struct {
		TraceID    string            `json:"trace_id"`
		Name       string            `json:"name"`
		Start      time.Time         `json:"start"`
		DurationMS float64           `json:"duration_ms"`
		Spans      int               `json:"spans"`
		Dropped    int               `json:"dropped"`
		Remote     []trace.RemoteRef `json:"remote,omitempty"`
		Tree       []*trace.SpanNode `json:"tree"`
	}{
		TraceID:    td.TraceID,
		Name:       td.Name,
		Start:      td.Start,
		DurationMS: float64(td.Duration) / 1e6,
		Spans:      len(td.Spans),
		Dropped:    td.Dropped,
		Remote:     trace.RemoteRefs(td.Spans),
		Tree:       trace.BuildTree(td.Spans),
	}
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(out)
}

// getShard returns the named shard, creating an empty slot on first
// use.
func (w *Worker) getShard(name string) *workerShard {
	w.mu.Lock()
	defer w.mu.Unlock()
	sh, ok := w.shards[name]
	if !ok {
		sh = &workerShard{}
		w.shards[name] = sh
	}
	return sh
}

// ackResult maps an ack code to its metric label.
func ackResult(code uint32) string {
	switch code {
	case AckOK:
		return "ok"
	case AckWidthConflict:
		return "width_conflict"
	case AckDecayConflict:
		return "decay_conflict"
	default:
		return "bad_chunk"
	}
}

// FoldChunk applies one chunk to the named shard and builds its ack.
// It is the worker's fold entry for both transports: serveIngest calls
// it per decoded wire frame, and in-process coordinators (see
// Config.LocalWorkers) call it directly with the chunk they just
// built — same validation, same all-or-nothing PushBatch, no wire.
//
// Each fold records a "cluster.fold" span: a child of the trace in ctx
// when one is active (in-process transport, where the coordinator's
// fanout span is live on this tracer), otherwise a continuation root
// parented on the chunk's remote trace context — so either way the
// span carries the coordinator's trace ID across the fold.
func (w *Worker) FoldChunk(ctx context.Context, name string, c Chunk) Ack {
	_, sp := trace.Start(ctx, "cluster.fold")
	if sp == nil && w.tracer != nil && c.Trace != "" {
		if remote, err := trace.ParseTraceparent(c.Trace); err == nil {
			_, sp = w.tracer.StartRoot(ctx, "cluster.fold", remote)
		}
	}
	ack := w.fold(name, c)
	if sp != nil {
		sp.SetAttr("model", name)
		sp.SetAttr("seq", c.Seq)
		sp.SetAttr("rows", ack.Rows)
		sp.SetAttr("instance", w.instance)
		sp.SetAttr("result", ackResult(ack.Code))
		sp.End()
	}
	return ack
}

// fold is FoldChunk minus the span bookkeeping.
func (w *Worker) fold(name string, c Chunk) Ack {
	ack := Ack{Seq: c.Seq, Rows: len(c.Rows) / c.Width}
	sh := w.getShard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.sm == nil {
		sm, err := core.NewStreamMiner(c.Width, c.Decay)
		if err != nil {
			ack.Code = AckBadChunk
			w.chunks.With(ackResult(ack.Code)).Inc()
			return ack
		}
		sh.sm = sm
	}
	switch {
	case sh.sm.Width() != c.Width:
		ack.Code = AckWidthConflict
	case sh.sm.Decay() != c.Decay:
		ack.Code = AckDecayConflict
	default:
		if err := sh.sm.PushBatch(c.Rows); err != nil {
			ack.Code = AckBadChunk
		}
	}
	ack.ShardRows = uint64(sh.sm.Count())
	w.chunks.With(ackResult(ack.Code)).Inc()
	if ack.Code == AckOK {
		w.rows.Add(float64(ack.Rows))
	}
	return ack
}

// serveIngest is the fan-out receiver: binary chunk frames in, one ack
// frame out per chunk, full-duplex on one connection for the life of
// the coordinator session. The first trace-carrying chunk roots a
// "cluster.fold_stream" span continuing the coordinator's trace, so
// the whole stream's folds land in one local subtree under the remote
// fanout parent.
func (w *Worker) serveIngest(rw http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rc := http.NewResponseController(rw)
	_ = rc.EnableFullDuplex()
	_ = rc.SetReadDeadline(time.Now().Add(workerDeadlineSlack))
	_ = rc.SetWriteDeadline(time.Now().Add(workerDeadlineSlack))
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.WriteHeader(http.StatusOK)
	_ = rc.Flush()

	sctx := r.Context()
	var root *trace.Span
	chunks := 0
	defer func() {
		if root != nil {
			root.SetAttr("chunks", chunks)
			root.End()
		}
	}()

	ackBuf := make([]byte, 0, ackFrameLen)
	sinceDeadline := 0
	for {
		c, err := ReadChunk(r.Body)
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			// Framing is broken; there is no trustworthy seq to ack, so
			// drop the connection and let the coordinator retry the
			// unacked chunks elsewhere.
			return
		}
		if root == nil && w.tracer != nil && c.Trace != "" {
			if remote, perr := trace.ParseTraceparent(c.Trace); perr == nil {
				sctx, root = w.tracer.StartRoot(sctx, "cluster.fold_stream", remote)
				root.SetAttr("model", name)
				root.SetAttr("instance", w.instance)
			}
		}
		chunks++
		ack := w.FoldChunk(sctx, name, c)
		ackBuf = AppendAck(ackBuf[:0], ack)
		if _, err := rw.Write(ackBuf); err != nil {
			return
		}
		_ = rc.Flush()
		if sinceDeadline++; sinceDeadline >= deadlineEveryChunks {
			sinceDeadline = 0
			_ = rc.SetReadDeadline(time.Now().Add(workerDeadlineSlack))
			_ = rc.SetWriteDeadline(time.Now().Add(workerDeadlineSlack))
		}
	}
}

// Snapshot encodes the named shard as a pull document. It returns
// (nil, false) when the node holds no rows for the model yet.
func (w *Worker) Snapshot(name string) ([]byte, bool, error) {
	w.mu.Lock()
	sh, ok := w.shards[name]
	w.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.sm == nil {
		return nil, false, nil
	}
	doc, err := EncodeShard(name, w.instance, sh.sm)
	if err != nil {
		return nil, false, err
	}
	return doc, true, nil
}

// serveShard answers a coordinator pull with the checksummed shard
// document; 404 means the node has folded nothing for the model.
func (w *Worker) serveShard(rw http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	doc, ok, err := w.Snapshot(name)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	if !ok {
		http.Error(rw, "no shard", http.StatusNotFound)
		return
	}
	w.pulls.Inc()
	rw.Header().Set("Content-Type", "application/json")
	_, _ = rw.Write(doc)
}

// shardInfo is one row of the GET /v1/cluster/shards listing.
type shardInfo struct {
	Name  string  `json:"name"`
	Width int     `json:"width"`
	Decay float64 `json:"decay"`
	Rows  int     `json:"rows"`
}

// serveShards lists the node's shards.
func (w *Worker) serveShards(rw http.ResponseWriter, _ *http.Request) {
	w.mu.Lock()
	names := make([]string, 0, len(w.shards))
	for name := range w.shards {
		names = append(names, name)
	}
	w.mu.Unlock()
	sort.Strings(names)
	out := struct {
		Instance string      `json:"instance"`
		Shards   []shardInfo `json:"shards"`
	}{Instance: w.instance, Shards: make([]shardInfo, 0, len(names))}
	for _, name := range names {
		sh := w.getShard(name)
		sh.mu.Lock()
		if sh.sm != nil {
			out.Shards = append(out.Shards, shardInfo{
				Name: name, Width: sh.sm.Width(), Decay: sh.sm.Decay(), Rows: sh.sm.Count(),
			})
		}
		sh.mu.Unlock()
	}
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(out)
}

// serveHealth is the membership probe target.
func (w *Worker) serveHealth(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(map[string]string{
		"status":   "ok",
		"instance": w.instance,
	})
}
