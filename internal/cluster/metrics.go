package cluster

import "ratiorules/internal/obs"

// clusterMetrics is the coordinator's rr_cluster_* family set. Label
// cardinality stays bounded — result enums only, never model names or
// worker URLs (per-member detail is at GET /v1/cluster/status).
type clusterMetrics struct {
	rows           *obs.CounterVec // result: ok|rejected
	chunks         *obs.CounterVec // result: ok|resharded|failed
	sessions       *obs.Gauge
	membersHealthy *obs.Gauge
	membersTotal   *obs.Gauge
	pulls          *obs.CounterVec // result: ok|empty|error
	pullSeconds    *obs.Histogram
	merges         *obs.CounterVec // result: ok|degraded|error
	mergeSeconds   *obs.Histogram
	retained       *obs.Gauge
	degraded       *obs.Counter
	reshardings    *obs.Counter
}

func newClusterMetrics(reg *obs.Registry) *clusterMetrics {
	return &clusterMetrics{
		rows: reg.CounterVec("rr_cluster_rows_total",
			"Rows fanned out to workers by per-row result.", "result"),
		chunks: reg.CounterVec("rr_cluster_chunks_total",
			"Fan-out chunks by outcome (ok, resharded after a worker failure, failed).",
			"result"),
		sessions: reg.Gauge("rr_cluster_sessions",
			"Fan-out ingest sessions currently open."),
		membersHealthy: reg.Gauge("rr_cluster_members_healthy",
			"Workers currently passing health probes."),
		membersTotal: reg.Gauge("rr_cluster_members",
			"Workers known to the coordinator, healthy or not."),
		pulls: reg.CounterVec("rr_cluster_shard_pulls_total",
			"Shard pulls by result.", "result"),
		pullSeconds: reg.Histogram("rr_cluster_shard_pull_seconds",
			"Wall time of one worker shard pull including retries.", obs.DefBuckets),
		merges: reg.CounterVec("rr_cluster_merges_total",
			"Shard merges by result (degraded = at least one retained shard substituted).",
			"result"),
		mergeSeconds: reg.Histogram("rr_cluster_merge_seconds",
			"Wall time of one pull + merge + republish cycle.", obs.DefBuckets),
		retained: reg.Gauge("rr_cluster_retained_shards",
			"Retained shard snapshots standing in for dead worker instances."),
		degraded: reg.Counter("rr_cluster_degraded_republishes_total",
			"Republishes that merged at least one retained shard because a worker was unreachable."),
		reshardings: reg.Counter("rr_cluster_reshardings_total",
			"Hash-ring rebuilds triggered by membership changes."),
	}
}
