package cluster

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"ratiorules/internal/obs"
	"ratiorules/internal/obs/trace"
	"ratiorules/internal/online"
)

// TestCrossNodeTracePropagation drives one traced ingest through a
// coordinator and two HTTP workers and asserts the whole pipeline
// shares a single trace ID: the coordinator's flight recorder holds the
// cluster.fanout span with remote-child references to both workers, and
// each worker's recorder holds a cluster.fold_stream subtree — under
// the SAME trace ID — with an unresolved remote parent pointing back at
// the coordinator.
func TestCrossNodeTracePropagation(t *testing.T) {
	coordTracer := trace.New(trace.Config{})
	workerTracers := make([]*trace.Tracer, 2)
	urls := make([]string, 2)
	for i := range workerTracers {
		wt := trace.New(trace.Config{})
		workerTracers[i] = wt
		w := NewWorker(WithWorkerTracer(wt))
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	mgr, err := online.NewManager(&memStore{}, online.Config{Seed: 42, RepublishRows: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		Workers:       urls,
		Manager:       mgr,
		Metrics:       obs.NewRegistry(),
		Tracer:        coordTracer,
		ChunkRows:     32, // small chunks so both workers see several
		PullEvery:     time.Hour,
		HealthEvery:   time.Hour,
		RepublishRows: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(func() {
		_ = c.Close(context.Background())
		_ = mgr.Close()
	})

	// Root a span the way the HTTP layer does for POST ingest — without
	// an active trace in ctx the session opens no fanout span at all.
	ctx, root := coordTracer.StartRoot(context.Background(), "POST /v1/rules/{name}/ingest", trace.SpanContext{})
	sess, err := c.Ingest(ctx, "traced", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	accepted, rejected := pushAll(t, sess, testRows(2048, 6, 7))
	if rejected != 0 || accepted != 2048 {
		t.Fatalf("accepted=%d rejected=%d, want 2048/0", accepted, rejected)
	}
	root.End()
	traceID := root.TraceID()

	// Coordinator side: the sealed trace must hold the fanout span with
	// a remote-child reference per worker that received chunks.
	td, ok := coordTracer.Recorder().Get(traceID)
	if !ok {
		t.Fatalf("coordinator recorder has no trace %s", traceID)
	}
	var fanout *trace.SpanData
	for i := range td.Spans {
		if td.Spans[i].Name == "cluster.fanout" {
			fanout = &td.Spans[i]
		}
	}
	if fanout == nil {
		t.Fatalf("no cluster.fanout span in coordinator trace: %+v", td.Spans)
	}
	childNodes := map[string]bool{}
	for _, ref := range trace.RemoteRefs(td.Spans) {
		if ref.Kind == "child" {
			childNodes[ref.Node] = true
		}
	}
	for _, u := range urls {
		if !childNodes[u] {
			t.Errorf("coordinator trace missing remote-child ref for worker %s (got %v)", u, childNodes)
		}
	}

	// Worker side: each node seals its fold_stream root when the fan-out
	// stream closes, slightly after Session.Close returns — poll. The
	// trace ID must match the coordinator's, and the subtree must carry
	// an unresolved remote parent (the fanout span lives elsewhere).
	for i, wt := range workerTracers {
		var wtd trace.TraceData
		deadline := time.Now().Add(2 * time.Second)
		for {
			if wtd, ok = wt.Recorder().Get(traceID); ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %d never sealed a trace under coordinator trace ID %s", i, traceID)
			}
			time.Sleep(5 * time.Millisecond)
		}
		var foldStream, fold bool
		for _, sp := range wtd.Spans {
			switch sp.Name {
			case "cluster.fold_stream":
				foldStream = true
			case "cluster.fold":
				fold = true
			}
		}
		if !foldStream || !fold {
			t.Errorf("worker %d trace: fold_stream=%v fold=%v, want both", i, foldStream, fold)
		}
		var remoteParent bool
		for _, ref := range trace.RemoteRefs(wtd.Spans) {
			if ref.Kind == "parent" && ref.SpanID == fanout.SpanID {
				remoteParent = true
			}
		}
		if !remoteParent {
			t.Errorf("worker %d trace has no remote-parent ref to the coordinator fanout span %s: %+v",
				i, fanout.SpanID, trace.RemoteRefs(wtd.Spans))
		}
	}
}

// TestUntracedIngestOpensNoWorkerTrace pins the negative space: without
// an active trace on the coordinator context, chunks go out as plain
// RRC1 frames and workers root nothing.
func TestUntracedIngestOpensNoWorkerTrace(t *testing.T) {
	wt := trace.New(trace.Config{})
	w := NewWorker(WithWorkerTracer(wt))
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)

	mgr, err := online.NewManager(&memStore{}, online.Config{Seed: 1, RepublishRows: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		Workers:       []string{srv.URL},
		Manager:       mgr,
		Metrics:       obs.NewRegistry(),
		ChunkRows:     64,
		PullEvery:     time.Hour,
		HealthEvery:   time.Hour,
		RepublishRows: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(func() {
		_ = c.Close(context.Background())
		_ = mgr.Close()
	})

	sess, err := c.Ingest(context.Background(), "plain", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	pushAll(t, sess, testRows(256, 4, 3))
	// Give any stray stream-close span a moment to land, then require
	// the worker recorder stayed empty.
	time.Sleep(50 * time.Millisecond)
	if n := wt.Recorder().Len(); n != 0 {
		t.Fatalf("worker recorded %d traces for an untraced ingest, want 0", n)
	}
}
