package cluster

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"ratiorules/internal/core"
	"ratiorules/internal/obs/trace"
	"ratiorules/internal/online"
)

// maxInflightChunks bounds unacked chunks per session — the fan-out's
// flow control. Each slot is released when its chunk is acked, so no
// worker send queue can ever hold more than this many entries (which is
// what lets dispatch enqueue without blocking).
const maxInflightChunks = 64

// AckEvent reports the fate of a contiguous run of input rows, in input
// order: the ingest handler turns each event back into per-row NDJSON
// lines. Err nil means all Rows were folded; Count is then the model's
// total accepted rows after them. Err non-nil applies to all Rows
// (chunk-level failures) or to a single pre-validated bad row (Rows 1).
type AckEvent struct {
	Rows  int
	Count int64
	Err   error
}

// inflight is one dispatched chunk (or an already-decided bad-row
// marker) awaiting in-order emission.
type inflight struct {
	seq     uint64
	rows    int
	payload []float64 // retained until acked, for reshard-on-failure
	marker  bool
	done    bool
	err     error
}

// Session is one fan-out ingest stream: rows in input order go in via
// Push, chunk outcomes come back in input order on Acks. The caller
// must drain Acks concurrently with pushing — emission provides the
// backpressure.
type Session struct {
	c        *Coordinator
	name     string
	escName  string
	nameHash uint64
	decay    float64
	stream   *online.Stream
	chunkCap int
	sem      chan struct{}

	width int       // fixed by the first row
	buf   []float64 // chunk under construction
	seq   uint64
	free  chan []float64 // recycled chunk buffers

	acks chan AckEvent

	mu       sync.Mutex
	cond     *sync.Cond
	fifo     []*inflight
	streams  map[*member]fanoutStream
	fatal    error
	emitting bool
	closed   bool

	span *trace.Span
	// tctx carries the fanout span for in-process folds: a local
	// worker's FoldChunk attaches its cluster.fold span directly into
	// this session's trace instead of continuing it by wire context.
	tctx context.Context
	// traceCtx is the fanout span's W3C traceparent, stamped into every
	// chunk (v2 frames on the wire, Chunk.Trace in process) so worker
	// fold spans continue this session's trace across the node boundary.
	traceCtx string
	rows     int64
	// sentTo records every member URL that received chunks, published on
	// the fanout span as remote_node attrs — the remote-child references
	// /debug/traces/{id} surfaces so an operator knows which nodes hold
	// the rest of the trace.
	sentTo map[string]bool
}

// Ingest opens a fan-out session for one model. decay semantics match
// the public ingest endpoint: explicit requests conflict (HTTP 409 via
// online.ErrDecayConflict) when a stream already runs a different one.
func (c *Coordinator) Ingest(ctx context.Context, name string, decay float64, explicitDecay bool) (*Session, error) {
	st, err := c.cfg.Manager.Stream(name, decay, explicitDecay)
	if err != nil {
		return nil, err
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	fctx, span := trace.Start(ctx, "cluster.fanout")
	if span != nil {
		span.SetAttr("model", name)
	}
	s := &Session{
		c:        c,
		name:     name,
		escName:  url.PathEscape(name),
		nameHash: h.Sum64(),
		decay:    decay,
		stream:   st,
		chunkCap: c.cfg.ChunkRows,
		sem:      make(chan struct{}, maxInflightChunks),
		acks:     make(chan AckEvent, maxInflightChunks),
		free:     make(chan []float64, maxInflightChunks+2),
		streams:  make(map[*member]fanoutStream),
		span:     span,
		tctx:     fctx,
		sentTo:   make(map[string]bool),
	}
	if span != nil {
		s.traceCtx = trace.Traceparent(span.TraceID(), span.SpanID())
	}
	s.cond = sync.NewCond(&s.mu)
	c.met.sessions.Inc()
	return s, nil
}

// Acks delivers chunk outcomes in input order; closed by Close.
func (s *Session) Acks() <-chan AckEvent { return s.acks }

// Push appends one row. An invalid row (wrong width, NaN/Inf) does not
// fail the session: it surfaces as a one-row error event in order, like
// the single-node per-row error lines. Finiteness is validated one
// vectorized scan per chunk rather than per row; a chunk that fails the
// scan is split around its bad rows (flushMixed), so per-row error
// reporting survives while the happy path pays ~nothing. The returned
// error is session-fatal only (no healthy workers remain).
func (s *Session) Push(row []float64) error {
	s.mu.Lock()
	fatal := s.fatal
	s.mu.Unlock()
	if fatal != nil {
		return fatal
	}
	if s.width == 0 {
		if len(row) == 0 {
			s.pushMarker(errors.New("cluster: empty row"))
			return nil
		}
		s.width = len(row)
		s.c.registerModel(s.name, s.width, s.decay)
	}
	if len(row) != s.width {
		s.pushMarker(fmt.Errorf("cluster: row width %d, want %d: %w", len(row), s.width, core.ErrWidth))
		return nil
	}
	if s.buf == nil {
		s.buf = s.newBuf()
	}
	s.buf = append(s.buf, row...)
	s.rows++
	if len(s.buf) == s.chunkCap*s.width {
		return s.flushChunk()
	}
	return nil
}

// newBuf hands out a chunk payload buffer, recycling acked ones: a
// fresh allocation per chunk means cold pages on every append and
// constant GC churn, which profiles as the fan-out's dominant cost.
func (s *Session) newBuf() []float64 {
	select {
	case b := <-s.free:
		return b
	default:
		return make([]float64, 0, s.chunkCap*s.width)
	}
}

// putBuf returns an acked chunk's payload for reuse.
func (s *Session) putBuf(b []float64) {
	if cap(b) == 0 {
		return
	}
	select {
	case s.free <- b[:0]:
	default:
	}
}

// PushError reserves the next input slot for a row that already failed
// upstream of the session (framing or decode), so its error event is
// delivered on Acks in order with the chunk outcomes around it. The
// ingest handler needs this: emitting decode errors directly would race
// ahead of acks still in flight for earlier rows.
func (s *Session) PushError(err error) {
	s.mu.Lock()
	fatal := s.fatal
	s.mu.Unlock()
	if fatal != nil {
		return
	}
	s.pushMarker(err)
}

// pushMarker records a pre-decided bad row, flushing the rows buffered
// before it first so error lines stay in input order.
func (s *Session) pushMarker(err error) {
	_ = s.flushChunk()
	s.enqueueMarker(err)
}

// enqueueMarker appends a one-row error event at the current fifo
// position.
func (s *Session) enqueueMarker(err error) {
	inf := &inflight{rows: 1, marker: true, done: true, err: err}
	s.mu.Lock()
	s.fifo = append(s.fifo, inf)
	s.mu.Unlock()
	s.drain()
}

// flushChunk validates and dispatches the chunk under construction.
func (s *Session) flushChunk() error {
	if len(s.buf) == 0 {
		return nil
	}
	payload := s.buf
	s.buf = s.newBuf()
	if !core.RowAllFinite(payload) {
		return s.flushMixed(payload)
	}
	return s.dispatch(payload)
}

// flushMixed handles a chunk whose vectorized finiteness scan failed:
// clean runs dispatch as smaller chunks, each bad row becomes an
// in-order one-row error event — the same per-row semantics the
// single-node path reports, paid only when bad data actually arrives.
func (s *Session) flushMixed(payload []float64) error {
	var firstErr error
	clean := s.newBuf()
	for off := 0; off+s.width <= len(payload); off += s.width {
		row := payload[off : off+s.width]
		if core.RowAllFinite(row) {
			clean = append(clean, row...)
			continue
		}
		if len(clean) > 0 {
			if err := s.dispatch(clean); err != nil && firstErr == nil {
				firstErr = err
			}
			clean = s.newBuf()
		}
		s.enqueueMarker(errors.New("cluster: row has non-finite value"))
	}
	if len(clean) > 0 {
		if err := s.dispatch(clean); err != nil && firstErr == nil {
			firstErr = err
		}
	} else {
		s.putBuf(clean)
	}
	s.putBuf(payload)
	return firstErr
}

// dispatch ships one validated payload as a chunk.
func (s *Session) dispatch(payload []float64) error {
	s.seq++
	inf := &inflight{seq: s.seq, rows: len(payload) / s.width, payload: payload}

	// The reservoir must sample the same stream a single node would
	// see; rows are copied on admission, so handing it the payload
	// slice is safe.
	s.stream.ObserveBatch(payload, s.width)

	s.sem <- struct{}{} // flow control: released when the chunk is acked
	key := splitmix64(s.nameHash ^ inf.seq)

	s.mu.Lock()
	s.fifo = append(s.fifo, inf)
	s.mu.Unlock()

	// Dispatch never holds s.mu across I/O or channel sends: the ack
	// readers need it to make progress, and a hung dial to a dying
	// worker must not stall acking (that was a deadlock once).
	not := map[*member]bool{}
	for {
		m := s.c.pick(key, not)
		if m == nil {
			s.mu.Lock()
			s.fatal = ErrNoWorkers
			inf.done, inf.err = true, ErrNoWorkers
			s.mu.Unlock()
			s.release()
			s.drain()
			return ErrNoWorkers
		}
		s.mu.Lock()
		ws := s.streams[m]
		s.mu.Unlock()
		if ws == nil {
			var err error
			ws, err = s.openStream(m)
			if err != nil {
				s.c.markFailed(m, err, false)
				not[m] = true
				continue
			}
			s.mu.Lock()
			s.streams[m] = ws
			s.mu.Unlock()
		}
		if ws.trySend(inf) {
			s.noteSent(m)
			return nil
		}
		// The stream died between lookup and send; its failover drain
		// will not see this chunk, so route it elsewhere ourselves.
		not[m] = true
	}
}

// release frees one inflight slot.
func (s *Session) release() { <-s.sem }

// noteSent records a member as holding part of this session's trace.
func (s *Session) noteSent(m *member) {
	if s.span == nil {
		return
	}
	s.mu.Lock()
	s.sentTo[m.url] = true
	s.mu.Unlock()
}

// drain emits contiguous completed head-of-line events in input order.
// One goroutine at a time owns emission; others return immediately.
func (s *Session) drain() {
	s.mu.Lock()
	if s.emitting {
		s.mu.Unlock()
		return
	}
	s.emitting = true
	for {
		var batch []*inflight
		for len(s.fifo) > 0 && s.fifo[0].done {
			batch = append(batch, s.fifo[0])
			s.fifo = s.fifo[1:]
		}
		if len(batch) == 0 {
			break
		}
		s.mu.Unlock()
		for _, inf := range batch {
			ev := AckEvent{Rows: inf.rows, Err: inf.err}
			if inf.err == nil {
				ev.Count = s.c.ackAccepted(s.name, inf.rows)
				s.c.met.rows.With("ok").Add(float64(inf.rows))
			} else {
				s.c.met.rows.With("rejected").Add(float64(inf.rows))
			}
			s.acks <- ev
		}
		s.mu.Lock()
	}
	s.emitting = false
	if len(s.fifo) == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// Close flushes the partial chunk, ends every worker stream, waits for
// all outcomes to be emitted, and closes Acks. The caller must keep
// draining Acks until it closes.
func (s *Session) Close() error {
	_ = s.flushChunk()
	s.mu.Lock()
	s.closed = true
	streams := make([]fanoutStream, 0, len(s.streams))
	for _, ws := range s.streams {
		streams = append(streams, ws)
	}
	s.mu.Unlock()
	for _, ws := range streams {
		ws.shutdown()
	}
	s.mu.Lock()
	for len(s.fifo) > 0 {
		s.cond.Wait()
	}
	fatal := s.fatal
	s.mu.Unlock()
	for _, ws := range streams {
		ws.wait()
	}
	close(s.acks)
	s.c.met.sessions.Add(-1)
	if s.span != nil {
		s.span.SetAttr("rows", s.rows)
		s.span.SetAttr("chunks", s.seq)
		s.mu.Lock()
		nodes := make([]string, 0, len(s.sentTo))
		for u := range s.sentTo {
			nodes = append(nodes, u)
		}
		s.mu.Unlock()
		sort.Strings(nodes)
		for _, u := range nodes {
			s.span.SetAttr(trace.RemoteNodeAttr, u)
		}
		if fatal != nil {
			s.span.SetAttr("error", fatal.Error())
		}
		s.span.End()
	}
	return fatal
}

// onAcked marks a chunk finished, recycles its payload (folded or
// definitively rejected; never retried), and hands its slot back.
func (s *Session) onAcked(inf *inflight, err error) {
	s.mu.Lock()
	inf.done, inf.err = true, err
	payload := inf.payload
	inf.payload = nil
	s.mu.Unlock()
	if payload != nil {
		s.putBuf(payload)
	}
	s.release()
	s.drain()
}

// ackError maps a worker ack code onto the error surfaced per row.
func ackError(code uint32) error {
	switch code {
	case AckWidthConflict:
		return errors.New("cluster: worker shard has a different width")
	case AckDecayConflict:
		return errors.New("cluster: worker shard has a different decay")
	default:
		return errors.New("cluster: worker rejected chunk")
	}
}

// fanoutStream is one dispatch target: a full-duplex HTTP stream for a
// remote worker, a direct call for an in-process one.
type fanoutStream interface {
	trySend(*inflight) bool
	shutdown()
	wait()
}

// localStream dispatches chunks to an in-process worker by direct
// call: no framing, no checksums, no goroutine handoff. The chunk is
// folded synchronously, immediately after the session built it — while
// its payload is still cache-hot — which is what lets an in-process
// cluster beat the single-node per-row fold on one core.
type localStream struct {
	s *Session
	m *member
}

func (ls *localStream) trySend(inf *inflight) bool {
	ack := ls.m.local.FoldChunk(ls.s.tctx, ls.s.name, Chunk{
		Seq: inf.seq, Width: ls.s.width, Decay: ls.s.decay,
		Trace: ls.s.traceCtx, Rows: inf.payload,
	})
	var err error
	if ack.Code != AckOK {
		err = ackError(ack.Code)
	}
	ls.s.c.met.chunks.With("ok").Inc()
	ls.s.onAcked(inf, err)
	return true
}

func (ls *localStream) shutdown() {}
func (ls *localStream) wait()     {}

// workerStream is one full-duplex fan-out connection: a sender feeding
// encoded chunks into the request body pipe and an ack reader matching
// response frames back to inflight chunks in FIFO order.
type workerStream struct {
	s *Session
	m *member

	sendq  chan *inflight
	pw     *io.PipeWriter
	body   io.ReadCloser
	cancel context.CancelFunc

	qmu   sync.Mutex
	sentq []*inflight

	smu    sync.Mutex
	dead   bool // failover in progress: new sends must go elsewhere
	closed bool // sendq closed

	wg        sync.WaitGroup
	closeOnce sync.Once
	failOnce  sync.Once
	senderEnd chan struct{}
}

// trySend enqueues a chunk unless the stream is shutting down. The
// send itself never blocks: cap(sendq) == cap(s.sem), and every queued
// chunk holds a semaphore slot.
func (ws *workerStream) trySend(inf *inflight) bool {
	ws.smu.Lock()
	defer ws.smu.Unlock()
	if ws.dead || ws.closed {
		return false
	}
	ws.sendq <- inf
	return true
}

// openHeadersTimeout bounds the dial + response-headers wait when a
// fan-out stream opens; the stream itself is unbounded.
const openHeadersTimeout = 10 * time.Second

// openStream builds the dispatch target for a member: a direct-call
// stream for in-process workers, otherwise a dial of the worker's
// ingest endpoint. The worker writes its response headers before
// reading any body, so Do returns as soon as the stream is live; a
// worker that accepts the connection but never answers is cut off by
// openHeadersTimeout. No session lock is held.
func (s *Session) openStream(m *member) (fanoutStream, error) {
	if m.local != nil {
		return &localStream{s: s, m: m}, nil
	}
	pr, pw := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.url+"/v1/cluster/ingest/"+s.escName, pr)
	if err != nil {
		cancel()
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	// The guard must close the pipe writer, not only cancel: the
	// transport's write loop blocks reading the request body, and Do
	// cannot return — even canceled — until that read is unblocked.
	headerGuard := time.AfterFunc(openHeadersTimeout, func() {
		cancel()
		pw.CloseWithError(fmt.Errorf("cluster: worker %s: no response headers within %v",
			m.url, openHeadersTimeout))
	})
	resp, err := s.c.client.Do(req)
	headerGuard.Stop()
	if err != nil {
		cancel()
		pw.Close()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		cancel()
		pw.Close()
		resp.Body.Close()
		return nil, fmt.Errorf("cluster: worker %s ingest status %d", m.url, resp.StatusCode)
	}
	ws := &workerStream{
		s:         s,
		m:         m,
		sendq:     make(chan *inflight, maxInflightChunks),
		pw:        pw,
		body:      resp.Body,
		cancel:    cancel,
		senderEnd: make(chan struct{}),
	}
	ws.wg.Add(2)
	go ws.sender()
	go ws.ackReader()
	return ws, nil
}

// wait blocks until the sender and ack reader have exited.
func (ws *workerStream) wait() { ws.wg.Wait() }

// shutdown ends the stream cleanly: the sender drains its queue and
// closes the request body, the worker acks everything and EOFs. The
// state lock excludes an in-flight trySend from racing the close.
func (ws *workerStream) shutdown() {
	ws.closeOnce.Do(func() {
		ws.smu.Lock()
		ws.closed = true
		close(ws.sendq)
		ws.smu.Unlock()
	})
}

// sender encodes and writes chunks in dispatch order, registering each
// in sentq before it hits the wire so the ack reader can never see an
// ack for an untracked chunk.
func (ws *workerStream) sender() {
	defer ws.wg.Done()
	defer close(ws.senderEnd)
	buf := make([]byte, 0, chunkHeaderLen+ws.s.chunkCap*ws.s.width*8+4)
	for inf := range ws.sendq {
		ws.qmu.Lock()
		ws.sentq = append(ws.sentq, inf)
		ws.qmu.Unlock()
		buf = AppendChunkTrace(buf[:0], inf.seq, ws.s.width, ws.s.decay, ws.s.traceCtx, inf.payload)
		if _, err := ws.pw.Write(buf); err != nil {
			ws.fail(fmt.Errorf("cluster: writing to %s: %w", ws.m.url, err))
			return
		}
	}
	ws.pw.Close()
}

// ackReader consumes ack frames. Worker acks arrive in send order; a
// clean EOF with nothing outstanding ends the stream, anything else is
// a failure that reshards the outstanding chunks.
func (ws *workerStream) ackReader() {
	defer ws.wg.Done()
	br := bufio.NewReaderSize(ws.body, 4<<10)
	for {
		ack, err := ReadAck(br)
		if err != nil {
			ws.qmu.Lock()
			outstanding := len(ws.sentq)
			ws.qmu.Unlock()
			if errors.Is(err, io.EOF) && outstanding == 0 {
				ws.body.Close()
				ws.cancel()
				return
			}
			ws.fail(fmt.Errorf("cluster: reading acks from %s: %w", ws.m.url, err))
			return
		}
		ws.qmu.Lock()
		var inf *inflight
		if len(ws.sentq) > 0 {
			inf = ws.sentq[0]
			ws.sentq = ws.sentq[1:]
		}
		ws.qmu.Unlock()
		if inf == nil || inf.seq != ack.Seq {
			ws.fail(fmt.Errorf("cluster: %s acked seq %d out of order", ws.m.url, ack.Seq))
			return
		}
		var ackErr error
		if ack.Code != AckOK {
			ackErr = ackError(ack.Code)
		}
		ws.s.c.met.chunks.With("ok").Inc()
		ws.s.onAcked(inf, ackErr)
	}
}

// fail tears the stream down once and reshards its unacked chunks.
func (ws *workerStream) fail(err error) {
	ws.failOnce.Do(func() {
		ws.pw.CloseWithError(err)
		ws.body.Close()
		ws.cancel()
		go ws.s.failover(ws, err)
	})
}

// failover removes a failed stream, taints its worker instance (the
// chunks about to be resharded may already sit in its shard, so the
// instance must never rejoin the merge), and re-dispatches every
// unacked chunk to the survivors via one-shot posts.
func (s *Session) failover(ws *workerStream, cause error) {
	// Turn away dispatches racing this teardown (trySend returns false
	// and the pusher re-picks), then unhook the stream.
	ws.smu.Lock()
	ws.dead = true
	ws.smu.Unlock()
	s.mu.Lock()
	if s.streams[ws.m] == ws {
		delete(s.streams, ws.m)
	}
	s.mu.Unlock()
	s.c.markFailed(ws.m, cause, true)

	// The sender exits promptly once the pipe is broken; after that,
	// nothing new enters sentq or leaves sendq.
	ws.shutdown()
	<-ws.senderEnd
	var orphans []*inflight
	ws.qmu.Lock()
	orphans = append(orphans, ws.sentq...)
	ws.sentq = nil
	ws.qmu.Unlock()
	for {
		inf, ok := <-ws.sendq
		if !ok {
			break
		}
		orphans = append(orphans, inf)
	}

	for _, inf := range orphans {
		s.reshard(inf, map[*member]bool{ws.m: true})
	}
}

// reshard retries one orphaned chunk on surviving workers via a
// one-shot request (rare path; the streaming machinery is not worth
// re-entering for it). Exactness holds because a chunk is only
// resharded when its original owner never acked it *and* that owner's
// instance is tainted out of every future merge — the chunk ends up
// folded exactly once, on the survivor.
func (s *Session) reshard(inf *inflight, tried map[*member]bool) {
	for {
		m := s.c.pick(splitmix64(s.nameHash^inf.seq), tried)
		if m == nil {
			s.mu.Lock()
			s.fatal = ErrNoWorkers
			s.mu.Unlock()
			s.c.met.chunks.With("failed").Inc()
			s.onAcked(inf, ErrNoWorkers)
			return
		}
		err := s.postChunk(m, inf)
		if err == nil {
			return
		}
		tried[m] = true
		s.c.markFailed(m, err, true)
	}
}

// postChunk sends one chunk as a plain request/response exchange (or a
// direct fold for an in-process survivor).
func (s *Session) postChunk(m *member, inf *inflight) error {
	if m.local != nil {
		ack := m.local.FoldChunk(s.tctx, s.name, Chunk{
			Seq: inf.seq, Width: s.width, Decay: s.decay,
			Trace: s.traceCtx, Rows: inf.payload,
		})
		var ackErr error
		if ack.Code != AckOK {
			ackErr = ackError(ack.Code)
		}
		s.c.met.chunks.With("resharded").Inc()
		s.noteSent(m)
		s.onAcked(inf, ackErr)
		return nil
	}
	body := AppendChunkTrace(nil, inf.seq, s.width, s.decay, s.traceCtx, inf.payload)
	resp, err := s.c.client.Post(m.url+"/v1/cluster/ingest/"+s.escName,
		"application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: worker %s ingest status %d", m.url, resp.StatusCode)
	}
	ack, err := ReadAck(resp.Body)
	if err != nil {
		return err
	}
	if ack.Seq != inf.seq {
		return fmt.Errorf("cluster: worker %s acked seq %d, want %d", m.url, ack.Seq, inf.seq)
	}
	var ackErr error
	if ack.Code != AckOK {
		ackErr = ackError(ack.Code)
	}
	s.c.met.chunks.With("resharded").Inc()
	s.noteSent(m)
	s.onAcked(inf, ackErr)
	return nil
}

// registerModel records a model's fan-out shape for the merge loop.
func (c *Coordinator) registerModel(name string, width int, decay float64) {
	c.mu.Lock()
	if c.models[name] == nil {
		c.models[name] = &modelState{width: width, decay: decay}
	}
	c.mu.Unlock()
}

// ackAccepted folds acked rows into the model's totals, firing the
// row-count merge trigger, and returns the running accepted count the
// public ack lines report.
func (c *Coordinator) ackAccepted(name string, rows int) int64 {
	c.mu.Lock()
	ms := c.models[name]
	if ms == nil {
		c.mu.Unlock()
		return 0
	}
	ms.pending += rows
	ms.accepted += int64(rows)
	total := ms.accepted
	fire := ms.pending >= c.cfg.RepublishRows
	c.mu.Unlock()
	if fire {
		select {
		case c.wake <- name:
		default:
		}
	}
	return total
}
