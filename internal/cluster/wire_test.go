package cluster

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"
)

func TestChunkRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		width, rows int
		decay       float64
	}{
		{1, 1, 0}, {3, 2, 0}, {5, 257, 0.25}, {32, 64, 0}, {7, 0, 0.5},
	}
	var stream bytes.Buffer
	want := make([]Chunk, 0, len(cases))
	for i, tc := range cases {
		payload := make([]float64, tc.rows*tc.width)
		for j := range payload {
			payload[j] = rng.NormFloat64() * 1e3
		}
		frame := AppendChunk(nil, uint64(i+1), tc.width, tc.decay, payload)
		stream.Write(frame)
		want = append(want, Chunk{Seq: uint64(i + 1), Width: tc.width, Decay: tc.decay, Rows: payload})
	}
	r := &stream
	for i, w := range want {
		got, err := ReadChunk(r)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if got.Seq != w.Seq || got.Width != w.Width || got.Decay != w.Decay {
			t.Fatalf("chunk %d header: got %+v want %+v", i, got, w)
		}
		if len(got.Rows) != len(w.Rows) {
			t.Fatalf("chunk %d: %d values, want %d", i, len(got.Rows), len(w.Rows))
		}
		for j := range w.Rows {
			if got.Rows[j] != w.Rows[j] {
				t.Fatalf("chunk %d value %d: got %v want %v", i, j, got.Rows[j], w.Rows[j])
			}
		}
	}
	if _, err := ReadChunk(r); err != io.EOF {
		t.Fatalf("end of stream: got %v, want io.EOF", err)
	}
}

func TestChunkCorruption(t *testing.T) {
	payload := []float64{1, 2, 3, 4, 5, 6}
	frame := AppendChunk(nil, 42, 3, 0.5, payload)

	// Flipping any single byte must fail the read: magic, dims, or CRC.
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, err := ReadChunk(bytes.NewReader(bad)); err == nil {
			t.Fatalf("byte %d flipped: read succeeded", i)
		}
	}
	// Every truncation point must fail without passing io.EOF through
	// (the frame started, so a clean EOF is a lie).
	for n := 1; n < len(frame); n++ {
		_, err := ReadChunk(bytes.NewReader(frame[:n]))
		if err == nil || err == io.EOF {
			t.Fatalf("truncated at %d: got %v", n, err)
		}
	}
	// Absurd dims are rejected before allocating the payload.
	huge := append([]byte(nil), frame...)
	huge[8] = 0xff
	huge[9] = 0xff
	huge[10] = 0xff
	huge[11] = 0x7f
	if _, err := ReadChunk(bytes.NewReader(huge)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("absurd row count: got %v, want ErrBadFrame", err)
	}
}

func TestAckRoundTrip(t *testing.T) {
	var stream bytes.Buffer
	want := []Ack{
		{Seq: 1, Rows: 512, Code: AckOK, ShardRows: 512},
		{Seq: 2, Rows: 9, Code: AckWidthConflict, ShardRows: 512},
		{Seq: math.MaxUint64, Rows: 0, Code: AckBadChunk, ShardRows: math.MaxUint64},
	}
	for _, a := range want {
		stream.Write(AppendAck(nil, a))
	}
	for i, w := range want {
		got, err := ReadAck(&stream)
		if err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
		if got != w {
			t.Fatalf("ack %d: got %+v want %+v", i, got, w)
		}
	}
	if _, err := ReadAck(&stream); err != io.EOF {
		t.Fatalf("end of stream: got %v, want io.EOF", err)
	}
}

func TestAckCorruption(t *testing.T) {
	frame := AppendAck(nil, Ack{Seq: 3, Rows: 100, Code: AckOK, ShardRows: 300})
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x01
		if _, err := ReadAck(bytes.NewReader(bad)); err == nil {
			t.Fatalf("byte %d flipped: read succeeded", i)
		}
	}
	for n := 1; n < len(frame); n++ {
		_, err := ReadAck(bytes.NewReader(frame[:n]))
		if err == nil || err == io.EOF {
			t.Fatalf("truncated at %d: got %v", n, err)
		}
	}
}

func TestChunkTraceRoundTrip(t *testing.T) {
	const tp = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	payload := []float64{1, 2, 3, 4, 5, 6}
	var stream bytes.Buffer
	stream.Write(AppendChunkTrace(nil, 7, 3, 0.5, tp, payload))
	stream.Write(AppendChunkTrace(nil, 8, 3, 0.5, "", payload))

	got, err := ReadChunk(&stream)
	if err != nil {
		t.Fatalf("v2 chunk: %v", err)
	}
	if got.Trace != tp || got.Seq != 7 || got.Width != 3 || got.Decay != 0.5 {
		t.Fatalf("v2 chunk: %+v, want trace %q seq 7", got, tp)
	}
	for j, v := range payload {
		if got.Rows[j] != v {
			t.Fatalf("v2 chunk value %d: got %v want %v", j, got.Rows[j], v)
		}
	}
	// A traced and an untraced frame interleave on one stream.
	got, err = ReadChunk(&stream)
	if err != nil {
		t.Fatalf("v1 chunk after v2: %v", err)
	}
	if got.Trace != "" || got.Seq != 8 {
		t.Fatalf("v1 chunk after v2: %+v, want empty trace seq 8", got)
	}
}

// TestChunkTraceBackCompat pins the wire contract: an empty traceparent
// must emit a frame byte-identical to the v1 encoder, so untraced
// coordinators keep feeding old workers.
func TestChunkTraceBackCompat(t *testing.T) {
	payload := []float64{3, 1, 4, 1, 5, 9}
	v1 := AppendChunk(nil, 11, 2, 0.25, payload)
	v2 := AppendChunkTrace(nil, 11, 2, 0.25, "", payload)
	if !bytes.Equal(v1, v2) {
		t.Fatalf("untraced AppendChunkTrace differs from AppendChunk:\n v1 %x\n v2 %x", v1, v2)
	}
}

// TestChunkTraceOversized: a traceparent past MaxChunkTrace is dropped
// (falls back to v1 framing) rather than producing an undecodable
// frame.
func TestChunkTraceOversized(t *testing.T) {
	big := string(bytes.Repeat([]byte{'a'}, MaxChunkTrace+1))
	payload := []float64{1, 2}
	frame := AppendChunkTrace(nil, 1, 2, 0, big, payload)
	got, err := ReadChunk(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("oversized-trace frame unreadable: %v", err)
	}
	if got.Trace != "" {
		t.Fatalf("oversized trace survived: %q", got.Trace)
	}
}

func TestChunkTraceCorruption(t *testing.T) {
	const tp = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	frame := AppendChunkTrace(nil, 9, 2, 0, tp, []float64{1, 2, 3, 4})
	// Every single-byte flip must fail: magic, dims, the trace length,
	// the trace bytes, payload, or CRC.
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x01
		if _, err := ReadChunk(bytes.NewReader(bad)); err == nil {
			t.Fatalf("byte %d flipped: read succeeded", i)
		}
	}
	// Truncation anywhere must surface as a framing error, not io.EOF.
	for n := 1; n < len(frame); n++ {
		_, err := ReadChunk(bytes.NewReader(frame[:n]))
		if err == nil || err == io.EOF {
			t.Fatalf("truncated at %d: got %v", n, err)
		}
	}
	if _, err := ReadChunk(bytes.NewReader(frame)); err != nil {
		t.Fatalf("pristine frame: %v", err)
	}
}
