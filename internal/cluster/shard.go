package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"ratiorules/internal/core"
)

// shardFormat versions the shard-pull document.
const shardFormat = 1

// ShardDoc is the GET /v1/cluster/shard/{name} payload: the same
// checksummed-wrapper idiom as the online manager's stream checkpoint
// sidecars. Stream holds the raw core.StreamMiner Save output (base64
// under JSON, so the bytes round-trip exactly) — the
// sufficient-statistics encoding stays owned by internal/core; CRC is
// Castagnoli over those raw bytes, letting the coordinator reject a
// shard mangled in transit before it reaches the merge.
type ShardDoc struct {
	Format   int     `json:"format"`
	Name     string  `json:"name"`
	Instance string  `json:"instance"`
	Width    int     `json:"width"`
	Decay    float64 `json:"decay"`
	Rows     int     `json:"rows"`
	Stream   []byte  `json:"stream"`
	CRC      uint32  `json:"crc"`
}

// EncodeShard wraps a snapshot of sm as a shard document. The caller
// holds whatever lock guards sm.
func EncodeShard(name, instance string, sm *core.StreamMiner) ([]byte, error) {
	var raw bytes.Buffer
	if err := sm.Save(&raw); err != nil {
		return nil, fmt.Errorf("cluster: shard snapshot of %q: %w", name, err)
	}
	doc := ShardDoc{
		Format:   shardFormat,
		Name:     name,
		Instance: instance,
		Width:    sm.Width(),
		Decay:    sm.Decay(),
		Rows:     sm.Count(),
		Stream:   raw.Bytes(),
		CRC:      crc32.Checksum(raw.Bytes(), castagnoli),
	}
	return json.Marshal(doc)
}

// DecodeShard validates a shard document and reconstructs its miner.
func DecodeShard(data []byte) (ShardDoc, *core.StreamMiner, error) {
	var doc ShardDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, nil, fmt.Errorf("cluster: shard document: %w", err)
	}
	if doc.Format != shardFormat {
		return doc, nil, fmt.Errorf("cluster: shard format %d, want %d", doc.Format, shardFormat)
	}
	if got := crc32.Checksum(doc.Stream, castagnoli); got != doc.CRC {
		return doc, nil, fmt.Errorf("cluster: shard %q crc %08x, want %08x: %w",
			doc.Name, got, doc.CRC, ErrBadFrame)
	}
	sm, err := core.LoadStreamMiner(bytes.NewReader(doc.Stream))
	if err != nil {
		return doc, nil, fmt.Errorf("cluster: shard %q stream: %w", doc.Name, err)
	}
	if sm.Width() != doc.Width || sm.Count() != doc.Rows {
		return doc, nil, fmt.Errorf("cluster: shard %q header (%d wide, %d rows) disagrees with stream (%d wide, %d rows)",
			doc.Name, doc.Width, doc.Rows, sm.Width(), sm.Count())
	}
	return doc, sm, nil
}
