// Package cluster scales live ingest past one process: a coordinator
// fronts the public NDJSON ingest API, hash-shards rows across worker
// nodes in fixed binary chunks, periodically pulls each worker's
// StreamMiner shard, and merges them into the one model that goes
// through the eigensolve + GE gate + store publish — so shard-then-merge
// mining stays exact (StreamMiner.Merge sums sufficient statistics) and
// every single-node guarantee from the online manager applies unchanged
// to the merged model.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"
)

// The row fan-out speaks a fixed little-endian binary framing rather
// than NDJSON: the coordinator already parsed and validated the public
// JSON stream, so re-encoding rows as text for the worker hop would
// dominate the per-row budget. A v1 chunk is
//
//	magic "RRC1" | width u32 | rows u32 | seq u64 | decay f64 |
//	rows·width float64 payload | crc32c u32
//
// A v2 chunk carries the coordinator's trace context between the fixed
// header and the payload, so worker-side fold spans parent onto the
// fan-out trace:
//
//	magic "RRC2" | width u32 | rows u32 | seq u64 | decay f64 |
//	ctxLen u16 | ctx (W3C traceparent, ctxLen bytes) |
//	rows·width float64 payload | crc32c u32
//
// Decoders accept both magics, and encoders emit v1 whenever there is
// no trace context, so mixed-version fleets interoperate: an old worker
// only ever sees v2 frames if the coordinator traced the session, and a
// new worker folds v1 frames exactly as before.
//
// Each chunk is acknowledged by a fixed 32-byte frame
//
//	magic "RRA1" | seq u64 | rows u32 | code u32 | shardRows u64 | crc32c u32
//
// All CRCs are Castagnoli over every byte before the checksum, the
// same polynomial the store WAL uses.

const (
	chunkMagic  = uint32('R')<<24 | uint32('R')<<16 | uint32('C')<<8 | uint32('1')
	chunkMagic2 = uint32('R')<<24 | uint32('R')<<16 | uint32('C')<<8 | uint32('2')
	ackMagic    = uint32('R')<<24 | uint32('R')<<16 | uint32('A')<<8 | uint32('1')

	chunkHeaderLen = 4 + 4 + 4 + 8 + 8
	ackFrameLen    = 4 + 8 + 4 + 4 + 8 + 4

	// MaxChunkTrace bounds the v2 trace-context field; a W3C
	// traceparent is 55 bytes, the slack tolerates future vendor
	// suffixes without letting a corrupt length field allocate much.
	MaxChunkTrace = 128

	// MaxChunkRows bounds a single wire chunk; with the width cap below
	// a frame stays under 8 MiB however it is filled.
	MaxChunkRows = 65536
	// MaxWireWidth bounds the row width a worker will accept.
	MaxWireWidth = 4096
)

// Ack codes. Anything non-zero aborts the session: the shard cannot
// fold the chunk, and retrying it on the same worker cannot help.
const (
	AckOK            = 0
	AckWidthConflict = 1
	AckDecayConflict = 2
	AckBadChunk      = 3
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBadFrame covers every framing violation: wrong magic, absurd
// dimensions, or a checksum mismatch.
var ErrBadFrame = errors.New("cluster: bad wire frame")

// Chunk is one decoded fan-out frame.
type Chunk struct {
	Seq   uint64
	Width int
	Decay float64
	// Trace is the coordinator's W3C traceparent ("" on v1 frames and
	// untraced sessions): the remote parent a worker's cluster.fold
	// span continues, making one trace ID span the process boundary.
	Trace string
	// Rows is the row-major payload, len = n·Width.
	Rows []float64
}

// Ack is one decoded acknowledgement frame.
type Ack struct {
	Seq       uint64
	Rows      int
	Code      uint32
	ShardRows uint64
}

// hostLittle reports whether the host stores floats little-endian, in
// which case payloads move by aliasing the float slice as bytes instead
// of value-by-value conversion.
var hostLittle = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// floatsAsBytes aliases the float64 slice as its raw bytes. Only valid
// on little-endian hosts for wire purposes.
func floatsAsBytes(f []float64) []byte {
	if len(f) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&f[0])), len(f)*8)
}

// AppendChunk encodes one v1 (context-free) chunk frame onto dst and
// returns the extended slice. The payload must be n·width long with
// n <= MaxChunkRows.
func AppendChunk(dst []byte, seq uint64, width int, decay float64, payload []float64) []byte {
	return AppendChunkTrace(dst, seq, width, decay, "", payload)
}

// AppendChunkTrace encodes one chunk frame onto dst, stamping the
// sender's traceparent into a v2 frame when non-empty and falling back
// to the v1 framing when empty — so untraced sessions stay
// byte-identical with older senders. An oversized traceparent is
// dropped rather than producing an undecodable frame.
func AppendChunkTrace(dst []byte, seq uint64, width int, decay float64, traceparent string, payload []float64) []byte {
	if len(traceparent) > MaxChunkTrace {
		traceparent = ""
	}
	start := len(dst)
	var hdr [chunkHeaderLen]byte
	magic := uint32(chunkMagic)
	if traceparent != "" {
		magic = chunkMagic2
	}
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(width))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)/width))
	binary.LittleEndian.PutUint64(hdr[12:], seq)
	binary.LittleEndian.PutUint64(hdr[20:], math.Float64bits(decay))
	dst = append(dst, hdr[:]...)
	if traceparent != "" {
		var n [2]byte
		binary.LittleEndian.PutUint16(n[:], uint16(len(traceparent)))
		dst = append(dst, n[:]...)
		dst = append(dst, traceparent...)
	}
	if hostLittle {
		dst = append(dst, floatsAsBytes(payload)...)
	} else {
		var cell [8]byte
		for _, v := range payload {
			binary.LittleEndian.PutUint64(cell[:], math.Float64bits(v))
			dst = append(dst, cell[:]...)
		}
	}
	crc := crc32.Checksum(dst[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// ReadChunk decodes the next chunk frame from r, accepting both the v1
// and the trace-carrying v2 framing. The payload lands in a fresh
// []float64 whose backing bytes are filled directly from the stream on
// little-endian hosts (no intermediate buffer). io.EOF is returned
// untouched when the stream ends cleanly between frames.
func ReadChunk(r io.Reader) (Chunk, error) {
	var hdr [chunkHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return Chunk{}, err // io.EOF: clean end between frames
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return Chunk{}, fmt.Errorf("cluster: truncated chunk header: %w", ErrBadFrame)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:])
	if magic != chunkMagic && magic != chunkMagic2 {
		return Chunk{}, fmt.Errorf("cluster: chunk magic %x: %w", hdr[:4], ErrBadFrame)
	}
	width := int(binary.LittleEndian.Uint32(hdr[4:]))
	rows := int(binary.LittleEndian.Uint32(hdr[8:]))
	if width <= 0 || width > MaxWireWidth || rows < 0 || rows > MaxChunkRows {
		return Chunk{}, fmt.Errorf("cluster: chunk dims %d x %d: %w", rows, width, ErrBadFrame)
	}
	c := Chunk{
		Seq:   binary.LittleEndian.Uint64(hdr[12:]),
		Width: width,
		Decay: math.Float64frombits(binary.LittleEndian.Uint64(hdr[20:])),
		Rows:  make([]float64, rows*width),
	}
	crc := crc32.Checksum(hdr[:], castagnoli)
	if magic == chunkMagic2 {
		var n [2]byte
		if _, err := io.ReadFull(r, n[:]); err != nil {
			return Chunk{}, fmt.Errorf("cluster: truncated chunk trace length: %w", ErrBadFrame)
		}
		ctxLen := int(binary.LittleEndian.Uint16(n[:]))
		if ctxLen == 0 || ctxLen > MaxChunkTrace {
			return Chunk{}, fmt.Errorf("cluster: chunk trace length %d: %w", ctxLen, ErrBadFrame)
		}
		ctx := make([]byte, ctxLen)
		if _, err := io.ReadFull(r, ctx); err != nil {
			return Chunk{}, fmt.Errorf("cluster: truncated chunk trace: %w", ErrBadFrame)
		}
		crc = crc32.Update(crc, castagnoli, n[:])
		crc = crc32.Update(crc, castagnoli, ctx)
		c.Trace = string(ctx)
	}
	if hostLittle {
		buf := floatsAsBytes(c.Rows)
		if _, err := io.ReadFull(r, buf); err != nil {
			return Chunk{}, fmt.Errorf("cluster: truncated chunk payload: %w", ErrBadFrame)
		}
		crc = crc32.Update(crc, castagnoli, buf)
	} else {
		buf := make([]byte, rows*width*8)
		if _, err := io.ReadFull(r, buf); err != nil {
			return Chunk{}, fmt.Errorf("cluster: truncated chunk payload: %w", ErrBadFrame)
		}
		for i := range c.Rows {
			c.Rows[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
		crc = crc32.Update(crc, castagnoli, buf)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return Chunk{}, fmt.Errorf("cluster: truncated chunk checksum: %w", ErrBadFrame)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != crc {
		return Chunk{}, fmt.Errorf("cluster: chunk crc %08x, want %08x: %w", got, crc, ErrBadFrame)
	}
	return c, nil
}

// AppendAck encodes one ack frame onto dst.
func AppendAck(dst []byte, a Ack) []byte {
	start := len(dst)
	var b [ackFrameLen - 4]byte
	binary.LittleEndian.PutUint32(b[0:], ackMagic)
	binary.LittleEndian.PutUint64(b[4:], a.Seq)
	binary.LittleEndian.PutUint32(b[12:], uint32(a.Rows))
	binary.LittleEndian.PutUint32(b[16:], a.Code)
	binary.LittleEndian.PutUint64(b[20:], a.ShardRows)
	dst = append(dst, b[:]...)
	crc := crc32.Checksum(dst[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// ReadAck decodes the next ack frame. io.EOF passes through untouched
// when the stream ends cleanly between frames.
func ReadAck(r io.Reader) (Ack, error) {
	var b [ackFrameLen]byte
	if _, err := io.ReadFull(r, b[:1]); err != nil {
		return Ack{}, err
	}
	if _, err := io.ReadFull(r, b[1:]); err != nil {
		return Ack{}, fmt.Errorf("cluster: truncated ack: %w", ErrBadFrame)
	}
	if binary.LittleEndian.Uint32(b[0:]) != ackMagic {
		return Ack{}, fmt.Errorf("cluster: ack magic %x: %w", b[:4], ErrBadFrame)
	}
	crc := crc32.Checksum(b[:ackFrameLen-4], castagnoli)
	if got := binary.LittleEndian.Uint32(b[ackFrameLen-4:]); got != crc {
		return Ack{}, fmt.Errorf("cluster: ack crc %08x, want %08x: %w", got, crc, ErrBadFrame)
	}
	return Ack{
		Seq:       binary.LittleEndian.Uint64(b[4:]),
		Rows:      int(binary.LittleEndian.Uint32(b[12:])),
		Code:      binary.LittleEndian.Uint32(b[16:]),
		ShardRows: binary.LittleEndian.Uint64(b[20:]),
	}, nil
}
