package cluster

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ratiorules/internal/core"
	"ratiorules/internal/matrix"
	"ratiorules/internal/obs"
	"ratiorules/internal/online"
)

// memStore is a minimal online.ModelStore for tests.
type memStore struct {
	mu       sync.Mutex
	rules    map[string]*core.Rules
	versions map[string]int
}

func (s *memStore) Put(_ context.Context, name string, r *core.Rules) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rules == nil {
		s.rules = map[string]*core.Rules{}
		s.versions = map[string]int{}
	}
	s.rules[name] = r
	s.versions[name]++
	return s.versions[name], nil
}

func (s *memStore) GetWithVersion(name string) (*core.Rules, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.rules[name]
	return r, s.versions[name], ok
}

// testRows builds a deterministic rank-2 dataset with multiplicative
// noise — structured enough that mining yields a meaningful model.
func testRows(n, width int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	p1 := make([]float64, width)
	p2 := make([]float64, width)
	for j := range p1 {
		p1[j] = 1 + rng.Float64()*4
		p2[j] = rng.Float64() * 2
	}
	rows := make([][]float64, n)
	for i := range rows {
		a, b := 1+rng.Float64()*9, rng.Float64()*3
		row := make([]float64, width)
		for j := range row {
			row[j] = (a*p1[j] + b*p2[j]) * (1 + 0.05*rng.NormFloat64())
		}
		rows[i] = row
	}
	return rows
}

// testCluster is N in-process workers behind real HTTP listeners plus a
// coordinator whose background cadences are parked so tests drive every
// merge explicitly via MergeNow.
type testCluster struct {
	c       *Coordinator
	mgr     *online.Manager
	store   *memStore
	workers []*Worker
	servers []*httptest.Server
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{store: &memStore{}}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		w := NewWorker()
		srv := httptest.NewServer(w.Handler())
		tc.workers = append(tc.workers, w)
		tc.servers = append(tc.servers, srv)
		urls[i] = srv.URL
	}
	mgr, err := online.NewManager(tc.store, online.Config{
		Seed:          42,
		RepublishRows: 1 << 30, // republishes happen only via the coordinator
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.mgr = mgr
	c, err := New(Config{
		Workers:       urls,
		Manager:       mgr,
		Metrics:       obs.NewRegistry(),
		ChunkRows:     64, // small chunks so a few thousand rows spread widely
		PullEvery:     time.Hour,
		HealthEvery:   time.Hour,
		PullRetries:   2,
		Backoff:       5 * time.Millisecond,
		RepublishRows: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	tc.c = c
	t.Cleanup(func() {
		_ = c.Close(context.Background())
		_ = mgr.Close()
		for _, srv := range tc.servers {
			srv.Close()
		}
	})
	return tc
}

// pushAll drains a session's acks concurrently, pushes every row, and
// closes, returning the accepted/rejected tallies.
func pushAll(t *testing.T, s *Session, rows [][]float64) (accepted, rejected int) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range s.Acks() {
			if ev.Err != nil {
				rejected += ev.Rows
			} else {
				accepted += ev.Rows
			}
		}
	}()
	for _, row := range rows {
		if err := s.Push(row); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	<-done
	return accepted, rejected
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return d
	}
	return d / scale
}

// TestShardMergeEquivalence is the cluster's exactness property: rows
// fanned out across 4 workers and merged must yield the same published
// model as the same rows pushed through one single-node stream —
// because both the miner fold (sum of sufficient statistics) and the
// holdout reservoir (same seed, same offer order) are
// partition-independent.
func TestShardMergeEquivalence(t *testing.T) {
	const n, width = 4000, 8
	rows := testRows(n, width, 99)
	ctx := context.Background()

	tc := newTestCluster(t, 4)
	sess, err := tc.c.Ingest(ctx, "m", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	accepted, rejected := pushAll(t, sess, rows)
	if accepted != n || rejected != 0 {
		t.Fatalf("cluster accepted %d / rejected %d, want %d / 0", accepted, rejected, n)
	}
	// Every worker should hold a share: the ring must actually shard.
	for i, w := range tc.workers {
		w.mu.Lock()
		sh := w.shards["m"]
		w.mu.Unlock()
		if sh == nil || sh.sm == nil || sh.sm.Count() == 0 {
			t.Fatalf("worker %d folded no rows; sharding is not spreading", i)
		}
	}
	if err := tc.c.MergeNow(ctx, "m"); err != nil {
		t.Fatalf("merge: %v", err)
	}
	clustered, _, ok := tc.store.GetWithVersion("m")
	if !ok {
		t.Fatal("cluster merge published nothing")
	}

	// Single-node reference with the identical manager configuration.
	refStore := &memStore{}
	refMgr, err := online.NewManager(refStore, online.Config{Seed: 42, RepublishRows: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer refMgr.Close()
	st, err := refMgr.Stream("m", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if _, err := st.Push(ctx, row); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := refMgr.Republish(ctx, "m"); err != nil {
		t.Fatal(err)
	}
	single, _, ok := refStore.GetWithVersion("m")
	if !ok {
		t.Fatal("single-node republish published nothing")
	}

	const tol = 1e-12
	if clustered.TrainedRows() != single.TrainedRows() {
		t.Fatalf("trained rows: cluster %d, single %d", clustered.TrainedRows(), single.TrainedRows())
	}
	cm, sm := clustered.Means(), single.Means()
	for j := range sm {
		if relDiff(cm[j], sm[j]) > tol {
			t.Fatalf("mean %d: cluster %v, single %v", j, cm[j], sm[j])
		}
	}
	cev, sev := clustered.Eigenvalues(), single.Eigenvalues()
	if len(cev) != len(sev) {
		t.Fatalf("k: cluster %d, single %d", len(cev), len(sev))
	}
	for i := range sev {
		if relDiff(cev[i], sev[i]) > tol {
			t.Fatalf("eigenvalue %d: cluster %v, single %v", i, cev[i], sev[i])
		}
	}

	// The end-to-end check the acceptance criterion states: GE₁ on a
	// held-out matrix matches far inside 1e-9.
	holdRows := testRows(256, width, 100)
	hold := matrix.NewDense(len(holdRows), width)
	for i, row := range holdRows {
		for j, v := range row {
			hold.Set(i, j, v)
		}
	}
	geC, err := core.GE1(clustered, hold)
	if err != nil {
		t.Fatal(err)
	}
	geS, err := core.GE1(single, hold)
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(geC, geS) > tol {
		t.Fatalf("GE1: cluster %v, single %v (rel %v)", geC, geS, relDiff(geC, geS))
	}
}

// TestSessionRejectsBadRowsInOrder checks the per-row error contract:
// bad rows surface as one-row error events at their input position and
// never reach a shard.
func TestSessionRejectsBadRowsInOrder(t *testing.T) {
	tc := newTestCluster(t, 2)
	ctx := context.Background()
	sess, err := tc.c.Ingest(ctx, "m", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	rows := testRows(200, 4, 5)
	rows[50] = []float64{1, math.NaN(), 3, 4}
	rows[120] = []float64{1, 2} // wrong width
	accepted, rejected := pushAll(t, sess, rows)
	if accepted != 198 || rejected != 2 {
		t.Fatalf("accepted %d rejected %d, want 198 / 2", accepted, rejected)
	}
	total := 0
	for _, w := range tc.workers {
		w.mu.Lock()
		if sh := w.shards["m"]; sh != nil && sh.sm != nil {
			total += sh.sm.Count()
		}
		w.mu.Unlock()
	}
	if total != 198 {
		t.Fatalf("workers hold %d rows, want 198", total)
	}
}

// TestWorkerFailureDegradedRepublishAndRejoin is the kill-a-worker e2e:
// a worker dies mid-stream → its unacked chunks reshard to survivors
// and the session completes; the next merge substitutes the dead
// instance's retained shard and reports degraded; a fresh worker joins
// → the ring reshards onto it and rows land there.
func TestWorkerFailureDegradedRepublishAndRejoin(t *testing.T) {
	const width = 6
	tc := newTestCluster(t, 3)
	ctx := context.Background()

	// Round 1: healthy fan-out, first merge retains all three shards.
	sess, err := tc.c.Ingest(ctx, "m", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if a, r := pushAll(t, sess, testRows(3000, width, 11)); a != 3000 || r != 0 {
		t.Fatalf("round 1: accepted %d rejected %d", a, r)
	}
	if err := tc.c.MergeNow(ctx, "m"); err != nil {
		t.Fatal(err)
	}
	if st := tc.c.Status(); st.Healthy != 3 || st.Degraded || st.Retained != 3 {
		t.Fatalf("after round 1: %+v", st)
	}
	_, v1, _ := tc.store.GetWithVersion("m")

	// Round 2: kill worker 0 mid-session. Its open fan-out connection
	// dies, the session reshards the unacked chunks, and every row is
	// still acked.
	sess, err = tc.c.Ingest(ctx, "m", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	rows := testRows(3000, width, 12)
	done := make(chan struct{})
	var accepted, rejected int
	go func() {
		defer close(done)
		for ev := range sess.Acks() {
			if ev.Err != nil {
				rejected += ev.Rows
			} else {
				accepted += ev.Rows
			}
		}
	}()
	for i, row := range rows {
		if i == 1500 {
			tc.servers[0].CloseClientConnections()
			tc.servers[0].Close()
		}
		if err := sess.Push(row); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	<-done
	if accepted != 3000 || rejected != 0 {
		t.Fatalf("round 2: accepted %d rejected %d, want 3000 / 0", accepted, rejected)
	}

	// The dead worker's instance must be tainted out of membership.
	deadInstance := tc.workers[0].Instance()
	st := tc.c.Status()
	if st.Healthy != 2 {
		t.Fatalf("healthy %d, want 2: %+v", st.Healthy, st)
	}
	foundTaint := false
	for _, m := range st.Members {
		if m.Instance == deadInstance && m.Tainted && !m.Healthy {
			foundTaint = true
		}
	}
	if !foundTaint {
		t.Fatalf("dead instance %s not tainted: %+v", deadInstance, st.Members)
	}

	// The merge degrades to the retained shard of the dead instance but
	// still publishes a new version.
	if err := tc.c.MergeNow(ctx, "m"); err != nil {
		t.Fatalf("degraded merge: %v", err)
	}
	st = tc.c.Status()
	if !st.Degraded {
		t.Fatalf("merge after worker death not degraded: %+v", st)
	}
	if tc.c.met.degraded.Value() < 1 {
		t.Fatal("rr_cluster_degraded_republishes_total did not move")
	}
	if _, v2, _ := tc.store.GetWithVersion("m"); v2 <= v1 {
		t.Fatalf("degraded merge published nothing: v1=%d v2=%d", v1, v2)
	}

	// Rejoin: a fresh worker (new instance) joins, the ring reshards,
	// and new rows land on it.
	w3 := NewWorker()
	srv3 := httptest.NewServer(w3.Handler())
	defer srv3.Close()
	reshardsBefore := tc.c.met.reshardings.Value()
	if err := tc.c.Join(srv3.URL); err != nil {
		t.Fatalf("join: %v", err)
	}
	if got := tc.c.Status().Healthy; got != 3 {
		t.Fatalf("healthy after join: %d, want 3", got)
	}
	if tc.c.met.reshardings.Value() <= reshardsBefore {
		t.Fatal("join did not rebuild the ring")
	}
	sess, err = tc.c.Ingest(ctx, "m", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if a, r := pushAll(t, sess, testRows(3000, width, 13)); a != 3000 || r != 0 {
		t.Fatalf("round 3: accepted %d rejected %d", a, r)
	}
	w3.mu.Lock()
	sh := w3.shards["m"]
	w3.mu.Unlock()
	if sh == nil || sh.sm == nil || sh.sm.Count() == 0 {
		t.Fatal("rejoined worker received no rows after resharding")
	}
	if err := tc.c.MergeNow(ctx, "m"); err != nil {
		t.Fatalf("post-rejoin merge: %v", err)
	}
}

// TestIngestDecayConflict mirrors the public 409 contract.
func TestIngestDecayConflict(t *testing.T) {
	tc := newTestCluster(t, 1)
	ctx := context.Background()
	sess, err := tc.c.Ingest(ctx, "m", 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	if a, r := pushAll(t, sess, testRows(10, 3, 1)); a != 10 || r != 0 {
		t.Fatalf("accepted %d rejected %d", a, r)
	}
	if _, err := tc.c.Ingest(ctx, "m", 0.9, true); !errors.Is(err, online.ErrDecayConflict) {
		t.Fatalf("got %v, want ErrDecayConflict", err)
	}
}

// TestLocalWorkersEquivalence pins the in-process transport (the shape
// rrbench measures): rows fanned out to LocalWorkers by direct call
// must publish the identical model an HTTP-transport cluster publishes
// from the same rows — same fold, same snapshot-pull merge, same gate —
// and per-row error events must keep their input positions through the
// chunk-splitting (flushMixed) path.
func TestLocalWorkersEquivalence(t *testing.T) {
	const n, width = 4000, 8
	rows := testRows(n, width, 99)
	rows[777] = []float64{1, 2, math.Inf(1), 4, 5, 6, 7, 8}
	ctx := context.Background()

	run := func(local bool) (*core.Rules, int, int) {
		store := &memStore{}
		mgr, err := online.NewManager(store, online.Config{Seed: 42, RepublishRows: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		defer mgr.Close()
		cfg := Config{
			Manager:       mgr,
			Metrics:       obs.NewRegistry(),
			ChunkRows:     64,
			PullEvery:     time.Hour,
			HealthEvery:   time.Hour,
			RepublishRows: 1 << 30,
		}
		if local {
			for i := 0; i < 4; i++ {
				cfg.LocalWorkers = append(cfg.LocalWorkers, NewWorker())
			}
		} else {
			for i := 0; i < 4; i++ {
				srv := httptest.NewServer(NewWorker().Handler())
				defer srv.Close()
				cfg.Workers = append(cfg.Workers, srv.URL)
			}
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Start()
		defer c.Close(ctx)
		sess, err := c.Ingest(ctx, "m", 0, false)
		if err != nil {
			t.Fatal(err)
		}
		accepted, rejected := pushAll(t, sess, rows)
		if err := c.MergeNow(ctx, "m"); err != nil {
			t.Fatal(err)
		}
		r, _, ok := store.GetWithVersion("m")
		if !ok {
			t.Fatal("merge published nothing")
		}
		return r, accepted, rejected
	}

	localRules, la, lr := run(true)
	httpRules, ha, hr := run(false)
	if la != n-1 || lr != 1 {
		t.Fatalf("local transport accepted %d rejected %d, want %d / 1", la, lr, n-1)
	}
	if ha != la || hr != lr {
		t.Fatalf("transports disagree: local %d/%d, http %d/%d", la, lr, ha, hr)
	}
	if localRules.TrainedRows() != httpRules.TrainedRows() {
		t.Fatalf("trained rows: local %d, http %d", localRules.TrainedRows(), httpRules.TrainedRows())
	}
	le, he := localRules.Eigenvalues(), httpRules.Eigenvalues()
	if len(le) != len(he) {
		t.Fatalf("k: local %d, http %d", len(le), len(he))
	}
	for i := range he {
		if relDiff(le[i], he[i]) > 1e-12 {
			t.Fatalf("eigenvalue %d: local %v, http %v", i, le[i], he[i])
		}
	}
}

// TestLocalWorkerErrorPositions pins the exact input positions of error
// events through the batched-validation path: a non-finite row mid-chunk
// splits the chunk, and its error event lands between the acks for the
// rows around it.
func TestLocalWorkerErrorPositions(t *testing.T) {
	store := &memStore{}
	mgr, err := online.NewManager(store, online.Config{Seed: 1, RepublishRows: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	c, err := New(Config{
		LocalWorkers:  []*Worker{NewWorker(), NewWorker()},
		Manager:       mgr,
		Metrics:       obs.NewRegistry(),
		ChunkRows:     16,
		PullEvery:     time.Hour,
		HealthEvery:   time.Hour,
		RepublishRows: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	ctx := context.Background()
	defer c.Close(ctx)
	sess, err := c.Ingest(ctx, "m", 0, false)
	if err != nil {
		t.Fatal(err)
	}

	rows := testRows(100, 4, 7)
	rows[5] = []float64{1, math.NaN(), 3, 4}   // mid-first-chunk
	rows[6] = []float64{1, 2, math.Inf(-1), 4} // adjacent bad row
	rows[40] = []float64{9}                    // wrong width

	type out struct {
		rows int
		err  bool
	}
	var got []out
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range sess.Acks() {
			got = append(got, out{rows: ev.Rows, err: ev.Err != nil})
		}
	}()
	for _, row := range rows {
		if err := sess.Push(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	<-done

	// Reconstruct per-row outcomes from the run-length events and check
	// exactly rows 5, 6, and 40 failed.
	var flat []bool
	for _, o := range got {
		for i := 0; i < o.rows; i++ {
			flat = append(flat, o.err)
		}
	}
	if len(flat) != 100 {
		t.Fatalf("events cover %d rows, want 100: %+v", len(flat), got)
	}
	for i, bad := range flat {
		want := i == 5 || i == 6 || i == 40
		if bad != want {
			t.Fatalf("row %d: error=%v, want %v (events %+v)", i, bad, want, got)
		}
	}
}
